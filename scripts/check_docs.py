#!/usr/bin/env python3
"""Documentation checks run by the CI docs job (and locally).

Two independent checks, both offline:

1. Markdown link check — every relative link in README.md, ROADMAP.md and
   docs/*.md must resolve to a file in the checkout, and every anchor
   (same-file or cross-file) must match a real heading.
2. Protocol drift guard — docs/PROTOCOL.md is the normative wire spec, so
   the constants it states are grep-pinned to the ones the implementation
   compiles (src/system/fleet_protocol.hpp): protocol version, frame
   magic, header size, payload cap, and every fixed payload size. Bumping
   either side without the other fails here, not in a code review.

Exit code 0 when clean; 1 with one line per finding otherwise.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", ROOT / "ROADMAP.md"] + sorted(
    (ROOT / "docs").glob("*.md"))

PROTOCOL_HEADER = ROOT / "src" / "system" / "fleet_protocol.hpp"
PROTOCOL_DOC = ROOT / "docs" / "PROTOCOL.md"

# Markdown links: [text](target). Images and bare URLs are out of scope.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        cache[path] = {github_slug(h)
                       for h in HEADING_RE.findall(path.read_text())}
    return cache[path]


def check_links(errors):
    for doc in DOC_FILES:
        text = doc.read_text()
        rel = doc.relative_to(ROOT)
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            path_part, _, anchor = target.partition("#")
            dest = doc if not path_part else (
                doc.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{rel}: broken link '{target}' "
                              f"(no such file {path_part})")
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in anchors_of(dest):
                    errors.append(f"{rel}: broken anchor '{target}' "
                                  f"(no heading slug '{anchor}')")


def header_constants():
    text = PROTOCOL_HEADER.read_text()
    consts = {}
    for m in re.finditer(
            r"constexpr\s+[\w:]+\s+k(\w+)\s*=\s*(0x[0-9A-Fa-f]+|\d+)", text):
        consts[m.group(1)] = int(m.group(2), 0)
    return consts


def check_protocol_drift(errors):
    consts = header_constants()
    doc = PROTOCOL_DOC.read_text()
    rel = PROTOCOL_DOC.relative_to(ROOT)
    hdr = PROTOCOL_HEADER.relative_to(ROOT)

    def require(name, pattern, describe):
        if name not in consts:
            errors.append(f"{hdr}: constant k{name} not found "
                          "(drift guard needs updating?)")
            return
        if not re.search(pattern.format(v=consts[name]), doc):
            errors.append(
                f"{rel}: {describe.format(v=consts[name])} — the doc "
                f"drifted from k{name} in {hdr}")

    require("ProtocolVersion", r"\*\*Protocol version:\*\* {v}\b",
            "must state '**Protocol version:** {v}'")
    require("ProtocolMagic", r"`0x{v:X}`",
            "must state the frame magic `0x{v:X}`")
    require("FrameHeaderSize", r"\b{v}-byte header\b",
            "must describe the {v}-byte header")
    require("MaxPayloadSize", r"\b{v}\b",
            "must state the payload cap {v}")

    # Every fixed payload size in the header must appear as the
    # "### `Name` (N bytes)" heading of its layout section.
    sections = {
        "HelloRequestSize": "Hello",
        "PingSize": "Ping",
        "FleetRequestSize": "FleetRequest",
        "StudyRequestSize": "StudyRequest",
        "JobResultSize": "JobResult",
        "DoneSize": "Done",
        "ErrorSize": "Error",
    }
    for const, section in sections.items():
        require(const, rf"### `{section}` \({{v}} bytes\)",
                f"must have a section '### `{section}` ({{v}} bytes)'")
    # HelloOk has no layout section of its own; pin it via the type table.
    require("HelloOkSize", r"`HelloOk`\s*\|[^|]*\|\s*{v}\s*\|",
            "type table must list `HelloOk` with payload size {v}")


def main():
    errors = []
    check_links(errors)
    check_protocol_drift(errors)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} documentation finding(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {len(DOC_FILES)} file(s) link-checked, protocol "
          "constants in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
