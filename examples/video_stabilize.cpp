// Video boresight correction: the paper's visualization demo. A camera
// mounted a few degrees off produces a rotated/shifted image; the fusion
// filter estimates the misalignment from inertial data alone, and the
// fixed-point affine pipeline (Figures 3/5) re-aligns the video.
//
// Writes three PPM frames: the true scene, the misaligned camera view and
// the corrected output, and reports PSNR before/after.

#include <cstdio>

#include "math/rotation.hpp"
#include "system/experiment.hpp"
#include "util/artifacts.hpp"
#include "video/affine.hpp"
#include "video/video_system.hpp"

using namespace ob;

int main() {
    const math::EulerAngles truth = math::EulerAngles::from_deg(4.0, 1.0, -1.2);
    const double focal_px = 300.0;

    // --- Estimate the misalignment from inertial data (no vision used).
    system::ExperimentConfig cfg;
    cfg.label = "video demo";
    cfg.scenario = sim::ScenarioConfig::static_tilted(
        300.0, truth, math::EulerAngles::from_deg(12.0, 8.0, 0.0));
    cfg.sensor_seed = 7;
    cfg.filter.meas_noise_mps2 = 0.0075;
    const auto outcome = system::run_experiment(cfg);
    const math::EulerAngles est = outcome.result.estimate;
    std::printf("estimated misalignment: roll %+0.3f pitch %+0.3f yaw %+0.3f "
                "deg (truth %+0.1f %+0.1f %+0.1f)\n",
                math::rad2deg(est.roll), math::rad2deg(est.pitch),
                math::rad2deg(est.yaw), 4.0, 1.0, -1.2);

    // --- Render the optical chain.
    const video::Frame scene = video::make_test_pattern(320, 240);
    const video::Frame camera =
        video::simulate_misaligned_camera(scene, truth, focal_px);

    video::VideoSystem vs({.width = 320, .height = 240, .focal_px = focal_px});
    vs.set_angle_provider([&] { return est; });
    const auto corrected = vs.process_frame(camera);

    const double before = camera.psnr_against(scene);
    const double after = corrected.display.psnr_against(scene);
    std::printf("PSNR vs true scene: misaligned %.2f dB -> corrected %.2f dB\n",
                before, after);
    std::printf("video pipeline: %llu cycles/frame = %.1f fps at 25.175 MHz\n",
                static_cast<unsigned long long>(corrected.timing.cycles),
                corrected.timing.fps());

    const std::string scene_path = util::artifact_path("video_scene.ppm");
    const std::string camera_path = util::artifact_path("video_misaligned.ppm");
    const std::string corrected_path = util::artifact_path("video_corrected.ppm");
    scene.write_ppm(scene_path);
    camera.write_ppm(camera_path);
    corrected.display.write_ppm(corrected_path);
    std::printf("wrote %s, %s, %s\n", scene_path.c_str(), camera_path.c_str(),
                corrected_path.c_str());
    return after > before + 3.0 ? 0 : 1;
}
