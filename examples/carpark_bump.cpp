// The motivating scenario of the paper's §2: a sensor knocked out of
// alignment in service ("typical 'car park' bumps") must be re-aligned
// without a trip to an optical bench. This example drives for ten minutes,
// bumps the camera mount at t=300s, and shows the filter re-converging —
// then contrasts it with the one-shot batch baseline that cannot.

#include <cstdio>
#include <vector>

#include "core/batch_aligner.hpp"
#include "core/boresight_ekf.hpp"
#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "system/experiment.hpp"
#include "util/ascii_plot.hpp"

using namespace ob;

int main() {
    // Scenario shape, injected truth, bump delta and filter tuning all come
    // from the library's carpark-bump spec; this example stretches the run
    // to ten minutes and moves the knock to the midpoint.
    const auto& spec = sim::ScenarioLibrary::instance().at("carpark-bump");
    const math::EulerAngles before = spec.misalignment;
    const math::EulerAngles bump = spec.bump.delta;

    auto scfg = spec.build(600.0, before, 31);
    sim::Scenario sc(scfg, 555);

    core::BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = spec.meas_noise_mps2;
    fcfg.angle_process_noise = spec.angle_process_noise;  // tracks bumps
    core::BoresightEkf ekf(fcfg);
    core::BatchLeastSquaresAligner batch;

    std::vector<double> pitch_trace;
    bool bumped = false;
    while (auto s = sc.next()) {
        if (!bumped && s->t >= 300.0) {
            sc.bump(bump);
            bumped = true;
            std::printf("t=300s: mount disturbed by (%.1f, %.1f, %.1f) deg\n",
                        math::rad2deg(bump.roll), math::rad2deg(bump.pitch),
                        math::rad2deg(bump.yaw));
        }
        const auto d = system::decode_step(sc, *s);
        (void)ekf.step(d.f_body, d.acc_xy);
        batch.add(d.f_body, d.acc_xy);
        pitch_trace.push_back(math::rad2deg(ekf.misalignment().pitch));
    }

    util::AsciiPlot plot(110, 20);
    plot.set_title("EKF pitch estimate across the t=300s mount bump (deg)");
    plot.add_series("pitch estimate", pitch_trace, '*');
    plot.set_x_label("time 0..600 s   (bump at the midpoint)");
    std::printf("%s\n", plot.render().c_str());

    const auto final_est = ekf.misalignment();
    const auto batch_est = batch.solve().misalignment;
    const double true_final_pitch = math::rad2deg(before.pitch + bump.pitch);
    std::printf("final pitch: truth %+0.2f deg | EKF %+0.3f deg | "
                "batch-LS over the whole log %+0.3f deg\n",
                true_final_pitch, math::rad2deg(final_est.pitch),
                math::rad2deg(batch_est.pitch));
    std::printf("the batch baseline averages across the bump and lands "
                "between the two alignments;\nthe recursive filter tracks "
                "the new one — the paper's case for continuous boresighting.\n");

    const double ekf_err =
        std::abs(math::rad2deg(final_est.pitch) - true_final_pitch);
    const double batch_err =
        std::abs(math::rad2deg(batch_est.pitch) - true_final_pitch);
    return (ekf_err < 0.3 && batch_err > 2.0 * ekf_err) ? 0 : 1;
}
