// The paper's §11 retuning loop as a one-dimensional noise sweep.
//
// The prototype was first tuned on the static bench, where a measurement
// noise of 0.003–0.01 m/s² matched the residuals. As soon as the vehicle
// started moving the residuals blew through their 3-sigma envelope, and the
// authors raised the assumed noise to 0.015+ m/s² by hand. This example
// reruns that episode as a TuningStudy over the city drive: a grid of fixed
// tunings spanning the static band through the retuned value, plus the
// adaptive tuner starting from the quietest static tuning — which must
// rediscover the paper's retune on its own. The §11.1 level-platform
// calibration runs before every cell, exactly like the original procedure.

#include <cstdio>

#include "system/tuning_study.hpp"
#include "util/artifacts.hpp"
#include "util/json.hpp"

using namespace ob;

int main() {
    system::TuningStudyConfig cfg;
    cfg.label = "sec11-retune";
    cfg.scenarios = {"city-drive"};
    cfg.variants = {
        {.label = "static-0.003", .meas_noise_mps2 = 0.003},
        {.label = "static-0.0075", .meas_noise_mps2 = 0.0075},
        {.label = "static-0.010", .meas_noise_mps2 = 0.010},
        {.label = "retuned-0.015", .meas_noise_mps2 = 0.015},
        {.label = "retuned-0.030", .meas_noise_mps2 = 0.030},
        {.label = "adaptive",
         .use_adaptive_tuner = true,
         .meas_noise_mps2 = 0.003},
    };
    cfg.calibration = system::FleetCalibration{.duration_s = 30.0};
    // Three vehicles' worth of instruments per tuning (a small fleet Monte
    // Carlo): the retune conclusion comes with a cross-seed spread, not a
    // single-realization point — all three share one city-drive trace.
    cfg.seeds_per_cell = 3;

    const system::TuningStudy study(cfg);
    const auto report = study.run(system::FleetRunner{});

    std::printf("§11 retune on %s (calibrated, %zu cells x %zu seeds; "
                "errors are cross-seed means ± 95%% CI)\n",
                cfg.scenarios[0].c_str(), report.cells.size(),
                cfg.seeds_per_cell);
    std::printf("%-15s %10s %10s %6s | %-15s %-15s | %s\n", "variant",
                "R start", "R final", "adj", "roll (deg)", "pitch (deg)",
                "verdict");
    double adaptive_final_r = 0.0;
    bool adaptive_ok = false;
    for (const auto& c : report.cells) {
        const auto& v = cfg.variants[c.variant_index];
        const auto& r = c.result;
        const auto& s = r.seed_stats;
        std::printf(
            "%-15s %10.4f %10.4f %6zu | %6.3f %s%6.3f | %6.3f %s%6.3f | "
            "%s (%zu/%zu)\n",
            v.label.c_str(), v.meas_noise_mps2, r.result.meas_noise,
            r.final_status.tuner_adjustments, s.roll_err_deg.mean, "±",
            s.roll_err_deg.ci95(s.seeds), s.pitch_err_deg.mean, "±",
            s.pitch_err_deg.ci95(s.seeds),
            r.within_envelope ? "ok" : "outside", s.within_envelope, s.seeds);
        if (v.label == "adaptive") {
            adaptive_final_r = r.result.meas_noise;
            adaptive_ok = r.within_envelope;
        }
    }

    const std::string path = util::artifact_path("STUDY_sec11_retune.json");
    util::write_file(path, report.to_json());
    std::printf("\nwrote %s\n", path.c_str());

    // Acceptance: starting from the paper's quietest static tuning, the
    // adaptive loop must raise R out of the static band (>= 0.012, i.e.
    // 4x its start, landing by the paper's 0.015 retune) and stay inside
    // the scenario envelope while doing so.
    if (adaptive_final_r >= 0.012 && adaptive_ok) {
        std::printf("PASS: adaptive tuner reproduced the §11 retune "
                    "(0.003 -> %.4f m/s^2)\n",
                    adaptive_final_r);
        return 0;
    }
    std::printf("FAIL: adaptive tuner did not reproduce the retune "
                "(final R %.4f, %s)\n",
                adaptive_final_r, adaptive_ok ? "ok" : "outside envelope");
    return 1;
}
