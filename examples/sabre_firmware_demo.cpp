// The embedded execution path of the paper: the boresight Kalman filter
// lowered to Sabre-32 machine code, running on the instruction-set
// simulator with every floating-point operation going through the
// softfloat FPU peripheral, publishing results to the memory-mapped
// control registers the video fabric reads.

#include <cstdio>
#include <sstream>

#include "math/rotation.hpp"
#include "sabre/assembler.hpp"
#include "sabre/firmware.hpp"
#include "sim/scenario.hpp"
#include "system/sabre_runner.hpp"

using namespace ob;

int main() {
    // --- Show the firmware artifact itself.
    const std::string source = sabre::boresight_firmware_source();
    const auto program = sabre::assemble(source);
    std::printf("boresight firmware: %zu instructions (%zu bytes of the 8 KB "
                "program BlockRAM)\n",
                program.words.size(), program.words.size() * 4);

    std::printf("\nfirst 12 instructions:\n");
    for (std::size_t i = 0; i < 12 && i < program.words.size(); ++i) {
        std::printf("  %04zx: %08x  %s\n", i, program.words[i],
                    sabre::disassemble(program.words[i]).c_str());
    }

    // --- Run it against a simulated static scene.
    const math::EulerAngles truth = math::EulerAngles::from_deg(1.2, -0.9, 0.0);
    auto scfg = sim::ScenarioConfig::static_level(60.0, truth);
    scfg.acc_errors.bias_sigma = 0.0;  // pre-calibrated instruments
    scfg.imu_errors.accel_bias_sigma = 0.0;
    sim::Scenario sc(scfg, 99);

    system::SabreFusionSystem sys;
    while (auto s = sc.next()) sys.push(s->dmu, s->adxl);
    const auto est = sys.run_pending(4'000'000'000ull);

    std::printf("\nafter %u filter updates on the soft core:\n", est.updates);
    std::printf("  roll  %+7.3f deg (truth %+0.1f)   3-sigma %.3f deg\n",
                math::rad2deg(est.angles.roll), 1.2,
                math::rad2deg(est.sigma3[0]));
    std::printf("  pitch %+7.3f deg (truth %+0.1f)   3-sigma %.3f deg\n",
                math::rad2deg(est.angles.pitch), -0.9,
                math::rad2deg(est.sigma3[1]));
    std::printf("  yaw   %+7.3f deg (unobservable on a level bench)\n",
                math::rad2deg(est.angles.yaw));

    std::printf("\nexecution statistics:\n");
    std::printf("  %llu instructions, %llu cycles, %llu softfloat FPU ops\n",
                static_cast<unsigned long long>(sys.instructions()),
                static_cast<unsigned long long>(sys.cycles()),
                static_cast<unsigned long long>(sys.fpu_operations()));
    std::printf("  %.0f cycles per filter update\n", sys.cycles_per_update());
    const double updates_per_s_at_25mhz = 25e6 / sys.cycles_per_update();
    std::printf("  => %.0f updates/s possible at a 25 MHz soft-core clock "
                "(sensor rate is 100 Hz): %.0fx real-time margin\n",
                updates_per_s_at_25mhz, updates_per_s_at_25mhz / 100.0);

    const double err = std::abs(math::rad2deg(est.angles.roll) - 1.2) +
                       std::abs(math::rad2deg(est.angles.pitch) + 0.9);
    return err < 0.5 ? 0 : 1;
}
