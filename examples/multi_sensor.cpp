// The paper's concluding extension: one fusion engine aligning several
// vehicle sensors (video, lidar, radar) against the common IMU at once,
// yielding the mutual alignments that cross-sensor data fusion ("low-cost
// situational awareness") needs — all during a normal drive, no optical
// bench involved.

#include <cstdio>
#include <optional>
#include <vector>

#include "core/multi_aligner.hpp"
#include "math/rotation.hpp"
#include "sim/acc_model.hpp"
#include "sim/trajectory.hpp"
#include "util/rng.hpp"

using namespace ob;
using math::EulerAngles;
using math::rad2deg;
using math::Vec2;
using math::Vec3;

namespace {

struct InstrumentedSensor {
    const char* name;
    EulerAngles truth;
    sim::AccModel model;
    std::size_t id = 0;
};

}  // namespace

int main() {
    // A city drive provides the excitation.
    const auto profile = sim::DriveProfile::city(300.0, /*seed=*/77);

    // Three sensors, each with its own MEMS accelerometer and mounting
    // error; each gets an independent noise stream.
    util::Rng rng(2026);
    const sim::AccErrorConfig acc_err = [] {
        sim::AccErrorConfig c;
        c.bias_sigma = 0.0;  // instruments pre-calibrated per §11.1
        return c;
    }();
    const sim::VibrationConfig vib;
    std::vector<InstrumentedSensor> sensors;
    sensors.push_back({"video", EulerAngles::from_deg(1.0, -2.0, 1.5),
                       sim::AccModel(EulerAngles::from_deg(1.0, -2.0, 1.5),
                                     acc_err, vib, rng.fork())});
    sensors.push_back({"lidar", EulerAngles::from_deg(-0.5, 0.8, -1.0),
                       sim::AccModel(EulerAngles::from_deg(-0.5, 0.8, -1.0),
                                     acc_err, vib, rng.fork())});
    sensors.push_back({"radar", EulerAngles::from_deg(2.2, 0.3, -0.7),
                       sim::AccModel(EulerAngles::from_deg(2.2, 0.3, -0.7),
                                     acc_err, vib, rng.fork())});

    core::MultiSensorAligner aligner;
    core::BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = 0.02;
    for (auto& s : sensors) s.id = aligner.add_sensor(s.name, fcfg);

    // Drive.
    const double dt = 0.01;
    for (double t = 0.0; t <= profile.duration(); t += dt) {
        const auto state = profile.state_at(t);
        const Vec3 f_body = state.specific_force_body();
        std::vector<std::optional<Vec2>> readings;
        readings.reserve(sensors.size());
        for (auto& s : sensors) {
            const auto timing = s.model.sample(f_body, state.omega_body,
                                               Vec3{}, t, dt, state.speed);
            const auto [ax, ay] =
                comm::adxl_decode(timing, s.model.adxl_config());
            readings.emplace_back(Vec2{ax, ay});
        }
        aligner.step(f_body, readings);
    }

    std::printf("per-sensor alignment vs vehicle body after a 300 s drive:\n");
    std::printf("%-8s | %22s | %22s\n", "sensor", "truth (deg)",
                "estimate (deg)");
    double worst = 0.0;
    for (const auto& s : sensors) {
        const auto est = aligner.misalignment(s.id);
        std::printf("%-8s | %+6.2f %+6.2f %+6.2f | %+6.3f %+6.3f %+6.3f\n",
                    s.name, rad2deg(s.truth.roll), rad2deg(s.truth.pitch),
                    rad2deg(s.truth.yaw), rad2deg(est.roll),
                    rad2deg(est.pitch), rad2deg(est.yaw));
        worst = std::max({worst, std::abs(rad2deg(est.roll - s.truth.roll)),
                          std::abs(rad2deg(est.pitch - s.truth.pitch)),
                          std::abs(rad2deg(est.yaw - s.truth.yaw))});
    }

    // The cross-sensor product: lidar-to-video mutual alignment.
    const auto rel = aligner.relative_alignment(sensors[1].id, sensors[0].id);
    const auto rel_truth = math::euler_from_dcm(
        math::dcm_from_euler(sensors[0].truth) *
        math::dcm_from_euler(sensors[1].truth).transposed());
    std::printf("\nlidar->video mutual alignment (what lidar-on-video overlay"
                " needs):\n  estimate %+6.3f %+6.3f %+6.3f deg"
                " | truth %+6.3f %+6.3f %+6.3f deg\n",
                rad2deg(rel.roll), rad2deg(rel.pitch), rad2deg(rel.yaw),
                rad2deg(rel_truth.roll), rad2deg(rel_truth.pitch),
                rad2deg(rel_truth.yaw));

    std::printf("\nworst per-axis error: %.3f deg\n", worst);
    return worst < 0.5 ? 0 : 1;
}
