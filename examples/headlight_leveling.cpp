// The paper's §12: "Future implementations will demonstrate ... alignment
// for other sensor features such as headlights." Adaptive headlights need
// the beam axis aligned to the vehicle; a bumper knock that tilts the
// lamp pod dazzles oncoming traffic or shortens the lit range.
//
// The same fusion engine solves it: an accelerometer on the lamp pod vs
// the vehicle IMU. Regulations (ECE R48-class) put initial aiming within
// about 0.57 deg (1%): the filter must detect a knocked pod and deliver a
// correction well inside that band, while the vehicle just drives.

#include <cstdio>

#include "core/boresight_ekf.hpp"
#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "system/experiment.hpp"

using namespace ob;
using math::EulerAngles;
using math::rad2deg;

int main() {
    // Pod knocked 0.9 deg down and 0.5 deg right at the start of the run —
    // the library spec's default truth. Its builder zeroes the instrument
    // biases (pod sensor and IMU are factory-calibrated).
    const auto& spec = sim::ScenarioLibrary::instance().at("headlight-leveling");
    const EulerAngles pod_error = spec.misalignment;
    const double aim_limit_deg = 0.57;  // ~1% beam aim band

    auto scfg = spec.build(300.0, pod_error, 41);
    sim::Scenario sc(scfg, 99);

    core::BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = spec.meas_noise_mps2;
    core::BoresightEkf ekf(fcfg);

    std::printf("%8s | %12s | %12s | %s\n", "t (s)", "pitch est", "3-sigma",
                "verdict");
    double detected_at = -1.0;
    while (auto s = sc.next()) {
        const auto d = system::decode_step(sc, *s);
        (void)ekf.step(d.f_body, d.acc_xy);
        const double pitch = rad2deg(ekf.misalignment().pitch);
        const double s3 = rad2deg(ekf.misalignment_sigma3()[1]);
        // Detection: the estimated pod pitch error exceeds its own 3-sigma
        // AND the regulatory band is threatened.
        if (detected_at < 0.0 && std::abs(pitch) > s3 &&
            std::abs(pitch) > 0.5 * aim_limit_deg) {
            detected_at = s->t;
        }
        if (static_cast<int>(s->t * 100) % 6000 == 0) {
            std::printf("%8.0f | %+9.3f deg | %9.3f deg | %s\n", s->t, pitch,
                        s3,
                        std::abs(pitch) > aim_limit_deg
                            ? "outside aim band -> re-level"
                            : "within aim band");
        }
    }

    const double final_pitch = rad2deg(ekf.misalignment().pitch);
    const double truth_pitch = rad2deg(pod_error.pitch);
    std::printf("\npod pitch error: truth %+0.2f deg, estimated %+0.3f deg\n",
                truth_pitch, final_pitch);
    if (detected_at >= 0.0) {
        std::printf("mis-aim detected %.1f s into the drive — the leveling "
                    "actuator can correct by %+0.3f deg without a workshop "
                    "visit.\n",
                    detected_at, -final_pitch);
    }
    const double err = std::abs(final_pitch - truth_pitch);
    return (err < 0.2 && detected_at >= 0.0) ? 0 : 1;
}
