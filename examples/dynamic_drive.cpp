// Dynamic alignment during a city drive, through the complete transport
// chain: DMU over CAN -> CAN/RS232 bridge -> serial deframing, ACC duty
// cycle packets over their own serial line, adaptive measurement-noise
// tuning, and a CSV trace for offline plotting.
//
// This is the paper's §11.2 dynamic test as a deployable program shape.

#include <cstdio>

#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "system/boresight_system.hpp"
#include "util/artifacts.hpp"
#include "util/csv.hpp"

using namespace ob;

int main() {
    const math::EulerAngles truth = math::EulerAngles::from_deg(1.2, -0.8, 1.5);

    auto scenario_cfg = sim::ScenarioLibrary::instance().at("city-drive")
                            .build(300.0, truth, 21);
    sim::Scenario scenario(scenario_cfg, /*sensor seed=*/103);

    system::BoresightSystem::Config cfg;
    cfg.filter.meas_noise_mps2 = 0.003;  // deliberately the static tuning...
    cfg.use_adaptive_tuner = true;       // ...and let the tuner fix it
    cfg.filter.nis_gate = 13.8;
    system::BoresightSystem sys(cfg);

    const std::string trace_path = util::artifact_path("dynamic_drive_trace.csv");
    util::CsvWriter csv(trace_path,
                        {"t", "roll_deg", "pitch_deg", "yaw_deg",
                         "roll_3sigma_deg", "meas_noise"});

    std::printf("%8s | %8s %8s %8s | %10s | %8s\n", "t (s)", "roll", "pitch",
                "yaw", "3s(yaw)", "R sigma");
    while (auto s = scenario.next()) {
        sys.feed(scenario, *s);
        const auto st = sys.status();
        if (s->dmu.seq == 0) {  // roughly every 2.56 s
            csv.row({s->t, math::rad2deg(st.estimate.roll),
                     math::rad2deg(st.estimate.pitch),
                     math::rad2deg(st.estimate.yaw),
                     math::rad2deg(st.sigma3[0]), st.measurement_noise});
        }
        if (static_cast<int>(s->t) % 60 == 0 && s->t - static_cast<int>(s->t) < 0.005) {
            std::printf("%8.1f | %+8.3f %+8.3f %+8.3f | %10.4f | %8.4f\n",
                        s->t, math::rad2deg(st.estimate.roll),
                        math::rad2deg(st.estimate.pitch),
                        math::rad2deg(st.estimate.yaw),
                        math::rad2deg(st.sigma3[2]), st.measurement_noise);
        }
    }

    const auto st = sys.status();
    std::printf("\ntruth    : roll %+0.2f pitch %+0.2f yaw %+0.2f deg\n",
                1.2, -0.8, 1.5);
    std::printf("estimate : roll %+0.3f pitch %+0.3f yaw %+0.3f deg\n",
                math::rad2deg(st.estimate.roll),
                math::rad2deg(st.estimate.pitch),
                math::rad2deg(st.estimate.yaw));
    std::printf("fused %zu epochs; adaptive R settled at %.4f m/s^2 "
                "(paper's manual retune: 0.015+)\n",
                st.updates, st.measurement_noise);
    std::printf("worst CAN queueing latency: %.2f us\n",
                st.worst_transport_latency * 1e6);
    std::printf("trace written to %s\n", trace_path.c_str());
    return 0;
}
