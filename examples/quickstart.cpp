// Quickstart: estimate the mounting misalignment of a camera-fixed
// accelerometer against a vehicle IMU in a dozen lines of library code.
//
// What happens: a simulated vehicle sits on a tilt bench; the camera's ACC
// is mounted 1.5/-2.0/2.5 degrees off in roll/pitch/yaw; the Kalman fusion
// filter recovers those angles from the disagreement between the two
// sensors' view of gravity, together with a 3-sigma confidence.

#include <cstdio>

#include "core/alignment_report.hpp"
#include "math/rotation.hpp"
#include "system/experiment.hpp"

using namespace ob;

int main() {
    const math::EulerAngles true_misalignment =
        math::EulerAngles::from_deg(1.5, -2.0, 2.5);

    system::ExperimentConfig cfg;
    cfg.label = "quickstart";
    // 300 seconds on a tilt bench cycling through platform orientations so
    // every axis is observable (see DESIGN.md on observability).
    cfg.scenario = sim::ScenarioConfig::static_tilted(
        300.0, true_misalignment, math::EulerAngles::from_deg(12.0, 8.0, 0.0));
    cfg.sensor_seed = 42;
    cfg.filter.meas_noise_mps2 = 0.0075;  // the paper's static tuning band

    const auto outcome = system::run_experiment(cfg);

    std::printf("calibration: bias=(%.4f, %.4f) m/s^2, noise=%.4f m/s^2\n",
                outcome.calibrated_bias[0], outcome.calibrated_bias[1],
                outcome.calibration_noise);
    std::printf("%s\n", core::alignment_table_header().c_str());
    std::printf("%s\n", core::alignment_table_row(outcome.result).c_str());
    std::printf("\nmax error: %.3f deg (automotive requirement class: 0.5 deg)\n",
                outcome.result.max_error_deg());
    std::printf("note: the reported 3-sigma covers random error; at the "
                "millidegree level the\nresidual systematic instrument errors "
                "(scale factor, cross-axis) dominate,\nwhich is why the paper "
                "quotes accuracy against requirements, not sigma alone.\n");
    return outcome.result.max_error_deg() < 0.5 ? 0 : 1;
}
