// P7 — cost of IEEE-754 emulation: the paper ran the filter's floating
// point through the Berkeley Softfloat library because Sabre has no FPU.
// This bench quantifies the emulation penalty per operation class against
// the host's hardware FPU.

#include <benchmark/benchmark.h>

#include "softfloat/softfloat.hpp"
#include "util/rng.hpp"

namespace {

namespace sf = ob::softfloat;
using ob::util::Rng;

std::vector<std::pair<sf::F32, sf::F32>> operand_corpus() {
    Rng rng(0xBEEF);
    std::vector<std::pair<sf::F32, sf::F32>> ops;
    ops.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
        // Finite, normal-range operands (the filter's working regime).
        const float a = static_cast<float>(rng.gaussian(100.0));
        const float b = static_cast<float>(rng.gaussian(100.0) + 1e-3);
        ops.emplace_back(sf::from_host(a), sf::from_host(b));
    }
    return ops;
}

void BM_SoftfloatAdd(benchmark::State& state) {
    const auto ops = operand_corpus();
    sf::Context ctx;
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& [a, b] = ops[i++ & 4095];
        benchmark::DoNotOptimize(sf::add(a, b, ctx));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftfloatAdd);

void BM_SoftfloatMul(benchmark::State& state) {
    const auto ops = operand_corpus();
    sf::Context ctx;
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& [a, b] = ops[i++ & 4095];
        benchmark::DoNotOptimize(sf::mul(a, b, ctx));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftfloatMul);

void BM_SoftfloatDiv(benchmark::State& state) {
    const auto ops = operand_corpus();
    sf::Context ctx;
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& [a, b] = ops[i++ & 4095];
        benchmark::DoNotOptimize(sf::div(a, b, ctx));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftfloatDiv);

void BM_SoftfloatSqrt(benchmark::State& state) {
    const auto ops = operand_corpus();
    sf::Context ctx;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sf::sqrt(sf::abs(ops[i++ & 4095].first), ctx));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftfloatSqrt);

// Host-FPU reference points.
void BM_HostAdd(benchmark::State& state) {
    const auto ops = operand_corpus();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& [a, b] = ops[i++ & 4095];
        volatile float r = sf::to_host(a) + sf::to_host(b);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostAdd);

void BM_HostDiv(benchmark::State& state) {
    const auto ops = operand_corpus();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& [a, b] = ops[i++ & 4095];
        volatile float r = sf::to_host(a) / sf::to_host(b);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostDiv);

}  // namespace

BENCHMARK_MAIN();
