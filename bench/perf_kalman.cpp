// P1 — the feasibility claim behind the paper's architecture: the Kalman
// fusion runs comfortably at sensor rate even on a modest soft core with
// emulated floating point. This bench measures the filter update cost on
// every execution tier the repository models:
//
//   * native double-precision EKF (the development reference),
//   * softfloat binary32 arithmetic (the paper's Softfloat library path),
//   * the generated Sabre firmware on the ISS (cycle-model cost).

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/boresight_ekf.hpp"
#include "math/rotation.hpp"
#include "softfloat/softfloat.hpp"
#include "system/sabre_runner.hpp"

namespace {

using namespace ob;
using math::Vec2;
using math::Vec3;

Vec3 excitation(int k) {
    const double phase = 0.013 * k;
    return Vec3{2.0 * std::sin(phase), 1.5 * std::cos(1.7 * phase), -9.80665};
}

void BM_NativeEkfUpdate(benchmark::State& state) {
    core::BoresightConfig cfg;
    core::BoresightEkf ekf(cfg);
    int k = 0;
    for (auto _ : state) {
        const Vec3 f = excitation(k);
        const Vec2 z{f[0], f[1]};
        benchmark::DoNotOptimize(ekf.step(f, z));
        ++k;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NativeEkfUpdate);

void BM_NativeEkfUpdateNumericJacobian(benchmark::State& state) {
    core::BoresightConfig cfg;
    cfg.jacobian = core::JacobianMode::kNumeric;
    core::BoresightEkf ekf(cfg);
    int k = 0;
    for (auto _ : state) {
        const Vec3 f = excitation(k);
        benchmark::DoNotOptimize(ekf.step(f, Vec2{f[0], f[1]}));
        ++k;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NativeEkfUpdateNumericJacobian);

/// The ~150 softfloat operations one firmware Kalman update performs,
/// executed directly (no ISS) — isolates the IEEE-emulation cost.
void BM_SoftfloatKalmanArithmetic(benchmark::State& state) {
    namespace sf = ob::softfloat;
    sf::Context ctx;
    sf::F32 acc = sf::from_host(1.0f);
    const sf::F32 b = sf::from_host(1.0001f);
    for (auto _ : state) {
        // 150 dependent mul/add pairs approximating the update's mix.
        for (int i = 0; i < 75; ++i) {
            acc = sf::mul(acc, b, ctx);
            acc = sf::add(acc, b, ctx);
        }
        benchmark::DoNotOptimize(acc);
        // Renormalize to avoid drifting to infinity across iterations.
        acc = sf::from_host(1.0f);
    }
    state.SetItemsProcessed(state.iterations() * 150);
}
BENCHMARK(BM_SoftfloatKalmanArithmetic);

/// Full firmware update on the instruction-set simulator (host wall time;
/// the architectural cycle cost is reported as a counter).
void BM_SabreFirmwareUpdate(benchmark::State& state) {
    system::SabreFusionSystem sys;
    const comm::DmuScale scale;
    comm::DmuSample dmu;
    dmu.accel[2] = scale.accel_to_raw(-9.80665);
    std::uint8_t seq = 0;
    for (auto _ : state) {
        sys.push(dmu, comm::adxl_encode(0.0, 0.0, seq++, comm::AdxlConfig{}));
        benchmark::DoNotOptimize(sys.run_pending());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["sabre_cycles_per_update"] = sys.cycles_per_update();
    state.counters["fpu_ops_per_update"] =
        static_cast<double>(sys.fpu_operations()) /
        static_cast<double>(state.iterations());
    // Real-time margin at the RC200E-era 25 MHz clock, 100 Hz sensor rate.
    state.counters["x_realtime_at_25MHz_100Hz"] =
        25e6 / sys.cycles_per_update() / 100.0;
}
BENCHMARK(BM_SabreFirmwareUpdate);

}  // namespace

BENCHMARK_MAIN();
