// P1b — soft-core execution characteristics: ISS throughput on the host,
// plus the architectural cycle counts of representative workloads (what
// the real fabric would spend).

#include <benchmark/benchmark.h>

#include "sabre/assembler.hpp"
#include "sabre/cpu.hpp"
#include "sabre/firmware.hpp"
#include "sabre/peripherals.hpp"

namespace {

using namespace ob::sabre;

const char* kDhrystoneish = R"(
    ; integer-heavy inner loop: arithmetic, memory traffic, branching
    addi r1, zero, 0      ; accumulator
    addi r2, zero, 1000   ; iterations
    addi r3, zero, 0x100  ; buffer base
loop:
    mul r4, r2, r2
    add r1, r1, r4
    sw r1, 0(r3)
    lw r5, 0(r3)
    xor r1, r1, r5
    srli r6, r1, 3
    or r1, r1, r6
    addi r2, r2, -1
    bne r2, zero, loop
    halt
)";

void run_integer_loop(benchmark::State& state, DispatchMode mode) {
    // One predecode shared across iterations, like the fleet shares the
    // firmware image across scenario realizations.
    const auto image =
        std::make_shared<const DecodedProgram>(assemble(kDhrystoneish));
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        SabreCpu cpu(image, mode);
        cpu.run(100'000'000);
        cycles = cpu.cycles();
        instructions = cpu.instructions();
        benchmark::DoNotOptimize(cpu.reg(1));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(instructions));
    state.counters["arch_cycles"] = static_cast<double>(cycles);
    state.counters["arch_cpi"] =
        static_cast<double>(cycles) / static_cast<double>(instructions);
}

void BM_IssIntegerLoop(benchmark::State& state) {
    run_integer_loop(state, DispatchMode::kCached);
}
BENCHMARK(BM_IssIntegerLoop);

void BM_IssIntegerLoopInterpreter(benchmark::State& state) {
    run_integer_loop(state, DispatchMode::kInterpreter);
}
BENCHMARK(BM_IssIntegerLoopInterpreter);

void BM_AssembleFirmware(benchmark::State& state) {
    const std::string src = boresight_firmware_source();
    std::size_t words = 0;
    for (auto _ : state) {
        const Program p = assemble(src);
        words = p.words.size();
        benchmark::DoNotOptimize(p.words.data());
    }
    state.counters["firmware_words"] = static_cast<double>(words);
    state.counters["program_mem_used_pct"] =
        100.0 * static_cast<double>(words) / kProgramWords;
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AssembleFirmware);

void BM_FpuPeripheralOp(benchmark::State& state) {
    FpuPeripheral fpu;
    fpu.write(0x0, 0x3FC00000);  // 1.5f
    fpu.write(0x4, 0x40100000);  // 2.25f
    for (auto _ : state) {
        fpu.write(0x8, FpuPeripheral::kMul);
        benchmark::DoNotOptimize(fpu.read(0xC));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FpuPeripheralOp);

}  // namespace

BENCHMARK_MAIN();
