// Reproduces Figure 8 of the paper: "X Axis residuals from Static (Top)
// and Dynamic (Bottom) Tests" — the fusion residual plotted against its
// +-3-sigma envelope.
//
// Expected shape (paper §11): the static run's residuals sit well within
// the 3-sigma envelope; a moving run evaluated with the static measurement
// noise exceeds the envelope far more often than the nominal ~1/100
// samples, "since the residuals should only exceed the 3-sigma value about
// once every 100 samples, the Filter noise was increased" — after which
// the envelope is consistent again.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "system/experiment.hpp"
#include "util/ascii_plot.hpp"

namespace {

using namespace ob;
using math::EulerAngles;
using system::ExperimentConfig;
using system::ExperimentOutcome;

ExperimentOutcome run_case(const char* label, bool dynamic, double r_sigma,
                           bool adaptive = false) {
    ExperimentConfig cfg;
    cfg.label = label;
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.0, 1.0);
    const auto& spec = sim::ScenarioLibrary::instance().at(
        dynamic ? "city-drive" : "static-level");
    cfg.scenario = spec.build(300.0, truth, 9);
    cfg.sensor_seed = 2112;
    cfg.filter.meas_noise_mps2 = r_sigma;
    cfg.record_traces = true;
    cfg.use_adaptive_tuner = adaptive;
    return system::run_experiment(cfg);
}

void plot_case(const ExperimentOutcome& o, const char* title) {
    util::AsciiPlot plot(110, 22);
    plot.set_title(title);
    // Skip the first 10 s: the initial covariance transient would dwarf
    // the steady-state envelope the figure is about.
    const auto upper = o.trace.sigma3_x.window(10.0, 1e9);
    const auto resid = o.trace.residual_x.window(10.0, 1e9);
    std::vector<double> lower(upper.values().begin(), upper.values().end());
    for (auto& v : lower) v = -v;
    plot.add_series("+3 sigma", upper.values(), '^');
    plot.add_series("-3 sigma", lower, 'v');
    plot.add_series("residual x", resid.values(), '*');
    // Fix the y-range to a few envelopes so bursts stay visible without
    // flattening the band.
    double sigma_typ = 0.0;
    for (const double s : upper.values()) sigma_typ = std::max(sigma_typ, s);
    double resid_max = 0.0;
    for (const double r : resid.values())
        resid_max = std::max(resid_max, std::abs(r));
    const double span = std::min(std::max(1.6 * sigma_typ, 1.1 * resid_max),
                                 3.0 * sigma_typ + 0.5 * resid_max);
    plot.set_y_range(-span, span);
    plot.set_x_label("time 10..300 s");
    std::printf("%s\n", plot.render().c_str());
    std::printf("  exceedance rate: %.3f%%  (consistent filter: ~0.27%%, "
                "paper's rule of thumb: ~1%%)\n\n",
                100.0 * o.result.exceedance_rate);
}

}  // namespace

int main() {
    std::printf("==================================================\n");
    std::printf("Figure 8 — X-axis residuals vs 3-sigma envelope\n");
    std::printf("==================================================\n\n");

    // Top panel: static test, statically-tuned noise (well within bounds).
    const auto static_run = run_case("static R=0.0075", false, 0.0075);
    plot_case(static_run, "STATIC test (R = 0.0075 m/s^2)");

    // Bottom panel, first attempt: moving test with the static tuning —
    // residuals burst through the envelope.
    const auto undertuned = run_case("dynamic R=0.003", true, 0.003);
    plot_case(undertuned, "DYNAMIC test, static tuning (R = 0.003 m/s^2)");

    // The paper's fix: raise the filter noise to 0.015+.
    const auto retuned = run_case("dynamic R=0.02", true, 0.02);
    plot_case(retuned, "DYNAMIC test, retuned (R = 0.02 m/s^2)");

    // Automation of the same procedure: the adaptive tuner raises R until
    // the exceedance rate is healthy.
    const auto adaptive = run_case("dynamic adaptive", true, 0.003, true);
    std::printf("Adaptive tuner starting from static R=0.003:\n");
    std::printf("  final R = %.4f m/s^2 (paper's manual retune: 0.015+)\n",
                adaptive.result.meas_noise);
    std::printf("  exceedance rate: %.3f%%\n\n",
                100.0 * adaptive.result.exceedance_rate);

    // Verdict on the figure's shape.
    int failures = 0;
    if (static_run.result.exceedance_rate > 0.02) {
        std::printf("!! static residuals exceed envelope too often\n");
        ++failures;
    }
    if (undertuned.result.exceedance_rate < 0.05) {
        std::printf("!! under-tuned dynamic run should burst the envelope\n");
        ++failures;
    }
    if (retuned.result.exceedance_rate > 0.02) {
        std::printf("!! retuned dynamic run should be consistent\n");
        ++failures;
    }
    if (adaptive.result.meas_noise < 0.01) {
        std::printf("!! adaptive tuner failed to raise R\n");
        ++failures;
    }
    std::printf("%s: residual/3-sigma behaviour matches Figure 8's shape\n",
                failures == 0 ? "PASS" : "FAIL");
    return failures == 0 ? 0 : 1;
}
