// P5 — transport headroom: the sensor links must carry the 100 Hz fusion
// rate with margin. Measures CAN frame overhead/bus utilization, the
// CAN->RS232 bridge, and the ADXL duty-cycle codec, and prints the margin
// against the paper's sensor rates.

#include <benchmark/benchmark.h>

#include "comm/bridge.hpp"
#include "comm/can.hpp"
#include "comm/codec.hpp"
#include "comm/slip.hpp"
#include "comm/uart.hpp"

namespace {

using namespace ob::comm;

void BM_CanFrameWireBits(benchmark::State& state) {
    CanFrame f;
    f.id = 0x100;
    f.dlc = 8;
    for (std::uint8_t i = 0; i < 8; ++i) f.data[i] = i * 37;
    std::size_t bits = 0;
    for (auto _ : state) {
        bits = can_wire_bits(f);
        benchmark::DoNotOptimize(bits);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["wire_bits_per_frame"] = static_cast<double>(bits);
    // Two frames per 100 Hz sample on a 500 kbit/s bus.
    state.counters["bus_utilization_pct"] =
        100.0 * (2.0 * static_cast<double>(bits) * 100.0) / 500000.0;
}
BENCHMARK(BM_CanFrameWireBits);

void BM_DmuEncodeDecode(benchmark::State& state) {
    DmuSample s;
    s.seq = 1;
    s.gyro = {100, 200, 300};
    s.accel = {-100, -200, -300};
    DmuCodec codec;
    for (auto _ : state) {
        const auto [gf, af] = DmuCodec::encode(s);
        benchmark::DoNotOptimize(codec.feed(gf, 0.0));
        benchmark::DoNotOptimize(codec.feed(af, 0.0));
        ++s.seq;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DmuEncodeDecode);

void BM_AdxlSerializeRoundTrip(benchmark::State& state) {
    const AdxlConfig cfg;
    AdxlDeserializer dec;
    std::uint8_t seq = 0;
    for (auto _ : state) {
        const auto t = adxl_encode(1.5, -0.5, seq++, cfg);
        for (const auto b : adxl_serialize(t)) {
            benchmark::DoNotOptimize(dec.feed(b, 0.0));
        }
    }
    state.SetItemsProcessed(state.iterations());
    // 12-byte packet at 100 Hz on a 115200-baud line.
    state.counters["acc_line_utilization_pct"] =
        100.0 * (12.0 * 10.0 * 100.0) / 115200.0;
}
BENCHMARK(BM_AdxlSerializeRoundTrip);

void BM_BridgeEndToEnd(benchmark::State& state) {
    CanFrame f;
    f.id = 0x100;
    f.dlc = 8;
    for (auto _ : state) {
        state.PauseTiming();
        UartLink uart(115200.0);
        CanSerialBridge bridge(uart);
        CanSerialDeframer deframer;
        state.ResumeTiming();
        bridge.forward(f, 0.0);
        for (const auto& byte : uart.receive_until(1.0)) {
            benchmark::DoNotOptimize(deframer.feed(byte));
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BridgeEndToEnd);

void BM_CanBusSaturation(benchmark::State& state) {
    // Worst-case latency when a full sample burst hits the bus at once.
    double latency = 0.0;
    for (auto _ : state) {
        CanBus bus(500000.0);
        int delivered = 0;
        bus.on_delivery([&](const CanFrame&, double) { ++delivered; });
        CanFrame f;
        f.dlc = 8;
        for (std::uint16_t id = 0; id < 16; ++id) {
            f.id = static_cast<std::uint16_t>(0x100 + id);
            bus.send(f, 0.0);
        }
        bus.advance_to(1.0);
        latency = bus.max_latency();
        benchmark::DoNotOptimize(delivered);
    }
    state.counters["burst16_worst_latency_us"] = latency * 1e6;
}
BENCHMARK(BM_CanBusSaturation);

}  // namespace

BENCHMARK_MAIN();
