// P2 — "the real-time video transformation has intensive processing
// requirements beyond the capabilities of typical embedded micro and DSP
// devices" (§8). This bench measures the affine engines — float reference
// vs the fixed-point fabric datapath — and reports the cycle-model frame
// rate of the 5-stage pipeline, which is what made the FPGA implementation
// real-time.

#include <benchmark/benchmark.h>

#include "math/rotation.hpp"
#include "video/affine.hpp"
#include "video/pipeline.hpp"
#include "video/video_system.hpp"

namespace {

using namespace ob;
using ob::math::deg2rad;

const video::Frame& test_frame() {
    static const video::Frame f = video::make_test_pattern(320, 240);
    return f;
}

video::AffineParams params() {
    video::AffineParams p;
    p.theta_rad = deg2rad(4.0);
    p.bx_px = 6.0;
    p.by_px = -4.0;
    return p;
}

void BM_AffineFloatBilinear(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            video::affine_reference(test_frame(), params(), true));
    }
    state.SetItemsProcessed(state.iterations() * 320 * 240);
}
BENCHMARK(BM_AffineFloatBilinear);

void BM_AffineFloatNearest(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            video::affine_reference(test_frame(), params(), false));
    }
    state.SetItemsProcessed(state.iterations() * 320 * 240);
}
BENCHMARK(BM_AffineFloatNearest);

void BM_AffineFixedInverse(benchmark::State& state) {
    const video::TrigLut lut;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            video::affine_fixed_inverse(test_frame(), lut, params()));
    }
    state.SetItemsProcessed(state.iterations() * 320 * 240);
}
BENCHMARK(BM_AffineFixedInverse);

void BM_AffineFixedForward(benchmark::State& state) {
    const video::TrigLut lut;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            video::affine_fixed_forward(test_frame(), lut, params()));
    }
    state.SetItemsProcessed(state.iterations() * 320 * 240);
}
BENCHMARK(BM_AffineFixedForward);

/// The cycle-accurate pipeline model: wall time is simulation overhead;
/// the counters carry the architectural result (1 px/cycle + 4 cycles).
void BM_PipelineCycleModel(benchmark::State& state) {
    const video::TrigLut lut;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const auto res =
            video::pipeline_transform_frame(test_frame(), lut, params());
        cycles = res.timing.cycles;
        benchmark::DoNotOptimize(res.frame);
    }
    state.counters["cycles_per_frame"] = static_cast<double>(cycles);
    state.counters["fps_at_25.175MHz"] =
        25.175e6 / static_cast<double>(cycles);
    state.SetItemsProcessed(state.iterations() * 320 * 240);
}
BENCHMARK(BM_PipelineCycleModel);

/// Fixed-vs-float quality: not a speed benchmark — the counter reports the
/// PSNR of the fixed-point datapath against the float reference.
void BM_FixedPointQuality(benchmark::State& state) {
    const video::TrigLut lut;
    double psnr = 0.0;
    for (auto _ : state) {
        // Exact-LUT angle isolates datapath quantization.
        video::AffineParams p;
        p.theta_rad = 2.0 * math::kPi * 12.0 / 1024.0;
        const auto fixed = video::affine_fixed_inverse(test_frame(), lut, p);
        const auto ref = video::affine_reference(test_frame(), p, false);
        psnr = fixed.psnr_against(ref);
        benchmark::DoNotOptimize(psnr);
    }
    state.counters["psnr_vs_float_dB"] = psnr;
}
BENCHMARK(BM_FixedPointQuality);

}  // namespace

BENCHMARK_MAIN();
