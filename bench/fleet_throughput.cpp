// Fleet-scale scenario sweep: every library scenario end to end through the
// full-transport BoresightSystem, on the native EKF and on the Sabre
// firmware, dispatched across a thread pool. Reports wall-clock throughput
// (scenarios/sec, epochs/sec), a per-stage cost breakdown of the transport
// hot path (uart_drain, can_advance, codec, fusion), a steady-state heap
// allocation count, and the envelope verdict per run — and writes the whole
// thing to BENCH_fleet.json so the perf trajectory of the fleet path is
// machine-trackable (bench/compare_bench.py gates regressions against
// bench/baselines/BENCH_fleet.baseline.json).

#include <chrono>
#include <cstdio>
#include <vector>

#include "comm/bridge.hpp"
#include "comm/can.hpp"
#include "comm/codec.hpp"
#include "comm/uart.hpp"
#include "core/boresight_ekf.hpp"
#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "system/boresight_system.hpp"
#include "system/experiment.hpp"
#include "system/fleet.hpp"
#include "util/alloc_counter.hpp"
#include "util/artifacts.hpp"
#include "util/json.hpp"

OB_DEFINE_COUNTING_OPERATOR_NEW

namespace {

using namespace ob;
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-stage cost on the representative city drive: raw scenario synthesis,
/// full transport feed (with a breakdown of its phases), the bare fusion
/// update, and the steady-state allocation rate of `feed`.
struct StageCosts {
    double sim_epoch_us = 0.0;
    double transport_feed_us = 0.0;
    double fusion_update_us = 0.0;
    // Breakdown of the transport feed, measured on a manually assembled
    // chain mirroring BoresightSystem::feed stage by stage.
    double encode_send_us = 0.0;  ///< codec encode + bus/uart enqueue
    double can_advance_us = 0.0;  ///< bus timing + bridge + slip + uart send
    double uart_drain_us = 0.0;   ///< ring-buffer drain of both links
    double codec_us = 0.0;        ///< deframe + DMU pair + ADXL deserialize
    double fusion_us = 0.0;       ///< EKF step on completed pairs
    double feed_allocs_per_epoch = 0.0;  ///< steady-state heap allocations
    std::size_t epochs = 0;
};

/// Time the phases of the transport chain separately. The chain is the
/// same component graph BoresightSystem::feed drives; bytes are drained
/// into a reusable scratch buffer so the drain and decode phases can be
/// timed apart.
void measure_transport_breakdown(StageCosts& out) {
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 7);
    sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
    std::vector<sim::Scenario::Step> steps;
    while (auto s = sc.next()) steps.push_back(*s);

    comm::CanBus can;
    comm::UartLink dmu_uart, acc_uart;
    comm::CanSerialBridge bridge(dmu_uart);
    comm::CanSerialDeframer deframer;
    comm::DmuCodec dmu_codec;
    comm::AdxlDeserializer acc_deser;
    can.set_direct_delivery(
        [](void* ctx, const comm::CanFrame& f, double t) {
            static_cast<comm::CanSerialBridge*>(ctx)->forward(f, t);
        },
        &bridge);
    core::BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = spec.meas_noise_mps2;
    core::BoresightEkf ekf(fcfg);
    const comm::DmuScale dmu_scale;
    const comm::AdxlConfig adxl = sc.adxl_config();

    comm::CanFrame gyro_frame, accel_frame;
    std::array<std::uint8_t, comm::kAdxlPacketSize> acc_packet{};
    std::vector<comm::UartByte> scratch_bytes;
    scratch_bytes.reserve(256);
    std::optional<comm::DmuSample> pending_dmu;
    std::optional<comm::AdxlTiming> pending_acc;

    double t_encode = 0.0, t_advance = 0.0, t_drain = 0.0, t_codec = 0.0,
           t_fusion = 0.0;
    for (const auto& step : steps) {
        const double t = step.t;
        const double horizon = t + 0.5 / sc.sample_rate_hz();

        auto t0 = Clock::now();
        comm::DmuCodec::encode_into(step.dmu, gyro_frame, accel_frame);
        can.send(gyro_frame, t);
        can.send(accel_frame, t);
        comm::adxl_serialize_into(step.adxl, acc_packet);
        acc_uart.send(acc_packet, t);
        auto t1 = Clock::now();
        can.advance_to(horizon);
        auto t2 = Clock::now();
        scratch_bytes.clear();
        const std::size_t dmu_end = [&] {
            dmu_uart.drain_until(horizon, [&](const comm::UartByte& b) {
                scratch_bytes.push_back(b);
            });
            return scratch_bytes.size();
        }();
        acc_uart.drain_until(horizon, [&](const comm::UartByte& b) {
            scratch_bytes.push_back(b);
        });
        auto t3 = Clock::now();
        for (std::size_t i = 0; i < dmu_end; ++i) {
            if (auto frame = deframer.feed(scratch_bytes[i])) {
                if (auto sample = dmu_codec.feed(*frame, scratch_bytes[i].t))
                    pending_dmu = sample;
            }
        }
        for (std::size_t i = dmu_end; i < scratch_bytes.size(); ++i) {
            if (scratch_bytes[i].framing_error) continue;
            if (auto timing =
                    acc_deser.feed(scratch_bytes[i].value, scratch_bytes[i].t)) {
                if (comm::adxl_plausible(*timing, adxl)) pending_acc = timing;
            }
        }
        auto t4 = Clock::now();
        if (pending_dmu && pending_acc) {
            math::Vec3 f_body;
            for (std::size_t i = 0; i < 3; ++i)
                f_body[i] = dmu_scale.raw_to_accel(pending_dmu->accel[i]);
            const auto [ax, ay] = comm::adxl_decode(*pending_acc, adxl);
            (void)ekf.step(f_body, math::Vec2{ax, ay});
            pending_dmu.reset();
            pending_acc.reset();
        }
        auto t5 = Clock::now();

        t_encode += std::chrono::duration<double>(t1 - t0).count();
        t_advance += std::chrono::duration<double>(t2 - t1).count();
        t_drain += std::chrono::duration<double>(t3 - t2).count();
        t_codec += std::chrono::duration<double>(t4 - t3).count();
        t_fusion += std::chrono::duration<double>(t5 - t4).count();
    }
    const auto n = static_cast<double>(steps.size());
    out.encode_send_us = 1e6 * t_encode / n;
    out.can_advance_us = 1e6 * t_advance / n;
    out.uart_drain_us = 1e6 * t_drain / n;
    out.codec_us = 1e6 * t_codec / n;
    out.fusion_us = 1e6 * t_fusion / n;
}

StageCosts measure_stages() {
    StageCosts out;
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 7);

    {  // scenario synthesis alone
        sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
        const auto t0 = Clock::now();
        while (auto s = sc.next()) ++out.epochs;
        out.sim_epoch_us =
            1e6 * seconds_since(t0) / static_cast<double>(out.epochs);
    }
    {  // transport + fusion via the full system, plus steady-state allocs
        sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
        system::BoresightSystem::Config cfg;
        cfg.filter.meas_noise_mps2 = spec.meas_noise_mps2;
        system::BoresightSystem sys(cfg);
        std::vector<sim::Scenario::Step> steps;
        while (auto s = sc.next()) steps.push_back(*s);
        // Warm-up: let every ring buffer and scratch vector reach its
        // high-water capacity before counting.
        const std::size_t warmup = std::min<std::size_t>(200, steps.size());
        for (std::size_t i = 0; i < warmup; ++i) sys.feed(sc, steps[i]);
        const std::uint64_t allocs0 = util::alloc_count();
        const auto t0 = Clock::now();
        for (std::size_t i = warmup; i < steps.size(); ++i)
            sys.feed(sc, steps[i]);
        const double elapsed = seconds_since(t0);
        const auto counted = static_cast<double>(steps.size() - warmup);
        out.transport_feed_us = 1e6 * elapsed / counted;
        out.feed_allocs_per_epoch =
            static_cast<double>(util::alloc_count() - allocs0) / counted;
    }
    {  // bare fusion update on decoded measurements
        sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
        core::BoresightConfig fcfg;
        fcfg.meas_noise_mps2 = spec.meas_noise_mps2;
        core::BoresightEkf ekf(fcfg);
        std::vector<system::DecodedMeasurement> ms;
        while (auto s = sc.next()) ms.push_back(system::decode_step(sc, *s));
        const auto t0 = Clock::now();
        for (const auto& m : ms) (void)ekf.step(m.f_body, m.acc_xy);
        out.fusion_update_us =
            1e6 * seconds_since(t0) / static_cast<double>(ms.size());
    }
    measure_transport_breakdown(out);
    return out;
}

}  // namespace

int main() {
    const system::FleetRunner runner;
    std::printf("fleet runner: %zu worker thread(s)\n\n", runner.threads());

    auto jobs =
        system::full_library_jobs(system::BoresightSystem::Processor::kNative);
    const auto sabre_jobs =
        system::full_library_jobs(system::BoresightSystem::Processor::kSabre);
    jobs.insert(jobs.end(), sabre_jobs.begin(), sabre_jobs.end());

    const auto t0 = Clock::now();
    const auto results = runner.run(jobs);
    const double elapsed = seconds_since(t0);

    std::size_t total_epochs = 0;
    int failures = 0;
    std::printf("%-20s %-7s %7s | %7s %7s %7s | %9s | %s\n", "scenario",
                "proc", "epochs", "roll", "pitch", "yaw", "resid", "verdict");
    std::printf("%-20s %-7s %7s | %21s | %9s |\n", "", "", "",
                "worst post-settle err (deg)", "rms m/s^2");
    for (const auto& r : results) {
        total_epochs += r.trace.epochs;
        if (!r.within_envelope) ++failures;
        std::printf("%-20s %-7s %7zu | %7.3f %7.3f %7.3f | %9.4f | %s\n",
                    r.scenario.c_str(), system::processor_name(r.processor),
                    r.trace.epochs, r.trace.worst_roll_err_deg,
                    r.trace.worst_pitch_err_deg, r.trace.worst_yaw_err_deg,
                    r.result.residual_rms,
                    r.within_envelope ? "ok" : "OUTSIDE ENVELOPE");
    }

    const auto stages = measure_stages();
    const double scen_per_s = static_cast<double>(results.size()) / elapsed;
    std::printf("\n%zu scenario runs in %.2f s: %.2f scenarios/s, "
                "%.0f epochs/s\n",
                results.size(), elapsed, scen_per_s,
                static_cast<double>(total_epochs) / elapsed);
    std::printf("per-stage cost (city drive): sim %.2f us/epoch, "
                "transport+fusion %.2f us/epoch, bare EKF %.2f us/update\n",
                stages.sim_epoch_us, stages.transport_feed_us,
                stages.fusion_update_us);
    std::printf("transport breakdown: encode+send %.2f, can_advance %.2f, "
                "uart_drain %.2f, codec %.2f, fusion %.2f us/epoch; "
                "steady-state allocs/epoch %.3f\n",
                stages.encode_send_us, stages.can_advance_us,
                stages.uart_drain_us, stages.codec_us, stages.fusion_us,
                stages.feed_allocs_per_epoch);

    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("fleet");
    w.key("threads").value(runner.threads());
    w.key("scenarios").value(sim::ScenarioLibrary::instance().all().size());
    w.key("jobs").value(results.size());
    w.key("elapsed_s").value(elapsed);
    w.key("scenarios_per_sec").value(scen_per_s);
    w.key("epochs_per_sec").value(static_cast<double>(total_epochs) / elapsed);
    w.key("per_stage_us").begin_object();
    w.key("sim_epoch").value(stages.sim_epoch_us);
    w.key("transport_feed").value(stages.transport_feed_us);
    w.key("fusion_update").value(stages.fusion_update_us);
    w.key("uart_drain").value(stages.uart_drain_us);
    w.key("can_advance").value(stages.can_advance_us);
    w.key("codec").value(stages.codec_us);
    w.key("fusion").value(stages.fusion_us);
    w.key("encode_send").value(stages.encode_send_us);
    w.end_object();
    w.key("feed_allocs_per_epoch").value(stages.feed_allocs_per_epoch);
    w.key("runs").begin_array();
    for (const auto& r : results) {
        w.begin_object();
        w.key("scenario").value(r.scenario);
        w.key("processor").value(system::processor_name(r.processor));
        w.key("epochs").value(r.trace.epochs);
        w.key("updates").value(r.final_status.updates);
        w.key("worst_roll_err_deg").value(r.trace.worst_roll_err_deg);
        w.key("worst_pitch_err_deg").value(r.trace.worst_pitch_err_deg);
        w.key("worst_yaw_err_deg").value(r.trace.worst_yaw_err_deg);
        w.key("residual_rms").value(r.result.residual_rms);
        w.key("within_envelope").value(r.within_envelope);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    const std::string bench_path = util::artifact_path("BENCH_fleet.json");
    util::write_file(bench_path, w.str());
    std::printf("wrote %s\n", bench_path.c_str());

    if (failures != 0) {
        std::printf("FAIL: %d run(s) outside their envelope\n", failures);
        return 1;
    }
    std::printf("PASS: every library scenario inside its envelope on both "
                "processors\n");
    return 0;
}
