// Fleet-scale scenario sweep: every library scenario end to end through the
// full-transport BoresightSystem, on the native EKF and on the Sabre
// firmware, dispatched across a thread pool. Reports wall-clock throughput
// (scenarios/sec, epochs/sec), a per-stage cost breakdown, and the envelope
// verdict per run — and writes the whole thing to BENCH_fleet.json so the
// perf trajectory of the fleet path is machine-trackable from this PR on.

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/boresight_ekf.hpp"
#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "system/boresight_system.hpp"
#include "system/experiment.hpp"
#include "system/fleet.hpp"
#include "util/json.hpp"

namespace {

using namespace ob;
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-stage cost on the representative city drive: raw scenario synthesis,
/// full transport feed, and the bare fusion update.
struct StageCosts {
    double sim_epoch_us = 0.0;
    double transport_feed_us = 0.0;
    double fusion_update_us = 0.0;
    std::size_t epochs = 0;
};

StageCosts measure_stages() {
    StageCosts out;
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 7);

    {  // scenario synthesis alone
        sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
        const auto t0 = Clock::now();
        while (auto s = sc.next()) ++out.epochs;
        out.sim_epoch_us =
            1e6 * seconds_since(t0) / static_cast<double>(out.epochs);
    }
    {  // transport + fusion via the full system
        sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
        system::BoresightSystem::Config cfg;
        cfg.filter.meas_noise_mps2 = spec.meas_noise_mps2;
        system::BoresightSystem sys(cfg);
        std::vector<sim::Scenario::Step> steps;
        while (auto s = sc.next()) steps.push_back(*s);
        const auto t0 = Clock::now();
        for (const auto& s : steps) sys.feed(sc, s);
        out.transport_feed_us =
            1e6 * seconds_since(t0) / static_cast<double>(steps.size());
    }
    {  // bare fusion update on decoded measurements
        sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
        core::BoresightConfig fcfg;
        fcfg.meas_noise_mps2 = spec.meas_noise_mps2;
        core::BoresightEkf ekf(fcfg);
        std::vector<system::DecodedMeasurement> ms;
        while (auto s = sc.next()) ms.push_back(system::decode_step(sc, *s));
        const auto t0 = Clock::now();
        for (const auto& m : ms) (void)ekf.step(m.f_body, m.acc_xy);
        out.fusion_update_us =
            1e6 * seconds_since(t0) / static_cast<double>(ms.size());
    }
    return out;
}

}  // namespace

int main() {
    const system::FleetRunner runner;
    std::printf("fleet runner: %zu worker thread(s)\n\n", runner.threads());

    auto jobs =
        system::full_library_jobs(system::BoresightSystem::Processor::kNative);
    const auto sabre_jobs =
        system::full_library_jobs(system::BoresightSystem::Processor::kSabre);
    jobs.insert(jobs.end(), sabre_jobs.begin(), sabre_jobs.end());

    const auto t0 = Clock::now();
    const auto results = runner.run(jobs);
    const double elapsed = seconds_since(t0);

    std::size_t total_epochs = 0;
    int failures = 0;
    std::printf("%-20s %-7s %7s | %7s %7s %7s | %9s | %s\n", "scenario",
                "proc", "epochs", "roll", "pitch", "yaw", "resid", "verdict");
    std::printf("%-20s %-7s %7s | %21s | %9s |\n", "", "", "",
                "worst post-settle err (deg)", "rms m/s^2");
    for (const auto& r : results) {
        total_epochs += r.trace.epochs;
        if (!r.within_envelope) ++failures;
        std::printf("%-20s %-7s %7zu | %7.3f %7.3f %7.3f | %9.4f | %s\n",
                    r.scenario.c_str(), system::processor_name(r.processor),
                    r.trace.epochs, r.trace.worst_roll_err_deg,
                    r.trace.worst_pitch_err_deg, r.trace.worst_yaw_err_deg,
                    r.result.residual_rms,
                    r.within_envelope ? "ok" : "OUTSIDE ENVELOPE");
    }

    const auto stages = measure_stages();
    const double scen_per_s = static_cast<double>(results.size()) / elapsed;
    std::printf("\n%zu scenario runs in %.2f s: %.2f scenarios/s, "
                "%.0f epochs/s\n",
                results.size(), elapsed, scen_per_s,
                static_cast<double>(total_epochs) / elapsed);
    std::printf("per-stage cost (city drive): sim %.2f us/epoch, "
                "transport+fusion %.2f us/epoch, bare EKF %.2f us/update\n",
                stages.sim_epoch_us, stages.transport_feed_us,
                stages.fusion_update_us);

    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("fleet");
    w.key("threads").value(runner.threads());
    w.key("scenarios").value(sim::ScenarioLibrary::instance().all().size());
    w.key("jobs").value(results.size());
    w.key("elapsed_s").value(elapsed);
    w.key("scenarios_per_sec").value(scen_per_s);
    w.key("epochs_per_sec").value(static_cast<double>(total_epochs) / elapsed);
    w.key("per_stage_us").begin_object();
    w.key("sim_epoch").value(stages.sim_epoch_us);
    w.key("transport_feed").value(stages.transport_feed_us);
    w.key("fusion_update").value(stages.fusion_update_us);
    w.end_object();
    w.key("runs").begin_array();
    for (const auto& r : results) {
        w.begin_object();
        w.key("scenario").value(r.scenario);
        w.key("processor").value(system::processor_name(r.processor));
        w.key("epochs").value(r.trace.epochs);
        w.key("updates").value(r.final_status.updates);
        w.key("worst_roll_err_deg").value(r.trace.worst_roll_err_deg);
        w.key("worst_pitch_err_deg").value(r.trace.worst_pitch_err_deg);
        w.key("worst_yaw_err_deg").value(r.trace.worst_yaw_err_deg);
        w.key("residual_rms").value(r.result.residual_rms);
        w.key("within_envelope").value(r.within_envelope);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    util::write_file("BENCH_fleet.json", w.str());
    std::printf("wrote BENCH_fleet.json\n");

    if (failures != 0) {
        std::printf("FAIL: %d run(s) outside their envelope\n", failures);
        return 1;
    }
    std::printf("PASS: every library scenario inside its envelope on both "
                "processors\n");
    return 0;
}
