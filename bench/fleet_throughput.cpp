// Fleet-scale scenario sweep: every library scenario end to end through the
// full-transport BoresightSystem, on the native EKF and on the Sabre
// firmware, dispatched across a thread pool. Reports wall-clock throughput
// (scenarios/sec, epochs/sec), a per-stage cost breakdown of the transport
// hot path (uart_drain, can_advance, codec, fusion), a steady-state heap
// allocation count, and the envelope verdict per run — and writes the whole
// thing to BENCH_fleet.json so the perf trajectory of the fleet path is
// machine-trackable (bench/compare_bench.py gates regressions against
// bench/baselines/BENCH_fleet.baseline.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "comm/bridge.hpp"
#include "comm/can.hpp"
#include "comm/codec.hpp"
#include "comm/uart.hpp"
#include "core/boresight_ekf.hpp"
#include "core/ensemble_ekf.hpp"
#include "math/rotation.hpp"
#include "sim/ensemble_realizer.hpp"
#include "sim/scenario_library.hpp"
#include "sim/scenario_trace.hpp"
#include "system/boresight_system.hpp"
#include "system/ensemble_runner.hpp"
#include "system/experiment.hpp"
#include "system/fleet.hpp"
#include "system/sabre_runner.hpp"
#include "util/alloc_counter.hpp"
#include "util/artifacts.hpp"
#include "util/json.hpp"

OB_DEFINE_COUNTING_OPERATOR_NEW

namespace {

using namespace ob;
using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-stage cost on the representative city drive: raw scenario synthesis
/// (split into the once-per-scenario trace build and the per-seed
/// realization), full transport feed (with a breakdown of its phases), the
/// bare fusion update, and the steady-state allocation rate of `feed`.
struct StageCosts {
    double sim_epoch_us = 0.0;     ///< trace build + realization combined
    double trace_build_us = 0.0;   ///< ScenarioTrace::build, amortizable
    double synthesis_us = 0.0;     ///< per-seed realization over the trace
    double transport_feed_us = 0.0;
    double fusion_update_us = 0.0;
    double sabre_step_us = 0.0;  ///< Sabre ISS fusion (push + pump) per epoch
    // Breakdown of the transport feed, measured on a manually assembled
    // chain mirroring BoresightSystem::feed stage by stage.
    double encode_send_us = 0.0;  ///< codec encode + bus/uart enqueue
    double can_advance_us = 0.0;  ///< bus timing + bridge + slip + uart send
    double uart_drain_us = 0.0;   ///< ring-buffer drain of both links
    double codec_us = 0.0;        ///< deframe + DMU pair + ADXL deserialize
    double fusion_us = 0.0;       ///< EKF step on completed pairs
    double feed_allocs_per_epoch = 0.0;  ///< steady-state heap allocations
    std::size_t epochs = 0;
};

/// Time the phases of the transport chain separately. The chain is the
/// same component graph BoresightSystem::feed drives; bytes are drained
/// into a reusable scratch buffer so the drain and decode phases can be
/// timed apart.
void measure_transport_breakdown(StageCosts& out) {
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 7);
    sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
    std::vector<sim::Scenario::Step> steps;
    while (auto s = sc.next()) steps.push_back(*s);

    comm::CanBus can;
    comm::UartLink dmu_uart, acc_uart;
    comm::CanSerialBridge bridge(dmu_uart);
    comm::CanSerialDeframer deframer;
    comm::DmuCodec dmu_codec;
    comm::AdxlDeserializer acc_deser;
    can.set_direct_delivery(
        [](void* ctx, const comm::CanFrame& f, double t) {
            static_cast<comm::CanSerialBridge*>(ctx)->forward(f, t);
        },
        &bridge);
    core::BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = spec.meas_noise_mps2;
    core::BoresightEkf ekf(fcfg);
    const comm::DmuScale dmu_scale;
    const comm::AdxlConfig adxl = sc.adxl_config();

    comm::CanFrame gyro_frame, accel_frame;
    std::array<std::uint8_t, comm::kAdxlPacketSize> acc_packet{};
    std::vector<comm::UartByte> scratch_bytes;
    scratch_bytes.reserve(256);
    std::optional<comm::DmuSample> pending_dmu;
    std::optional<comm::AdxlTiming> pending_acc;

    double t_encode = 0.0, t_advance = 0.0, t_drain = 0.0, t_codec = 0.0,
           t_fusion = 0.0;
    for (const auto& step : steps) {
        const double t = step.t;
        const double horizon = t + 0.5 / sc.sample_rate_hz();

        auto t0 = Clock::now();
        comm::DmuCodec::encode_into(step.dmu, gyro_frame, accel_frame);
        can.send(gyro_frame, t);
        can.send(accel_frame, t);
        comm::adxl_serialize_into(step.adxl, acc_packet);
        acc_uart.send(acc_packet, t);
        auto t1 = Clock::now();
        can.advance_to(horizon);
        auto t2 = Clock::now();
        scratch_bytes.clear();
        const std::size_t dmu_end = [&] {
            dmu_uart.drain_until(horizon, [&](const comm::UartByte& b) {
                scratch_bytes.push_back(b);
            });
            return scratch_bytes.size();
        }();
        acc_uart.drain_until(horizon, [&](const comm::UartByte& b) {
            scratch_bytes.push_back(b);
        });
        auto t3 = Clock::now();
        for (std::size_t i = 0; i < dmu_end; ++i) {
            if (auto frame = deframer.feed(scratch_bytes[i])) {
                if (auto sample = dmu_codec.feed(*frame, scratch_bytes[i].t))
                    pending_dmu = sample;
            }
        }
        for (std::size_t i = dmu_end; i < scratch_bytes.size(); ++i) {
            if (scratch_bytes[i].framing_error) continue;
            if (auto timing =
                    acc_deser.feed(scratch_bytes[i].value, scratch_bytes[i].t)) {
                if (comm::adxl_plausible(*timing, adxl)) pending_acc = timing;
            }
        }
        auto t4 = Clock::now();
        if (pending_dmu && pending_acc) {
            math::Vec3 f_body;
            for (std::size_t i = 0; i < 3; ++i)
                f_body[i] = dmu_scale.raw_to_accel(pending_dmu->accel[i]);
            const auto [ax, ay] = comm::adxl_decode(*pending_acc, adxl);
            (void)ekf.step(f_body, math::Vec2{ax, ay});
            pending_dmu.reset();
            pending_acc.reset();
        }
        auto t5 = Clock::now();

        t_encode += std::chrono::duration<double>(t1 - t0).count();
        t_advance += std::chrono::duration<double>(t2 - t1).count();
        t_drain += std::chrono::duration<double>(t3 - t2).count();
        t_codec += std::chrono::duration<double>(t4 - t3).count();
        t_fusion += std::chrono::duration<double>(t5 - t4).count();
    }
    const auto n = static_cast<double>(steps.size());
    out.encode_send_us = 1e6 * t_encode / n;
    out.can_advance_us = 1e6 * t_advance / n;
    out.uart_drain_us = 1e6 * t_drain / n;
    out.codec_us = 1e6 * t_codec / n;
    out.fusion_us = 1e6 * t_fusion / n;
}

StageCosts measure_stages() {
    StageCosts out;
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 7);

    {  // scenario synthesis alone (trace build + realization combined, the
       // historical one-shot cost; the profile is prebuilt as before)
        const auto scfg = spec.build(60.0, spec.misalignment, seed);
        const auto t0 = Clock::now();
        sim::Scenario sc(scfg, seed);
        while (auto s = sc.next()) ++out.epochs;
        out.sim_epoch_us =
            1e6 * seconds_since(t0) / static_cast<double>(out.epochs);
    }
    {  // the Plan/Trace/Realize split of the same synthesis; the trace
       // phase includes the drive-profile integration spec.build runs,
       // since the runner amortizes that per trace too
        const auto t0 = Clock::now();
        const auto trace = sim::ScenarioTrace::build(
            spec.build(60.0, spec.misalignment, seed), seed);
        out.trace_build_us = 1e6 * seconds_since(t0) /
                             static_cast<double>(trace->epochs());
        const auto t1 = Clock::now();
        sim::Scenario sc(trace, spec.misalignment, seed);
        std::size_t epochs = 0;
        double t = 0.0;
        comm::DmuSample dmu;
        comm::AdxlTiming adxl;
        while (sc.next_wire(t, dmu, adxl)) ++epochs;
        out.synthesis_us =
            1e6 * seconds_since(t1) / static_cast<double>(epochs);
    }
    {  // transport + fusion via the full system, plus steady-state allocs
        sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
        system::BoresightSystem::Config cfg;
        cfg.filter.meas_noise_mps2 = spec.meas_noise_mps2;
        system::BoresightSystem sys(cfg);
        std::vector<sim::Scenario::Step> steps;
        while (auto s = sc.next()) steps.push_back(*s);
        // Warm-up: let every ring buffer and scratch vector reach its
        // high-water capacity before counting.
        const std::size_t warmup = std::min<std::size_t>(200, steps.size());
        for (std::size_t i = 0; i < warmup; ++i) sys.feed(sc, steps[i]);
        const std::uint64_t allocs0 = util::alloc_count();
        const auto t0 = Clock::now();
        for (std::size_t i = warmup; i < steps.size(); ++i)
            sys.feed(sc, steps[i]);
        const double elapsed = seconds_since(t0);
        const auto counted = static_cast<double>(steps.size() - warmup);
        out.transport_feed_us = 1e6 * elapsed / counted;
        out.feed_allocs_per_epoch =
            static_cast<double>(util::alloc_count() - allocs0) / counted;
    }
    {  // the same epochs through the Sabre ISS: wire-format push + pumping
       // the core until the firmware has folded each pair in — the cost a
       // fleet sabre run pays on top of transport
        sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
        system::SabreFusionSystem::Config scfg;
        scfg.r_sigma = spec.meas_noise_mps2;
        scfg.q_variance = spec.angle_process_noise * spec.angle_process_noise;
        system::SabreFusionSystem sys(scfg);
        std::vector<sim::Scenario::Step> steps;
        while (auto s = sc.next()) steps.push_back(*s);
        const std::size_t warmup = std::min<std::size_t>(200, steps.size());
        for (std::size_t i = 0; i < warmup; ++i) {
            sys.push(steps[i].dmu, steps[i].adxl);
            (void)sys.run_pending();
        }
        const auto t0 = Clock::now();
        for (std::size_t i = warmup; i < steps.size(); ++i) {
            sys.push(steps[i].dmu, steps[i].adxl);
            (void)sys.run_pending();
        }
        out.sabre_step_us = 1e6 * seconds_since(t0) /
                            static_cast<double>(steps.size() - warmup);
    }
    {  // bare fusion update on decoded measurements
        sim::Scenario sc(spec.build(60.0, spec.misalignment, seed), seed);
        core::BoresightConfig fcfg;
        fcfg.meas_noise_mps2 = spec.meas_noise_mps2;
        core::BoresightEkf ekf(fcfg);
        std::vector<system::DecodedMeasurement> ms;
        while (auto s = sc.next()) ms.push_back(system::decode_step(sc, *s));
        const auto t0 = Clock::now();
        for (const auto& m : ms) (void)ekf.step(m.f_body, m.acc_xy);
        out.fusion_update_us =
            1e6 * seconds_since(t0) / static_cast<double>(ms.size());
    }
    measure_transport_breakdown(out);
    return out;
}

/// The Monte Carlo seed axis under both trace-cost models: 8 instrument
/// realizations of 4 drive scenarios under 2 tuner variants (the spec
/// tuning and the §11 retuned 0.015), once with one shared ScenarioTrace
/// per scenario — shared across every {tuner × seed} variant, as the
/// Plan/Trace/Realize stack allows — and once with per-run synthesis
/// (every realization rebuilds its trace, the pre-refactor cost model).
/// Results are bitwise identical; only the wall clock moves.
struct MultiSeedSweep {
    std::size_t scenarios = 0;
    std::size_t variants = 0;
    std::size_t seeds_per_job = 0;
    std::size_t runs = 0;  ///< realizations = scenarios * variants * seeds
    std::size_t epochs = 0;
    double shared_elapsed_s = 0.0;
    double unshared_elapsed_s = 0.0;
    double batched_elapsed_s = 0.0;  ///< shared trace + SoA ensemble batching
    double scalar_elapsed_s = 0.0;   ///< shared trace, batching disabled
    [[nodiscard]] double shared_runs_per_sec() const {
        return static_cast<double>(runs) / shared_elapsed_s;
    }
    [[nodiscard]] double unshared_runs_per_sec() const {
        return static_cast<double>(runs) / unshared_elapsed_s;
    }
    [[nodiscard]] double batched_runs_per_sec() const {
        return static_cast<double>(runs) / batched_elapsed_s;
    }
    [[nodiscard]] double scalar_runs_per_sec() const {
        return static_cast<double>(runs) / scalar_elapsed_s;
    }
    [[nodiscard]] double speedup() const {
        return unshared_elapsed_s / shared_elapsed_s;
    }
    [[nodiscard]] double batch_speedup() const {
        return scalar_elapsed_s / batched_elapsed_s;
    }
};

MultiSeedSweep measure_multi_seed() {
    MultiSeedSweep out;
    const char* scenarios[] = {"city-drive", "highway-drive",
                               "emergency-brake", "trailer-sway"};
    std::vector<system::FleetJob> jobs;
    for (const char* name : scenarios) {
        for (const double meas_noise : {0.0, 0.015}) {  // spec, §11 retuned
            system::FleetJob job;
            job.scenario = name;
            job.duration_s = 60.0;
            job.seeds_per_job = 8;
            if (meas_noise > 0.0) job.meas_noise_mps2 = meas_noise;
            jobs.push_back(std::move(job));
        }
    }
    out.scenarios = 4;
    out.variants = 2;
    out.seeds_per_job = 8;
    out.runs = jobs.size() * 8;

    // Two repetitions per mode, fastest kept: a single short sweep is at
    // the mercy of scheduler noise, and the min is the standard estimator
    // for the actual cost.
    constexpr int kReps = 2;
    {
        const system::FleetRunner shared({.share_traces = true});
        for (int rep = 0; rep < kReps; ++rep) {
            const auto t0 = Clock::now();
            const auto results = shared.run(jobs);
            const double elapsed = seconds_since(t0);
            if (rep == 0) {
                out.shared_elapsed_s = elapsed;
                for (const auto& r : results) {
                    for (const auto& s : r.seeds) out.epochs += s.trace.epochs;
                }
            } else {
                out.shared_elapsed_s = std::min(out.shared_elapsed_s, elapsed);
            }
        }
    }
    {
        const system::FleetRunner unshared({.share_traces = false});
        for (int rep = 0; rep < kReps; ++rep) {
            const auto t0 = Clock::now();
            (void)unshared.run(jobs);
            const double elapsed = seconds_since(t0);
            out.unshared_elapsed_s =
                rep == 0 ? elapsed : std::min(out.unshared_elapsed_s, elapsed);
        }
    }
    // The batching axis in isolation, at fixed trace sharing: the SoA
    // ensemble path against the per-seed scalar Realize loop. The default
    // runner above already batches; this pair pins the attribution.
    {
        const system::FleetRunner batched(
            {.share_traces = true, .batch_realizations = true});
        for (int rep = 0; rep < kReps; ++rep) {
            const auto t0 = Clock::now();
            (void)batched.run(jobs);
            const double elapsed = seconds_since(t0);
            out.batched_elapsed_s =
                rep == 0 ? elapsed : std::min(out.batched_elapsed_s, elapsed);
        }
    }
    {
        const system::FleetRunner scalar(
            {.share_traces = true, .batch_realizations = false});
        for (int rep = 0; rep < kReps; ++rep) {
            const auto t0 = Clock::now();
            (void)scalar.run(jobs);
            const double elapsed = seconds_since(t0);
            out.scalar_elapsed_s =
                rep == 0 ? elapsed : std::min(out.scalar_elapsed_s, elapsed);
        }
    }
    return out;
}

/// Per-stage cost of one batched lane-epoch, on the bench shape (8 lanes
/// of the city drive). `realize` and `fusion` are measured directly —
/// the SoA sampling loop alone, and the lane-array EKF on prebuilt decoded
/// measurements — while `transport` is derived as full − realize − fusion,
/// since the analytic transport emulation is interleaved with both in
/// EnsembleNominalSystem::feed and cannot be timed in isolation without
/// perturbing the cache behaviour being measured.
struct BatchedStages {
    double realize_us = 0.0;    ///< SoA instrument sampling, per lane-epoch
    double transport_us = 0.0;  ///< analytic CAN/UART emulation (derived)
    double fusion_us = 0.0;     ///< lane-array EKF step, per lane-update
    double full_us = 0.0;       ///< whole batched epoch, per lane-epoch
    std::size_t lanes = 0;
};

BatchedStages measure_batched_stages() {
    BatchedStages out;
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t stream = sim::scenario_seed(spec.name, 7);
    const auto trace = sim::ScenarioTrace::build(
        spec.build(60.0, spec.misalignment, stream), stream);
    constexpr std::size_t kLanes = 8;
    out.lanes = kLanes;
    std::vector<std::uint64_t> seeds(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l)
        seeds[l] = system::fleet_sub_seed(stream, l);
    const double lane_epochs =
        static_cast<double>(trace->epochs()) * static_cast<double>(kLanes);

    {  // SoA realization alone
        sim::EnsembleRealizer ens(trace, spec.misalignment, seeds);
        double t = 0.0;
        const auto t0 = Clock::now();
        while (ens.step(t)) {
        }
        out.realize_us = 1e6 * seconds_since(t0) / lane_epochs;
    }
    {  // the full batched epoch: realization + transport + fusion
        sim::EnsembleRealizer ens(trace, spec.misalignment, seeds);
        system::BoresightSystem::Config cfg;
        cfg.filter.meas_noise_mps2 = spec.meas_noise_mps2;
        system::EnsembleNominalSystem sys(cfg, kLanes);
        double t = 0.0;
        const auto t0 = Clock::now();
        while (ens.step(t)) sys.feed(ens.trace(), t, ens.dmu(), ens.adxl());
        out.full_us = 1e6 * seconds_since(t0) / lane_epochs;
    }
    {  // lane-array EKF on decoded measurements (same stream every lane —
       // the filter arithmetic does not branch on the values)
        sim::Scenario sc(trace, spec.misalignment, seeds[0]);
        std::vector<system::DecodedMeasurement> ms;
        while (auto s = sc.next()) ms.push_back(system::decode_step(sc, *s));
        core::BoresightConfig fcfg;
        fcfg.meas_noise_mps2 = spec.meas_noise_mps2;
        core::EnsembleEkf ekf(fcfg, kLanes);
        math::Vec3 f_body[kLanes];
        math::Vec2 z[kLanes];
        core::BoresightEkf::Update up[kLanes];
        const auto t0 = Clock::now();
        for (const auto& m : ms) {
            for (std::size_t l = 0; l < kLanes; ++l) {
                f_body[l] = m.f_body;
                z[l] = m.acc_xy;
            }
            ekf.step_all(f_body, z, up);
        }
        out.fusion_us =
            1e6 * seconds_since(t0) /
            (static_cast<double>(ms.size()) * static_cast<double>(kLanes));
    }
    out.transport_us = out.full_us - out.realize_us - out.fusion_us;
    return out;
}

}  // namespace

int main() {
    const system::FleetRunner runner;
    std::printf("fleet runner: %zu worker thread(s)\n\n", runner.threads());

    auto jobs =
        system::full_library_jobs(system::BoresightSystem::Processor::kNative);
    const auto sabre_jobs =
        system::full_library_jobs(system::BoresightSystem::Processor::kSabre);
    jobs.insert(jobs.end(), sabre_jobs.begin(), sabre_jobs.end());

    const auto t0 = Clock::now();
    const auto results = runner.run(jobs);
    const double elapsed = seconds_since(t0);

    std::size_t total_epochs = 0;
    int failures = 0;
    std::printf("%-20s %-7s %7s | %7s %7s %7s | %9s | %s\n", "scenario",
                "proc", "epochs", "roll", "pitch", "yaw", "resid", "verdict");
    std::printf("%-20s %-7s %7s | %21s | %9s |\n", "", "", "",
                "worst post-settle err (deg)", "rms m/s^2");
    for (const auto& r : results) {
        total_epochs += r.trace.epochs;
        if (!r.within_envelope) ++failures;
        std::printf("%-20s %-7s %7zu | %7.3f %7.3f %7.3f | %9.4f | %s\n",
                    r.scenario.c_str(), system::processor_name(r.processor),
                    r.trace.epochs, r.trace.worst_roll_err_deg,
                    r.trace.worst_pitch_err_deg, r.trace.worst_yaw_err_deg,
                    r.result.residual_rms,
                    r.within_envelope ? "ok" : "OUTSIDE ENVELOPE");
    }

    const auto stages = measure_stages();
    const auto batched = measure_batched_stages();
    const auto multi_seed = measure_multi_seed();
    const double scen_per_s = static_cast<double>(results.size()) / elapsed;
    std::printf("\n%zu scenario runs in %.2f s: %.2f scenarios/s, "
                "%.0f epochs/s\n",
                results.size(), elapsed, scen_per_s,
                static_cast<double>(total_epochs) / elapsed);
    std::printf("per-stage cost (city drive): sim %.2f us/epoch "
                "(trace build %.2f + realization %.2f), "
                "transport+fusion %.2f us/epoch, bare EKF %.2f us/update, "
                "sabre step %.2f us/epoch\n",
                stages.sim_epoch_us, stages.trace_build_us,
                stages.synthesis_us, stages.transport_feed_us,
                stages.fusion_update_us, stages.sabre_step_us);
    std::printf("multi-seed sweep (%zu scenarios x %zu tunings x %zu seeds): "
                "shared trace %.2f runs/s, per-run synthesis %.2f runs/s "
                "-> %.2fx\n",
                multi_seed.scenarios, multi_seed.variants,
                multi_seed.seeds_per_job, multi_seed.shared_runs_per_sec(),
                multi_seed.unshared_runs_per_sec(), multi_seed.speedup());
    std::printf("ensemble batching (shared trace): batched %.2f runs/s vs "
                "scalar %.2f runs/s -> %.2fx; per lane-epoch %.2f us "
                "(realize %.2f + transport %.2f + fusion %.2f, %zu lanes)\n",
                multi_seed.batched_runs_per_sec(),
                multi_seed.scalar_runs_per_sec(), multi_seed.batch_speedup(),
                batched.full_us, batched.realize_us, batched.transport_us,
                batched.fusion_us, batched.lanes);
    std::printf("transport breakdown: encode+send %.2f, can_advance %.2f, "
                "uart_drain %.2f, codec %.2f, fusion %.2f us/epoch; "
                "steady-state allocs/epoch %.3f\n",
                stages.encode_send_us, stages.can_advance_us,
                stages.uart_drain_us, stages.codec_us, stages.fusion_us,
                stages.feed_allocs_per_epoch);

    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("fleet");
    w.key("threads").value(runner.threads());
    w.key("scenarios").value(sim::ScenarioLibrary::instance().all().size());
    w.key("jobs").value(results.size());
    w.key("elapsed_s").value(elapsed);
    w.key("scenarios_per_sec").value(scen_per_s);
    w.key("epochs_per_sec").value(static_cast<double>(total_epochs) / elapsed);
    w.key("per_stage_us").begin_object();
    w.key("sim_epoch").value(stages.sim_epoch_us);
    w.key("trace_build").value(stages.trace_build_us);
    w.key("synthesis").value(stages.synthesis_us);
    w.key("transport_feed").value(stages.transport_feed_us);
    w.key("fusion_update").value(stages.fusion_update_us);
    w.key("sabre_step").value(stages.sabre_step_us);
    w.key("uart_drain").value(stages.uart_drain_us);
    w.key("can_advance").value(stages.can_advance_us);
    w.key("codec").value(stages.codec_us);
    w.key("fusion").value(stages.fusion_us);
    w.key("encode_send").value(stages.encode_send_us);
    w.end_object();
    w.key("feed_allocs_per_epoch").value(stages.feed_allocs_per_epoch);
    w.key("multi_seed").begin_object();
    w.key("scenarios").value(multi_seed.scenarios);
    w.key("variants").value(multi_seed.variants);
    w.key("seeds_per_job").value(multi_seed.seeds_per_job);
    w.key("runs").value(multi_seed.runs);
    w.key("epochs").value(multi_seed.epochs);
    // "runs" = scenario realizations (scenario x tuning x seed), the unit
    // the sweep schedules — deliberately NOT named scenarios_per_sec,
    // which at top level counts whole jobs.
    w.key("shared_runs_per_sec").value(multi_seed.shared_runs_per_sec());
    w.key("unshared_runs_per_sec").value(multi_seed.unshared_runs_per_sec());
    w.key("speedup").value(multi_seed.speedup());
    // The ensemble-batching axis at fixed trace sharing: the SoA batched
    // path vs the per-seed scalar loop, plus its per-stage lane-epoch cost
    // (transport is derived: full - realize - fusion).
    w.key("batched_runs_per_sec").value(multi_seed.batched_runs_per_sec());
    w.key("scalar_runs_per_sec").value(multi_seed.scalar_runs_per_sec());
    w.key("batch_speedup").value(multi_seed.batch_speedup());
    w.key("batched_stage_us").begin_object();
    w.key("realize").value(batched.realize_us);
    w.key("transport").value(batched.transport_us);
    w.key("fusion").value(batched.fusion_us);
    w.key("full").value(batched.full_us);
    w.end_object();
    w.key("batched_lanes").value(batched.lanes);
    w.end_object();
    w.key("runs").begin_array();
    for (const auto& r : results) {
        w.begin_object();
        w.key("scenario").value(r.scenario);
        w.key("processor").value(system::processor_name(r.processor));
        w.key("epochs").value(r.trace.epochs);
        w.key("updates").value(r.final_status.updates);
        w.key("worst_roll_err_deg").value(r.trace.worst_roll_err_deg);
        w.key("worst_pitch_err_deg").value(r.trace.worst_pitch_err_deg);
        w.key("worst_yaw_err_deg").value(r.trace.worst_yaw_err_deg);
        w.key("residual_rms").value(r.result.residual_rms);
        w.key("within_envelope").value(r.within_envelope);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    const std::string bench_path = util::artifact_path("BENCH_fleet.json");
    util::write_file(bench_path, w.str());
    std::printf("wrote %s\n", bench_path.c_str());

    if (failures != 0) {
        std::printf("FAIL: %d run(s) outside their envelope\n", failures);
        return 1;
    }
    std::printf("PASS: every library scenario inside its envelope on both "
                "processors\n");
    return 0;
}
