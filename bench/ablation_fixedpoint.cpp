// P3 — the paper's §12 future work, evaluated: "a full fixed-point
// analysis and conversion of the Sensor Fusion Algorithm from float to
// fixed-point calculations is possible". Three arithmetic tiers run the
// same filter on the same data:
//
//   double    — the development reference (fabric-side "ideal"),
//   float32   — what the Sabre/softfloat path computes,
//   Q32.32    — the all-integer conversion (core::FixedBoresightEkf).
//
// Reported: final accuracy, agreement with the double reference, the
// fixed-point sigma floor, and per-update wall cost.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/boresight_ekf.hpp"
#include "core/fixed_ekf.hpp"
#include "math/rotation.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob;
using core::BoresightConfig;
using core::BoresightEkf;
using core::FixedBoresightEkf;
using math::dcm_from_euler;
using math::EulerAngles;
using math::rad2deg;
using math::Vec2;
using math::Vec3;

constexpr double kG = 9.80665;

Vec3 excitation(int k) {
    const double phase = 0.013 * k;
    return Vec3{2.0 * std::sin(phase), 1.5 * std::cos(1.7 * phase), -kG};
}

Vec2 measure(const EulerAngles& truth, const Vec3& f, util::Rng& rng) {
    const Vec3 f_s = dcm_from_euler(truth) * f;
    return Vec2{f_s[0] + rng.gaussian(0.01), f_s[1] + rng.gaussian(0.01)};
}

void BM_DoubleEkf(benchmark::State& state) {
    BoresightConfig cfg;
    BoresightEkf ekf(cfg);
    util::Rng rng(1);
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.0, 0.5);
    int k = 0;
    for (auto _ : state) {
        const Vec3 f = excitation(k++);
        benchmark::DoNotOptimize(ekf.step(f, measure(truth, f, rng)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DoubleEkf);

void BM_FixedQ32Ekf(benchmark::State& state) {
    FixedBoresightEkf ekf;
    util::Rng rng(1);
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.0, 0.5);
    int k = 0;
    for (auto _ : state) {
        const Vec3 f = excitation(k++);
        benchmark::DoNotOptimize(ekf.step(f, measure(truth, f, rng)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FixedQ32Ekf);

}  // namespace

int main(int argc, char** argv) {
    // --- Accuracy study (printed before the timing benchmarks) -----------
    std::printf("=======================================================\n");
    std::printf("Ablation — arithmetic precision of the fusion algorithm\n");
    std::printf("=======================================================\n\n");

    const EulerAngles truth = EulerAngles::from_deg(1.2, -0.9, 0.7);
    BoresightConfig dcfg;
    dcfg.meas_noise_mps2 = 0.01;
    BoresightEkf dbl(dcfg);
    FixedBoresightEkf::Config qcfg;
    qcfg.meas_noise_mps2 = 0.01;
    FixedBoresightEkf fixed(qcfg);
    util::Rng rng(42);
    for (int k = 0; k < 30000; ++k) {
        const Vec3 f = excitation(k);
        const Vec2 z = measure(truth, f, rng);
        (void)dbl.step(f, z);
        (void)fixed.step(f, z);
    }
    const auto de = dbl.misalignment();
    const auto fe = fixed.misalignment();
    std::printf("after 30000 updates (truth %+0.2f/%+0.2f/%+0.2f deg):\n",
                1.2, -0.9, 0.7);
    std::printf("  double : %+0.4f %+0.4f %+0.4f deg\n", rad2deg(de.roll),
                rad2deg(de.pitch), rad2deg(de.yaw));
    std::printf("  Q32.32 : %+0.4f %+0.4f %+0.4f deg\n", rad2deg(fe.roll),
                rad2deg(fe.pitch), rad2deg(fe.yaw));
    std::printf("  divergence double vs Q32.32: %.5f deg max\n",
                std::max({std::abs(rad2deg(de.roll - fe.roll)),
                          std::abs(rad2deg(de.pitch - fe.pitch)),
                          std::abs(rad2deg(de.yaw - fe.yaw))}));
    const auto s3 = fixed.misalignment_sigma3();
    std::printf("  Q32.32 sigma floor: one covariance LSB = %.2e rad "
                "(3-sigma now %.5f deg)\n",
                std::sqrt(1.0 / 4294967296.0), rad2deg(s3[0]));
    std::printf("\nconclusion: the conversion is viable (the paper's claim);"
                "\nQ32.32 tracks the double filter to millidegrees and the "
                "LSB floor sits far\nbelow the instrument-limited accuracy.\n\n");

    const bool ok =
        std::abs(rad2deg(de.roll - fe.roll)) < 0.02 &&
        std::abs(rad2deg(de.pitch - fe.pitch)) < 0.02 &&
        std::abs(rad2deg(de.yaw - fe.yaw)) < 0.05;
    if (!ok) {
        std::printf("FAIL: fixed-point filter diverged from the reference\n");
        return 1;
    }
    std::printf("PASS: fixed-point conversion reproduces the reference\n\n");

    // --- Timing benchmarks -------------------------------------------------
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
