// Reproduces Figure 9 of the paper: "Sample results from dynamic test" —
// the misalignment estimates converging over a 300-second drive with their
// shrinking 3-sigma confidence.
//
// Expected shape: each angle estimate converges from the zero prior to the
// injected truth within the first tens of seconds of excitation, while the
// 3-sigma envelope collapses; the final values agree with truth within the
// reported confidence.

#include <cmath>
#include <cstdio>

#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "system/experiment.hpp"
#include "util/ascii_plot.hpp"

namespace {

using namespace ob;
using math::EulerAngles;

}  // namespace

int main() {
    std::printf("====================================================\n");
    std::printf("Figure 9 — Dynamic test: estimate convergence vs time\n");
    std::printf("====================================================\n\n");

    system::ExperimentConfig cfg;
    cfg.label = "fig9 dynamic";
    const EulerAngles truth = EulerAngles::from_deg(2.0, -1.5, 1.0);
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    cfg.scenario = spec.build(300.0, truth, 17);
    cfg.sensor_seed = 424242;
    cfg.filter.meas_noise_mps2 = spec.meas_noise_mps2;
    cfg.record_traces = true;

    const auto o = system::run_experiment(cfg);

    util::AsciiPlot plot(110, 24);
    plot.set_title("misalignment estimates (degrees) over 300 s city drive");
    plot.add_series("roll (truth +2.0)", o.trace.roll_deg.values(), 'r');
    plot.add_series("pitch (truth -1.5)", o.trace.pitch_deg.values(), 'p');
    plot.add_series("yaw (truth +1.0)", o.trace.yaw_deg.values(), 'y');
    plot.set_x_label("time 0..300 s");
    std::printf("%s\n", plot.render().c_str());

    std::printf("sampled trajectory (degrees):\n");
    std::printf("%8s | %18s | %18s | %18s\n", "t (s)", "roll est (3s)",
                "pitch est (3s)", "yaw est (3s)");
    for (double t = 0.0; t <= 300.0; t += 30.0) {
        std::printf("%8.0f | %+8.3f (%6.3f) | %+8.3f (%6.3f) | %+8.3f (%6.3f)\n",
                    t, o.trace.roll_deg.sample(t), o.trace.roll_s3_deg.sample(t),
                    o.trace.pitch_deg.sample(t), o.trace.pitch_s3_deg.sample(t),
                    o.trace.yaw_deg.sample(t), o.trace.yaw_s3_deg.sample(t));
    }

    std::printf("\nfinal estimate vs truth (deg): roll %+0.3f/%+0.3f  "
                "pitch %+0.3f/%+0.3f  yaw %+0.3f/%+0.3f\n",
                math::rad2deg(o.result.estimate.roll), 2.0,
                math::rad2deg(o.result.estimate.pitch), -1.5,
                math::rad2deg(o.result.estimate.yaw), 1.0);

    int failures = 0;
    // Convergence: roll/pitch 3-sigma must shrink by >10x over the run.
    if (o.trace.roll_s3_deg.values().front() <
        10.0 * o.trace.roll_s3_deg.values().back()) {
        std::printf("!! roll 3-sigma did not collapse\n");
        ++failures;
    }
    if (std::abs(o.result.error_deg(0)) > 0.5 ||
        std::abs(o.result.error_deg(1)) > 0.5 ||
        std::abs(o.result.error_deg(2)) > 0.8) {
        std::printf("!! final estimate outside the paper's accuracy class\n");
        ++failures;
    }
    if (!o.result.within_confidence()) {
        // 3-sigma is a 99.7% statement; a single run landing outside is
        // possible but suspicious enough to flag.
        std::printf("** note: final error outside reported 3-sigma\n");
    }
    std::printf("%s: convergence behaviour matches Figure 9's shape\n",
                failures == 0 ? "PASS" : "FAIL");
    return failures == 0 ? 0 : 1;
}
