// Fleet-scale tuning studies: expand {scenario x misalignment x tuner
// variant x processor} grids into FleetJob batches, run them through the
// FleetRunner thread pool, and reduce every cell to converged sigma,
// residual RMS, envelope verdict and tuner adjustment count. Two studies
// run here:
//
//   * "noise-grid": three scenarios x two misalignments x four tunings on
//     the native EKF, with the paper's §11.1 level-platform calibration
//     before every run — the paper's manual retuning table as a batch job;
//   * "firmware-parity": the spec and retuned tunings on both fusion
//     processors, checking the Sabre firmware tracks the native EKF's
//     envelope verdicts under identical tuning.
//
// Wall-clock throughput goes to BENCH_tuning.json (tracked as a CI
// artifact next to BENCH_fleet.json); the full deterministic study report
// — identical bytes at any thread count — goes to STUDY_tuning.json.

#include <chrono>
#include <cstdio>

#include "math/rotation.hpp"
#include "system/fleet.hpp"
#include "system/tuning_study.hpp"
#include "util/artifacts.hpp"
#include "util/json.hpp"

namespace {

using namespace ob;
using Clock = std::chrono::steady_clock;
using Processor = system::BoresightSystem::Processor;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

system::TuningStudyConfig noise_grid_config() {
    system::TuningStudyConfig cfg;
    cfg.label = "noise-grid";
    cfg.scenarios = {"static-level", "city-drive", "carpark-bump"};
    cfg.misalignments = {math::EulerAngles::from_deg(1.5, -2.0, 2.5),
                         math::EulerAngles::from_deg(4.0, 3.0, -5.0)};
    cfg.variants = {
        {.label = "static-0.003", .meas_noise_mps2 = 0.003},
        {.label = "spec"},
        {.label = "retuned-0.015", .meas_noise_mps2 = 0.015},
        {.label = "adaptive",
         .use_adaptive_tuner = true,
         .meas_noise_mps2 = 0.003},
    };
    cfg.calibration = system::FleetCalibration{.duration_s = 30.0};
    // Monte Carlo seed axis: four instrument realizations per cell (all
    // sharing the cell's ScenarioTrace), so every envelope verdict in
    // STUDY_tuning.json comes with mean/σ/95% CI columns instead of a
    // single-realization point value.
    cfg.seeds_per_cell = 4;
    return cfg;
}

system::TuningStudyConfig firmware_parity_config() {
    system::TuningStudyConfig cfg;
    cfg.label = "firmware-parity";
    cfg.scenarios = {"static-level", "city-drive", "carpark-bump"};
    cfg.variants = {
        {.label = "spec"},
        {.label = "retuned-0.015", .meas_noise_mps2 = 0.015},
        // The firmware's writable R register lets the §11 adaptive retune
        // run on both processors; it must rediscover the 0.015 tuning from
        // the quietest static start on either one.
        {.label = "adaptive",
         .use_adaptive_tuner = true,
         .meas_noise_mps2 = 0.003},
    };
    cfg.processors = {Processor::kNative, Processor::kSabre};
    return cfg;
}

struct StudyRun {
    system::TuningStudyReport report;
    double elapsed_s = 0.0;
    std::size_t epochs = 0;
};

StudyRun execute(const system::TuningStudyConfig& cfg,
                 const system::FleetRunner& runner) {
    const system::TuningStudy study(cfg);
    StudyRun out;
    const auto t0 = Clock::now();
    out.report = study.run(runner);
    out.elapsed_s = seconds_since(t0);
    for (const auto& c : out.report.cells) {
        for (const auto& s : c.result.seeds) out.epochs += s.trace.epochs;
    }

    std::printf("study '%s': %zu cells x %zu seed(s), %zu/%zu within "
                "envelope, %.2f s\n",
                cfg.label.c_str(), out.report.cells.size(),
                cfg.seeds_per_cell, out.report.within_envelope,
                out.report.cells.size(), out.elapsed_s);
    std::printf("  %-14s %-14s %-7s | %9s %9s %5s | %-7s | %s\n", "scenario",
                "variant", "proc", "resid", "final R", "adj", "seeds ok",
                "verdict");
    for (const auto& c : out.report.cells) {
        const auto& r = c.result;
        std::printf("  %-14s %-14s %-7s | %9.4f %9.4f %5zu | %4zu/%zu | %s\n",
                    r.scenario.c_str(),
                    cfg.variants[c.variant_index].label.c_str(),
                    system::processor_name(r.processor), r.result.residual_rms,
                    r.result.meas_noise, r.final_status.tuner_adjustments,
                    r.seed_stats.within_envelope, r.seed_stats.seeds,
                    r.within_envelope ? "ok" : "outside");
    }
    std::printf("\n");
    return out;
}

void write_bench_json(const system::FleetRunner& runner,
                      const StudyRun& noise, const StudyRun& parity) {
    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("tuning_study");
    w.key("threads").value(runner.threads());
    const auto study_entry = [&w](const char* key, const StudyRun& run) {
        w.key(key).begin_object();
        w.key("cells").value(run.report.cells.size());
        w.key("seeds_per_cell").value(run.report.config.seeds_per_cell);
        w.key("within_envelope").value(run.report.within_envelope);
        w.key("elapsed_s").value(run.elapsed_s);
        w.key("cells_per_sec").value(
            static_cast<double>(run.report.cells.size()) / run.elapsed_s);
        w.key("epochs_per_sec").value(static_cast<double>(run.epochs) /
                                      run.elapsed_s);
        w.end_object();
    };
    study_entry("noise_grid", noise);
    study_entry("firmware_parity", parity);
    w.end_object();
    const std::string path = util::artifact_path("BENCH_tuning.json");
    util::write_file(path, w.str());
    std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
    const system::FleetRunner runner;
    std::printf("tuning-study runner: %zu worker thread(s)\n\n",
                runner.threads());

    const auto noise = execute(noise_grid_config(), runner);
    const auto parity = execute(firmware_parity_config(), runner);

    write_bench_json(runner, noise, parity);
    const std::string study_path = util::artifact_path("STUDY_tuning.json");
    util::write_file(study_path, noise.report.to_json());
    std::printf("wrote %s\n", study_path.c_str());

    // The calibrated spec and retuned rows are the supported operating
    // points — those must sit inside their envelopes. Deliberately
    // mistuned rows ("static-0.003" while driving — the §11 failure mode)
    // are data, not regressions.
    std::size_t supported = 0, supported_ok = 0;
    const auto tally = [&](const StudyRun& run) {
        for (const auto& c : run.report.cells) {
            const auto& label = run.report.config.variants[c.variant_index].label;
            if (label == "static-0.003") continue;
            ++supported;
            if (c.result.within_envelope) ++supported_ok;
        }
    };
    tally(noise);
    tally(parity);
    if (supported_ok != supported) {
        std::printf("FAIL: %zu supported cell(s) outside their envelope\n",
                    supported - supported_ok);
        return 1;
    }
    std::printf("PASS: all %zu supported cells inside their envelopes\n",
                supported);
    return 0;
}
