// P6 — why a recursive filter instead of the state of the art (one-shot
// alignment)? Three comparisons on identical data:
//   1. accuracy as a function of observation time,
//   2. behaviour across an in-service mount disturbance,
//   3. what the baseline fundamentally cannot give you: a running
//      confidence (the batch solver has no covariance tracking).

#include <cmath>
#include <cstdio>

#include "core/batch_aligner.hpp"
#include "core/boresight_ekf.hpp"
#include "math/rotation.hpp"
#include "sim/scenario.hpp"
#include "system/experiment.hpp"

namespace {

using namespace ob;
using math::deg2rad;
using math::EulerAngles;
using math::rad2deg;

double total_error_deg(const EulerAngles& est, const EulerAngles& truth) {
    return rad2deg(std::abs(est.roll - truth.roll) +
                   std::abs(est.pitch - truth.pitch) +
                   std::abs(est.yaw - truth.yaw));
}

}  // namespace

int main() {
    std::printf("==================================================\n");
    std::printf("Ablation — recursive EKF vs batch least-squares\n");
    std::printf("==================================================\n\n");

    const EulerAngles truth = EulerAngles::from_deg(1.5, -1.0, 2.0);
    int failures = 0;

    // --- 1. Accuracy vs observation time -----------------------------------
    std::printf("accuracy vs time (tilt-bench static data, total |error|):\n");
    std::printf("%10s | %12s | %12s\n", "t (s)", "EKF (deg)", "batch (deg)");
    auto scfg = sim::ScenarioConfig::static_tilted(
        300.0, truth, EulerAngles::from_deg(12.0, 8.0, 0.0));
    scfg.acc_errors.bias_sigma = 0.0;  // isolate estimator behaviour
    scfg.imu_errors.accel_bias_sigma = 0.0;
    sim::Scenario sc(scfg, 11);
    core::BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = 0.0075;
    core::BoresightEkf ekf(fcfg);
    core::BatchLeastSquaresAligner batch;
    double next_report = 30.0;
    double ekf_final = 0.0, batch_final = 0.0;
    while (auto s = sc.next()) {
        const auto d = system::decode_step(sc, *s);
        (void)ekf.step(d.f_body, d.acc_xy);
        batch.add(d.f_body, d.acc_xy);
        if (s->t >= next_report) {
            ekf_final = total_error_deg(ekf.misalignment(), truth);
            batch_final = total_error_deg(batch.solve().misalignment, truth);
            std::printf("%10.0f | %12.4f | %12.4f\n", s->t, ekf_final,
                        batch_final);
            next_report += 60.0;
        }
    }
    std::printf("  -> with full observability both converge to the same "
                "accuracy class;\n     the EKF gets there recursively at "
                "sensor rate, O(1) memory.\n\n");
    if (ekf_final > 0.3) {
        std::printf("!! EKF failed to converge\n");
        ++failures;
    }

    // --- 2. Step-change recovery -------------------------------------------
    std::printf("mount disturbance at t=150 s (+1.0 deg pitch):\n");
    auto scfg2 = sim::ScenarioConfig::dynamic_city(300.0, truth, 5);
    // Calibrated instruments (as after the paper's §11.1 procedure), so
    // the comparison isolates the estimators' dynamics.
    scfg2.acc_errors.bias_sigma = 0.0;
    scfg2.imu_errors.accel_bias_sigma = 0.0;
    sim::Scenario sc2(scfg2, 12);
    core::BoresightConfig fcfg2;
    fcfg2.meas_noise_mps2 = 0.02;
    fcfg2.angle_process_noise = 2e-6;
    core::BoresightEkf ekf2(fcfg2);
    core::BatchLeastSquaresAligner batch2;
    bool bumped = false;
    while (auto s = sc2.next()) {
        if (!bumped && s->t >= 150.0) {
            sc2.bump(EulerAngles::from_deg(0.0, 1.0, 0.0));
            bumped = true;
        }
        const auto d = system::decode_step(sc2, *s);
        (void)ekf2.step(d.f_body, d.acc_xy);
        batch2.add(d.f_body, d.acc_xy);
    }
    const double true_pitch_final = rad2deg(truth.pitch) + 1.0;
    const double ekf_pitch = rad2deg(ekf2.misalignment().pitch);
    const double batch_pitch = rad2deg(batch2.solve().misalignment.pitch);
    std::printf("  final pitch: truth %+0.2f | EKF %+0.3f | batch %+0.3f deg\n",
                true_pitch_final, ekf_pitch, batch_pitch);
    const double ekf_err = std::abs(ekf_pitch - true_pitch_final);
    const double batch_err = std::abs(batch_pitch - true_pitch_final);
    std::printf("  -> EKF error %.3f deg vs batch %.3f deg: the batch "
                "solution averages across\n     the disturbance; the filter "
                "re-converges (%.0fx better).\n\n",
                ekf_err, batch_err, batch_err / std::max(ekf_err, 1e-9));
    if (!(ekf_err < 0.35 && batch_err > 2.0 * ekf_err)) {
        std::printf("!! step-change contrast not reproduced\n");
        ++failures;
    }

    // --- 3. Confidence tracking --------------------------------------------
    const auto s3 = ekf2.misalignment_sigma3();
    std::printf("running 3-sigma confidence (EKF only): roll %.4f, pitch "
                "%.4f, yaw %.4f deg\n",
                rad2deg(s3[0]), rad2deg(s3[1]), rad2deg(s3[2]));
    std::printf("the batch baseline reports a point estimate with no "
                "uncertainty tracking.\n\n");

    std::printf("%s: EKF-vs-baseline ablation matches the paper's case\n",
                failures == 0 ? "PASS" : "FAIL");
    return failures == 0 ? 0 : 1;
}
