// fleet_serve client bench: stands the daemon up in-process on an AF_UNIX
// socket, drives it with concurrent clients, and reports service metrics —
// requests/s and p50/p95/p99 tail latency — for the two request classes:
// ping round-trips (pure protocol + transport cost) and small fleet
// requests (protocol + a real scenario run). Writes BENCH_serve.json;
// bench/compare_bench.py gates it against
// bench/baselines/BENCH_serve.baseline.json (schema "serve": counts and
// protocol version pinned exactly, throughput and latency ratio-gated
// with latency noise slack).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "system/fleet_client.hpp"
#include "system/fleet_serve.hpp"
#include "util/artifacts.hpp"
#include "util/json.hpp"

using namespace ob;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kClients = 4;        // concurrent sessions per phase
constexpr std::size_t kPingsPerClient = 250;
constexpr std::size_t kFleetPerClient = 6;
constexpr double kJobDurationS = 20.0;  // short static-level scenario runs

[[nodiscard]] double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/// Nearest-rank percentile over an unsorted latency sample (sorts a copy's
/// worth of work in place — callers pass their merged vector once).
[[nodiscard]] double percentile_ms(std::vector<double>& sorted_ms, double q) {
    if (sorted_ms.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted_ms.size()));
    return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

struct PhaseStats {
    std::size_t requests = 0;
    double requests_per_sec = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
};

[[nodiscard]] PhaseStats reduce_phase(std::vector<double> latencies_ms,
                                      double wall_s) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    PhaseStats s;
    s.requests = latencies_ms.size();
    s.requests_per_sec =
        wall_s > 0.0 ? static_cast<double>(s.requests) / wall_s : 0.0;
    s.p50_ms = percentile_ms(latencies_ms, 0.50);
    s.p95_ms = percentile_ms(latencies_ms, 0.95);
    s.p99_ms = percentile_ms(latencies_ms, 0.99);
    return s;
}

void emit_phase(util::JsonWriter& w, const PhaseStats& s) {
    w.begin_object();
    w.key("requests").value(s.requests);
    w.key("requests_per_sec").value(s.requests_per_sec);
    w.key("p50_ms").value(s.p50_ms);
    w.key("p95_ms").value(s.p95_ms);
    w.key("p99_ms").value(s.p99_ms);
    w.end_object();
}

}  // namespace

int main() {
    const std::string socket_path =
        "/tmp/ob_serve_bench." +
        std::to_string(static_cast<long>(::getpid())) + ".sock";

    system::FleetServer::Config cfg;
    cfg.socket_path = socket_path;
    cfg.accept_poll_ms = 20;
    system::FleetServer server(cfg);
    std::thread server_thread([&server] { server.serve(); });
    while (!server.listening()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    std::printf("fleet_serve bench: %zu concurrent clients on %s\n", kClients,
                socket_path.c_str());

    std::atomic<bool> failed{false};

    // --- Phase 1: ping round-trips (protocol + transport floor) ---------
    std::vector<std::vector<double>> ping_lat(kClients);
    const auto ping_t0 = Clock::now();
    {
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                try {
                    auto client =
                        system::FleetServeClient::connect(socket_path);
                    ping_lat[c].reserve(kPingsPerClient);
                    for (std::size_t i = 0; i < kPingsPerClient; ++i) {
                        const auto t0 = Clock::now();
                        const std::uint64_t token = c * 1000003 + i;
                        if (client.ping(token) != token) {
                            failed = true;
                            return;
                        }
                        ping_lat[c].push_back(ms_since(t0));
                    }
                    client.goodbye();
                } catch (const std::exception& e) {
                    std::fprintf(stderr, "ping client %zu: %s\n", c,
                                 e.what());
                    failed = true;
                }
            });
        }
        for (auto& t : clients) t.join();
    }
    const double ping_wall_s = ms_since(ping_t0) / 1e3;
    std::vector<double> ping_all;
    for (auto& v : ping_lat) {
        ping_all.insert(ping_all.end(), v.begin(), v.end());
    }
    const PhaseStats ping = reduce_phase(std::move(ping_all), ping_wall_s);

    // --- Phase 2: fleet requests (one short static-level job each) ------
    std::vector<std::vector<double>> fleet_lat(kClients);
    std::size_t fleet_jobs_streamed = 0;
    const auto fleet_t0 = Clock::now();
    {
        std::vector<std::thread> clients;
        std::vector<std::size_t> streamed(kClients, 0);
        for (std::size_t c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                try {
                    auto client =
                        system::FleetServeClient::connect(socket_path);
                    system::FleetRequest req;
                    req.scenario = "static-level";
                    req.duration_s = kJobDurationS;
                    fleet_lat[c].reserve(kFleetPerClient);
                    for (std::size_t i = 0; i < kFleetPerClient; ++i) {
                        const auto t0 = Clock::now();
                        const auto outcome = client.run_fleet(req);
                        fleet_lat[c].push_back(ms_since(t0));
                        streamed[c] += outcome.results.size();
                    }
                    client.goodbye();
                } catch (const std::exception& e) {
                    std::fprintf(stderr, "fleet client %zu: %s\n", c,
                                 e.what());
                    failed = true;
                }
            });
        }
        for (auto& t : clients) t.join();
        for (const auto n : streamed) fleet_jobs_streamed += n;
    }
    const double fleet_wall_s = ms_since(fleet_t0) / 1e3;
    std::vector<double> fleet_all;
    for (auto& v : fleet_lat) {
        fleet_all.insert(fleet_all.end(), v.begin(), v.end());
    }
    const PhaseStats fleet = reduce_phase(std::move(fleet_all), fleet_wall_s);
    if (fleet_jobs_streamed != kClients * kFleetPerClient) {
        std::fprintf(stderr,
                     "expected %zu streamed job frames, got %zu\n",
                     kClients * kFleetPerClient, fleet_jobs_streamed);
        failed = true;
    }

    // --- Shutdown through the protocol, like a real operator would ------
    try {
        auto admin = system::FleetServeClient::connect(socket_path);
        admin.shutdown_server();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "shutdown: %s\n", e.what());
        failed = true;
        server.request_stop();
    }
    server_thread.join();

    std::printf("ping:  %zu requests, %8.1f req/s, p50 %6.3f ms, "
                "p95 %6.3f ms, p99 %6.3f ms\n",
                ping.requests, ping.requests_per_sec, ping.p50_ms, ping.p95_ms,
                ping.p99_ms);
    std::printf("fleet: %zu requests, %8.1f req/s, p50 %6.1f ms, "
                "p95 %6.1f ms, p99 %6.1f ms (1 job x %.0f s scenario each)\n",
                fleet.requests, fleet.requests_per_sec, fleet.p50_ms,
                fleet.p95_ms, fleet.p99_ms, kJobDurationS);

    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("serve");
    w.key("protocol_version").value(system::kProtocolVersion);
    w.key("clients").value(kClients);
    w.key("ping");
    emit_phase(w, ping);
    w.key("fleet");
    emit_phase(w, fleet);
    w.key("fleet_jobs_per_request").value(std::size_t{1});
    w.key("fleet_job_duration_s").value(kJobDurationS);
    w.end_object();
    const std::string path = util::artifact_path("BENCH_serve.json");
    util::write_file(path, w.str());
    std::printf("wrote %s\n", path.c_str());

    if (failed) {
        std::printf("FAIL: serve bench hit errors\n");
        return 1;
    }
    std::printf("PASS: %zu concurrent clients served, clean shutdown\n",
                kClients);
    return 0;
}
