#!/usr/bin/env python3
"""Gate bench regressions against a committed baseline.

Usage:
    compare_bench.py FRESH_JSON BASELINE_JSON [--max-regression 0.20]
    compare_bench.py FRESH_JSON BASELINE_JSON --update

The JSON's "bench" key selects the schema (missing key => "fleet", the
original schema):

fleet (bench/fleet_throughput, BENCH_fleet.json) — exits nonzero when:

  * scenarios_per_sec or epochs_per_sec drop more than --max-regression
    (default 20%) below the baseline, or
  * multi_seed.shared_runs_per_sec, multi_seed.batched_runs_per_sec or
    multi_seed.speedup drop more than --max-regression below the
    baseline (the seed-axis sweep: trace sharing and the SoA ensemble
    batching are separately gated capabilities), or
  * any per-stage cost in per_stage_us rises more than --max-regression
    above the baseline AND by more than an absolute slack of 0.1 us —
    the slack keeps sub-microsecond stages from tripping on timer
    noise, or
  * feed_allocs_per_epoch rises above the baseline at all — the zero-
    allocation steady state is pinned exactly.

fault_campaign (bench/fault_campaign, BENCH_fault.json) — exits nonzero
when:

  * cells_per_sec or epochs_per_sec drop more than --max-regression
    below the baseline, or
  * any deterministic campaign total (cells, realizations, the
    detection/miss/false-alarm/true-negative outcome counts, the
    per-detector residual/supervisor detection columns, the number of
    demonstrated detection boundaries, and the boundary-search
    refinement/probe counts) differs from the baseline at all — those
    are functions of the config and the RNG contract, never of the
    machine, so any drift means the fault envelope itself moved.

serve (bench/fleet_serve, BENCH_serve.json) — exits nonzero when:

  * ping or fleet requests_per_sec drop more than --max-regression
    below the baseline, or
  * a latency percentile (p50/p95/p99 of either phase) rises more than
    --max-regression above the baseline AND by more than a per-
    percentile absolute slack — tail latency on a shared runner is
    noisy, so tiny absolute shifts must not trip the gate, or
  * the protocol version, client count, request counts or per-request
    job shape differ from the baseline at all (pinned: the bench
    config and wire contract, not the machine).

An unknown "bench" schema name in either file is a hard error (exit 2)
naming the known schemas — a typo'd or future schema must never be
silently waved through.

--update rewrites the baseline from the fresh run instead of comparing
(use after an intentional perf change, and commit the result).

Exit codes: 0 ok, 1 regression, 2 malformed/incomplete bench JSON (e.g. a
baseline missing a required key, or a fresh/baseline schema mismatch —
reported with a clear message, never a KeyError traceback).

Throughput baselines are machine-specific: numbers measured on one box do
not transfer to a different CPU. Refresh the baseline when the benchmark
host changes. The fault-campaign outcome totals are the exception — they
must reproduce everywhere.
"""

import argparse
import json
import shutil
import sys

STAGE_NOISE_SLACK_US = 0.1

# Metrics each schema's gate is meaningless without. A baseline (or fresh
# run) that lacks one of these is a data error — exit 2 with a pointed
# message, never a silent skip or a KeyError traceback.
FLEET_REQUIRED_KEYS = ("scenarios_per_sec", "epochs_per_sec", "per_stage_us",
                       "feed_allocs_per_epoch", "multi_seed")

# Stages of per_stage_us that the gate is meaningless without. Most stages
# are discovered dynamically (new ones are reported, vanished ones error),
# but these are load-bearing capabilities: sabre_step pins the predecoded
# ISS dispatch cost so a regression back toward per-instruction decode is
# caught.
FLEET_REQUIRED_STAGE_KEYS = ("sabre_step",)

# Sub-keys of the multi_seed section (the 8-seed shared-trace sweep;
# "runs" are scenario realizations, scenario x tuning x seed); the shared
# throughput and the shared-vs-per-run-synthesis speedup are gated like
# the top-level throughput numbers. batched_runs_per_sec is the SoA
# ensemble path at fixed trace sharing — gated so a regression back
# toward the per-seed scalar Realize loop is caught on its own axis.
FLEET_REQUIRED_MULTI_SEED_KEYS = ("shared_runs_per_sec",
                                  "unshared_runs_per_sec", "speedup",
                                  "batched_runs_per_sec")

FAULT_REQUIRED_KEYS = ("cells", "realizations", "cells_per_sec",
                       "epochs_per_sec", "outcomes",
                       "boundaries_demonstrated", "boundary_search")
FAULT_REQUIRED_OUTCOME_KEYS = ("detections", "misses", "false_alarms",
                               "true_negatives", "residual_detections",
                               "supervisor_detections")

# Sub-keys of the boundary_search section (the adaptive bisection pass
# that narrows every demonstrated detection boundary to the configured
# intensity tolerance); both are deterministic and pinned exactly.
FAULT_REQUIRED_BOUNDARY_KEYS = ("boundaries_refined", "probes")

SERVE_REQUIRED_KEYS = ("protocol_version", "clients", "ping", "fleet",
                       "fleet_jobs_per_request")
SERVE_PHASE_KEYS = ("requests", "requests_per_sec", "p50_ms", "p95_ms",
                    "p99_ms")
# Absolute latency slack per percentile (ms): a percentile only fails the
# gate when it exceeds BOTH the ratio bound and baseline + slack. The tail
# gets more room — p99 of a 4-client phase is a handful of samples.
SERVE_LATENCY_SLACK_MS = {"p50_ms": 20.0, "p95_ms": 50.0, "p99_ms": 100.0}


class BenchDataError(Exception):
    """Malformed or incomplete bench JSON (distinct from a regression)."""


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        raise BenchDataError(f"cannot read {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise BenchDataError(f"{path} is not valid JSON: {e}") from e


def schema_of(data):
    return data.get("bench", "fleet")


def missing_fleet_keys(data):
    missing = [k for k in FLEET_REQUIRED_KEYS if k not in data]
    missing += [f"multi_seed.{k}" for k in FLEET_REQUIRED_MULTI_SEED_KEYS
                if k not in data.get("multi_seed", {})]
    missing += [f"per_stage_us.{k}" for k in FLEET_REQUIRED_STAGE_KEYS
                if k not in data.get("per_stage_us", {})]
    return missing


def missing_fault_keys(data):
    missing = [k for k in FAULT_REQUIRED_KEYS if k not in data]
    missing += [f"outcomes.{k}" for k in FAULT_REQUIRED_OUTCOME_KEYS
                if k not in data.get("outcomes", {})]
    missing += [f"boundary_search.{k}" for k in FAULT_REQUIRED_BOUNDARY_KEYS
                if k not in data.get("boundary_search", {})]
    return missing


def missing_serve_keys(data):
    missing = [k for k in SERVE_REQUIRED_KEYS if k not in data]
    for phase in ("ping", "fleet"):
        missing += [f"{phase}.{k}" for k in SERVE_PHASE_KEYS
                    if k not in data.get(phase, {})]
    return missing


def require_keys(data, role, path):
    schema = schema_of(data)
    spec = SCHEMAS.get(schema)
    if spec is None:
        known = ", ".join(f"'{s}'" for s in sorted(SCHEMAS))
        raise BenchDataError(
            f"{role} {path} has unknown bench schema '{schema}' (this gate "
            f"understands {known})")
    missing = spec["missing"](data)
    if missing:
        raise BenchDataError(
            f"{role} {path} is missing key(s) {missing}; regenerate it with "
            f"{spec['regen']} (or refresh the baseline with "
            "compare_bench.py fresh baseline --update)")


def check_fleet(fresh, base, fresh_path, tol, rows, failures):
    def check_throughput(key, b, f):
        delta = (f - b) / b if b else 0.0
        rows.append((key, b, f, delta, "higher-is-better"))
        if f < b * (1.0 - tol):
            failures.append(
                f"{key}: {f:.2f} is {-delta:.0%} below baseline {b:.2f} "
                f"(allowed {tol:.0%})")

    for key in ("scenarios_per_sec", "epochs_per_sec"):
        check_throughput(key, base[key], fresh[key])
    # The seed-axis sweep: shared-trace throughput, and the amortization
    # speedup itself so a regression back toward per-run synthesis cost is
    # caught even if absolute throughput moved with the host.
    for key in ("shared_runs_per_sec", "speedup", "batched_runs_per_sec"):
        check_throughput(f"multi_seed.{key}", base["multi_seed"][key],
                         fresh["multi_seed"][key])

    base_stages = base["per_stage_us"]
    fresh_stages = fresh["per_stage_us"]
    for key in sorted(set(fresh_stages) - set(base_stages)):
        print(f"note: stage '{key}' has no baseline yet (new stage?); "
              f"not gated this run")
    vanished = sorted(set(base_stages) - set(fresh_stages))
    if vanished:
        # A stage the baseline gates no longer exists in the bench output:
        # either the bench schema drifted by accident, or the removal is
        # intentional and the baseline must be refreshed first.
        raise BenchDataError(
            f"baseline stage(s) {vanished} missing from the fresh run "
            f"{fresh_path}; if the stage was removed on purpose, refresh "
            "the baseline with --update")
    for key in sorted(set(base_stages) & set(fresh_stages)):
        b, f = base_stages[key], fresh_stages[key]
        delta = (f - b) / b if b else 0.0
        rows.append((f"per_stage_us.{key}", b, f, delta, "lower-is-better"))
        if f > max(b * (1.0 + tol), b + STAGE_NOISE_SLACK_US):
            failures.append(
                f"per_stage_us.{key}: {f:.3f} us is {delta:.0%} above "
                f"baseline {b:.3f} us (allowed {tol:.0%})")

    b = base["feed_allocs_per_epoch"]
    f = fresh["feed_allocs_per_epoch"]
    rows.append(("feed_allocs_per_epoch", b, f, 0.0, "pinned"))
    if f > b + 1e-9:
        failures.append(
            f"feed_allocs_per_epoch: {f} exceeds pinned baseline {b}")


def check_fault_campaign(fresh, base, tol, rows, failures):
    for key in ("cells_per_sec", "epochs_per_sec"):
        b, f = base[key], fresh[key]
        delta = (f - b) / b if b else 0.0
        rows.append((key, b, f, delta, "higher-is-better"))
        if f < b * (1.0 - tol):
            failures.append(
                f"{key}: {f:.2f} is {-delta:.0%} below baseline {b:.2f} "
                f"(allowed {tol:.0%})")

    # Deterministic campaign totals: functions of the config and the RNG
    # contract alone, pinned exactly. A changed count is a changed fault
    # envelope, not machine noise.
    pinned = [("cells", base["cells"], fresh["cells"]),
              ("realizations", base["realizations"], fresh["realizations"])]
    pinned += [(f"outcomes.{k}", base["outcomes"][k], fresh["outcomes"][k])
               for k in FAULT_REQUIRED_OUTCOME_KEYS]
    pinned.append(("boundaries_demonstrated", base["boundaries_demonstrated"],
                   fresh["boundaries_demonstrated"]))
    pinned += [(f"boundary_search.{k}", base["boundary_search"][k],
                fresh["boundary_search"][k])
               for k in FAULT_REQUIRED_BOUNDARY_KEYS]
    for key, b, f in pinned:
        rows.append((key, b, f, 0.0, "pinned"))
        if f != b:
            failures.append(
                f"{key}: {f} differs from pinned baseline {b} — the "
                "deterministic fault envelope moved (if intentional, "
                "refresh the baseline with --update)")


def check_serve(fresh, base, tol, rows, failures):
    for phase in ("ping", "fleet"):
        b, f = base[phase]["requests_per_sec"], fresh[phase]["requests_per_sec"]
        delta = (f - b) / b if b else 0.0
        rows.append((f"{phase}.requests_per_sec", b, f, delta,
                     "higher-is-better"))
        if f < b * (1.0 - tol):
            failures.append(
                f"{phase}.requests_per_sec: {f:.1f} is {-delta:.0%} below "
                f"baseline {b:.1f} (allowed {tol:.0%})")
        for pct, slack_ms in SERVE_LATENCY_SLACK_MS.items():
            b, f = base[phase][pct], fresh[phase][pct]
            delta = (f - b) / b if b else 0.0
            rows.append((f"{phase}.{pct}", b, f, delta, "lower-is-better"))
            if f > max(b * (1.0 + tol), b + slack_ms):
                failures.append(
                    f"{phase}.{pct}: {f:.3f} ms is {delta:.0%} above "
                    f"baseline {b:.3f} ms (allowed {tol:.0%} + "
                    f"{slack_ms:.0f} ms slack)")

    # Bench shape and wire contract, pinned exactly: a changed request
    # count or protocol version means the two runs measured different
    # things, not that one of them is slower.
    pinned = [("protocol_version", base["protocol_version"],
               fresh["protocol_version"]),
              ("clients", base["clients"], fresh["clients"]),
              ("ping.requests", base["ping"]["requests"],
               fresh["ping"]["requests"]),
              ("fleet.requests", base["fleet"]["requests"],
               fresh["fleet"]["requests"]),
              ("fleet_jobs_per_request", base["fleet_jobs_per_request"],
               fresh["fleet_jobs_per_request"])]
    for key, b, f in pinned:
        rows.append((key, b, f, 0.0, "pinned"))
        if f != b:
            failures.append(
                f"{key}: {f} differs from pinned baseline {b} — the bench "
                "config or wire contract changed (if intentional, refresh "
                "the baseline with --update)")


# Registry dispatching the "bench" key to required-key validation and the
# gate itself. Adding a bench schema = one bench binary, one baseline
# file, one entry here (documented in docs/REPORTS.md).
SCHEMAS = {
    "fleet": {
        "missing": missing_fleet_keys,
        "regen": "bench/fleet_throughput",
    },
    "fault_campaign": {
        "missing": missing_fault_keys,
        "regen": "bench/fault_campaign",
    },
    "serve": {
        "missing": missing_serve_keys,
        "regen": "bench/fleet_serve",
    },
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly generated bench JSON")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed fractional regression (default 0.20)")
    ap.add_argument("--update", action="store_true",
                    help="overwrite the baseline with the fresh run")
    args = ap.parse_args()

    if args.update:
        # Never pin a malformed run: a truncated or key-missing fresh file
        # would otherwise get committed and break every subsequent gate.
        require_keys(load(args.fresh), "fresh run", args.fresh)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    fresh = load(args.fresh)
    base = load(args.baseline)
    require_keys(fresh, "fresh run", args.fresh)
    require_keys(base, "baseline", args.baseline)
    if schema_of(fresh) != schema_of(base):
        raise BenchDataError(
            f"schema mismatch: fresh run {args.fresh} is "
            f"'{schema_of(fresh)}' but baseline {args.baseline} is "
            f"'{schema_of(base)}'")
    tol = args.max_regression
    failures = []
    rows = []

    schema = schema_of(fresh)
    if schema == "fleet":
        check_fleet(fresh, base, args.fresh, tol, rows, failures)
    elif schema == "fault_campaign":
        check_fault_campaign(fresh, base, tol, rows, failures)
    else:
        check_serve(fresh, base, tol, rows, failures)

    width = max(len(r[0]) for r in rows) if rows else 20
    print(f"{'metric':<{width}} {'baseline':>12} {'fresh':>12} {'delta':>8}")
    for name, b, f, delta, _ in rows:
        print(f"{name:<{width}} {b:>12.3f} {f:>12.3f} {delta:>+8.1%}")

    if failures:
        print("\nREGRESSION:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print(f"\nOK: no metric regressed more than {tol:.0%} "
          f"(per-stage absolute slack {STAGE_NOISE_SLACK_US} us)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BenchDataError as e:
        print(f"ERROR: {e}", file=sys.stderr)
        sys.exit(2)
