#!/usr/bin/env python3
"""Gate bench regressions against a committed baseline.

Usage:
    compare_bench.py FRESH_JSON BASELINE_JSON [--max-regression 0.20]
    compare_bench.py FRESH_JSON BASELINE_JSON --update

The JSON's "bench" key selects the schema (missing key => "fleet", the
original schema):

fleet (bench/fleet_throughput, BENCH_fleet.json) — exits nonzero when:

  * scenarios_per_sec or epochs_per_sec drop more than --max-regression
    (default 20%) below the baseline, or
  * any per-stage cost in per_stage_us rises more than --max-regression
    above the baseline AND by more than an absolute slack of 0.1 us —
    the slack keeps sub-microsecond stages from tripping on timer
    noise, or
  * feed_allocs_per_epoch rises above the baseline at all — the zero-
    allocation steady state is pinned exactly.

fault_campaign (bench/fault_campaign, BENCH_fault.json) — exits nonzero
when:

  * cells_per_sec or epochs_per_sec drop more than --max-regression
    below the baseline, or
  * any deterministic campaign total (cells, realizations, the
    detection/miss/false-alarm/true-negative outcome counts, the
    per-detector residual/supervisor detection columns, the number of
    demonstrated detection boundaries, and the boundary-search
    refinement/probe counts) differs from the baseline at all — those
    are functions of the config and the RNG contract, never of the
    machine, so any drift means the fault envelope itself moved.

--update rewrites the baseline from the fresh run instead of comparing
(use after an intentional perf change, and commit the result).

Exit codes: 0 ok, 1 regression, 2 malformed/incomplete bench JSON (e.g. a
baseline missing a required key, or a fresh/baseline schema mismatch —
reported with a clear message, never a KeyError traceback).

Throughput baselines are machine-specific: numbers measured on one box do
not transfer to a different CPU. Refresh the baseline when the benchmark
host changes. The fault-campaign outcome totals are the exception — they
must reproduce everywhere.
"""

import argparse
import json
import shutil
import sys

STAGE_NOISE_SLACK_US = 0.1

# Metrics each schema's gate is meaningless without. A baseline (or fresh
# run) that lacks one of these is a data error — exit 2 with a pointed
# message, never a silent skip or a KeyError traceback.
FLEET_REQUIRED_KEYS = ("scenarios_per_sec", "epochs_per_sec", "per_stage_us",
                       "feed_allocs_per_epoch", "multi_seed")

# Stages of per_stage_us that the gate is meaningless without. Most stages
# are discovered dynamically (new ones are reported, vanished ones error),
# but these are load-bearing capabilities: sabre_step pins the predecoded
# ISS dispatch cost so a regression back toward per-instruction decode is
# caught.
FLEET_REQUIRED_STAGE_KEYS = ("sabre_step",)

# Sub-keys of the multi_seed section (the 8-seed shared-trace sweep;
# "runs" are scenario realizations, scenario x tuning x seed); the shared
# throughput and the shared-vs-per-run-synthesis speedup are gated like
# the top-level throughput numbers.
FLEET_REQUIRED_MULTI_SEED_KEYS = ("shared_runs_per_sec",
                                  "unshared_runs_per_sec", "speedup")

FAULT_REQUIRED_KEYS = ("cells", "realizations", "cells_per_sec",
                       "epochs_per_sec", "outcomes",
                       "boundaries_demonstrated", "boundary_search")
FAULT_REQUIRED_OUTCOME_KEYS = ("detections", "misses", "false_alarms",
                               "true_negatives", "residual_detections",
                               "supervisor_detections")

# Sub-keys of the boundary_search section (the adaptive bisection pass
# that narrows every demonstrated detection boundary to the configured
# intensity tolerance); both are deterministic and pinned exactly.
FAULT_REQUIRED_BOUNDARY_KEYS = ("boundaries_refined", "probes")


class BenchDataError(Exception):
    """Malformed or incomplete bench JSON (distinct from a regression)."""


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        raise BenchDataError(f"cannot read {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise BenchDataError(f"{path} is not valid JSON: {e}") from e


def schema_of(data):
    return data.get("bench", "fleet")


def require_keys(data, role, path):
    schema = schema_of(data)
    if schema == "fleet":
        missing = [k for k in FLEET_REQUIRED_KEYS if k not in data]
        missing += [f"multi_seed.{k}" for k in FLEET_REQUIRED_MULTI_SEED_KEYS
                    if k not in data.get("multi_seed", {})]
        missing += [f"per_stage_us.{k}" for k in FLEET_REQUIRED_STAGE_KEYS
                    if k not in data.get("per_stage_us", {})]
        regen = "bench/fleet_throughput"
    elif schema == "fault_campaign":
        missing = [k for k in FAULT_REQUIRED_KEYS if k not in data]
        missing += [f"outcomes.{k}" for k in FAULT_REQUIRED_OUTCOME_KEYS
                    if k not in data.get("outcomes", {})]
        missing += [f"boundary_search.{k}"
                    for k in FAULT_REQUIRED_BOUNDARY_KEYS
                    if k not in data.get("boundary_search", {})]
        regen = "bench/fault_campaign"
    else:
        raise BenchDataError(
            f"{role} {path} has unknown bench schema '{schema}' (this gate "
            "understands 'fleet' and 'fault_campaign')")
    if missing:
        raise BenchDataError(
            f"{role} {path} is missing key(s) {missing}; regenerate it with "
            f"{regen} (or refresh the baseline with "
            "compare_bench.py fresh baseline --update)")


def check_fleet(fresh, base, fresh_path, tol, rows, failures):
    def check_throughput(key, b, f):
        delta = (f - b) / b if b else 0.0
        rows.append((key, b, f, delta, "higher-is-better"))
        if f < b * (1.0 - tol):
            failures.append(
                f"{key}: {f:.2f} is {-delta:.0%} below baseline {b:.2f} "
                f"(allowed {tol:.0%})")

    for key in ("scenarios_per_sec", "epochs_per_sec"):
        check_throughput(key, base[key], fresh[key])
    # The seed-axis sweep: shared-trace throughput, and the amortization
    # speedup itself so a regression back toward per-run synthesis cost is
    # caught even if absolute throughput moved with the host.
    for key in ("shared_runs_per_sec", "speedup"):
        check_throughput(f"multi_seed.{key}", base["multi_seed"][key],
                         fresh["multi_seed"][key])

    base_stages = base["per_stage_us"]
    fresh_stages = fresh["per_stage_us"]
    for key in sorted(set(fresh_stages) - set(base_stages)):
        print(f"note: stage '{key}' has no baseline yet (new stage?); "
              f"not gated this run")
    vanished = sorted(set(base_stages) - set(fresh_stages))
    if vanished:
        # A stage the baseline gates no longer exists in the bench output:
        # either the bench schema drifted by accident, or the removal is
        # intentional and the baseline must be refreshed first.
        raise BenchDataError(
            f"baseline stage(s) {vanished} missing from the fresh run "
            f"{fresh_path}; if the stage was removed on purpose, refresh "
            "the baseline with --update")
    for key in sorted(set(base_stages) & set(fresh_stages)):
        b, f = base_stages[key], fresh_stages[key]
        delta = (f - b) / b if b else 0.0
        rows.append((f"per_stage_us.{key}", b, f, delta, "lower-is-better"))
        if f > max(b * (1.0 + tol), b + STAGE_NOISE_SLACK_US):
            failures.append(
                f"per_stage_us.{key}: {f:.3f} us is {delta:.0%} above "
                f"baseline {b:.3f} us (allowed {tol:.0%})")

    b = base["feed_allocs_per_epoch"]
    f = fresh["feed_allocs_per_epoch"]
    rows.append(("feed_allocs_per_epoch", b, f, 0.0, "pinned"))
    if f > b + 1e-9:
        failures.append(
            f"feed_allocs_per_epoch: {f} exceeds pinned baseline {b}")


def check_fault_campaign(fresh, base, tol, rows, failures):
    for key in ("cells_per_sec", "epochs_per_sec"):
        b, f = base[key], fresh[key]
        delta = (f - b) / b if b else 0.0
        rows.append((key, b, f, delta, "higher-is-better"))
        if f < b * (1.0 - tol):
            failures.append(
                f"{key}: {f:.2f} is {-delta:.0%} below baseline {b:.2f} "
                f"(allowed {tol:.0%})")

    # Deterministic campaign totals: functions of the config and the RNG
    # contract alone, pinned exactly. A changed count is a changed fault
    # envelope, not machine noise.
    pinned = [("cells", base["cells"], fresh["cells"]),
              ("realizations", base["realizations"], fresh["realizations"])]
    pinned += [(f"outcomes.{k}", base["outcomes"][k], fresh["outcomes"][k])
               for k in FAULT_REQUIRED_OUTCOME_KEYS]
    pinned.append(("boundaries_demonstrated", base["boundaries_demonstrated"],
                   fresh["boundaries_demonstrated"]))
    pinned += [(f"boundary_search.{k}", base["boundary_search"][k],
                fresh["boundary_search"][k])
               for k in FAULT_REQUIRED_BOUNDARY_KEYS]
    for key, b, f in pinned:
        rows.append((key, b, f, 0.0, "pinned"))
        if f != b:
            failures.append(
                f"{key}: {f} differs from pinned baseline {b} — the "
                "deterministic fault envelope moved (if intentional, "
                "refresh the baseline with --update)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly generated bench JSON")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed fractional regression (default 0.20)")
    ap.add_argument("--update", action="store_true",
                    help="overwrite the baseline with the fresh run")
    args = ap.parse_args()

    if args.update:
        # Never pin a malformed run: a truncated or key-missing fresh file
        # would otherwise get committed and break every subsequent gate.
        require_keys(load(args.fresh), "fresh run", args.fresh)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    fresh = load(args.fresh)
    base = load(args.baseline)
    require_keys(fresh, "fresh run", args.fresh)
    require_keys(base, "baseline", args.baseline)
    if schema_of(fresh) != schema_of(base):
        raise BenchDataError(
            f"schema mismatch: fresh run {args.fresh} is "
            f"'{schema_of(fresh)}' but baseline {args.baseline} is "
            f"'{schema_of(base)}'")
    tol = args.max_regression
    failures = []
    rows = []

    if schema_of(fresh) == "fleet":
        check_fleet(fresh, base, args.fresh, tol, rows, failures)
    else:
        check_fault_campaign(fresh, base, tol, rows, failures)

    width = max(len(r[0]) for r in rows) if rows else 20
    print(f"{'metric':<{width}} {'baseline':>12} {'fresh':>12} {'delta':>8}")
    for name, b, f, delta, _ in rows:
        print(f"{name:<{width}} {b:>12.3f} {f:>12.3f} {delta:>+8.1%}")

    if failures:
        print("\nREGRESSION:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print(f"\nOK: no metric regressed more than {tol:.0%} "
          f"(per-stage absolute slack {STAGE_NOISE_SLACK_US} us)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BenchDataError as e:
        print(f"ERROR: {e}", file=sys.stderr)
        sys.exit(2)
