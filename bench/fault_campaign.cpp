// Fault-injection campaign: expand {scenario x fault type x intensity x
// processor} into FleetJob batches, run them through the FleetRunner
// thread pool, and score every Monte Carlo realization on two independent
// verdicts — did the estimate diverge from the trace truth, and did the
// always-on ResidualMonitor flag it? The cross of the two is the fault
// envelope: detections, misses (diverged unflagged — the dangerous
// quadrant), false alarms and true negatives, plus the per-group detection
// boundary (the intensity below which the monitor goes blind).
//
// Wall-clock throughput goes to BENCH_fault.json (gated by
// compare_bench.py's fault_campaign schema, which also pins the
// deterministic outcome totals exactly); the full deterministic campaign
// report — identical bytes at any thread count — goes to STUDY_fault.json.

#include <chrono>
#include <cstdio>

#include "system/fault_campaign.hpp"
#include "system/fleet.hpp"
#include "util/artifacts.hpp"
#include "util/json.hpp"

namespace {

using namespace ob;
using Clock = std::chrono::steady_clock;
using Processor = system::BoresightSystem::Processor;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

system::FaultCampaignConfig campaign_config() {
    system::FaultCampaignConfig cfg;
    cfg.label = "fault-envelope";
    // One quiet and one dynamic scene: link starvation is silent when the
    // platform is static (clean residuals, nothing to diverge from) and
    // dangerous when it moves; stuck sensors are the reverse.
    cfg.scenarios = {"static-level", "city-drive"};
    cfg.faults = {
        system::FaultType::kUartDropout,
        system::FaultType::kUartCorruption,
        system::FaultType::kCanBurstLoss,
        system::FaultType::kAccStuck,
        system::FaultType::kImuFrozen,
    };
    // 0.0 is the exact control row; the positive rungs straddle the
    // measured corruption boundary (found empirically on this grid): at
    // 0.14 corrupted-but-passing measurements excite the residuals and
    // the divergence is flagged, at 0.4 the links starve, the monitor
    // loses its sample feed and the same divergence goes silent.
    cfg.intensities = {0.0, 0.02, 0.14, 0.4};
    cfg.processors = {Processor::kNative, Processor::kSabre};
    cfg.seeds_per_cell = 3;
    // Long enough for a 30 s checked window past static-level's 120 s
    // envelope settle (city-drive settles at 90 s and gets 60 s), short
    // enough that the Sabre half of the grid stays CI-sized.
    cfg.duration_s = 150.0;
    // Adaptive boundary search: bisect every demonstrated boundary to a
    // 0.02-wide intensity bracket (the rung grid alone leaves 0.26-wide
    // gaps between 0.14 and 0.4).
    cfg.boundary_tolerance = 0.02;
    cfg.boundary_max_probes = 8;
    return cfg;
}

struct CampaignRun {
    system::FaultCampaignReport report;
    double elapsed_s = 0.0;
    std::size_t epochs = 0;
};

CampaignRun execute(const system::FaultCampaignConfig& cfg,
                    const system::FleetRunner& runner) {
    const system::FaultCampaign campaign(cfg);
    CampaignRun out;
    const auto t0 = Clock::now();
    out.report = campaign.run(runner);
    out.elapsed_s = seconds_since(t0);
    for (const auto& c : out.report.cells) {
        for (const auto& s : c.result.seeds) out.epochs += s.trace.epochs;
    }
    for (const auto& r : out.report.refinements) {
        for (const auto& p : r.probes) out.epochs += p.epochs;
    }

    std::printf("campaign '%s': %zu cells x %zu seed(s), %.2f s\n",
                cfg.label.c_str(), out.report.cells.size(),
                cfg.seeds_per_cell, out.elapsed_s);
    std::printf("  %-14s %-15s %-9s %-7s | %3s %4s %3s %3s | %s\n",
                "scenario", "fault", "intensity", "proc", "det", "miss",
                "fa", "tn", "latency");
    for (const auto& c : out.report.cells) {
        const auto& o = c.outcomes;
        std::printf("  %-14s %-15s %9.3f %-7s | %3zu %4zu %3zu %3zu |",
                    c.result.scenario.c_str(),
                    system::fault_type_name(cfg.faults[c.fault_index]),
                    cfg.intensities[c.intensity_index],
                    system::processor_name(c.result.processor), o.detections,
                    o.misses, o.false_alarms, o.true_negatives);
        if (o.detections > 0) {
            std::printf(" %.2f s\n", o.mean_detection_latency_s);
        } else {
            std::printf(" -\n");
        }
    }
    std::printf("\n  detection boundaries (lowest caught / highest "
                "missed intensity):\n");
    for (const auto& b : out.report.boundaries) {
        std::printf("  %-14s %-15s %-7s | %9.3f / %9.3f | %s\n",
                    cfg.scenarios[b.scenario_index].c_str(),
                    system::fault_type_name(cfg.faults[b.fault_index]),
                    system::processor_name(cfg.processors[b.processor_index]),
                    b.lowest_detected_intensity, b.highest_missed_intensity,
                    b.boundary_demonstrated ? "boundary mapped" : "-");
    }
    if (!out.report.refinements.empty()) {
        std::printf("\n  bisected boundary edges (detect edge / miss edge, "
                    "tolerance %.3f):\n",
                    cfg.boundary_tolerance);
        for (const auto& r : out.report.refinements) {
            std::printf("  %-14s %-15s %-7s | %9.4f / %9.4f | %zu probe(s)%s\n",
                        cfg.scenarios[r.scenario_index].c_str(),
                        system::fault_type_name(cfg.faults[r.fault_index]),
                        system::processor_name(
                            cfg.processors[r.processor_index]),
                        r.detect_edge, r.miss_edge, r.probes.size(),
                        r.converged ? "" : " (budget hit)");
        }
    }
    std::printf("\n");
    return out;
}

void write_bench_json(const system::FleetRunner& runner,
                      const CampaignRun& run) {
    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("fault_campaign");
    w.key("threads").value(runner.threads());
    w.key("cells").value(run.report.cells.size());
    w.key("seeds_per_cell").value(run.report.config.seeds_per_cell);
    w.key("realizations").value(run.report.cells.size() *
                                run.report.config.seeds_per_cell);
    w.key("elapsed_s").value(run.elapsed_s);
    w.key("cells_per_sec").value(
        static_cast<double>(run.report.cells.size()) / run.elapsed_s);
    w.key("epochs_per_sec").value(static_cast<double>(run.epochs) /
                                  run.elapsed_s);
    // Deterministic outcome totals: the gate pins these exactly — any
    // drift means the fault envelope itself moved, not the machine.
    std::size_t demonstrated = 0;
    for (const auto& b : run.report.boundaries) {
        if (b.boundary_demonstrated) ++demonstrated;
    }
    w.key("outcomes").begin_object();
    w.key("detections").value(run.report.detections);
    w.key("misses").value(run.report.misses);
    w.key("false_alarms").value(run.report.false_alarms);
    w.key("true_negatives").value(run.report.true_negatives);
    w.key("residual_detections").value(run.report.residual_detections);
    w.key("supervisor_detections").value(run.report.supervisor_detections);
    w.end_object();
    w.key("boundaries_demonstrated").value(demonstrated);
    std::size_t probes = 0;
    for (const auto& r : run.report.refinements) probes += r.probes.size();
    w.key("boundary_search").begin_object();
    w.key("boundaries_refined").value(run.report.refinements.size());
    w.key("probes").value(probes);
    w.end_object();
    w.end_object();
    const std::string path = util::artifact_path("BENCH_fault.json");
    util::write_file(path, w.str());
    std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
    const system::FleetRunner runner;
    std::printf("fault-campaign runner: %zu worker thread(s)\n\n",
                runner.threads());

    const auto run = execute(campaign_config(), runner);

    write_bench_json(runner, run);
    const std::string study_path = util::artifact_path("STUDY_fault.json");
    util::write_file(study_path, run.report.to_json());
    std::printf("wrote %s\n", study_path.c_str());

    // Self-checks: the campaign is only evidence if its controls are clean
    // and it actually maps a boundary.
    int failures = 0;
    for (const auto& c : run.report.cells) {
        if (run.report.config.intensities[c.intensity_index] > 0.0) continue;
        if (c.outcomes.true_negatives != c.outcomes.seeds) {
            std::printf("FAIL: zero-intensity control cell (%s, %s, %s) is "
                        "not all-true-negative\n",
                        c.result.scenario.c_str(),
                        system::fault_type_name(
                            run.report.config.faults[c.fault_index]),
                        system::processor_name(c.result.processor));
            ++failures;
        }
    }
    std::size_t demonstrated = 0;
    for (const auto& b : run.report.boundaries) {
        if (b.boundary_demonstrated) ++demonstrated;
    }
    if (demonstrated == 0) {
        std::printf("FAIL: no {scenario x fault x processor} group "
                    "demonstrated a detection boundary\n");
        ++failures;
    }
    if (failures > 0) return 1;
    std::printf("PASS: controls clean, %zu detection boundaries mapped\n",
                demonstrated);
    return 0;
}
