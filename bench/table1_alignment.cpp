// Reproduces Table 1 of the paper: "Results from Static (Top) & Dynamic
// (Bottom) Tests" — alignment estimates vs injected truth per axis with
// 3-sigma confidence, for static (level and tilted-platform) runs and two
// repeated dynamic drives.
//
// Expected shape (paper §11): static estimates accurate on every
// observable axis with tight 3-sigma; the two dynamic drives agree closely
// with each other; accuracy at or beyond typical automotive alignment
// requirements (~0.5 deg) with 3-sigma/99% confidence.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/alignment_report.hpp"
#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "system/experiment.hpp"

namespace {

using namespace ob;
using math::EulerAngles;
using math::rad2deg;
using system::ExperimentConfig;
using system::ExperimentOutcome;
using system::run_experiment;

/// All scenario shapes and filter tunings come from the scenario library;
/// the bench only chooses the injected truths and sensor seeds, matching
/// the paper's experiment plan.
ExperimentConfig library_cfg(const char* scenario, const char* label,
                             const EulerAngles& truth,
                             std::uint64_t sensor_seed,
                             std::uint64_t drive_seed = 0) {
    const auto& spec = sim::ScenarioLibrary::instance().at(scenario);
    ExperimentConfig cfg;
    cfg.label = label;
    cfg.scenario = spec.build(300.0, truth, drive_seed);
    cfg.sensor_seed = sensor_seed;
    cfg.filter.meas_noise_mps2 = spec.meas_noise_mps2;
    return cfg;
}

ExperimentConfig static_level_cfg(const EulerAngles& truth) {
    // paper: 0.003-0.01 m/s² static tuning, from the library spec
    return library_cfg("static-level", "static level", truth, 101);
}

ExperimentConfig static_tilted_cfg(const EulerAngles& truth) {
    return library_cfg("static-tilted", "static tilted", truth, 102);
}

ExperimentConfig dynamic_cfg(const EulerAngles& truth, std::uint64_t drive_seed,
                             const char* label) {
    // paper: >= 0.015 m/s² moving; sensor seed 103 keeps the same physical
    // instruments for both drives
    return library_cfg("city-drive", label, truth, 103, drive_seed);
}

}  // namespace

int main() {
    std::printf("==========================================================\n");
    std::printf("Table 1 — Results from Static (Top) & Dynamic (Bottom) Tests\n");
    std::printf("(angles in degrees: true / estimated / 3-sigma)\n");
    std::printf("==========================================================\n\n");

    std::vector<ExperimentOutcome> outcomes;

    // --- Static tests (paper §11.1) --------------------------------------
    const EulerAngles static_truth = EulerAngles::from_deg(1.5, -2.0, 2.5);
    outcomes.push_back(run_experiment(static_level_cfg(static_truth)));
    outcomes.push_back(run_experiment(static_tilted_cfg(static_truth)));

    // --- Dynamic tests (paper §11.2): two drives, same misalignment ------
    const EulerAngles dyn_truth = EulerAngles::from_deg(1.2, -0.8, 1.5);
    outcomes.push_back(run_experiment(dynamic_cfg(dyn_truth, 21, "dynamic drive 1")));
    outcomes.push_back(run_experiment(dynamic_cfg(dyn_truth, 22, "dynamic drive 2")));

    std::printf("%s\n", core::alignment_table_header().c_str());
    for (const auto& o : outcomes)
        std::printf("%s\n", core::alignment_table_row(o.result).c_str());

    std::printf("\nNotes:\n");
    std::printf(
        "  * static level: yaw is NOT observable from gravity alone — its\n"
        "    3-sigma stays wide (paper: static yaw tests need the platform\n"
        "    oriented); the tilted-platform run recovers all three axes.\n");
    std::printf(
        "  * measurement noise: static %.4f m/s^2 (paper 0.003-0.01),\n"
        "    dynamic %.4f m/s^2 (paper 0.015 or higher).\n",
        outcomes[0].result.meas_noise, outcomes[2].result.meas_noise);

    // --- Dynamic repeatability (paper: "very close agreement") -----------
    const auto& d1 = outcomes[2].result.estimate;
    const auto& d2 = outcomes[3].result.estimate;
    std::printf("\nDynamic test agreement (drive 1 vs drive 2, degrees):\n");
    std::printf("  droll=%.3f  dpitch=%.3f  dyaw=%.3f\n",
                rad2deg(std::abs(d1.roll - d2.roll)),
                rad2deg(std::abs(d1.pitch - d2.pitch)),
                rad2deg(std::abs(d1.yaw - d2.yaw)));

    // --- Verdict ----------------------------------------------------------
    int failures = 0;
    // Observable-axis accuracy: every axis except level-static yaw.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& r = outcomes[i].result;
        for (int axis = 0; axis < 3; ++axis) {
            if (i == 0 && axis == 2) continue;  // level-static yaw: skip
            const double err = std::abs(r.error_deg(axis));
            if (err > 0.5) {
                std::printf("  !! %s axis %d error %.3f deg exceeds 0.5\n",
                            r.label.c_str(), axis, err);
                ++failures;
            }
        }
    }
    const double agree = rad2deg(std::max({std::abs(d1.roll - d2.roll),
                                           std::abs(d1.pitch - d2.pitch),
                                           std::abs(d1.yaw - d2.yaw)}));
    if (agree > 0.6) {
        std::printf("  !! dynamic drives disagree by %.3f deg\n", agree);
        ++failures;
    }
    std::printf("\n%s: alignment accuracy %s the paper's reported class "
                "(sub-0.5-degree, 3-sigma confidence)\n",
                failures == 0 ? "PASS" : "FAIL",
                failures == 0 ? "matches" : "misses");
    return failures == 0 ? 0 : 1;
}
