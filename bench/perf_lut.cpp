// P4 — the 1024-entry sine/cosine lookup table of §9: fast enough for a
// per-pixel datapath and accurate enough for degree-class corrections.
// Reports both speed vs libm and the worst-case absolute error.

#include <benchmark/benchmark.h>

#include <cmath>

#include "video/trig_lut.hpp"

namespace {

using ob::video::TrigLut;

void BM_LutSin(benchmark::State& state) {
    const TrigLut lut;
    std::uint32_t idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lut.sin_at(idx));
        idx = (idx + 7) & 1023;
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["max_abs_error"] = lut.max_abs_error();
}
BENCHMARK(BM_LutSin);

void BM_LutSinFromRadians(benchmark::State& state) {
    const TrigLut lut;
    double a = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lut.sin_rad(a));
        a += 0.001;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LutSinFromRadians);

void BM_LibmSin(benchmark::State& state) {
    double a = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(std::sin(a));
        a += 0.001;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LibmSin);

void BM_LibmSinf(benchmark::State& state) {
    float a = 0.0f;
    for (auto _ : state) {
        benchmark::DoNotOptimize(std::sin(a));
        a += 0.001f;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LibmSinf);

}  // namespace

BENCHMARK_MAIN();
