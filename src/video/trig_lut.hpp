#pragma once

#include <array>
#include <cstdint>

#include "video/fixed.hpp"

namespace ob::video {

/// The paper's "sine and cosine angles stored in a 1024-element lookup
/// table": angles are indexed in binary angle measurement (BAM) units,
/// 1024 steps per full turn, and values are fixed point.
class TrigLut {
public:
    static constexpr std::size_t kEntries = 1024;

    TrigLut();

    /// Sine/cosine by table index (wraps modulo 1024) — the
    /// GenerateSine/GenerateCos of Figure 5.
    [[nodiscard]] Fixed sin_at(std::uint32_t index) const {
        return sin_[index & (kEntries - 1)];
    }
    [[nodiscard]] Fixed cos_at(std::uint32_t index) const {
        return sin_[(index + kEntries / 4) & (kEntries - 1)];
    }

    /// Nearest-index conversion from radians to BAM units.
    [[nodiscard]] static std::uint32_t index_from_radians(double angle);

    /// Convenience: sine/cosine of an angle in radians through the table
    /// (quantized to the 1024-step grid).
    [[nodiscard]] Fixed sin_rad(double angle) const {
        return sin_at(index_from_radians(angle));
    }
    [[nodiscard]] Fixed cos_rad(double angle) const {
        return cos_at(index_from_radians(angle));
    }

    /// Worst-case absolute error of the table vs libm over a dense sweep
    /// (used by the accuracy bench).
    [[nodiscard]] double max_abs_error() const;

private:
    std::array<Fixed, kEntries> sin_;
};

}  // namespace ob::video
