#include "video/video_system.hpp"

#include <stdexcept>

namespace ob::video {

VideoSystem::VideoSystem(Config cfg) : cfg_(cfg) {
    if (cfg_.width * cfg_.height * 2 > 2u * 1024 * 1024)
        throw std::invalid_argument(
            "VideoSystem: frame does not fit a 2MB ZBT bank");
}

VideoSystem::FrameResult VideoSystem::process_frame(const Frame& camera_frame) {
    if (camera_frame.width() != cfg_.width ||
        camera_frame.height() != cfg_.height)
        throw std::invalid_argument("VideoSystem: frame size mismatch");

    // VideoInProcess: capture into the back buffer.
    ZbtSram& back = back_bank_ == 0 ? ram1_ : ram2_;
    back.store_frame(camera_frame);

    // Swap buffers (frame boundary).
    const std::size_t front_bank = back_bank_;
    back_bank_ = 1 - back_bank_;

    // VideoOutProcess: read the front buffer through the affine engine
    // with the current angle estimate.
    const ZbtSram& front = front_bank == 0 ? ram1_ : ram2_;
    const Frame stored = front.load_frame(cfg_.width, cfg_.height);
    const AffineParams p =
        params_from_misalignment(angles_(), cfg_.focal_px);

    FrameResult out{Frame(cfg_.width, cfg_.height, cfg_.fill), {}, front_bank};
    if (cfg_.mapping == Mapping::kForward) {
        // Cycle-accurate pipeline path (also yields exact timing).
        auto res = pipeline_transform_frame(stored, lut_, p, cfg_.fill);
        out.display = std::move(res.frame);
        out.timing = res.timing;
    } else {
        out.display = affine_fixed_inverse(stored, lut_, p, cfg_.fill);
        // Same 5-stage pipeline structure run in the inverse direction:
        // identical cycle cost model.
        out.timing.cycles =
            cfg_.width * cfg_.height + RotatePipeline::kLatency - 1;
    }
    ++frames_;
    return out;
}

}  // namespace ob::video
