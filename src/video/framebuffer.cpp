#include "video/framebuffer.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace ob::video {

Frame::Frame(std::size_t width, std::size_t height, Pixel fill)
    : w_(width), h_(height), px_(width * height, fill) {
    if (width == 0 || height == 0)
        throw std::invalid_argument("Frame: zero dimension");
}

void Frame::fill(Pixel p) {
    for (auto& x : px_) x = p;
}

void Frame::write_ppm(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("Frame::write_ppm: cannot open " + path);
    out << "P6\n" << w_ << ' ' << h_ << "\n255\n";
    for (const Pixel p : px_) {
        const Rgb c = unpack_rgb(p);
        out.put(static_cast<char>(c.r));
        out.put(static_cast<char>(c.g));
        out.put(static_cast<char>(c.b));
    }
}

double Frame::psnr_against(const Frame& ref) const {
    if (ref.width() != w_ || ref.height() != h_)
        throw std::invalid_argument("psnr: size mismatch");
    double mse = 0.0;
    for (std::size_t i = 0; i < px_.size(); ++i) {
        const Rgb a = unpack_rgb(px_[i]);
        const Rgb b = unpack_rgb(ref.px_[i]);
        const double dr = static_cast<double>(a.r) - b.r;
        const double dg = static_cast<double>(a.g) - b.g;
        const double db = static_cast<double>(a.b) - b.b;
        mse += dr * dr + dg * dg + db * db;
    }
    mse /= static_cast<double>(px_.size() * 3);
    if (mse <= 0.0) return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

Frame make_test_pattern(std::size_t width, std::size_t height) {
    Frame f(width, height);
    constexpr Pixel bars[] = {
        pack_rgb(255, 255, 255), pack_rgb(255, 255, 0), pack_rgb(0, 255, 255),
        pack_rgb(0, 255, 0),     pack_rgb(255, 0, 255), pack_rgb(255, 0, 0),
        pack_rgb(0, 0, 255),     pack_rgb(32, 32, 32)};
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            Pixel p = bars[(x * 8) / width];
            // Horizontal grid lines every 32 px.
            if (y % 32 == 0 || x % 32 == 0) p = pack_rgb(90, 90, 90);
            // Centred crosshair.
            if (x == width / 2 || y == height / 2) p = pack_rgb(0, 0, 0);
            // Main diagonal.
            if (width > 1 && height > 1 &&
                y == x * (height - 1) / (width - 1))
                p = pack_rgb(255, 128, 0);
            f.set(x, y, p);
        }
    }
    return f;
}

ZbtSram::ZbtSram(std::size_t bytes) : mem_(bytes / 2, 0) {
    if (bytes < 2) throw std::invalid_argument("ZbtSram: too small");
}

std::uint16_t ZbtSram::read(std::size_t addr) const {
    if (addr >= mem_.size()) throw std::out_of_range("ZbtSram::read");
    ++reads_;
    return mem_[addr];
}

void ZbtSram::write(std::size_t addr, std::uint16_t value) {
    if (addr >= mem_.size()) throw std::out_of_range("ZbtSram::write");
    ++writes_;
    mem_[addr] = value;
}

void ZbtSram::store_frame(const Frame& f, std::size_t base) {
    if (base + f.pixels().size() > mem_.size())
        throw std::out_of_range("ZbtSram::store_frame: does not fit");
    for (std::size_t i = 0; i < f.pixels().size(); ++i)
        write(base + i, f.pixels()[i]);
}

Frame ZbtSram::load_frame(std::size_t width, std::size_t height,
                          std::size_t base) const {
    if (base + width * height > mem_.size())
        throw std::out_of_range("ZbtSram::load_frame: out of range");
    Frame f(width, height);
    for (std::size_t y = 0; y < height; ++y)
        for (std::size_t x = 0; x < width; ++x)
            f.set(x, y, read(base + y * width + x));
    return f;
}

}  // namespace ob::video
