#pragma once

#include <cstdint>

#include "math/rotation.hpp"
#include "video/fixed.hpp"
#include "video/framebuffer.hpp"
#include "video/trig_lut.hpp"

namespace ob::video {

/// Parameters of the paper's §6 correction: r' = A·r + B — an image-plane
/// rotation by theta about the frame centre plus a translation (bx, by).
struct AffineParams {
    double theta_rad = 0.0;  ///< in-plane rotation (sensor roll)
    double bx_px = 0.0;      ///< horizontal shift (sensor yaw)
    double by_px = 0.0;      ///< vertical shift (sensor pitch)
};

/// Map the boresight misalignment onto image-plane correction parameters
/// for a camera with the given focal length in pixels: roll rotates the
/// image; yaw/pitch shift it by f*tan(angle).
[[nodiscard]] AffineParams params_from_misalignment(
    const math::EulerAngles& misalignment, double focal_px);

/// Floating-point reference implementation (inverse mapping; bilinear or
/// nearest sampling). This is the "ideal DSP" the fixed-point fabric
/// implementation is judged against in bench/perf_affine.
[[nodiscard]] Frame affine_reference(const Frame& src, const AffineParams& p,
                                     bool bilinear = true,
                                     Pixel fill = pack_rgb(0, 0, 0));

/// Functional model of Figure 5's RotateCoordinates: rotate (in_x, in_y)
/// about (cx, cy) by the LUT-quantized angle, in Q16.16 fixed point.
struct Coord {
    std::int32_t x = 0;
    std::int32_t y = 0;
};
[[nodiscard]] Coord rotate_coordinates(const TrigLut& lut,
                                       std::uint32_t theta_bam, Coord in,
                                       Coord centre);

/// The paper's §9 transform: *forward* mapping — "computes the rotated
/// output location of each input pixel, copying the relevant pixels to
/// output". Hardware-simple (one pass over the input, one write port) at
/// the cost of leaving holes where the forward map is not surjective.
[[nodiscard]] Frame affine_fixed_forward(const Frame& src, const TrigLut& lut,
                                         const AffineParams& p,
                                         Pixel fill = pack_rgb(0, 0, 0));

/// Inverse-mapping variant of the same fixed-point datapath: every output
/// pixel fetches its source coordinate (no holes) — the quality upgrade a
/// second framebuffer pass buys.
[[nodiscard]] Frame affine_fixed_inverse(const Frame& src, const TrigLut& lut,
                                         const AffineParams& p,
                                         Pixel fill = pack_rgb(0, 0, 0));

/// Simulate the physical misaligned camera: the optical scene as seen by a
/// camera rotated by `misalignment` (float path with bilinear sampling —
/// this models physics, not the FPGA). The correction pipeline should undo
/// this with the *estimated* angles.
[[nodiscard]] Frame simulate_misaligned_camera(
    const Frame& scene, const math::EulerAngles& misalignment,
    double focal_px);

}  // namespace ob::video
