#pragma once

#include <functional>

#include "math/rotation.hpp"
#include "video/affine.hpp"
#include "video/framebuffer.hpp"
#include "video/pipeline.hpp"
#include "video/trig_lut.hpp"

namespace ob::video {

/// Figure 3's video datapath: VideoIn writes camera frames into one ZBT
/// SRAM bank while VideoOut reads the other through the affine transform —
/// the double-buffering scheme of §9 — with the correction angles supplied
/// from outside (in the full system, from the Sabre control registers).
class VideoSystem {
public:
    enum class Mapping {
        kForward,  ///< paper-faithful §9 forward mapping (holes possible)
        kInverse,  ///< inverse mapping (no holes), same fixed-point datapath
    };

    struct Config {
        std::size_t width = 320;
        std::size_t height = 240;
        double focal_px = 300.0;
        Mapping mapping = Mapping::kInverse;
        Pixel fill = pack_rgb(0, 0, 0);
    };

    /// Supplies the current misalignment estimate each frame.
    using AngleProvider = std::function<math::EulerAngles()>;

    explicit VideoSystem(Config cfg);

    void set_angle_provider(AngleProvider provider) {
        angles_ = std::move(provider);
    }

    struct FrameResult {
        Frame display;        ///< corrected output frame
        FrameTiming timing;   ///< pixel-pipeline cycle cost of the frame
        std::size_t front_bank = 0;  ///< bank VideoOut read this frame
    };

    /// One full VideoIn+VideoOut cycle: capture into the back buffer, swap,
    /// transform the front buffer to the display.
    [[nodiscard]] FrameResult process_frame(const Frame& camera_frame);

    [[nodiscard]] const ZbtSram& ram(std::size_t bank) const {
        return bank == 0 ? ram1_ : ram2_;
    }
    [[nodiscard]] std::size_t frames_processed() const { return frames_; }
    [[nodiscard]] const Config& config() const { return cfg_; }

private:
    Config cfg_;
    TrigLut lut_;
    ZbtSram ram1_;
    ZbtSram ram2_;
    std::size_t back_bank_ = 0;
    std::size_t frames_ = 0;
    AngleProvider angles_ = [] { return math::EulerAngles{}; };
};

}  // namespace ob::video
