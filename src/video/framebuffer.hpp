#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ob::video {

/// RGB565 pixel — 16 bits, matching the RC200E's ZBT SRAM word width.
using Pixel = std::uint16_t;

[[nodiscard]] constexpr Pixel pack_rgb(std::uint8_t r, std::uint8_t g,
                                       std::uint8_t b) {
    return static_cast<Pixel>(((r >> 3) << 11) | ((g >> 2) << 5) | (b >> 3));
}
struct Rgb {
    std::uint8_t r = 0, g = 0, b = 0;
};
[[nodiscard]] constexpr Rgb unpack_rgb(Pixel p) {
    // Replicate high bits into low bits for a full-scale 8-bit expansion.
    const auto r5 = static_cast<std::uint8_t>((p >> 11) & 0x1F);
    const auto g6 = static_cast<std::uint8_t>((p >> 5) & 0x3F);
    const auto b5 = static_cast<std::uint8_t>(p & 0x1F);
    return Rgb{static_cast<std::uint8_t>((r5 << 3) | (r5 >> 2)),
               static_cast<std::uint8_t>((g6 << 2) | (g6 >> 4)),
               static_cast<std::uint8_t>((b5 << 3) | (b5 >> 2))};
}

/// A single video frame in RGB565.
class Frame {
public:
    Frame(std::size_t width, std::size_t height, Pixel fill = 0);

    [[nodiscard]] std::size_t width() const { return w_; }
    [[nodiscard]] std::size_t height() const { return h_; }

    [[nodiscard]] Pixel at(std::size_t x, std::size_t y) const {
        return px_[y * w_ + x];
    }
    void set(std::size_t x, std::size_t y, Pixel p) { px_[y * w_ + x] = p; }
    [[nodiscard]] bool in_bounds(std::int64_t x, std::int64_t y) const {
        return x >= 0 && y >= 0 && x < static_cast<std::int64_t>(w_) &&
               y < static_cast<std::int64_t>(h_);
    }
    [[nodiscard]] const std::vector<Pixel>& pixels() const { return px_; }
    void fill(Pixel p);

    /// Write as a binary PPM (P6) for eyeballing example outputs.
    void write_ppm(const std::string& path) const;

    /// Peak signal-to-noise ratio vs a reference frame, over the 8-bit
    /// expanded channels. Identical frames return +infinity.
    [[nodiscard]] double psnr_against(const Frame& ref) const;

private:
    std::size_t w_;
    std::size_t h_;
    std::vector<Pixel> px_;
};

/// Generates the synthetic camera scene used in tests and examples: color
/// bars, a centred crosshair and a diagonal — features whose displacement
/// under rotation is visually and numerically obvious.
[[nodiscard]] Frame make_test_pattern(std::size_t width, std::size_t height);

/// ZBT SRAM bank model (RC200E: two banks of 2 MByte, 16-bit words, one
/// word per cycle with no turnaround penalty — that's what "zero bus
/// turnaround" buys and why the double-buffered video path works at pixel
/// rate). Tracks access counts so benches can report bandwidth.
class ZbtSram {
public:
    explicit ZbtSram(std::size_t bytes = 2u * 1024 * 1024);

    [[nodiscard]] std::size_t words() const { return mem_.size(); }
    [[nodiscard]] std::uint16_t read(std::size_t addr) const;
    void write(std::size_t addr, std::uint16_t value);

    [[nodiscard]] std::uint64_t reads() const { return reads_; }
    [[nodiscard]] std::uint64_t writes() const { return writes_; }

    /// Frame-sized helper views: store/load a full frame at a base address.
    void store_frame(const Frame& f, std::size_t base = 0);
    [[nodiscard]] Frame load_frame(std::size_t width, std::size_t height,
                                   std::size_t base = 0) const;

private:
    std::vector<std::uint16_t> mem_;
    mutable std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

}  // namespace ob::video
