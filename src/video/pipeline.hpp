#pragma once

#include <cstdint>
#include <optional>

#include "hcl/hcl.hpp"
#include "video/affine.hpp"
#include "video/trig_lut.hpp"

namespace ob::video {

/// Cycle-accurate model of Figure 5's five-stage RotateCoordinates
/// pipeline: "once loaded, computes the rotated output location of each
/// input pixel on each clock cycle". One coordinate pair may be fed per
/// cycle; its rotated result emerges exactly five cycles later.
///
/// Stage breakdown (matching the paper's `par` block):
///   1: sine/cosine table lookup
///   2: re-centre and Int2fixed
///   3: the four FixedMults
///   4: sums and fixed2Int
///   5: restore centre offset
class RotatePipeline final : public hcl::Process {
public:
    static constexpr int kLatency = 5;

    RotatePipeline(const TrigLut& lut, Coord centre)
        : lut_(&lut), centre_(centre) {}

    /// Present an input coordinate for the *next* tick (1 px/cycle).
    void feed(Coord in) {
        input_ = in;
        input_valid_ = true;
    }

    /// Change the rotation angle (takes effect for subsequently-fed
    /// coordinates, like rewriting the angle register mid-frame).
    void set_angle(std::uint32_t theta_bam) { theta_ = theta_bam; }

    void tick(std::uint64_t cycle) override;

    /// Output registered this cycle, if any.
    [[nodiscard]] std::optional<Coord> output() const {
        if (!out_valid_) return std::nullopt;
        return out_;
    }

    [[nodiscard]] std::string name() const override { return "rotate5"; }

private:
    struct S1 {  // after LUT lookup
        bool valid = false;
        Coord in{};
        Fixed sin{}, cos{};
    };
    struct S2 {  // after re-centre + int2fixed
        bool valid = false;
        Fixed map_x{}, map_y{};
        Fixed sin{}, cos{};
    };
    struct S3 {  // after multiplies
        bool valid = false;
        Fixed t2{}, t3{}, t4{}, t5{};
    };
    struct S4 {  // after sums + fixed2int
        bool valid = false;
        std::int32_t x_back = 0, y_back = 0;
    };

    const TrigLut* lut_;
    Coord centre_;
    std::uint32_t theta_ = 0;

    Coord input_{};
    bool input_valid_ = false;

    S1 s1_;
    S2 s2_;
    S3 s3_;
    S4 s4_;
    Coord out_{};
    bool out_valid_ = false;
};

/// Frame-level throughput/latency accounting for the video path: with a
/// five-stage pipeline at one pixel per cycle, a WxH frame costs W*H +
/// (kLatency-1) cycles — what makes "real-time video transformation
/// beyond the capabilities of typical embedded micro and DSP devices"
/// achievable in fabric.
struct FrameTiming {
    std::uint64_t cycles = 0;
    double clock_hz = 25.175e6;  ///< VGA pixel clock on the RC200E era kit

    [[nodiscard]] double seconds() const {
        return static_cast<double>(cycles) / clock_hz;
    }
    [[nodiscard]] double fps() const {
        return seconds() > 0.0 ? 1.0 / seconds() : 0.0;
    }
};

/// Run a full frame of coordinates through the cycle-accurate pipeline,
/// producing both the transformed frame (forward mapping, as §9) and the
/// exact cycle count.
struct PipelineFrameResult {
    Frame frame;
    FrameTiming timing;
};
[[nodiscard]] PipelineFrameResult pipeline_transform_frame(
    const Frame& src, const TrigLut& lut, const AffineParams& params,
    Pixel fill = pack_rgb(0, 0, 0));

}  // namespace ob::video
