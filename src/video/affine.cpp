#include "video/affine.hpp"

#include <cmath>

namespace ob::video {

AffineParams params_from_misalignment(const math::EulerAngles& misalignment,
                                      double focal_px) {
    AffineParams p;
    // Camera looks along body x; image x spans body y (yaw shifts the
    // image horizontally), image y spans body -z (pitch shifts vertically);
    // roll about the optical axis rotates the image.
    p.theta_rad = misalignment.roll;
    p.bx_px = focal_px * std::tan(misalignment.yaw);
    p.by_px = focal_px * std::tan(misalignment.pitch);
    return p;
}

Frame affine_reference(const Frame& src, const AffineParams& p, bool bilinear,
                       Pixel fill) {
    Frame out(src.width(), src.height(), fill);
    const double cx = static_cast<double>(src.width()) / 2.0;
    const double cy = static_cast<double>(src.height()) / 2.0;
    const double c = std::cos(p.theta_rad);
    const double s = std::sin(p.theta_rad);
    for (std::size_t oy = 0; oy < src.height(); ++oy) {
        for (std::size_t ox = 0; ox < src.width(); ++ox) {
            // Inverse map: undo translation, then rotate by -theta.
            const double dx = static_cast<double>(ox) - cx - p.bx_px;
            const double dy = static_cast<double>(oy) - cy - p.by_px;
            const double sx = c * dx + s * dy + cx;
            const double sy = -s * dx + c * dy + cy;
            if (bilinear) {
                const auto x0 = static_cast<std::int64_t>(std::floor(sx));
                const auto y0 = static_cast<std::int64_t>(std::floor(sy));
                if (!src.in_bounds(x0, y0) || !src.in_bounds(x0 + 1, y0 + 1))
                    continue;
                const double fx = sx - static_cast<double>(x0);
                const double fy = sy - static_cast<double>(y0);
                const Rgb p00 = unpack_rgb(src.at(static_cast<std::size_t>(x0),
                                                  static_cast<std::size_t>(y0)));
                const Rgb p10 = unpack_rgb(src.at(static_cast<std::size_t>(x0 + 1),
                                                  static_cast<std::size_t>(y0)));
                const Rgb p01 = unpack_rgb(src.at(static_cast<std::size_t>(x0),
                                                  static_cast<std::size_t>(y0 + 1)));
                const Rgb p11 = unpack_rgb(src.at(static_cast<std::size_t>(x0 + 1),
                                                  static_cast<std::size_t>(y0 + 1)));
                const auto lerp2 = [&](auto get) {
                    const double top = get(p00) * (1 - fx) + get(p10) * fx;
                    const double bot = get(p01) * (1 - fx) + get(p11) * fx;
                    return top * (1 - fy) + bot * fy;
                };
                const auto r = static_cast<std::uint8_t>(
                    lerp2([](Rgb q) { return static_cast<double>(q.r); }) + 0.5);
                const auto g = static_cast<std::uint8_t>(
                    lerp2([](Rgb q) { return static_cast<double>(q.g); }) + 0.5);
                const auto b = static_cast<std::uint8_t>(
                    lerp2([](Rgb q) { return static_cast<double>(q.b); }) + 0.5);
                out.set(ox, oy, pack_rgb(r, g, b));
            } else {
                const auto xi = static_cast<std::int64_t>(std::lround(sx));
                const auto yi = static_cast<std::int64_t>(std::lround(sy));
                if (!src.in_bounds(xi, yi)) continue;
                out.set(ox, oy, src.at(static_cast<std::size_t>(xi),
                                       static_cast<std::size_t>(yi)));
            }
        }
    }
    return out;
}

Coord rotate_coordinates(const TrigLut& lut, std::uint32_t theta_bam, Coord in,
                         Coord centre) {
    // Pipeline steps of Figure 5, functionally:
    // 1: LUT lookups.
    const Fixed s = lut.sin_at(theta_bam);
    const Fixed c = lut.cos_at(theta_bam);
    // 2: re-centre and convert to fixed point.
    const Fixed map_x = Fixed::from_int(in.x - centre.x);
    const Fixed map_y = Fixed::from_int(in.y - centre.y);
    // 3: the four FixedMults.
    const Fixed t2 = map_y * -s;
    const Fixed t3 = map_x * c;
    const Fixed t4 = map_x * s;
    const Fixed t5 = map_y * c;
    // 4: accumulate and convert back to integers.
    const std::int32_t x_back = (t2 + t3).to_int();
    const std::int32_t y_back = (t4 + t5).to_int();
    // 5: restore the centre offset.
    return Coord{x_back + centre.x, y_back + centre.y};
}

Frame affine_fixed_forward(const Frame& src, const TrigLut& lut,
                           const AffineParams& p, Pixel fill) {
    Frame out(src.width(), src.height(), fill);
    const std::uint32_t bam = TrigLut::index_from_radians(p.theta_rad);
    const Coord centre{static_cast<std::int32_t>(src.width() / 2),
                       static_cast<std::int32_t>(src.height() / 2)};
    const auto bx = static_cast<std::int32_t>(std::lround(p.bx_px));
    const auto by = static_cast<std::int32_t>(std::lround(p.by_px));
    for (std::size_t iy = 0; iy < src.height(); ++iy) {
        for (std::size_t ix = 0; ix < src.width(); ++ix) {
            const Coord o = rotate_coordinates(
                lut, bam,
                Coord{static_cast<std::int32_t>(ix),
                      static_cast<std::int32_t>(iy)},
                centre);
            const std::int64_t ox = o.x + bx;
            const std::int64_t oy = o.y + by;
            if (out.in_bounds(ox, oy))
                out.set(static_cast<std::size_t>(ox),
                        static_cast<std::size_t>(oy), src.at(ix, iy));
        }
    }
    return out;
}

Frame affine_fixed_inverse(const Frame& src, const TrigLut& lut,
                           const AffineParams& p, Pixel fill) {
    Frame out(src.width(), src.height(), fill);
    // Rotating by -theta inverts A; translation is removed beforehand.
    const std::uint32_t bam =
        TrigLut::index_from_radians(-p.theta_rad);
    const Coord centre{static_cast<std::int32_t>(src.width() / 2),
                       static_cast<std::int32_t>(src.height() / 2)};
    const auto bx = static_cast<std::int32_t>(std::lround(p.bx_px));
    const auto by = static_cast<std::int32_t>(std::lround(p.by_px));
    for (std::size_t oy = 0; oy < src.height(); ++oy) {
        for (std::size_t ox = 0; ox < src.width(); ++ox) {
            const Coord s = rotate_coordinates(
                lut, bam,
                Coord{static_cast<std::int32_t>(ox) - bx,
                      static_cast<std::int32_t>(oy) - by},
                centre);
            if (src.in_bounds(s.x, s.y))
                out.set(ox, oy, src.at(static_cast<std::size_t>(s.x),
                                       static_cast<std::size_t>(s.y)));
        }
    }
    return out;
}

Frame simulate_misaligned_camera(const Frame& scene,
                                 const math::EulerAngles& misalignment,
                                 double focal_px) {
    // The camera being rotated by +mis makes the image appear transformed
    // by the inverse: reuse the reference engine with negated parameters.
    const AffineParams p = params_from_misalignment(misalignment, focal_px);
    AffineParams inv;
    inv.theta_rad = -p.theta_rad;
    inv.bx_px = -p.bx_px;
    inv.by_px = -p.by_px;
    return affine_reference(scene, inv, /*bilinear=*/true);
}

}  // namespace ob::video
