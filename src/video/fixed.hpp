#pragma once

#include <cstdint>
#include <stdexcept>

namespace ob::video {

/// Q16.16 fixed-point number — the arithmetic the paper's video transform
/// runs in FPGA fabric ("the transforms operate on 16-bit precision fixed
/// point values"). Stored in 32 bits with 16 fractional bits; products use
/// a 64-bit intermediate exactly like the DSP-block datapath would.
class Fixed {
public:
    static constexpr int kFracBits = 16;
    static constexpr std::int32_t kOne = 1 << kFracBits;

    constexpr Fixed() = default;

    [[nodiscard]] static constexpr Fixed from_raw(std::int32_t raw) {
        Fixed f;
        f.raw_ = raw;
        return f;
    }
    /// Int2fixed of the paper's Figure 5.
    [[nodiscard]] static constexpr Fixed from_int(std::int32_t v) {
        return from_raw(v << kFracBits);
    }
    [[nodiscard]] static Fixed from_double(double v) {
        const double scaled = v * kOne;
        if (scaled >= 2147483647.0 || scaled <= -2147483648.0)
            throw std::overflow_error("Fixed::from_double out of range");
        return from_raw(static_cast<std::int32_t>(
            scaled >= 0 ? scaled + 0.5 : scaled - 0.5));
    }

    [[nodiscard]] constexpr std::int32_t raw() const { return raw_; }
    /// fixed2Int of the paper's Figure 5 (truncation toward -inf, which is
    /// what an arithmetic right shift implements in hardware).
    [[nodiscard]] constexpr std::int32_t to_int() const {
        return raw_ >> kFracBits;
    }
    /// Rounded conversion (adds half an LSB first).
    [[nodiscard]] constexpr std::int32_t to_int_round() const {
        return (raw_ + (kOne >> 1)) >> kFracBits;
    }
    [[nodiscard]] constexpr double to_double() const {
        return static_cast<double>(raw_) / kOne;
    }

    [[nodiscard]] friend constexpr Fixed operator+(Fixed a, Fixed b) {
        return from_raw(a.raw_ + b.raw_);
    }
    [[nodiscard]] friend constexpr Fixed operator-(Fixed a, Fixed b) {
        return from_raw(a.raw_ - b.raw_);
    }
    [[nodiscard]] friend constexpr Fixed operator-(Fixed a) {
        return from_raw(-a.raw_);
    }
    /// FixedMult of the paper's Figure 5: 32x32 -> 64-bit product, then a
    /// 16-bit arithmetic shift back down.
    [[nodiscard]] friend constexpr Fixed operator*(Fixed a, Fixed b) {
        const std::int64_t p =
            static_cast<std::int64_t>(a.raw_) * static_cast<std::int64_t>(b.raw_);
        return from_raw(static_cast<std::int32_t>(p >> kFracBits));
    }

    friend constexpr bool operator==(Fixed, Fixed) = default;
    [[nodiscard]] friend constexpr bool operator<(Fixed a, Fixed b) {
        return a.raw_ < b.raw_;
    }

private:
    std::int32_t raw_ = 0;
};

}  // namespace ob::video
