#include "video/pipeline.hpp"

#include <cmath>

namespace ob::video {

void RotatePipeline::tick(std::uint64_t) {
    // Advance back to front so each stage consumes its predecessor's
    // registered value from the previous cycle.
    // Stage 5: restore centre.
    out_valid_ = s4_.valid;
    if (s4_.valid) {
        out_ = Coord{s4_.x_back + centre_.x, s4_.y_back + centre_.y};
    }
    // Stage 4: sums + fixed2int.
    s4_.valid = s3_.valid;
    if (s3_.valid) {
        s4_.x_back = (s3_.t2 + s3_.t3).to_int();
        s4_.y_back = (s3_.t4 + s3_.t5).to_int();
    }
    // Stage 3: four multipliers.
    s3_.valid = s2_.valid;
    if (s2_.valid) {
        s3_.t2 = s2_.map_y * -s2_.sin;
        s3_.t3 = s2_.map_x * s2_.cos;
        s3_.t4 = s2_.map_x * s2_.sin;
        s3_.t5 = s2_.map_y * s2_.cos;
    }
    // Stage 2: re-centre + int2fixed.
    s2_.valid = s1_.valid;
    if (s1_.valid) {
        s2_.map_x = Fixed::from_int(s1_.in.x - centre_.x);
        s2_.map_y = Fixed::from_int(s1_.in.y - centre_.y);
        s2_.sin = s1_.sin;
        s2_.cos = s1_.cos;
    }
    // Stage 1: trig lookup of the freshly fed coordinate.
    s1_.valid = input_valid_;
    if (input_valid_) {
        s1_.in = input_;
        s1_.sin = lut_->sin_at(theta_);
        s1_.cos = lut_->cos_at(theta_);
    }
    input_valid_ = false;
}

PipelineFrameResult pipeline_transform_frame(const Frame& src,
                                             const TrigLut& lut,
                                             const AffineParams& params,
                                             Pixel fill) {
    const Coord centre{static_cast<std::int32_t>(src.width() / 2),
                       static_cast<std::int32_t>(src.height() / 2)};
    RotatePipeline pipe(lut, centre);
    pipe.set_angle(TrigLut::index_from_radians(params.theta_rad));
    hcl::Simulation sim;
    sim.add(pipe);

    const auto bx = static_cast<std::int32_t>(std::lround(params.bx_px));
    const auto by = static_cast<std::int32_t>(std::lround(params.by_px));

    PipelineFrameResult out{Frame(src.width(), src.height(), fill), {}};
    const std::size_t total = src.width() * src.height();
    std::size_t fed = 0;
    std::size_t drained = 0;
    const std::uint64_t start = sim.cycles();
    while (drained < total) {
        if (fed < total) {
            pipe.feed(Coord{static_cast<std::int32_t>(fed % src.width()),
                            static_cast<std::int32_t>(fed / src.width())});
        }
        sim.step();
        if (const auto o = pipe.output()) {
            const std::size_t ix = drained % src.width();
            const std::size_t iy = drained / src.width();
            const std::int64_t ox = o->x + bx;
            const std::int64_t oy = o->y + by;
            if (out.frame.in_bounds(ox, oy))
                out.frame.set(static_cast<std::size_t>(ox),
                              static_cast<std::size_t>(oy), src.at(ix, iy));
            ++drained;
        }
        if (fed < total) ++fed;
    }
    out.timing.cycles = sim.cycles() - start;
    return out;
}

}  // namespace ob::video
