#include "video/trig_lut.hpp"

#include <cmath>

namespace ob::video {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

TrigLut::TrigLut() {
    for (std::size_t i = 0; i < kEntries; ++i) {
        const double a = kTwoPi * static_cast<double>(i) /
                         static_cast<double>(kEntries);
        sin_[i] = Fixed::from_double(std::sin(a));
    }
}

std::uint32_t TrigLut::index_from_radians(double angle) {
    double turns = angle / kTwoPi;
    turns -= std::floor(turns);
    const auto idx = static_cast<std::uint32_t>(
        std::lround(turns * static_cast<double>(kEntries)));
    return idx & (kEntries - 1);
}

double TrigLut::max_abs_error() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < kEntries * 4; ++i) {
        const double a = kTwoPi * static_cast<double>(i) /
                         static_cast<double>(kEntries * 4);
        const double err = std::abs(sin_rad(a).to_double() - std::sin(a));
        worst = std::max(worst, err);
    }
    return worst;
}

}  // namespace ob::video
