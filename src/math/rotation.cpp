#include "math/rotation.hpp"

#include <algorithm>
#include <cmath>

namespace ob::math {

double wrap_angle(double a) {
    a = std::fmod(a + kPi, 2.0 * kPi);
    if (a <= 0.0) a += 2.0 * kPi;
    return a - kPi;
}

Mat3 rot_x(double a) {
    const double c = std::cos(a);
    const double s = std::sin(a);
    return Mat3{1, 0, 0,
                0, c, s,
                0, -s, c};
}

Mat3 rot_y(double a) {
    const double c = std::cos(a);
    const double s = std::sin(a);
    return Mat3{c, 0, -s,
                0, 1, 0,
                s, 0, c};
}

Mat3 rot_z(double a) {
    const double c = std::cos(a);
    const double s = std::sin(a);
    return Mat3{c, s, 0,
                -s, c, 0,
                0, 0, 1};
}

Mat3 dcm_from_euler(const EulerAngles& e) {
    return rot_x(e.roll) * rot_y(e.pitch) * rot_z(e.yaw);
}

EulerAngles euler_from_dcm(const Mat3& c) {
    // From C = Rx(phi)·Ry(theta)·Rz(psi):
    //   C(0,2) = -sin(theta)
    //   C(1,2) = sin(phi) cos(theta),  C(2,2) = cos(phi) cos(theta)
    //   C(0,1) = cos(theta) sin(psi),  C(0,0) = cos(theta) cos(psi)
    const double s_theta = std::clamp(-c(0, 2), -1.0, 1.0);
    EulerAngles e;
    e.pitch = std::asin(s_theta);
    if (std::abs(s_theta) > 1.0 - 1e-12) {
        // Gimbal lock: roll and yaw are degenerate; put it all in yaw.
        e.roll = 0.0;
        e.yaw = std::atan2(-c(1, 0), c(1, 1));
    } else {
        e.roll = std::atan2(c(1, 2), c(2, 2));
        e.yaw = std::atan2(c(0, 1), c(0, 0));
    }
    return e;
}

Mat3 small_angle_dcm(const Vec3& rho) {
    return Mat3::identity() - skew(rho);
}

Vec3 body_rates_from_euler_rates(const EulerAngles& e, const Vec3& euler_dot) {
    // omega_b = E(phi,theta) * (phi_dot, theta_dot, psi_dot) for the 3-2-1
    // sequence.
    const double sphi = std::sin(e.roll), cphi = std::cos(e.roll);
    const double stheta = std::sin(e.pitch), ctheta = std::cos(e.pitch);
    const Mat3 em{1.0, 0.0, -stheta,
                  0.0, cphi, sphi * ctheta,
                  0.0, -sphi, cphi * ctheta};
    return em * euler_dot;
}

Quaternion Quaternion::from_dcm(const Mat3& c) {
    // Shepperd's method on the *active* rotation matrix R = C^T, which keeps
    // the largest divisor and is numerically safe for all inputs.
    const Mat3 r = c.transposed();
    const double t = r.trace();
    double w, x, y, z;
    if (t > 0.0) {
        const double s = std::sqrt(t + 1.0) * 2.0;
        w = 0.25 * s;
        x = (r(2, 1) - r(1, 2)) / s;
        y = (r(0, 2) - r(2, 0)) / s;
        z = (r(1, 0) - r(0, 1)) / s;
    } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
        const double s = std::sqrt(1.0 + r(0, 0) - r(1, 1) - r(2, 2)) * 2.0;
        w = (r(2, 1) - r(1, 2)) / s;
        x = 0.25 * s;
        y = (r(0, 1) + r(1, 0)) / s;
        z = (r(0, 2) + r(2, 0)) / s;
    } else if (r(1, 1) > r(2, 2)) {
        const double s = std::sqrt(1.0 + r(1, 1) - r(0, 0) - r(2, 2)) * 2.0;
        w = (r(0, 2) - r(2, 0)) / s;
        x = (r(0, 1) + r(1, 0)) / s;
        y = 0.25 * s;
        z = (r(1, 2) + r(2, 1)) / s;
    } else {
        const double s = std::sqrt(1.0 + r(2, 2) - r(0, 0) - r(1, 1)) * 2.0;
        w = (r(1, 0) - r(0, 1)) / s;
        x = (r(0, 2) + r(2, 0)) / s;
        y = (r(1, 2) + r(2, 1)) / s;
        z = 0.25 * s;
    }
    return Quaternion(w, x, y, z).normalized();
}

Quaternion Quaternion::from_euler(const EulerAngles& e) {
    return from_dcm(dcm_from_euler(e));
}

Quaternion Quaternion::from_axis_angle(const Vec3& axis, double angle) {
    const Vec3 u = ob::math::normalized(axis);
    const double h = angle / 2.0;
    const double s = std::sin(h);
    return Quaternion(std::cos(h), u[0] * s, u[1] * s, u[2] * s);
}

double Quaternion::norm() const {
    return std::sqrt(w_ * w_ + x_ * x_ + y_ * y_ + z_ * z_);
}

Quaternion Quaternion::normalized() const {
    const double n = norm();
    if (!(n > 0.0)) throw std::domain_error("Quaternion::normalized: zero norm");
    return {w_ / n, x_ / n, y_ / n, z_ / n};
}

Quaternion Quaternion::operator*(const Quaternion& o) const {
    return {w_ * o.w_ - x_ * o.x_ - y_ * o.y_ - z_ * o.z_,
            w_ * o.x_ + x_ * o.w_ + y_ * o.z_ - z_ * o.y_,
            w_ * o.y_ - x_ * o.z_ + y_ * o.w_ + z_ * o.x_,
            w_ * o.z_ + x_ * o.y_ - y_ * o.x_ + z_ * o.w_};
}

Mat3 Quaternion::to_dcm() const {
    // Active rotation R(q) = I + 2w[v×] + 2[v×]²; passive transform is Rᵀ.
    const double ww = w_ * w_, xx = x_ * x_, yy = y_ * y_, zz = z_ * z_;
    const double xy = x_ * y_, xz = x_ * z_, yz = y_ * z_;
    const double wx = w_ * x_, wy = w_ * y_, wz = w_ * z_;
    // Passive (coordinate transform) matrix, row-major.
    return Mat3{ww + xx - yy - zz, 2.0 * (xy + wz), 2.0 * (xz - wy),
                2.0 * (xy - wz), ww - xx + yy - zz, 2.0 * (yz + wx),
                2.0 * (xz + wy), 2.0 * (yz - wx), ww - xx - yy + zz};
}

double Quaternion::angle_to(const Quaternion& o) const {
    const Quaternion d = conjugate() * o;
    const double c = std::clamp(std::abs(d.w()), 0.0, 1.0);
    return 2.0 * std::acos(c);
}

}  // namespace ob::math
