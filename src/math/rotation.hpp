#pragma once

#include "math/matrix.hpp"

namespace ob::math {

inline constexpr double kPi = 3.14159265358979323846;

[[nodiscard]] constexpr double deg2rad(double d) { return d * kPi / 180.0; }
[[nodiscard]] constexpr double rad2deg(double r) { return r * 180.0 / kPi; }

/// Wrap an angle to (-pi, pi].
[[nodiscard]] double wrap_angle(double a);

/// Euler angle triple in radians using the aerospace 3-2-1 (yaw-pitch-roll)
/// sequence. In this project the angles describe the *misalignment* of the
/// boresighted sensor's frame relative to the vehicle body frame — exactly
/// the roll/pitch/yaw values Table 1 of the paper reports.
struct EulerAngles {
    double roll = 0.0;   ///< rotation about x, radians
    double pitch = 0.0;  ///< rotation about y, radians
    double yaw = 0.0;    ///< rotation about z, radians

    [[nodiscard]] static EulerAngles from_deg(double roll_deg, double pitch_deg,
                                              double yaw_deg) {
        return {deg2rad(roll_deg), deg2rad(pitch_deg), deg2rad(yaw_deg)};
    }

    [[nodiscard]] Vec3 vec() const { return Vec3{roll, pitch, yaw}; }

    [[nodiscard]] static EulerAngles from_vec(const Vec3& v) {
        return {v[0], v[1], v[2]};
    }
};

/// Passive (coordinate-transform) elementary rotations. `rot_x(a)` maps the
/// coordinates of a fixed vector from frame A to frame B, where B is A
/// rotated by `a` about the shared x axis.
[[nodiscard]] Mat3 rot_x(double a);
[[nodiscard]] Mat3 rot_y(double a);
[[nodiscard]] Mat3 rot_z(double a);

/// Direction-cosine matrix transforming body-frame coordinates into the
/// sensor frame: C_s←b = Rx(roll)·Ry(pitch)·Rz(yaw) (3-2-1 sequence).
[[nodiscard]] Mat3 dcm_from_euler(const EulerAngles& e);

/// Inverse of dcm_from_euler. Pitch is returned in [-pi/2, pi/2]; near
/// gimbal lock (|pitch| -> pi/2) roll is forced to zero and yaw absorbs the
/// remaining rotation.
[[nodiscard]] EulerAngles euler_from_dcm(const Mat3& c);

/// First-order DCM for a small rotation vector rho: C ≈ I - skew(rho).
/// This is the linearization the boresight EKF's Jacobian is built from.
[[nodiscard]] Mat3 small_angle_dcm(const Vec3& rho);

/// Body angular rate from 3-2-1 Euler angles and their time derivatives
/// (the strapdown kinematic relation used by the trajectory simulator).
[[nodiscard]] Vec3 body_rates_from_euler_rates(const EulerAngles& e,
                                               const Vec3& euler_dot);

/// Unit quaternion (scalar-first, Hamilton convention).
///
/// `to_dcm()` returns the same passive transform as `dcm_from_euler`, i.e.
/// it maps parent-frame coordinates into the rotated frame. Composition:
/// to_dcm(a*b) == to_dcm(b) * to_dcm(a).
class Quaternion {
public:
    constexpr Quaternion() = default;
    constexpr Quaternion(double w, double x, double y, double z)
        : w_(w), x_(x), y_(y), z_(z) {}

    [[nodiscard]] static Quaternion identity() { return {1, 0, 0, 0}; }
    [[nodiscard]] static Quaternion from_dcm(const Mat3& c);
    [[nodiscard]] static Quaternion from_euler(const EulerAngles& e);
    /// Axis-angle constructor; axis need not be normalized.
    [[nodiscard]] static Quaternion from_axis_angle(const Vec3& axis, double angle);

    [[nodiscard]] double w() const { return w_; }
    [[nodiscard]] double x() const { return x_; }
    [[nodiscard]] double y() const { return y_; }
    [[nodiscard]] double z() const { return z_; }

    [[nodiscard]] Quaternion conjugate() const { return {w_, -x_, -y_, -z_}; }
    [[nodiscard]] double norm() const;
    [[nodiscard]] Quaternion normalized() const;

    /// Hamilton product.
    [[nodiscard]] Quaternion operator*(const Quaternion& o) const;

    [[nodiscard]] Mat3 to_dcm() const;
    [[nodiscard]] EulerAngles to_euler() const { return euler_from_dcm(to_dcm()); }

    /// Apply the passive transform to a vector (parent frame -> this frame).
    [[nodiscard]] Vec3 transform(const Vec3& v) const { return to_dcm() * v; }

    /// Smallest rotation angle (radians) taking this orientation to `o`.
    [[nodiscard]] double angle_to(const Quaternion& o) const;

private:
    double w_ = 1.0;
    double x_ = 0.0;
    double y_ = 0.0;
    double z_ = 0.0;
};

}  // namespace ob::math
