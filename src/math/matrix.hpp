#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace ob::math {

/// Dense fixed-size column-major-free matrix for the small linear algebra
/// the fusion core needs (state dimensions are 2..6). Storage is a flat
/// row-major std::array; all operations are by value and constexpr-capable
/// so the Kalman pipeline has no allocation and is trivially inlined.
template <std::size_t R, std::size_t C, typename T = double>
class Mat {
public:
    static_assert(R >= 1 && C >= 1, "matrix dimensions must be positive");

    constexpr Mat() : a_{} {}

    /// Row-major element list; must supply exactly R*C values.
    constexpr Mat(std::initializer_list<T> values) : a_{} {
        if (values.size() != R * C)
            throw std::invalid_argument("Mat: initializer size mismatch");
        std::size_t i = 0;
        for (const T v : values) a_[i++] = v;
    }

    [[nodiscard]] static constexpr Mat zeros() { return Mat{}; }

    [[nodiscard]] static constexpr Mat identity() {
        static_assert(R == C, "identity requires a square matrix");
        Mat m;
        for (std::size_t i = 0; i < R; ++i) m(i, i) = T{1};
        return m;
    }

    /// All elements set to `v`.
    [[nodiscard]] static constexpr Mat filled(T v) {
        Mat m;
        for (auto& x : m.a_) x = v;
        return m;
    }

    [[nodiscard]] static constexpr std::size_t rows() { return R; }
    [[nodiscard]] static constexpr std::size_t cols() { return C; }

    [[nodiscard]] constexpr T& operator()(std::size_t r, std::size_t c) {
        return a_[r * C + c];
    }
    [[nodiscard]] constexpr const T& operator()(std::size_t r, std::size_t c) const {
        return a_[r * C + c];
    }

    /// Vector-style indexing; only for single-column or single-row shapes.
    [[nodiscard]] constexpr T& operator[](std::size_t i) {
        static_assert(R == 1 || C == 1, "operator[] requires a vector shape");
        return a_[i];
    }
    [[nodiscard]] constexpr const T& operator[](std::size_t i) const {
        static_assert(R == 1 || C == 1, "operator[] requires a vector shape");
        return a_[i];
    }

    constexpr Mat& operator+=(const Mat& o) {
        for (std::size_t i = 0; i < R * C; ++i) a_[i] += o.a_[i];
        return *this;
    }
    constexpr Mat& operator-=(const Mat& o) {
        for (std::size_t i = 0; i < R * C; ++i) a_[i] -= o.a_[i];
        return *this;
    }
    constexpr Mat& operator*=(T s) {
        for (auto& x : a_) x *= s;
        return *this;
    }

    [[nodiscard]] friend constexpr Mat operator+(Mat a, const Mat& b) { return a += b; }
    [[nodiscard]] friend constexpr Mat operator-(Mat a, const Mat& b) { return a -= b; }
    [[nodiscard]] friend constexpr Mat operator*(Mat a, T s) { return a *= s; }
    [[nodiscard]] friend constexpr Mat operator*(T s, Mat a) { return a *= s; }
    [[nodiscard]] friend constexpr Mat operator-(const Mat& a) { return a * T{-1}; }

    template <std::size_t C2>
    [[nodiscard]] constexpr Mat<R, C2, T> operator*(const Mat<C, C2, T>& b) const {
        Mat<R, C2, T> out;
        for (std::size_t i = 0; i < R; ++i) {
            for (std::size_t k = 0; k < C; ++k) {
                const T aik = (*this)(i, k);
                if (aik == T{}) continue;
                for (std::size_t j = 0; j < C2; ++j) out(i, j) += aik * b(k, j);
            }
        }
        return out;
    }

    [[nodiscard]] constexpr Mat<C, R, T> transposed() const {
        Mat<C, R, T> out;
        for (std::size_t i = 0; i < R; ++i)
            for (std::size_t j = 0; j < C; ++j) out(j, i) = (*this)(i, j);
        return out;
    }

    [[nodiscard]] constexpr T trace() const {
        static_assert(R == C, "trace requires a square matrix");
        T s{};
        for (std::size_t i = 0; i < R; ++i) s += (*this)(i, i);
        return s;
    }

    /// Frobenius norm.
    [[nodiscard]] T norm() const {
        T s{};
        for (const T x : a_) s += x * x;
        return std::sqrt(s);
    }

    /// Largest absolute element, for tolerance checks.
    [[nodiscard]] T max_abs() const {
        T m{};
        for (const T x : a_) m = std::max(m, std::abs(x));
        return m;
    }

    /// (this + this^T)/2, forcing exact symmetry after covariance updates.
    [[nodiscard]] constexpr Mat symmetrized() const {
        static_assert(R == C, "symmetrized requires a square matrix");
        Mat out;
        for (std::size_t i = 0; i < R; ++i)
            for (std::size_t j = 0; j < C; ++j)
                out(i, j) = ((*this)(i, j) + (*this)(j, i)) / T{2};
        return out;
    }

    [[nodiscard]] constexpr bool operator==(const Mat& o) const { return a_ == o.a_; }

    /// Submatrix extraction (compile-time shape, runtime offset).
    template <std::size_t R2, std::size_t C2>
    [[nodiscard]] constexpr Mat<R2, C2, T> block(std::size_t r0, std::size_t c0) const {
        if (r0 + R2 > R || c0 + C2 > C)
            throw std::out_of_range("Mat::block out of range");
        Mat<R2, C2, T> out;
        for (std::size_t i = 0; i < R2; ++i)
            for (std::size_t j = 0; j < C2; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
        return out;
    }

    /// Write a smaller matrix into this one at (r0, c0).
    template <std::size_t R2, std::size_t C2>
    constexpr void set_block(std::size_t r0, std::size_t c0, const Mat<R2, C2, T>& m) {
        if (r0 + R2 > R || c0 + C2 > C)
            throw std::out_of_range("Mat::set_block out of range");
        for (std::size_t i = 0; i < R2; ++i)
            for (std::size_t j = 0; j < C2; ++j) (*this)(r0 + i, c0 + j) = m(i, j);
    }

    [[nodiscard]] std::string str() const {
        std::string s;
        for (std::size_t i = 0; i < R; ++i) {
            s += i == 0 ? "[" : " ";
            for (std::size_t j = 0; j < C; ++j) {
                s += std::to_string((*this)(i, j));
                if (j + 1 < C) s += ", ";
            }
            s += i + 1 < R ? ";\n" : "]";
        }
        return s;
    }

private:
    std::array<T, R * C> a_;
};

template <std::size_t N, typename T = double>
using Vec = Mat<N, 1, T>;

using Vec2 = Vec<2>;
using Vec3 = Vec<3>;
using Mat2 = Mat<2, 2>;
using Mat3 = Mat<3, 3>;

/// Dot product of equally sized vectors.
template <std::size_t N, typename T>
[[nodiscard]] constexpr T dot(const Vec<N, T>& a, const Vec<N, T>& b) {
    T s{};
    for (std::size_t i = 0; i < N; ++i) s += a[i] * b[i];
    return s;
}

/// Cross product (3-vectors only).
template <typename T>
[[nodiscard]] constexpr Vec<3, T> cross(const Vec<3, T>& a, const Vec<3, T>& b) {
    return Vec<3, T>{a[1] * b[2] - a[2] * b[1],
                     a[2] * b[0] - a[0] * b[2],
                     a[0] * b[1] - a[1] * b[0]};
}

/// Skew-symmetric cross-product matrix: skew(a)·b == cross(a, b).
template <typename T>
[[nodiscard]] constexpr Mat<3, 3, T> skew(const Vec<3, T>& a) {
    return Mat<3, 3, T>{T{}, -a[2], a[1],
                        a[2], T{}, -a[0],
                        -a[1], a[0], T{}};
}

/// Euclidean norm of a vector.
template <std::size_t N, typename T>
[[nodiscard]] T norm(const Vec<N, T>& v) {
    return std::sqrt(dot(v, v));
}

/// Unit vector in the direction of v; throws on (near-)zero input.
template <std::size_t N, typename T>
[[nodiscard]] Vec<N, T> normalized(const Vec<N, T>& v) {
    const T n = norm(v);
    if (!(n > T{0})) throw std::domain_error("normalized: zero vector");
    Vec<N, T> out = v;
    out *= T{1} / n;
    return out;
}

/// Outer product a·bᵀ.
template <std::size_t N, std::size_t M, typename T>
[[nodiscard]] constexpr Mat<N, M, T> outer(const Vec<N, T>& a, const Vec<M, T>& b) {
    Mat<N, M, T> out;
    for (std::size_t i = 0; i < N; ++i)
        for (std::size_t j = 0; j < M; ++j) out(i, j) = a[i] * b[j];
    return out;
}

/// In-place Gauss-Jordan inverse with partial pivoting. Throws
/// `std::domain_error` on a numerically singular input. Cost is O(N³) with
/// N ≤ 6 in this project, so no effort is spent on blocking.
template <std::size_t N, typename T>
[[nodiscard]] Mat<N, N, T> inverse(const Mat<N, N, T>& m) {
    Mat<N, N, T> a = m;
    Mat<N, N, T> inv = Mat<N, N, T>::identity();
    for (std::size_t col = 0; col < N; ++col) {
        // Partial pivot: find the largest magnitude entry on/below diagonal.
        std::size_t pivot = col;
        T best = std::abs(a(col, col));
        for (std::size_t r = col + 1; r < N; ++r) {
            const T mag = std::abs(a(r, col));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (!(best > T{0})) throw std::domain_error("inverse: singular matrix");
        if (pivot != col) {
            for (std::size_t j = 0; j < N; ++j) {
                std::swap(a(pivot, j), a(col, j));
                std::swap(inv(pivot, j), inv(col, j));
            }
        }
        const T d = a(col, col);
        for (std::size_t j = 0; j < N; ++j) {
            a(col, j) /= d;
            inv(col, j) /= d;
        }
        for (std::size_t r = 0; r < N; ++r) {
            if (r == col) continue;
            const T f = a(r, col);
            if (f == T{}) continue;
            for (std::size_t j = 0; j < N; ++j) {
                a(r, j) -= f * a(col, j);
                inv(r, j) -= f * inv(col, j);
            }
        }
    }
    return inv;
}

/// Determinant via LU with partial pivoting.
template <std::size_t N, typename T>
[[nodiscard]] T determinant(const Mat<N, N, T>& m) {
    Mat<N, N, T> a = m;
    T det{1};
    for (std::size_t col = 0; col < N; ++col) {
        std::size_t pivot = col;
        T best = std::abs(a(col, col));
        for (std::size_t r = col + 1; r < N; ++r) {
            const T mag = std::abs(a(r, col));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (!(best > T{0})) return T{};
        if (pivot != col) {
            for (std::size_t j = 0; j < N; ++j) std::swap(a(pivot, j), a(col, j));
            det = -det;
        }
        det *= a(col, col);
        for (std::size_t r = col + 1; r < N; ++r) {
            const T f = a(r, col) / a(col, col);
            for (std::size_t j = col; j < N; ++j) a(r, j) -= f * a(col, j);
        }
    }
    return det;
}

/// Lower-triangular Cholesky factor L with A = L·Lᵀ. Throws
/// `std::domain_error` if A is not (numerically) positive definite — the
/// test suite uses this as the canonical PSD check on Kalman covariances.
template <std::size_t N, typename T>
[[nodiscard]] Mat<N, N, T> cholesky(const Mat<N, N, T>& a) {
    Mat<N, N, T> l;
    for (std::size_t i = 0; i < N; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            T s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
            if (i == j) {
                if (!(s > T{0}))
                    throw std::domain_error("cholesky: not positive definite");
                l(i, i) = std::sqrt(s);
            } else {
                l(i, j) = s / l(j, j);
            }
        }
    }
    return l;
}

/// Solve A·x = b via the Gauss-Jordan inverse (adequate at these sizes).
template <std::size_t N, typename T>
[[nodiscard]] Vec<N, T> solve(const Mat<N, N, T>& a, const Vec<N, T>& b) {
    return inverse(a) * b;
}

}  // namespace ob::math
