#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace ob::comm {

/// SLIP (RFC 1055) byte-stuffing framer, used by the CAN→RS232 bridge to
/// delimit CAN frames on the serial line.
namespace slip {

inline constexpr std::uint8_t kEnd = 0xC0;
inline constexpr std::uint8_t kEsc = 0xDB;
inline constexpr std::uint8_t kEscEnd = 0xDC;
inline constexpr std::uint8_t kEscEsc = 0xDD;

/// Encode one payload as a delimited SLIP frame (END payload END).
[[nodiscard]] std::vector<std::uint8_t> encode(
    const std::vector<std::uint8_t>& payload);

/// Incremental decoder: feed bytes, collect complete frames.
class Decoder {
public:
    /// Feed one byte; returns a complete payload when a frame closes.
    [[nodiscard]] std::optional<std::vector<std::uint8_t>> feed(std::uint8_t byte);

    /// Frames abandoned due to bad escape sequences.
    [[nodiscard]] std::size_t malformed() const { return malformed_; }

private:
    std::vector<std::uint8_t> buf_;
    bool escaping_ = false;
    std::size_t malformed_ = 0;
};

}  // namespace slip
}  // namespace ob::comm
