#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ob::comm {

/// SLIP (RFC 1055) byte-stuffing framer, used by the CAN→RS232 bridge to
/// delimit CAN frames on the serial line.
namespace slip {

inline constexpr std::uint8_t kEnd = 0xC0;
inline constexpr std::uint8_t kEsc = 0xDB;
inline constexpr std::uint8_t kEscEnd = 0xDC;
inline constexpr std::uint8_t kEscEsc = 0xDD;

/// Append one delimited SLIP frame (END payload END) to `out` without
/// clearing it; the caller owns (and reuses) the buffer.
void encode_into(std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>& out);

/// Encode one payload as a delimited SLIP frame (END payload END).
[[nodiscard]] std::vector<std::uint8_t> encode(
    std::span<const std::uint8_t> payload);

/// Reusable encoder: one internal buffer serves every frame, so encoding
/// is allocation-free once the buffer reaches its high-water size. The
/// returned view is valid until the next `encode` call.
class Encoder {
public:
    [[nodiscard]] std::span<const std::uint8_t> encode(
        std::span<const std::uint8_t> payload) {
        buf_.clear();
        encode_into(payload, buf_);
        return buf_;
    }

private:
    std::vector<std::uint8_t> buf_;
};

/// Incremental decoder: feed bytes, collect complete frames.
class Decoder {
public:
    /// Feed one byte; returns the completed payload, or nullptr while a
    /// frame is still open. The pointee is owned by the decoder and stays
    /// valid until the next feed — steady-state decoding never allocates.
    [[nodiscard]] const std::vector<std::uint8_t>* feed_frame(std::uint8_t byte);

    /// Feed one byte; returns a copy of the payload when a frame closes.
    [[nodiscard]] std::optional<std::vector<std::uint8_t>> feed(
        std::uint8_t byte) {
        if (const auto* f = feed_frame(byte)) return *f;
        return std::nullopt;
    }

    /// Frames abandoned due to bad escape sequences.
    [[nodiscard]] std::size_t malformed() const { return malformed_; }

private:
    std::vector<std::uint8_t> buf_;
    std::vector<std::uint8_t> frame_;  ///< last completed frame (reused)
    bool escaping_ = false;
    std::size_t malformed_ = 0;
};

}  // namespace slip
}  // namespace ob::comm
