#include "comm/bridge.hpp"

namespace ob::comm {

void CanSerialBridge::forward(const CanFrame& frame, double t) {
    std::vector<std::uint8_t> payload;
    payload.reserve(5u + frame.dlc);
    payload.push_back(static_cast<std::uint8_t>(frame.id >> 8));
    payload.push_back(static_cast<std::uint8_t>(frame.id & 0xFF));
    payload.push_back(frame.dlc);
    for (std::uint8_t i = 0; i < frame.dlc; ++i) payload.push_back(frame.data[i]);
    // Carry the frame's CAN CRC-15 across the serial hop: the converter
    // re-uses the integrity the bus already computed, and (unlike an
    // additive sum) a CRC catches all 1- and 2-bit serial corruptions.
    const std::uint16_t crc = can_crc15(can_frame_bits(frame));
    payload.push_back(static_cast<std::uint8_t>(crc >> 8));
    payload.push_back(static_cast<std::uint8_t>(crc & 0xFF));
    uart_.send(slip::encode(payload), t);
    ++forwarded_;
}

std::optional<CanFrame> CanSerialDeframer::feed(const UartByte& byte) {
    if (byte.framing_error) poisoned_ = true;
    const auto payload = slip_.feed(byte.value);
    if (!payload) return std::nullopt;
    if (poisoned_) {
        poisoned_ = false;
        ++malformed_;
        return std::nullopt;
    }
    if (payload->size() < 5) {
        ++malformed_;
        return std::nullopt;
    }
    CanFrame f;
    f.id = static_cast<std::uint16_t>(((*payload)[0] << 8) | (*payload)[1]);
    f.dlc = (*payload)[2];
    if (!f.valid() || payload->size() != 5u + f.dlc) {
        ++malformed_;
        return std::nullopt;
    }
    for (std::uint8_t i = 0; i < f.dlc; ++i) f.data[i] = (*payload)[3u + i];
    const auto rx_crc = static_cast<std::uint16_t>(
        ((*payload)[3u + f.dlc] << 8) | (*payload)[4u + f.dlc]);
    if (rx_crc != can_crc15(can_frame_bits(f))) {
        ++malformed_;
        return std::nullopt;
    }
    return f;
}

}  // namespace ob::comm
