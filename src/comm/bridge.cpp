#include "comm/bridge.hpp"

#include <array>

namespace ob::comm {

void CanSerialBridge::forward(const CanFrame& frame, double t) {
    // [id_hi, id_lo, dlc, data..., crc_hi, crc_lo]: at most 13 bytes.
    std::array<std::uint8_t, 13> payload;
    std::size_t n = 0;
    payload[n++] = static_cast<std::uint8_t>(frame.id >> 8);
    payload[n++] = static_cast<std::uint8_t>(frame.id & 0xFF);
    payload[n++] = frame.dlc;
    for (std::uint8_t i = 0; i < frame.dlc; ++i) payload[n++] = frame.data[i];
    // Carry the frame's CAN CRC-15 across the serial hop: the converter
    // re-uses the integrity the bus already computed, and (unlike an
    // additive sum) a CRC catches all 1- and 2-bit serial corruptions.
    const std::uint16_t crc = can_frame_crc15(frame);
    payload[n++] = static_cast<std::uint8_t>(crc >> 8);
    payload[n++] = static_cast<std::uint8_t>(crc & 0xFF);
    uart_.send(encoder_.encode({payload.data(), n}), t);
    ++forwarded_;
}

std::optional<CanFrame> CanSerialDeframer::feed(const UartByte& byte) {
    if (byte.framing_error) poisoned_ = true;
    const auto* payload = slip_.feed_frame(byte.value);
    if (payload == nullptr) return std::nullopt;
    if (poisoned_) {
        poisoned_ = false;
        ++malformed_;
        return std::nullopt;
    }
    const auto& p = *payload;
    if (p.size() < 5) {
        ++malformed_;
        return std::nullopt;
    }
    CanFrame f;
    f.id = static_cast<std::uint16_t>((p[0] << 8) | p[1]);
    f.dlc = p[2];
    if (!f.valid() || p.size() != 5u + f.dlc) {
        ++malformed_;
        return std::nullopt;
    }
    for (std::uint8_t i = 0; i < f.dlc; ++i) f.data[i] = p[3u + i];
    const auto rx_crc =
        static_cast<std::uint16_t>((p[3u + f.dlc] << 8) | p[4u + f.dlc]);
    if (rx_crc != can_frame_crc15(f)) {
        ++malformed_;
        return std::nullopt;
    }
    return f;
}

}  // namespace ob::comm
