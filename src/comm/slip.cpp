#include "comm/slip.hpp"

namespace ob::comm::slip {

std::vector<std::uint8_t> encode(const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> out;
    out.reserve(payload.size() + 2);
    out.push_back(kEnd);
    for (const std::uint8_t b : payload) {
        if (b == kEnd) {
            out.push_back(kEsc);
            out.push_back(kEscEnd);
        } else if (b == kEsc) {
            out.push_back(kEsc);
            out.push_back(kEscEsc);
        } else {
            out.push_back(b);
        }
    }
    out.push_back(kEnd);
    return out;
}

std::optional<std::vector<std::uint8_t>> Decoder::feed(std::uint8_t byte) {
    if (byte == kEnd) {
        escaping_ = false;
        if (buf_.empty()) return std::nullopt;  // back-to-back delimiters
        std::vector<std::uint8_t> frame;
        frame.swap(buf_);
        return frame;
    }
    if (escaping_) {
        escaping_ = false;
        if (byte == kEscEnd) {
            buf_.push_back(kEnd);
        } else if (byte == kEscEsc) {
            buf_.push_back(kEsc);
        } else {
            // Protocol violation: drop the partial frame.
            buf_.clear();
            ++malformed_;
        }
        return std::nullopt;
    }
    if (byte == kEsc) {
        escaping_ = true;
        return std::nullopt;
    }
    buf_.push_back(byte);
    return std::nullopt;
}

}  // namespace ob::comm::slip
