#include "comm/slip.hpp"

namespace ob::comm::slip {

void encode_into(std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>& out) {
    out.reserve(out.size() + payload.size() + 2);
    out.push_back(kEnd);
    for (const std::uint8_t b : payload) {
        if (b == kEnd) {
            out.push_back(kEsc);
            out.push_back(kEscEnd);
        } else if (b == kEsc) {
            out.push_back(kEsc);
            out.push_back(kEscEsc);
        } else {
            out.push_back(b);
        }
    }
    out.push_back(kEnd);
}

std::vector<std::uint8_t> encode(std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> out;
    encode_into(payload, out);
    return out;
}

const std::vector<std::uint8_t>* Decoder::feed_frame(std::uint8_t byte) {
    if (byte == kEnd) {
        escaping_ = false;
        if (buf_.empty()) return nullptr;  // back-to-back delimiters
        // Swap keeps both buffers' capacity alive: the completed frame
        // hands its old storage back as the next accumulation buffer.
        frame_.swap(buf_);
        buf_.clear();
        return &frame_;
    }
    if (escaping_) {
        escaping_ = false;
        if (byte == kEscEnd) {
            buf_.push_back(kEnd);
        } else if (byte == kEscEsc) {
            buf_.push_back(kEsc);
        } else {
            // Protocol violation: drop the partial frame.
            buf_.clear();
            ++malformed_;
        }
        return nullptr;
    }
    if (byte == kEsc) {
        escaping_ = true;
        return nullptr;
    }
    buf_.push_back(byte);
    return nullptr;
}

}  // namespace ob::comm::slip
