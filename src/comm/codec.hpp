#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "comm/can.hpp"

namespace ob::comm {

// ---------------------------------------------------------------------------
// DMU (6-DOF IMU) wire protocol: two CAN frames per sample, gyro + accel,
// paired by sequence number — the shape real automotive IMUs use since a
// 6x16-bit sample does not fit one 8-byte CAN payload.
// ---------------------------------------------------------------------------

/// One full-rate DMU output sample in raw register units.
struct DmuSample {
    std::uint8_t seq = 0;
    std::array<std::int16_t, 3> gyro{};   ///< angular rate, raw LSBs
    std::array<std::int16_t, 3> accel{};  ///< specific force, raw LSBs
    double t = 0.0;  ///< receive-side timestamp (filled by decoder)

    friend bool operator==(const DmuSample& a, const DmuSample& b) {
        return a.seq == b.seq && a.gyro == b.gyro && a.accel == b.accel;
    }
};

/// Fixed-point scaling of the DMU registers, from the datasheet-style
/// ranges: gyro +-100 deg/s, accel +-2 g over int16.
struct DmuScale {
    double gyro_lsb_rad_s = (100.0 * 3.14159265358979323846 / 180.0) / 32768.0;
    double accel_lsb_mps2 = (2.0 * 9.80665) / 32768.0;

    [[nodiscard]] std::int16_t rate_to_raw(double rad_s) const;
    [[nodiscard]] std::int16_t accel_to_raw(double mps2) const;
    [[nodiscard]] double raw_to_rate(std::int16_t raw) const {
        return raw * gyro_lsb_rad_s;
    }
    [[nodiscard]] double raw_to_accel(std::int16_t raw) const {
        return raw * accel_lsb_mps2;
    }
};

/// Encoder/decoder for the DMU's two-frame CAN protocol.
class DmuCodec {
public:
    static constexpr std::uint16_t kGyroFrameId = 0x100;
    static constexpr std::uint16_t kAccelFrameId = 0x101;

    /// Encode one sample as its gyro and accel frames.
    [[nodiscard]] static std::pair<CanFrame, CanFrame> encode(const DmuSample& s);

    /// Encode into caller-provided frames (hot path: no pair temporary).
    static void encode_into(const DmuSample& s, CanFrame& gyro, CanFrame& accel);

    /// Feed one received frame; returns a complete sample once both halves
    /// with matching sequence numbers have arrived. Mismatched or corrupt
    /// frames are dropped and counted.
    [[nodiscard]] std::optional<DmuSample> feed(const CanFrame& f, double t);

    [[nodiscard]] std::size_t bad_checksum() const { return bad_checksum_; }
    [[nodiscard]] std::size_t seq_mismatches() const { return seq_mismatch_; }

private:
    std::optional<CanFrame> pending_gyro_;
    double pending_t_ = 0.0;
    std::size_t bad_checksum_ = 0;
    std::size_t seq_mismatch_ = 0;
};

// ---------------------------------------------------------------------------
// ADXL202 two-axis accelerometer: the physical part outputs PWM duty cycle
// (T1 high-time over period T2, 12.5% duty per g around 50%); a counter
// samples the timings and ships them over RS232. This codec reproduces the
// datasheet transfer function including counter quantization.
// ---------------------------------------------------------------------------

/// Static configuration of the duty-cycle measurement chain.
struct AdxlConfig {
    double timer_hz = 10e6;     ///< timing counter frequency
    double t2_s = 0.01;         ///< PWM period (100 Hz sample rate)
    double duty_per_g = 0.125;  ///< datasheet: 12.5% duty cycle per g
    double zero_g_duty = 0.5;   ///< 50% duty at 0 g
    double g = 9.80665;
    double range_g = 2.0;       ///< clip beyond +-2 g

    [[nodiscard]] std::uint32_t t2_ticks() const {
        return static_cast<std::uint32_t>(timer_hz * t2_s + 0.5);
    }
};

/// Raw timing observation for one ADXL202 PWM cycle.
struct AdxlTiming {
    std::uint8_t seq = 0;
    std::uint32_t t1x = 0;  ///< x-axis high time, timer ticks
    std::uint32_t t1y = 0;  ///< y-axis high time, timer ticks
    std::uint32_t t2 = 0;   ///< shared period, timer ticks
    double t = 0.0;         ///< receive-side timestamp (filled by decoder)

    friend bool operator==(const AdxlTiming& a, const AdxlTiming& b) {
        return a.seq == b.seq && a.t1x == b.t1x && a.t1y == b.t1y && a.t2 == b.t2;
    }
};

/// Convert accelerations (m/s^2, sensor axes) to quantized PWM timings.
[[nodiscard]] AdxlTiming adxl_encode(double ax_mps2, double ay_mps2,
                                     std::uint8_t seq, const AdxlConfig& cfg);

/// Invert the duty-cycle transfer function back to m/s^2.
[[nodiscard]] std::pair<double, double> adxl_decode(const AdxlTiming& timing,
                                                    const AdxlConfig& cfg);

/// Plausibility filter for received timings: the PWM period must be near
/// its configured nominal and the duty cycles inside the physical +-2g
/// band (plus margin). Rejects the rare corrupted packet whose additive
/// checksum still matched — without this, one wild sample (a flipped high
/// bit reads as tens of g) can wreck the fusion filter.
[[nodiscard]] bool adxl_plausible(const AdxlTiming& timing,
                                  const AdxlConfig& cfg);

/// Serial packet: [0xA5][seq][t1x 24-bit LE][t1y][t2][checksum].
inline constexpr std::uint8_t kAdxlSync = 0xA5;
inline constexpr std::size_t kAdxlPacketSize = 12;

[[nodiscard]] std::vector<std::uint8_t> adxl_serialize(const AdxlTiming& t);

/// Serialize into a caller-provided packet buffer (hot path: no vector).
void adxl_serialize_into(const AdxlTiming& t,
                         std::array<std::uint8_t, kAdxlPacketSize>& out);

/// Incremental deserializer with resynchronization on the 0xA5 marker.
/// Buffers at most one packet in a fixed array — never allocates.
class AdxlDeserializer {
public:
    /// Feed one serial byte; yields a timing record when a packet with a
    /// valid checksum completes.
    [[nodiscard]] std::optional<AdxlTiming> feed(std::uint8_t byte, double t);

    [[nodiscard]] std::size_t bad_checksum() const { return bad_checksum_; }
    [[nodiscard]] std::size_t resyncs() const { return resyncs_; }

private:
    std::array<std::uint8_t, kAdxlPacketSize> buf_{};
    std::size_t len_ = 0;
    std::size_t bad_checksum_ = 0;
    std::size_t resyncs_ = 0;
};

}  // namespace ob::comm
