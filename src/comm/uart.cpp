#include "comm/uart.hpp"

#include <algorithm>

namespace ob::comm {

void UartLink::send(std::uint8_t byte, double t_request) {
    const double t_start = std::max(t_request, line_busy_until_);
    const double t_done = t_start + byte_time();
    line_busy_until_ = t_done;

    const std::uint64_t index = byte_index_++;

    UartByte rx;
    rx.value = byte;
    rx.t = t_done;
    // Each byte's fate comes from its own counter-keyed stream — a pure
    // function of (fault_seed, byte index) — so the zero-fault fast path
    // advances only the index, and enabling faults later leaves every
    // byte's draws identical to a link faulted from byte 0.
    if (faults_enabled_) {
        util::CounterRng draws(fault_seed_, index);
        if (draws.chance(faults_.drop_probability)) {
            ++dropped_;
            return;  // byte never arrives; line time is still consumed
        }
        if (draws.chance(faults_.bit_flip_probability)) {
            rx.value ^= static_cast<std::uint8_t>(1u << (draws.bits64() & 7));
            ++corrupted_;
        }
        rx.framing_error = draws.chance(faults_.framing_error_probability);
    }
    in_flight_.push_back(rx);
}

void UartLink::send(std::span<const std::uint8_t> bytes, double t_request) {
    for (const std::uint8_t b : bytes) send(b, t_request);
}

std::vector<UartByte> UartLink::receive_until(double t) {
    std::vector<UartByte> out;
    drain_until(t, [&out](const UartByte& b) { out.push_back(b); });
    return out;
}

}  // namespace ob::comm
