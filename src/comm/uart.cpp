#include "comm/uart.hpp"

#include <algorithm>

namespace ob::comm {

void UartLink::send(std::uint8_t byte, double t_request) {
    const double t_start = std::max(t_request, line_busy_until_);
    const double t_done = t_start + byte_time();
    line_busy_until_ = t_done;

    if (rng_.chance(faults_.drop_probability)) {
        ++dropped_;
        return;  // byte never arrives; line time is still consumed
    }
    UartByte rx;
    rx.value = byte;
    rx.t = t_done;
    if (rng_.chance(faults_.bit_flip_probability)) {
        rx.value ^= static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
        ++corrupted_;
    }
    rx.framing_error = rng_.chance(faults_.framing_error_probability);
    in_flight_.push_back(rx);
}

void UartLink::send(const std::vector<std::uint8_t>& bytes, double t_request) {
    for (const std::uint8_t b : bytes) send(b, t_request);
}

std::vector<UartByte> UartLink::receive_until(double t) {
    std::vector<UartByte> out;
    while (!in_flight_.empty() && in_flight_.front().t <= t) {
        out.push_back(in_flight_.front());
        in_flight_.pop_front();
    }
    return out;
}

}  // namespace ob::comm
