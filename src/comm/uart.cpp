#include "comm/uart.hpp"

#include <algorithm>

namespace ob::comm {

void UartLink::send(std::uint8_t byte, double t_request) {
    const double t_start = std::max(t_request, line_busy_until_);
    const double t_done = t_start + byte_time();
    line_busy_until_ = t_done;

    UartByte rx;
    rx.value = byte;
    rx.t = t_done;
    // With all fault probabilities zero the RNG stream is unobservable, so
    // the draws can be skipped wholesale; with any fault enabled the exact
    // three-draws-per-byte sequence is preserved for reproducibility.
    if (faults_enabled_) {
        if (rng_.chance(faults_.drop_probability)) {
            ++dropped_;
            return;  // byte never arrives; line time is still consumed
        }
        if (rng_.chance(faults_.bit_flip_probability)) {
            rx.value ^= static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
            ++corrupted_;
        }
        rx.framing_error = rng_.chance(faults_.framing_error_probability);
    }
    in_flight_.push_back(rx);
}

void UartLink::send(std::span<const std::uint8_t> bytes, double t_request) {
    for (const std::uint8_t b : bytes) send(b, t_request);
}

std::vector<UartByte> UartLink::receive_until(double t) {
    std::vector<UartByte> out;
    drain_until(t, [&out](const UartByte& b) { out.push_back(b); });
    return out;
}

}  // namespace ob::comm
