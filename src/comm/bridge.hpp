#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "comm/can.hpp"
#include "comm/slip.hpp"
#include "comm/uart.hpp"

namespace ob::comm {

/// CAN→RS232 protocol converter. The paper's platform had only serial
/// inputs, so the DMU's CAN traffic is tunnelled over a UART: each CAN
/// frame is packed as [id_hi, id_lo, dlc, data..., crc15] and SLIP-framed.
///
/// The bridge owns neither endpoint: it reads delivered CAN frames (attach
/// `forward` as a CanBus delivery callback) and writes into the UART link.
/// Forwarding reuses a fixed scratch payload and the SLIP encoder's
/// internal buffer — steady state allocates nothing.
class CanSerialBridge {
public:
    explicit CanSerialBridge(UartLink& uart) : uart_(uart) {}

    /// Forward one CAN frame onto the serial line at time `t`.
    void forward(const CanFrame& frame, double t);

    [[nodiscard]] std::size_t frames_forwarded() const { return forwarded_; }

private:
    UartLink& uart_;
    slip::Encoder encoder_;
    std::size_t forwarded_ = 0;
};

/// Receiving side of the bridge: reassembles CAN frames from the SLIP
/// byte stream.
class CanSerialDeframer {
public:
    /// Feed one serial byte; returns a frame when one completes. Bytes with
    /// framing errors poison the current SLIP frame.
    [[nodiscard]] std::optional<CanFrame> feed(const UartByte& byte);

    [[nodiscard]] std::size_t malformed() const { return malformed_; }

private:
    slip::Decoder slip_;
    bool poisoned_ = false;
    std::size_t malformed_ = 0;
};

}  // namespace ob::comm
