#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace ob::comm {

/// A byte received from a UART together with its completion timestamp and
/// framing status.
struct UartByte {
    std::uint8_t value = 0;
    double t = 0.0;
    bool framing_error = false;
};

/// Fault-injection knobs for serial links; all probabilities are per byte.
struct UartFaults {
    double drop_probability = 0.0;      ///< byte silently lost
    double bit_flip_probability = 0.0;  ///< one random data bit inverted
    double framing_error_probability = 0.0;  ///< stop-bit violation flagged

    [[nodiscard]] bool any() const {
        return drop_probability > 0.0 || bit_flip_probability > 0.0 ||
               framing_error_probability > 0.0;
    }
};

/// Point-to-point asynchronous serial link (8N1 framing: 1 start, 8 data,
/// 1 stop = 10 bit times per byte). Models transmission delay, sender
/// back-pressure (bytes serialize after the previous byte finishes) and
/// optional fault injection. The ACC in the paper talks RS232 directly; the
/// DMU reaches RS232 through the CAN bridge.
///
/// In-flight bytes live in a ring buffer that reaches its high-water
/// capacity during warm-up; steady-state send/drain cycles are
/// allocation-free. Prefer `drain_until` on the hot path — `receive_until`
/// materializes a fresh vector per call and exists for tests/tools.
class UartLink {
public:
    explicit UartLink(double baud = 115200.0, UartFaults faults = {},
                      std::uint64_t fault_seed = 1)
        : baud_(baud),
          faults_(faults),
          faults_enabled_(faults.any()),
          fault_seed_(fault_seed) {}

    /// Replace the fault configuration mid-stream. Fault draws are keyed
    /// on (fault_seed, byte index) — not an advancing generator — and the
    /// byte index counts every sent byte, faults enabled or not, so
    /// toggling a fault type here never shifts the draws any later byte
    /// sees: byte N suffers exactly the fate it would on a link configured
    /// this way from construction.
    void set_faults(const UartFaults& faults) {
        faults_ = faults;
        faults_enabled_ = faults.any();
    }
    [[nodiscard]] const UartFaults& faults() const { return faults_; }

    /// Queue one byte for transmission at time `t_request` (seconds). The
    /// byte starts after both `t_request` and the previous byte's end.
    void send(std::uint8_t byte, double t_request);

    /// Queue a byte sequence back-to-back.
    void send(std::span<const std::uint8_t> bytes, double t_request);
    void send(const std::vector<std::uint8_t>& bytes, double t_request) {
        send(std::span<const std::uint8_t>(bytes), t_request);
    }

    /// Deliver every byte fully received by time `t`, in order, to `sink`
    /// (callable as `sink(const UartByte&)`). Allocation-free.
    template <typename Sink>
    void drain_until(double t, Sink&& sink) {
        while (!in_flight_.empty() && in_flight_.front().t <= t) {
            const UartByte b = in_flight_.front();
            in_flight_.pop_front();
            sink(b);
        }
    }

    /// Pop every byte fully received by time `t`, in order.
    [[nodiscard]] std::vector<UartByte> receive_until(double t);

    /// Seconds to transmit one byte (10 bit times).
    [[nodiscard]] double byte_time() const { return 10.0 / baud_; }

    [[nodiscard]] double baud() const { return baud_; }
    [[nodiscard]] std::size_t bytes_dropped() const { return dropped_; }
    [[nodiscard]] std::size_t bytes_corrupted() const { return corrupted_; }
    [[nodiscard]] std::size_t pending() const { return in_flight_.size(); }

private:
    double baud_;
    UartFaults faults_;
    bool faults_enabled_;  ///< skip RNG draws entirely when all probs are 0
    std::uint64_t fault_seed_;
    std::uint64_t byte_index_ = 0;  ///< counts every sent byte, always
    double line_busy_until_ = 0.0;
    ob::util::RingBuffer<UartByte> in_flight_;
    std::size_t dropped_ = 0;
    std::size_t corrupted_ = 0;
};

}  // namespace ob::comm
