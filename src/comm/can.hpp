#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

namespace ob::comm {

/// CAN 2.0A data frame (11-bit identifier, up to 8 data bytes) — the bus
/// the paper's BAE DMU speaks before the CAN→RS232 converter.
struct CanFrame {
    std::uint16_t id = 0;  ///< 11-bit identifier; lower value wins arbitration
    std::uint8_t dlc = 0;  ///< data length code, 0..8
    std::array<std::uint8_t, 8> data{};

    [[nodiscard]] bool valid() const { return id < 0x800 && dlc <= 8; }

    friend bool operator==(const CanFrame&, const CanFrame&) = default;
};

/// CRC-15/CAN over the frame header+data bits (polynomial 0x4599), exactly
/// as transmitted on the wire. Used both to model the wire format and to
/// detect injected corruption in tests.
[[nodiscard]] std::uint16_t can_crc15(std::span<const std::uint8_t> bits);

/// Serialize the frame fields covered by the CRC (SOF..data) as bits,
/// MSB-first, without stuffing.
[[nodiscard]] std::vector<std::uint8_t> can_frame_bits(const CanFrame& f);

/// Total on-wire bit count including stuff bits, CRC, ACK, EOF and
/// interframe space; determines frame transmission time.
[[nodiscard]] std::size_t can_wire_bits(const CanFrame& f);

/// Count the stuff bits CAN bit-stuffing inserts (one after every run of
/// five identical bits in SOF..CRC, applied iteratively).
[[nodiscard]] std::size_t can_stuff_bits(std::span<const std::uint8_t> bits);

/// Event-driven single-bus model with priority arbitration and 500 kbit/s
/// (configurable) timing. Senders enqueue frames with a request timestamp;
/// the bus serializes them in arbitration order and invokes the delivery
/// callback at each frame's end-of-frame time.
class CanBus {
public:
    using DeliveryCallback =
        std::function<void(const CanFrame&, double t_delivered)>;

    explicit CanBus(double bitrate_bps = 500000.0) : bitrate_(bitrate_bps) {}

    /// Register a receiver; every delivered frame is fanned out to all.
    void on_delivery(DeliveryCallback cb) { receivers_.push_back(std::move(cb)); }

    /// Queue a frame for transmission at time `t_request` (seconds).
    void send(const CanFrame& frame, double t_request);

    /// Advance bus time, delivering everything that completes by `t`.
    void advance_to(double t);

    /// Frames currently queued but not yet delivered.
    [[nodiscard]] std::size_t pending() const { return queue_.size(); }

    [[nodiscard]] double bitrate() const { return bitrate_; }

    /// Worst observed queueing latency (request to delivery), seconds.
    [[nodiscard]] double max_latency() const { return max_latency_; }

private:
    struct Pending {
        CanFrame frame;
        double t_request;
    };

    double bitrate_;
    double busy_until_ = 0.0;
    double max_latency_ = 0.0;
    std::deque<Pending> queue_;
    std::vector<DeliveryCallback> receivers_;
};

}  // namespace ob::comm
