#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/ring_buffer.hpp"

namespace ob::comm {

/// CAN 2.0A data frame (11-bit identifier, up to 8 data bytes) — the bus
/// the paper's BAE DMU speaks before the CAN→RS232 converter.
struct CanFrame {
    std::uint16_t id = 0;  ///< 11-bit identifier; lower value wins arbitration
    std::uint8_t dlc = 0;  ///< data length code, 0..8
    std::array<std::uint8_t, 8> data{};

    [[nodiscard]] bool valid() const { return id < 0x800 && dlc <= 8; }

    friend bool operator==(const CanFrame&, const CanFrame&) = default;
};

/// CRC-15/CAN over the frame header+data bits (polynomial 0x4599), exactly
/// as transmitted on the wire. Used both to model the wire format and to
/// detect injected corruption in tests.
[[nodiscard]] std::uint16_t can_crc15(std::span<const std::uint8_t> bits);

/// CRC-15 of a frame's SOF..data bits, computed by walking the packed
/// frame directly — identical to `can_crc15(can_frame_bits(f))` without
/// materializing the bit vector.
[[nodiscard]] std::uint16_t can_frame_crc15(const CanFrame& f);

/// Serialize the frame fields covered by the CRC (SOF..data) as bits,
/// MSB-first, without stuffing. Reference implementation; the send path
/// walks the packed frame iteratively instead.
[[nodiscard]] std::vector<std::uint8_t> can_frame_bits(const CanFrame& f);

/// Total on-wire bit count including stuff bits, CRC, ACK, EOF and
/// interframe space; determines frame transmission time. Allocation-free
/// iterative bit-walk over the packed frame.
[[nodiscard]] std::size_t can_wire_bits(const CanFrame& f);

/// Count the stuff bits CAN bit-stuffing inserts (one after every run of
/// five identical bits in SOF..CRC, applied iteratively).
[[nodiscard]] std::size_t can_stuff_bits(std::span<const std::uint8_t> bits);

/// Event-driven single-bus model with priority arbitration and 500 kbit/s
/// (configurable) timing. Senders enqueue frames with a request timestamp;
/// the bus serializes them in arbitration order and invokes the delivery
/// callback at each frame's end-of-frame time.
///
/// Hot-path affordances: each frame's wire-bit count is resolved once at
/// `send` through a small direct-mapped cache keyed on the full frame
/// shape (id, dlc, payload), and a single receiver can register through
/// `set_direct_delivery` — a raw function pointer + context — to bypass
/// the `std::function` fan-out.
class CanBus {
public:
    using DeliveryCallback =
        std::function<void(const CanFrame&, double t_delivered)>;
    using DirectDelivery = void (*)(void* ctx, const CanFrame&,
                                    double t_delivered);

    explicit CanBus(double bitrate_bps = 500000.0) : bitrate_(bitrate_bps) {}

    /// Register a receiver; every delivered frame is fanned out to all.
    void on_delivery(DeliveryCallback cb) { receivers_.push_back(std::move(cb)); }

    /// Register the common single-listener receiver without std::function
    /// overhead. Called before any `on_delivery` receivers.
    void set_direct_delivery(DirectDelivery fn, void* ctx) {
        direct_fn_ = fn;
        direct_ctx_ = ctx;
    }

    /// Queue a frame for transmission at time `t_request` (seconds).
    void send(const CanFrame& frame, double t_request);

    /// Advance bus time, delivering everything that completes by `t`.
    void advance_to(double t);

    /// Frames currently queued but not yet delivered.
    [[nodiscard]] std::size_t pending() const { return queue_.size(); }

    [[nodiscard]] double bitrate() const { return bitrate_; }

    /// Worst observed queueing latency (request to delivery), seconds.
    [[nodiscard]] double max_latency() const { return max_latency_; }

    /// Wire-bit count via the per-frame-shape cache (identical result to
    /// `can_wire_bits`, cheaper when frame shapes repeat).
    [[nodiscard]] std::size_t cached_wire_bits(const CanFrame& f);

private:
    struct Pending {
        CanFrame frame;
        double t_request = 0.0;
        std::size_t wire_bits = 0;  ///< resolved once at send time
    };

    /// Direct-mapped cache of frame shape -> wire bits. 64 entries cover
    /// the handful of distinct shapes a sensor suite emits; collisions
    /// simply recompute.
    struct WireBitsEntry {
        CanFrame frame{};
        std::size_t bits = 0;
        bool valid = false;
    };

    double bitrate_;
    double busy_until_ = 0.0;
    double max_latency_ = 0.0;
    ob::util::RingBuffer<Pending> queue_;
    std::vector<DeliveryCallback> receivers_;
    DirectDelivery direct_fn_ = nullptr;
    void* direct_ctx_ = nullptr;
    std::array<WireBitsEntry, 64> wire_cache_{};
};

}  // namespace ob::comm
