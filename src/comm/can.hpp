#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace ob::comm {

/// CAN 2.0A data frame (11-bit identifier, up to 8 data bytes) — the bus
/// the paper's BAE DMU speaks before the CAN→RS232 converter.
struct CanFrame {
    std::uint16_t id = 0;  ///< 11-bit identifier; lower value wins arbitration
    std::uint8_t dlc = 0;  ///< data length code, 0..8
    std::array<std::uint8_t, 8> data{};

    [[nodiscard]] bool valid() const { return id < 0x800 && dlc <= 8; }

    friend bool operator==(const CanFrame&, const CanFrame&) = default;
};

/// CRC-15/CAN over the frame header+data bits (polynomial 0x4599), exactly
/// as transmitted on the wire. Used both to model the wire format and to
/// detect injected corruption in tests.
[[nodiscard]] std::uint16_t can_crc15(std::span<const std::uint8_t> bits);

/// CRC-15 of a frame's SOF..data bits, computed by walking the packed
/// frame directly — identical to `can_crc15(can_frame_bits(f))` without
/// materializing the bit vector.
[[nodiscard]] std::uint16_t can_frame_crc15(const CanFrame& f);

/// Serialize the frame fields covered by the CRC (SOF..data) as bits,
/// MSB-first, without stuffing. Reference implementation; the send path
/// walks the packed frame iteratively instead.
[[nodiscard]] std::vector<std::uint8_t> can_frame_bits(const CanFrame& f);

/// Total on-wire bit count including stuff bits, CRC, ACK, EOF and
/// interframe space; determines frame transmission time. Allocation-free
/// iterative bit-walk over the packed frame.
[[nodiscard]] std::size_t can_wire_bits(const CanFrame& f);

/// Count the stuff bits CAN bit-stuffing inserts (one after every run of
/// five identical bits in SOF..CRC, applied iteratively).
[[nodiscard]] std::size_t can_stuff_bits(std::span<const std::uint8_t> bits);

/// Both per-frame wire facts the transmission models consume, computed in
/// one pass over the packed frame: the total on-wire bit count (identical
/// to `can_wire_bits`) and the CRC-15 (identical to `can_frame_crc15`).
/// The batched ensemble path needs both per frame per epoch — the bit
/// count for bus timing, the CRC for the serial-bridge payload — and the
/// CRC is an input to the stuffing count anyway, so sharing the pass
/// halves the table walks.
struct CanWireInfo {
    std::size_t wire_bits = 0;
    std::uint16_t crc15 = 0;
};
[[nodiscard]] CanWireInfo can_wire_info(const CanFrame& f);

/// Bursty frame-erasure fault model for the bus (EMI hits, marginal
/// transceivers): each sent frame has `burst_probability` of opening a
/// loss burst that erases it and the next `burst_frames - 1` frames. Lost
/// frames still occupy the wire for their full transmission time — the
/// error frames of a real bus — but are never delivered to receivers, so
/// timing and arbitration are identical to the fault-free bus. Draws are
/// keyed on (seed, frame index); the index counts every sent frame whether
/// or not faults are enabled, so toggling the fault mid-run cannot shift
/// the draws later frames see.
struct CanFaults {
    double burst_probability = 0.0;  ///< per-frame chance a burst starts
    std::size_t burst_frames = 8;    ///< frames erased per burst (>= 1)
    std::uint64_t seed = 0x0CA2;

    [[nodiscard]] bool any() const { return burst_probability > 0.0; }
};

/// Event-driven single-bus model with priority arbitration and 500 kbit/s
/// (configurable) timing. Senders enqueue frames with a request timestamp;
/// the bus serializes them in arbitration order and invokes the delivery
/// callback at each frame's end-of-frame time.
///
/// Hot-path affordances: each frame's wire-bit count is resolved once at
/// `send` through a small direct-mapped cache keyed on the full frame
/// shape (id, dlc, payload), and a single receiver can register through
/// `set_direct_delivery` — a raw function pointer + context — to bypass
/// the `std::function` fan-out.
class CanBus {
public:
    using DeliveryCallback =
        std::function<void(const CanFrame&, double t_delivered)>;
    using DirectDelivery = void (*)(void* ctx, const CanFrame&,
                                    double t_delivered);

    explicit CanBus(double bitrate_bps = 500000.0, CanFaults faults = {})
        : bitrate_(bitrate_bps),
          faults_(faults),
          faults_enabled_(faults.any()) {}

    /// Replace the fault configuration mid-run (counter-keyed draws keep
    /// later frames' fates independent of when this happens).
    void set_faults(const CanFaults& faults) {
        faults_ = faults;
        faults_enabled_ = faults.any();
    }
    [[nodiscard]] const CanFaults& faults() const { return faults_; }

    /// Frames erased by burst loss so far.
    [[nodiscard]] std::size_t frames_lost() const { return frames_lost_; }

    /// Register a receiver; every delivered frame is fanned out to all.
    void on_delivery(DeliveryCallback cb) { receivers_.push_back(std::move(cb)); }

    /// Register the common single-listener receiver without std::function
    /// overhead. Called before any `on_delivery` receivers.
    void set_direct_delivery(DirectDelivery fn, void* ctx) {
        direct_fn_ = fn;
        direct_ctx_ = ctx;
    }

    /// Queue a frame for transmission at time `t_request` (seconds).
    void send(const CanFrame& frame, double t_request);

    /// Advance bus time, delivering everything that completes by `t`.
    void advance_to(double t);

    /// Frames currently queued but not yet delivered.
    [[nodiscard]] std::size_t pending() const { return queue_.size(); }

    [[nodiscard]] double bitrate() const { return bitrate_; }

    /// Worst observed queueing latency (request to delivery), seconds.
    [[nodiscard]] double max_latency() const { return max_latency_; }

    /// Wire-bit count via the per-frame-shape cache (identical result to
    /// `can_wire_bits`, cheaper when frame shapes repeat).
    [[nodiscard]] std::size_t cached_wire_bits(const CanFrame& f);

private:
    struct Pending {
        CanFrame frame;
        double t_request = 0.0;
        std::size_t wire_bits = 0;  ///< resolved once at send time
        bool lost = false;  ///< erased by a burst; occupies the wire only
    };

    /// Direct-mapped cache of frame shape -> wire bits. 64 entries cover
    /// the handful of distinct shapes a sensor suite emits; collisions
    /// simply recompute.
    struct WireBitsEntry {
        CanFrame frame{};
        std::size_t bits = 0;
        bool valid = false;
    };

    double bitrate_;
    CanFaults faults_;
    bool faults_enabled_;  ///< skip RNG draws entirely when probability is 0
    std::uint64_t frame_index_ = 0;  ///< counts every sent frame, always
    std::size_t burst_remaining_ = 0;
    std::size_t frames_lost_ = 0;
    double busy_until_ = 0.0;
    double max_latency_ = 0.0;
    ob::util::RingBuffer<Pending> queue_;
    std::vector<DeliveryCallback> receivers_;
    DirectDelivery direct_fn_ = nullptr;
    void* direct_ctx_ = nullptr;
    std::array<WireBitsEntry, 64> wire_cache_{};
};

}  // namespace ob::comm
