#include "comm/codec.hpp"

#include <algorithm>
#include <cmath>

namespace ob::comm {

namespace {

/// 8-bit additive checksum over a byte range.
[[nodiscard]] std::uint8_t sum8(const std::uint8_t* p, std::size_t n) {
    unsigned s = 0;
    for (std::size_t i = 0; i < n; ++i) s += p[i];
    return static_cast<std::uint8_t>(s & 0xFF);
}

[[nodiscard]] std::int16_t saturate16(double v) {
    return static_cast<std::int16_t>(
        std::clamp(std::lround(v), -32768l, 32767l));
}

void put_i16le(std::uint8_t* p, std::int16_t v) {
    const auto u = static_cast<std::uint16_t>(v);
    p[0] = static_cast<std::uint8_t>(u & 0xFF);
    p[1] = static_cast<std::uint8_t>(u >> 8);
}

[[nodiscard]] std::int16_t get_i16le(const std::uint8_t* p) {
    return static_cast<std::int16_t>(
        static_cast<std::uint16_t>(p[0]) |
        (static_cast<std::uint16_t>(p[1]) << 8));
}

void put_u24le(std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v & 0xFF);
    p[1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
    p[2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
}

[[nodiscard]] std::uint32_t get_u24le(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16);
}

}  // namespace

std::int16_t DmuScale::rate_to_raw(double rad_s) const {
    return saturate16(rad_s / gyro_lsb_rad_s);
}

std::int16_t DmuScale::accel_to_raw(double mps2) const {
    return saturate16(mps2 / accel_lsb_mps2);
}

void DmuCodec::encode_into(const DmuSample& s, CanFrame& gyro, CanFrame& accel) {
    gyro.id = kGyroFrameId;
    gyro.dlc = 8;
    gyro.data[0] = s.seq;
    for (int i = 0; i < 3; ++i)
        put_i16le(&gyro.data[1 + 2 * static_cast<std::size_t>(i)], s.gyro[static_cast<std::size_t>(i)]);
    gyro.data[7] = sum8(gyro.data.data(), 7);

    accel.id = kAccelFrameId;
    accel.dlc = 8;
    accel.data[0] = s.seq;
    for (int i = 0; i < 3; ++i)
        put_i16le(&accel.data[1 + 2 * static_cast<std::size_t>(i)], s.accel[static_cast<std::size_t>(i)]);
    accel.data[7] = sum8(accel.data.data(), 7);
}

std::pair<CanFrame, CanFrame> DmuCodec::encode(const DmuSample& s) {
    std::pair<CanFrame, CanFrame> out;
    encode_into(s, out.first, out.second);
    return out;
}

std::optional<DmuSample> DmuCodec::feed(const CanFrame& f, double t) {
    if (f.dlc != 8 || (f.id != kGyroFrameId && f.id != kAccelFrameId))
        return std::nullopt;  // not ours
    if (sum8(f.data.data(), 7) != f.data[7]) {
        ++bad_checksum_;
        return std::nullopt;
    }
    if (f.id == kGyroFrameId) {
        if (pending_gyro_) ++seq_mismatch_;  // stale unpaired gyro frame
        pending_gyro_ = f;
        pending_t_ = t;
        return std::nullopt;
    }
    // Accel frame: must pair with the stashed gyro frame by sequence.
    if (!pending_gyro_ || pending_gyro_->data[0] != f.data[0]) {
        ++seq_mismatch_;
        pending_gyro_.reset();
        return std::nullopt;
    }
    DmuSample s;
    s.seq = f.data[0];
    for (int i = 0; i < 3; ++i) {
        s.gyro[static_cast<std::size_t>(i)] =
            get_i16le(&pending_gyro_->data[1 + 2 * static_cast<std::size_t>(i)]);
        s.accel[static_cast<std::size_t>(i)] =
            get_i16le(&f.data[1 + 2 * static_cast<std::size_t>(i)]);
    }
    s.t = t;
    pending_gyro_.reset();
    return s;
}

AdxlTiming adxl_encode(double ax_mps2, double ay_mps2, std::uint8_t seq,
                       const AdxlConfig& cfg) {
    AdxlTiming out;
    out.seq = seq;
    out.t2 = cfg.t2_ticks();
    const auto duty_ticks = [&cfg, &out](double a_mps2) {
        double a_g = a_mps2 / cfg.g;
        a_g = std::clamp(a_g, -cfg.range_g, cfg.range_g);
        const double duty = cfg.zero_g_duty + a_g * cfg.duty_per_g;
        const double ticks = duty * static_cast<double>(out.t2);
        return static_cast<std::uint32_t>(std::lround(ticks));
    };
    out.t1x = duty_ticks(ax_mps2);
    out.t1y = duty_ticks(ay_mps2);
    return out;
}

std::pair<double, double> adxl_decode(const AdxlTiming& timing,
                                      const AdxlConfig& cfg) {
    const auto decode_axis = [&](std::uint32_t t1) {
        const double duty =
            static_cast<double>(t1) / static_cast<double>(timing.t2);
        const double a_g = (duty - cfg.zero_g_duty) / cfg.duty_per_g;
        return a_g * cfg.g;
    };
    return {decode_axis(timing.t1x), decode_axis(timing.t1y)};
}

bool adxl_plausible(const AdxlTiming& timing, const AdxlConfig& cfg) {
    const double nominal_t2 = cfg.t2_ticks();
    if (timing.t2 < 0.9 * nominal_t2 || timing.t2 > 1.1 * nominal_t2)
        return false;
    const double margin = 0.02;
    const double lo =
        cfg.zero_g_duty - cfg.range_g * cfg.duty_per_g - margin;
    const double hi =
        cfg.zero_g_duty + cfg.range_g * cfg.duty_per_g + margin;
    for (const std::uint32_t t1 : {timing.t1x, timing.t1y}) {
        const double duty =
            static_cast<double>(t1) / static_cast<double>(timing.t2);
        if (duty < lo || duty > hi) return false;
    }
    return true;
}

void adxl_serialize_into(const AdxlTiming& t,
                         std::array<std::uint8_t, kAdxlPacketSize>& out) {
    out[0] = kAdxlSync;
    out[1] = t.seq;
    put_u24le(&out[2], t.t1x);
    put_u24le(&out[5], t.t1y);
    put_u24le(&out[8], t.t2);
    out[11] = sum8(out.data(), kAdxlPacketSize - 1);
}

std::vector<std::uint8_t> adxl_serialize(const AdxlTiming& t) {
    std::array<std::uint8_t, kAdxlPacketSize> packet;
    adxl_serialize_into(t, packet);
    return {packet.begin(), packet.end()};
}

std::optional<AdxlTiming> AdxlDeserializer::feed(std::uint8_t byte, double t) {
    if (len_ == 0 && byte != kAdxlSync) {
        ++resyncs_;
        return std::nullopt;
    }
    buf_[len_++] = byte;
    if (len_ < kAdxlPacketSize) return std::nullopt;

    AdxlTiming out;
    const bool ok = sum8(buf_.data(), kAdxlPacketSize - 1) == buf_.back();
    if (ok) {
        out.seq = buf_[1];
        out.t1x = get_u24le(&buf_[2]);
        out.t1y = get_u24le(&buf_[5]);
        out.t2 = get_u24le(&buf_[8]);
        out.t = t;
        len_ = 0;
        return out;
    }
    ++bad_checksum_;
    // Resynchronize: search for the next sync byte inside the buffer and
    // slide the remainder to the front.
    auto next = std::find(buf_.begin() + 1, buf_.end(), kAdxlSync);
    len_ = static_cast<std::size_t>(buf_.end() - next);
    std::copy(next, buf_.end(), buf_.begin());
    return std::nullopt;
}

}  // namespace ob::comm
