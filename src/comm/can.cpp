#include "comm/can.hpp"

#include <algorithm>
#include <stdexcept>

namespace ob::comm {

std::uint16_t can_crc15(std::span<const std::uint8_t> bits) {
    // CRC-15/CAN: x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1.
    constexpr std::uint16_t kPoly = 0x4599;
    std::uint16_t crc = 0;
    for (const bool bit : bits) {
        const bool crc_nxt = bit != (((crc >> 14) & 1) != 0);
        crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
        if (crc_nxt) crc ^= kPoly;
    }
    return crc;
}

std::vector<std::uint8_t> can_frame_bits(const CanFrame& f) {
    if (!f.valid()) throw std::invalid_argument("can_frame_bits: invalid frame");
    std::vector<std::uint8_t> bits;
    bits.reserve(19 + 8u * f.dlc);
    bits.push_back(false);  // SOF (dominant)
    for (int i = 10; i >= 0; --i) bits.push_back(((f.id >> i) & 1) != 0);
    bits.push_back(false);  // RTR: data frame
    bits.push_back(false);  // IDE: standard identifier
    bits.push_back(false);  // r0
    for (int i = 3; i >= 0; --i) bits.push_back(((f.dlc >> i) & 1) != 0);
    for (std::uint8_t b = 0; b < f.dlc; ++b)
        for (int i = 7; i >= 0; --i) bits.push_back(((f.data[b] >> i) & 1) != 0);
    return bits;
}

std::size_t can_stuff_bits(std::span<const std::uint8_t> bits) {
    // A stuff bit (complement) is inserted after every 5 consecutive equal
    // bits; the inserted bit participates in subsequent run counting.
    std::size_t stuffed = 0;
    int run = 0;
    bool last = true;  // bus idle is recessive (1); SOF breaks it
    bool first = true;
    for (bool b : bits) {
        if (!first && b == last) {
            ++run;
        } else {
            run = 1;
            last = b;
        }
        first = false;
        if (run == 5) {
            ++stuffed;
            last = !last;  // the stuff bit itself
            run = 1;
        }
    }
    return stuffed;
}

std::size_t can_wire_bits(const CanFrame& f) {
    auto bits = can_frame_bits(f);
    const std::uint16_t crc = can_crc15(bits);
    for (int i = 14; i >= 0; --i) bits.push_back(((crc >> i) & 1) != 0);
    const std::size_t stuffed = can_stuff_bits(bits);
    // Stuffed region + CRC delimiter + ACK slot/delimiter + EOF(7) + IFS(3).
    return bits.size() + stuffed + 1 + 2 + 7 + 3;
}

void CanBus::send(const CanFrame& frame, double t_request) {
    if (!frame.valid()) throw std::invalid_argument("CanBus::send: invalid frame");
    queue_.push_back({frame, t_request});
}

void CanBus::advance_to(double t) {
    for (;;) {
        // Find the earliest time any queued frame could start.
        double t_start = busy_until_;
        double earliest_request = -1.0;
        for (const auto& p : queue_) {
            if (earliest_request < 0.0 || p.t_request < earliest_request)
                earliest_request = p.t_request;
        }
        if (queue_.empty()) return;
        t_start = std::max(t_start, earliest_request);
        if (t_start >= t) return;

        // Arbitration: among frames requested by t_start, lowest ID wins.
        std::size_t winner = queue_.size();
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            if (queue_[i].t_request > t_start) continue;
            if (winner == queue_.size() ||
                queue_[i].frame.id < queue_[winner].frame.id)
                winner = i;
        }
        if (winner == queue_.size()) return;  // nothing ready yet

        const Pending p = queue_[winner];
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(winner));
        const double duration =
            static_cast<double>(can_wire_bits(p.frame)) / bitrate_;
        const double t_done = t_start + duration;
        if (t_done > t) {
            // Frame would finish after the horizon; put it back and stop.
            queue_.push_back(p);
            return;
        }
        busy_until_ = t_done;
        max_latency_ = std::max(max_latency_, t_done - p.t_request);
        for (const auto& cb : receivers_) cb(p.frame, t_done);
    }
}

}  // namespace ob::comm
