#include "comm/can.hpp"

#include <algorithm>
#include <stdexcept>

namespace ob::comm {

namespace {

// CRC-15/CAN: x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1.
constexpr std::uint16_t kPoly = 0x4599;

/// Feeds fn(bool) every SOF..data bit of the frame, MSB-first — the same
/// sequence `can_frame_bits` materializes, without the vector.
template <typename Fn>
void walk_frame_bits(const CanFrame& f, Fn&& fn) {
    fn(false);  // SOF (dominant)
    for (int i = 10; i >= 0; --i) fn(((f.id >> i) & 1) != 0);
    fn(false);  // RTR: data frame
    fn(false);  // IDE: standard identifier
    fn(false);  // r0
    for (int i = 3; i >= 0; --i) fn(((f.dlc >> i) & 1) != 0);
    for (std::uint8_t b = 0; b < f.dlc; ++b)
        for (int i = 7; i >= 0; --i) fn(((f.data[b] >> i) & 1) != 0);
}

/// Incremental CRC-15, bit-for-bit identical to `can_crc15`.
struct Crc15 {
    std::uint16_t crc = 0;
    void feed(bool bit) {
        const bool crc_nxt = bit != (((crc >> 14) & 1) != 0);
        crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
        if (crc_nxt) crc ^= kPoly;
    }
};

/// Incremental stuff-bit counter, state-for-state identical to
/// `can_stuff_bits` (the inserted stuff bit participates in later runs).
struct StuffCounter {
    std::size_t stuffed = 0;
    int run = 0;
    bool last = true;  // bus idle is recessive (1); SOF breaks it
    bool first = true;
    void feed(bool b) {
        if (!first && b == last) {
            ++run;
        } else {
            run = 1;
            last = b;
        }
        first = false;
        if (run == 5) {
            ++stuffed;
            last = !last;  // the stuff bit itself
            run = 1;
        }
    }
};

// --- Table-driven fast path --------------------------------------------------
//
// The send path computes CRC-15 and stuff-bit counts thousands of times per
// second; walking 83..98 bits with a branchy per-bit loop costs ~0.5 us per
// frame. Instead the covered bits are packed MSB-first into a small stack
// buffer once, then both the CRC and the stuffing scan advance a whole byte
// per step through constexpr-built lookup tables. The tables are generated
// from the same per-bit recurrences as `Crc15`/`StuffCounter`, so results
// are identical by construction (cross-checked in tests/comm_hotpath_test).

/// Byte-at-a-time CRC-15 table: T[x] is the register after feeding byte x
/// into a zeroed register.
constexpr std::array<std::uint16_t, 256> make_crc15_table() {
    std::array<std::uint16_t, 256> table{};
    for (unsigned byte = 0; byte < 256; ++byte) {
        std::uint16_t crc = 0;
        for (int i = 7; i >= 0; --i) {
            const bool bit = ((byte >> i) & 1u) != 0;
            const bool crc_nxt = bit != (((crc >> 14) & 1) != 0);
            crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
            if (crc_nxt) crc ^= kPoly;
        }
        table[byte] = crc;
    }
    return table;
}
constexpr auto kCrc15Table = make_crc15_table();

[[nodiscard]] constexpr std::uint16_t crc15_feed_byte(std::uint16_t crc,
                                                      std::uint8_t byte) {
    return static_cast<std::uint16_t>(
        ((crc << 8) & 0x7FFF) ^
        kCrc15Table[((crc >> 7) & 0xFF) ^ byte]);
}

/// Stuffing state after at least one bit: (last_bit, run 1..4) packed as
/// last*4 + (run-1). The table advances one byte and reports how many
/// stuff bits the byte inserted.
struct StuffStep {
    std::uint8_t next = 0;
    std::uint8_t added = 0;
};
constexpr std::array<std::array<StuffStep, 256>, 8> make_stuff_table() {
    std::array<std::array<StuffStep, 256>, 8> table{};
    for (int s = 0; s < 8; ++s) {
        for (unsigned byte = 0; byte < 256; ++byte) {
            bool last = (s >> 2) != 0;
            int run = (s & 3) + 1;
            std::uint8_t added = 0;
            for (int i = 7; i >= 0; --i) {
                const bool b = ((byte >> i) & 1u) != 0;
                if (b == last) {
                    ++run;
                } else {
                    run = 1;
                    last = b;
                }
                if (run == 5) {
                    ++added;
                    last = !last;
                    run = 1;
                }
            }
            table[static_cast<std::size_t>(s)][byte] = {
                static_cast<std::uint8_t>((last ? 4 : 0) | (run - 1)), added};
        }
    }
    return table;
}
constexpr auto kStuffTable = make_stuff_table();

/// The frame's covered bits (SOF..data, later CRC) packed MSB-first.
/// 19 header bits + 64 data bits + 15 CRC bits = 98 bits -> 13 bytes.
struct PackedBits {
    std::array<std::uint8_t, 13> bytes{};
    std::size_t nbytes = 0;   ///< complete bytes emitted
    std::uint32_t acc = 0;    ///< partial-byte accumulator
    int accbits = 0;

    void push(std::uint32_t value, int width) {
        acc = (acc << width) | value;
        accbits += width;
        while (accbits >= 8) {
            bytes[nbytes++] = static_cast<std::uint8_t>(acc >> (accbits - 8));
            accbits -= 8;
        }
    }
};

/// Pack SOF..data: header value is [SOF=0, id(11), RTR=0, IDE=0, r0=0,
/// dlc(4)] = (id << 7) | dlc over 19 bits. Leaves 3 bits in the
/// accumulator (19 + 8*dlc ≡ 3 mod 8).
void pack_frame(const CanFrame& f, PackedBits& p) {
    p.push((static_cast<std::uint32_t>(f.id) << 7) | f.dlc, 19);
    for (std::uint8_t b = 0; b < f.dlc; ++b) p.push(f.data[b], 8);
}

/// CRC over the packed SOF..data bits: whole bytes through the table, the
/// 3-bit tail bitwise.
[[nodiscard]] std::uint16_t crc15_of_packed_frame(const PackedBits& p) {
    std::uint16_t crc = 0;
    for (std::size_t i = 0; i < p.nbytes; ++i)
        crc = crc15_feed_byte(crc, p.bytes[i]);
    Crc15 tail{crc};
    for (int i = p.accbits - 1; i >= 0; --i)
        tail.feed(((p.acc >> i) & 1u) != 0);
    return tail.crc;
}

}  // namespace

std::uint16_t can_crc15(std::span<const std::uint8_t> bits) {
    Crc15 crc;
    for (const bool bit : bits) crc.feed(bit);
    return crc.crc;
}

std::uint16_t can_frame_crc15(const CanFrame& f) {
    if (!f.valid())
        throw std::invalid_argument("can_frame_crc15: invalid frame");
    PackedBits p;
    pack_frame(f, p);
    return crc15_of_packed_frame(p);
}

std::vector<std::uint8_t> can_frame_bits(const CanFrame& f) {
    if (!f.valid()) throw std::invalid_argument("can_frame_bits: invalid frame");
    std::vector<std::uint8_t> bits;
    bits.reserve(19 + 8u * f.dlc);
    walk_frame_bits(f, [&bits](bool b) { bits.push_back(b); });
    return bits;
}

std::size_t can_stuff_bits(std::span<const std::uint8_t> bits) {
    StuffCounter sc;
    for (const bool b : bits) sc.feed(b);
    return sc.stuffed;
}

namespace {

/// Wire-bit count of a packed SOF..data+CRC stream: count stuffing a byte
/// at a time — the exact stuffed region the wire carries — then add the
/// unstuffed framing fields.
[[nodiscard]] std::size_t wire_bits_of_packed(const PackedBits& p,
                                              std::uint8_t dlc) {
    // Byte 0 bitwise (establishes the first-bit stuffing state), the rest
    // through the state table, the 2-bit tail bitwise again.
    StuffCounter sc;
    for (int i = 7; i >= 0; --i) sc.feed(((p.bytes[0] >> i) & 1u) != 0);
    std::size_t stuffed = sc.stuffed;
    auto state = static_cast<std::uint8_t>((sc.last ? 4 : 0) | (sc.run - 1));
    for (std::size_t i = 1; i < p.nbytes; ++i) {
        const StuffStep step = kStuffTable[state][p.bytes[i]];
        stuffed += step.added;
        state = step.next;
    }
    StuffCounter tail;
    tail.run = (state & 3) + 1;
    tail.last = (state >> 2) != 0;
    tail.first = false;
    for (int i = p.accbits - 1; i >= 0; --i)
        tail.feed(((p.acc >> i) & 1u) != 0);
    stuffed += tail.stuffed;

    const std::size_t data_bits = 19u + 8u * dlc + 15u;
    // Stuffed region + CRC delimiter + ACK slot/delimiter + EOF(7) + IFS(3).
    return data_bits + stuffed + 1 + 2 + 7 + 3;
}

}  // namespace

std::size_t can_wire_bits(const CanFrame& f) {
    if (!f.valid()) throw std::invalid_argument("can_wire_bits: invalid frame");
    // Pack SOF..data once, run the table-driven CRC over it, extend the
    // packed stream with the 15 CRC bits, then count the stuffed region.
    PackedBits p;
    pack_frame(f, p);
    const std::uint16_t crc = crc15_of_packed_frame(p);
    p.push(crc, 15);
    return wire_bits_of_packed(p, f.dlc);
}

CanWireInfo can_wire_info(const CanFrame& f) {
    if (!f.valid()) throw std::invalid_argument("can_wire_info: invalid frame");
    PackedBits p;
    pack_frame(f, p);
    const std::uint16_t crc = crc15_of_packed_frame(p);
    p.push(crc, 15);
    return {wire_bits_of_packed(p, f.dlc), crc};
}

std::size_t CanBus::cached_wire_bits(const CanFrame& f) {
    // FNV-1a over the covered frame fields picks the cache slot.
    std::uint32_t h = 2166136261u;
    const auto mix = [&h](std::uint8_t byte) {
        h ^= byte;
        h *= 16777619u;
    };
    mix(static_cast<std::uint8_t>(f.id >> 8));
    mix(static_cast<std::uint8_t>(f.id & 0xFF));
    mix(f.dlc);
    for (std::uint8_t i = 0; i < f.dlc; ++i) mix(f.data[i]);
    WireBitsEntry& e = wire_cache_[h & (wire_cache_.size() - 1)];
    if (!e.valid || !(e.frame == f)) {
        e.frame = f;
        e.bits = can_wire_bits(f);
        e.valid = true;
    }
    return e.bits;
}

void CanBus::send(const CanFrame& frame, double t_request) {
    if (!frame.valid()) throw std::invalid_argument("CanBus::send: invalid frame");
    const std::uint64_t index = frame_index_++;
    bool lost = false;
    if (faults_enabled_) {
        if (burst_remaining_ > 0) {
            lost = true;
            --burst_remaining_;
        } else if (util::CounterRng(faults_.seed, index)
                       .chance(faults_.burst_probability)) {
            lost = true;
            burst_remaining_ =
                faults_.burst_frames > 0 ? faults_.burst_frames - 1 : 0;
        }
        if (lost) ++frames_lost_;
    }
    queue_.push_back({frame, t_request, cached_wire_bits(frame), lost});
}

void CanBus::advance_to(double t) {
    for (;;) {
        if (queue_.empty()) return;

        // Find the earliest time any queued frame could start.
        double earliest_request = queue_[0].t_request;
        for (std::size_t i = 1; i < queue_.size(); ++i)
            earliest_request = std::min(earliest_request, queue_[i].t_request);
        const double t_start = std::max(busy_until_, earliest_request);
        if (t_start >= t) return;

        // Arbitration: among frames requested by t_start, lowest ID wins.
        std::size_t winner = queue_.size();
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            if (queue_[i].t_request > t_start) continue;
            if (winner == queue_.size() ||
                queue_[i].frame.id < queue_[winner].frame.id)
                winner = i;
        }
        if (winner == queue_.size()) return;  // nothing ready yet

        const Pending p = queue_[winner];
        queue_.erase(winner);
        const double duration = static_cast<double>(p.wire_bits) / bitrate_;
        const double t_done = t_start + duration;
        if (t_done > t) {
            // Frame would finish after the horizon; put it back and stop.
            queue_.push_back(p);
            return;
        }
        busy_until_ = t_done;
        max_latency_ = std::max(max_latency_, t_done - p.t_request);
        if (p.lost) continue;  // wire time consumed, never delivered
        if (direct_fn_ != nullptr) direct_fn_(direct_ctx_, p.frame, t_done);
        for (const auto& cb : receivers_) cb(p.frame, t_done);
    }
}

}  // namespace ob::comm
