#pragma once

#include <cstdint>

#include "softfloat/softfloat.hpp"

namespace ob::softfloat {

/// IEEE-754 binary64 value carried as raw bits (companion to F32; §10 of
/// the paper: "as a result of the dynamic range of the Kalman filter, it
/// was necessary to use floating-point values for all intermediate
/// stages" — double precision is what a desktop port of the same filter
/// uses, so the emulation library covers it too).
struct F64 {
    std::uint64_t bits = 0;

    friend constexpr bool operator==(F64 a, F64 b) = default;

    [[nodiscard]] constexpr bool sign() const { return (bits >> 63) != 0; }
    [[nodiscard]] constexpr std::uint32_t exponent() const {
        return static_cast<std::uint32_t>((bits >> 52) & 0x7FF);
    }
    [[nodiscard]] constexpr std::uint64_t fraction() const {
        return bits & 0x000FFFFFFFFFFFFFull;
    }
    [[nodiscard]] constexpr bool is_nan() const {
        return exponent() == 0x7FF && fraction() != 0;
    }
    [[nodiscard]] constexpr bool is_signaling_nan() const {
        return is_nan() && (bits & 0x0008000000000000ull) == 0;
    }
    [[nodiscard]] constexpr bool is_inf() const {
        return exponent() == 0x7FF && fraction() == 0;
    }
    [[nodiscard]] constexpr bool is_zero() const {
        return (bits & 0x7FFFFFFFFFFFFFFFull) == 0;
    }
    [[nodiscard]] constexpr bool is_subnormal() const {
        return exponent() == 0 && fraction() != 0;
    }

    [[nodiscard]] static constexpr F64 zero(bool negative = false) {
        return F64{negative ? 0x8000000000000000ull : 0ull};
    }
    [[nodiscard]] static constexpr F64 one() {
        return F64{0x3FF0000000000000ull};
    }
    [[nodiscard]] static constexpr F64 inf(bool negative = false) {
        return F64{negative ? 0xFFF0000000000000ull : 0x7FF0000000000000ull};
    }
    [[nodiscard]] static constexpr F64 quiet_nan() {
        return F64{0xFFF8000000000000ull};
    }
};

[[nodiscard]] F64 from_host(double d);
[[nodiscard]] double to_host(F64 a);

// Arithmetic.
[[nodiscard]] F64 add(F64 a, F64 b, Context& ctx);
[[nodiscard]] F64 sub(F64 a, F64 b, Context& ctx);
[[nodiscard]] F64 mul(F64 a, F64 b, Context& ctx);
[[nodiscard]] F64 div(F64 a, F64 b, Context& ctx);
[[nodiscard]] F64 sqrt(F64 a, Context& ctx);
[[nodiscard]] constexpr F64 neg(F64 a) {
    return F64{a.bits ^ 0x8000000000000000ull};
}
[[nodiscard]] constexpr F64 abs(F64 a) {
    return F64{a.bits & 0x7FFFFFFFFFFFFFFFull};
}

// Comparisons (same quiet/signaling split as the F32 set).
[[nodiscard]] bool eq(F64 a, F64 b, Context& ctx);
[[nodiscard]] bool lt(F64 a, F64 b, Context& ctx);
[[nodiscard]] bool le(F64 a, F64 b, Context& ctx);

// Conversions.
[[nodiscard]] F64 from_i32_f64(std::int32_t v);  // always exact
[[nodiscard]] std::int32_t to_i32(F64 a, Context& ctx);
/// Exact widening.
[[nodiscard]] F64 f32_to_f64(F32 a, Context& ctx);
/// Narrowing with rounding per ctx.
[[nodiscard]] F32 f64_to_f32(F64 a, Context& ctx);

}  // namespace ob::softfloat
