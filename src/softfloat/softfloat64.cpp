#include "softfloat/softfloat64.hpp"

#include <bit>
#include <cstring>

#include "softfloat/internal.hpp"

// IEEE-754 binary64, same Berkeley structure as the binary32 unit.
// Working-significand convention: a `zSig` passed to round_and_pack64 is a
// 63-bit quantity with its MSB at bit 62 and ten rounding bits at the
// bottom; the represented value is zSig/2^62 * 2^(zExp+1-1023).

namespace ob::softfloat {
namespace {

__extension__ typedef unsigned __int128 u128;

constexpr std::uint64_t kSignMask64 = 0x8000000000000000ull;
constexpr std::uint64_t kHiddenBit64 = 0x0010000000000000ull;

using detail::shift_right_jam64;

[[nodiscard]] std::uint64_t pack64(bool sign, std::int32_t exp,
                                   std::uint64_t sig) {
    return (sign ? kSignMask64 : 0ull) +
           (static_cast<std::uint64_t>(exp) << 52) + sig;
}

struct Normalized64 {
    std::int32_t exp;
    std::uint64_t sig;
};

[[nodiscard]] Normalized64 normalize_subnormal64(std::uint64_t frac) {
    const int shift = std::countl_zero(frac) - 11;
    return {1 - shift, frac << shift};
}

[[nodiscard]] F64 propagate_nan64(F64 a, F64 b, Context& ctx) {
    if (a.is_signaling_nan() || b.is_signaling_nan()) ctx.raise(kInvalid);
    return F64::quiet_nan();
}

[[nodiscard]] F64 round_and_pack64(bool sign, std::int32_t exp,
                                   std::uint64_t sig, Context& ctx) {
    const bool nearest = ctx.rounding == Round::kNearestEven;
    std::uint64_t increment = 0x200;
    if (!nearest) {
        if (ctx.rounding == Round::kTowardZero) {
            increment = 0;
        } else if (ctx.rounding == Round::kDown) {
            increment = sign ? 0x3FF : 0;
        } else {  // Round::kUp
            increment = sign ? 0 : 0x3FF;
        }
    }
    std::uint64_t round_bits = sig & 0x3FF;

    if (exp >= 0x7FD) {
        if (exp > 0x7FD ||
            (exp == 0x7FD &&
             static_cast<std::int64_t>(sig + increment) < 0)) {
            ctx.raise(kOverflow | kInexact);
            const std::uint64_t inf_bits = pack64(sign, 0x7FF, 0);
            return F64{inf_bits - (increment == 0 ? 1ull : 0ull)};
        }
    }
    if (exp < 0) {
        sig = shift_right_jam64(sig, -exp);
        exp = 0;
        round_bits = sig & 0x3FF;
        if (round_bits != 0) ctx.raise(kUnderflow);  // tiny (pre-round) + inexact
    }
    if (round_bits != 0) ctx.raise(kInexact);
    sig = (sig + increment) >> 10;
    if (nearest && round_bits == 0x200) sig &= ~1ull;  // ties to even
    if (sig == 0) exp = 0;
    return F64{pack64(sign, exp, sig)};
}

[[nodiscard]] F64 normalize_round_and_pack64(bool sign, std::int32_t exp,
                                             std::uint64_t sig, Context& ctx) {
    const int shift = std::countl_zero(sig) - 1;
    return round_and_pack64(sign, exp - shift, sig << shift, ctx);
}

/// Magnitude addition, significands scaled by 2^9 (hidden bit 61).
[[nodiscard]] F64 add_sigs64(F64 a, F64 b, bool z_sign, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::int32_t b_exp = static_cast<std::int32_t>(b.exponent());
    std::uint64_t a_sig = a.fraction() << 9;
    std::uint64_t b_sig = b.fraction() << 9;
    const std::int32_t exp_diff = a_exp - b_exp;
    std::int32_t z_exp;
    std::uint64_t z_sig;
    constexpr std::uint64_t kHidden9 = kHiddenBit64 << 9;

    if (exp_diff > 0) {
        if (a_exp == 0x7FF) {
            if (a.fraction() != 0) return propagate_nan64(a, b, ctx);
            return F64::inf(z_sign);
        }
        std::int32_t shift = exp_diff;
        if (b_exp == 0) {
            --shift;
        } else {
            b_sig |= kHidden9;
        }
        b_sig = shift_right_jam64(b_sig, shift);
        z_exp = a_exp;
    } else if (exp_diff < 0) {
        if (b_exp == 0x7FF) {
            if (b.fraction() != 0) return propagate_nan64(a, b, ctx);
            return F64::inf(z_sign);
        }
        std::int32_t shift = -exp_diff;
        if (a_exp == 0) {
            --shift;
        } else {
            a_sig |= kHidden9;
        }
        a_sig = shift_right_jam64(a_sig, shift);
        z_exp = b_exp;
    } else {
        if (a_exp == 0x7FF) {
            if (a.fraction() != 0 || b.fraction() != 0)
                return propagate_nan64(a, b, ctx);
            return F64::inf(z_sign);
        }
        if (a_exp == 0) return F64{pack64(z_sign, 0, (a_sig + b_sig) >> 9)};
        z_sig = (kHidden9 << 1) + a_sig + b_sig;
        z_exp = a_exp;
        return round_and_pack64(z_sign, z_exp, z_sig, ctx);
    }
    a_sig |= kHidden9;
    z_sig = (a_sig + b_sig) << 1;
    --z_exp;
    if (static_cast<std::int64_t>(z_sig) < 0) {
        z_sig = a_sig + b_sig;
        ++z_exp;
    }
    return round_and_pack64(z_sign, z_exp, z_sig, ctx);
}

/// Magnitude subtraction, significands scaled by 2^10 (hidden bit 62).
[[nodiscard]] F64 sub_sigs64(F64 a, F64 b, bool z_sign, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::int32_t b_exp = static_cast<std::int32_t>(b.exponent());
    std::uint64_t a_sig = a.fraction() << 10;
    std::uint64_t b_sig = b.fraction() << 10;
    const std::int32_t exp_diff = a_exp - b_exp;
    constexpr std::uint64_t kHidden10 = kHiddenBit64 << 10;

    if (exp_diff == 0) {
        if (a_exp == 0x7FF) {
            if (a.fraction() != 0 || b.fraction() != 0)
                return propagate_nan64(a, b, ctx);
            ctx.raise(kInvalid);
            return F64::quiet_nan();
        }
        if (a_exp == 0) {
            a_exp = 1;
            b_exp = 1;
        }
        if (b_sig < a_sig)
            return normalize_round_and_pack64(z_sign, a_exp - 1, a_sig - b_sig,
                                              ctx);
        if (a_sig < b_sig)
            return normalize_round_and_pack64(!z_sign, b_exp - 1, b_sig - a_sig,
                                              ctx);
        return F64::zero(ctx.rounding == Round::kDown);
    }
    if (exp_diff > 0) {
        if (a_exp == 0x7FF) {
            if (a.fraction() != 0) return propagate_nan64(a, b, ctx);
            return F64::inf(z_sign);
        }
        std::int32_t shift = exp_diff;
        if (b_exp == 0) {
            --shift;
        } else {
            b_sig |= kHidden10;
        }
        b_sig = shift_right_jam64(b_sig, shift);
        a_sig |= kHidden10;
        return normalize_round_and_pack64(z_sign, a_exp - 1, a_sig - b_sig,
                                          ctx);
    }
    if (b_exp == 0x7FF) {
        if (b.fraction() != 0) return propagate_nan64(a, b, ctx);
        return F64::inf(!z_sign);
    }
    std::int32_t shift = -exp_diff;
    if (a_exp == 0) {
        --shift;
    } else {
        a_sig |= kHidden10;
    }
    a_sig = shift_right_jam64(a_sig, shift);
    b_sig |= kHidden10;
    return normalize_round_and_pack64(!z_sign, b_exp - 1, b_sig - a_sig, ctx);
}

/// Integer square root of a 128-bit value (floor), digit-by-digit.
[[nodiscard]] std::uint64_t isqrt128(u128 a) {
    u128 rem = 0;
    u128 root = 0;
    for (int i = 0; i < 64; ++i) {
        root <<= 1;
        rem = (rem << 2) | (a >> 126);
        a <<= 2;
        if (root < rem) {
            rem -= root | 1;
            root += 2;
        }
    }
    return static_cast<std::uint64_t>(root >> 1);
}

}  // namespace

F64 from_host(double d) {
    std::uint64_t bits;
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::memcpy(&bits, &d, sizeof bits);
    return F64{bits};
}

double to_host(F64 a) {
    double d;
    std::memcpy(&d, &a.bits, sizeof d);
    return d;
}

F64 add(F64 a, F64 b, Context& ctx) {
    if (a.sign() == b.sign()) return add_sigs64(a, b, a.sign(), ctx);
    return sub_sigs64(a, b, a.sign(), ctx);
}

F64 sub(F64 a, F64 b, Context& ctx) {
    if (a.sign() == b.sign()) return sub_sigs64(a, b, a.sign(), ctx);
    return add_sigs64(a, b, a.sign(), ctx);
}

F64 mul(F64 a, F64 b, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::int32_t b_exp = static_cast<std::int32_t>(b.exponent());
    std::uint64_t a_sig = a.fraction();
    std::uint64_t b_sig = b.fraction();
    const bool z_sign = a.sign() != b.sign();

    if (a_exp == 0x7FF) {
        if (a_sig != 0 || (b_exp == 0x7FF && b_sig != 0))
            return propagate_nan64(a, b, ctx);
        if ((static_cast<std::uint32_t>(b_exp) | b_sig) == 0) {
            ctx.raise(kInvalid);
            return F64::quiet_nan();
        }
        return F64::inf(z_sign);
    }
    if (b_exp == 0x7FF) {
        if (b_sig != 0) return propagate_nan64(a, b, ctx);
        if ((static_cast<std::uint32_t>(a_exp) | a_sig) == 0) {
            ctx.raise(kInvalid);
            return F64::quiet_nan();
        }
        return F64::inf(z_sign);
    }
    if (a_exp == 0) {
        if (a_sig == 0) return F64::zero(z_sign);
        const auto n = normalize_subnormal64(a_sig);
        a_exp = n.exp;
        a_sig = n.sig;
    }
    if (b_exp == 0) {
        if (b_sig == 0) return F64::zero(z_sign);
        const auto n = normalize_subnormal64(b_sig);
        b_exp = n.exp;
        b_sig = n.sig;
    }
    std::int32_t z_exp = a_exp + b_exp - 0x3FF;
    a_sig = (a_sig | kHiddenBit64) << 10;
    b_sig = (b_sig | kHiddenBit64) << 11;
    const u128 product = static_cast<u128>(a_sig) * b_sig;
    std::uint64_t z_sig = static_cast<std::uint64_t>(product >> 64);
    if (static_cast<std::uint64_t>(product) != 0) z_sig |= 1;  // sticky
    if (static_cast<std::int64_t>(z_sig << 1) >= 0) {
        z_sig <<= 1;
        --z_exp;
    }
    return round_and_pack64(z_sign, z_exp, z_sig, ctx);
}

F64 div(F64 a, F64 b, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::int32_t b_exp = static_cast<std::int32_t>(b.exponent());
    std::uint64_t a_sig = a.fraction();
    std::uint64_t b_sig = b.fraction();
    const bool z_sign = a.sign() != b.sign();

    if (a_exp == 0x7FF) {
        if (a_sig != 0) return propagate_nan64(a, b, ctx);
        if (b_exp == 0x7FF) {
            if (b_sig != 0) return propagate_nan64(a, b, ctx);
            ctx.raise(kInvalid);
            return F64::quiet_nan();
        }
        return F64::inf(z_sign);
    }
    if (b_exp == 0x7FF) {
        if (b_sig != 0) return propagate_nan64(a, b, ctx);
        return F64::zero(z_sign);
    }
    if (b_exp == 0) {
        if (b_sig == 0) {
            if ((static_cast<std::uint32_t>(a_exp) | a_sig) == 0) {
                ctx.raise(kInvalid);
                return F64::quiet_nan();
            }
            ctx.raise(kDivByZero);
            return F64::inf(z_sign);
        }
        const auto n = normalize_subnormal64(b_sig);
        b_exp = n.exp;
        b_sig = n.sig;
    }
    if (a_exp == 0) {
        if (a_sig == 0) return F64::zero(z_sign);
        const auto n = normalize_subnormal64(a_sig);
        a_exp = n.exp;
        a_sig = n.sig;
    }
    std::int32_t z_exp = a_exp - b_exp + 0x3FD;
    a_sig = (a_sig | kHiddenBit64) << 10;
    b_sig = (b_sig | kHiddenBit64) << 11;
    if (b_sig <= a_sig + a_sig) {
        a_sig >>= 1;
        ++z_exp;
    }
    const u128 numerator = static_cast<u128>(a_sig) << 64;
    std::uint64_t z_sig = static_cast<std::uint64_t>(numerator / b_sig);
    if ((z_sig & 0x1FF) == 0) {
        const bool exact = static_cast<u128>(b_sig) * z_sig == numerator;
        z_sig |= exact ? 0ull : 1ull;
    }
    return round_and_pack64(z_sign, z_exp, z_sig, ctx);
}

F64 sqrt(F64 a, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::uint64_t a_sig = a.fraction();

    if (a_exp == 0x7FF) {
        if (a_sig != 0) return propagate_nan64(a, a, ctx);
        if (!a.sign()) return a;
        ctx.raise(kInvalid);
        return F64::quiet_nan();
    }
    if (a.sign()) {
        if ((static_cast<std::uint32_t>(a_exp) | a_sig) == 0) return a;  // -0
        ctx.raise(kInvalid);
        return F64::quiet_nan();
    }
    if (a_exp == 0) {
        if (a_sig == 0) return F64::zero(false);
        const auto n = normalize_subnormal64(a_sig);
        a_exp = n.exp;
        a_sig = n.sig;
    }
    // value = M * 2^(E-52); scale so the integer root's MSB lands at bit
    // 62: A = M << 72 (even E) or << 73 (odd E).
    const std::int32_t e = a_exp - 0x3FF;
    const u128 m = a_sig | kHiddenBit64;
    const int k = (e & 1) != 0 ? 73 : 72;
    const u128 big = m << k;
    std::uint64_t z_sig = isqrt128(big);
    if (static_cast<u128>(z_sig) * z_sig != big) z_sig |= 1;  // sticky
    const std::int32_t z_exp = (e >> 1) + 0x3FE;
    return round_and_pack64(false, z_exp, z_sig, ctx);
}

bool eq(F64 a, F64 b, Context& ctx) {
    if (a.is_nan() || b.is_nan()) {
        if (a.is_signaling_nan() || b.is_signaling_nan()) ctx.raise(kInvalid);
        return false;
    }
    return a.bits == b.bits || ((a.bits | b.bits) << 1) == 0;
}

bool lt(F64 a, F64 b, Context& ctx) {
    if (a.is_nan() || b.is_nan()) {
        ctx.raise(kInvalid);
        return false;
    }
    const bool a_sign = a.sign();
    const bool b_sign = b.sign();
    if (a_sign != b_sign) return a_sign && ((a.bits | b.bits) << 1) != 0;
    return a.bits != b.bits && (a_sign != (a.bits < b.bits));
}

bool le(F64 a, F64 b, Context& ctx) {
    if (a.is_nan() || b.is_nan()) {
        ctx.raise(kInvalid);
        return false;
    }
    const bool a_sign = a.sign();
    const bool b_sign = b.sign();
    if (a_sign != b_sign) return a_sign || ((a.bits | b.bits) << 1) == 0;
    return a.bits == b.bits || (a_sign != (a.bits < b.bits));
}

F64 from_i32_f64(std::int32_t v) {
    // Every int32 is exactly representable in binary64.
    if (v == 0) return F64::zero(false);
    const bool sign = v < 0;
    std::uint64_t mag =
        sign ? ~static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) + 1
             : static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    mag &= 0xFFFFFFFFull;
    // Left-align the hidden bit to position 52: value = (mag<<s)/2^52 *
    // 2^(52-s), so the pre-hidden-bit exponent field is 1074 - s.
    const int shift = std::countl_zero(mag) - 11;
    return F64{pack64(sign, 1074 - shift, mag << shift)};
}

std::int32_t to_i32(F64 a, Context& ctx) {
    const std::int32_t exp = static_cast<std::int32_t>(a.exponent());
    const std::uint64_t frac = a.fraction();
    if (exp == 0x7FF) {
        ctx.raise(kInvalid);
        if (frac != 0) return INT32_MAX;
        return a.sign() ? INT32_MIN : INT32_MAX;
    }
    if (exp >= 0x41E) {  // |a| >= 2^31
        if (a.sign() && exp == 0x41E && frac == 0) return INT32_MIN;
        ctx.raise(kInvalid);
        return a.sign() ? INT32_MIN : INT32_MAX;
    }
    std::uint64_t sig = frac;
    if (exp != 0) sig |= kHiddenBit64;
    // value = sig * 2^(exp-1075); Q7 magnitude = sig * 2^(exp-1068).
    const std::int32_t shift = 0x42C - exp;  // 1068 - exp (always > 0 here)
    const std::uint64_t q7 = shift_right_jam64(sig, shift);

    const std::uint32_t round_bits = static_cast<std::uint32_t>(q7 & 0x7F);
    std::uint64_t inc = 0;
    switch (ctx.rounding) {
        case Round::kNearestEven: inc = 0x40; break;
        case Round::kTowardZero: inc = 0; break;
        case Round::kDown: inc = a.sign() ? 0x7F : 0; break;
        case Round::kUp: inc = a.sign() ? 0 : 0x7F; break;
    }
    std::uint64_t mag = (q7 + inc) >> 7;
    if (ctx.rounding == Round::kNearestEven && round_bits == 0x40)
        mag &= ~1ull;
    if (round_bits != 0) ctx.raise(kInexact);
    if (a.sign()) {
        if (mag > 0x80000000ull) {
            ctx.raise(kInvalid);
            return INT32_MIN;
        }
        return static_cast<std::int32_t>(-static_cast<std::int64_t>(mag));
    }
    if (mag > 0x7FFFFFFFull) {
        ctx.raise(kInvalid);
        return INT32_MAX;
    }
    return static_cast<std::int32_t>(mag);
}

F64 f32_to_f64(F32 a, Context& ctx) {
    std::int32_t exp = static_cast<std::int32_t>(a.exponent());
    std::uint32_t frac = a.fraction();
    if (exp == 0xFF) {
        if (frac != 0) {
            if (a.is_signaling_nan()) ctx.raise(kInvalid);
            return F64::quiet_nan();
        }
        return F64::inf(a.sign());
    }
    if (exp == 0) {
        if (frac == 0) return F64::zero(a.sign());
        // Subnormal f32 becomes a normal f64.
        const int shift = std::countl_zero(frac) - 8;
        exp = 1 - shift;
        frac = (frac << shift) & 0x007FFFFF;
    }
    return F64{pack64(a.sign(), exp + 0x380,  // 1023 - 127
                      static_cast<std::uint64_t>(frac) << 29)};
}

F32 f64_to_f32(F64 a, Context& ctx) {
    std::int32_t exp = static_cast<std::int32_t>(a.exponent());
    std::uint64_t frac = a.fraction();
    if (exp == 0x7FF) {
        if (frac != 0) {
            if (a.is_signaling_nan()) ctx.raise(kInvalid);
            return F32::quiet_nan();
        }
        return F32::inf(a.sign());
    }
    if (exp == 0) {
        if (frac == 0) return F32::zero(a.sign());
        const auto n = normalize_subnormal64(frac);
        exp = n.exp;
        frac = n.sig & (kHiddenBit64 - 1);
    }
    // Significand with hidden bit at 52 -> jam down to MSB position 30.
    const std::uint64_t sig64 = frac | kHiddenBit64;
    const auto sig32 =
        static_cast<std::uint32_t>(shift_right_jam64(sig64, 22));
    return detail::round_and_pack32(a.sign(), exp - 0x381, sig32, ctx);
}

}  // namespace ob::softfloat
