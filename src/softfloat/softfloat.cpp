#include "softfloat/softfloat.hpp"

#include <bit>
#include <cstring>

#include "softfloat/internal.hpp"

// IEEE-754 binary32 emulation in integer arithmetic, following the
// structure of Hauser's Berkeley Softfloat (the library the paper ran on
// the Sabre soft core): operands are unpacked to sign/exponent/significand,
// computed with explicit guard/round/sticky bits, then rounded and packed.
//
// Internal fixed-point convention (Berkeley's): a working significand
// `zSig` passed to round_and_pack() is a 31-bit quantity with its most
// significant bit at bit 30 and seven rounding bits at the bottom; the
// represented value is zSig/2^30 * 2^(zExp+1-127).

namespace ob::softfloat {
namespace {

constexpr std::uint32_t kSignMask = 0x80000000u;
constexpr std::uint32_t kFracMask = 0x007FFFFFu;
constexpr std::uint32_t kHiddenBit = 0x00800000u;

[[nodiscard]] std::uint32_t pack(bool sign, std::int32_t exp, std::uint32_t sig) {
    // The significand may carry its hidden bit (bit 23); that adds one to
    // the exponent field, which is exactly the IEEE encoding's behaviour.
    return (sign ? kSignMask : 0u) +
           (static_cast<std::uint32_t>(exp) << 23) + sig;
}

}  // namespace

namespace detail {

/// Right shift that ORs all shifted-out bits into the result LSB ("jamming"),
/// preserving inexactness information for rounding.
std::uint32_t shift_right_jam32(std::uint32_t a, std::int32_t count) {
    if (count == 0) return a;
    if (count < 32) {
        const std::uint32_t lost = a << ((32 - count) & 31);
        return (a >> count) | (lost != 0 ? 1u : 0u);
    }
    return a != 0 ? 1u : 0u;
}

std::uint64_t shift_right_jam64(std::uint64_t a, std::int32_t count) {
    if (count == 0) return a;
    if (count < 64) {
        const std::uint64_t lost = a << ((64 - count) & 63);
        return (a >> count) | (lost != 0 ? 1u : 0u);
    }
    return a != 0 ? 1u : 0u;
}

}  // namespace detail

namespace {

using detail::shift_right_jam32;
using detail::shift_right_jam64;

/// Normalize a subnormal fraction: returns the left shift applied so the
/// hidden-bit position (bit 23) is set, and the adjusted exponent.
struct Normalized {
    std::int32_t exp;
    std::uint32_t sig;
};

[[nodiscard]] Normalized normalize_subnormal(std::uint32_t frac) {
    const int shift = std::countl_zero(frac) - 8;
    return {1 - shift, frac << shift};
}

/// NaN propagation: any arithmetic involving a NaN produces the canonical
/// quiet NaN; signaling NaNs additionally raise the invalid flag.
[[nodiscard]] F32 propagate_nan(F32 a, F32 b, Context& ctx) {
    if (a.is_signaling_nan() || b.is_signaling_nan()) ctx.raise(kInvalid);
    return F32::quiet_nan();
}

}  // namespace

namespace detail {
/// Round `zSig` (31-bit, MSB at bit 30, 7 round bits) per the context mode
/// and pack the result, handling overflow to infinity and underflow to
/// subnormals/zero. Tininess is detected before rounding.
F32 round_and_pack32(bool sign, std::int32_t exp, std::uint32_t sig,
                     Context& ctx) {
    const bool nearest = ctx.rounding == Round::kNearestEven;
    std::uint32_t increment = 0x40;
    if (!nearest) {
        if (ctx.rounding == Round::kTowardZero) {
            increment = 0;
        } else if (ctx.rounding == Round::kDown) {
            increment = sign ? 0x7F : 0;
        } else {  // Round::kUp
            increment = sign ? 0 : 0x7F;
        }
    }
    std::uint32_t round_bits = sig & 0x7F;

    if (exp >= 0xFD) {
        if (exp > 0xFD ||
            (exp == 0xFD &&
             static_cast<std::int32_t>(sig + increment) < 0)) {
            ctx.raise(kOverflow | kInexact);
            const std::uint32_t inf_bits = pack(sign, 0xFF, 0);
            // Directed rounding away from infinity yields the max finite.
            return F32{inf_bits - (increment == 0 ? 1u : 0u)};
        }
    }
    if (exp < 0) {
        const bool tiny = true;  // tininess before rounding: exp < 0 is tiny
        sig = shift_right_jam32(sig, -exp);
        exp = 0;
        round_bits = sig & 0x7F;
        if (tiny && round_bits != 0) ctx.raise(kUnderflow);
    }
    if (round_bits != 0) ctx.raise(kInexact);
    sig = (sig + increment) >> 7;
    if (nearest && round_bits == 0x40) sig &= ~1u;  // ties to even
    if (sig == 0) exp = 0;
    return F32{pack(sign, exp, sig)};
}

}  // namespace detail

namespace {

using detail::round_and_pack32;
constexpr auto round_and_pack = [](bool sign, std::int32_t exp,
                                   std::uint32_t sig, Context& ctx) {
    return round_and_pack32(sign, exp, sig, ctx);
};

/// Left-normalize an arbitrary nonzero significand then round and pack.
[[nodiscard]] F32 normalize_round_and_pack(bool sign, std::int32_t exp,
                                           std::uint32_t sig, Context& ctx) {
    const int shift = std::countl_zero(sig) - 1;
    return round_and_pack(sign, exp - shift, sig << shift, ctx);
}

/// Magnitude addition of same-signed operands (Berkeley addFloat32Sigs).
/// Significands are scaled by 2^6 (hidden bit at 0x20000000).
[[nodiscard]] F32 add_sigs(F32 a, F32 b, bool z_sign, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::int32_t b_exp = static_cast<std::int32_t>(b.exponent());
    std::uint32_t a_sig = a.fraction() << 6;
    std::uint32_t b_sig = b.fraction() << 6;
    const std::int32_t exp_diff = a_exp - b_exp;
    std::int32_t z_exp;
    std::uint32_t z_sig;

    if (exp_diff > 0) {
        if (a_exp == 0xFF) {
            if (a.fraction() != 0) return propagate_nan(a, b, ctx);
            return F32::inf(z_sign);
        }
        std::int32_t shift = exp_diff;
        if (b_exp == 0) {
            --shift;  // subnormal: effective exponent is 1, no hidden bit
        } else {
            b_sig |= 0x20000000;
        }
        b_sig = shift_right_jam32(b_sig, shift);
        z_exp = a_exp;
    } else if (exp_diff < 0) {
        if (b_exp == 0xFF) {
            if (b.fraction() != 0) return propagate_nan(a, b, ctx);
            return F32::inf(z_sign);
        }
        std::int32_t shift = -exp_diff;
        if (a_exp == 0) {
            --shift;
        } else {
            a_sig |= 0x20000000;
        }
        a_sig = shift_right_jam32(a_sig, shift);
        z_exp = b_exp;
    } else {
        if (a_exp == 0xFF) {
            if (a.fraction() != 0 || b.fraction() != 0)
                return propagate_nan(a, b, ctx);
            return F32::inf(z_sign);
        }
        if (a_exp == 0) {
            // Both zero/subnormal: the sum is exact; a carry into bit 23
            // lands in the exponent field, which is the correct encoding.
            return F32{pack(z_sign, 0, (a_sig + b_sig) >> 6)};
        }
        z_sig = 0x40000000u + a_sig + b_sig;
        z_exp = a_exp;
        return round_and_pack(z_sign, z_exp, z_sig, ctx);
    }
    a_sig |= 0x20000000;
    z_sig = (a_sig + b_sig) << 1;
    --z_exp;
    if (static_cast<std::int32_t>(z_sig) < 0) {
        // Carry out of bit 30: undo the pre-shift.
        z_sig = a_sig + b_sig;
        ++z_exp;
    }
    return round_and_pack(z_sign, z_exp, z_sig, ctx);
}

/// Magnitude subtraction of opposite-signed operands (subFloat32Sigs).
/// Significands are scaled by 2^7 (hidden bit at 0x40000000).
[[nodiscard]] F32 sub_sigs(F32 a, F32 b, bool z_sign, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::int32_t b_exp = static_cast<std::int32_t>(b.exponent());
    std::uint32_t a_sig = a.fraction() << 7;
    std::uint32_t b_sig = b.fraction() << 7;
    std::int32_t exp_diff = a_exp - b_exp;

    if (exp_diff == 0) {
        if (a_exp == 0xFF) {
            if (a.fraction() != 0 || b.fraction() != 0)
                return propagate_nan(a, b, ctx);
            ctx.raise(kInvalid);  // inf - inf
            return F32::quiet_nan();
        }
        if (a_exp == 0) {
            a_exp = 1;
            b_exp = 1;
        }
        if (b_sig < a_sig) {
            return normalize_round_and_pack(z_sign, a_exp - 1, a_sig - b_sig, ctx);
        }
        if (a_sig < b_sig) {
            return normalize_round_and_pack(!z_sign, b_exp - 1, b_sig - a_sig, ctx);
        }
        // Exact zero: negative only when rounding toward -infinity.
        return F32::zero(ctx.rounding == Round::kDown);
    }
    if (exp_diff > 0) {
        if (a_exp == 0xFF) {
            if (a.fraction() != 0) return propagate_nan(a, b, ctx);
            return F32::inf(z_sign);
        }
        std::int32_t shift = exp_diff;
        if (b_exp == 0) {
            --shift;
        } else {
            b_sig |= 0x40000000;
        }
        b_sig = shift_right_jam32(b_sig, shift);
        a_sig |= 0x40000000;
        return normalize_round_and_pack(z_sign, a_exp - 1, a_sig - b_sig, ctx);
    }
    // b dominates
    if (b_exp == 0xFF) {
        if (b.fraction() != 0) return propagate_nan(a, b, ctx);
        return F32::inf(!z_sign);
    }
    std::int32_t shift = -exp_diff;
    if (a_exp == 0) {
        --shift;
    } else {
        a_sig |= 0x40000000;
    }
    a_sig = shift_right_jam32(a_sig, shift);
    b_sig |= 0x40000000;
    return normalize_round_and_pack(!z_sign, b_exp - 1, b_sig - a_sig, ctx);
}

/// Integer square root of a 64-bit value (floor), digit-by-digit.
[[nodiscard]] std::uint32_t isqrt64(std::uint64_t a) {
    std::uint64_t rem = 0;
    std::uint64_t root = 0;
    for (int i = 0; i < 32; ++i) {
        root <<= 1;
        rem = (rem << 2) | (a >> 62);
        a <<= 2;
        if (root < rem) {
            rem -= root | 1;
            root += 2;
        }
    }
    return static_cast<std::uint32_t>(root >> 1);
}

}  // namespace

F32 from_host(float f) {
    std::uint32_t bits;
    static_assert(sizeof(float) == sizeof(std::uint32_t));
    std::memcpy(&bits, &f, sizeof bits);
    return F32{bits};
}

float to_host(F32 a) {
    float f;
    std::memcpy(&f, &a.bits, sizeof f);
    return f;
}

F32 add(F32 a, F32 b, Context& ctx) {
    if (a.sign() == b.sign()) return add_sigs(a, b, a.sign(), ctx);
    return sub_sigs(a, b, a.sign(), ctx);
}

F32 sub(F32 a, F32 b, Context& ctx) {
    if (a.sign() == b.sign()) return sub_sigs(a, b, a.sign(), ctx);
    return add_sigs(a, b, a.sign(), ctx);
}

F32 mul(F32 a, F32 b, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::int32_t b_exp = static_cast<std::int32_t>(b.exponent());
    std::uint32_t a_sig = a.fraction();
    std::uint32_t b_sig = b.fraction();
    const bool z_sign = a.sign() != b.sign();

    if (a_exp == 0xFF) {
        if (a_sig != 0 || (b_exp == 0xFF && b_sig != 0))
            return propagate_nan(a, b, ctx);
        if ((static_cast<std::uint32_t>(b_exp) | b_sig) == 0) {
            ctx.raise(kInvalid);  // inf * 0
            return F32::quiet_nan();
        }
        return F32::inf(z_sign);
    }
    if (b_exp == 0xFF) {
        if (b_sig != 0) return propagate_nan(a, b, ctx);
        if ((static_cast<std::uint32_t>(a_exp) | a_sig) == 0) {
            ctx.raise(kInvalid);
            return F32::quiet_nan();
        }
        return F32::inf(z_sign);
    }
    if (a_exp == 0) {
        if (a_sig == 0) return F32::zero(z_sign);
        const auto n = normalize_subnormal(a_sig);
        a_exp = n.exp;
        a_sig = n.sig;
    }
    if (b_exp == 0) {
        if (b_sig == 0) return F32::zero(z_sign);
        const auto n = normalize_subnormal(b_sig);
        b_exp = n.exp;
        b_sig = n.sig;
    }
    std::int32_t z_exp = a_exp + b_exp - 0x7F;
    a_sig = (a_sig | kHiddenBit) << 7;
    b_sig = (b_sig | kHiddenBit) << 8;
    std::uint32_t z_sig = static_cast<std::uint32_t>(shift_right_jam64(
        static_cast<std::uint64_t>(a_sig) * b_sig, 32));
    if (static_cast<std::int32_t>(z_sig << 1) >= 0) {
        z_sig <<= 1;
        --z_exp;
    }
    return round_and_pack(z_sign, z_exp, z_sig, ctx);
}

F32 div(F32 a, F32 b, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::int32_t b_exp = static_cast<std::int32_t>(b.exponent());
    std::uint32_t a_sig = a.fraction();
    std::uint32_t b_sig = b.fraction();
    const bool z_sign = a.sign() != b.sign();

    if (a_exp == 0xFF) {
        if (a_sig != 0) return propagate_nan(a, b, ctx);
        if (b_exp == 0xFF) {
            if (b_sig != 0) return propagate_nan(a, b, ctx);
            ctx.raise(kInvalid);  // inf / inf
            return F32::quiet_nan();
        }
        return F32::inf(z_sign);
    }
    if (b_exp == 0xFF) {
        if (b_sig != 0) return propagate_nan(a, b, ctx);
        return F32::zero(z_sign);
    }
    if (b_exp == 0) {
        if (b_sig == 0) {
            if ((static_cast<std::uint32_t>(a_exp) | a_sig) == 0) {
                ctx.raise(kInvalid);  // 0 / 0
                return F32::quiet_nan();
            }
            ctx.raise(kDivByZero);
            return F32::inf(z_sign);
        }
        const auto n = normalize_subnormal(b_sig);
        b_exp = n.exp;
        b_sig = n.sig;
    }
    if (a_exp == 0) {
        if (a_sig == 0) return F32::zero(z_sign);
        const auto n = normalize_subnormal(a_sig);
        a_exp = n.exp;
        a_sig = n.sig;
    }
    std::int32_t z_exp = a_exp - b_exp + 0x7D;
    a_sig = (a_sig | kHiddenBit) << 7;
    b_sig = (b_sig | kHiddenBit) << 8;
    if (b_sig <= a_sig + a_sig) {
        a_sig >>= 1;
        ++z_exp;
    }
    std::uint32_t z_sig = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(a_sig) << 32) / b_sig);
    if ((z_sig & 0x3F) == 0) {
        const bool exact = static_cast<std::uint64_t>(b_sig) * z_sig ==
                           (static_cast<std::uint64_t>(a_sig) << 32);
        z_sig |= exact ? 0u : 1u;
    }
    return round_and_pack(z_sign, z_exp, z_sig, ctx);
}

F32 sqrt(F32 a, Context& ctx) {
    std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    std::uint32_t a_sig = a.fraction();

    if (a_exp == 0xFF) {
        if (a_sig != 0) return propagate_nan(a, a, ctx);
        if (!a.sign()) return a;  // sqrt(+inf) = +inf
        ctx.raise(kInvalid);
        return F32::quiet_nan();
    }
    if (a.sign()) {
        if ((static_cast<std::uint32_t>(a_exp) | a_sig) == 0) return a;  // -0
        ctx.raise(kInvalid);
        return F32::quiet_nan();
    }
    if (a_exp == 0) {
        if (a_sig == 0) return F32::zero(false);
        const auto n = normalize_subnormal(a_sig);
        a_exp = n.exp;
        a_sig = n.sig;
    }
    // value = M * 2^(E-23) with M the 24-bit significand. Scale M so the
    // integer square root lands with its MSB at bit 30 (the round_and_pack
    // convention): A = M << 37 for even E, M << 38 for odd E.
    const std::int32_t e = a_exp - 0x7F;
    const std::uint64_t m = a_sig | kHiddenBit;
    const int k = (e & 1) != 0 ? 38 : 37;
    const std::uint64_t big = m << k;
    std::uint32_t z_sig = isqrt64(big);
    if (static_cast<std::uint64_t>(z_sig) * z_sig != big) z_sig |= 1;  // sticky
    const std::int32_t z_exp = (e >> 1) + 0x7E;  // arithmetic shift: floor(e/2)
    return round_and_pack(false, z_exp, z_sig, ctx);
}

F32 round_to_int(F32 a, Context& ctx) {
    const std::int32_t a_exp = static_cast<std::int32_t>(a.exponent());
    if (a_exp >= 0x96) {  // |a| >= 2^23: already integral (or inf/NaN)
        if (a_exp == 0xFF && a.fraction() != 0) return propagate_nan(a, a, ctx);
        return a;
    }
    if (a_exp <= 0x7E) {  // |a| < 1
        if ((a.bits << 1) == 0) return a;  // +-0 stays exact
        ctx.raise(kInexact);
        const bool sign = a.sign();
        switch (ctx.rounding) {
            case Round::kNearestEven:
                if (a_exp == 0x7E && a.fraction() != 0)
                    return F32{pack(sign, 0x7F, 0)};  // +-1
                return F32::zero(sign);
            case Round::kTowardZero:
                return F32::zero(sign);
            case Round::kDown:
                return sign ? F32{0xBF800000u} : F32::zero(false);  // -1 or +0
            case Round::kUp:
                return sign ? F32::zero(true) : F32::one();  // -0 or +1
        }
        return F32::zero(sign);
    }
    const std::uint32_t last_bit = 1u << (0x96 - a_exp);
    const std::uint32_t round_mask = last_bit - 1;
    std::uint32_t z = a.bits;
    switch (ctx.rounding) {
        case Round::kNearestEven:
            z += last_bit >> 1;
            if ((z & round_mask) == 0) z &= ~last_bit;  // ties to even
            break;
        case Round::kTowardZero:
            break;
        case Round::kDown:
            if (a.sign()) z += round_mask;
            break;
        case Round::kUp:
            if (!a.sign()) z += round_mask;
            break;
    }
    z &= ~round_mask;
    if (z != a.bits) ctx.raise(kInexact);
    return F32{z};
}

bool eq(F32 a, F32 b, Context& ctx) {
    if (a.is_nan() || b.is_nan()) {
        if (a.is_signaling_nan() || b.is_signaling_nan()) ctx.raise(kInvalid);
        return false;
    }
    return a.bits == b.bits || ((a.bits | b.bits) << 1) == 0;  // +0 == -0
}

bool lt(F32 a, F32 b, Context& ctx) {
    if (a.is_nan() || b.is_nan()) {
        ctx.raise(kInvalid);
        return false;
    }
    const bool a_sign = a.sign();
    const bool b_sign = b.sign();
    if (a_sign != b_sign) return a_sign && ((a.bits | b.bits) << 1) != 0;
    return a.bits != b.bits && (a_sign != (a.bits < b.bits));
}

bool le(F32 a, F32 b, Context& ctx) {
    if (a.is_nan() || b.is_nan()) {
        ctx.raise(kInvalid);
        return false;
    }
    const bool a_sign = a.sign();
    const bool b_sign = b.sign();
    if (a_sign != b_sign) return a_sign || ((a.bits | b.bits) << 1) == 0;
    return a.bits == b.bits || (a_sign != (a.bits < b.bits));
}

F32 from_i32(std::int32_t v, Context& ctx) {
    if (v == 0) return F32::zero(false);
    const bool sign = v < 0;
    const std::uint32_t mag =
        sign ? ~static_cast<std::uint32_t>(v) + 1u : static_cast<std::uint32_t>(v);
    if ((mag & kSignMask) != 0) {  // exactly 2^31 (INT32_MIN)
        return round_and_pack(sign, 0x9D, (mag >> 1) | (mag & 1), ctx);
    }
    const int shift = std::countl_zero(mag) - 1;
    return round_and_pack(sign, 0x9C - shift, mag << shift, ctx);
}

namespace {

/// Shared integer-conversion core: rounds a Q7 fixed-point magnitude.
[[nodiscard]] std::int32_t round_q7_to_i32(bool sign, std::uint64_t q7,
                                           Round mode, Context& ctx) {
    const std::uint32_t round_bits = static_cast<std::uint32_t>(q7 & 0x7F);
    std::uint64_t inc = 0;
    switch (mode) {
        case Round::kNearestEven: inc = 0x40; break;
        case Round::kTowardZero: inc = 0; break;
        case Round::kDown: inc = sign ? 0x7F : 0; break;
        case Round::kUp: inc = sign ? 0 : 0x7F; break;
    }
    std::uint64_t mag = (q7 + inc) >> 7;
    if (mode == Round::kNearestEven && round_bits == 0x40) mag &= ~1ull;
    if (round_bits != 0) ctx.raise(kInexact);
    if (sign) {
        if (mag > 0x80000000ull) {
            ctx.raise(kInvalid);
            return INT32_MIN;
        }
        return static_cast<std::int32_t>(-static_cast<std::int64_t>(mag));
    }
    if (mag > 0x7FFFFFFFull) {
        ctx.raise(kInvalid);
        return INT32_MAX;
    }
    return static_cast<std::int32_t>(mag);
}

[[nodiscard]] std::int32_t to_i32_mode(F32 a, Round mode, Context& ctx) {
    const std::int32_t exp = static_cast<std::int32_t>(a.exponent());
    const std::uint32_t frac = a.fraction();
    if (exp == 0xFF) {
        ctx.raise(kInvalid);
        if (frac != 0) return INT32_MAX;  // NaN saturates positive
        return a.sign() ? INT32_MIN : INT32_MAX;
    }
    if (exp >= 0x9E) {  // |a| >= 2^31
        if (a.sign() && exp == 0x9E && frac == 0) return INT32_MIN;  // exact
        ctx.raise(kInvalid);
        return a.sign() ? INT32_MIN : INT32_MAX;
    }
    std::uint64_t sig = frac;
    if (exp != 0) sig |= kHiddenBit;
    // value = sig * 2^(exp-150); Q7 magnitude = sig * 2^(exp-143).
    const std::int32_t shift = 0x8F - exp;  // 143 - exp
    const std::uint64_t q7 =
        shift > 0 ? shift_right_jam64(sig, shift) : sig << (-shift);
    return round_q7_to_i32(a.sign(), q7, mode, ctx);
}

}  // namespace

std::int32_t to_i32(F32 a, Context& ctx) {
    return to_i32_mode(a, ctx.rounding, ctx);
}

std::int32_t to_i32_trunc(F32 a, Context& ctx) {
    return to_i32_mode(a, Round::kTowardZero, ctx);
}

}  // namespace ob::softfloat
