#pragma once

#include <cstdint>

#include "softfloat/softfloat.hpp"

// Shared internals between the binary32 and binary64 translation units.
// Not part of the public API.

namespace ob::softfloat::detail {

/// Right shift that ORs shifted-out bits into the LSB ("jamming").
[[nodiscard]] std::uint32_t shift_right_jam32(std::uint32_t a,
                                              std::int32_t count);
[[nodiscard]] std::uint64_t shift_right_jam64(std::uint64_t a,
                                              std::int32_t count);

/// Round a 31-bit significand (MSB at bit 30, 7 round bits) per the
/// context mode and pack a binary32.
[[nodiscard]] F32 round_and_pack32(bool sign, std::int32_t exp,
                                   std::uint32_t sig, Context& ctx);

}  // namespace ob::softfloat::detail
