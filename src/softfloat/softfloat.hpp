#pragma once

#include <cstdint>

namespace ob::softfloat {

/// IEEE-754 rounding modes supported by the emulation library.
enum class Round : std::uint8_t {
    kNearestEven,  ///< round to nearest, ties to even (default)
    kTowardZero,   ///< truncate
    kDown,         ///< toward -infinity
    kUp,           ///< toward +infinity
};

/// IEEE-754 exception flags; OR-combined into Context::flags.
enum Flag : unsigned {
    kInexact = 1u << 0,
    kUnderflow = 1u << 1,
    kOverflow = 1u << 2,
    kDivByZero = 1u << 3,
    kInvalid = 1u << 4,
};

/// Per-computation floating-point environment. The paper ran the Berkeley
/// Softfloat library on the Sabre soft core because it has no FPU; this
/// re-implementation keeps the environment in an explicit context object
/// instead of globals so independent components (e.g. two ISS instances)
/// cannot interfere.
struct Context {
    Round rounding = Round::kNearestEven;
    unsigned flags = 0;

    void raise(unsigned f) { flags |= f; }
    [[nodiscard]] bool any(unsigned f) const { return (flags & f) != 0; }
    void clear() { flags = 0; }
};

/// IEEE-754 binary32 value carried as raw bits. All arithmetic on `F32`
/// goes through the softfloat routines below — the host FPU is never
/// involved except in `from_host`/`to_host` bit casts (which are exact).
struct F32 {
    std::uint32_t bits = 0;

    friend constexpr bool operator==(F32 a, F32 b) = default;

    [[nodiscard]] constexpr bool sign() const { return (bits >> 31) != 0; }
    [[nodiscard]] constexpr std::uint32_t exponent() const {
        return (bits >> 23) & 0xFF;
    }
    [[nodiscard]] constexpr std::uint32_t fraction() const {
        return bits & 0x007FFFFF;
    }
    [[nodiscard]] constexpr bool is_nan() const {
        return exponent() == 0xFF && fraction() != 0;
    }
    [[nodiscard]] constexpr bool is_signaling_nan() const {
        return is_nan() && (bits & 0x00400000) == 0;
    }
    [[nodiscard]] constexpr bool is_inf() const {
        return exponent() == 0xFF && fraction() == 0;
    }
    [[nodiscard]] constexpr bool is_zero() const {
        return (bits & 0x7FFFFFFF) == 0;
    }
    [[nodiscard]] constexpr bool is_subnormal() const {
        return exponent() == 0 && fraction() != 0;
    }

    [[nodiscard]] static constexpr F32 zero(bool negative = false) {
        return F32{negative ? 0x80000000u : 0u};
    }
    [[nodiscard]] static constexpr F32 one() { return F32{0x3F800000u}; }
    [[nodiscard]] static constexpr F32 inf(bool negative = false) {
        return F32{negative ? 0xFF800000u : 0x7F800000u};
    }
    /// Canonical quiet NaN produced by invalid operations.
    [[nodiscard]] static constexpr F32 quiet_nan() { return F32{0xFFC00000u}; }
};

/// Bit-exact bridges to the host float representation (for tests and IO).
[[nodiscard]] F32 from_host(float f);
[[nodiscard]] float to_host(F32 a);

// --- Arithmetic -----------------------------------------------------------

[[nodiscard]] F32 add(F32 a, F32 b, Context& ctx);
[[nodiscard]] F32 sub(F32 a, F32 b, Context& ctx);
[[nodiscard]] F32 mul(F32 a, F32 b, Context& ctx);
[[nodiscard]] F32 div(F32 a, F32 b, Context& ctx);
[[nodiscard]] F32 sqrt(F32 a, Context& ctx);
/// Sign manipulation is exact and raises no flags (IEEE 754 §5.5.1);
/// they are free functions for symmetry with the arithmetic ops.
[[nodiscard]] constexpr F32 neg(F32 a) { return F32{a.bits ^ 0x80000000u}; }
[[nodiscard]] constexpr F32 abs(F32 a) { return F32{a.bits & 0x7FFFFFFFu}; }

/// Round to an integral value in floating-point format.
[[nodiscard]] F32 round_to_int(F32 a, Context& ctx);

// --- Comparisons (quiet: NaN operands compare unordered) ------------------

/// a == b; NaN != everything (including itself). Signaling NaN raises invalid.
[[nodiscard]] bool eq(F32 a, F32 b, Context& ctx);
/// a < b; raises invalid on any NaN operand (IEEE signaling predicate).
[[nodiscard]] bool lt(F32 a, F32 b, Context& ctx);
/// a <= b; raises invalid on any NaN operand.
[[nodiscard]] bool le(F32 a, F32 b, Context& ctx);

// --- Conversions -----------------------------------------------------------

/// Exact where possible; rounds per ctx otherwise.
[[nodiscard]] F32 from_i32(std::int32_t v, Context& ctx);
/// Converts with the context rounding mode; out-of-range or NaN raises
/// invalid and saturates (NaN -> INT32_MIN, matching RISC-style cores).
[[nodiscard]] std::int32_t to_i32(F32 a, Context& ctx);
/// Converts with truncation regardless of context mode (C cast semantics).
[[nodiscard]] std::int32_t to_i32_trunc(F32 a, Context& ctx);

}  // namespace ob::softfloat
