#include "sim/imu_model.hpp"

#include <cmath>

namespace ob::sim {

using math::Vec3;

ImuModel::ImuModel(const ImuErrorConfig& cfg, const VibrationConfig& vib_cfg,
                   util::Rng rng)
    : rng_(rng),
      vibration_(vib_cfg, rng_.fork()),
      bias_walk_sigma_(cfg.accel_bias_walk),
      accel_noise_sigma_(cfg.accel_noise_sigma),
      gyro_noise_sigma_(cfg.gyro_noise_sigma) {
    for (std::size_t i = 0; i < 3; ++i) {
        accel_bias_[i] = rng_.gaussian(cfg.accel_bias_sigma);
        gyro_bias_[i] = rng_.gaussian(cfg.gyro_bias_sigma);
        accel_scale_[i] = rng_.gaussian(cfg.accel_scale_sigma);
        gyro_scale_[i] = rng_.gaussian(cfg.gyro_scale_sigma);
    }
    // Small random orthogonality error of the sensing triad.
    const Vec3 mis{rng_.gaussian(cfg.internal_misalign_sigma),
                   rng_.gaussian(cfg.internal_misalign_sigma),
                   rng_.gaussian(cfg.internal_misalign_sigma)};
    internal_misalign_ = math::small_angle_dcm(mis);
}

comm::DmuSample ImuModel::sample(const Vec3& f_body, const Vec3& omega,
                                 double t, double dt, double speed) {
    // Vibration draws live on their own forked stream, so stepping the
    // generator before the walk/noise draws leaves every instrument draw
    // identical to the historical interleaving.
    const Vec3 vib_a = vibration_.step_accel(t, dt, speed);
    const Vec3 vib_g = vibration_.step_gyro(dt, speed);
    return sample_traced(f_body + vib_a, omega + vib_g, t, dt);
}

comm::DmuSample ImuModel::sample_traced(const Vec3& f_in, const Vec3& w_in,
                                        double t, double dt) {
    // Accelerometer bias random walk.
    const double walk = bias_walk_sigma_ * std::sqrt(std::max(dt, 0.0));
    for (std::size_t i = 0; i < 3; ++i) accel_bias_[i] += rng_.gaussian(walk);

    const Vec3 f_int = internal_misalign_ * f_in;
    const Vec3 w_int = internal_misalign_ * w_in;

    comm::DmuSample s;
    s.seq = seq_++;
    s.t = t;
    for (std::size_t i = 0; i < 3; ++i) {
        const double f = f_int[i] * (1.0 + accel_scale_[i]) + accel_bias_[i] +
                         rng_.gaussian(accel_noise_sigma_);
        const double w = w_int[i] * (1.0 + gyro_scale_[i]) + gyro_bias_[i] +
                         rng_.gaussian(gyro_noise_sigma_);
        s.accel[i] = scale_.accel_to_raw(f);
        s.gyro[i] = scale_.rate_to_raw(w);
    }

    // Frozen-register fault: the draws above always happen (stuck
    // transducer, live model), only the emitted registers are replaced.
    // Sequence and timestamp stay current — the wire protocol is valid.
    if (fault_.active(t)) {
        if (!holding_) {
            held_ = s;
            holding_ = true;
        }
        s.accel = held_.accel;
        s.gyro = held_.gyro;
    } else {
        holding_ = false;
    }
    return s;
}

}  // namespace ob::sim
