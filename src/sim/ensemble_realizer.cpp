#include "sim/ensemble_realizer.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace ob::sim {

EnsembleRealizer::EnsembleRealizer(std::shared_ptr<const ScenarioTrace> trace,
                                   math::EulerAngles true_misalignment,
                                   std::span<const std::uint64_t> seeds)
    : trace_(std::move(trace)) {
    if (!trace_) {
        throw std::invalid_argument("EnsembleRealizer: null trace");
    }
    if (seeds.empty()) {
        throw std::invalid_argument("EnsembleRealizer: at least one lane");
    }
    imu_.reserve(seeds.size());
    acc_.reserve(seeds.size());
    // Per lane, exactly the Scenario trace constructor: the IMU stream is
    // seeded with the lane seed, the ACC stream with the salted seed, so
    // lane l's draw sequences match sim::Scenario(trace_, truth, seeds[l]).
    for (std::uint64_t seed : seeds) {
        imu_.emplace_back(trace_->imu_errors(), trace_->vibration(),
                          util::Rng(seed));
        acc_.emplace_back(true_misalignment, trace_->acc_errors(),
                          trace_->vibration(),
                          util::Rng(seed ^ kAccStreamSalt), trace_->adxl(),
                          trace_->acc_lever_arm());
    }
    dmu_.resize(seeds.size());
    adxl_.resize(seeds.size());
}

bool EnsembleRealizer::step(double& t) {
    if (step_ >= trace_->epochs()) return false;
    const std::size_t i = step_++;
    const double dt = trace_->dt();
    t = trace_->t(i);
    // Load this epoch's trace operands once, then run every lane against
    // them. Each lane's two sample_traced calls happen in the same order as
    // Scenario::next_wire, so the per-lane RNG draw sequence is unchanged.
    const math::Vec3 f = trace_->imu_force(i);
    const math::Vec3 w = trace_->imu_rate(i);
    const math::Vec3 fa = trace_->acc_force(i);
    const std::size_t n = imu_.size();
    for (std::size_t lane = 0; lane < n; ++lane) {
        dmu_[lane] = imu_[lane].sample_traced(f, w, t, dt);
        adxl_[lane] = acc_[lane].sample_traced(fa, t, dt);
    }
    return true;
}

void EnsembleRealizer::bump(const math::EulerAngles& delta) {
    for (auto& acc : acc_) acc.bump(delta);
}

}  // namespace ob::sim
