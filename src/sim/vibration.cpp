#include "sim/vibration.hpp"

#include <cmath>

namespace ob::sim {

using math::Vec3;

Vec3 VibrationModel::step_accel(double t, double dt, double speed) {
    const double engine_amp =
        cfg_.engine_amp_idle + cfg_.engine_amp_per_mps * speed;
    const double engine_freq =
        cfg_.engine_freq_idle_hz + cfg_.engine_freq_per_mps * speed;

    Vec3 out;
    for (std::size_t axis = 0; axis < 3; ++axis) {
        const double harmonic =
            engine_amp *
            std::sin(2.0 * math::kPi * engine_freq * t + phase_[axis]);

        // Road noise: first-order low-pass filtered white noise whose
        // steady-state standard deviation scales with sqrt(speed).
        const double target_sigma =
            cfg_.road_amp_per_sqrt_mps * std::sqrt(std::max(speed, 0.0));
        const double alpha =
            dt / (1.0 / (2.0 * math::kPi * cfg_.road_bandwidth_hz) + dt);
        // Drive noise scaled so the filtered output has ~target_sigma.
        const double drive =
            target_sigma > 0.0
                ? rng_.gaussian(target_sigma / std::sqrt(alpha / (2.0 - alpha)))
                : 0.0;
        road_state_[axis] += alpha * (drive - road_state_[axis]);

        out[axis] = harmonic + road_state_[axis];
    }
    return out;
}

Vec3 VibrationModel::step_gyro(double dt, double speed) {
    (void)dt;
    const double amp =
        cfg_.gyro_amp_factor *
        (cfg_.engine_amp_idle + cfg_.engine_amp_per_mps * speed +
         cfg_.road_amp_per_sqrt_mps * std::sqrt(std::max(speed, 0.0)));
    return Vec3{rng_.gaussian(amp), rng_.gaussian(amp), rng_.gaussian(amp)};
}

}  // namespace ob::sim
