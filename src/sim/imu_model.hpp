#pragma once

#include "comm/codec.hpp"
#include "math/matrix.hpp"
#include "math/rotation.hpp"
#include "sim/sensor_fault.hpp"
#include "sim/vibration.hpp"
#include "util/rng.hpp"

namespace ob::sim {

/// Error-model parameters for the vehicle-fixed 6-DOF IMU (the paper's BAE
/// DMU: silicon ring gyros + capacitive MEMS accelerometers). Magnitudes
/// are of the order a mid-2000s automotive-grade MEMS unit exhibits.
struct ImuErrorConfig {
    // Accelerometers. The noise floor is set so that the combined static
    // fusion residual lands in the paper's 0.003–0.01 m/s² tuning range.
    double accel_bias_sigma = 0.015;       ///< m/s², per-axis constant bias draw
    double accel_noise_sigma = 0.003;      ///< m/s², white per sample
    double accel_scale_sigma = 800e-6;     ///< unitless scale-factor error draw
    double accel_bias_walk = 2e-5;         ///< m/s² per sqrt(s) random walk
    // Gyroscopes.
    double gyro_bias_sigma = math::deg2rad(0.3);    ///< rad/s constant bias
    double gyro_noise_sigma = math::deg2rad(0.05);  ///< rad/s white per sample
    double gyro_scale_sigma = 1000e-6;
    // Internal axis misalignment of the triad (orthogonality error).
    double internal_misalign_sigma = math::deg2rad(0.02);
};

/// Simulated DMU: applies bias, scale factor, internal triad misalignment,
/// vibration at its mount, white noise and 16-bit register quantization,
/// then emits the raw wire-format sample.
class ImuModel {
public:
    ImuModel(const ImuErrorConfig& cfg, const VibrationConfig& vib_cfg,
             util::Rng rng);

    /// Sample the sensors: `f_body` is the true specific force and `omega`
    /// the true angular rate at the IMU's location, `speed` scales the
    /// local vibration.
    [[nodiscard]] comm::DmuSample sample(const math::Vec3& f_body,
                                         const math::Vec3& omega, double t,
                                         double dt, double speed);

    /// Trace-fed sampling (the Realize layer): the mount vibration arrives
    /// precomputed from a ScenarioTrace — `f_in` = f_body + vibration,
    /// `w_in` = omega + gyro vibration — and only the per-seed instrument
    /// draws (bias walk, white noise, quantization) happen here. The draw
    /// order on the instrument stream matches sample() exactly, so a
    /// trace-fed realization is bitwise the inline-synthesis run.
    [[nodiscard]] comm::DmuSample sample_traced(const math::Vec3& f_in,
                                                const math::Vec3& w_in,
                                                double t, double dt);

    /// Arm a frozen-register fault: inside the window the raw accel/gyro
    /// registers repeat their last healthy values while the sequence
    /// counter and timestamps stay live (the wire protocol remains valid).
    /// All instrument draws still happen, so the RNG stream — and every
    /// sample outside the window — is bitwise the fault-free run's.
    void set_fault(const SensorFault& fault) { fault_ = fault; }

    [[nodiscard]] const comm::DmuScale& scale() const { return scale_; }

    /// Truth accessors for tests (what the filter is trying to see through).
    [[nodiscard]] const math::Vec3& accel_bias() const { return accel_bias_; }
    [[nodiscard]] const math::Vec3& gyro_bias() const { return gyro_bias_; }

private:
    comm::DmuScale scale_;
    util::Rng rng_;
    VibrationModel vibration_;
    math::Vec3 accel_bias_{};
    math::Vec3 gyro_bias_{};
    math::Vec3 accel_scale_{};  // per-axis (1+s) factors stored as s
    math::Vec3 gyro_scale_{};
    math::Mat3 internal_misalign_ = math::Mat3::identity();
    double bias_walk_sigma_;
    double accel_noise_sigma_;
    double gyro_noise_sigma_;
    std::uint8_t seq_ = 0;
    SensorFault fault_{};
    comm::DmuSample held_{};  ///< last healthy sample during a freeze
    bool holding_ = false;
};

}  // namespace ob::sim
