#pragma once

namespace ob::sim {

/// Frozen-value ("stuck") transducer fault window: between `start_s` and
/// `start_s + duration_s` the analog front-end repeats its last healthy
/// output while the digital wrapper — sequence numbers, checksums, the
/// ADXL PWM clock — keeps running. This is the hard automotive failure
/// mode: every packet on the wire stays perfectly valid while the data
/// underneath goes stale, so only the fusion residuals can notice.
///
/// Instrument-noise draws continue during the freeze (the transducer is
/// stuck, not the model), so arming a fault never perturbs a realization's
/// RNG stream: samples outside the window are bitwise those of a
/// fault-free run, and a zero-length window is exactly no fault.
struct SensorFault {
    double start_s = 0.0;
    double duration_s = 0.0;  ///< 0 disables the fault entirely

    [[nodiscard]] bool active(double t) const {
        return duration_s > 0.0 && t >= start_s && t < start_s + duration_s;
    }
};

}  // namespace ob::sim
