#include "sim/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace ob::sim {

namespace {

ScenarioConfig base_config(std::shared_ptr<const TrajectoryProfile> profile,
                           math::EulerAngles misalignment) {
    ScenarioConfig cfg;
    cfg.profile = std::move(profile);
    cfg.true_misalignment = misalignment;
    return cfg;
}

}  // namespace

ScenarioConfig ScenarioConfig::static_level(double duration_s,
                                            math::EulerAngles misalignment) {
    return base_config(
        std::make_shared<StaticProfile>(math::EulerAngles{}, duration_s),
        misalignment);
}

ScenarioConfig ScenarioConfig::static_tilted(double duration_s,
                                             math::EulerAngles misalignment,
                                             math::EulerAngles platform_tilt) {
    // A single fixed tilt leaves rotation about the (constant) gravity
    // direction unobservable, so the bench procedure dwells the platform
    // at a cycle of orientations: level, the requested tilt, the tilt with
    // roll/pitch exchanged, and the reversed tilt.
    std::vector<TiltSequenceProfile::Pose> poses;
    poses.push_back({math::EulerAngles{}, 10.0});
    poses.push_back({platform_tilt, 10.0});
    poses.push_back({math::EulerAngles{platform_tilt.pitch, platform_tilt.roll,
                                       platform_tilt.yaw},
                     10.0});
    poses.push_back({math::EulerAngles{-platform_tilt.roll,
                                       -platform_tilt.pitch,
                                       -platform_tilt.yaw},
                     10.0});
    return base_config(
        std::make_shared<TiltSequenceProfile>(std::move(poses), duration_s),
        misalignment);
}

ScenarioConfig ScenarioConfig::dynamic_city(double duration_s,
                                            math::EulerAngles misalignment,
                                            std::uint64_t seed) {
    return base_config(std::make_shared<DriveProfile>(
                           DriveProfile::city(duration_s, seed)),
                       misalignment);
}

ScenarioConfig ScenarioConfig::dynamic_highway(double duration_s,
                                               math::EulerAngles misalignment,
                                               std::uint64_t seed) {
    return base_config(std::make_shared<DriveProfile>(
                           DriveProfile::highway(duration_s, seed)),
                       misalignment);
}

Scenario::Scenario(ScenarioConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)),
      imu_(cfg_.imu_errors, cfg_.vibration, util::Rng(seed)),
      acc_(cfg_.true_misalignment, cfg_.acc_errors, cfg_.vibration,
           util::Rng(seed ^ 0x5DEECE66Dull), cfg_.adxl, cfg_.acc_lever_arm) {
    if (!cfg_.profile) throw std::invalid_argument("Scenario: null profile");
    if (cfg_.sample_rate_hz <= 0.0)
        throw std::invalid_argument("Scenario: bad sample rate");
}

std::optional<Scenario::Step> Scenario::next() {
    const double dt = 1.0 / cfg_.sample_rate_hz;
    const double t = static_cast<double>(step_) * dt;
    if (t > cfg_.profile->duration()) return std::nullopt;
    ++step_;

    Step out;
    out.t = t;
    out.truth = cfg_.profile->state_at(t);
    out.f_body_true = out.truth.specific_force_body();
    // Angular acceleration by central difference on the profile.
    const double h = dt / 2.0;
    const math::Vec3 w_minus = cfg_.profile->state_at(std::max(t - h, 0.0)).omega_body;
    const math::Vec3 w_plus = cfg_.profile->state_at(t + h).omega_body;
    out.omega_dot_true = (w_plus - w_minus) * (1.0 / (2.0 * h));
    out.dmu = imu_.sample(out.f_body_true, out.truth.omega_body, t, dt,
                          out.truth.speed);
    out.adxl = acc_.sample(out.f_body_true, out.truth.omega_body,
                           out.omega_dot_true, t, dt, out.truth.speed);
    return out;
}

}  // namespace ob::sim
