#include "sim/scenario.hpp"

#include <stdexcept>

namespace ob::sim {

namespace {

void require_trace(const std::shared_ptr<const ScenarioTrace>& trace) {
    if (!trace) throw std::invalid_argument("Scenario: null trace");
}

ScenarioConfig base_config(std::shared_ptr<const TrajectoryProfile> profile,
                           math::EulerAngles misalignment) {
    ScenarioConfig cfg;
    cfg.profile = std::move(profile);
    cfg.true_misalignment = misalignment;
    return cfg;
}

}  // namespace

ScenarioConfig ScenarioConfig::static_level(double duration_s,
                                            math::EulerAngles misalignment) {
    return base_config(
        std::make_shared<StaticProfile>(math::EulerAngles{}, duration_s),
        misalignment);
}

ScenarioConfig ScenarioConfig::static_tilted(double duration_s,
                                             math::EulerAngles misalignment,
                                             math::EulerAngles platform_tilt) {
    // A single fixed tilt leaves rotation about the (constant) gravity
    // direction unobservable, so the bench procedure dwells the platform
    // at a cycle of orientations: level, the requested tilt, the tilt with
    // roll/pitch exchanged, and the reversed tilt.
    std::vector<TiltSequenceProfile::Pose> poses;
    poses.push_back({math::EulerAngles{}, 10.0});
    poses.push_back({platform_tilt, 10.0});
    poses.push_back({math::EulerAngles{platform_tilt.pitch, platform_tilt.roll,
                                       platform_tilt.yaw},
                     10.0});
    poses.push_back({math::EulerAngles{-platform_tilt.roll,
                                       -platform_tilt.pitch,
                                       -platform_tilt.yaw},
                     10.0});
    return base_config(
        std::make_shared<TiltSequenceProfile>(std::move(poses), duration_s),
        misalignment);
}

ScenarioConfig ScenarioConfig::dynamic_city(double duration_s,
                                            math::EulerAngles misalignment,
                                            std::uint64_t seed) {
    return base_config(std::make_shared<DriveProfile>(
                           DriveProfile::city(duration_s, seed)),
                       misalignment);
}

ScenarioConfig ScenarioConfig::dynamic_highway(double duration_s,
                                               math::EulerAngles misalignment,
                                               std::uint64_t seed) {
    return base_config(std::make_shared<DriveProfile>(
                           DriveProfile::highway(duration_s, seed)),
                       misalignment);
}

Scenario::Scenario(ScenarioConfig cfg, std::uint64_t seed)
    : Scenario(ScenarioTrace::build(cfg, seed), cfg.true_misalignment, seed) {}

Scenario::Scenario(std::shared_ptr<const ScenarioTrace> trace,
                   math::EulerAngles true_misalignment, std::uint64_t seed)
    : trace_((require_trace(trace), std::move(trace))),
      imu_(trace_->imu_errors(), trace_->vibration(), util::Rng(seed)),
      acc_(true_misalignment, trace_->acc_errors(), trace_->vibration(),
           util::Rng(seed ^ kAccStreamSalt), trace_->adxl(),
           trace_->acc_lever_arm()) {}

std::optional<Scenario::Step> Scenario::next() {
    std::optional<Step> out(std::in_place);
    if (!next_into(*out)) return std::nullopt;
    return out;
}

bool Scenario::next_into(Step& out) {
    const std::size_t i = step_;  // epoch next_wire will consume
    if (!next_wire(out.t, out.dmu, out.adxl)) return false;
    out.truth = trace_->truth(i);
    out.f_body_true = trace_->f_body_true(i);
    out.omega_dot_true = trace_->omega_dot_true(i);
    return true;
}

bool Scenario::next_wire(double& t, comm::DmuSample& dmu,
                         comm::AdxlTiming& adxl) {
    if (step_ >= trace_->epochs()) return false;
    const std::size_t i = step_++;
    const double dt = trace_->dt();
    t = trace_->t(i);
    dmu = imu_.sample_traced(trace_->imu_force(i), trace_->imu_rate(i), t, dt);
    adxl = acc_.sample_traced(trace_->acc_force(i), t, dt);
    return true;
}

}  // namespace ob::sim
