#include "sim/acc_model.hpp"

namespace ob::sim {

using math::Vec2;
using math::Vec3;

AccModel::AccModel(math::EulerAngles true_misalignment,
                   const AccErrorConfig& cfg, const VibrationConfig& vib_cfg,
                   util::Rng rng, comm::AdxlConfig adxl, math::Vec3 lever_arm)
    : misalignment_(true_misalignment),
      c_sensor_body_(math::dcm_from_euler(true_misalignment)),
      lever_arm_(lever_arm),
      adxl_(adxl),
      rng_(rng),
      vibration_(vib_cfg, rng_.fork()),
      cross_axis_(cfg.cross_axis),
      noise_sigma_(cfg.noise_sigma) {
    bias_[0] = rng_.gaussian(cfg.bias_sigma);
    bias_[1] = rng_.gaussian(cfg.bias_sigma);
    scale_[0] = rng_.gaussian(cfg.scale_sigma);
    scale_[1] = rng_.gaussian(cfg.scale_sigma);
}

void AccModel::bump(const math::EulerAngles& delta) {
    misalignment_.roll += delta.roll;
    misalignment_.pitch += delta.pitch;
    misalignment_.yaw += delta.yaw;
    c_sensor_body_ = math::dcm_from_euler(misalignment_);
}

comm::AdxlTiming AccModel::sample(const Vec3& f_body, const Vec3& omega,
                                  const Vec3& omega_dot, double t, double dt,
                                  double speed) {
    // Rigid-body kinematics: the ACC's mount point feels the IMU-site
    // specific force plus the Euler (omega_dot x r) and centripetal
    // (omega x (omega x r)) accelerations of its lever arm.
    const Vec3 lever = math::cross(omega_dot, lever_arm_) +
                       math::cross(omega, math::cross(omega, lever_arm_));
    // Local mount vibration (does NOT cancel against the IMU's).
    const Vec3 vib = vibration_.step_accel(t, dt, speed);
    return sample_traced((f_body + lever) + vib, t, dt);
}

comm::AdxlTiming AccModel::sample_traced(const Vec3& f_in, double t,
                                         double dt) {
    (void)dt;
    const Vec3 f_sensor = c_sensor_body_ * f_in;

    const double ax0 = f_sensor[0];
    const double ay0 = f_sensor[1];
    const double ax = ax0 * (1.0 + scale_[0]) + cross_axis_ * ay0 + bias_[0] +
                      rng_.gaussian(noise_sigma_);
    const double ay = ay0 * (1.0 + scale_[1]) + cross_axis_ * ax0 + bias_[1] +
                      rng_.gaussian(noise_sigma_);

    comm::AdxlTiming out = comm::adxl_encode(ax, ay, seq_++, adxl_);

    // Stuck-output fault: the noise draws above always happen, only the
    // emitted duty-cycle timings are replaced; seq stays live so every
    // packet remains wire-valid (and undetectable by protocol checks).
    if (fault_.active(t)) {
        if (!holding_) {
            held_ = out;
            holding_ = true;
        }
        out.t1x = held_.t1x;
        out.t1y = held_.t1y;
        out.t2 = held_.t2;
    } else {
        holding_ = false;
    }
    return out;
}

}  // namespace ob::sim
