#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/codec.hpp"
#include "math/matrix.hpp"
#include "sim/acc_model.hpp"
#include "sim/imu_model.hpp"
#include "sim/trajectory.hpp"
#include "sim/vibration.hpp"

namespace ob::sim {

struct ScenarioConfig;

/// Salt separating the ACC instrument RNG stream from the IMU stream that
/// shares a Scenario's sensor seed. (Both streams fork their mount
/// vibration generator as their first draw — see ScenarioTrace::build.)
inline constexpr std::uint64_t kAccStreamSalt = 0x5DEECE66Dull;

/// The Trace layer of the Plan/Trace/Realize run stack: everything about a
/// scenario that does not depend on the per-realization instrument seed,
/// synthesized once into an immutable structure-of-arrays buffer.
///
/// Per epoch the trace stores the kinematic ground truth and the three
/// vibration-dressed operands the sensor models consume:
///
///   imu_force = f_body + IMU-mount vibration      (accelerometer input)
///   imu_rate  = omega  + IMU-mount gyro vibration (gyro input)
///   acc_force = (f_body + lever) + ACC-mount vibration
///
/// each summed in exactly the association the inline-synthesis path used,
/// so a realization fed from the trace is bitwise the pre-trace run. The
/// mount-vibration streams derive from the trace's sensor seed the same way
/// the sensor models fork theirs (first draw of Rng(seed) resp.
/// Rng(seed ^ kAccStreamSalt)), which pins trace-fed seed-0 realizations to
/// the historical draw sequence. Per-seed Monte Carlo realizations share
/// the trace — physically: the same vehicle on the same road, differing
/// only in instrument realizations.
///
/// A trace is immutable after build() and safe to share across any number
/// of concurrently realizing threads.
class ScenarioTrace {
public:
    /// Synthesize the trace for `cfg` with the given sensor seed (the seed
    /// the Scenario's instrument models are constructed with). The
    /// trajectory profile is only consulted here — the returned trace does
    /// not retain it.
    [[nodiscard]] static std::shared_ptr<const ScenarioTrace> build(
        const ScenarioConfig& cfg, std::uint64_t sensor_seed);

    [[nodiscard]] std::size_t epochs() const { return t_.size(); }
    [[nodiscard]] double t(std::size_t i) const { return t_[i]; }
    [[nodiscard]] const VehicleState& truth(std::size_t i) const {
        return truth_[i];
    }
    [[nodiscard]] const math::Vec3& f_body_true(std::size_t i) const {
        return f_body_true_[i];
    }
    [[nodiscard]] const math::Vec3& omega_dot_true(std::size_t i) const {
        return omega_dot_true_[i];
    }
    [[nodiscard]] const math::Vec3& imu_force(std::size_t i) const {
        return imu_force_[i];
    }
    [[nodiscard]] const math::Vec3& imu_rate(std::size_t i) const {
        return imu_rate_[i];
    }
    [[nodiscard]] const math::Vec3& acc_force(std::size_t i) const {
        return acc_force_[i];
    }

    [[nodiscard]] double sample_rate_hz() const { return sample_rate_hz_; }
    [[nodiscard]] double dt() const { return dt_; }
    /// The profile's full duration (may exceed a requested duration when a
    /// drive's segment list overshoots it).
    [[nodiscard]] double duration() const { return duration_; }
    [[nodiscard]] std::uint64_t sensor_seed() const { return sensor_seed_; }

    [[nodiscard]] const ImuErrorConfig& imu_errors() const {
        return imu_errors_;
    }
    [[nodiscard]] const AccErrorConfig& acc_errors() const {
        return acc_errors_;
    }
    [[nodiscard]] const VibrationConfig& vibration() const {
        return vibration_;
    }
    [[nodiscard]] const comm::AdxlConfig& adxl() const { return adxl_; }
    [[nodiscard]] const math::Vec3& acc_lever_arm() const {
        return acc_lever_arm_;
    }

private:
    ScenarioTrace() = default;

    std::vector<double> t_;
    std::vector<VehicleState> truth_;
    std::vector<math::Vec3> f_body_true_;
    std::vector<math::Vec3> omega_dot_true_;
    std::vector<math::Vec3> imu_force_;
    std::vector<math::Vec3> imu_rate_;
    std::vector<math::Vec3> acc_force_;

    double sample_rate_hz_ = 100.0;
    double dt_ = 0.01;
    double duration_ = 0.0;
    std::uint64_t sensor_seed_ = 0;
    ImuErrorConfig imu_errors_{};
    AccErrorConfig acc_errors_{};
    VibrationConfig vibration_{};
    comm::AdxlConfig adxl_{};
    math::Vec3 acc_lever_arm_{};
};

}  // namespace ob::sim
