#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/codec.hpp"
#include "math/rotation.hpp"
#include "sim/acc_model.hpp"
#include "sim/imu_model.hpp"
#include "sim/scenario_trace.hpp"

namespace ob::sim {

/// Batched Realize layer: N per-seed instrument realizations of ONE shared
/// ScenarioTrace advanced in lockstep, writing each epoch's wire-format
/// sensor pairs into lane-indexed structure-of-arrays buffers. One trace
/// epoch's operands (imu_force / imu_rate / acc_force) are loaded once and
/// fed to every lane while they are hot, instead of being re-walked per
/// realization as N sequential Scenario loops would.
///
/// Determinism contract: lane `l` produces bitwise the sample stream of
///
///     sim::Scenario(trace, true_misalignment, seeds[l])
///
/// iterated via next_wire(). Each lane owns its ImuModel/AccModel pair
/// seeded exactly as the Scenario constructor seeds them (the ACC stream
/// salted with kAccStreamSalt), and lane sampling stays scalar inside:
/// the models draw from stateful mt19937_64 normal distributions whose
/// rejection loops and cached second values make cross-lane SIMD of the
/// draws order-sensitive, so the batching win is locality, not lane math.
/// The differential ensemble test pins the equivalence per lane.
///
/// Output buffers are sized once at construction; step() never allocates
/// (pinned by allocation_guard_test).
class EnsembleRealizer {
public:
    EnsembleRealizer(std::shared_ptr<const ScenarioTrace> trace,
                     math::EulerAngles true_misalignment,
                     std::span<const std::uint64_t> seeds);

    [[nodiscard]] std::size_t lanes() const { return imu_.size(); }

    /// Advance every lane one epoch: fills the dmu()/adxl() lane arrays
    /// and reports the epoch timestamp. Returns false once the trace is
    /// exhausted (no lane state is touched then).
    [[nodiscard]] bool step(double& t);

    /// Lane-indexed results of the latest step().
    [[nodiscard]] const comm::DmuSample* dmu() const { return dmu_.data(); }
    [[nodiscard]] const comm::AdxlTiming* adxl() const {
        return adxl_.data();
    }

    /// Inject the mounting disturbance on every lane (paper: "car park
    /// bumps") — the per-lane equivalent of Scenario::bump.
    void bump(const math::EulerAngles& delta);

    /// True misalignment currently in effect. Every lane shares the same
    /// value: all start from the constructor argument and bump() applies
    /// the same delta through the same arithmetic on each.
    [[nodiscard]] math::EulerAngles true_misalignment() const {
        return acc_.front().true_misalignment();
    }

    [[nodiscard]] const ScenarioTrace& trace() const { return *trace_; }
    [[nodiscard]] double sample_rate_hz() const {
        return trace_->sample_rate_hz();
    }
    [[nodiscard]] double duration() const { return trace_->duration(); }

private:
    std::shared_ptr<const ScenarioTrace> trace_;
    std::vector<ImuModel> imu_;   ///< lane-indexed
    std::vector<AccModel> acc_;   ///< lane-indexed
    std::size_t step_ = 0;
    std::vector<comm::DmuSample> dmu_;    ///< SoA output, lane-indexed
    std::vector<comm::AdxlTiming> adxl_;  ///< SoA output, lane-indexed
};

}  // namespace ob::sim
