#pragma once

#include "comm/codec.hpp"
#include "math/matrix.hpp"
#include "math/rotation.hpp"
#include "sim/sensor_fault.hpp"
#include "sim/vibration.hpp"
#include "util/rng.hpp"

namespace ob::sim {

/// Error model for the sensor-mounted two-axis accelerometer (the paper's
/// Analog Devices ADXL202). The ADXL202 is a coarser instrument than the
/// DMU triad — larger bias and noise — which is exactly why the Kalman
/// filter needs hundreds of seconds to squeeze sub-0.1-degree alignment
/// out of it.
struct AccErrorConfig {
    double bias_sigma = 0.03;       ///< m/s² per-axis constant bias draw
    double noise_sigma = 0.004;     ///< m/s² white per sample
    double scale_sigma = 1500e-6;   ///< unitless scale-factor error
    double cross_axis = 0.002;      ///< fraction of y sensed on x and v.v.
};

/// Simulated boresighted-sensor accelerometer. It is rigidly attached to
/// the (misaligned) sensor, so it senses the body specific force rotated
/// through the *true* misalignment DCM — the quantity the fusion algorithm
/// estimates. Output is the quantized PWM timing packet of the ADXL202.
class AccModel {
public:
    /// `lever_arm` is the ACC's mounting position relative to the IMU, in
    /// body coordinates (meters): during rotation the ACC feels the extra
    /// Euler + centripetal accelerations of its offset location.
    AccModel(math::EulerAngles true_misalignment, const AccErrorConfig& cfg,
             const VibrationConfig& vib_cfg, util::Rng rng,
             comm::AdxlConfig adxl = {}, math::Vec3 lever_arm = {});

    /// Sample at time t. `f_body` is the true specific force at the IMU's
    /// location; `omega`/`omega_dot` the body angular rate and its
    /// derivative (for the lever-arm terms). The model applies the
    /// misalignment, local vibration, instrument errors and duty-cycle
    /// quantization.
    [[nodiscard]] comm::AdxlTiming sample(const math::Vec3& f_body,
                                          const math::Vec3& omega,
                                          const math::Vec3& omega_dot, double t,
                                          double dt, double speed);

    /// Convenience overload for rotation-free scenes.
    [[nodiscard]] comm::AdxlTiming sample(const math::Vec3& f_body, double t,
                                          double dt, double speed) {
        return sample(f_body, math::Vec3{}, math::Vec3{}, t, dt, speed);
    }

    /// Trace-fed sampling (the Realize layer): `f_in` is the precomputed
    /// (f_body + lever) + vibration sum from a ScenarioTrace; only the
    /// per-seed instrument draws and the misalignment rotation happen
    /// here, in the same order as sample().
    [[nodiscard]] comm::AdxlTiming sample_traced(const math::Vec3& f_in,
                                                 double t, double dt);

    /// Re-seat the sensor (the paper's "car park bump"): adds a step change
    /// to the true misalignment mid-run.
    void bump(const math::EulerAngles& delta);

    /// Arm a stuck-output fault: inside the window the PWM duty-cycle
    /// timings repeat their last healthy values while the sequence counter
    /// keeps counting (packets stay wire-valid and plausible). Instrument
    /// draws still happen, so the RNG stream — and every sample outside
    /// the window — is bitwise the fault-free run's.
    void set_fault(const SensorFault& fault) { fault_ = fault; }

    [[nodiscard]] const math::EulerAngles& true_misalignment() const {
        return misalignment_;
    }
    [[nodiscard]] const comm::AdxlConfig& adxl_config() const { return adxl_; }
    [[nodiscard]] double bias_x() const { return bias_[0]; }
    [[nodiscard]] double bias_y() const { return bias_[1]; }

private:
    math::EulerAngles misalignment_;
    math::Mat3 c_sensor_body_;
    math::Vec3 lever_arm_;
    comm::AdxlConfig adxl_;
    util::Rng rng_;
    VibrationModel vibration_;
    math::Vec2 bias_{};
    math::Vec2 scale_{};
    double cross_axis_;
    double noise_sigma_;
    std::uint8_t seq_ = 0;
    SensorFault fault_{};
    comm::AdxlTiming held_{};  ///< last healthy timings during a freeze
    bool holding_ = false;
};

}  // namespace ob::sim
