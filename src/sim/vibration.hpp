#pragma once

#include "math/matrix.hpp"
#include "math/rotation.hpp"
#include "util/rng.hpp"

namespace ob::sim {

/// Vehicle vibration environment. The paper found that the measurement
/// noise the Kalman filter could assume had to rise from 0.003–0.01 m/s²
/// (static) to 0.015+ m/s² once the vehicle moved "because of the addition
/// of the vehicle vibration" — this model is what produces that effect in
/// simulation.
///
/// Two components:
///  * engine firing harmonic, amplitude growing with speed (rpm proxy);
///  * road-surface noise, band-limited white noise scaled by speed.
/// Magnitudes are the *per-sensor-mount* (non-common-mode) vibration: the
/// rigid-body component both sensors share cancels in the fusion residual,
/// so only the local-mount part is modelled. Values are tuned so the
/// combined moving-vehicle residual sits near the paper's >= 0.015 m/s².
struct VibrationConfig {
    double engine_amp_idle = 0.002;     ///< m/s² at standstill (engine on)
    double engine_amp_per_mps = 0.0004; ///< m/s² additional per m/s speed
    double engine_freq_idle_hz = 26.0;  ///< ~800 rpm four-cylinder firing
    double engine_freq_per_mps = 1.4;   ///< firing frequency rise with speed
    double road_amp_per_sqrt_mps = 0.003;  ///< m/s² per sqrt(m/s)
    double road_bandwidth_hz = 18.0;    ///< low-pass corner of road noise
    double gyro_amp_factor = 0.002;     ///< rad/s of gyro vibration per m/s² of accel vibration
};

/// Stateful vibration generator (owns the filter and phase state). Each
/// physical location in the vehicle should own one instance: the component
/// of vibration that is *local* to a sensor's mount is what does not cancel
/// between IMU and ACC and hence inflates fusion residuals.
class VibrationModel {
public:
    VibrationModel(VibrationConfig cfg, util::Rng rng)
        : cfg_(cfg), rng_(rng) {
        for (auto& p : phase_) p = rng_.uniform(0.0, 2.0 * 3.14159265358979);
    }

    /// Advance by dt at the given vehicle speed; returns the acceleration
    /// disturbance (m/s², body frame).
    [[nodiscard]] math::Vec3 step_accel(double t, double dt, double speed);

    /// Angular-rate disturbance derived from the same excitation level.
    [[nodiscard]] math::Vec3 step_gyro(double dt, double speed);

private:
    VibrationConfig cfg_;
    util::Rng rng_;
    std::array<double, 3> phase_{};
    math::Vec3 road_state_{};  // per-axis low-pass filter state
};

}  // namespace ob::sim
