#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "math/rotation.hpp"
#include "util/rng.hpp"

namespace ob::sim {

/// Kinematic truth at one instant: everything a perfect sensor suite could
/// observe about the vehicle, in SI units.
struct VehicleState {
    double t = 0.0;
    math::Vec3 accel_nav{};    ///< inertial acceleration, nav frame (z down)
    math::EulerAngles attitude{};  ///< body orientation (roll, pitch, yaw=heading)
    math::Vec3 omega_body{};   ///< angular rate, body frame (rad/s)
    double speed = 0.0;        ///< ground speed (m/s), scales vibration

    /// Specific force in the body frame: f_b = C_bn * (a_n - g_n), with
    /// gravity +9.80665 along nav z (z-down convention). This is what ideal
    /// accelerometers strapped to the body measure.
    [[nodiscard]] math::Vec3 specific_force_body() const;
};

inline constexpr double kGravity = 9.80665;

/// A driving (or parking) scenario's kinematic truth over time.
class TrajectoryProfile {
public:
    virtual ~TrajectoryProfile() = default;
    [[nodiscard]] virtual VehicleState state_at(double t) const = 0;
    [[nodiscard]] virtual double duration() const = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Stationary vehicle on a (possibly tilted) platform — the paper's static
/// tests. Tilting the platform is what makes roll/yaw observable from
/// gravity alone (§11.1 of the paper).
class StaticProfile final : public TrajectoryProfile {
public:
    StaticProfile(math::EulerAngles platform_attitude, double duration_s)
        : attitude_(platform_attitude), duration_(duration_s) {}

    [[nodiscard]] VehicleState state_at(double t) const override;
    [[nodiscard]] double duration() const override { return duration_; }
    [[nodiscard]] std::string name() const override { return "static"; }

private:
    math::EulerAngles attitude_;
    double duration_;
};

/// Static boresight-bench procedure: the platform is dwelled at a sequence
/// of orientations. Re-orienting is what makes all three misalignment axes
/// observable from gravity alone — with a single pose the rotation about
/// the gravity vector is unobservable (paper §11.1: "static roll and yaw
/// tests are more difficult to perform since the platform must be
/// oriented").
class TiltSequenceProfile final : public TrajectoryProfile {
public:
    struct Pose {
        math::EulerAngles attitude{};
        double dwell_s = 10.0;
    };

    /// Cycles through `poses` until `duration_s` is exhausted.
    TiltSequenceProfile(std::vector<Pose> poses, double duration_s);

    [[nodiscard]] VehicleState state_at(double t) const override;
    [[nodiscard]] double duration() const override { return duration_; }
    [[nodiscard]] std::string name() const override { return "tilt-sequence"; }

private:
    std::vector<Pose> poses_;
    double cycle_s_;
    double duration_;
};

/// One commanded maneuver in a drive: longitudinal acceleration and yaw
/// rate targets held for `duration_s`, cosine-ramped at the edges.
struct DriveSegment {
    double duration_s = 1.0;
    double accel_mps2 = 0.0;     ///< longitudinal acceleration target
    double yaw_rate_rps = 0.0;   ///< heading rate target (only when moving)
    double grade = 0.0;          ///< road slope (rise/run); climbing > 0
    /// Road superelevation (rise/run across the lane); banking into a left
    /// turn > 0. Rolls the whole vehicle the way grade pitches it, rotating
    /// gravity laterally in the body frame — the classic bank/lateral-
    /// acceleration ambiguity a banked curve presents to the accelerometers.
    double bank = 0.0;
};

/// Configuration of the suspension/attitude coupling that turns planar
/// motion into the small roll/pitch responses real vehicles show.
struct DriveDynamics {
    double roll_per_lat_accel = -0.012;   ///< rad per m/s^2 (lean out of turns)
    double pitch_per_lon_accel = -0.009;  ///< rad per m/s^2 (squat/dive)
    double suspension_tau_s = 0.35;       ///< first-order response time
    double ramp_s = 0.8;                  ///< maneuver ramp duration
};

/// Planar vehicle drive built from a segment list, integrated on a fine
/// grid at construction. The dynamic tests of the paper ("standard private
/// passenger vehicle ... during car motion") are instances of this.
class DriveProfile final : public TrajectoryProfile {
public:
    DriveProfile(std::vector<DriveSegment> segments, DriveDynamics dynamics = {},
                 std::string name = "drive", double grid_dt = 1e-3);

    [[nodiscard]] VehicleState state_at(double t) const override;
    [[nodiscard]] double duration() const override { return duration_; }
    [[nodiscard]] std::string name() const override { return name_; }

    /// Peak speed over the drive (sanity metric for tests).
    [[nodiscard]] double max_speed() const { return max_speed_; }

    // --- Preset drives used by the experiment harness ---

    /// Stop-and-go urban profile: accelerations, braking, 90-degree turns.
    /// Rich in longitudinal AND lateral excitation, so all three
    /// misalignment axes are observable.
    [[nodiscard]] static DriveProfile city(double duration_s,
                                           std::uint64_t seed);

    /// Motorway profile: sustained speed, lane changes, gentle curves.
    [[nodiscard]] static DriveProfile highway(double duration_s,
                                              std::uint64_t seed);

    /// Calibration figure-eight: continuous turning at moderate speed.
    [[nodiscard]] static DriveProfile figure_eight(double duration_s);

private:
    struct Sample {
        math::Vec3 accel_nav{};
        math::EulerAngles attitude{};
        math::Vec3 omega_body{};
        double speed = 0.0;
    };

    std::vector<Sample> grid_;
    double grid_dt_;
    double duration_;
    double max_speed_ = 0.0;
    std::string name_;
};

}  // namespace ob::sim
