#include "sim/scenario_library.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/trajectory.hpp"
#include "util/rng.hpp"

namespace ob::sim {

namespace {

using math::EulerAngles;

ScenarioConfig with_profile(std::shared_ptr<const TrajectoryProfile> profile,
                            const EulerAngles& mis) {
    ScenarioConfig cfg;
    cfg.profile = std::move(profile);
    cfg.true_misalignment = mis;
    return cfg;
}

// --- Builders. Each is a pure function of (duration, misalignment, seed). --

ScenarioConfig build_static_level(double d, const EulerAngles& m,
                                  std::uint64_t) {
    return ScenarioConfig::static_level(d, m);
}

ScenarioConfig build_static_tilted(double d, const EulerAngles& m,
                                   std::uint64_t) {
    return ScenarioConfig::static_tilted(d, m,
                                         EulerAngles::from_deg(12.0, 8.0, 0.0));
}

ScenarioConfig build_city(double d, const EulerAngles& m, std::uint64_t seed) {
    return ScenarioConfig::dynamic_city(d, m, seed);
}

ScenarioConfig build_highway(double d, const EulerAngles& m,
                             std::uint64_t seed) {
    return ScenarioConfig::dynamic_highway(d, m, seed);
}

ScenarioConfig build_headlight(double d, const EulerAngles& m,
                               std::uint64_t seed) {
    // Lamp-pod accelerometer vs the vehicle IMU (§12): both instruments are
    // factory-calibrated, so the full alignment error is the pod knock.
    auto cfg = ScenarioConfig::dynamic_city(d, m, seed);
    cfg.acc_errors.bias_sigma = 0.0;
    cfg.imu_errors.accel_bias_sigma = 0.0;
    return cfg;
}

ScenarioConfig build_banked_curve(double d, const EulerAngles& m,
                                  std::uint64_t seed) {
    // Sustained constant-radius sweepers on superelevated road: the bank
    // rotates gravity laterally while the curve adds real lateral
    // acceleration — the two must not be confused with a roll misalignment.
    util::Rng rng(seed);
    std::vector<DriveSegment> segs;
    segs.push_back({8.0, 2.0, 0.0, 0.0, 0.0});  // run up to ~16 m/s
    double t = 8.0;
    double dir = 1.0;
    while (t < d) {
        const double sweep = rng.uniform(14.0, 20.0);
        segs.push_back({sweep, 0.0, dir * rng.uniform(0.10, 0.14), 0.0,
                        dir * rng.uniform(0.05, 0.08)});
        segs.push_back({4.0, 0.0, 0.0, 0.0, 0.0});  // flat connecting straight
        t += sweep + 4.0;
        dir = -dir;
    }
    return with_profile(std::make_shared<DriveProfile>(
                            DriveProfile(std::move(segs), {}, "banked-curve")),
                        m);
}

ScenarioConfig build_pothole_grid(double d, const EulerAngles& m,
                                  std::uint64_t seed) {
    // Low-speed grid over broken pavement: large low-frequency suspension
    // strikes. The filter must survive 4x the nominal road noise by running
    // with a correspondingly raised measurement noise.
    util::Rng rng(seed);
    std::vector<DriveSegment> segs;
    double t = 0.0;
    while (t < d) {
        const std::size_t start = segs.size();
        segs.push_back({rng.uniform(3.0, 5.0), rng.uniform(1.2, 1.8), 0.0});
        segs.push_back({rng.uniform(4.0, 8.0), 0.0, 0.0});
        if (rng.chance(0.5)) {
            const double dir = rng.chance(0.5) ? 1.0 : -1.0;
            segs.push_back({rng.uniform(3.0, 4.5), 0.0,
                            dir * rng.uniform(0.25, 0.35)});
        }
        segs.push_back({rng.uniform(2.0, 3.5), rng.uniform(-2.0, -1.4), 0.0});
        for (std::size_t i = start; i < segs.size(); ++i)
            t += segs[i].duration_s;
    }
    auto cfg = with_profile(std::make_shared<DriveProfile>(DriveProfile(
                                std::move(segs), {}, "pothole-grid")),
                            m);
    cfg.vibration.road_amp_per_sqrt_mps = 0.012;  // 4x nominal road input
    cfg.vibration.road_bandwidth_hz = 6.0;        // long suspension strikes
    return cfg;
}

ScenarioConfig build_emergency_brake(double d, const EulerAngles& m,
                                     std::uint64_t seed) {
    // Repeated full-ABS stops from ~55 km/h with an avoidance swerve:
    // maximal longitudinal excitation plus brake-dive pitch transients.
    util::Rng rng(seed);
    std::vector<DriveSegment> segs;
    double t = 0.0;
    while (t < d) {
        const std::size_t start = segs.size();
        segs.push_back({6.0, 2.5, 0.0});   // build speed
        segs.push_back({rng.uniform(2.0, 4.0), 0.0, 0.0});
        const double dir = rng.chance(0.5) ? 1.0 : -1.0;
        segs.push_back({1.2, 0.0, dir * 0.35});   // avoidance swerve
        segs.push_back({1.2, 0.0, -dir * 0.35});
        // Full braking, held past the stop: the profile clamps speed at
        // zero, so the generous duration guarantees rest every cycle even
        // though the cosine ramps soften the commanded deceleration.
        segs.push_back({4.0, -7.0, 0.0});
        segs.push_back({rng.uniform(1.5, 3.0), 0.0, 0.0});  // stopped
        for (std::size_t i = start; i < segs.size(); ++i)
            t += segs[i].duration_s;
    }
    return with_profile(std::make_shared<DriveProfile>(DriveProfile(
                            std::move(segs), {}, "emergency-brake")),
                        m);
}

ScenarioConfig build_washboard_gravel(double d, const EulerAngles& m,
                                      std::uint64_t seed) {
    // Corrugated gravel road at steady speed: broadband high-frequency
    // vibration near the sensor bandwidth, the harshest noise floor in the
    // library.
    util::Rng rng(seed);
    std::vector<DriveSegment> segs;
    segs.push_back({8.0, 1.5, 0.0});  // up to ~12 m/s
    double t = 8.0;
    while (t < d) {
        const double cruise = rng.uniform(6.0, 12.0);
        segs.push_back({cruise, 0.0, 0.0});
        t += cruise;
        if (rng.chance(0.6)) {
            const double dir = rng.chance(0.5) ? 1.0 : -1.0;
            segs.push_back({rng.uniform(4.0, 6.0), 0.0,
                            dir * rng.uniform(0.08, 0.15)});
            t += segs.back().duration_s;
        }
    }
    auto cfg = with_profile(std::make_shared<DriveProfile>(DriveProfile(
                                std::move(segs), {}, "washboard-gravel")),
                            m);
    cfg.vibration.road_amp_per_sqrt_mps = 0.010;
    cfg.vibration.road_bandwidth_hz = 35.0;       // washboard corrugation
    cfg.vibration.engine_amp_per_mps = 0.0008;    // everything rattles
    return cfg;
}

ScenarioConfig build_trailer_sway(double d, const EulerAngles& m,
                                  std::uint64_t seed) {
    // Motorway towing with periodic trailer-induced yaw oscillation: bursts
    // of sustained S-weave between calm cruise stretches.
    util::Rng rng(seed);
    std::vector<DriveSegment> segs;
    segs.push_back({12.0, 2.2, 0.0});  // on-ramp to ~26 m/s
    double t = 12.0;
    while (t < d) {
        const double cruise = rng.uniform(5.0, 9.0);
        segs.push_back({cruise, 0.0, 0.0});
        t += cruise;
        // Sway burst: several alternating half-periods at ~0.3 Hz.
        const int half_periods = static_cast<int>(rng.uniform_int(4, 8));
        double dir = rng.chance(0.5) ? 1.0 : -1.0;
        for (int i = 0; i < half_periods; ++i) {
            segs.push_back({1.6, 0.0, dir * rng.uniform(0.05, 0.08)});
            t += 1.6;
            dir = -dir;
        }
    }
    return with_profile(std::make_shared<DriveProfile>(DriveProfile(
                            std::move(segs), {}, "trailer-sway")),
                        m);
}

ScenarioConfig build_stop_and_go(double d, const EulerAngles& m,
                                 std::uint64_t seed) {
    // Congested crawl: endless weak accelerate/brake cycles with the odd
    // lane nudge — minimal excitation per cycle, so convergence must come
    // from accumulation rather than any single maneuver.
    util::Rng rng(seed);
    std::vector<DriveSegment> segs;
    double t = 0.0;
    int cycle = 0;
    while (t < d) {
        const std::size_t start = segs.size();
        segs.push_back({3.0, rng.uniform(1.0, 1.4), 0.0});
        segs.push_back({rng.uniform(1.5, 3.0), 0.0, 0.0});
        if (++cycle % 4 == 0) {
            const double dir = rng.chance(0.5) ? 1.0 : -1.0;
            segs.push_back({2.5, 0.0, dir * rng.uniform(0.15, 0.25)});
        }
        segs.push_back({2.5, rng.uniform(-1.7, -1.3), 0.0});
        segs.push_back({rng.uniform(1.5, 3.0), 0.0, 0.0});  // stationary
        for (std::size_t i = start; i < segs.size(); ++i)
            t += segs[i].duration_s;
    }
    return with_profile(std::make_shared<DriveProfile>(DriveProfile(
                            std::move(segs), {}, "stop-and-go")),
                        m);
}

ScenarioConfig build_thermal_soak(double d, const EulerAngles& m,
                                  std::uint64_t) {
    // Boresight bench run while the electronics heat up: the IMU
    // accelerometer biases random-walk an order of magnitude faster than
    // nominal, and the filter's bias-tracking random walk must follow.
    auto cfg = ScenarioConfig::static_tilted(
        d, m, EulerAngles::from_deg(12.0, 8.0, 0.0));
    cfg.imu_errors.accel_bias_walk = 4e-4;  // 20x nominal thermal ramp
    return cfg;
}

}  // namespace

ScenarioLibrary::ScenarioLibrary() {
    using E = EulerAngles;
    // The four §11/§12 paper scenarios first, then the stress library.
    specs_.push_back({
        .name = "static-level",
        .description = "stationary on a level platform; gravity-only "
                       "excitation leaves yaw unobservable (§11.1)",
        .duration_s = 300.0,
        .misalignment = E::from_deg(1.5, -2.0, 2.5),
        .meas_noise_mps2 = 0.0075,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 120.0,
                     .roll_deg = 0.35,
                     .pitch_deg = 0.35,
                     .yaw_deg = 0.0,
                     .check_yaw = false,
                     .residual_rms_max = 0.03},
        .sabre_envelope_scale = 1.5,
        .build = &build_static_level,
    });
    specs_.push_back({
        .name = "static-tilted",
        .description = "boresight bench dwell cycle through tilted poses; "
                       "gravity excites all three axes (§11.1)",
        .duration_s = 300.0,
        .misalignment = E::from_deg(1.5, -2.0, 2.5),
        .meas_noise_mps2 = 0.0075,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 150.0,
                     .roll_deg = 0.4,
                     .pitch_deg = 0.4,
                     .yaw_deg = 0.8,
                     .check_yaw = true,
                     .residual_rms_max = 0.05},
        .sabre_envelope_scale = 1.5,
        .build = &build_static_tilted,
    });
    specs_.push_back({
        .name = "city-drive",
        .description = "stop-start urban drive with 90-degree corners; "
                       "rich longitudinal and lateral excitation (§11.2)",
        .duration_s = 180.0,
        .misalignment = E::from_deg(1.0, -2.0, 1.5),
        .meas_noise_mps2 = 0.02,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 90.0,
                     .roll_deg = 0.5,
                     .pitch_deg = 0.5,
                     .yaw_deg = 1.0,
                     .check_yaw = true,
                     .residual_rms_max = 0.06},
        .sabre_envelope_scale = 1.5,
        .build = &build_city,
    });
    specs_.push_back({
        .name = "highway-drive",
        .description = "sustained motorway speed with lane changes and "
                       "gentle sweepers (§11.2 variant)",
        .duration_s = 180.0,
        .misalignment = E::from_deg(-0.8, 1.2, -1.0),
        .meas_noise_mps2 = 0.02,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 90.0,
                     .roll_deg = 0.5,
                     .pitch_deg = 0.5,
                     .yaw_deg = 1.2,
                     .check_yaw = true,
                     .residual_rms_max = 0.06},
        .sabre_envelope_scale = 1.5,
        .build = &build_highway,
    });
    specs_.push_back({
        .name = "carpark-bump",
        .description = "city drive with the mount knocked mid-run (§2); "
                       "the filter must re-converge to the new alignment",
        .duration_s = 240.0,
        .misalignment = E::from_deg(0.5, 1.0, 0.0),
        .meas_noise_mps2 = 0.02,
        .angle_process_noise = 2e-6,  // random walk wide enough to track
        .bump = {.at_s = 120.0, .delta = E::from_deg(1.5, -0.8, 0.7)},
        .envelope = {.settle_s = 60.0,
                     .roll_deg = 0.5,
                     .pitch_deg = 0.5,
                     .yaw_deg = 1.0,
                     .check_yaw = true,
                     .residual_rms_max = 0.06},
        .sabre_envelope_scale = 1.5,
        .build = &build_city,
    });
    specs_.push_back({
        .name = "headlight-leveling",
        .description = "factory-calibrated lamp-pod accelerometer vs the "
                       "vehicle IMU (§12); pitch must land inside the "
                       "~0.57 deg regulatory aim band",
        .duration_s = 180.0,
        .misalignment = E::from_deg(0.2, -0.9, 0.5),
        .meas_noise_mps2 = 0.02,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 90.0,
                     .roll_deg = 0.4,
                     .pitch_deg = 0.285,  // half the 0.57 deg aim band
                     .yaw_deg = 1.0,
                     .check_yaw = true,
                     .residual_rms_max = 0.06},
        // The pitch bound is derived from the regulatory aim band, which
        // does not relax for fixed-point hardware: Sabre must meet the
        // same envelope (it does, with >8x margin).
        .sabre_envelope_scale = 1.0,
        .build = &build_headlight,
    });
    specs_.push_back({
        .name = "banked-curve",
        .description = "constant-radius sweepers on superelevated road; "
                       "bank rotates gravity laterally while the curve adds "
                       "real lateral acceleration",
        .duration_s = 210.0,
        .misalignment = E::from_deg(1.2, -0.6, 0.9),
        .meas_noise_mps2 = 0.02,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 100.0,
                     .roll_deg = 0.6,
                     .pitch_deg = 0.5,
                     .yaw_deg = 1.2,
                     .check_yaw = true,
                     .residual_rms_max = 0.08},
        .sabre_envelope_scale = 1.5,
        .build = &build_banked_curve,
    });
    specs_.push_back({
        .name = "pothole-grid",
        .description = "low-speed crawl over broken pavement; 4x road "
                       "noise in long suspension strikes",
        .duration_s = 240.0,
        .misalignment = E::from_deg(-1.0, 1.5, -0.8),
        .meas_noise_mps2 = 0.03,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 120.0,
                     .roll_deg = 0.6,
                     .pitch_deg = 0.6,
                     .yaw_deg = 1.5,
                     .check_yaw = true,
                     .residual_rms_max = 0.09},
        .sabre_envelope_scale = 1.5,
        .build = &build_pothole_grid,
    });
    specs_.push_back({
        .name = "emergency-brake",
        .description = "repeated full-ABS stops with avoidance swerves; "
                       "maximal longitudinal excitation and brake dive",
        .duration_s = 180.0,
        .misalignment = E::from_deg(0.8, -1.4, 1.1),
        .meas_noise_mps2 = 0.025,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 90.0,
                     .roll_deg = 0.5,
                     .pitch_deg = 0.5,
                     .yaw_deg = 1.0,
                     .check_yaw = true,
                     .residual_rms_max = 0.09},
        .sabre_envelope_scale = 1.5,
        .build = &build_emergency_brake,
    });
    specs_.push_back({
        .name = "washboard-gravel",
        .description = "corrugated gravel at steady speed; broadband "
                       "high-frequency vibration near sensor bandwidth",
        .duration_s = 210.0,
        .misalignment = E::from_deg(1.6, 0.7, -1.2),
        .meas_noise_mps2 = 0.035,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 110.0,
                     .roll_deg = 0.6,
                     .pitch_deg = 0.6,
                     .yaw_deg = 1.5,
                     .check_yaw = true,
                     .residual_rms_max = 0.12},
        .sabre_envelope_scale = 1.5,
        .build = &build_washboard_gravel,
    });
    specs_.push_back({
        .name = "trailer-sway",
        .description = "motorway towing with periodic trailer yaw "
                       "oscillation bursts between calm cruise stretches",
        .duration_s = 180.0,
        .misalignment = E::from_deg(-0.6, 0.9, 1.4),
        .meas_noise_mps2 = 0.02,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 90.0,
                     .roll_deg = 0.5,
                     .pitch_deg = 0.5,
                     .yaw_deg = 1.2,
                     .check_yaw = true,
                     .residual_rms_max = 0.07},
        .sabre_envelope_scale = 1.5,
        .build = &build_trailer_sway,
    });
    specs_.push_back({
        .name = "stop-and-go",
        .description = "congested crawl of weak accelerate/brake cycles; "
                       "convergence by accumulation, not single maneuvers",
        .duration_s = 240.0,
        .misalignment = E::from_deg(0.9, -1.1, 0.7),
        .meas_noise_mps2 = 0.02,
        .angle_process_noise = 2e-7,
        .bump = {},
        .envelope = {.settle_s = 130.0,
                     .roll_deg = 0.5,
                     .pitch_deg = 0.5,
                     .yaw_deg = 2.0,
                     .check_yaw = true,
                     .residual_rms_max = 0.06},
        .sabre_envelope_scale = 1.5,
        .build = &build_stop_and_go,
    });
    specs_.push_back({
        .name = "thermal-soak",
        .description = "bench dwell cycle while electronics heat up; IMU "
                       "biases random-walk 20x faster than nominal",
        .duration_s = 300.0,
        .misalignment = E::from_deg(1.5, -2.0, 2.5),
        .meas_noise_mps2 = 0.0075,
        .angle_process_noise = 2e-6,  // must track the drifting bias
        .bump = {},
        .envelope = {.settle_s = 150.0,
                     .roll_deg = 0.5,
                     .pitch_deg = 0.5,
                     .yaw_deg = 1.0,
                     .check_yaw = true,
                     .residual_rms_max = 0.05},
        .sabre_envelope_scale = 1.5,
        .build = &build_thermal_soak,
    });
}

const ScenarioLibrary& ScenarioLibrary::instance() {
    static const ScenarioLibrary lib;
    return lib;
}

const ScenarioSpec* ScenarioLibrary::find(std::string_view name) const {
    for (const auto& s : specs_) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

const ScenarioSpec& ScenarioLibrary::at(std::string_view name) const {
    if (const auto* s = find(name)) return *s;
    throw std::out_of_range("ScenarioLibrary: unknown scenario '" +
                            std::string(name) + "'");
}

std::vector<std::string> ScenarioLibrary::names() const {
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const auto& s : specs_) out.push_back(s.name);
    return out;
}

std::uint64_t scenario_seed(std::string_view name, std::uint64_t base_seed) {
    // FNV-1a over the name, then fold in the base seed with a final mix so
    // nearby base seeds do not produce correlated streams.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    h ^= base_seed + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h;
}

ScenarioConfig build_scenario(const ScenarioSpec& spec,
                              std::uint64_t variant_seed) {
    return spec.build(spec.duration_s, spec.misalignment, variant_seed);
}

}  // namespace ob::sim
