#include "sim/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ob::sim {

using math::EulerAngles;
using math::Vec3;

Vec3 VehicleState::specific_force_body() const {
    const Vec3 g_nav{0.0, 0.0, kGravity};  // z down
    const Vec3 f_nav = accel_nav - g_nav;
    return math::dcm_from_euler(attitude) * f_nav;
}

VehicleState StaticProfile::state_at(double t) const {
    VehicleState s;
    s.t = t;
    s.attitude = attitude_;
    return s;  // zero acceleration, zero rates, zero speed
}

TiltSequenceProfile::TiltSequenceProfile(std::vector<Pose> poses,
                                         double duration_s)
    : poses_(std::move(poses)), cycle_s_(0.0), duration_(duration_s) {
    if (poses_.empty())
        throw std::invalid_argument("TiltSequenceProfile: no poses");
    for (const auto& p : poses_) {
        if (!(p.dwell_s > 0.0))
            throw std::invalid_argument("TiltSequenceProfile: bad dwell");
        cycle_s_ += p.dwell_s;
    }
}

VehicleState TiltSequenceProfile::state_at(double t) const {
    VehicleState s;
    s.t = t;
    double phase = std::fmod(std::max(t, 0.0), cycle_s_);
    for (const auto& p : poses_) {
        if (phase < p.dwell_s) {
            s.attitude = p.attitude;
            return s;
        }
        phase -= p.dwell_s;
    }
    s.attitude = poses_.back().attitude;
    return s;
}

namespace {

/// Cosine ramp from 0 to 1 over [0, ramp].
[[nodiscard]] double smooth01(double x) {
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    return 0.5 * (1.0 - std::cos(x * math::kPi));
}

}  // namespace

DriveProfile::DriveProfile(std::vector<DriveSegment> segments,
                           DriveDynamics dyn, std::string name, double grid_dt)
    : grid_dt_(grid_dt), duration_(0.0), name_(std::move(name)) {
    if (segments.empty())
        throw std::invalid_argument("DriveProfile: no segments");
    for (const auto& s : segments) duration_ += s.duration_s;

    const auto steps = static_cast<std::size_t>(duration_ / grid_dt_) + 1;
    grid_.reserve(steps + 1);

    double v = 0.0;
    double psi = 0.0;
    double roll = 0.0;
    double pitch = 0.0;
    double prev_roll = 0.0, prev_pitch = 0.0, prev_psi = 0.0;

    // Segment lookup state.
    std::size_t seg = 0;
    double seg_start = 0.0;

    for (std::size_t k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) * grid_dt_;
        while (seg + 1 < segments.size() &&
               t >= seg_start + segments[seg].duration_s) {
            seg_start += segments[seg].duration_s;
            ++seg;
        }
        const DriveSegment& s = segments[seg];
        // Ramp the commanded values in and out at segment edges.
        const double into = (t - seg_start) / dyn.ramp_s;
        const double outof = (seg_start + s.duration_s - t) / dyn.ramp_s;
        const double env = std::min(smooth01(into), smooth01(outof));

        double a_lon = s.accel_mps2 * env;
        double yaw_rate = s.yaw_rate_rps * env;
        const double grade = s.grade * env;
        const double bank = s.bank * env;

        // A stationary vehicle cannot brake backwards or yaw in place.
        if (v <= 0.0 && a_lon < 0.0) a_lon = 0.0;
        if (v < 0.5) yaw_rate *= v / 0.5;

        v = std::max(0.0, v + a_lon * grid_dt_);
        psi += yaw_rate * grid_dt_;
        max_speed_ = std::max(max_speed_, v);

        const double a_lat = v * yaw_rate;

        // First-order suspension response to the commanded accelerations,
        // plus the road slope: climbing pitches the whole vehicle nose-up,
        // rotating gravity in the body frame (the classic grade/
        // acceleration ambiguity the accelerometers then see).
        const double slope_pitch = std::atan(grade);
        const double bank_roll = std::atan(bank);
        const double alpha = grid_dt_ / (dyn.suspension_tau_s + grid_dt_);
        roll += alpha * (dyn.roll_per_lat_accel * a_lat + bank_roll - roll);
        pitch += alpha *
                 (dyn.pitch_per_lon_accel * a_lon + slope_pitch - pitch);

        Sample out;
        out.speed = v;
        out.attitude = EulerAngles{roll, pitch, psi};
        const double cpsi = std::cos(psi), spsi = std::sin(psi);
        out.accel_nav = Vec3{a_lon * cpsi - a_lat * spsi,
                             a_lon * spsi + a_lat * cpsi, 0.0};
        const Vec3 euler_dot =
            k == 0 ? Vec3{0, 0, 0}
                   : Vec3{(roll - prev_roll) / grid_dt_,
                          (pitch - prev_pitch) / grid_dt_,
                          (psi - prev_psi) / grid_dt_};
        out.omega_body = math::body_rates_from_euler_rates(out.attitude, euler_dot);
        prev_roll = roll;
        prev_pitch = pitch;
        prev_psi = psi;
        grid_.push_back(out);
    }
}

VehicleState DriveProfile::state_at(double t) const {
    VehicleState s;
    s.t = t;
    const double clamped = std::clamp(t, 0.0, duration_);
    const auto idx = std::min(
        static_cast<std::size_t>(clamped / grid_dt_), grid_.size() - 1);
    const Sample& g = grid_[idx];
    s.accel_nav = g.accel_nav;
    s.attitude = g.attitude;
    s.omega_body = g.omega_body;
    s.speed = g.speed;
    return s;
}

DriveProfile DriveProfile::city(double duration_s, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<DriveSegment> segs;
    double t = 0.0;
    // Alternate stop-go blocks with turns, randomized but seeded.
    while (t < duration_s) {
        const std::size_t block_start = segs.size();
        const double grade = rng.uniform(-0.04, 0.04);  // city hills
        const double accel_t = rng.uniform(3.0, 6.0);
        segs.push_back({accel_t, rng.uniform(1.5, 2.5), 0.0, grade});
        const double cruise_t = rng.uniform(4.0, 10.0);
        segs.push_back({cruise_t, 0.0, 0.0, grade});
        if (rng.chance(0.6)) {
            // 90-degree-ish corner at moderate yaw rate.
            const double dir = rng.chance(0.5) ? 1.0 : -1.0;
            segs.push_back({rng.uniform(3.0, 5.0), 0.0,
                            dir * rng.uniform(0.25, 0.4), grade});
        }
        const double brake_t = rng.uniform(2.5, 4.5);
        segs.push_back({brake_t, rng.uniform(-3.0, -2.0), 0.0, grade});
        segs.push_back({rng.uniform(1.0, 3.0), 0.0, 0.0, 0.0});  // idle
        for (std::size_t i = block_start; i < segs.size(); ++i)
            t += segs[i].duration_s;
    }
    return DriveProfile(std::move(segs), {}, "city");
}

DriveProfile DriveProfile::highway(double duration_s, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<DriveSegment> segs;
    segs.push_back({12.0, 2.2, 0.0});  // on-ramp to ~26 m/s
    double t = 12.0;
    while (t < duration_s) {
        const double cruise_t = rng.uniform(8.0, 15.0);
        segs.push_back({cruise_t, 0.0, 0.0});
        t += cruise_t;
        if (rng.chance(0.5)) {
            // Lane change: S-shaped yaw wiggle.
            const double dir = rng.chance(0.5) ? 1.0 : -1.0;
            segs.push_back({1.5, 0.0, dir * 0.06});
            segs.push_back({1.5, 0.0, -dir * 0.06});
            t += 3.0;
        } else {
            // Gentle sweeping curve.
            segs.push_back({rng.uniform(5.0, 9.0), 0.0,
                            (rng.chance(0.5) ? 1.0 : -1.0) * 0.03});
            t += segs.back().duration_s;
        }
    }
    return DriveProfile(std::move(segs), {}, "highway");
}

DriveProfile DriveProfile::figure_eight(double duration_s) {
    std::vector<DriveSegment> segs;
    segs.push_back({6.0, 1.8, 0.0});  // get moving
    double t = 6.0;
    bool left = true;
    while (t < duration_s) {
        segs.push_back({12.0, 0.0, left ? 0.30 : -0.30});
        left = !left;
        t += 12.0;
    }
    return DriveProfile(std::move(segs), {}, "figure8");
}

}  // namespace ob::sim
