#pragma once

#include <memory>
#include <optional>

#include "comm/codec.hpp"
#include "sim/acc_model.hpp"
#include "sim/imu_model.hpp"
#include "sim/scenario_trace.hpp"
#include "sim/trajectory.hpp"

namespace ob::sim {

/// Complete experiment description: trajectory, injected misalignment and
/// all sensor error magnitudes. Mirrors the paper's §11 test setup: the
/// system is calibrated, "misalignments of a few degrees were introduced
/// in roll, pitch and yaw", then data is collected for 300 seconds.
struct ScenarioConfig {
    std::shared_ptr<const TrajectoryProfile> profile;
    math::EulerAngles true_misalignment{};
    ImuErrorConfig imu_errors{};
    AccErrorConfig acc_errors{};
    VibrationConfig vibration{};
    comm::AdxlConfig adxl{};
    double sample_rate_hz = 100.0;
    /// ACC mounting position relative to the IMU, body frame (meters).
    /// Nonzero values exercise the lever-arm compensation path.
    math::Vec3 acc_lever_arm{};

    // --- Presets matching the paper's experiments -------------------------

    /// §11.1 static test, level platform: only roll/pitch observable.
    [[nodiscard]] static ScenarioConfig static_level(
        double duration_s, math::EulerAngles misalignment);

    /// §11.1 static test with the platform tilted so gravity excites all
    /// axes (the paper: "the platform must be oriented to use gravity to
    /// generate components of acceleration in the ACC and DMU").
    [[nodiscard]] static ScenarioConfig static_tilted(
        double duration_s, math::EulerAngles misalignment,
        math::EulerAngles platform_tilt);

    /// §11.2 dynamic test: city drive in a passenger vehicle.
    [[nodiscard]] static ScenarioConfig dynamic_city(
        double duration_s, math::EulerAngles misalignment, std::uint64_t seed);

    /// §11.2 dynamic test variant: highway drive.
    [[nodiscard]] static ScenarioConfig dynamic_highway(
        double duration_s, math::EulerAngles misalignment, std::uint64_t seed);
};

/// The Realize layer: a per-seed instrument realization over a
/// ScenarioTrace, producing the raw wire-format sensor pair stream plus
/// ground truth. The single-argument-pair constructor synthesizes its own
/// trace (the historical behavior, bit for bit); the trace constructor
/// shares an immutable trace across many realizations — the same vehicle
/// and road, different instrument seeds.
class Scenario {
public:
    Scenario(ScenarioConfig cfg, std::uint64_t seed);

    /// Realize over a shared trace: `seed` drives the instrument draws
    /// (biases, scale factors, white noise), `true_misalignment` the
    /// mounting truth the ACC senses through.
    Scenario(std::shared_ptr<const ScenarioTrace> trace,
             math::EulerAngles true_misalignment, std::uint64_t seed);

    /// One synchronized sensor epoch.
    struct Step {
        double t = 0.0;
        comm::DmuSample dmu;       ///< IMU raw sample (CAN payload units)
        comm::AdxlTiming adxl;     ///< ACC raw PWM timings
        VehicleState truth;        ///< kinematic ground truth
        math::Vec3 f_body_true{};  ///< true specific force at the body
        math::Vec3 omega_dot_true{};  ///< body angular acceleration
    };

    /// Produce the next epoch, or nullopt when the profile's duration is
    /// exhausted.
    [[nodiscard]] std::optional<Step> next();

    /// Copy-free variant for hot realize loops: fills `out` in place and
    /// returns false when the trace is exhausted. Identical draw sequence
    /// and values to next() — callers reuse one Step across epochs instead
    /// of moving a fresh optional per call.
    [[nodiscard]] bool next_into(Step& out);

    /// Minimal realize step for transport-bound loops (the fleet path):
    /// only the timestamped wire-format sensor pair, skipping the truth
    /// copies a full Step carries. Identical draw sequence and values;
    /// interleaves freely with bump() and the other iteration forms.
    [[nodiscard]] bool next_wire(double& t, comm::DmuSample& dmu,
                                 comm::AdxlTiming& adxl);

    /// True misalignment currently in effect (changes after bump()).
    [[nodiscard]] math::EulerAngles true_misalignment() const {
        return acc_.true_misalignment();
    }

    /// Inject a mounting disturbance mid-run (paper: "car park bumps").
    void bump(const math::EulerAngles& delta) { acc_.bump(delta); }

    /// Arm a frozen-register fault window on the DMU realization (see
    /// ImuModel::set_fault; no effect on the RNG streams).
    void inject_imu_fault(const SensorFault& fault) { imu_.set_fault(fault); }

    /// Arm a stuck-output fault window on the ACC realization (see
    /// AccModel::set_fault; no effect on the RNG streams).
    void inject_acc_fault(const SensorFault& fault) { acc_.set_fault(fault); }

    [[nodiscard]] const comm::DmuScale& dmu_scale() const {
        return imu_.scale();
    }
    [[nodiscard]] const comm::AdxlConfig& adxl_config() const {
        return acc_.adxl_config();
    }
    [[nodiscard]] double sample_rate_hz() const {
        return trace_->sample_rate_hz();
    }
    [[nodiscard]] double duration() const { return trace_->duration(); }
    [[nodiscard]] const AccModel& acc_model() const { return acc_; }

    /// The immutable trace this realization consumes.
    [[nodiscard]] const ScenarioTrace& trace() const { return *trace_; }
    [[nodiscard]] const std::shared_ptr<const ScenarioTrace>& trace_ptr()
        const {
        return trace_;
    }

private:
    std::shared_ptr<const ScenarioTrace> trace_;
    ImuModel imu_;
    AccModel acc_;
    std::size_t step_ = 0;
};

}  // namespace ob::sim
