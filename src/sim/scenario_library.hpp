#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "math/rotation.hpp"
#include "sim/scenario.hpp"

namespace ob::sim {

/// Regression envelope a library scenario is expected to satisfy: after
/// `settle_s` of convergence time every recorded estimate-error sample must
/// stay inside the per-axis half-widths, and the innovation RMS must stay
/// under `residual_rms_max`. `check_yaw` is off for scenarios where yaw is
/// unobservable (level platform, gravity-only excitation — the paper's
/// §11.1 lesson).
struct ScenarioEnvelope {
    double settle_s = 60.0;
    double roll_deg = 0.5;
    double pitch_deg = 0.5;
    double yaw_deg = 1.0;
    bool check_yaw = true;
    double residual_rms_max = 0.1;  ///< m/s²
};

/// Mid-run mounting disturbance (the paper's §2 "car park bump"). When
/// enabled, the envelope settle window restarts at the bump: the filter is
/// given `settle_s` seconds to re-converge to the new alignment.
struct ScenarioBump {
    double at_s = -1.0;  ///< simulation time of the knock; < 0 disables
    math::EulerAngles delta{};
    [[nodiscard]] bool enabled() const { return at_s >= 0.0; }
};

/// One named, parameterized entry of the scenario library. The builder is a
/// pure function of its arguments, so a (name, duration, misalignment,
/// seed) tuple always produces the identical scenario — the property the
/// fleet runner's bitwise serial/parallel guarantee rests on.
struct ScenarioSpec {
    std::string name;         ///< stable identifier, kebab-case
    std::string description;  ///< one-line physics summary
    double duration_s = 180.0;                ///< default run length
    math::EulerAngles misalignment{};         ///< default injected truth
    /// Recommended filter tuning (the paper's §11 knobs). Plain numbers —
    /// the sim layer does not depend on the filter types.
    double meas_noise_mps2 = 0.02;
    double angle_process_noise = 2e-7;  ///< random-walk 1σ per step (rad)
    ScenarioBump bump{};
    ScenarioEnvelope envelope{};
    /// Envelope half-width multiplier applied when the scenario runs on the
    /// float32 Sabre firmware instead of the double-precision native EKF.
    double sabre_envelope_scale = 1.0;
    /// Build the scenario at an explicit duration/truth; `variant_seed`
    /// decorrelates any profile-level randomness (drive layout) between
    /// fleet vehicles without touching the sensor seeds.
    ///
    /// Contract: `mis` must influence nothing but the returned config's
    /// `true_misalignment`. The fleet's shared-trace cache keys on
    /// (name, duration, seed) only, so a builder that varied the profile
    /// or error magnitudes with `mis` would silently break trace sharing
    /// across a misalignment sweep.
    ScenarioConfig (*build)(double duration_s, const math::EulerAngles& mis,
                            std::uint64_t variant_seed) = nullptr;
};

/// The registry of named driving scenarios. Covers the paper's §11/§12
/// experiments plus the stress scenarios the ROADMAP's "as many scenarios
/// as you can imagine" north star asks for. Iteration order is fixed (and
/// alphabetically stable names are required), so fleet batches built from
/// `all()` are reproducible.
class ScenarioLibrary {
public:
    [[nodiscard]] static const ScenarioLibrary& instance();

    [[nodiscard]] const std::vector<ScenarioSpec>& all() const {
        return specs_;
    }
    /// nullptr when the name is unknown.
    [[nodiscard]] const ScenarioSpec* find(std::string_view name) const;
    /// Throws std::out_of_range naming the missing scenario.
    [[nodiscard]] const ScenarioSpec& at(std::string_view name) const;
    [[nodiscard]] std::vector<std::string> names() const;

    ScenarioLibrary(const ScenarioLibrary&) = delete;
    ScenarioLibrary& operator=(const ScenarioLibrary&) = delete;

private:
    ScenarioLibrary();
    std::vector<ScenarioSpec> specs_;
};

/// Deterministic per-scenario seed: FNV-1a of the scenario name folded with
/// the caller's base seed. Every fleet job derives its RNG streams from
/// this, so no shared generator exists and worker scheduling cannot leak
/// into the numerics.
[[nodiscard]] std::uint64_t scenario_seed(std::string_view name,
                                          std::uint64_t base_seed);

/// Convenience: build a spec's scenario at its default duration and truth.
[[nodiscard]] ScenarioConfig build_scenario(const ScenarioSpec& spec,
                                            std::uint64_t variant_seed);

}  // namespace ob::sim
