#include "sim/scenario_trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace ob::sim {

using math::Vec3;

std::shared_ptr<const ScenarioTrace> ScenarioTrace::build(
    const ScenarioConfig& cfg, std::uint64_t sensor_seed) {
    if (!cfg.profile)
        throw std::invalid_argument("ScenarioTrace: null profile");
    if (cfg.sample_rate_hz <= 0.0)
        throw std::invalid_argument("ScenarioTrace: bad sample rate");

    auto trace = std::shared_ptr<ScenarioTrace>(new ScenarioTrace());
    trace->sample_rate_hz_ = cfg.sample_rate_hz;
    trace->dt_ = 1.0 / cfg.sample_rate_hz;
    trace->duration_ = cfg.profile->duration();
    trace->sensor_seed_ = sensor_seed;
    trace->imu_errors_ = cfg.imu_errors;
    trace->acc_errors_ = cfg.acc_errors;
    trace->vibration_ = cfg.vibration;
    trace->adxl_ = cfg.adxl;
    trace->acc_lever_arm_ = cfg.acc_lever_arm;

    // Mount-vibration generators, forked exactly the way the instrument
    // models fork theirs: the fork is the FIRST draw on each instrument
    // stream, so the vibration sequence here is the one a pre-trace
    // Scenario seeded with `sensor_seed` produced.
    util::Rng imu_rng(sensor_seed);
    VibrationModel imu_vib(cfg.vibration, imu_rng.fork());
    util::Rng acc_rng(sensor_seed ^ kAccStreamSalt);
    VibrationModel acc_vib(cfg.vibration, acc_rng.fork());

    const double dt = trace->dt_;
    const double duration = trace->duration_;
    const auto expected =
        static_cast<std::size_t>(duration / dt) + 2;
    trace->t_.reserve(expected);
    trace->truth_.reserve(expected);
    trace->f_body_true_.reserve(expected);
    trace->omega_dot_true_.reserve(expected);
    trace->imu_force_.reserve(expected);
    trace->imu_rate_.reserve(expected);
    trace->acc_force_.reserve(expected);

    const Vec3& r = trace->acc_lever_arm_;
    for (std::size_t i = 0;; ++i) {
        const double t = static_cast<double>(i) * dt;
        if (t > duration) break;

        VehicleState truth = cfg.profile->state_at(t);
        const Vec3 f_body = truth.specific_force_body();
        // Angular acceleration by central difference on the profile (the
        // association matches the historical Scenario::next exactly).
        const double h = dt / 2.0;
        const Vec3 w_minus =
            cfg.profile->state_at(std::max(t - h, 0.0)).omega_body;
        const Vec3 w_plus = cfg.profile->state_at(t + h).omega_body;
        const Vec3 omega_dot = (w_plus - w_minus) * (1.0 / (2.0 * h));

        // IMU mount: accel then gyro vibration, the ImuModel::sample order.
        const Vec3 vib_a = imu_vib.step_accel(t, dt, truth.speed);
        const Vec3 vib_g = imu_vib.step_gyro(dt, truth.speed);
        // ACC mount: lever-arm kinematics plus local vibration, the
        // AccModel::sample order and association.
        const Vec3 lever = math::cross(omega_dot, r) +
                           math::cross(truth.omega_body,
                                       math::cross(truth.omega_body, r));
        const Vec3 acc_vib_a = acc_vib.step_accel(t, dt, truth.speed);

        trace->t_.push_back(t);
        trace->f_body_true_.push_back(f_body);
        trace->omega_dot_true_.push_back(omega_dot);
        trace->imu_force_.push_back(f_body + vib_a);
        trace->imu_rate_.push_back(truth.omega_body + vib_g);
        trace->acc_force_.push_back((f_body + lever) + acc_vib_a);
        trace->truth_.push_back(std::move(truth));
    }
    return trace;
}

}  // namespace ob::sim
