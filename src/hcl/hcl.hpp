#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ob::hcl {

// A minimal Handel-C-like cycle-based simulation kernel. The paper's FPGA
// system is structured as `par { ... }` blocks of communicating processes
// advanced by a common clock (Figure 4); this kernel reproduces those
// semantics in C++: every registered process "ticks" once per cycle, and
// `Signal<T>` values written during a cycle become visible only at the
// next cycle (two-phase update), so tick ordering cannot introduce races.

namespace detail {
class SignalBase {
public:
    virtual ~SignalBase() = default;
    virtual void commit() = 0;
};
}  // namespace detail

class Simulation;

/// A clocked register: reads return the value latched at the last clock
/// edge; writes take effect at the next edge.
template <typename T>
class Signal final : public detail::SignalBase {
public:
    explicit Signal(T initial = T{}) : current_(initial), next_(initial) {}

    [[nodiscard]] const T& read() const { return current_; }
    void write(const T& v) { next_ = v; }
    void commit() override { current_ = next_; }

private:
    T current_;
    T next_;
};

/// One concurrently-running hardware process: `tick()` is the combinational
/// work done each clock cycle.
class Process {
public:
    virtual ~Process() = default;
    virtual void tick(std::uint64_t cycle) = 0;
    [[nodiscard]] virtual std::string name() const { return "process"; }
};

/// Convenience adaptor for lambda processes.
class LambdaProcess final : public Process {
public:
    LambdaProcess(std::string name, std::function<void(std::uint64_t)> fn)
        : name_(std::move(name)), fn_(std::move(fn)) {}
    void tick(std::uint64_t cycle) override { fn_(cycle); }
    [[nodiscard]] std::string name() const override { return name_; }

private:
    std::string name_;
    std::function<void(std::uint64_t)> fn_;
};

/// The clocked `par { ... }` container: owns signals, runs all processes
/// once per cycle, then commits every signal.
class Simulation {
public:
    /// Register a process (non-owning; caller keeps it alive).
    void add(Process& p) { processes_.push_back(&p); }

    /// Create and own a signal.
    template <typename T>
    Signal<T>& signal(T initial = T{}) {
        auto s = std::make_unique<Signal<T>>(initial);
        Signal<T>& ref = *s;
        signals_.push_back(std::move(s));
        return ref;
    }

    /// Advance one clock cycle: tick all processes, then commit signals.
    void step();

    /// Advance n cycles.
    void run(std::size_t n);

    /// Run until `done()` returns true or `max_cycles` elapse; returns the
    /// number of cycles executed.
    std::size_t run_until(const std::function<bool()>& done,
                          std::size_t max_cycles);

    [[nodiscard]] std::uint64_t cycles() const { return cycle_; }

private:
    std::vector<Process*> processes_;
    std::vector<std::unique_ptr<detail::SignalBase>> signals_;
    std::uint64_t cycle_ = 0;
};

/// Handel-C `seq { ... }` helper: runs a list of steps, one per cycle.
/// Each step returns true when it is finished (allowing multi-cycle steps).
class Sequencer final : public Process {
public:
    using Step = std::function<bool(std::uint64_t cycle)>;

    explicit Sequencer(std::string name = "seq") : name_(std::move(name)) {}

    Sequencer& then(Step s) {
        steps_.push_back(std::move(s));
        return *this;
    }

    void tick(std::uint64_t cycle) override {
        if (index_ >= steps_.size()) return;
        if (steps_[index_](cycle)) ++index_;
    }

    [[nodiscard]] bool done() const { return index_ >= steps_.size(); }
    [[nodiscard]] std::string name() const override { return name_; }
    void restart() { index_ = 0; }

private:
    std::string name_;
    std::vector<Step> steps_;
    std::size_t index_ = 0;
};

}  // namespace ob::hcl
