#include "hcl/hcl.hpp"

namespace ob::hcl {

void Simulation::step() {
    for (Process* p : processes_) p->tick(cycle_);
    for (auto& s : signals_) s->commit();
    ++cycle_;
}

void Simulation::run(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) step();
}

std::size_t Simulation::run_until(const std::function<bool()>& done,
                                  std::size_t max_cycles) {
    std::size_t n = 0;
    while (n < max_cycles && !done()) {
        step();
        ++n;
    }
    return n;
}

}  // namespace ob::hcl
