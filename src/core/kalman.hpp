#pragma once

#include <optional>
#include <stdexcept>

#include "math/matrix.hpp"

namespace ob::core {

/// Generic fixed-size extended Kalman filter kernel.
///
/// The template carries only the algebra — predict and update with explicit
/// Jacobians — so it can be unit-tested against textbook cases
/// independently of the boresight measurement model built on top of it.
///
/// The covariance update uses the Joseph stabilized form
///   P <- (I-KH) P (I-KH)ᵀ + K R Kᵀ
/// followed by forced symmetrization, which keeps P positive semi-definite
/// over the paper's 30 000-update runs.
template <std::size_t Nx, std::size_t Nz>
class Ekf {
public:
    using StateVec = math::Vec<Nx>;
    using StateCov = math::Mat<Nx, Nx>;
    using MeasVec = math::Vec<Nz>;
    using MeasCov = math::Mat<Nz, Nz>;
    using MeasJac = math::Mat<Nz, Nx>;
    using Gain = math::Mat<Nx, Nz>;

    Ekf(const StateVec& x0, const StateCov& p0) : x_(x0), p_(p0) {}

    /// Diagnostics of one measurement update.
    struct UpdateResult {
        MeasVec innovation{};   ///< z - h(x) before the update
        MeasCov s{};            ///< innovation covariance H P Hᵀ + R
        double nis = 0.0;       ///< normalized innovation squared νᵀS⁻¹ν
        bool accepted = true;   ///< false if rejected by the NIS gate
    };

    /// Time update with explicit transition Jacobian F and process noise Q.
    void predict(const math::Mat<Nx, Nx>& f, const StateCov& q) {
        x_ = f * x_;
        p_ = (f * p_ * f.transposed() + q).symmetrized();
    }

    /// Time update for a static state (F = I): only adds process noise.
    /// This is the boresight case — the mount doesn't move, it only creeps.
    void predict_static(const StateCov& q) { p_ = (p_ + q).symmetrized(); }

    /// Measurement update. `z` is the observation, `z_pred` = h(x̂), `h` the
    /// measurement Jacobian at x̂ and `r` the measurement covariance.
    /// If `nis_gate > 0`, updates whose NIS exceeds the gate are rejected
    /// (state untouched) but still reported — the outlier-robustness hook.
    UpdateResult update(const MeasVec& z, const MeasVec& z_pred,
                        const MeasJac& h, const MeasCov& r,
                        double nis_gate = 0.0) {
        UpdateResult out;
        out.innovation = z - z_pred;
        out.s = (h * p_ * h.transposed() + r).symmetrized();
        const MeasCov s_inv = math::inverse(out.s);
        out.nis = math::dot(out.innovation, s_inv * out.innovation);
        if (nis_gate > 0.0 && out.nis > nis_gate) {
            out.accepted = false;
            return out;
        }
        const Gain k = p_ * h.transposed() * s_inv;
        x_ += k * out.innovation;
        const auto ikh = math::Mat<Nx, Nx>::identity() - k * h;
        p_ = (ikh * p_ * ikh.transposed() + k * r * k.transposed()).symmetrized();
        return out;
    }

    [[nodiscard]] const StateVec& state() const noexcept { return x_; }
    [[nodiscard]] const StateCov& covariance() const noexcept { return p_; }

    /// Overwrite the state estimate (used by calibration/reset flows).
    void set_state(const StateVec& x) { x_ = x; }
    void set_covariance(const StateCov& p) { p_ = p.symmetrized(); }

    /// 1-sigma of state component i (sqrt of the diagonal).
    [[nodiscard]] double sigma(std::size_t i) const {
        if (i >= Nx) throw std::out_of_range("Ekf::sigma index");
        const double v = p_(i, i);
        return v > 0.0 ? std::sqrt(v) : 0.0;
    }

private:
    StateVec x_;
    StateCov p_;
};

}  // namespace ob::core
