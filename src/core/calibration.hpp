#pragma once

#include <cmath>
#include <cstddef>

#include "core/boresight_ekf.hpp"
#include "math/matrix.hpp"
#include "math/rotation.hpp"

namespace ob::core {

/// The paper's pre-test procedure ("the instruments were calibrated using
/// a level test platform", §11.1): with the sensor at a *known* alignment,
/// the mean difference between the ACC reading and the prediction from the
/// IMU is the combined instrument bias, which is then subtracted during
/// the actual alignment run.
///
/// Accumulates z - h(known_misalignment, 0, f_body) and reports its mean
/// and standard error.
class CalibrationAccumulator {
public:
    explicit CalibrationAccumulator(
        math::EulerAngles known_misalignment = {})
        : known_(known_misalignment) {}

    void add(const math::Vec3& f_body, const math::Vec2& z) {
        const math::Vec2 pred = BoresightEkf::predict_measurement(
            known_.vec(), math::Vec2{}, f_body);
        const math::Vec2 d = z - pred;
        for (std::size_t i = 0; i < 2; ++i) {
            sum_[i] += d[i];
            sumsq_[i] += d[i] * d[i];
        }
        ++n_;
    }

    [[nodiscard]] std::size_t samples() const { return n_; }

    /// Estimated combined bias (subtract from subsequent ACC readings).
    [[nodiscard]] math::Vec2 bias() const {
        if (n_ == 0) return {};
        return math::Vec2{sum_[0] / static_cast<double>(n_),
                          sum_[1] / static_cast<double>(n_)};
    }

    /// Standard error of the bias estimate per axis.
    [[nodiscard]] math::Vec2 bias_stderr() const {
        if (n_ < 2) return {};
        math::Vec2 out;
        const auto n = static_cast<double>(n_);
        for (std::size_t i = 0; i < 2; ++i) {
            const double mean = sum_[i] / n;
            const double var = (sumsq_[i] - n * mean * mean) / (n - 1.0);
            out[i] = std::sqrt(std::max(var, 0.0) / n);
        }
        return out;
    }

    /// Observed per-sample measurement noise — a principled initial R for
    /// the fusion filter (this is how the paper's "good measurement noise
    /// value" was selected from residuals).
    [[nodiscard]] double noise_sigma() const {
        if (n_ < 2) return 0.0;
        const auto n = static_cast<double>(n_);
        double var = 0.0;
        for (std::size_t i = 0; i < 2; ++i) {
            const double mean = sum_[i] / n;
            var += (sumsq_[i] - n * mean * mean) / (n - 1.0);
        }
        return std::sqrt(var / 2.0);
    }

private:
    math::EulerAngles known_;
    double sum_[2] = {0.0, 0.0};
    double sumsq_[2] = {0.0, 0.0};
    std::size_t n_ = 0;
};

}  // namespace ob::core
