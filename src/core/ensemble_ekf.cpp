#include "core/ensemble_ekf.hpp"

#include <stdexcept>

namespace ob::core {

EnsembleEkf::EnsembleEkf(const BoresightConfig& cfg, std::size_t lanes) {
    if (lanes == 0) {
        throw std::invalid_argument("EnsembleEkf: at least one lane");
    }
    lanes_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) lanes_.emplace_back(cfg);
}

void EnsembleEkf::step_all(const math::Vec3* f_body, const math::Vec2* z,
                           BoresightEkf::Update* out) {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
        out[i] = lanes_[i].step(f_body[i], z[i]);
    }
}

}  // namespace ob::core
