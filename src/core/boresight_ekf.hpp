#pragma once

#include "core/kalman.hpp"
#include "math/matrix.hpp"
#include "math/rotation.hpp"

namespace ob::core {

/// How the measurement Jacobian is obtained.
enum class JacobianMode {
    kAnalyticSmallAngle,  ///< rows of skew(C·f_b): exact to first order
    kNumeric,             ///< central differences on the exact model
};

/// Tuning of the boresight sensor-fusion filter. The defaults correspond
/// to the paper's static tests; `meas_noise_mps2` is the value §11 tunes
/// (0.003–0.01 static, ≥0.015 moving).
struct BoresightConfig {
    /// Measurement noise 1-sigma per ACC axis (m/s²) — the paper's knob.
    double meas_noise_mps2 = 0.01;
    /// Mount-creep random walk per filter step (rad) — keeps the filter
    /// able to track "car park bump" style slow changes.
    double angle_process_noise = 2e-7;
    /// Initial 1-sigma on each misalignment angle (rad).
    double init_angle_sigma = math::deg2rad(5.0);
    /// Estimate the two ACC biases alongside the angles (5-state filter).
    /// With biases off, the filter assumes pre-calibrated instruments as in
    /// the paper's static procedure.
    bool estimate_bias = false;
    double init_bias_sigma = 0.05;        ///< m/s²
    double bias_process_noise = 1e-6;     ///< m/s² per step random walk
    /// Optional chi-square gate on the 2-DOF NIS (0 disables). 13.8
    /// corresponds to ~0.1% false-reject.
    double nis_gate = 0.0;
    JacobianMode jacobian = JacobianMode::kAnalyticSmallAngle;
    /// Known ACC lever arm relative to the IMU (body frame, meters). When
    /// nonzero, `step_with_rates` compensates the Euler + centripetal
    /// accelerations the offset mount feels — this is what the DMU's
    /// gyroscopes contribute to the fusion.
    math::Vec3 lever_arm{};
};

/// The paper's "Sensor Fusion Algorithm": an EKF estimating the roll,
/// pitch and yaw misalignment of a sensor-mounted two-axis accelerometer
/// (ACC) relative to the vehicle-fixed IMU, by comparing the specific
/// force both feel.
///
/// State: [roll, pitch, yaw, bias_x', bias_y'] — misalignment Euler angles
/// (3-2-1) of the sensor frame w.r.t. the body frame, plus optional ACC
/// biases. Measurement: the ACC's x',y' specific-force components.
/// Model: z = (C_s←b(ρ) · f_b)_{x,y} + b + v.
///
/// Observability mirrors §11 of the paper: with gravity as the only
/// excitation (level static test) yaw is unobservable; tilting the platform
/// or driving maneuvers make all three axes observable.
class BoresightEkf {
public:
    explicit BoresightEkf(const BoresightConfig& cfg = {});

    /// One fused measurement epoch.
    /// `f_body` — IMU-measured specific force (m/s², body frame);
    /// `f_sensor_xy` — ACC-measured specific force (m/s², sensor x'/y').
    /// Returns the innovation diagnostics used for Figure 8 style residual
    /// monitoring.
    struct Update {
        math::Vec2 residual{};  ///< measurement innovation (m/s²)
        math::Vec2 sigma3{};    ///< 3σ innovation envelope per axis
        double nis = 0.0;
        bool used = true;
    };
    Update step(const math::Vec3& f_body, const math::Vec2& f_sensor_xy);

    /// Lever-arm-aware epoch: additionally takes the gyro-measured body
    /// angular rate and its derivative, and predicts the measurement at
    /// the ACC's mount point f_b + ω̇×r + ω×(ω×r) before rotating it into
    /// the sensor frame. With a zero configured lever arm this reduces to
    /// `step`.
    Update step_with_rates(const math::Vec3& f_body, const math::Vec3& omega,
                           const math::Vec3& omega_dot,
                           const math::Vec2& f_sensor_xy);

    /// Current misalignment estimate.
    [[nodiscard]] math::EulerAngles misalignment() const;
    /// 3σ confidence on each misalignment angle (rad) — the paper's
    /// "statistical confidence level in the misalignment values".
    [[nodiscard]] math::Vec3 misalignment_sigma3() const;

    /// ACC bias estimate and its 3σ (meaningful when estimate_bias is on).
    [[nodiscard]] math::Vec2 bias() const;
    [[nodiscard]] math::Vec2 bias_sigma3() const;

    /// Retune the measurement noise mid-run (the paper's §11 procedure
    /// when moving-vehicle vibration inflates the residuals).
    void set_measurement_noise(double sigma_mps2);
    [[nodiscard]] double measurement_noise() const { return meas_sigma_; }

    /// Honest coast mode: add `angle_variance` (rad²) to each misalignment
    /// angle's covariance. Called by a supervisor while measurement updates
    /// stall, so the reported 3σ grows with the stale time instead of
    /// freezing at its last confident value — and the larger gain on the
    /// first post-outage updates speeds re-convergence. Throws
    /// std::invalid_argument on a negative variance.
    void grow_angle_covariance(double angle_variance);

    /// Number of accepted measurement updates so far.
    [[nodiscard]] std::size_t updates() const { return updates_; }

    /// Full state covariance (5x5), for tests and advanced diagnostics.
    [[nodiscard]] const math::Mat<5, 5>& covariance() const {
        return ekf_.covariance();
    }

    /// Reset to priors, keeping the configuration.
    void reset();

    /// Exact nonlinear measurement model (exposed for the batch baseline
    /// and for tests).
    [[nodiscard]] static math::Vec2 predict_measurement(
        const math::Vec3& rho_euler, const math::Vec2& bias,
        const math::Vec3& f_body);

private:
    /// `f_rotated` = C(ρ̂)·f_body, shared with the predicted-measurement
    /// computation (only the analytic mode consumes it).
    [[nodiscard]] math::Mat<2, 5> jacobian(const math::Vec3& f_body,
                                           const math::Vec3& f_rotated) const;

    BoresightConfig cfg_;
    double meas_sigma_;
    Ekf<5, 2> ekf_;
    math::Mat<5, 5> q_;  ///< process noise, constant per configuration
    std::size_t updates_ = 0;
};

}  // namespace ob::core
