#include "core/boresight_ekf.hpp"

namespace ob::core {

using math::EulerAngles;
using math::Mat;
using math::Vec2;
using math::Vec3;

namespace {

[[nodiscard]] Mat<5, 5> initial_covariance(const BoresightConfig& cfg) {
    Mat<5, 5> p;
    for (std::size_t i = 0; i < 3; ++i)
        p(i, i) = cfg.init_angle_sigma * cfg.init_angle_sigma;
    const double bs = cfg.estimate_bias ? cfg.init_bias_sigma : 0.0;
    for (std::size_t i = 3; i < 5; ++i) p(i, i) = bs * bs;
    return p;
}

[[nodiscard]] Mat<5, 5> process_noise(const BoresightConfig& cfg) {
    Mat<5, 5> q;
    for (std::size_t i = 0; i < 3; ++i)
        q(i, i) = cfg.angle_process_noise * cfg.angle_process_noise;
    const double bq = cfg.estimate_bias ? cfg.bias_process_noise : 0.0;
    for (std::size_t i = 3; i < 5; ++i) q(i, i) = bq * bq;
    return q;
}

}  // namespace

BoresightEkf::BoresightEkf(const BoresightConfig& cfg)
    : cfg_(cfg),
      meas_sigma_(cfg.meas_noise_mps2),
      ekf_(math::Vec<5>{}, initial_covariance(cfg)),
      q_(process_noise(cfg)) {}

void BoresightEkf::reset() {
    ekf_.set_state(math::Vec<5>{});
    ekf_.set_covariance(initial_covariance(cfg_));
    meas_sigma_ = cfg_.meas_noise_mps2;
    updates_ = 0;
}

Vec2 BoresightEkf::predict_measurement(const Vec3& rho_euler, const Vec2& bias,
                                       const Vec3& f_body) {
    const math::Mat3 c =
        math::dcm_from_euler(EulerAngles::from_vec(rho_euler));
    const Vec3 f_sensor = c * f_body;
    return Vec2{f_sensor[0] + bias[0], f_sensor[1] + bias[1]};
}

Mat<2, 5> BoresightEkf::jacobian(const Vec3& f_body,
                                 const Vec3& f_rotated) const {
    Mat<2, 5> h;
    const auto& x = ekf_.state();
    const Vec3 rho{x[0], x[1], x[2]};
    const Vec2 b{x[3], x[4]};

    if (cfg_.jacobian == JacobianMode::kAnalyticSmallAngle) {
        // Perturb the estimated rotation by a small rotation vector δ in
        // the sensor frame: C(ρ⊕δ) ≈ (I - [δ×]) C(ρ), so
        //   h(ρ⊕δ) ≈ h(ρ) + rows_xy(skew(C·f_b)) δ.
        // For misalignments of a few degrees the Euler-angle state and the
        // rotation-vector perturbation agree to first order. The caller
        // passes C·f_b, already computed for the predicted measurement.
        const math::Mat3 sk = math::skew(f_rotated);
        for (std::size_t r = 0; r < 2; ++r)
            for (std::size_t ccol = 0; ccol < 3; ++ccol) h(r, ccol) = sk(r, ccol);
    } else {
        // Central differences on the exact model, per Euler component.
        constexpr double kStep = 1e-6;
        for (std::size_t j = 0; j < 3; ++j) {
            Vec3 lo = rho, hi = rho;
            lo[j] -= kStep;
            hi[j] += kStep;
            const Vec2 dlo = predict_measurement(lo, b, f_body);
            const Vec2 dhi = predict_measurement(hi, b, f_body);
            for (std::size_t r = 0; r < 2; ++r)
                h(r, j) = (dhi[r] - dlo[r]) / (2.0 * kStep);
        }
    }
    // Bias columns: identity into the matching measurement axis.
    h(0, 3) = 1.0;
    h(1, 4) = 1.0;
    return h;
}

BoresightEkf::Update BoresightEkf::step_with_rates(const Vec3& f_body,
                                                   const Vec3& omega,
                                                   const Vec3& omega_dot,
                                                   const Vec2& f_sensor_xy) {
    const Vec3 lever = math::cross(omega_dot, cfg_.lever_arm) +
                       math::cross(omega, math::cross(omega, cfg_.lever_arm));
    return step(f_body + lever, f_sensor_xy);
}

BoresightEkf::Update BoresightEkf::step(const Vec3& f_body,
                                        const Vec2& f_sensor_xy) {
    ekf_.predict_static(q_);

    // One DCM evaluation serves both the predicted measurement and the
    // analytic Jacobian — same input bits, same result bits as computing
    // it twice (predict_measurement stays the reference model).
    const auto& x = ekf_.state();
    const math::Mat3 c = math::dcm_from_euler(
        EulerAngles::from_vec(Vec3{x[0], x[1], x[2]}));
    const Vec3 f_rotated = c * f_body;
    const Vec2 z_pred{f_rotated[0] + x[3], f_rotated[1] + x[4]};
    const Mat<2, 5> h = jacobian(f_body, f_rotated);
    Mat<2, 2> r;
    r(0, 0) = meas_sigma_ * meas_sigma_;
    r(1, 1) = meas_sigma_ * meas_sigma_;

    const auto res =
        ekf_.update(f_sensor_xy, z_pred, h, r, cfg_.nis_gate);
    if (res.accepted) ++updates_;

    Update out;
    out.residual = res.innovation;
    out.sigma3 = Vec2{3.0 * std::sqrt(res.s(0, 0)), 3.0 * std::sqrt(res.s(1, 1))};
    out.nis = res.nis;
    out.used = res.accepted;
    return out;
}

EulerAngles BoresightEkf::misalignment() const {
    const auto& x = ekf_.state();
    return EulerAngles{x[0], x[1], x[2]};
}

Vec3 BoresightEkf::misalignment_sigma3() const {
    return Vec3{3.0 * ekf_.sigma(0), 3.0 * ekf_.sigma(1), 3.0 * ekf_.sigma(2)};
}

Vec2 BoresightEkf::bias() const {
    const auto& x = ekf_.state();
    return Vec2{x[3], x[4]};
}

Vec2 BoresightEkf::bias_sigma3() const {
    return Vec2{3.0 * ekf_.sigma(3), 3.0 * ekf_.sigma(4)};
}

void BoresightEkf::set_measurement_noise(double sigma_mps2) {
    if (!(sigma_mps2 > 0.0))
        throw std::invalid_argument("measurement noise must be positive");
    meas_sigma_ = sigma_mps2;
}

void BoresightEkf::grow_angle_covariance(double angle_variance) {
    if (angle_variance < 0.0)
        throw std::invalid_argument("coast variance must be non-negative");
    if (angle_variance == 0.0) return;
    Mat<5, 5> p = ekf_.covariance();
    for (std::size_t i = 0; i < 3; ++i) p(i, i) += angle_variance;
    ekf_.set_covariance(p);
}

}  // namespace ob::core
