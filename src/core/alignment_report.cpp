#include "core/alignment_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ob::core {

double AlignmentResult::max_error_deg() const {
    return std::max({std::abs(error_deg(0)), std::abs(error_deg(1)),
                     std::abs(error_deg(2))});
}

bool AlignmentResult::within_confidence() const {
    const auto t = truth.vec();
    const auto e = estimate.vec();
    for (std::size_t i = 0; i < 3; ++i) {
        if (std::abs(e[i] - t[i]) > sigma3_rad[i]) return false;
    }
    return true;
}

std::string alignment_table_header() {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%-22s | %21s | %21s | %21s | %9s | %6s",
                  "test", "roll true/est/3s", "pitch true/est/3s",
                  "yaw true/est/3s", "res rms", ">3s %");
    std::string s(buf);
    s += '\n';
    s += std::string(s.size() - 1, '-');
    return s;
}

std::string alignment_table_row(const AlignmentResult& r) {
    const auto fmt_axis = [](double truth_rad, double est_rad,
                             double s3_rad) {
        char b[64];
        std::snprintf(b, sizeof b, "%+6.2f %+6.3f %6.3f",
                      math::rad2deg(truth_rad), math::rad2deg(est_rad),
                      math::rad2deg(s3_rad));
        return std::string(b);
    };
    char buf[320];
    std::snprintf(buf, sizeof buf, "%-22s | %s | %s | %s | %9.5f | %6.3f",
                  r.label.c_str(),
                  fmt_axis(r.truth.roll, r.estimate.roll, r.sigma3_rad[0]).c_str(),
                  fmt_axis(r.truth.pitch, r.estimate.pitch, r.sigma3_rad[1]).c_str(),
                  fmt_axis(r.truth.yaw, r.estimate.yaw, r.sigma3_rad[2]).c_str(),
                  r.residual_rms, 100.0 * r.exceedance_rate);
    return std::string(buf);
}

}  // namespace ob::core
