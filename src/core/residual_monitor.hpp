#pragma once

#include <cstddef>
#include <deque>

#include "math/matrix.hpp"
#include "util/stats.hpp"

namespace ob::core {

/// Tracks how often the fusion residuals exceed their 3-sigma envelope —
/// the paper's §11 health criterion: "the residuals should only exceed the
/// 3-sigma value about once every 100 samples". A well-tuned filter sits
/// near that rate; an under-tuned one (static R while driving) far above.
class ResidualMonitor {
public:
    /// `window` bounds the sliding-rate memory (samples per axis).
    explicit ResidualMonitor(std::size_t window = 2000) : window_(window) {}

    void add(const math::Vec2& residual, const math::Vec2& sigma3);

    /// Lifetime exceedance rate (per axis-sample).
    [[nodiscard]] double exceedance_rate() const;
    /// Exceedance rate over the sliding window.
    [[nodiscard]] double windowed_rate() const;
    [[nodiscard]] std::size_t samples() const { return total_; }
    [[nodiscard]] std::size_t exceedances() const { return exceeded_; }

    /// Residual magnitude statistics (for Table/Figure harnesses).
    [[nodiscard]] const util::RunningStats& stats_x() const { return stats_x_; }
    [[nodiscard]] const util::RunningStats& stats_y() const { return stats_y_; }

    /// Theoretical exceedance probability of |N(0,σ)| > 3σ.
    [[nodiscard]] static constexpr double expected_rate() { return 0.0027; }

    void reset();

private:
    std::size_t window_;
    std::size_t total_ = 0;
    std::size_t exceeded_ = 0;
    std::deque<bool> recent_;
    std::size_t recent_exceeded_ = 0;
    util::RunningStats stats_x_;
    util::RunningStats stats_y_;
};

}  // namespace ob::core
