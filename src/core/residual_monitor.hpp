#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.hpp"
#include "util/stats.hpp"

namespace ob::core {

/// Tracks how often the fusion residuals exceed their 3-sigma envelope —
/// the paper's §11 health criterion: "the residuals should only exceed the
/// 3-sigma value about once every 100 samples". A well-tuned filter sits
/// near that rate; an under-tuned one (static R while driving) far above.
///
/// Besides the raw rates, the monitor exposes a latched health flag for
/// fault-detection campaigns: once at least `alarm_min_samples` axis
/// samples are in and the windowed rate exceeds `alarm_rate`, `flagged()`
/// latches true (until reset) and `flagged_at()` records the axis-sample
/// count at which it tripped. The sliding window lives in a ring buffer
/// preallocated at construction, so steady-state `add` never touches the
/// heap — the monitor can sit on the zero-allocation fusion hot path.
class ResidualMonitor {
public:
    /// Default alarm threshold: ~18x the healthy 0.0027 exceedance rate,
    /// far above tuning jitter but well below what a stuck sensor or a
    /// mistuned R produces within one window.
    static constexpr double kDefaultAlarmRate = 0.05;

    /// `window` bounds the sliding-rate memory (samples per axis);
    /// `alarm_rate` and `alarm_min_samples` parameterize the latched flag.
    explicit ResidualMonitor(std::size_t window = 2000,
                             double alarm_rate = kDefaultAlarmRate,
                             std::size_t alarm_min_samples = 200)
        : window_(window > 0 ? window : 1),
          alarm_rate_(alarm_rate),
          alarm_min_samples_(alarm_min_samples),
          recent_(window_, 0) {}

    void add(const math::Vec2& residual, const math::Vec2& sigma3);

    /// Lifetime exceedance rate (per axis-sample).
    [[nodiscard]] double exceedance_rate() const;
    /// Exceedance rate over the sliding window.
    [[nodiscard]] double windowed_rate() const;
    [[nodiscard]] std::size_t samples() const { return total_; }
    [[nodiscard]] std::size_t exceedances() const { return exceeded_; }

    /// Latched health alarm: windowed rate exceeded `alarm_rate` after at
    /// least `alarm_min_samples` axis samples. Stays true until reset().
    [[nodiscard]] bool flagged() const { return flagged_; }
    /// Axis-sample count when the alarm latched; 0 when never flagged.
    [[nodiscard]] std::size_t flagged_at() const { return flagged_at_; }

    /// Residual magnitude statistics (for Table/Figure harnesses).
    [[nodiscard]] const util::RunningStats& stats_x() const { return stats_x_; }
    [[nodiscard]] const util::RunningStats& stats_y() const { return stats_y_; }

    /// Theoretical exceedance probability of |N(0,σ)| > 3σ.
    [[nodiscard]] static constexpr double expected_rate() { return 0.0027; }

    /// Clears counters, window and the latch in place (no reallocation).
    void reset();

private:
    void push(bool exceeded);

    std::size_t window_;
    double alarm_rate_;
    std::size_t alarm_min_samples_;
    std::size_t total_ = 0;
    std::size_t exceeded_ = 0;
    std::vector<unsigned char> recent_;  ///< ring, preallocated to window_
    std::size_t head_ = 0;               ///< next ring slot to write
    std::size_t count_ = 0;              ///< valid ring entries
    std::size_t recent_exceeded_ = 0;
    bool flagged_ = false;
    std::size_t flagged_at_ = 0;
    util::RunningStats stats_x_;
    util::RunningStats stats_y_;
};

}  // namespace ob::core
