#include "core/residual_monitor.hpp"

#include <algorithm>
#include <cmath>

namespace ob::core {

void ResidualMonitor::push(const bool exceeded) {
    ++total_;
    if (exceeded) ++exceeded_;
    if (count_ == window_) {
        recent_exceeded_ -= recent_[head_];
    } else {
        ++count_;
    }
    recent_[head_] = exceeded ? 1 : 0;
    if (exceeded) ++recent_exceeded_;
    head_ = head_ + 1 == window_ ? 0 : head_ + 1;
    if (!flagged_ && total_ >= alarm_min_samples_ &&
        windowed_rate() > alarm_rate_) {
        flagged_ = true;
        flagged_at_ = total_;
    }
}

void ResidualMonitor::add(const math::Vec2& residual,
                          const math::Vec2& sigma3) {
    stats_x_.add(residual[0]);
    stats_y_.add(residual[1]);
    push(std::abs(residual[0]) > sigma3[0]);
    push(std::abs(residual[1]) > sigma3[1]);
}

double ResidualMonitor::exceedance_rate() const {
    return total_ > 0 ? static_cast<double>(exceeded_) /
                            static_cast<double>(total_)
                      : 0.0;
}

double ResidualMonitor::windowed_rate() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(recent_exceeded_) /
                             static_cast<double>(count_);
}

void ResidualMonitor::reset() {
    total_ = 0;
    exceeded_ = 0;
    std::fill(recent_.begin(), recent_.end(), 0);
    head_ = 0;
    count_ = 0;
    recent_exceeded_ = 0;
    flagged_ = false;
    flagged_at_ = 0;
    stats_x_ = util::RunningStats{};
    stats_y_ = util::RunningStats{};
}

}  // namespace ob::core
