#include "core/residual_monitor.hpp"

#include <cmath>

namespace ob::core {

void ResidualMonitor::add(const math::Vec2& residual,
                          const math::Vec2& sigma3) {
    const bool over[2] = {std::abs(residual[0]) > sigma3[0],
                          std::abs(residual[1]) > sigma3[1]};
    stats_x_.add(residual[0]);
    stats_y_.add(residual[1]);
    for (const bool o : over) {
        ++total_;
        if (o) ++exceeded_;
        recent_.push_back(o);
        if (o) ++recent_exceeded_;
        if (recent_.size() > window_) {
            if (recent_.front()) --recent_exceeded_;
            recent_.pop_front();
        }
    }
}

double ResidualMonitor::exceedance_rate() const {
    return total_ > 0 ? static_cast<double>(exceeded_) /
                            static_cast<double>(total_)
                      : 0.0;
}

double ResidualMonitor::windowed_rate() const {
    return recent_.empty() ? 0.0
                           : static_cast<double>(recent_exceeded_) /
                                 static_cast<double>(recent_.size());
}

void ResidualMonitor::reset() { *this = ResidualMonitor(window_); }

}  // namespace ob::core
