#pragma once

#include <string>

#include "math/matrix.hpp"
#include "math/rotation.hpp"

namespace ob::core {

/// Result summary of one alignment experiment, in the shape of a Table 1
/// row of the paper: injected truth vs estimate per axis with 3-sigma
/// confidence, plus filter health metrics.
struct AlignmentResult {
    std::string label;
    math::EulerAngles truth{};
    math::EulerAngles estimate{};
    math::Vec3 sigma3_rad{};      ///< 3σ per angle (rad)
    double residual_rms = 0.0;    ///< m/s²
    double exceedance_rate = 0.0; ///< 3σ exceedances per axis-sample
    double meas_noise = 0.0;      ///< final filter R 1-sigma (m/s²)
    double duration_s = 0.0;

    [[nodiscard]] double error_deg(int axis) const {
        const auto t = truth.vec();
        const auto e = estimate.vec();
        return math::rad2deg(e[static_cast<std::size_t>(axis)] -
                             t[static_cast<std::size_t>(axis)]);
    }

    /// Largest per-axis error magnitude in degrees.
    [[nodiscard]] double max_error_deg() const;

    /// True when every axis error is inside its reported 3σ bound.
    [[nodiscard]] bool within_confidence() const;
};

/// Fixed-width table formatting shared by the Table 1 bench and examples.
[[nodiscard]] std::string alignment_table_header();
[[nodiscard]] std::string alignment_table_row(const AlignmentResult& r);

}  // namespace ob::core
