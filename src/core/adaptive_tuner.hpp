#pragma once

#include <cstddef>

#include "core/residual_monitor.hpp"

namespace ob::core {

/// Automates the paper's manual retuning loop: §11 raised the assumed
/// measurement noise from 0.003–0.01 m/s² to 0.015+ m/s² by inspecting
/// residual exceedances when the vehicle started moving. This tuner
/// watches the windowed 3-sigma exceedance rate and scales the filter's R
/// accordingly, bounded to [floor, ceiling].
struct AdaptiveTunerConfig {
    double floor_mps2 = 0.003;     ///< paper's quietest static tuning
    double ceiling_mps2 = 0.10;
    double raise_threshold = 0.02; ///< windowed rate that triggers a raise
    double lower_threshold = 1e-4; ///< windowed rate that permits a cut
    double raise_factor = 1.5;
    double lower_factor = 0.9;
    std::size_t window = 1000;     ///< per-axis samples per decision window
    std::size_t min_samples = 600; ///< don't act before this many samples

    /// Throws std::invalid_argument naming the first bad knob. Every layer
    /// that accepts a tuner override (BoresightSystem, FleetJob,
    /// TuningStudy) funnels through this one check.
    void validate() const;
};

class AdaptiveNoiseTuner {
public:
    explicit AdaptiveNoiseTuner(AdaptiveTunerConfig cfg = {})
        : cfg_(cfg), monitor_(cfg.window) {}

    /// Feed one residual epoch; returns the recommended measurement noise
    /// (1-sigma, m/s²) or a negative value when no change is advised.
    [[nodiscard]] double observe(const math::Vec2& residual,
                                 const math::Vec2& sigma3, double current_sigma);

    [[nodiscard]] const ResidualMonitor& monitor() const { return monitor_; }
    [[nodiscard]] std::size_t adjustments() const { return adjustments_; }

private:
    AdaptiveTunerConfig cfg_;
    ResidualMonitor monitor_;
    std::size_t since_change_ = 0;
    std::size_t adjustments_ = 0;
};

}  // namespace ob::core
