#include "core/batch_aligner.hpp"

#include <cmath>

#include "core/boresight_ekf.hpp"

namespace ob::core {

using math::Mat;
using math::Vec2;
using math::Vec3;

void BatchLeastSquaresAligner::add(const Vec3& f_body,
                                   const Vec2& f_sensor_xy) {
    f_body_.push_back(f_body);
    z_.push_back(f_sensor_xy);
}

BatchLeastSquaresAligner::Solution BatchLeastSquaresAligner::solve(
    int max_iterations, double tol_rad) const {
    if (f_body_.empty()) throw std::domain_error("BatchAligner: no data");

    math::Vec<5> x{};  // [rho; bias]
    Solution sol;

    for (int it = 0; it < max_iterations; ++it) {
        Mat<5, 5> jtj;
        math::Vec<5> jtr{};
        double ssr = 0.0;

        const Vec3 rho{x[0], x[1], x[2]};
        const Vec2 bias{x[3], x[4]};
        const math::Mat3 c =
            math::dcm_from_euler(math::EulerAngles::from_vec(rho));

        for (std::size_t k = 0; k < f_body_.size(); ++k) {
            const Vec2 pred =
                BoresightEkf::predict_measurement(rho, bias, f_body_[k]);
            const Vec2 r = z_[k] - pred;
            ssr += math::dot(r, r);

            // Same first-order Jacobian as the EKF's analytic mode.
            const math::Mat3 sk = math::skew(c * f_body_[k]);
            Mat<2, 5> h;
            for (std::size_t rr = 0; rr < 2; ++rr)
                for (std::size_t cc = 0; cc < 3; ++cc) h(rr, cc) = sk(rr, cc);
            h(0, 3) = 1.0;
            h(1, 4) = 1.0;

            jtj += h.transposed() * h;
            jtr += h.transposed() * r;
        }

        if (!estimate_bias_) {
            // Remove the bias block from the system: pin to zero with a
            // dominant diagonal and zero gradient.
            for (std::size_t i = 3; i < 5; ++i) {
                for (std::size_t j = 0; j < 5; ++j) {
                    jtj(i, j) = 0.0;
                    jtj(j, i) = 0.0;
                }
                jtj(i, i) = 1.0;
                jtr[i] = 0.0;
            }
        }

        // Levenberg damping keeps the normal equations solvable when an
        // axis is unobservable (level-static yaw): that axis simply stays
        // at its prior (zero), mirroring what an optical one-shot alignment
        // cannot even attempt.
        const double damping = 1e-9 * (1.0 + jtj.trace());
        for (std::size_t i = 0; i < 5; ++i) jtj(i, i) += damping;
        const math::Vec<5> dx = math::solve(jtj, jtr);
        x += dx;
        sol.iterations = it + 1;
        sol.rms_residual =
            std::sqrt(ssr / (2.0 * static_cast<double>(f_body_.size())));
        if (Vec3{dx[0], dx[1], dx[2]}.max_abs() < tol_rad) {
            sol.converged = true;
            break;
        }
    }
    sol.misalignment = math::EulerAngles{x[0], x[1], x[2]};
    sol.bias = Vec2{x[3], x[4]};
    return sol;
}

}  // namespace ob::core
