#pragma once

#include <vector>

#include "math/matrix.hpp"
#include "math/rotation.hpp"

namespace ob::core {

/// Baseline comparator: batch (Gauss-Newton) least-squares alignment over
/// a full recorded run. This stands in for the state of the art the paper
/// argues against — one-shot alignment (optical/mechanical, or offline
/// post-processing) that produces a single estimate with no covariance
/// tracking and no ability to follow in-service changes.
///
/// Solves min_x sum_k || z_k - h(x; f_k) ||² with the same measurement
/// model as the EKF (misalignment Euler angles + optional ACC biases).
class BatchLeastSquaresAligner {
public:
    explicit BatchLeastSquaresAligner(bool estimate_bias = false)
        : estimate_bias_(estimate_bias) {}

    /// Accumulate one epoch (IMU body specific force + ACC x'/y' reading).
    void add(const math::Vec3& f_body, const math::Vec2& f_sensor_xy);

    [[nodiscard]] std::size_t samples() const { return f_body_.size(); }

    struct Solution {
        math::EulerAngles misalignment{};
        math::Vec2 bias{};
        double rms_residual = 0.0;  ///< m/s² after convergence
        int iterations = 0;
        bool converged = false;
    };

    /// Run Gauss-Newton from zero initial guess. Throws std::domain_error
    /// if the normal equations are singular (e.g. level-static data with
    /// bias estimation on: yaw/bias unobservable).
    [[nodiscard]] Solution solve(int max_iterations = 10,
                                 double tol_rad = 1e-10) const;

private:
    bool estimate_bias_;
    std::vector<math::Vec3> f_body_;
    std::vector<math::Vec2> z_;
};

}  // namespace ob::core
