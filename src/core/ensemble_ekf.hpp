#pragma once

#include <cstddef>
#include <vector>

#include "core/boresight_ekf.hpp"
#include "math/matrix.hpp"
#include "math/rotation.hpp"

namespace ob::core {

/// N boresight filters advanced in lockstep — the fusion half of the
/// batched ensemble (Realize) path. One Monte Carlo job runs N instrument
/// realizations of the same trace through identical control flow, so the
/// ensemble steps every lane through predict/update per epoch instead of
/// running N full scenario loops back to back.
///
/// Layout and vectorization: the lanes are contiguous (one std::vector, no
/// per-lane indirection), and the batched entry point `step_all` is the
/// seam a future transposed (state-major SoA) kernel would slot into.
/// The lane arithmetic itself deliberately reuses the scalar BoresightEkf:
/// every update runs one `dcm_from_euler` (six libm trig calls) and a
/// Joseph-form covariance update whose FP operation order the scalar path
/// pins, so per-lane results are bit-identical to N independent filters by
/// construction — the determinism invariant the golden corpus and the
/// ensemble differential test enforce ("batched ≡ scalar per lane").
/// Cross-lane SIMD over the libm calls would break that invariant, which
/// is why the batching win here is locality and dispatch, not lane math.
class EnsembleEkf {
public:
    /// All lanes start from the same configuration (one job = one tuning);
    /// per-lane state diverges only through the measurements fed in.
    EnsembleEkf(const BoresightConfig& cfg, std::size_t lanes);

    [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }

    /// One measurement update on a single lane (identical to
    /// BoresightEkf::step on the lane's filter).
    BoresightEkf::Update step(std::size_t lane, const math::Vec3& f_body,
                              const math::Vec2& f_sensor_xy) {
        return lanes_[lane].step(f_body, f_sensor_xy);
    }

    /// Batched epoch: advance every lane through its own measurement, in
    /// lane order. `f_body`, `z` and `out` are lane-indexed arrays of at
    /// least lanes() entries.
    void step_all(const math::Vec3* f_body, const math::Vec2* z,
                  BoresightEkf::Update* out);

    void set_measurement_noise(std::size_t lane, double sigma_mps2) {
        lanes_[lane].set_measurement_noise(sigma_mps2);
    }
    [[nodiscard]] double measurement_noise(std::size_t lane) const {
        return lanes_[lane].measurement_noise();
    }
    void grow_angle_covariance(std::size_t lane, double angle_variance) {
        lanes_[lane].grow_angle_covariance(angle_variance);
    }
    [[nodiscard]] math::EulerAngles misalignment(std::size_t lane) const {
        return lanes_[lane].misalignment();
    }
    [[nodiscard]] math::Vec3 misalignment_sigma3(std::size_t lane) const {
        return lanes_[lane].misalignment_sigma3();
    }
    [[nodiscard]] const BoresightEkf& lane(std::size_t i) const {
        return lanes_[i];
    }

private:
    std::vector<BoresightEkf> lanes_;
};

}  // namespace ob::core
