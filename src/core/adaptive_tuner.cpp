#include "core/adaptive_tuner.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ob::core {

void AdaptiveTunerConfig::validate() const {
    const auto fail = [](const char* what) {
        throw std::invalid_argument(std::string("AdaptiveTunerConfig: ") +
                                    what);
    };
    // All comparisons are in the negated `!(good)` form so a NaN knob
    // fails loudly instead of slipping through an ordinary `<`.
    if (!(floor_mps2 > 0.0)) fail("noise floor must be positive");
    if (!(ceiling_mps2 >= floor_mps2))
        fail("ceiling must be at or above floor");
    if (!(raise_threshold > 0.0)) fail("raise threshold must be positive");
    if (!(lower_threshold >= 0.0)) fail("lower threshold must be non-negative");
    if (!(lower_threshold <= raise_threshold))
        fail("lower threshold must not exceed the raise threshold");
    if (!(raise_factor > 1.0)) fail("raise factor must exceed 1");
    if (!(lower_factor > 0.0) || !(lower_factor < 1.0))
        fail("lower factor must be in (0, 1)");
    if (window == 0) fail("decision window must be non-empty");
}

double AdaptiveNoiseTuner::observe(const math::Vec2& residual,
                                   const math::Vec2& sigma3,
                                   double current_sigma) {
    monitor_.add(residual, sigma3);
    ++since_change_;
    if (since_change_ < cfg_.min_samples) return -1.0;

    const double rate = monitor_.windowed_rate();
    if (rate > cfg_.raise_threshold) {
        const double next =
            std::min(current_sigma * cfg_.raise_factor, cfg_.ceiling_mps2);
        if (next > current_sigma) {
            since_change_ = 0;
            ++adjustments_;
            return next;
        }
    } else if (rate < cfg_.lower_threshold) {
        const double next =
            std::max(current_sigma * cfg_.lower_factor, cfg_.floor_mps2);
        if (next < current_sigma) {
            since_change_ = 0;
            ++adjustments_;
            return next;
        }
    }
    return -1.0;
}

}  // namespace ob::core
