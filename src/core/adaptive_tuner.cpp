#include "core/adaptive_tuner.hpp"

#include <algorithm>

namespace ob::core {

double AdaptiveNoiseTuner::observe(const math::Vec2& residual,
                                   const math::Vec2& sigma3,
                                   double current_sigma) {
    monitor_.add(residual, sigma3);
    ++since_change_;
    if (since_change_ < cfg_.min_samples) return -1.0;

    const double rate = monitor_.windowed_rate();
    if (rate > cfg_.raise_threshold) {
        const double next =
            std::min(current_sigma * cfg_.raise_factor, cfg_.ceiling_mps2);
        if (next > current_sigma) {
            since_change_ = 0;
            ++adjustments_;
            return next;
        }
    } else if (rate < cfg_.lower_threshold) {
        const double next =
            std::max(current_sigma * cfg_.lower_factor, cfg_.floor_mps2);
        if (next < current_sigma) {
            since_change_ = 0;
            ++adjustments_;
            return next;
        }
    }
    return -1.0;
}

}  // namespace ob::core
