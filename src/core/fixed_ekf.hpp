#pragma once

#include <cstdint>

#include "math/matrix.hpp"
#include "math/rotation.hpp"

namespace ob::core {

/// The paper's stated future work, §12: "a full fixed-point analysis and
/// conversion of the Sensor Fusion Algorithm from float to fixed-point
/// calculations is possible" — this class is that conversion.
///
/// A 3-state small-angle boresight EKF computed entirely in Q32.32 fixed
/// point (64-bit raws, 128-bit intermediates), matching the datapath an
/// all-fabric implementation would synthesize (64-bit adders, 64x64
/// multipliers, one wide divider for the 2x2 innovation inverse). The
/// format analysis behind Q32.32:
///
///   quantity          magnitude          Q32.32 headroom
///   specific force    <= 16 m/s²          2^31 range, 2.3e-10 LSB
///   angles            <= 0.2 rad          ample
///   covariance P      7.6e-3 .. ~1e-8     ~43 LSB at convergence floor
///   S^-1              <= ~1.8e4           ample
///
/// The convergence floor of P is the binding constraint: at ~1e-8 rad²
/// the LSB costs ~2% relative error, which bounds how far the reported
/// sigma can shrink — exactly the kind of finding a real fixed-point
/// conversion study produces (see bench/ablation_fixedpoint).
///
/// Floating point appears only at the API boundary (SI inputs in, reports
/// out); every filter-loop operation is integer arithmetic.
class FixedBoresightEkf {
public:
    /// Q32.32 raw value.
    using Q = std::int64_t;
    static constexpr int kFrac = 32;

    struct Config {
        double meas_noise_mps2 = 0.01;
        double angle_process_noise = 2e-7;  ///< per-step random walk (rad)
        double init_angle_sigma = math::deg2rad(5.0);
    };

    explicit FixedBoresightEkf(const Config& cfg);
    FixedBoresightEkf();  ///< default configuration

    struct Update {
        math::Vec2 residual{};  ///< m/s² (converted for reporting)
        math::Vec2 sigma3{};
        bool used = true;
    };
    Update step(const math::Vec3& f_body, const math::Vec2& f_sensor_xy);

    [[nodiscard]] math::EulerAngles misalignment() const;
    [[nodiscard]] math::Vec3 misalignment_sigma3() const;

    /// Raw state access for numerical studies.
    [[nodiscard]] Q state_raw(int i) const { return x_[i]; }
    [[nodiscard]] Q covariance_raw(int i, int j) const { return p_[i][j]; }

    // --- Q32.32 primitives (exposed for unit testing) ---
    [[nodiscard]] static Q to_q(double v);
    [[nodiscard]] static double from_q(Q v);
    /// Rounded Q32.32 multiply through a 128-bit intermediate.
    [[nodiscard]] static Q qmul(Q a, Q b);
    /// Q32.32 divide (a/b) through a 128-bit shifted dividend.
    [[nodiscard]] static Q qdiv(Q a, Q b);

private:
    Q x_[3];        // misalignment angles
    Q p_[3][3];     // covariance
    Q q_proc_;      // process noise variance per step
    Q r_meas_;      // measurement noise variance
};

}  // namespace ob::core
