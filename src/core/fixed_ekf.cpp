#include "core/fixed_ekf.hpp"

#include <cmath>
#include <stdexcept>

namespace ob::core {

namespace {
// GCC/Clang 128-bit integer; the __extension__ marker silences -Wpedantic.
__extension__ typedef __int128 i128;
}  // namespace

using math::Vec2;
using math::Vec3;

FixedBoresightEkf::Q FixedBoresightEkf::to_q(double v) {
    const double scaled = v * 4294967296.0;  // 2^32
    if (scaled >= 9.2e18 || scaled <= -9.2e18)
        throw std::overflow_error("FixedBoresightEkf: Q32.32 overflow");
    return static_cast<Q>(std::llround(scaled));
}

double FixedBoresightEkf::from_q(Q v) {
    return static_cast<double>(v) / 4294967296.0;
}

FixedBoresightEkf::Q FixedBoresightEkf::qmul(Q a, Q b) {
    i128 p = static_cast<i128>(a) * b;
    p += static_cast<i128>(1) << (kFrac - 1);  // round half up
    return static_cast<Q>(p >> kFrac);
}

FixedBoresightEkf::Q FixedBoresightEkf::qdiv(Q a, Q b) {
    if (b == 0) throw std::domain_error("FixedBoresightEkf: divide by zero");
    const i128 n = static_cast<i128>(a) << kFrac;
    return static_cast<Q>(n / b);
}

FixedBoresightEkf::FixedBoresightEkf() : FixedBoresightEkf(Config{}) {}

FixedBoresightEkf::FixedBoresightEkf(const Config& cfg) {
    for (int i = 0; i < 3; ++i) {
        x_[i] = 0;
        for (int j = 0; j < 3; ++j) p_[i][j] = 0;
        p_[i][i] = to_q(cfg.init_angle_sigma * cfg.init_angle_sigma);
    }
    q_proc_ = to_q(cfg.angle_process_noise * cfg.angle_process_noise);
    r_meas_ = to_q(cfg.meas_noise_mps2 * cfg.meas_noise_mps2);
}

FixedBoresightEkf::Update FixedBoresightEkf::step(const Vec3& f_body,
                                                  const Vec2& f_sensor_xy) {
    // Boundary conversion: SI doubles -> Q32.32 (a deployed system would
    // convert from the sensor registers' native fixed point directly).
    const Q f0 = to_q(f_body[0]);
    const Q f1 = to_q(f_body[1]);
    const Q f2 = to_q(f_body[2]);
    const Q z0 = to_q(f_sensor_xy[0]);
    const Q z1 = to_q(f_sensor_xy[1]);

    // Predict: P += Q.
    for (int i = 0; i < 3; ++i) p_[i][i] += q_proc_;

    // Small-angle measurement model, H = [[0,-f2,f1],[f2,0,-f0]]:
    //   zp0 = f0 - f2*x1 + f1*x2;  zp1 = f1 + f2*x0 - f0*x2.
    const Q zp0 = f0 - qmul(f2, x_[1]) + qmul(f1, x_[2]);
    const Q zp1 = f1 + qmul(f2, x_[0]) - qmul(f0, x_[2]);
    const Q h[2][3] = {{0, -f2, f1}, {f2, 0, -f0}};

    // PHT = P * H^T (3x2).
    Q pht[3][2];
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 2; ++j) {
            i128 acc = 0;
            for (int k = 0; k < 3; ++k)
                acc += static_cast<i128>(p_[i][k]) * h[j][k];
            acc += static_cast<i128>(1) << (kFrac - 1);
            pht[i][j] = static_cast<Q>(acc >> kFrac);
        }
    }

    // S = H*PHT + R*I (2x2), kept at full product precision (Q64.64 in
    // 128 bits) until the inverse, so the small determinant at convergence
    // doesn't drown in quantization.
    i128 s[2][2];
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            i128 acc = 0;
            for (int k = 0; k < 3; ++k)
                acc += static_cast<i128>(h[i][k]) * pht[k][j];
            if (i == j) acc += static_cast<i128>(r_meas_) << kFrac;
            s[i][j] = acc;  // Q64.64
        }
    }

    // K = PHT * S^-1 via the adjugate: K = PHT * adj(S) / det(S).
    // det in Q128.128 would overflow; scale s back to Q32.32 first but
    // keep the division exact with 128-bit dividends.
    const Q s00 = static_cast<Q>(s[0][0] >> kFrac);
    const Q s01 = static_cast<Q>(s[0][1] >> kFrac);
    const Q s10 = static_cast<Q>(s[1][0] >> kFrac);
    const Q s11 = static_cast<Q>(s[1][1] >> kFrac);
    const i128 det128 = static_cast<i128>(s00) * s11 -
                            static_cast<i128>(s01) * s10;  // Q64.64
    if (det128 == 0)
        throw std::domain_error("FixedBoresightEkf: singular innovation");

    const Q nu0 = z0 - zp0;
    const Q nu1 = z1 - zp1;

    Q k_gain[3][2];
    for (int i = 0; i < 3; ++i) {
        // adj(S) rows applied to PHT row i: Q64.64 numerators.
        const i128 n0 = static_cast<i128>(pht[i][0]) * s11 -
                            static_cast<i128>(pht[i][1]) * s10;
        const i128 n1 = static_cast<i128>(pht[i][1]) * s00 -
                            static_cast<i128>(pht[i][0]) * s01;
        // (Q64.64 / Q64.64) << 32 -> Q32.32.
        k_gain[i][0] = static_cast<Q>((n0 << kFrac) / det128);
        k_gain[i][1] = static_cast<Q>((n1 << kFrac) / det128);
    }

    // State update.
    for (int i = 0; i < 3; ++i)
        x_[i] += qmul(k_gain[i][0], nu0) + qmul(k_gain[i][1], nu1);

    // Covariance update P -= K * PHT^T, then symmetrize.
    Q newp[3][3];
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            const Q kpht =
                qmul(k_gain[i][0], pht[j][0]) + qmul(k_gain[i][1], pht[j][1]);
            newp[i][j] = p_[i][j] - kpht;
        }
    }
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            p_[i][j] = (newp[i][j] + newp[j][i]) / 2;
        }
    }
    // Clamp the diagonal at one LSB: quantization must not produce a
    // negative variance.
    for (int i = 0; i < 3; ++i) {
        if (p_[i][i] < 1) p_[i][i] = 1;
    }

    Update out;
    out.residual = Vec2{from_q(nu0), from_q(nu1)};
    const double s3x = 3.0 * std::sqrt(std::max(from_q(s00), 0.0));
    const double s3y = 3.0 * std::sqrt(std::max(from_q(s11), 0.0));
    out.sigma3 = Vec2{s3x, s3y};
    return out;
}

math::EulerAngles FixedBoresightEkf::misalignment() const {
    return math::EulerAngles{from_q(x_[0]), from_q(x_[1]), from_q(x_[2])};
}

Vec3 FixedBoresightEkf::misalignment_sigma3() const {
    return Vec3{3.0 * std::sqrt(std::max(from_q(p_[0][0]), 0.0)),
                3.0 * std::sqrt(std::max(from_q(p_[1][1]), 0.0)),
                3.0 * std::sqrt(std::max(from_q(p_[2][2]), 0.0))};
}

}  // namespace ob::core
