#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/boresight_ekf.hpp"

namespace ob::core {

/// The paper's §12 extension: "The fusion engine presented here provides
/// self-boresighting functionality for individual sensors, but it can
/// readily be extended to fuse data from multiple sensors together (eg.
/// lidar and video) to provide low-cost situational awareness systems."
///
/// MultiSensorAligner maintains one boresight filter per instrumented
/// sensor against the common vehicle IMU. Because every sensor references
/// the same IMU epoch, one call fans the body measurement out to all
/// filters; the result is a consistent set of mutual alignments — the
/// relative orientation between any two sensors (what data-level fusion
/// of lidar-on-video actually needs) comes out of the shared frame.
class MultiSensorAligner {
public:
    /// Register a sensor by name with its filter tuning. Returns the
    /// sensor's index for measurement feeds.
    std::size_t add_sensor(const std::string& name,
                           const BoresightConfig& cfg = {});

    [[nodiscard]] std::size_t sensor_count() const { return filters_.size(); }
    [[nodiscard]] const std::vector<std::string>& names() const {
        return names_;
    }

    /// One synchronized epoch: the IMU body specific force and each
    /// sensor's 2-axis ACC reading (indexed as registered). Sensors
    /// without a fresh measurement this epoch may pass std::nullopt.
    void step(const math::Vec3& f_body,
              const std::vector<std::optional<math::Vec2>>& readings);

    /// Per-sensor misalignment relative to the vehicle body frame.
    [[nodiscard]] math::EulerAngles misalignment(std::size_t sensor) const;
    [[nodiscard]] math::Vec3 sigma3(std::size_t sensor) const;

    /// Relative orientation from sensor a's frame to sensor b's frame —
    /// the quantity cross-sensor data fusion consumes. Computed through
    /// the common body frame: C_b<-a' = C_b(b) * C_a(b)^T.
    [[nodiscard]] math::EulerAngles relative_alignment(std::size_t a,
                                                       std::size_t b) const;

    /// Conservative 3-sigma on the relative alignment (root-sum-square of
    /// both sensors' confidences; the filters are independent given the
    /// shared, much-less-noisy IMU).
    [[nodiscard]] math::Vec3 relative_sigma3(std::size_t a,
                                             std::size_t b) const;

    [[nodiscard]] const BoresightEkf& filter(std::size_t sensor) const;

private:
    std::vector<std::string> names_;
    std::vector<BoresightEkf> filters_;
};

}  // namespace ob::core
