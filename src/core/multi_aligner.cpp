#include "core/multi_aligner.hpp"

#include <cmath>

namespace ob::core {

using math::EulerAngles;
using math::Vec2;
using math::Vec3;

std::size_t MultiSensorAligner::add_sensor(const std::string& name,
                                           const BoresightConfig& cfg) {
    names_.push_back(name);
    filters_.emplace_back(cfg);
    return filters_.size() - 1;
}

void MultiSensorAligner::step(
    const Vec3& f_body, const std::vector<std::optional<Vec2>>& readings) {
    if (readings.size() != filters_.size())
        throw std::invalid_argument(
            "MultiSensorAligner: readings/sensor count mismatch");
    for (std::size_t i = 0; i < filters_.size(); ++i) {
        if (readings[i]) (void)filters_[i].step(f_body, *readings[i]);
    }
}

EulerAngles MultiSensorAligner::misalignment(std::size_t sensor) const {
    return filter(sensor).misalignment();
}

Vec3 MultiSensorAligner::sigma3(std::size_t sensor) const {
    return filter(sensor).misalignment_sigma3();
}

EulerAngles MultiSensorAligner::relative_alignment(std::size_t a,
                                                   std::size_t b) const {
    const math::Mat3 c_a = math::dcm_from_euler(filter(a).misalignment());
    const math::Mat3 c_b = math::dcm_from_euler(filter(b).misalignment());
    // Coordinates in a's frame -> body -> b's frame.
    return math::euler_from_dcm(c_b * c_a.transposed());
}

Vec3 MultiSensorAligner::relative_sigma3(std::size_t a, std::size_t b) const {
    const Vec3 sa = sigma3(a);
    const Vec3 sb = sigma3(b);
    Vec3 out;
    for (std::size_t i = 0; i < 3; ++i)
        out[i] = std::sqrt(sa[i] * sa[i] + sb[i] * sb[i]);
    return out;
}

const BoresightEkf& MultiSensorAligner::filter(std::size_t sensor) const {
    if (sensor >= filters_.size())
        throw std::out_of_range("MultiSensorAligner: bad sensor index");
    return filters_[sensor];
}

}  // namespace ob::core
