#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace ob::util {

class SocketError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thin RAII wrapper over a connected AF_UNIX stream socket — the local
/// transport under the fleet_serve daemon (docs/PROTOCOL.md). The wrapper
/// deliberately exposes only whole-buffer operations: the protocol is
/// fixed-size framed, so partial reads/writes are a transport detail that
/// must never leak into the framing layer.
///
/// Move-only; the descriptor closes on destruction. On Windows every
/// operation throws SocketError (the daemon is a POSIX-only surface; the
/// core library and tests build everywhere).
class UnixSocket {
public:
    UnixSocket() = default;
    /// Adopt an already-connected descriptor (listener accept path).
    explicit UnixSocket(int fd) : fd_(fd) {}
    ~UnixSocket();

    UnixSocket(UnixSocket&& other) noexcept;
    UnixSocket& operator=(UnixSocket&& other) noexcept;
    UnixSocket(const UnixSocket&) = delete;
    UnixSocket& operator=(const UnixSocket&) = delete;

    /// Connect to a listening socket at `path`. Throws SocketError with
    /// errno text on failure.
    [[nodiscard]] static UnixSocket connect(const std::string& path);

    /// Write the whole buffer, looping over short writes. Throws on error
    /// (including a peer that closed mid-write).
    void write_all(const void* data, std::size_t n);

    /// Read exactly `n` bytes. Returns false on a clean EOF before the
    /// first byte (the peer hung up between frames); throws SocketError on
    /// an EOF or error mid-buffer (a truncated frame is always a fault).
    [[nodiscard]] bool read_exact(void* out, std::size_t n);

    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] int fd() const { return fd_; }
    void close();

private:
    int fd_ = -1;
};

/// RAII listening socket bound to a filesystem path. The path is unlinked
/// both before bind (a stale socket file from a crashed daemon must not
/// block restart) and on destruction.
class UnixListener {
public:
    UnixListener() = default;
    ~UnixListener();

    UnixListener(UnixListener&& other) noexcept;
    UnixListener& operator=(UnixListener&& other) noexcept;
    UnixListener(const UnixListener&) = delete;
    UnixListener& operator=(const UnixListener&) = delete;

    /// Bind + listen on `path`. Throws SocketError (e.g. a path longer
    /// than sun_path, or a directory that does not exist).
    [[nodiscard]] static UnixListener bind(const std::string& path,
                                           int backlog = 16);

    /// Wait up to `timeout_ms` for a connection. Returns an invalid socket
    /// on timeout (so an accept loop can poll a stop flag); throws on
    /// error. A closed listener also returns an invalid socket.
    [[nodiscard]] UnixSocket accept(int timeout_ms);

    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] const std::string& path() const { return path_; }
    void close();

private:
    int fd_ = -1;
    std::string path_;
};

}  // namespace ob::util
