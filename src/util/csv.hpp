#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace ob::util {

/// Minimal CSV emitter used by examples and benches to dump experiment
/// traces (residuals, angle estimates, covariance) for offline plotting.
///
/// Values are written with full double precision; strings containing commas
/// or quotes are quoted per RFC 4180.
class CsvWriter {
public:
    /// Opens `path` for writing and emits the header row.
    CsvWriter(const std::string& path, std::vector<std::string> columns);

    /// Append one row; the number of values must equal the number of
    /// columns declared at construction.
    void row(std::initializer_list<double> values);
    void row(const std::vector<double>& values);

    /// Number of data rows written so far.
    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

    /// Flush and close early (also happens on destruction).
    void close();

    static std::string escape(std::string_view field);

private:
    std::ofstream out_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

}  // namespace ob::util
