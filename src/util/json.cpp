#include "util/json.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ob::util {

void JsonWriter::begin_value() {
    if (stack_.empty()) return;  // root value
    Frame& top = stack_.back();
    if (top.scope == Scope::kObject) {
        if (!top.key_pending) {
            throw std::logic_error("JsonWriter: value in object without key");
        }
        top.key_pending = false;
        return;
    }
    if (!top.first) out_ += ',';
    top.first = false;
}

JsonWriter& JsonWriter::begin_object() {
    begin_value();
    out_ += '{';
    stack_.push_back({Scope::kObject});
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    if (stack_.empty() || stack_.back().scope != Scope::kObject ||
        stack_.back().key_pending) {
        throw std::logic_error("JsonWriter: mismatched end_object");
    }
    stack_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    begin_value();
    out_ += '[';
    stack_.push_back({Scope::kArray});
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    if (stack_.empty() || stack_.back().scope != Scope::kArray) {
        throw std::logic_error("JsonWriter: mismatched end_array");
    }
    stack_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
    if (stack_.empty() || stack_.back().scope != Scope::kObject ||
        stack_.back().key_pending) {
        throw std::logic_error("JsonWriter: key outside object");
    }
    Frame& top = stack_.back();
    if (!top.first) out_ += ',';
    top.first = false;
    top.key_pending = true;
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
    begin_value();
    out_ += '"';
    out_ += escape(s);
    out_ += '"';
    return *this;
}

JsonWriter& JsonWriter::value(double v) {
    begin_value();
    char buf[32];
    // %.17g round-trips every finite double exactly.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
    begin_value();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
    begin_value();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter& JsonWriter::value(bool v) {
    begin_value();
    out_ += v ? "true" : "false";
    return *this;
}

std::string JsonWriter::escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void write_file(const std::string& path, std::string_view content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw std::runtime_error("write_file: cannot open " + path);
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out) {
        throw std::runtime_error("write_file: short write to " + path);
    }
}

}  // namespace ob::util
