#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ob::util {

/// Fixed-capacity FIFO ring buffer that grows geometrically only when full.
///
/// The transport hot path (UART in-flight bytes, CAN pending frames, Sabre
/// port FIFOs) pushes and pops a bounded number of elements per epoch;
/// std::deque churns whole chunks through the allocator as its window
/// slides, so a steady 100 Hz feed allocates forever. This ring reaches its
/// high-water capacity during warm-up and is allocation-free afterwards.
///
/// Capacity is kept a power of two so the head/tail wrap is a mask, not a
/// modulo. Indexing is relative to the front (oldest element).
template <typename T>
class RingBuffer {
public:
    RingBuffer() = default;
    explicit RingBuffer(std::size_t initial_capacity) {
        reserve(initial_capacity);
    }

    void push_back(const T& v) {
        if (count_ == buf_.size()) grow();
        buf_[(head_ + count_) & mask_] = v;
        ++count_;
    }
    void push_back(T&& v) {
        if (count_ == buf_.size()) grow();
        buf_[(head_ + count_) & mask_] = std::move(v);
        ++count_;
    }

    [[nodiscard]] T& front() { return buf_[head_]; }
    [[nodiscard]] const T& front() const { return buf_[head_]; }

    void pop_front() {
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    /// i-th element counted from the front; i must be < size().
    [[nodiscard]] T& operator[](std::size_t i) {
        return buf_[(head_ + i) & mask_];
    }
    [[nodiscard]] const T& operator[](std::size_t i) const {
        return buf_[(head_ + i) & mask_];
    }

    /// Remove the i-th element from the front, shifting later elements
    /// forward. O(size), intended for tiny queues (CAN arbitration).
    void erase(std::size_t i) {
        for (; i + 1 < count_; ++i) {
            buf_[(head_ + i) & mask_] = std::move(buf_[(head_ + i + 1) & mask_]);
        }
        --count_;
    }

    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

    void clear() {
        head_ = 0;
        count_ = 0;
    }

    /// Pre-size the backing store to at least `n` slots (rounded up to a
    /// power of two) so steady state never needs to grow.
    void reserve(std::size_t n) {
        if (n > buf_.size()) grow_to(round_up(n));
    }

private:
    [[nodiscard]] static std::size_t round_up(std::size_t n) {
        std::size_t c = kMinCapacity;
        while (c < n) c *= 2;
        return c;
    }

    void grow() { grow_to(buf_.empty() ? kMinCapacity : buf_.size() * 2); }

    void grow_to(std::size_t new_capacity) {
        std::vector<T> next(new_capacity);
        for (std::size_t i = 0; i < count_; ++i) {
            next[i] = std::move(buf_[(head_ + i) & mask_]);
        }
        buf_.swap(next);
        head_ = 0;
        mask_ = buf_.size() - 1;
    }

    static constexpr std::size_t kMinCapacity = 8;

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t mask_ = 0;
};

}  // namespace ob::util
