#include "util/socket.hpp"

#ifndef _WIN32

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ob::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw SocketError(what + ": " + std::strerror(errno));
}

[[nodiscard]] sockaddr_un make_addr(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof addr.sun_path) {
        throw SocketError("socket path '" + path +
                          "' is empty or exceeds sun_path (" +
                          std::to_string(sizeof addr.sun_path - 1) +
                          " bytes)");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

}  // namespace

UnixSocket::~UnixSocket() { close(); }

UnixSocket::UnixSocket(UnixSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

UnixSocket UnixSocket::connect(const std::string& path) {
    const sockaddr_un addr = make_addr(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("connect to '" + path + "'");
    }
    return UnixSocket(fd);
}

void UnixSocket::write_all(const void* data, std::size_t n) {
    const auto* p = static_cast<const char*>(data);
    while (n > 0) {
        // MSG_NOSIGNAL: a peer that hung up surfaces as EPIPE here, not as
        // a process-killing SIGPIPE.
        const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            throw_errno("send");
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
}

bool UnixSocket::read_exact(void* out, std::size_t n) {
    auto* p = static_cast<char*>(out);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(fd_, p + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR) continue;
            throw_errno("recv");
        }
        if (r == 0) {
            if (got == 0) return false;  // clean EOF between frames
            throw SocketError("peer closed mid-frame after " +
                              std::to_string(got) + " of " +
                              std::to_string(n) + " byte(s)");
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

void UnixSocket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

UnixListener::~UnixListener() { close(); }

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        path_ = std::move(other.path_);
    }
    return *this;
}

UnixListener UnixListener::bind(const std::string& path, int backlog) {
    const sockaddr_un addr = make_addr(path);
    ::unlink(path.c_str());  // a stale file from a crashed daemon
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("bind to '" + path + "'");
    }
    if (::listen(fd, backlog) != 0) {
        const int saved = errno;
        ::close(fd);
        ::unlink(path.c_str());
        errno = saved;
        throw_errno("listen on '" + path + "'");
    }
    UnixListener out;
    out.fd_ = fd;
    out.path_ = path;
    return out;
}

UnixSocket UnixListener::accept(int timeout_ms) {
    if (fd_ < 0) return UnixSocket{};
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
        if (errno == EINTR) return UnixSocket{};
        throw_errno("poll");
    }
    if (ready == 0) return UnixSocket{};
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) return UnixSocket{};
        throw_errno("accept");
    }
    return UnixSocket(cfd);
}

void UnixListener::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        ::unlink(path_.c_str());
    }
}

}  // namespace ob::util

#else  // _WIN32

// The fleet_serve transport is POSIX-only; keep the library linkable on
// Windows with stubs that fail loudly at first use.
namespace ob::util {

namespace {
[[noreturn]] void unsupported() {
    throw SocketError("AF_UNIX sockets are not supported on this platform");
}
}  // namespace

UnixSocket::~UnixSocket() = default;
UnixSocket::UnixSocket(UnixSocket&&) noexcept {}
UnixSocket& UnixSocket::operator=(UnixSocket&&) noexcept { return *this; }
UnixSocket UnixSocket::connect(const std::string&) { unsupported(); }
void UnixSocket::write_all(const void*, std::size_t) { unsupported(); }
bool UnixSocket::read_exact(void*, std::size_t) { unsupported(); }
void UnixSocket::close() {}

UnixListener::~UnixListener() = default;
UnixListener::UnixListener(UnixListener&&) noexcept {}
UnixListener& UnixListener::operator=(UnixListener&&) noexcept {
    return *this;
}
UnixListener UnixListener::bind(const std::string&, int) { unsupported(); }
UnixSocket UnixListener::accept(int) { unsupported(); }
void UnixListener::close() {}

}  // namespace ob::util

#endif  // _WIN32
