#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ob::util {

/// Severity levels, lowest to highest.
enum class LogLevel { kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log threshold. Messages below the threshold are discarded.
/// Tests set this to kOff (or kError) to keep output clean; examples use
/// kInfo. Not thread safe by design — the simulator is single threaded.
class Logger {
public:
    static LogLevel& threshold() {
        static LogLevel level = LogLevel::kWarn;
        return level;
    }

    static void log(LogLevel level, std::string_view component,
                    std::string_view message);

    static constexpr std::string_view name(LogLevel level) {
        switch (level) {
            case LogLevel::kDebug: return "DEBUG";
            case LogLevel::kInfo: return "INFO ";
            case LogLevel::kWarn: return "WARN ";
            case LogLevel::kError: return "ERROR";
            case LogLevel::kOff: return "OFF  ";
        }
        return "?";
    }
};

/// Stream-style log statement builder:
///     OB_LOG(kInfo, "sabre") << "pc=" << pc;
/// The message is assembled only if the level passes the threshold.
class LogStatement {
public:
    LogStatement(LogLevel level, std::string_view component)
        : level_(level), component_(component),
          enabled_(level >= Logger::threshold() && level != LogLevel::kOff) {}

    ~LogStatement() {
        if (enabled_) Logger::log(level_, component_, stream_.str());
    }

    LogStatement(const LogStatement&) = delete;
    LogStatement& operator=(const LogStatement&) = delete;

    template <typename T>
    LogStatement& operator<<(const T& value) {
        if (enabled_) stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::string component_;
    bool enabled_;
    std::ostringstream stream_;
};

}  // namespace ob::util

#define OB_LOG(level, component) \
    ::ob::util::LogStatement(::ob::util::LogLevel::level, component)
