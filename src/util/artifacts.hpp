#pragma once

#include <string>

namespace ob::util {

/// Resolve where examples and benches write their output artifacts (CSV
/// traces, PPM frames, BENCH_*.json). Returns `$OB_ARTIFACT_DIR/name` when
/// the environment variable is set (creating the directory is the caller's
/// or CI's job), otherwise `build/name` when run from a source checkout
/// that has a build/ directory, and plain `name` as the last resort — so
/// casual runs from the repository root never litter it.
[[nodiscard]] std::string artifact_path(const std::string& name);

}  // namespace ob::util
