#include "util/artifacts.hpp"

#include <cstdlib>
#include <filesystem>

namespace ob::util {

std::string artifact_path(const std::string& name) {
    if (const char* dir = std::getenv("OB_ARTIFACT_DIR");
        dir != nullptr && *dir != '\0') {
        return std::string(dir) + "/" + name;
    }
    std::error_code ec;
    if (std::filesystem::is_directory("build", ec)) return "build/" + name;
    return name;
}

}  // namespace ob::util
