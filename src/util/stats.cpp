#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ob::util {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sumsq_ += x * x;
}

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    sumsq_ += other.sumsq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const noexcept {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::rms() const noexcept {
    return n_ > 0 ? std::sqrt(sumsq_ / static_cast<double>(n_)) : 0.0;
}

void SampleSet::sort_if_needed() const {
    if (!sorted_) {
        std::sort(xs_.begin(), xs_.end());
        sorted_ = true;
    }
}

double SampleSet::percentile(double p) const {
    if (xs_.empty()) throw std::domain_error("percentile of empty SampleSet");
    sort_if_needed();
    if (p <= 0.0) return xs_.front();
    if (p >= 100.0) return xs_.back();
    const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= xs_.size()) return xs_.back();
    return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
    if (!(hi > lo) || bins == 0) throw std::invalid_argument("bad Histogram range");
}

void Histogram::add(double x) {
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins_.size()));
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::bin_low(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace ob::util
