#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ob::util {

void AsciiPlot::add_series(std::string name, std::span<const double> ys, char glyph) {
    series_.push_back(Series{std::move(name), {ys.begin(), ys.end()}, glyph});
}

void AsciiPlot::set_y_range(double lo, double hi) {
    fixed_range_ = true;
    y_lo_ = lo;
    y_hi_ = hi;
}

std::string AsciiPlot::render() const {
    double lo = y_lo_;
    double hi = y_hi_;
    if (!fixed_range_) {
        lo = std::numeric_limits<double>::infinity();
        hi = -std::numeric_limits<double>::infinity();
        for (const auto& s : series_) {
            for (const double y : s.ys) {
                if (!std::isfinite(y)) continue;
                lo = std::min(lo, y);
                hi = std::max(hi, y);
            }
        }
        if (!(hi > lo)) {  // flat or empty input: synthesize a window
            const double mid = std::isfinite(lo) ? lo : 0.0;
            lo = mid - 1.0;
            hi = mid + 1.0;
        }
        const double pad = 0.05 * (hi - lo);
        lo -= pad;
        hi += pad;
    }

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    // Draw a zero axis if visible.
    if (lo < 0.0 && hi > 0.0) {
        const double t0 = (0.0 - lo) / (hi - lo);
        const auto r0 = static_cast<std::size_t>(
            std::clamp((1.0 - t0) * static_cast<double>(height_ - 1), 0.0,
                       static_cast<double>(height_ - 1)));
        grid[r0].assign(width_, '-');
    }

    for (const auto& s : series_) {
        if (s.ys.empty()) continue;
        for (std::size_t col = 0; col < width_; ++col) {
            // Resample: average over the slice of samples mapped to this column.
            const double n = static_cast<double>(s.ys.size());
            auto i0 = static_cast<std::size_t>(n * static_cast<double>(col) /
                                               static_cast<double>(width_));
            auto i1 = static_cast<std::size_t>(n * static_cast<double>(col + 1) /
                                               static_cast<double>(width_));
            i1 = std::max(i1, i0 + 1);
            i1 = std::min(i1, s.ys.size());
            if (i0 >= s.ys.size()) break;
            double sum = 0.0;
            std::size_t cnt = 0;
            for (std::size_t i = i0; i < i1; ++i) {
                if (std::isfinite(s.ys[i])) {
                    sum += s.ys[i];
                    ++cnt;
                }
            }
            if (cnt == 0) continue;
            const double y = sum / static_cast<double>(cnt);
            const double t = (y - lo) / (hi - lo);
            if (t < 0.0 || t > 1.0) continue;
            const auto row = static_cast<std::size_t>(
                std::clamp((1.0 - t) * static_cast<double>(height_ - 1), 0.0,
                           static_cast<double>(height_ - 1)));
            grid[row][col] = s.glyph;
        }
    }

    std::string out;
    if (!title_.empty()) out += title_ + "\n";
    char buf[64];
    for (std::size_t r = 0; r < height_; ++r) {
        const double y = hi - (hi - lo) * static_cast<double>(r) /
                                  static_cast<double>(height_ - 1);
        std::snprintf(buf, sizeof buf, "%10.4f |", y);
        out += buf;
        out += grid[r];
        out += '\n';
    }
    out += std::string(11, ' ') + '+' + std::string(width_, '-') + '\n';
    if (!x_label_.empty()) out += std::string(12, ' ') + x_label_ + '\n';
    for (const auto& s : series_) {
        out += "            [";
        out += s.glyph;
        out += "] " + s.name + "\n";
    }
    return out;
}

}  // namespace ob::util
