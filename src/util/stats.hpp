#pragma once

#include <cstddef>
#include <vector>

namespace ob::util {

/// Single-pass mean / variance / extrema accumulator (Welford's algorithm).
///
/// Numerically stable for long runs (the 300 s experiment traces are tens of
/// thousands of samples); used by the residual monitor, the benchmark
/// harnesses and the test suite.
class RunningStats {
public:
    void add(double x);

    /// Merge another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other);

    void reset();

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    /// Population variance (divides by n).
    [[nodiscard]] double variance() const noexcept;
    /// Sample variance (divides by n-1); 0 for fewer than two samples.
    [[nodiscard]] double sample_variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
    /// Root mean square of the samples.
    [[nodiscard]] double rms() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;      // sum of squared deviations from the mean
    double sumsq_ = 0.0;   // raw sum of squares, for rms()
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Retains all samples; offers exact percentiles. Use for latency
/// distributions and figure benches where tail behaviour matters.
class SampleSet {
public:
    void add(double x) { xs_.push_back(x); }
    [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
    /// Exact percentile by linear interpolation; p in [0,100].
    [[nodiscard]] double percentile(double p) const;
    [[nodiscard]] double median() const { return percentile(50.0); }
    [[nodiscard]] const std::vector<double>& samples() const noexcept { return xs_; }

private:
    mutable std::vector<double> xs_;
    mutable bool sorted_ = false;
    void sort_if_needed() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples are clamped to
/// the edge bins so nothing is silently dropped.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    [[nodiscard]] std::size_t bin_count(std::size_t i) const { return bins_.at(i); }
    [[nodiscard]] std::size_t bins() const noexcept { return bins_.size(); }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] double bin_low(std::size_t i) const;
    [[nodiscard]] double bin_high(std::size_t i) const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> bins_;
    std::size_t total_ = 0;
};

}  // namespace ob::util
