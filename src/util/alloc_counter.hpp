#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace ob::util {

/// Global heap-allocation counter, bumped by the counting operator new that
/// `OB_DEFINE_COUNTING_OPERATOR_NEW` installs. Stays at zero in binaries
/// that don't install the hook.
inline std::atomic<std::uint64_t> g_alloc_count{0};

[[nodiscard]] inline std::uint64_t alloc_count() {
    return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace ob::util

/// Installs replacement global operator new/delete that count allocations
/// in ob::util::g_alloc_count. Replacement allocation functions must not be
/// inline and may be defined at most once per program, so expand this macro
/// in exactly one translation unit of a binary (the allocation-regression
/// test and the fleet bench use it).
// NOLINTBEGIN — replacement signatures are dictated by the standard.
#define OB_DEFINE_COUNTING_OPERATOR_NEW                                        \
    namespace ob::util::detail {                                               \
    inline void* counted_alloc(std::size_t n) {                                \
        ob::util::g_alloc_count.fetch_add(1, std::memory_order_relaxed);       \
        void* p = std::malloc(n != 0 ? n : 1);                                 \
        if (p == nullptr) throw std::bad_alloc();                              \
        return p;                                                              \
    }                                                                          \
    inline void* counted_alloc(std::size_t n, std::align_val_t al) {           \
        ob::util::g_alloc_count.fetch_add(1, std::memory_order_relaxed);       \
        void* p = nullptr;                                                     \
        if (posix_memalign(&p, static_cast<std::size_t>(al),                   \
                           n != 0 ? n : 1) != 0)                               \
            throw std::bad_alloc();                                            \
        return p;                                                              \
    }                                                                          \
    }                                                                          \
    void* operator new(std::size_t n) {                                        \
        return ob::util::detail::counted_alloc(n);                             \
    }                                                                          \
    void* operator new[](std::size_t n) {                                      \
        return ob::util::detail::counted_alloc(n);                             \
    }                                                                          \
    void* operator new(std::size_t n, std::align_val_t al) {                   \
        return ob::util::detail::counted_alloc(n, al);                         \
    }                                                                          \
    void* operator new[](std::size_t n, std::align_val_t al) {                 \
        return ob::util::detail::counted_alloc(n, al);                         \
    }                                                                          \
    void operator delete(void* p) noexcept { std::free(p); }                   \
    void operator delete[](void* p) noexcept { std::free(p); }                 \
    void operator delete(void* p, std::size_t) noexcept { std::free(p); }      \
    void operator delete[](void* p, std::size_t) noexcept { std::free(p); }    \
    void operator delete(void* p, std::align_val_t) noexcept { std::free(p); } \
    void operator delete[](void* p, std::align_val_t) noexcept {               \
        std::free(p);                                                          \
    }                                                                          \
    void operator delete(void* p, std::size_t, std::align_val_t) noexcept {    \
        std::free(p);                                                          \
    }                                                                          \
    void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {  \
        std::free(p);                                                          \
    }
// NOLINTEND
