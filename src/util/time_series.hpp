#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace ob::util {

/// A time-stamped scalar series. All experiment traces (residuals, angle
/// estimates, 3-sigma envelopes) are recorded as `TimeSeries` so benches
/// and tests can slice, window and compare them uniformly.
class TimeSeries {
public:
    void push(double t, double value) {
        if (!t_.empty() && t < t_.back())
            throw std::invalid_argument("TimeSeries: non-monotonic time");
        t_.push_back(t);
        v_.push_back(value);
    }

    [[nodiscard]] std::size_t size() const noexcept { return t_.size(); }
    [[nodiscard]] bool empty() const noexcept { return t_.empty(); }
    [[nodiscard]] double time(std::size_t i) const { return t_.at(i); }
    [[nodiscard]] double value(std::size_t i) const { return v_.at(i); }
    [[nodiscard]] std::span<const double> times() const noexcept { return t_; }
    [[nodiscard]] std::span<const double> values() const noexcept { return v_; }

    /// Last value, or `fallback` when empty.
    [[nodiscard]] double last_or(double fallback) const noexcept {
        return v_.empty() ? fallback : v_.back();
    }

    /// Linear interpolation at time `t` (clamped to the series range).
    [[nodiscard]] double sample(double t) const;

    /// Sub-series with time in [t0, t1].
    [[nodiscard]] TimeSeries window(double t0, double t1) const;

private:
    std::vector<double> t_;
    std::vector<double> v_;
};

}  // namespace ob::util
