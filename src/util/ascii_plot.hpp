#pragma once

#include <span>
#include <string>
#include <vector>

namespace ob::util {

/// Terminal line-plot renderer used by the figure-reproduction benches.
///
/// The paper's Figures 8 and 9 are time-series plots (residuals vs 3-sigma
/// envelopes, angle convergence). `AsciiPlot` renders one or more series on
/// a shared axis into a character grid so the benches can regenerate the
/// figures directly in their stdout.
class AsciiPlot {
public:
    AsciiPlot(std::size_t width = 100, std::size_t height = 24)
        : width_(width), height_(height) {}

    /// Add a named series; `glyph` is the character used for its points.
    /// Series are drawn in the order added, so later series overwrite
    /// earlier ones where they collide.
    void add_series(std::string name, std::span<const double> ys, char glyph);

    /// Optional fixed y-range; by default the range spans all series.
    void set_y_range(double lo, double hi);

    /// X-axis label metadata (purely cosmetic; series are index-aligned and
    /// resampled onto the plot width).
    void set_x_label(std::string label) { x_label_ = std::move(label); }
    void set_title(std::string title) { title_ = std::move(title); }

    /// Render to a multi-line string (includes axis ticks and a legend).
    [[nodiscard]] std::string render() const;

private:
    struct Series {
        std::string name;
        std::vector<double> ys;
        char glyph;
    };

    std::size_t width_;
    std::size_t height_;
    std::vector<Series> series_;
    bool fixed_range_ = false;
    double y_lo_ = 0.0;
    double y_hi_ = 1.0;
    std::string x_label_;
    std::string title_;
};

}  // namespace ob::util
