#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ob::util {

/// Minimal streaming JSON emitter for machine-readable bench output
/// (BENCH_*.json). Handles objects, arrays, strings (with escaping),
/// numbers and booleans; doubles are written with round-trip precision so
/// downstream tooling can diff runs exactly. No external dependencies.
///
///     JsonWriter w;
///     w.begin_object();
///     w.key("bench").value("fleet");
///     w.key("jobs").begin_array();
///     ...
///     w.end_array();
///     w.end_object();
///     write_file("BENCH_fleet.json", w.str());
class JsonWriter {
public:
    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Emit an object key; must be followed by exactly one value (or
    /// container). Throws std::logic_error outside an object.
    JsonWriter& key(std::string_view k);

    JsonWriter& value(std::string_view s);
    JsonWriter& value(const char* s) { return value(std::string_view(s)); }
    JsonWriter& value(double v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(bool v);

    /// Exact-match template for every other integral type (int, size_t,
    /// unsigned, ...). Without it, a size_t argument is ambiguous on
    /// platforms where size_t aliases neither int64_t nor uint64_t
    /// (e.g. unsigned long long vs unsigned long on macOS).
    template <class T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
                 !std::is_same_v<T, std::int64_t> &&
                 !std::is_same_v<T, std::uint64_t>)
    JsonWriter& value(T v) {
        if constexpr (std::is_signed_v<T>) {
            return value(static_cast<std::int64_t>(v));
        } else {
            return value(static_cast<std::uint64_t>(v));
        }
    }

    /// The document so far. Call after the outermost container is closed.
    [[nodiscard]] const std::string& str() const { return out_; }

    [[nodiscard]] static std::string escape(std::string_view s);

private:
    void begin_value();

    enum class Scope : std::uint8_t { kObject, kArray };
    struct Frame {
        Scope scope;
        bool first = true;
        bool key_pending = false;
    };
    std::string out_;
    std::vector<Frame> stack_;
};

/// Write `content` to `path`, replacing any existing file; throws
/// std::runtime_error on I/O failure.
void write_file(const std::string& path, std::string_view content);

}  // namespace ob::util
