#pragma once

#include <cstdint>
#include <random>

namespace ob::util {

/// Deterministic random number generator used throughout the project.
///
/// Every stochastic component (sensor noise, vibration, drive profiles,
/// fault injection) draws from an explicitly seeded `Rng` so that every
/// test, example and benchmark is exactly reproducible run to run.
///
/// The engine is a 64-bit Mersenne Twister; the wrapper narrows the API to
/// the handful of distributions the project needs and keeps distribution
/// state out of caller code.
class Rng {
public:
    /// Construct with an explicit seed. The default seed is arbitrary but
    /// fixed; experiments that need independent streams derive seeds via
    /// `fork()`.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

    /// Standard-normal draw scaled to the given standard deviation.
    [[nodiscard]] double gaussian(double sigma = 1.0, double mean = 0.0) {
        return mean + sigma * normal_(engine_);
    }

    /// Uniform draw in [lo, hi).
    [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
        return lo + (hi - lo) * unit_(engine_);
    }

    /// Uniform integer in [lo, hi] (inclusive).
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(engine_);
    }

    /// Uniformly distributed raw 32-bit word (used by softfloat fuzzing).
    [[nodiscard]] std::uint32_t bits32() {
        return static_cast<std::uint32_t>(engine_());
    }

    /// Uniformly distributed raw 64-bit word.
    [[nodiscard]] std::uint64_t bits64() { return engine_(); }

    /// Bernoulli trial with probability `p` of returning true.
    [[nodiscard]] bool chance(double p) { return unit_(engine_) < p; }

    /// Derive an independent child generator. Used to give each sensor or
    /// subsystem its own stream so that adding draws to one component does
    /// not perturb another component's sequence.
    [[nodiscard]] Rng fork() { return Rng(engine_()); }

private:
    std::mt19937_64 engine_;
    std::normal_distribution<double> normal_{0.0, 1.0};
    std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Stateless counter-keyed generator: a splitmix64 stream addressed by
/// (seed, index). Unlike `Rng`, whose position depends on every draw made
/// before, a `CounterRng` stream is a pure function of its address — draw
/// k for index n is the same value whether or not any other index was
/// ever sampled. Fault-injection paths key one stream per wire unit (byte,
/// frame) so that toggling a fault type mid-run cannot shift the draws any
/// other unit sees.
class CounterRng {
public:
    CounterRng(std::uint64_t seed, std::uint64_t index) {
        // Avalanche the counter before folding it into the seed: without
        // it, neighboring indices would start at offset positions of one
        // shared splitmix sequence (state = seed + index·γ), correlating
        // draw k of index n with draw k-1 of index n+1.
        std::uint64_t h = index + 0x9E3779B97F4A7C15ull;
        h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
        h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
        h ^= h >> 31;
        state_ = seed ^ h;
    }

    /// Next raw 64-bit word of the stream (splitmix64 step).
    [[nodiscard]] std::uint64_t bits64() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    /// Uniform double in [0, 1) with 53 random bits.
    [[nodiscard]] double u01() {
        return static_cast<double>(bits64() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli trial with probability `p` of returning true.
    [[nodiscard]] bool chance(double p) { return u01() < p; }

private:
    std::uint64_t state_;
};

}  // namespace ob::util
