#include "util/csv.hpp"

#include <iomanip>
#include <stdexcept>

namespace ob::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : out_(path), columns_(columns.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    if (columns.empty()) throw std::invalid_argument("CsvWriter: no columns");
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << escape(columns[i]);
    }
    out_ << '\n';
    out_ << std::setprecision(17);
}

void CsvWriter::row(std::initializer_list<double> values) {
    row(std::vector<double>(values));
}

void CsvWriter::row(const std::vector<double>& values) {
    if (values.size() != columns_)
        throw std::invalid_argument("CsvWriter: row width mismatch");
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << values[i];
    }
    out_ << '\n';
    ++rows_;
}

void CsvWriter::close() {
    if (out_.is_open()) out_.close();
}

std::string CsvWriter::escape(std::string_view field) {
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string_view::npos;
    if (!needs_quotes) return std::string(field);
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace ob::util
