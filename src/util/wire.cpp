#include "util/wire.hpp"

namespace ob::util {

void ByteWriter::str(std::string_view s) {
    if (s.size() > 0xFFFFFFFFull) {
        throw std::invalid_argument("ByteWriter::str: string too long");
    }
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

void ByteWriter::fixed_str(std::string_view s, std::size_t width) {
    if (s.size() > width) {
        throw std::invalid_argument(
            "ByteWriter::fixed_str: '" + std::string(s) + "' exceeds the " +
            std::to_string(width) + "-byte field");
    }
    bytes(s.data(), s.size());
    for (std::size_t i = s.size(); i < width; ++i) u8(0);
}

std::string ByteReader::str() {
    const std::uint32_t n = u32();
    if (n > remaining()) {
        throw WireError("wire: string of " + std::to_string(n) +
                        " bytes overruns the buffer at offset " +
                        std::to_string(off_));
    }
    std::string out(reinterpret_cast<const char*>(take(n)), n);
    return out;
}

std::string ByteReader::fixed_str(std::size_t width) {
    const auto* b = reinterpret_cast<const char*>(take(width));
    std::size_t len = 0;
    while (len < width && b[len] != '\0') ++len;
    return std::string(b, len);
}

void ByteReader::expect_end() const {
    if (off_ != size_) {
        throw WireError("wire: " + std::to_string(size_ - off_) +
                        " unexpected trailing byte(s) after offset " +
                        std::to_string(off_));
    }
}

const std::uint8_t* ByteReader::take(std::size_t n) {
    if (n > size_ - off_) {
        throw WireError("wire: read of " + std::to_string(n) +
                        " byte(s) at offset " + std::to_string(off_) +
                        " overruns the " + std::to_string(size_) +
                        "-byte buffer");
    }
    const std::uint8_t* out = p_ + off_;
    off_ += n;
    return out;
}

}  // namespace ob::util
