#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ob::util {

/// Canonical little-endian byte codec shared by every externally-visible
/// binary format in the tree: the fleet shard artifact
/// (`system/fleet_shard.hpp`) and the fleet_serve wire protocol
/// (`system/fleet_protocol.hpp`, spec in docs/PROTOCOL.md). One encoding
/// with explicit widths means "bitwise identical" claims about those
/// formats are claims about these few functions — doubles travel as their
/// IEEE-754 bit patterns, never through text round-trips.
class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { put_le(v, 2); }
    void u32(std::uint32_t v) { put_le(v, 4); }
    void u64(std::uint64_t v) { put_le(v, 8); }
    void f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /// Raw bytes, no length prefix (fixed-size fields).
    void bytes(const void* data, std::size_t n) {
        const std::size_t at = buf_.size();
        buf_.resize(at + n);
        std::memcpy(buf_.data() + at, data, n);
    }

    /// Length-prefixed (u32) string.
    void str(std::string_view s);

    /// Fixed-width char field: the string NUL-padded to `width` bytes.
    /// Throws std::invalid_argument when the string does not fit (the
    /// protocol's fixed-size frames must never silently truncate).
    void fixed_str(std::string_view s, std::size_t width);

    [[nodiscard]] const std::vector<std::uint8_t>& data() const {
        return buf_;
    }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }
    [[nodiscard]] std::string take_string() const {
        return std::string(reinterpret_cast<const char*>(buf_.data()),
                           buf_.size());
    }

private:
    void put_le(std::uint64_t v, int n) {
        for (int i = 0; i < n; ++i) {
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }
    std::vector<std::uint8_t> buf_;
};

/// Matching bounds-checked reader. Every underrun throws a WireError with
/// the offset, so a truncated artifact or frame is a diagnosable error,
/// never silent garbage.
class WireError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class ByteReader {
public:
    ByteReader(const void* data, std::size_t size)
        : p_(static_cast<const std::uint8_t*>(data)), size_(size) {}
    explicit ByteReader(std::string_view bytes)
        : ByteReader(bytes.data(), bytes.size()) {}

    [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
    [[nodiscard]] std::uint16_t u16() {
        return static_cast<std::uint16_t>(get_le(2));
    }
    [[nodiscard]] std::uint32_t u32() {
        return static_cast<std::uint32_t>(get_le(4));
    }
    [[nodiscard]] std::uint64_t u64() { return get_le(8); }
    [[nodiscard]] double f64() {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
    [[nodiscard]] bool boolean() { return u8() != 0; }

    /// Length-prefixed (u32) string.
    [[nodiscard]] std::string str();

    /// Fixed-width char field written by ByteWriter::fixed_str: the bytes
    /// up to the first NUL (or the full width).
    [[nodiscard]] std::string fixed_str(std::size_t width);

    void read_bytes(void* out, std::size_t n) {
        std::memcpy(out, take(n), n);
    }

    [[nodiscard]] std::size_t offset() const { return off_; }
    [[nodiscard]] std::size_t remaining() const { return size_ - off_; }

    /// Throws unless the buffer was consumed exactly — a fixed-size frame
    /// with trailing bytes is as malformed as a short one.
    void expect_end() const;

private:
    const std::uint8_t* take(std::size_t n);
    std::uint64_t get_le(int n) {
        const std::uint8_t* b = take(static_cast<std::size_t>(n));
        std::uint64_t v = 0;
        for (int i = 0; i < n; ++i) {
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        }
        return v;
    }

    const std::uint8_t* p_;
    std::size_t size_;
    std::size_t off_ = 0;
};

}  // namespace ob::util
