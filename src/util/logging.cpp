#include "util/logging.hpp"

namespace ob::util {

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
    std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
    out << '[' << name(level) << "] " << component << ": " << message << '\n';
}

}  // namespace ob::util
