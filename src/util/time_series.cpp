#include "util/time_series.hpp"

#include <algorithm>

namespace ob::util {

double TimeSeries::sample(double t) const {
    if (t_.empty()) throw std::domain_error("TimeSeries::sample on empty series");
    if (t <= t_.front()) return v_.front();
    if (t >= t_.back()) return v_.back();
    const auto it = std::lower_bound(t_.begin(), t_.end(), t);
    const auto hi = static_cast<std::size_t>(it - t_.begin());
    const std::size_t lo = hi - 1;
    const double span = t_[hi] - t_[lo];
    if (span <= 0.0) return v_[hi];
    const double frac = (t - t_[lo]) / span;
    return v_[lo] * (1.0 - frac) + v_[hi] * frac;
}

TimeSeries TimeSeries::window(double t0, double t1) const {
    TimeSeries out;
    for (std::size_t i = 0; i < t_.size(); ++i) {
        if (t_[i] >= t0 && t_[i] <= t1) out.push(t_[i], v_[i]);
    }
    return out;
}

}  // namespace ob::util
