#include "system/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <stdexcept>
#include <thread>

#include "core/calibration.hpp"
#include "system/experiment.hpp"

namespace ob::system {

using math::EulerAngles;
using math::rad2deg;

namespace {

/// Salt separating the sensor-instrument RNG stream from the drive-layout
/// stream that `spec.build` consumes directly.
constexpr std::uint64_t kSensorStreamSalt = 0xA5A55A5AF00DBEEFull;

}  // namespace

const char* processor_name(BoresightSystem::Processor p) {
    return p == BoresightSystem::Processor::kNative ? "native" : "sabre";
}

void FleetCalibration::validate() const {
    if (!(duration_s > 0.0)) {
        throw std::invalid_argument(
            "FleetCalibration: level-platform dwell must be positive");
    }
}

void FleetJob::validate() const {
    if (scenario.empty()) {
        throw std::invalid_argument("FleetJob: scenario name must not be empty");
    }
    if (!sim::ScenarioLibrary::instance().find(scenario)) {
        throw std::invalid_argument("FleetJob: unknown scenario '" + scenario +
                                    "'");
    }
    if (duration_s < 0.0) {
        throw std::invalid_argument(
            "FleetJob: duration override must be non-negative");
    }
    if (misalignment) {
        const double worst =
            std::max({std::abs(misalignment->roll), std::abs(misalignment->pitch),
                      std::abs(misalignment->yaw)});
        if (worst > kFleetSmallAngleLimitRad) {
            throw std::invalid_argument(
                "FleetJob: misalignment override of " +
                std::to_string(rad2deg(worst)) +
                " deg is outside the EKF's small-angle regime (limit " +
                std::to_string(rad2deg(kFleetSmallAngleLimitRad)) + " deg)");
        }
    }
    if (calibration) calibration->validate();
    if (use_adaptive_tuner &&
        processor == BoresightSystem::Processor::kSabre) {
        // The retune loop runs in the native EKF only; the firmware has no
        // writable R register yet. A job claiming "adaptive" while the
        // tuner silently never runs would poison tuning-study data.
        throw std::invalid_argument(
            "FleetJob: the adaptive tuner is native-only (the Sabre "
            "firmware has no runtime noise register)");
    }
    if (tuner) {
        if (!use_adaptive_tuner) {
            throw std::invalid_argument(
                "FleetJob: tuner config override requires use_adaptive_tuner");
        }
        tuner->validate();
    }
    if (meas_noise_mps2 && !(*meas_noise_mps2 > 0.0)) {
        throw std::invalid_argument(
            "FleetJob: measurement-noise override must be positive");
    }
}

FleetResult run_fleet_job(const FleetJob& job) {
    job.validate();
    const auto& spec = sim::ScenarioLibrary::instance().at(job.scenario);
    const double duration =
        job.duration_s > 0.0 ? job.duration_s : spec.duration_s;
    const EulerAngles truth0 =
        job.misalignment ? *job.misalignment : spec.misalignment;
    const std::uint64_t seed = sim::scenario_seed(job.scenario, job.base_seed);

    auto scfg = spec.build(duration, truth0, seed);
    sim::Scenario sc(scfg, seed ^ kSensorStreamSalt);

    const double meas_noise =
        job.meas_noise_mps2 ? *job.meas_noise_mps2 : spec.meas_noise_mps2;
    BoresightSystem::Config cfg;
    cfg.processor = job.processor;
    cfg.filter.meas_noise_mps2 = meas_noise;
    cfg.filter.angle_process_noise = spec.angle_process_noise;
    cfg.sabre.r_sigma = meas_noise;
    cfg.sabre.q_variance =
        spec.angle_process_noise * spec.angle_process_noise;
    cfg.use_adaptive_tuner = job.use_adaptive_tuner;
    if (job.tuner) cfg.tuner = *job.tuner;

    FleetResult out;
    out.scenario = job.scenario;
    out.processor = job.processor;

    // §11.1 calibration phase: the same instruments (identical sensor-seed
    // realization and error magnitudes) dwell on a level platform at known
    // zero alignment; the accumulated ACC-vs-IMU bias is subtracted from
    // every ACC reading of the main run. A separate Scenario instance keeps
    // the main run's RNG draws untouched, so calibration-free jobs are
    // bitwise unaffected by this block not running.
    if (job.calibration) {
        auto cal_cfg = sim::ScenarioConfig::static_level(
            job.calibration->duration_s, EulerAngles{});
        cal_cfg.imu_errors = scfg.imu_errors;
        cal_cfg.acc_errors = scfg.acc_errors;
        cal_cfg.vibration = scfg.vibration;
        cal_cfg.adxl = scfg.adxl;
        sim::Scenario cal(cal_cfg, seed ^ kSensorStreamSalt);
        core::CalibrationAccumulator accum;
        while (auto s = cal.next()) {
            const auto d = decode_step(cal, *s);
            accum.add(d.f_body, d.acc_xy);
        }
        cfg.calibrated_bias = accum.bias();
        out.calibrated_bias = accum.bias();
        out.calibration_noise = accum.noise_sigma();
        out.calibration_samples = accum.samples();
    }

    BoresightSystem sys(cfg);
    out.envelope = spec.envelope;
    if (job.processor == BoresightSystem::Processor::kSabre) {
        out.envelope.roll_deg *= spec.sabre_envelope_scale;
        out.envelope.pitch_deg *= spec.sabre_envelope_scale;
        out.envelope.yaw_deg *= spec.sabre_envelope_scale;
        out.envelope.residual_rms_max *= spec.sabre_envelope_scale;
    }

    // The bump time tracks a shortened duration override proportionally so
    // truncated fleet runs still exercise the disturbance path.
    const double bump_at = spec.bump.enabled()
                               ? spec.bump.at_s * (duration / spec.duration_s)
                               : -1.0;

    // Envelope windows: post-settle, and for bump scenarios both the
    // pre-bump stretch and the re-settled post-bump stretch.
    const auto checked = [&](double t) {
        if (bump_at >= 0.0 && t >= bump_at) {
            return t >= bump_at + out.envelope.settle_s;
        }
        return t >= out.envelope.settle_s && (bump_at < 0.0 || t < bump_at);
    };

    bool bumped = false;
    while (auto s = sc.next()) {
        sys.feed(sc, *s);
        ++out.trace.epochs;
        if (checked(s->t)) {
            const auto st = sys.status();
            const auto truth = sc.true_misalignment();
            ++out.trace.checked_points;
            out.trace.worst_roll_err_deg =
                std::max(out.trace.worst_roll_err_deg,
                         std::abs(rad2deg(st.estimate.roll - truth.roll)));
            out.trace.worst_pitch_err_deg =
                std::max(out.trace.worst_pitch_err_deg,
                         std::abs(rad2deg(st.estimate.pitch - truth.pitch)));
            out.trace.worst_yaw_err_deg =
                std::max(out.trace.worst_yaw_err_deg,
                         std::abs(rad2deg(st.estimate.yaw - truth.yaw)));
        }
        // Bump after the epoch is consumed and scored: no sample generated
        // under the old alignment is ever judged against the new truth.
        if (bump_at >= 0.0 && !bumped && s->t >= bump_at) {
            sc.bump(spec.bump.delta);
            bumped = true;
        }
    }

    out.final_status = sys.status();
    out.result.label =
        job.scenario + "/" + processor_name(job.processor);
    out.result.truth = sc.true_misalignment();
    out.result.estimate = out.final_status.estimate;
    out.result.sigma3_rad = out.final_status.sigma3;
    out.result.residual_rms = out.final_status.residual_rms;
    out.result.meas_noise = out.final_status.measurement_noise;
    out.result.duration_s = sc.duration();

    out.within_envelope =
        out.trace.checked_points > 0 &&
        out.trace.worst_roll_err_deg <= out.envelope.roll_deg &&
        out.trace.worst_pitch_err_deg <= out.envelope.pitch_deg &&
        (!out.envelope.check_yaw ||
         out.trace.worst_yaw_err_deg <= out.envelope.yaw_deg) &&
        out.result.residual_rms <= out.envelope.residual_rms_max;
    return out;
}

FleetRunner::FleetRunner() : FleetRunner(Config{}) {}

FleetRunner::FleetRunner(Config cfg)
    : threads_(cfg.threads != 0
                   ? cfg.threads
                   : std::max(1u, std::thread::hardware_concurrency())) {}

std::vector<FleetResult> FleetRunner::run(
    const std::vector<FleetJob>& jobs) const {
    for (const auto& j : jobs) j.validate();

    std::vector<FleetResult> results(jobs.size());
    const std::size_t workers = std::min(threads_, jobs.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            results[i] = run_fleet_job(jobs[i]);
        }
        return results;
    }

    // Work-stealing off a shared index: scheduling decides only *which
    // thread* runs a job, never what the job computes, so the results
    // vector is bitwise identical to the serial loop above.
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(jobs.size());
    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size()) return;
            try {
                results[i] = run_fleet_job(jobs[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();

    // Rethrow the lowest-index failure so the surfaced error is as
    // deterministic as the results.
    for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
    }
    return results;
}

std::vector<FleetJob> full_library_jobs(BoresightSystem::Processor processor,
                                        std::uint64_t base_seed) {
    std::vector<FleetJob> jobs;
    for (const auto& spec : sim::ScenarioLibrary::instance().all()) {
        FleetJob job;
        job.scenario = spec.name;
        job.processor = processor;
        job.base_seed = base_seed;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

}  // namespace ob::system
