#include "system/fleet.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <deque>
#include <exception>
#include <map>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "core/calibration.hpp"
#include "sim/ensemble_realizer.hpp"
#include "sim/scenario_trace.hpp"
#include "sim/sensor_fault.hpp"
#include "system/ensemble_runner.hpp"
#include "system/experiment.hpp"
#include "util/rng.hpp"

namespace ob::system {

using math::EulerAngles;
using math::rad2deg;

namespace {

/// Salt separating the sensor-instrument RNG stream from the drive-layout
/// stream that `spec.build` consumes directly.
constexpr std::uint64_t kSensorStreamSalt = 0xA5A55A5AF00DBEEFull;

/// Requested run length (the spec default unless the job overrides it).
/// The trajectory profile may overshoot this — drives append whole
/// maneuver blocks — and the run itself follows the profile's duration.
[[nodiscard]] double job_duration(const FleetJob& job,
                                  const sim::ScenarioSpec& spec) {
    return job.duration_s > 0.0 ? job.duration_s : spec.duration_s;
}

[[nodiscard]] EulerAngles job_truth(const FleetJob& job,
                                    const sim::ScenarioSpec& spec) {
    return job.misalignment ? *job.misalignment : spec.misalignment;
}

/// Seed of the job's sensor stream at realization index 0 (the historical
/// single-seed stream the shared trace's vibration timelines derive from).
[[nodiscard]] std::uint64_t job_sensor_stream(const FleetJob& job) {
    return sim::scenario_seed(job.scenario, job.base_seed) ^ kSensorStreamSalt;
}

[[nodiscard]] sim::ScenarioConfig main_scenario_config(
    const FleetJob& job, const sim::ScenarioSpec& spec) {
    return spec.build(job_duration(job, spec), job_truth(job, spec),
                      sim::scenario_seed(job.scenario, job.base_seed));
}

/// §11.1 calibration scenario: the same instruments (identical error
/// magnitudes) dwell on a level platform at known zero alignment. The
/// error fields come from the already-built main trace, so the drive
/// profile is never integrated a second time just to read them.
[[nodiscard]] sim::ScenarioConfig calibration_scenario_config(
    const sim::ScenarioTrace& main_trace, double dwell_s) {
    auto cal_cfg = sim::ScenarioConfig::static_level(dwell_s, EulerAngles{});
    cal_cfg.imu_errors = main_trace.imu_errors();
    cal_cfg.acc_errors = main_trace.acc_errors();
    cal_cfg.vibration = main_trace.vibration();
    cal_cfg.adxl = main_trace.adxl();
    return cal_cfg;
}

[[nodiscard]] sim::ScenarioEnvelope job_envelope(
    const FleetJob& job, const sim::ScenarioSpec& spec) {
    sim::ScenarioEnvelope env = spec.envelope;
    if (job.processor == BoresightSystem::Processor::kSabre) {
        env.roll_deg *= spec.sabre_envelope_scale;
        env.pitch_deg *= spec.sabre_envelope_scale;
        env.yaw_deg *= spec.sabre_envelope_scale;
        env.residual_rms_max *= spec.sabre_envelope_scale;
    }
    return env;
}

/// Execute one Monte Carlo realization of a job over the shared traces.
/// This is the Realize layer: per-seed instrument realization + transport
/// + fusion + envelope scoring, consuming (never mutating) the trace.
[[nodiscard]] FleetSeedResult run_fleet_seed(
    const FleetJob& job, const sim::ScenarioSpec& spec,
    const std::shared_ptr<const sim::ScenarioTrace>& trace,
    const std::shared_ptr<const sim::ScenarioTrace>& cal_trace,
    std::uint64_t seed_index) {
    const double duration = job_duration(job, spec);
    const std::uint64_t sensor_seed =
        fleet_sub_seed(job_sensor_stream(job), seed_index);
    sim::Scenario sc(trace, job_truth(job, spec), sensor_seed);
    const sim::ScenarioEnvelope envelope = job_envelope(job, spec);

    const double meas_noise =
        job.meas_noise_mps2 ? *job.meas_noise_mps2 : spec.meas_noise_mps2;
    BoresightSystem::Config cfg;
    cfg.processor = job.processor;
    cfg.filter.meas_noise_mps2 = meas_noise;
    cfg.filter.angle_process_noise = spec.angle_process_noise;
    cfg.sabre.r_sigma = meas_noise;
    cfg.sabre.q_variance =
        spec.angle_process_noise * spec.angle_process_noise;
    cfg.use_adaptive_tuner = job.use_adaptive_tuner;
    if (job.tuner) cfg.tuner = *job.tuner;

    FleetSeedResult out;
    out.sensor_seed = sensor_seed;

    // Fault-injection axis. Zero intensity takes the un-faulted path
    // wholesale — no config change, no extra draw anywhere — so control
    // cells are bitwise the reference runs. Fault draws live on their own
    // per-realization stream (kFleetFaultStreamSalt), never touching the
    // instrument-noise stream the sensor realization consumes.
    if (job.fault && job.fault->intensity > 0.0) {
        const double intensity = job.fault->intensity;
        const std::uint64_t fault_seed = fleet_sub_seed(
            job_sensor_stream(job) ^ kFleetFaultStreamSalt, seed_index);
        switch (job.fault->type) {
            case FaultType::kUartDropout:
                cfg.dmu_link_faults.drop_probability = intensity;
                cfg.acc_link_faults.drop_probability = intensity;
                cfg.link_fault_seed = fault_seed;
                break;
            case FaultType::kUartCorruption:
                cfg.dmu_link_faults.bit_flip_probability = intensity;
                cfg.acc_link_faults.bit_flip_probability = intensity;
                cfg.link_fault_seed = fault_seed;
                break;
            case FaultType::kCanBurstLoss:
                cfg.can_faults.burst_probability = intensity;
                cfg.can_faults.burst_frames = job.fault->burst_frames;
                cfg.can_faults.seed = fault_seed;
                break;
            case FaultType::kAccStuck:
            case FaultType::kImuFrozen: {
                // Freeze `intensity` of the run; the window starts at a
                // fault-stream-drawn point inside the post-settle stretch
                // so divergence is attributable to the fault, not to the
                // filter still converging.
                const double run_s = sc.duration();
                sim::SensorFault fault;
                fault.duration_s = intensity * run_s;
                const double lo = std::min(envelope.settle_s, run_s);
                const double hi = std::max(lo, run_s - fault.duration_s);
                fault.start_s =
                    lo + util::CounterRng(fault_seed, 0).u01() * (hi - lo);
                if (job.fault->type == FaultType::kAccStuck) {
                    sc.inject_acc_fault(fault);
                } else {
                    sc.inject_imu_fault(fault);
                }
                out.trace.fault_window_start_s = fault.start_s;
                out.trace.fault_window_duration_s = fault.duration_s;
                break;
            }
        }
    }

    // §11.1 calibration phase: this realization's instruments (same
    // sensor-seed draws and error magnitudes) against the shared
    // level-platform trace; the accumulated ACC-vs-IMU bias is subtracted
    // from every ACC reading of the main run. A separate Scenario instance
    // keeps the main run's RNG draws untouched, so calibration-free jobs
    // are bitwise unaffected by this block not running.
    if (job.calibration) {
        sim::Scenario cal(cal_trace, EulerAngles{}, sensor_seed);
        core::CalibrationAccumulator accum;
        sim::Scenario::Step step;
        while (cal.next_into(step)) {
            const auto d = decode_step(cal, step);
            accum.add(d.f_body, d.acc_xy);
        }
        cfg.calibrated_bias = accum.bias();
        out.calibrated_bias = accum.bias();
        out.calibration_noise = accum.noise_sigma();
        out.calibration_samples = accum.samples();
    }

    BoresightSystem sys(cfg);

    // The bump time tracks a shortened duration override proportionally so
    // truncated fleet runs still exercise the disturbance path.
    const double bump_at = spec.bump.enabled()
                               ? spec.bump.at_s * (duration / spec.duration_s)
                               : -1.0;

    // Envelope windows: post-settle, and for bump scenarios both the
    // pre-bump stretch and the re-settled post-bump stretch.
    const auto checked = [&](double t) {
        if (bump_at >= 0.0 && t >= bump_at) {
            return t >= bump_at + envelope.settle_s;
        }
        return t >= envelope.settle_s && (bump_at < 0.0 || t < bump_at);
    };

    bool bumped = false;
    double t = 0.0;
    comm::DmuSample dmu;
    comm::AdxlTiming adxl;
    while (sc.next_wire(t, dmu, adxl)) {
        sys.feed(sc.trace(), t, dmu, adxl);
        ++out.trace.epochs;
        if (checked(t)) {
            const auto st = sys.status();
            const auto truth = sc.true_misalignment();
            ++out.trace.checked_points;
            const double roll_err =
                std::abs(rad2deg(st.estimate.roll - truth.roll));
            const double pitch_err =
                std::abs(rad2deg(st.estimate.pitch - truth.pitch));
            const double yaw_err =
                std::abs(rad2deg(st.estimate.yaw - truth.yaw));
            out.trace.worst_roll_err_deg =
                std::max(out.trace.worst_roll_err_deg, roll_err);
            out.trace.worst_pitch_err_deg =
                std::max(out.trace.worst_pitch_err_deg, pitch_err);
            out.trace.worst_yaw_err_deg =
                std::max(out.trace.worst_yaw_err_deg, yaw_err);
            // Divergence instant: the first checked sample whose error
            // leaves the envelope — the truth the ResidualMonitor's flag
            // time is scored against in fault campaigns.
            if (out.trace.first_divergence_s < 0.0 &&
                (roll_err > envelope.roll_deg ||
                 pitch_err > envelope.pitch_deg ||
                 (envelope.check_yaw && yaw_err > envelope.yaw_deg))) {
                out.trace.first_divergence_s = t;
            }
        }
        // Bump after the epoch is consumed and scored: no sample generated
        // under the old alignment is ever judged against the new truth.
        if (bump_at >= 0.0 && !bumped && t >= bump_at) {
            sc.bump(spec.bump.delta);
            bumped = true;
        }
    }

    out.final_status = sys.status();
    out.result.label = job.scenario + "/" + processor_name(job.processor);
    if (seed_index > 0) {
        out.result.label += "#seed" + std::to_string(seed_index);
    }
    out.result.truth = sc.true_misalignment();
    out.result.estimate = out.final_status.estimate;
    out.result.sigma3_rad = out.final_status.sigma3;
    out.result.residual_rms = out.final_status.residual_rms;
    out.result.meas_noise = out.final_status.measurement_noise;
    out.result.duration_s = sc.duration();

    out.within_envelope =
        out.trace.checked_points > 0 &&
        out.trace.worst_roll_err_deg <= envelope.roll_deg &&
        out.trace.worst_pitch_err_deg <= envelope.pitch_deg &&
        (!envelope.check_yaw ||
         out.trace.worst_yaw_err_deg <= envelope.yaw_deg) &&
        out.result.residual_rms <= envelope.residual_rms_max;
    return out;
}

/// Lane cap of one batched ensemble: bounds the batch's working set (32
/// EKF lanes plus detector state still fit L1/L2 comfortably) and the
/// stack-side seed scratch below.
constexpr std::size_t kMaxBatchLanes = 32;

/// Whether a job's realizations may take the batched ensemble path at all:
/// native fusion, no active fault (the fault hooks live in the scalar
/// transport stack). Zero-intensity faults bypass the fault machinery in
/// run_fleet_seed, so they batch like un-faulted jobs — keeping campaign
/// control cells on the same code path as the runs they control for.
[[nodiscard]] bool job_batchable(const FleetJob& job) {
    return job.processor == BoresightSystem::Processor::kNative &&
           (!job.fault || job.fault->intensity <= 0.0);
}

/// Batched Realize: `lane_count` consecutive realizations (seed indices
/// first_seed .. first_seed + lane_count - 1) of one job step the shared
/// trace together through EnsembleRealizer + EnsembleNominalSystem,
/// writing results into out[0 .. lane_count). Every lane is bitwise
/// run_fleet_seed's result for the same index; a lane the ensemble cannot
/// carry nominally (transport ran past the epoch horizon) is re-run
/// through run_fleet_seed itself, so the fallback is the identity.
void run_fleet_seed_batch(
    const FleetJob& job, const sim::ScenarioSpec& spec,
    const std::shared_ptr<const sim::ScenarioTrace>& trace,
    const std::shared_ptr<const sim::ScenarioTrace>& cal_trace,
    std::uint64_t first_seed, std::size_t lane_count, FleetSeedResult* out) {
    const double duration = job_duration(job, spec);
    const sim::ScenarioEnvelope envelope = job_envelope(job, spec);

    std::array<std::uint64_t, kMaxBatchLanes> seeds{};
    for (std::size_t l = 0; l < lane_count; ++l) {
        seeds[l] = fleet_sub_seed(job_sensor_stream(job), first_seed + l);
    }

    const double meas_noise =
        job.meas_noise_mps2 ? *job.meas_noise_mps2 : spec.meas_noise_mps2;
    BoresightSystem::Config cfg;
    cfg.processor = job.processor;
    cfg.filter.meas_noise_mps2 = meas_noise;
    cfg.filter.angle_process_noise = spec.angle_process_noise;
    cfg.sabre.r_sigma = meas_noise;
    cfg.sabre.q_variance =
        spec.angle_process_noise * spec.angle_process_noise;
    cfg.use_adaptive_tuner = job.use_adaptive_tuner;
    if (job.tuner) cfg.tuner = *job.tuner;

    sim::EnsembleRealizer ens(trace, job_truth(job, spec),
                              {seeds.data(), lane_count});
    EnsembleNominalSystem sys(cfg, lane_count);

    for (std::size_t l = 0; l < lane_count; ++l) {
        out[l] = FleetSeedResult{};
        out[l].sensor_seed = seeds[l];
    }

    // §11.1 calibration stays scalar per lane: the dwell is a fraction of
    // the run and its transport-free decode path has no batched variant.
    if (job.calibration) {
        for (std::size_t l = 0; l < lane_count; ++l) {
            sim::Scenario cal(cal_trace, EulerAngles{}, seeds[l]);
            core::CalibrationAccumulator accum;
            sim::Scenario::Step step;
            while (cal.next_into(step)) {
                const auto d = decode_step(cal, step);
                accum.add(d.f_body, d.acc_xy);
            }
            sys.set_calibrated_bias(l, accum.bias());
            out[l].calibrated_bias = accum.bias();
            out[l].calibration_noise = accum.noise_sigma();
            out[l].calibration_samples = accum.samples();
        }
    }

    const double bump_at = spec.bump.enabled()
                               ? spec.bump.at_s * (duration / spec.duration_s)
                               : -1.0;
    const auto checked = [&](double t) {
        if (bump_at >= 0.0 && t >= bump_at) {
            return t >= bump_at + envelope.settle_s;
        }
        return t >= envelope.settle_s && (bump_at < 0.0 || t < bump_at);
    };

    bool bumped = false;
    double t = 0.0;
    std::size_t epochs = 0;
    while (ens.step(t)) {
        sys.feed(ens.trace(), t, ens.dmu(), ens.adxl());
        ++epochs;
        if (checked(t)) {
            const EulerAngles truth = ens.true_misalignment();
            for (std::size_t l = 0; l < lane_count; ++l) {
                if (!sys.lane_ok(l)) continue;
                const EulerAngles est = sys.estimate(l);
                ++out[l].trace.checked_points;
                const double roll_err =
                    std::abs(rad2deg(est.roll - truth.roll));
                const double pitch_err =
                    std::abs(rad2deg(est.pitch - truth.pitch));
                const double yaw_err = std::abs(rad2deg(est.yaw - truth.yaw));
                out[l].trace.worst_roll_err_deg =
                    std::max(out[l].trace.worst_roll_err_deg, roll_err);
                out[l].trace.worst_pitch_err_deg =
                    std::max(out[l].trace.worst_pitch_err_deg, pitch_err);
                out[l].trace.worst_yaw_err_deg =
                    std::max(out[l].trace.worst_yaw_err_deg, yaw_err);
                if (out[l].trace.first_divergence_s < 0.0 &&
                    (roll_err > envelope.roll_deg ||
                     pitch_err > envelope.pitch_deg ||
                     (envelope.check_yaw && yaw_err > envelope.yaw_deg))) {
                    out[l].trace.first_divergence_s = t;
                }
            }
        }
        if (bump_at >= 0.0 && !bumped && t >= bump_at) {
            ens.bump(spec.bump.delta);
            bumped = true;
        }
    }

    const EulerAngles truth = ens.true_misalignment();
    for (std::size_t l = 0; l < lane_count; ++l) {
        if (!sys.lane_ok(l)) {
            // The lane left the nominal transport envelope mid-run; its
            // batched state is stale. Realize it scalar from scratch — the
            // always-correct reference — overwriting everything above.
            out[l] = run_fleet_seed(job, spec, trace, cal_trace,
                                    first_seed + l);
            continue;
        }
        out[l].trace.epochs = epochs;
        out[l].final_status = sys.status(l);
        out[l].result.label =
            job.scenario + "/" + processor_name(job.processor);
        if (first_seed + l > 0) {
            out[l].result.label +=
                "#seed" + std::to_string(first_seed + l);
        }
        out[l].result.truth = truth;
        out[l].result.estimate = out[l].final_status.estimate;
        out[l].result.sigma3_rad = out[l].final_status.sigma3;
        out[l].result.residual_rms = out[l].final_status.residual_rms;
        out[l].result.meas_noise = out[l].final_status.measurement_noise;
        out[l].result.duration_s = ens.duration();
        out[l].within_envelope =
            out[l].trace.checked_points > 0 &&
            out[l].trace.worst_roll_err_deg <= envelope.roll_deg &&
            out[l].trace.worst_pitch_err_deg <= envelope.pitch_deg &&
            (!envelope.check_yaw ||
             out[l].trace.worst_yaw_err_deg <= envelope.yaw_deg) &&
            out[l].result.residual_rms <= envelope.residual_rms_max;
    }
}

/// Mean / sample standard deviation in seed-index order (two fixed-order
/// passes, so the doubles are scheduling-independent).
template <class Get>
[[nodiscard]] FleetMetricStats metric_stats(
    const std::vector<FleetSeedResult>& seeds, Get get) {
    FleetMetricStats out;
    const auto n = static_cast<double>(seeds.size());
    double sum = 0.0;
    for (const auto& s : seeds) sum += get(s);
    out.mean = sum / n;
    if (seeds.size() > 1) {
        double sq = 0.0;
        for (const auto& s : seeds) {
            const double d = get(s) - out.mean;
            sq += d * d;
        }
        out.stddev = std::sqrt(sq / (n - 1.0));
    }
    return out;
}

/// Fold a job's seed ensemble into its FleetResult: primary fields mirror
/// realization 0 bit for bit; the ensemble summary is accumulated in seed
/// order.
[[nodiscard]] FleetResult reduce_job(const FleetJob& job,
                                     const sim::ScenarioSpec& spec,
                                     std::vector<FleetSeedResult> seeds) {
    FleetResult out;
    out.scenario = job.scenario;
    out.processor = job.processor;
    out.envelope = job_envelope(job, spec);

    const FleetSeedResult& primary = seeds.front();
    out.result = primary.result;
    out.trace = primary.trace;
    out.final_status = primary.final_status;
    out.within_envelope = primary.within_envelope;
    out.calibrated_bias = primary.calibrated_bias;
    out.calibration_noise = primary.calibration_noise;
    out.calibration_samples = primary.calibration_samples;

    out.seed_stats.seeds = seeds.size();
    for (const auto& s : seeds) {
        if (s.within_envelope) ++out.seed_stats.within_envelope;
    }
    out.seed_stats.roll_err_deg = metric_stats(
        seeds, [](const FleetSeedResult& s) { return s.trace.worst_roll_err_deg; });
    out.seed_stats.pitch_err_deg = metric_stats(
        seeds, [](const FleetSeedResult& s) { return s.trace.worst_pitch_err_deg; });
    out.seed_stats.yaw_err_deg = metric_stats(
        seeds, [](const FleetSeedResult& s) { return s.trace.worst_yaw_err_deg; });
    out.seed_stats.residual_rms = metric_stats(
        seeds, [](const FleetSeedResult& s) { return s.result.residual_rms; });

    out.seeds = std::move(seeds);
    return out;
}

}  // namespace

FleetResult reduce_fleet_job(const FleetJob& job,
                             std::vector<FleetSeedResult> seeds) {
    if (seeds.size() != job.seeds_per_job) {
        throw std::invalid_argument(
            "reduce_fleet_job: " + std::to_string(seeds.size()) +
            " seed result(s) for a job with seeds_per_job " +
            std::to_string(job.seeds_per_job));
    }
    const auto& spec = sim::ScenarioLibrary::instance().at(job.scenario);
    return reduce_job(job, spec, std::move(seeds));
}

void encode_fleet_job(util::ByteWriter& w, const FleetJob& job) {
    w.str(job.scenario);
    w.u8(job.processor == BoresightSystem::Processor::kNative ? 0 : 1);
    w.u64(job.base_seed);
    w.f64(job.duration_s);
    w.boolean(job.misalignment.has_value());
    if (job.misalignment) {
        w.f64(job.misalignment->roll);
        w.f64(job.misalignment->pitch);
        w.f64(job.misalignment->yaw);
    }
    w.boolean(job.calibration.has_value());
    if (job.calibration) w.f64(job.calibration->duration_s);
    w.boolean(job.use_adaptive_tuner);
    w.boolean(job.tuner.has_value());
    if (job.tuner) {
        w.f64(job.tuner->floor_mps2);
        w.f64(job.tuner->ceiling_mps2);
        w.f64(job.tuner->raise_threshold);
        w.f64(job.tuner->lower_threshold);
        w.f64(job.tuner->raise_factor);
        w.f64(job.tuner->lower_factor);
        w.u64(job.tuner->window);
        w.u64(job.tuner->min_samples);
    }
    w.boolean(job.meas_noise_mps2.has_value());
    if (job.meas_noise_mps2) w.f64(*job.meas_noise_mps2);
    w.u64(job.seeds_per_job);
    w.boolean(job.fault.has_value());
    if (job.fault) {
        w.u8(static_cast<std::uint8_t>(job.fault->type));
        w.f64(job.fault->intensity);
        w.u64(job.fault->burst_frames);
    }
}

FleetJob decode_fleet_job(util::ByteReader& r) {
    FleetJob job;
    job.scenario = r.str();
    const std::uint8_t proc = r.u8();
    if (proc > 1) {
        throw util::WireError("fleet job: processor byte " +
                              std::to_string(proc) + " is not 0 or 1");
    }
    job.processor = proc == 0 ? BoresightSystem::Processor::kNative
                              : BoresightSystem::Processor::kSabre;
    job.base_seed = r.u64();
    job.duration_s = r.f64();
    if (r.boolean()) {
        math::EulerAngles mis;
        mis.roll = r.f64();
        mis.pitch = r.f64();
        mis.yaw = r.f64();
        job.misalignment = mis;
    }
    if (r.boolean()) {
        FleetCalibration cal;
        cal.duration_s = r.f64();
        job.calibration = cal;
    }
    job.use_adaptive_tuner = r.boolean();
    if (r.boolean()) {
        core::AdaptiveTunerConfig tuner;
        tuner.floor_mps2 = r.f64();
        tuner.ceiling_mps2 = r.f64();
        tuner.raise_threshold = r.f64();
        tuner.lower_threshold = r.f64();
        tuner.raise_factor = r.f64();
        tuner.lower_factor = r.f64();
        tuner.window = static_cast<std::size_t>(r.u64());
        tuner.min_samples = static_cast<std::size_t>(r.u64());
        job.tuner = tuner;
    }
    if (r.boolean()) job.meas_noise_mps2 = r.f64();
    job.seeds_per_job = r.u64();
    if (r.boolean()) {
        FleetFault fault;
        const std::uint8_t type = r.u8();
        if (type > static_cast<std::uint8_t>(FaultType::kImuFrozen)) {
            throw util::WireError("fleet job: fault type byte " +
                                  std::to_string(type) + " is out of range");
        }
        fault.type = static_cast<FaultType>(type);
        fault.intensity = r.f64();
        fault.burst_frames = static_cast<std::size_t>(r.u64());
        job.fault = fault;
    }
    return job;
}

FleetPlan make_fleet_plan(const std::vector<FleetJob>& jobs) {
    FleetPlan plan;
    util::ByteWriter bytes;
    bytes.u64(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        jobs[j].validate();
        encode_fleet_job(bytes, jobs[j]);
        for (std::uint64_t k = 0; k < jobs[j].seeds_per_job; ++k) {
            plan.items.push_back({j, k});
        }
    }
    // FNV-1a over the canonical job encodings: the digest pins the batch
    // identity a shard artifact claims membership of.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint8_t b : bytes.data()) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    plan.digest = h;
    return plan;
}

double FleetMetricStats::ci95(std::size_t n) const {
    if (n < 2) return 0.0;
    return 1.96 * stddev / std::sqrt(static_cast<double>(n));
}

std::uint64_t fleet_sub_seed(std::uint64_t sensor_seed, std::uint64_t index) {
    if (index == 0) return sensor_seed;
    // FNV-1a over the four index bytes folded into the stream seed, with
    // the same finalizing avalanche scenario_seed uses.
    std::uint64_t h = sensor_seed ^ 0xcbf29ce484222325ull;
    for (int shift = 0; shift < 32; shift += 8) {
        h ^= (index >> shift) & 0xFFull;
        h *= 0x100000001b3ull;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h;
}

const char* processor_name(BoresightSystem::Processor p) {
    return p == BoresightSystem::Processor::kNative ? "native" : "sabre";
}

const char* fault_type_name(FaultType t) {
    switch (t) {
        case FaultType::kUartDropout:
            return "uart-dropout";
        case FaultType::kUartCorruption:
            return "uart-corruption";
        case FaultType::kCanBurstLoss:
            return "can-burst-loss";
        case FaultType::kAccStuck:
            return "acc-stuck";
        case FaultType::kImuFrozen:
            return "imu-frozen";
    }
    return "unknown";
}

void FleetFault::validate() const {
    if (!(intensity >= 0.0 && intensity <= 1.0)) {
        throw std::invalid_argument(
            "FleetFault: intensity must be in [0, 1]");
    }
    if (burst_frames == 0) {
        throw std::invalid_argument(
            "FleetFault: burst length must be at least one frame");
    }
}

void FleetCalibration::validate() const {
    if (!(duration_s > 0.0)) {
        throw std::invalid_argument(
            "FleetCalibration: level-platform dwell must be positive");
    }
}

void FleetJob::validate() const {
    if (scenario.empty()) {
        throw std::invalid_argument("FleetJob: scenario name must not be empty");
    }
    if (!sim::ScenarioLibrary::instance().find(scenario)) {
        throw std::invalid_argument("FleetJob: unknown scenario '" + scenario +
                                    "'");
    }
    if (duration_s < 0.0) {
        throw std::invalid_argument(
            "FleetJob: duration override must be non-negative");
    }
    if (misalignment) {
        const double worst =
            std::max({std::abs(misalignment->roll), std::abs(misalignment->pitch),
                      std::abs(misalignment->yaw)});
        if (worst > kFleetSmallAngleLimitRad) {
            throw std::invalid_argument(
                "FleetJob: misalignment override of " +
                std::to_string(rad2deg(worst)) +
                " deg is outside the EKF's small-angle regime (limit " +
                std::to_string(rad2deg(kFleetSmallAngleLimitRad)) + " deg)");
        }
    }
    if (calibration) calibration->validate();
    if (tuner) {
        if (!use_adaptive_tuner) {
            throw std::invalid_argument(
                "FleetJob: tuner config override requires use_adaptive_tuner");
        }
        tuner->validate();
    }
    if (meas_noise_mps2 && !(*meas_noise_mps2 > 0.0)) {
        throw std::invalid_argument(
            "FleetJob: measurement-noise override must be positive");
    }
    if (fault) fault->validate();
    if (seeds_per_job == 0) {
        throw std::invalid_argument(
            "FleetJob: seeds_per_job must be at least 1");
    }
    if (seeds_per_job > kFleetMaxSeedsPerJob) {
        throw std::invalid_argument(
            "FleetJob: seeds_per_job of " + std::to_string(seeds_per_job) +
            " would overflow the 32-bit FNV-1a sub-seed derivation (limit " +
            std::to_string(kFleetMaxSeedsPerJob) + ")");
    }
}

FleetResult run_fleet_job(const FleetJob& job) {
    job.validate();
    const auto& spec = sim::ScenarioLibrary::instance().at(job.scenario);

    // Reference semantics for the whole stack: synthesize this job's traces
    // locally, realize every seed in order, reduce. FleetRunner must match
    // this bit for bit however it schedules and shares.
    const auto trace = sim::ScenarioTrace::build(
        main_scenario_config(job, spec), job_sensor_stream(job));
    std::shared_ptr<const sim::ScenarioTrace> cal_trace;
    if (job.calibration) {
        cal_trace = sim::ScenarioTrace::build(
            calibration_scenario_config(*trace, job.calibration->duration_s),
            job_sensor_stream(job));
    }

    std::vector<FleetSeedResult> seeds;
    seeds.reserve(job.seeds_per_job);
    for (std::uint64_t k = 0; k < job.seeds_per_job; ++k) {
        seeds.push_back(run_fleet_seed(job, spec, trace, cal_trace, k));
    }
    return reduce_job(job, spec, std::move(seeds));
}

FleetRunner::FleetRunner() : FleetRunner(Config{}) {}

FleetRunner::FleetRunner(Config cfg)
    : threads_(cfg.threads != 0
                   ? cfg.threads
                   : std::max(1u, std::thread::hardware_concurrency())),
      share_traces_(cfg.share_traces),
      batch_realizations_(cfg.batch_realizations) {}

std::vector<FleetResult> FleetRunner::run(
    const std::vector<FleetJob>& jobs) const {
    std::size_t total = 0;
    for (const auto& j : jobs) {
        j.validate();
        total += static_cast<std::size_t>(j.seeds_per_job);
    }
    // Realize the full plan, then slice the flat plan-order results back
    // into per-job ensembles and reduce. fleet_shard runs the same
    // run_items over a subrange and fleet_merge applies the same reduce,
    // which is what makes a merged shard set bitwise this call.
    std::vector<FleetSeedResult> flat = run_items(jobs, 0, total);
    std::vector<FleetResult> results;
    results.reserve(jobs.size());
    std::size_t pos = 0;
    for (const auto& job : jobs) {
        const auto n = static_cast<std::size_t>(job.seeds_per_job);
        std::vector<FleetSeedResult> seeds(
            std::make_move_iterator(flat.begin() + static_cast<std::ptrdiff_t>(pos)),
            std::make_move_iterator(flat.begin() + static_cast<std::ptrdiff_t>(pos + n)));
        pos += n;
        results.push_back(reduce_fleet_job(job, std::move(seeds)));
    }
    return results;
}

std::vector<FleetSeedResult> FleetRunner::run_items(
    const std::vector<FleetJob>& jobs, std::size_t first,
    std::size_t count) const {
    for (const auto& j : jobs) j.validate();

    // ---- Plan: group realizations by trace identity. ---------------------
    // Key: everything ScenarioTrace::build consumes — scenario, base seed,
    // requested duration and, for calibration traces, the dwell. The
    // injected misalignment is deliberately NOT part of the identity: a
    // spec builder affects nothing but `true_misalignment` with it (the
    // ScenarioSpec::build contract), and the rotation is applied per
    // realization — so a misalignment sweep shares one trace per scenario.
    using TraceKey = std::tuple<std::string, std::uint64_t, std::uint64_t,
                                bool, std::uint64_t>;
    const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    const auto key_of = [&](const FleetJob& job, const sim::ScenarioSpec& spec,
                            bool calibration) {
        return TraceKey{job.scenario,
                        job.base_seed,
                        bits(job_duration(job, spec)),
                        calibration,
                        calibration ? bits(job.calibration->duration_s) : 0};
    };

    constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
    struct TraceSlot {
        const FleetJob* job = nullptr;  ///< representative for the build
        bool calibration = false;
        /// For a calibration slot: the main slot whose built trace supplies
        /// the instrument error fields (cal slots build in a second wave).
        std::size_t main_slot_for_cal = kNoSlot;
        std::shared_ptr<const sim::ScenarioTrace> trace;
        std::exception_ptr error;
        std::atomic<std::size_t> remaining{0};
    };

    std::deque<TraceSlot> slots;  // deque: grows without moving slots
    std::map<TraceKey, std::size_t> slot_index;
    std::vector<const sim::ScenarioSpec*> specs(jobs.size());
    std::vector<std::size_t> main_slot(jobs.size(), kNoSlot);
    std::vector<std::size_t> cal_slot(jobs.size(), kNoSlot);

    struct Item {
        std::size_t job = 0;
        std::uint64_t seed = 0;
    };
    std::vector<Item> items;
    items.reserve(count);
    std::vector<FleetSeedResult> outcomes(count);

    // Walk the jobs in plan order (job-major, seed-minor), keeping only
    // the items whose global plan index lands in [first, first + count).
    // Traces are interned only for jobs the slice actually touches, so a
    // shard never synthesizes a trace it has no work for.
    const std::size_t slice_end = first + count;
    std::size_t base = 0;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        specs[j] = &sim::ScenarioLibrary::instance().at(jobs[j].scenario);
        const std::size_t seeds =
            static_cast<std::size_t>(jobs[j].seeds_per_job);
        const std::size_t lo = std::max(first, base);
        const std::size_t hi = std::min(slice_end, base + seeds);
        if (lo < hi) {
            if (share_traces_) {
                const auto intern = [&](bool calibration) {
                    const TraceKey key =
                        key_of(jobs[j], *specs[j], calibration);
                    auto [it, inserted] =
                        slot_index.try_emplace(key, slots.size());
                    if (inserted) {
                        slots.emplace_back();
                        slots.back().job = &jobs[j];
                        slots.back().calibration = calibration;
                    }
                    return it->second;
                };
                main_slot[j] = intern(false);
                if (jobs[j].calibration) {
                    cal_slot[j] = intern(true);
                    slots[cal_slot[j]].main_slot_for_cal = main_slot[j];
                }
            }
            for (std::size_t g = lo; g < hi; ++g) {
                items.push_back({j, static_cast<std::uint64_t>(g - base)});
            }
        }
        base += seeds;
    }
    if (slice_end > base || first > base) {
        throw std::out_of_range(
            "FleetRunner::run_items: slice [" + std::to_string(first) +
            ", " + std::to_string(slice_end) + ") overruns the " +
            std::to_string(base) + "-item plan");
    }
    if (share_traces_) {
        for (const auto& item : items) {
            ++slots[main_slot[item.job]].remaining;
            if (cal_slot[item.job] != kNoSlot) {
                ++slots[cal_slot[item.job]].remaining;
            }
        }
    }

    // ---- Trace: synthesize each unique trace exactly once. Main traces
    // build in a first wave; calibration traces in a second, reading their
    // instrument error fields off the built main trace.
    const auto build_slot = [&](TraceSlot& slot) {
        try {
            const auto& job = *slot.job;
            if (slot.calibration) {
                const TraceSlot& main = slots[slot.main_slot_for_cal];
                if (main.error) std::rethrow_exception(main.error);
                slot.trace = sim::ScenarioTrace::build(
                    calibration_scenario_config(*main.trace,
                                                job.calibration->duration_s),
                    job_sensor_stream(job));
            } else {
                const auto& spec =
                    sim::ScenarioLibrary::instance().at(job.scenario);
                slot.trace = sim::ScenarioTrace::build(
                    main_scenario_config(job, spec), job_sensor_stream(job));
            }
        } catch (...) {
            slot.error = std::current_exception();
        }
    };
    std::vector<std::size_t> main_wave, cal_wave;
    for (std::size_t s = 0; s < slots.size(); ++s) {
        (slots[s].calibration ? cal_wave : main_wave).push_back(s);
    }

    // ---- Realize: per-seed realization over the shared traces. -----------
    // Work units: by default one item each, but when batching is on,
    // contiguous plan-order runs of one batchable job's items (consecutive
    // seed indices by construction of the plan walk) merge into ensemble
    // units of up to kMaxBatchLanes lanes. A unit is still one scheduling
    // quantum — which thread runs it never changes what it computes.
    struct Unit {
        std::size_t first = 0;  ///< index into items/outcomes/errors
        std::size_t count = 1;  ///< lanes; 1 => scalar run_fleet_seed
    };
    std::vector<Unit> units;
    units.reserve(items.size());
    const bool batching = batch_realizations_ && share_traces_;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (batching && !units.empty()) {
            Unit& u = units.back();
            const Item& prev = items[i - 1];
            const Item& cur = items[i];
            if (cur.job == prev.job && cur.seed == prev.seed + 1 &&
                u.count < kMaxBatchLanes && job_batchable(jobs[cur.job])) {
                ++u.count;
                continue;
            }
        }
        units.push_back({i, 1});
    }

    std::vector<std::exception_ptr> errors(items.size());
    // Release each trace as its last realization drains so a long sweep's
    // memory high-water mark follows the active scenarios, not the batch.
    const auto release_item = [&](std::size_t job_index) {
        if (!share_traces_) return;
        const auto release = [&](std::size_t s) {
            if (s == kNoSlot) return;
            if (slots[s].remaining.fetch_sub(1) == 1) {
                slots[s].trace.reset();
            }
        };
        release(main_slot[job_index]);
        release(cal_slot[job_index]);
    };
    const auto run_item = [&](std::size_t i) {
        const Item& item = items[i];
        const FleetJob& job = jobs[item.job];
        const sim::ScenarioSpec& spec = *specs[item.job];
        try {
            std::shared_ptr<const sim::ScenarioTrace> trace;
            std::shared_ptr<const sim::ScenarioTrace> cal_trace;
            if (share_traces_) {
                TraceSlot& ms = slots[main_slot[item.job]];
                if (ms.error) std::rethrow_exception(ms.error);
                trace = ms.trace;
                if (cal_slot[item.job] != kNoSlot) {
                    TraceSlot& cs = slots[cal_slot[item.job]];
                    if (cs.error) std::rethrow_exception(cs.error);
                    cal_trace = cs.trace;
                }
            } else {
                trace = sim::ScenarioTrace::build(
                    main_scenario_config(job, spec), job_sensor_stream(job));
                if (job.calibration) {
                    cal_trace = sim::ScenarioTrace::build(
                        calibration_scenario_config(
                            *trace, job.calibration->duration_s),
                        job_sensor_stream(job));
                }
            }
            outcomes[i] =
                run_fleet_seed(job, spec, trace, cal_trace, item.seed);
        } catch (...) {
            errors[i] = std::current_exception();
        }
        release_item(item.job);
    };
    const auto run_unit = [&](std::size_t u) {
        const Unit& unit = units[u];
        if (unit.count == 1) {
            run_item(unit.first);
            return;
        }
        // Multi-lane units exist only under share_traces_ (see `batching`),
        // so the slot tables are always populated here.
        const Item& head = items[unit.first];
        const FleetJob& job = jobs[head.job];
        const sim::ScenarioSpec& spec = *specs[head.job];
        try {
            TraceSlot& ms = slots[main_slot[head.job]];
            if (ms.error) std::rethrow_exception(ms.error);
            std::shared_ptr<const sim::ScenarioTrace> trace = ms.trace;
            std::shared_ptr<const sim::ScenarioTrace> cal_trace;
            if (cal_slot[head.job] != kNoSlot) {
                TraceSlot& cs = slots[cal_slot[head.job]];
                if (cs.error) std::rethrow_exception(cs.error);
                cal_trace = cs.trace;
            }
            run_fleet_seed_batch(job, spec, trace, cal_trace, head.seed,
                                 unit.count, &outcomes[unit.first]);
        } catch (...) {
            errors[unit.first] = std::current_exception();
        }
        for (std::size_t k = 0; k < unit.count; ++k) release_item(head.job);
    };

    const std::size_t workers =
        std::min(threads_, std::max(units.size(), slots.size()));
    if (workers <= 1) {
        for (const std::size_t s : main_wave) build_slot(slots[s]);
        for (const std::size_t s : cal_wave) build_slot(slots[s]);
        for (std::size_t u = 0; u < units.size(); ++u) run_unit(u);
    } else {
        // Work-stealing off shared indices, with barriers between the
        // Trace waves and the Realize phase: scheduling decides only WHICH
        // thread runs a unit, never what it computes.
        const auto run_phase = [&](std::size_t n_work, auto&& work) {
            if (n_work == 0) return;
            std::atomic<std::size_t> next{0};
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (std::size_t w = 0; w < workers; ++w) {
                pool.emplace_back([&] {
                    for (;;) {
                        const std::size_t u = next.fetch_add(1);
                        if (u >= n_work) return;
                        work(u);
                    }
                });
            }
            for (auto& th : pool) th.join();
        };
        run_phase(main_wave.size(),
                  [&](std::size_t u) { build_slot(slots[main_wave[u]]); });
        run_phase(cal_wave.size(),
                  [&](std::size_t u) { build_slot(slots[cal_wave[u]]); });
        run_phase(units.size(), [&](std::size_t u) { run_unit(u); });
    }

    // Rethrow the lowest-index failure so the surfaced error is as
    // deterministic as the results.
    for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
    }

    return outcomes;
}

std::vector<FleetJob> full_library_jobs(BoresightSystem::Processor processor,
                                        std::uint64_t base_seed) {
    std::vector<FleetJob> jobs;
    for (const auto& spec : sim::ScenarioLibrary::instance().all()) {
        FleetJob job;
        job.scenario = spec.name;
        job.processor = processor;
        job.base_seed = base_seed;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

}  // namespace ob::system
