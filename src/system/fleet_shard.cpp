#include "system/fleet_shard.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace ob::system {

namespace {

void encode_euler(util::ByteWriter& w, const math::EulerAngles& e) {
    w.f64(e.roll);
    w.f64(e.pitch);
    w.f64(e.yaw);
}

[[nodiscard]] math::EulerAngles decode_euler(util::ByteReader& r) {
    math::EulerAngles e;
    e.roll = r.f64();
    e.pitch = r.f64();
    e.yaw = r.f64();
    return e;
}

void encode_status(util::ByteWriter& w, const BoresightSystem::Status& st) {
    encode_euler(w, st.estimate);
    for (std::size_t i = 0; i < 3; ++i) w.f64(st.sigma3[i]);
    w.u64(st.updates);
    w.u64(st.dmu_frames_lost);
    w.u64(st.acc_packets_lost);
    w.f64(st.worst_transport_latency);
    w.f64(st.measurement_noise);
    w.f64(st.residual_rms);
    w.u64(st.tuner_adjustments);
    w.boolean(st.residual_flagged);
    w.f64(st.residual_flag_s);
    w.f64(st.residual_windowed_rate);
    w.u64(st.residual_exceedances);
    w.u8(static_cast<std::uint8_t>(st.health));
    w.u8(static_cast<std::uint8_t>(st.worst_health));
    w.boolean(st.supervisor_alarmed);
    w.f64(st.supervisor_alarm_s);
    w.f64(st.dmu_delivery_rate);
    w.f64(st.acc_delivery_rate);
    w.f64(st.coast_s);
    w.u64(st.recoveries);
    w.f64(st.reconvergence_s);
    w.u64(st.acc_implausible);
}

[[nodiscard]] BoresightSystem::Status decode_status(util::ByteReader& r) {
    BoresightSystem::Status st;
    st.estimate = decode_euler(r);
    for (std::size_t i = 0; i < 3; ++i) st.sigma3[i] = r.f64();
    st.updates = static_cast<std::size_t>(r.u64());
    st.dmu_frames_lost = static_cast<std::size_t>(r.u64());
    st.acc_packets_lost = static_cast<std::size_t>(r.u64());
    st.worst_transport_latency = r.f64();
    st.measurement_noise = r.f64();
    st.residual_rms = r.f64();
    st.tuner_adjustments = static_cast<std::size_t>(r.u64());
    st.residual_flagged = r.boolean();
    st.residual_flag_s = r.f64();
    st.residual_windowed_rate = r.f64();
    st.residual_exceedances = static_cast<std::size_t>(r.u64());
    const std::uint8_t health = r.u8();
    const std::uint8_t worst = r.u8();
    if (health > static_cast<std::uint8_t>(HealthState::kFailed) ||
        worst > static_cast<std::uint8_t>(HealthState::kFailed)) {
        throw util::WireError("seed result: health state byte out of range");
    }
    st.health = static_cast<HealthState>(health);
    st.worst_health = static_cast<HealthState>(worst);
    st.supervisor_alarmed = r.boolean();
    st.supervisor_alarm_s = r.f64();
    st.dmu_delivery_rate = r.f64();
    st.acc_delivery_rate = r.f64();
    st.coast_s = r.f64();
    st.recoveries = static_cast<std::size_t>(r.u64());
    st.reconvergence_s = r.f64();
    st.acc_implausible = static_cast<std::size_t>(r.u64());
    return st;
}

}  // namespace

ShardRange shard_range(std::size_t total_items, std::size_t index,
                       std::size_t count) {
    if (count == 0) {
        throw std::invalid_argument("shard_range: shard count must be >= 1");
    }
    if (index >= count) {
        throw std::invalid_argument(
            "shard_range: shard index " + std::to_string(index) +
            " out of range for " + std::to_string(count) + " shard(s)");
    }
    const std::size_t base = total_items / count;
    const std::size_t rem = total_items % count;
    ShardRange r;
    r.begin = index * base + std::min(index, rem);
    r.end = r.begin + base + (index < rem ? 1 : 0);
    return r;
}

void encode_seed_result(util::ByteWriter& w, const FleetSeedResult& s) {
    w.u64(s.sensor_seed);
    // core::AlignmentResult — the Table 1 row.
    w.str(s.result.label);
    encode_euler(w, s.result.truth);
    encode_euler(w, s.result.estimate);
    for (std::size_t i = 0; i < 3; ++i) w.f64(s.result.sigma3_rad[i]);
    w.f64(s.result.residual_rms);
    w.f64(s.result.exceedance_rate);
    w.f64(s.result.meas_noise);
    w.f64(s.result.duration_s);
    // FleetTraceSummary.
    w.u64(s.trace.epochs);
    w.f64(s.trace.worst_roll_err_deg);
    w.f64(s.trace.worst_pitch_err_deg);
    w.f64(s.trace.worst_yaw_err_deg);
    w.u64(s.trace.checked_points);
    w.f64(s.trace.first_divergence_s);
    w.f64(s.trace.fault_window_start_s);
    w.f64(s.trace.fault_window_duration_s);
    encode_status(w, s.final_status);
    w.boolean(s.within_envelope);
    w.f64(s.calibrated_bias[0]);
    w.f64(s.calibrated_bias[1]);
    w.f64(s.calibration_noise);
    w.u64(s.calibration_samples);
}

FleetSeedResult decode_seed_result(util::ByteReader& r) {
    FleetSeedResult s;
    s.sensor_seed = r.u64();
    s.result.label = r.str();
    s.result.truth = decode_euler(r);
    s.result.estimate = decode_euler(r);
    for (std::size_t i = 0; i < 3; ++i) s.result.sigma3_rad[i] = r.f64();
    s.result.residual_rms = r.f64();
    s.result.exceedance_rate = r.f64();
    s.result.meas_noise = r.f64();
    s.result.duration_s = r.f64();
    s.trace.epochs = static_cast<std::size_t>(r.u64());
    s.trace.worst_roll_err_deg = r.f64();
    s.trace.worst_pitch_err_deg = r.f64();
    s.trace.worst_yaw_err_deg = r.f64();
    s.trace.checked_points = static_cast<std::size_t>(r.u64());
    s.trace.first_divergence_s = r.f64();
    s.trace.fault_window_start_s = r.f64();
    s.trace.fault_window_duration_s = r.f64();
    s.final_status = decode_status(r);
    s.within_envelope = r.boolean();
    s.calibrated_bias[0] = r.f64();
    s.calibrated_bias[1] = r.f64();
    s.calibration_noise = r.f64();
    s.calibration_samples = static_cast<std::size_t>(r.u64());
    return s;
}

std::string encode_shard_artifact(const FleetShardArtifact& a) {
    util::ByteWriter w;
    w.bytes(kFleetShardMagic, sizeof kFleetShardMagic);
    w.u32(kFleetShardFormatVersion);
    w.u64(a.plan_digest);
    w.u64(a.total_items);
    w.u64(a.item_begin);
    w.u64(a.item_end);
    w.u64(a.jobs.size());
    for (const auto& job : a.jobs) encode_fleet_job(w, job);
    w.u64(a.results.size());
    for (const auto& s : a.results) encode_seed_result(w, s);
    return w.take_string();
}

FleetShardArtifact decode_shard_artifact(std::string_view bytes) {
    util::ByteReader r(bytes);
    char magic[sizeof kFleetShardMagic];
    r.read_bytes(magic, sizeof magic);
    if (std::memcmp(magic, kFleetShardMagic, sizeof magic) != 0) {
        throw util::WireError(
            "shard artifact: bad magic (not an OBSHARD1 file)");
    }
    const std::uint32_t version = r.u32();
    if (version != kFleetShardFormatVersion) {
        throw util::WireError(
            "shard artifact: format version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(kFleetShardFormatVersion) + ")");
    }
    FleetShardArtifact a;
    a.plan_digest = r.u64();
    a.total_items = r.u64();
    a.item_begin = r.u64();
    a.item_end = r.u64();
    if (a.item_begin > a.item_end || a.item_end > a.total_items) {
        throw util::WireError(
            "shard artifact: slice [" + std::to_string(a.item_begin) + ", " +
            std::to_string(a.item_end) + ") is not inside the " +
            std::to_string(a.total_items) + "-item plan");
    }
    const std::uint64_t job_count = r.u64();
    a.jobs.reserve(static_cast<std::size_t>(job_count));
    for (std::uint64_t j = 0; j < job_count; ++j) {
        a.jobs.push_back(decode_fleet_job(r));
    }
    const std::uint64_t result_count = r.u64();
    if (result_count != a.item_end - a.item_begin) {
        throw util::WireError(
            "shard artifact: " + std::to_string(result_count) +
            " result(s) for a slice of " +
            std::to_string(a.item_end - a.item_begin) + " item(s)");
    }
    a.results.reserve(static_cast<std::size_t>(result_count));
    for (std::uint64_t i = 0; i < result_count; ++i) {
        a.results.push_back(decode_seed_result(r));
    }
    r.expect_end();
    // Re-derive the plan from the embedded jobs: the digest and total in
    // the header must be honest, or merge's digest equality check would
    // accept artifacts that only claim to belong together.
    const FleetPlan plan = make_fleet_plan(a.jobs);
    if (plan.digest != a.plan_digest || plan.items.size() != a.total_items) {
        throw util::WireError(
            "shard artifact: header plan identity does not match the "
            "embedded job list (file corrupt or hand-edited)");
    }
    return a;
}

void save_shard_artifact(const std::string& path,
                         const FleetShardArtifact& a) {
    util::write_file(path, encode_shard_artifact(a));
}

FleetShardArtifact load_shard_artifact(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot open shard artifact '" + path + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
        throw std::runtime_error("error reading shard artifact '" + path +
                                 "'");
    }
    return decode_shard_artifact(buf.str());
}

FleetShardArtifact run_fleet_shard(const std::vector<FleetJob>& jobs,
                                   std::size_t index, std::size_t count,
                                   const FleetRunner& runner) {
    const FleetPlan plan = make_fleet_plan(jobs);
    const ShardRange range = shard_range(plan.items.size(), index, count);
    FleetShardArtifact a;
    a.plan_digest = plan.digest;
    a.total_items = plan.items.size();
    a.item_begin = range.begin;
    a.item_end = range.end;
    a.jobs = jobs;
    a.results = runner.run_items(jobs, range.begin, range.size());
    return a;
}

FleetShardArtifact merge_shards(
    const std::vector<FleetShardArtifact>& shards) {
    if (shards.empty()) {
        throw std::invalid_argument("fleet_merge: no shard artifacts given");
    }
    const FleetShardArtifact& ref = shards.front();
    for (std::size_t i = 1; i < shards.size(); ++i) {
        if (shards[i].plan_digest != ref.plan_digest ||
            shards[i].total_items != ref.total_items) {
            throw std::invalid_argument(
                "fleet_merge: shard " + std::to_string(i) +
                " belongs to a different plan (digest " +
                std::to_string(shards[i].plan_digest) + " over " +
                std::to_string(shards[i].total_items) +
                " item(s); expected digest " + std::to_string(ref.plan_digest) +
                " over " + std::to_string(ref.total_items) + ")");
        }
    }

    // Sort by slice start and require an exact tiling of [0, total).
    std::vector<const FleetShardArtifact*> order;
    order.reserve(shards.size());
    for (const auto& s : shards) order.push_back(&s);
    std::sort(order.begin(), order.end(),
              [](const FleetShardArtifact* a, const FleetShardArtifact* b) {
                  return a->item_begin != b->item_begin
                             ? a->item_begin < b->item_begin
                             : a->item_end < b->item_end;
              });

    FleetShardArtifact merged;
    merged.plan_digest = ref.plan_digest;
    merged.total_items = ref.total_items;
    merged.item_begin = 0;
    merged.item_end = ref.total_items;
    merged.jobs = ref.jobs;
    merged.results.reserve(static_cast<std::size_t>(ref.total_items));
    std::uint64_t next = 0;
    for (const FleetShardArtifact* s : order) {
        if (s->item_begin < next) {
            throw std::invalid_argument(
                "fleet_merge: shard slices overlap at item " +
                std::to_string(s->item_begin) + " (already covered up to " +
                std::to_string(next) + ")");
        }
        if (s->item_begin > next) {
            throw std::invalid_argument(
                "fleet_merge: plan items [" + std::to_string(next) + ", " +
                std::to_string(s->item_begin) +
                ") are covered by no shard — merge needs the full set");
        }
        merged.results.insert(merged.results.end(), s->results.begin(),
                              s->results.end());
        next = s->item_end;
    }
    if (next != ref.total_items) {
        throw std::invalid_argument(
            "fleet_merge: plan items [" + std::to_string(next) + ", " +
            std::to_string(ref.total_items) +
            ") are covered by no shard — merge needs the full set");
    }
    return merged;
}

std::vector<FleetResult> realize_shard_results(const FleetShardArtifact& a) {
    if (!a.covers_full_plan()) {
        throw std::invalid_argument(
            "realize_shard_results: artifact covers [" +
            std::to_string(a.item_begin) + ", " + std::to_string(a.item_end) +
            ") of " + std::to_string(a.total_items) +
            " plan item(s); merge all shards first");
    }
    std::vector<FleetResult> results;
    results.reserve(a.jobs.size());
    std::size_t pos = 0;
    for (const auto& job : a.jobs) {
        const auto n = static_cast<std::size_t>(job.seeds_per_job);
        std::vector<FleetSeedResult> seeds(a.results.begin() + static_cast<std::ptrdiff_t>(pos),
                                           a.results.begin() + static_cast<std::ptrdiff_t>(pos + n));
        pos += n;
        results.push_back(reduce_fleet_job(job, std::move(seeds)));
    }
    return results;
}

}  // namespace ob::system
