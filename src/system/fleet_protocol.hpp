#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/socket.hpp"
#include "util/wire.hpp"

namespace ob::system {

/// fleet_serve wire protocol, version 1.
///
/// The NORMATIVE specification — byte offsets, handshake rules, session
/// lifecycle, error codes, a worked hex dump — is docs/PROTOCOL.md. This
/// header and that document describe the same bytes; CI greps the version
/// and magic constants out of both and fails on drift. The framing follows
/// the fixed-size request/response struct idiom of whisper's TCP server
/// (Server.cpp / WhisperMessage.h): every frame is a 16-byte header plus a
/// payload whose size is fixed per message type, so a reader never parses
/// ahead of what it has validated.

/// Frame magic, "OBFS" read as a little-endian u32.
inline constexpr std::uint32_t kProtocolMagic = 0x5346424Fu;

/// Protocol version carried in every frame header. A server speaks exactly
/// one version; the Hello handshake is where a client learns to walk away.
inline constexpr std::uint16_t kProtocolVersion = 1;

/// Frame header size on the wire; payload sizes are per message type.
inline constexpr std::size_t kFrameHeaderSize = 16;

/// Hard upper bound a reader accepts for the header's payload_size field,
/// whatever the type — a corrupt length cannot make a peer allocate or
/// wait for gigabytes.
inline constexpr std::size_t kMaxPayloadSize = 4096;

/// Message types. Requests are 1..99, responses 101..199; a peer that sees
/// the wrong parity knows immediately the conversation is out of step.
enum class MessageType : std::uint16_t {
    // client -> server
    kHello = 1,         ///< open a session (must be the first frame)
    kPing = 2,          ///< liveness probe, echoed token
    kFleetRequest = 3,  ///< run fleet job(s), stream results
    kStudyRequest = 4,  ///< run the §11 tuning-study panel on a scenario
    kGoodbye = 5,       ///< end the session; server closes the connection
    kShutdown = 6,      ///< ack, then stop the whole daemon
    // server -> client
    kHelloOk = 101,      ///< session granted
    kJobResult = 102,    ///< one completed job (streamed as they finish)
    kDone = 103,         ///< request complete, summary attached
    kPong = 104,         ///< ping echo
    kError = 105,        ///< request rejected / failed; session survives
    kShutdownAck = 106,  ///< daemon is stopping
};

/// Error codes carried by kError frames.
enum class ErrorCode : std::uint16_t {
    kBadMagic = 1,         ///< header magic != kProtocolMagic
    kBadVersion = 2,       ///< client and server versions disagree
    kBadFrame = 3,         ///< unknown type / wrong payload size
    kBadSession = 4,       ///< frame before Hello or wrong session id
    kBadRequest = 5,       ///< request field failed validation
    kUnknownScenario = 6,  ///< scenario name not in the library
    kInternal = 7,         ///< server-side failure while running
    kShuttingDown = 8,     ///< daemon is stopping, request refused
};

[[nodiscard]] const char* error_code_name(ErrorCode c);

/// 16-byte frame header (all integers little-endian):
///   off 0  u32  magic        kProtocolMagic
///   off 4  u16  version      kProtocolVersion
///   off 6  u16  type         MessageType
///   off 8  u32  session      0 before Hello, server-assigned after
///   off 12 u32  payload_size bytes that follow the header
struct FrameHeader {
    std::uint32_t magic = kProtocolMagic;
    std::uint16_t version = kProtocolVersion;
    std::uint16_t type = 0;
    std::uint32_t session = 0;
    std::uint32_t payload_size = 0;
};

/// kHello payload (8 bytes): the version range the client can speak.
///   off 0 u16 min_version
///   off 2 u16 max_version
///   off 4 u32 reserved (0)
struct HelloRequest {
    std::uint16_t min_version = kProtocolVersion;
    std::uint16_t max_version = kProtocolVersion;
};
inline constexpr std::size_t kHelloRequestSize = 8;

/// kHelloOk payload (8 bytes): the version the session will speak and the
/// session id every subsequent frame must carry.
///   off 0 u16 version
///   off 2 u16 reserved (0)
///   off 4 u32 session
struct HelloOk {
    std::uint16_t version = kProtocolVersion;
    std::uint32_t session = 0;
};
inline constexpr std::size_t kHelloOkSize = 8;

/// kPing / kPong payload (8 bytes): an opaque token the server echoes.
///   off 0 u64 token
struct PingMessage {
    std::uint64_t token = 0;
};
inline constexpr std::size_t kPingSize = 8;

/// Processor selector in requests.
inline constexpr std::uint8_t kProcessorNative = 0;
inline constexpr std::uint8_t kProcessorSabre = 1;
inline constexpr std::uint8_t kProcessorBoth = 2;  ///< expand to two jobs

/// kFleetRequest payload (64 bytes): one scenario — or "*" for the full
/// 13-scenario library — run through the fleet stack.
///   off 0  char[32] scenario   NUL-padded; "*" = full library
///   off 32 u8       processor  kProcessorNative/Sabre/Both
///   off 33 u8       use_adaptive_tuner (0/1)
///   off 34 u16      seeds_per_job      (0 => 1)
///   off 36 u32      reserved (0)
///   off 40 u64      base_seed          (0 => 2026, the library default)
///   off 48 f64      duration_s         (0 => the scenario spec's default)
///   off 56 f64      meas_noise_mps2    (0 => the spec's recommended value)
struct FleetRequest {
    std::string scenario = "*";
    std::uint8_t processor = kProcessorNative;
    bool use_adaptive_tuner = false;
    std::uint16_t seeds_per_job = 1;
    std::uint64_t base_seed = 2026;
    double duration_s = 0.0;
    double meas_noise_mps2 = 0.0;
};
inline constexpr std::size_t kFleetRequestSize = 64;
inline constexpr std::size_t kScenarioFieldWidth = 32;

/// kStudyRequest payload (48 bytes): run the built-in §11 retune panel
/// (static-0.003, retuned-0.015, adaptive-from-0.003; level-platform
/// calibration) over one scenario. One kJobResult per cell.
///   off 0  char[32] scenario   NUL-padded library name
///   off 32 u8       processor  kProcessorNative/Sabre/Both
///   off 33 u8       reserved (0)
///   off 34 u16      seeds_per_cell (0 => 1)
///   off 36 u32      reserved (0)
///   off 40 u64      base_seed      (0 => 2026)
struct StudyRequest {
    std::string scenario;
    std::uint8_t processor = kProcessorNative;
    std::uint16_t seeds_per_cell = 1;
    std::uint64_t base_seed = 2026;
};
inline constexpr std::size_t kStudyRequestSize = 48;

/// kJobResult payload (152 bytes): one job's reduced result, streamed the
/// moment the job finishes. Doubles are the exact IEEE-754 bit patterns of
/// the server-side FleetResult fields — a client comparing against a local
/// run of the same job compares bitwise.
///   off 0   u32      job_index        0-based position in this request
///   off 4   u32      job_count        total jobs this request expands to
///   off 8   char[32] scenario
///   off 40  u8       processor        kProcessorNative or kProcessorSabre
///   off 41  u8       within_envelope  (0/1, seed-0 verdict)
///   off 42  u16      seeds            realizations run for this job
///   off 44  u32      seeds_within_envelope
///   off 48  f64[3]   estimate_rad     converged boresight (roll,pitch,yaw)
///   off 72  f64[3]   sigma3_rad       converged 3-sigma per axis
///   off 96  f64      residual_rms
///   off 104 f64      meas_noise       final measurement noise (post-tuner)
///   off 112 f64      duration_s
///   off 120 f64[3]   worst_err_deg    worst excursions (roll,pitch,yaw)
///   off 144 u64      tuner_adjustments
struct JobResultMessage {
    std::uint32_t job_index = 0;
    std::uint32_t job_count = 0;
    std::string scenario;
    std::uint8_t processor = kProcessorNative;
    bool within_envelope = false;
    std::uint16_t seeds = 0;
    std::uint32_t seeds_within_envelope = 0;
    double estimate_rad[3] = {0.0, 0.0, 0.0};
    double sigma3_rad[3] = {0.0, 0.0, 0.0};
    double residual_rms = 0.0;
    double meas_noise = 0.0;
    double duration_s = 0.0;
    double worst_err_deg[3] = {0.0, 0.0, 0.0};
    std::uint64_t tuner_adjustments = 0;
};
inline constexpr std::size_t kJobResultSize = 152;

/// kDone payload (24 bytes): request summary after the last kJobResult.
///   off 0  u32 jobs
///   off 4  u32 within_envelope
///   off 8  f64 wall_s          server-side wall time (informational)
///   off 16 u64 reserved (0)
struct DoneMessage {
    std::uint32_t jobs = 0;
    std::uint32_t within_envelope = 0;
    double wall_s = 0.0;
};
inline constexpr std::size_t kDoneSize = 24;

/// kError payload (96 bytes): code plus a short NUL-padded explanation.
///   off 0 u16      code      ErrorCode
///   off 2 u16      reserved (0)
///   off 4 u32      reserved (0)
///   off 8 char[88] message   NUL-padded, truncated to fit
struct ErrorMessage {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
};
inline constexpr std::size_t kErrorSize = 96;
inline constexpr std::size_t kErrorMessageWidth = 88;

// kGoodbye, kShutdown and kShutdownAck carry no payload.

/// Encode/decode one payload struct. decode_* validates ranges (processor
/// byte, error code, payload consumed exactly) and throws util::WireError.
[[nodiscard]] std::vector<std::uint8_t> encode_hello(const HelloRequest& m);
[[nodiscard]] HelloRequest decode_hello(util::ByteReader& r);
[[nodiscard]] std::vector<std::uint8_t> encode_hello_ok(const HelloOk& m);
[[nodiscard]] HelloOk decode_hello_ok(util::ByteReader& r);
[[nodiscard]] std::vector<std::uint8_t> encode_ping(const PingMessage& m);
[[nodiscard]] PingMessage decode_ping(util::ByteReader& r);
[[nodiscard]] std::vector<std::uint8_t> encode_fleet_request(
    const FleetRequest& m);
[[nodiscard]] FleetRequest decode_fleet_request(util::ByteReader& r);
[[nodiscard]] std::vector<std::uint8_t> encode_study_request(
    const StudyRequest& m);
[[nodiscard]] StudyRequest decode_study_request(util::ByteReader& r);
[[nodiscard]] std::vector<std::uint8_t> encode_job_result(
    const JobResultMessage& m);
[[nodiscard]] JobResultMessage decode_job_result(util::ByteReader& r);
[[nodiscard]] std::vector<std::uint8_t> encode_done(const DoneMessage& m);
[[nodiscard]] DoneMessage decode_done(util::ByteReader& r);
[[nodiscard]] std::vector<std::uint8_t> encode_error(const ErrorMessage& m);
[[nodiscard]] ErrorMessage decode_error(util::ByteReader& r);

/// One frame as read off the wire: validated header + raw payload.
struct Frame {
    FrameHeader header;
    std::vector<std::uint8_t> payload;

    [[nodiscard]] MessageType type() const {
        return static_cast<MessageType>(header.type);
    }
    [[nodiscard]] util::ByteReader reader() const {
        return util::ByteReader(payload.data(), payload.size());
    }
};

/// Write one frame (header + payload) to the socket.
void write_frame(util::UnixSocket& sock, MessageType type,
                 std::uint32_t session,
                 const std::vector<std::uint8_t>& payload = {});

/// Read one frame. Returns false on clean EOF between frames. Throws
/// util::WireError on a bad magic, an unsupported version, or a payload
/// length beyond kMaxPayloadSize; util::SocketError on transport failure.
[[nodiscard]] bool read_frame(util::UnixSocket& sock, Frame& out);

}  // namespace ob::system
