#include "system/ensemble_runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/slip.hpp"

namespace ob::system {

using math::Vec2;
using math::Vec3;

namespace {

/// On-wire byte count of one bridged CAN frame's SLIP stream: END +
/// escaped [id_hi, id_lo, dlc, data..., crc_hi, crc_lo] + END. Payload
/// bytes equal to the SLIP END/ESC codes expand to two bytes on the line.
[[nodiscard]] std::size_t slip_stream_bytes(const comm::CanFrame& f,
                                            std::uint16_t crc) {
    const auto escaped = [](std::uint8_t b) {
        return b == comm::slip::kEnd || b == comm::slip::kEsc;
    };
    std::size_t n = 2u + 5u + f.dlc;
    n += escaped(static_cast<std::uint8_t>(f.id >> 8));
    n += escaped(static_cast<std::uint8_t>(f.id & 0xFF));
    n += escaped(f.dlc);
    for (std::uint8_t i = 0; i < f.dlc; ++i) n += escaped(f.data[i]);
    n += escaped(static_cast<std::uint8_t>(crc >> 8));
    n += escaped(static_cast<std::uint8_t>(crc & 0xFF));
    return n;
}

/// Serialize `n` bytes requested at `t_request` onto a line whose previous
/// transmission ends at `busy`; returns the new line-busy time (= arrival
/// of the last byte). The per-byte loop is deliberate: it performs exactly
/// UartLink::send's FP operations, so the chained times are bitwise the
/// event-driven link's.
[[nodiscard]] double chain_bytes(double busy, double t_request, std::size_t n,
                                 double byte_time) {
    for (std::size_t i = 0; i < n; ++i) {
        busy = std::max(t_request, busy) + byte_time;
    }
    return busy;
}

}  // namespace

EnsembleNominalSystem::EnsembleNominalSystem(const BoresightSystem::Config& cfg,
                                             std::size_t lanes)
    : cfg_((cfg.validate(), cfg)),
      byte_time_(10.0 / cfg.uart_baud),
      ekf_(cfg.filter, lanes) {
    if (cfg.processor != BoresightSystem::Processor::kNative) {
        throw std::invalid_argument(
            "EnsembleNominalSystem: native processor only");
    }
    if (cfg.dmu_link_faults.any() || cfg.acc_link_faults.any() ||
        cfg.can_faults.any()) {
        throw std::invalid_argument(
            "EnsembleNominalSystem: fault-free transport only");
    }
    lanes_.resize(lanes);
    for (auto& lane : lanes_) lane.calibrated_bias = cfg.calibrated_bias;
    monitors_.reserve(lanes);
    supervisors_.reserve(lanes);
    tuners_.reserve(lanes);
    stats_.resize(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
        monitors_.emplace_back(cfg.monitor_window, cfg.monitor_alarm_rate,
                               cfg.monitor_min_samples);
        supervisors_.emplace_back(cfg.supervisor);
        tuners_.emplace_back(cfg.tuner);
    }
}

void EnsembleNominalSystem::set_calibrated_bias(std::size_t lane,
                                                const Vec2& bias) {
    lanes_[lane].calibrated_bias = bias;
}

bool EnsembleNominalSystem::all_ok() const {
    for (const auto& lane : lanes_) {
        if (!lane.ok) return false;
    }
    return true;
}

void EnsembleNominalSystem::feed(const sim::ScenarioTrace& trace,
                                 const double t, const comm::DmuSample* dmu,
                                 const comm::AdxlTiming* adxl) {
    const comm::AdxlConfig adxl_cfg = trace.adxl();
    const double horizon = t + 0.5 / trace.sample_rate_hz();
    const double dt_s = 1.0 / trace.sample_rate_hz();
    comm::CanFrame gyro;
    comm::CanFrame accel;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
        Lane& lane = lanes_[l];
        if (!lane.ok) continue;

        // CAN bus: both frames requested at t; the gyro frame's lower id
        // wins the first arbitration. Deliveries must land inside the
        // half-epoch horizon (`tdg` strictly: CanBus::advance_to returns
        // before the second arbitration once t_start reaches the horizon).
        comm::DmuCodec::encode_into(dmu[l], gyro, accel);
        const auto gi = comm::can_wire_info(gyro);
        const auto ai = comm::can_wire_info(accel);
        const double tsg = std::max(lane.can_busy, t);
        const double tdg =
            tsg + static_cast<double>(gi.wire_bits) / cfg_.can_bitrate;
        const double tsa = std::max(tdg, t);
        const double tda =
            tsa + static_cast<double>(ai.wire_bits) / cfg_.can_bitrate;
        if (!(tdg < horizon && tda <= horizon)) {
            lane.ok = false;
            continue;
        }
        lane.can_max_latency = std::max(lane.can_max_latency, tdg - t);
        lane.can_max_latency = std::max(lane.can_max_latency, tda - t);
        lane.can_busy = tda;

        // Bridge -> SLIP -> DMU UART: each frame's stream is requested at
        // its CAN delivery time; the decoded sample's timestamp is the
        // arrival of the accel stream's last byte. Every byte must clear
        // the horizon or the drain leaves a partial frame behind.
        lane.dmu_busy = chain_bytes(lane.dmu_busy, tdg,
                                    slip_stream_bytes(gyro, gi.crc15),
                                    byte_time_);
        lane.dmu_busy = chain_bytes(lane.dmu_busy, tda,
                                    slip_stream_bytes(accel, ai.crc15),
                                    byte_time_);
        if (lane.dmu_busy > horizon) {
            lane.ok = false;
            continue;
        }
        const double dmu_t = lane.dmu_busy;

        // ACC -> its own serial line, one fixed-size packet at t.
        lane.acc_busy =
            chain_bytes(lane.acc_busy, t, comm::kAdxlPacketSize, byte_time_);
        if (lane.acc_busy > horizon) {
            lane.ok = false;
            continue;
        }
        if (!comm::adxl_plausible(adxl[l], adxl_cfg)) {
            // The plausibility gate would hold the pair back; pairing
            // state beyond nominal belongs to the scalar path.
            lane.ok = false;
            continue;
        }

        // Fusion update — BoresightSystem::process_pair, native branch.
        ++lane.updates;
        Vec3 f_body;
        for (std::size_t i = 0; i < 3; ++i) {
            f_body[i] = dmu_scale_.raw_to_accel(dmu[l].accel[i]);
        }
        const auto [ax, ay] = comm::adxl_decode(adxl[l], adxl_cfg);
        const Vec2 z = Vec2{ax, ay} - lane.calibrated_bias;
        const auto up = ekf_.step(l, f_body, z);
        stats_[l].add(up.residual[0]);
        stats_[l].add(up.residual[1]);
        monitors_[l].add(up.residual, up.sigma3);
        if (monitors_[l].flagged() && lane.monitor_flag_t < 0.0) {
            lane.monitor_flag_t = dmu_t;
        }
        if (cfg_.use_adaptive_tuner) {
            const double rec = tuners_[l].observe(up.residual, up.sigma3,
                                                  ekf_.measurement_noise(l));
            if (rec > 0.0) ekf_.set_measurement_noise(l, rec);
        }

        // Supervisor epoch: on the nominal envelope every channel
        // delivered and the pair fused, but the observe call still runs —
        // its windows and streaks are part of the reported status.
        HealthSupervisor::Event ev;
        ev.t = t;
        ev.dt_s = dt_s;
        ev.dmu_delivered = true;
        ev.acc_delivered = true;
        ev.fused = true;
        const auto verdict = supervisors_[l].observe(ev);
        const double rate = cfg_.supervisor.coast_sigma_rate;
        if (verdict.coast_dt_s > 0.0 && rate > 0.0) {
            ekf_.grow_angle_covariance(l, rate * rate * verdict.coast_dt_s);
        }
        if (verdict.recovered) {
            lane.monitor_latched = lane.monitor_latched || monitors_[l].flagged();
            monitors_[l].reset();
        }
    }
}

BoresightSystem::Status EnsembleNominalSystem::status(std::size_t l) const {
    const Lane& lane = lanes_[l];
    BoresightSystem::Status s;
    s.estimate = ekf_.misalignment(l);
    s.sigma3 = ekf_.misalignment_sigma3(l);
    s.measurement_noise = ekf_.measurement_noise(l);
    s.updates = lane.updates;
    s.dmu_frames_lost = 0;
    s.acc_packets_lost = 0;
    s.worst_transport_latency = lane.can_max_latency;
    s.residual_rms = stats_[l].rms();
    s.tuner_adjustments = tuners_[l].adjustments();
    s.residual_flagged = monitors_[l].flagged() || lane.monitor_latched;
    s.residual_flag_s = lane.monitor_flag_t;
    s.residual_windowed_rate = monitors_[l].windowed_rate();
    s.residual_exceedances = monitors_[l].exceedances();
    s.health = supervisors_[l].state();
    s.worst_health = supervisors_[l].worst_state();
    s.supervisor_alarmed = supervisors_[l].alarmed();
    s.supervisor_alarm_s = supervisors_[l].alarm_s();
    s.dmu_delivery_rate = supervisors_[l].dmu_delivery_rate();
    s.acc_delivery_rate = supervisors_[l].acc_delivery_rate();
    s.coast_s = supervisors_[l].coast_s();
    s.recoveries = supervisors_[l].recoveries();
    s.reconvergence_s = supervisors_[l].last_recovery_s();
    s.acc_implausible = 0;
    return s;
}

}  // namespace ob::system
