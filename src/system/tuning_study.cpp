#include "system/tuning_study.hpp"

#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/json.hpp"

namespace ob::system {

using math::rad2deg;

void TuningStudyConfig::validate() const {
    const auto fail = [](const std::string& what) {
        throw std::invalid_argument("TuningStudyConfig: " + what);
    };
    if (label.empty()) fail("label must not be empty");
    if (scenarios.empty()) fail("scenario axis must not be empty");
    for (const auto& name : scenarios) {
        if (!sim::ScenarioLibrary::instance().find(name)) {
            fail("unknown scenario '" + name + "'");
        }
    }
    if (variants.empty()) fail("tuner-variant axis must not be empty");
    std::set<std::string> labels;
    for (const auto& v : variants) {
        if (v.label.empty()) fail("variant labels must not be empty");
        if (!labels.insert(v.label).second) {
            fail("duplicate variant label '" + v.label + "'");
        }
        if (v.meas_noise_mps2 < 0.0) {
            fail("variant '" + v.label +
                 "': measurement noise must be non-negative (0 => spec)");
        }
        if (v.use_adaptive_tuner) v.tuner.validate();
    }
    if (processors.empty()) fail("processor axis must not be empty");
    if (duration_s < 0.0) fail("duration override must be non-negative");
    if (seeds_per_cell == 0) fail("seeds_per_cell must be at least 1");
    if (seeds_per_cell > kFleetMaxSeedsPerJob) {
        fail("seeds_per_cell exceeds the FNV-1a sub-seed limit");
    }
    if (calibration) calibration->validate();
}

TuningStudy::TuningStudy(TuningStudyConfig cfg) : cfg_(std::move(cfg)) {
    cfg_.validate();
    // Scenario-major expansion; the misalignment axis contributes one
    // "spec default" entry when empty. Order is part of the study's
    // contract: report cells, job indices and any sharding all key off it.
    const std::size_t mis_count =
        cfg_.misalignments.empty() ? 1 : cfg_.misalignments.size();
    jobs_.reserve(cfg_.scenarios.size() * mis_count * cfg_.variants.size() *
                  cfg_.processors.size());
    for (std::size_t si = 0; si < cfg_.scenarios.size(); ++si) {
        for (std::size_t mi = 0; mi < mis_count; ++mi) {
            for (std::size_t vi = 0; vi < cfg_.variants.size(); ++vi) {
                for (std::size_t pi = 0; pi < cfg_.processors.size(); ++pi) {
                    const auto& variant = cfg_.variants[vi];
                    FleetJob job;
                    job.scenario = cfg_.scenarios[si];
                    job.processor = cfg_.processors[pi];
                    job.base_seed = cfg_.base_seed;
                    job.duration_s = cfg_.duration_s;
                    if (!cfg_.misalignments.empty()) {
                        job.misalignment = cfg_.misalignments[mi];
                    }
                    job.calibration = cfg_.calibration;
                    job.seeds_per_job = cfg_.seeds_per_cell;
                    job.use_adaptive_tuner = variant.use_adaptive_tuner;
                    if (variant.use_adaptive_tuner) {
                        job.tuner = variant.tuner;
                    }
                    if (variant.meas_noise_mps2 > 0.0) {
                        job.meas_noise_mps2 = variant.meas_noise_mps2;
                    }
                    job.validate();
                    TuningStudyCell cell;
                    cell.scenario_index = si;
                    cell.misalignment_index = mi;
                    cell.variant_index = vi;
                    cell.processor_index = pi;
                    shape_.push_back(cell);
                    jobs_.push_back(std::move(job));
                }
            }
        }
    }
}

TuningStudyReport TuningStudy::run(const FleetRunner& runner) const {
    TuningStudyReport report;
    report.config = cfg_;
    auto results = runner.run(jobs_);
    report.cells = shape_;
    for (std::size_t i = 0; i < results.size(); ++i) {
        report.cells[i].result = std::move(results[i]);
        if (report.cells[i].result.within_envelope) ++report.within_envelope;
    }
    return report;
}

namespace {

void write_angles_deg(util::JsonWriter& w, const math::EulerAngles& e) {
    w.begin_array();
    w.value(rad2deg(e.roll));
    w.value(rad2deg(e.pitch));
    w.value(rad2deg(e.yaw));
    w.end_array();
}

/// Ensemble reduction of one metric: mean, sample σ and the 95%
/// confidence half-width — the interval the seed axis turns a
/// single-realization verdict into.
void write_metric_stats(util::JsonWriter& w, const char* name,
                        const FleetMetricStats& m, std::size_t n) {
    w.key(name).begin_object();
    w.key("mean").value(m.mean);
    w.key("std").value(m.stddev);
    w.key("ci95").value(m.ci95(n));
    w.end_object();
}

void write_seed_stats(util::JsonWriter& w, const FleetSeedStats& s) {
    w.key("seed_stats").begin_object();
    w.key("seeds").value(s.seeds);
    w.key("within_envelope").value(s.within_envelope);
    w.key("pass_fraction")
        .value(s.seeds > 0 ? static_cast<double>(s.within_envelope) /
                                 static_cast<double>(s.seeds)
                           : 0.0);
    write_metric_stats(w, "worst_roll_err_deg", s.roll_err_deg, s.seeds);
    write_metric_stats(w, "worst_pitch_err_deg", s.pitch_err_deg, s.seeds);
    write_metric_stats(w, "worst_yaw_err_deg", s.yaw_err_deg, s.seeds);
    write_metric_stats(w, "residual_rms_mps2", s.residual_rms, s.seeds);
    w.end_object();
}

void write_variant(util::JsonWriter& w, const TunerVariant& v) {
    w.begin_object();
    w.key("label").value(v.label);
    w.key("use_adaptive_tuner").value(v.use_adaptive_tuner);
    w.key("meas_noise_mps2").value(v.meas_noise_mps2);
    if (v.use_adaptive_tuner) {
        w.key("tuner").begin_object();
        w.key("floor_mps2").value(v.tuner.floor_mps2);
        w.key("ceiling_mps2").value(v.tuner.ceiling_mps2);
        w.key("raise_threshold").value(v.tuner.raise_threshold);
        w.key("lower_threshold").value(v.tuner.lower_threshold);
        w.key("raise_factor").value(v.tuner.raise_factor);
        w.key("lower_factor").value(v.tuner.lower_factor);
        w.key("window").value(v.tuner.window);
        w.key("min_samples").value(v.tuner.min_samples);
        w.end_object();
    }
    w.end_object();
}

}  // namespace

std::string TuningStudyReport::to_json() const {
    util::JsonWriter w;
    w.begin_object();
    w.key("study").value(config.label);
    w.key("base_seed").value(config.base_seed);
    w.key("duration_s").value(config.duration_s);
    w.key("seeds_per_cell").value(config.seeds_per_cell);
    w.key("calibration").begin_object();
    w.key("enabled").value(config.calibration.has_value());
    if (config.calibration) {
        w.key("duration_s").value(config.calibration->duration_s);
    }
    w.end_object();

    w.key("axes").begin_object();
    w.key("scenarios").begin_array();
    for (const auto& s : config.scenarios) w.value(s);
    w.end_array();
    w.key("misalignments_deg").begin_array();
    for (const auto& m : config.misalignments) write_angles_deg(w, m);
    w.end_array();
    w.key("variants").begin_array();
    for (const auto& v : config.variants) write_variant(w, v);
    w.end_array();
    w.key("processors").begin_array();
    for (const auto p : config.processors) w.value(processor_name(p));
    w.end_array();
    w.end_object();

    w.key("cells").begin_array();
    for (const auto& c : cells) {
        const auto& r = c.result;
        w.begin_object();
        w.key("scenario").value(r.scenario);
        w.key("variant").value(config.variants[c.variant_index].label);
        w.key("processor").value(processor_name(r.processor));
        w.key("indices").begin_array();
        w.value(c.scenario_index);
        w.value(c.misalignment_index);
        w.value(c.variant_index);
        w.value(c.processor_index);
        w.end_array();
        w.key("truth_deg");
        write_angles_deg(w, r.result.truth);
        w.key("estimate_deg");
        write_angles_deg(w, r.result.estimate);
        w.key("sigma3_deg").begin_array();
        for (std::size_t i = 0; i < 3; ++i) w.value(rad2deg(r.result.sigma3_rad[i]));
        w.end_array();
        w.key("residual_rms_mps2").value(r.result.residual_rms);
        w.key("final_meas_noise_mps2").value(r.result.meas_noise);
        w.key("tuner_adjustments").value(r.final_status.tuner_adjustments);
        w.key("within_envelope").value(r.within_envelope);
        w.key("epochs").value(r.trace.epochs);
        w.key("updates").value(r.final_status.updates);
        w.key("worst_err_deg").begin_array();
        w.value(r.trace.worst_roll_err_deg);
        w.value(r.trace.worst_pitch_err_deg);
        w.value(r.trace.worst_yaw_err_deg);
        w.end_array();
        w.key("calibrated_bias_mps2").begin_array();
        w.value(r.calibrated_bias[0]);
        w.value(r.calibrated_bias[1]);
        w.end_array();
        w.key("calibration_samples").value(r.calibration_samples);
        write_seed_stats(w, r.seed_stats);
        w.end_object();
    }
    w.end_array();

    std::size_t all_seeds_ok = 0;
    for (const auto& c : cells) {
        if (c.result.seed_stats.within_envelope == c.result.seed_stats.seeds) {
            ++all_seeds_ok;
        }
    }
    w.key("summary").begin_object();
    w.key("cells").value(cells.size());
    w.key("within_envelope").value(within_envelope);
    w.key("outside_envelope").value(cells.size() - within_envelope);
    w.key("seeds_per_cell").value(config.seeds_per_cell);
    w.key("all_seeds_within_envelope").value(all_seeds_ok);
    w.end_object();
    w.end_object();
    return w.str();
}

}  // namespace ob::system
