#pragma once

#include <cstddef>
#include <vector>

#include "comm/codec.hpp"
#include "core/adaptive_tuner.hpp"
#include "core/ensemble_ekf.hpp"
#include "core/residual_monitor.hpp"
#include "math/matrix.hpp"
#include "math/rotation.hpp"
#include "sim/scenario_trace.hpp"
#include "system/boresight_system.hpp"
#include "system/health_supervisor.hpp"
#include "util/stats.hpp"

namespace ob::system {

/// Batched nominal-transport counterpart of `BoresightSystem` for the
/// native EKF: N lanes of one shared trace step through the Figure 2
/// pipeline together, one epoch at a time. Per-lane detector state
/// (residual monitor, health supervisor, adaptive tuner, running stats)
/// lives in lane-indexed arrays; the filters are an `core::EnsembleEkf`.
///
/// Instead of instantiating N CAN bus / UART / SLIP object stacks, the
/// nominal transport is advanced analytically with bitwise the FP
/// operations the event-driven models perform on a fault-free run:
///
///   - CAN: both frames are requested at the epoch time, the gyro frame
///     (id 0x100) wins arbitration, so `t_start = max(busy, t)` and each
///     delivery adds `wire_bits / bitrate`; max-latency updates happen in
///     delivery order, exactly as `CanBus::advance_to`.
///   - Bridge/SLIP/UART: each frame becomes a 2+5+dlc+escapes byte SLIP
///     stream requested at its CAN delivery time; the line chains
///     `busy = max(t_request, busy) + 10/baud` PER BYTE (the per-byte loop
///     is kept — folding it into one multiply would change FP results).
///   - The decoded DMU sample equals the sent one with `.t` = arrival time
///     of the accel stream's trailing END byte; the decoded ACC timing
///     equals the sent one. Both identities hold on the fault-free wire
///     and are pinned by the ensemble differential test.
///
/// Any epoch that violates the nominal-delivery envelope (a frame or byte
/// chain running past the half-epoch horizon, an implausible ACC timing)
/// marks the lane failed (`lane_ok`); the caller reruns such lanes through
/// the scalar `BoresightSystem`, which remains the reference semantics.
/// Invariant: for every lane that stays ok, status(lane) is bit-identical
/// to the scalar system fed the same per-lane samples.
class EnsembleNominalSystem {
public:
    /// `cfg` must select the native processor and a fault-free transport
    /// (throws std::invalid_argument otherwise); all lanes share it.
    EnsembleNominalSystem(const BoresightSystem::Config& cfg,
                          std::size_t lanes);

    [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }

    /// Per-lane §11.1 calibration result (run_fleet_seed calibrates each
    /// seed independently; the config's bias is only the shared default).
    void set_calibrated_bias(std::size_t lane, const math::Vec2& bias);
    [[nodiscard]] math::Vec2 calibrated_bias(std::size_t lane) const {
        return lanes_[lane].calibrated_bias;
    }

    /// Feed one epoch for every lane: `dmu`/`adxl` are lane-indexed arrays
    /// (the EnsembleRealizer's SoA outputs). Lanes already failed are
    /// skipped entirely.
    void feed(const sim::ScenarioTrace& trace, double t,
              const comm::DmuSample* dmu, const comm::AdxlTiming* adxl);

    /// False once the lane left the nominal-delivery envelope; its state
    /// is then stale and the caller must fall back to the scalar path.
    [[nodiscard]] bool lane_ok(std::size_t lane) const {
        return lanes_[lane].ok;
    }
    [[nodiscard]] bool all_ok() const;

    /// Scoring accessors (cheaper than a full status() per check epoch).
    [[nodiscard]] math::EulerAngles estimate(std::size_t lane) const {
        return ekf_.misalignment(lane);
    }

    /// Bit-identical to BoresightSystem::status() of a scalar system fed
    /// this lane's samples (nominal run: all loss counters zero).
    [[nodiscard]] BoresightSystem::Status status(std::size_t lane) const;

private:
    struct Lane {
        double can_busy = 0.0;         ///< CanBus::busy_until_
        double can_max_latency = 0.0;  ///< CanBus::max_latency_
        double dmu_busy = 0.0;         ///< DMU UART line_busy_until_
        double acc_busy = 0.0;         ///< ACC UART line_busy_until_
        math::Vec2 calibrated_bias{};
        double monitor_flag_t = -1.0;
        bool monitor_latched = false;
        std::size_t updates = 0;
        bool ok = true;
    };

    BoresightSystem::Config cfg_;
    const comm::DmuScale dmu_scale_{};
    double byte_time_;  ///< UartLink::byte_time() = 10 / baud
    core::EnsembleEkf ekf_;
    std::vector<Lane> lanes_;
    std::vector<core::ResidualMonitor> monitors_;
    std::vector<HealthSupervisor> supervisors_;
    std::vector<core::AdaptiveNoiseTuner> tuners_;
    std::vector<util::RunningStats> stats_;
};

}  // namespace ob::system
