#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "system/fleet.hpp"

namespace ob::system {

/// Declarative fault-injection sweep: the campaign expands
/// {scenario × fault type × intensity × processor} into one FleetJob per
/// cell (each carrying `seeds_per_cell` Monte Carlo realizations) and
/// scores, per realization, whether the estimate diverged from the trace
/// truth and whether the always-on ResidualMonitor flagged it. Include
/// intensity 0.0 to get control cells that are bitwise the un-faulted
/// fleet runs.
struct FaultCampaignConfig {
    std::string label = "fault-campaign";
    std::vector<std::string> scenarios;  ///< ScenarioLibrary names
    std::vector<FaultType> faults;
    /// Severity axis, strictly increasing, each in [0, 1] (the strict
    /// order keeps detection-boundary scans over the axis meaningful).
    std::vector<double> intensities;
    std::vector<BoresightSystem::Processor> processors = {
        BoresightSystem::Processor::kNative,
        BoresightSystem::Processor::kSabre};
    /// Monte Carlo realizations per cell; fault draws differ per
    /// realization (fleet_sub_seed over the fault stream).
    std::uint64_t seeds_per_cell = 1;
    std::uint64_t base_seed = 2026;
    double duration_s = 0.0;       ///< per-job duration override; 0 => spec
    std::size_t burst_frames = 8;  ///< burst length for kCanBurstLoss cells
    /// Adaptive boundary search: when positive, every {scenario × fault ×
    /// processor} group whose rung grid demonstrated a boundary is bisected
    /// down to this intensity tolerance — extra probe cells run between the
    /// bracketing rungs until the clean-detection edge and the miss edge
    /// are within the tolerance. 0 keeps the fixed-rung grid only. The
    /// search is a pure function of the (deterministic) probe outcomes, so
    /// the refined edges are as thread-count-independent as the grid.
    double boundary_tolerance = 0.0;
    /// Probe budget per refined group (bisection halves the bracket per
    /// probe, so 16 resolves any [0,1] bracket below 2e-5).
    std::size_t boundary_max_probes = 16;

    /// Throws std::invalid_argument naming the first bad axis: empty
    /// label/scenario/fault/intensity/processor axis, unknown scenario,
    /// duplicate fault type, an intensity outside [0, 1] or not strictly
    /// increasing, a zero/overflowing seed count, a negative duration, a
    /// zero burst length, a negative boundary tolerance or a zero probe
    /// budget — plus everything FleetJob::validate rejects.
    void validate() const;
};

/// How one realization ended, crossing ground truth (did the estimate
/// leave the envelope?) with the combined detector: the ResidualMonitor's
/// latched 3σ-rate alarm OR the HealthSupervisor's latched liveness alarm.
/// The two detectors cover complementary regimes — residuals catch a
/// plausibly-delivered-but-wrong feed, the liveness watchdogs catch the
/// starved feed that delivers no residuals at all.
enum class FaultOutcome {
    kDetection,     ///< diverged and alarmed (either detector)
    kMiss,          ///< diverged, neither alarmed — the dangerous quadrant
    kFalseAlarm,    ///< alarmed without divergence
    kTrueNegative,  ///< neither
};

[[nodiscard]] FaultOutcome classify_fault_outcome(const FleetSeedResult& s);
[[nodiscard]] const char* fault_outcome_name(FaultOutcome o);

/// Earliest fired alarm time of a realization across both detectors;
/// -1 when neither alarmed.
[[nodiscard]] double fault_detection_time_s(const FleetSeedResult& s);

/// Outcome tally of one cell's seed ensemble, accumulated in seed-index
/// order so every number is scheduling-independent.
struct FaultCellOutcomes {
    std::size_t seeds = 0;
    std::size_t detections = 0;
    std::size_t misses = 0;
    std::size_t false_alarms = 0;
    std::size_t true_negatives = 0;
    /// Per-detector columns of the detections row: which detector caught
    /// each diverged realization (they overlap when both fired).
    std::size_t residual_detections = 0;
    std::size_t supervisor_detections = 0;
    /// Mean (earliest alarm time - divergence time) over the detections,
    /// seconds; 0 when the cell has no detection. Negative means the
    /// detector alarmed before the estimate left the envelope — the
    /// liveness watchdogs routinely do on a starved link.
    double mean_detection_latency_s = 0.0;
};

/// One completed grid cell: its axis indices, the full fleet result and
/// the outcome tally.
struct FaultCampaignCell {
    std::size_t scenario_index = 0;
    std::size_t fault_index = 0;
    std::size_t intensity_index = 0;
    std::size_t processor_index = 0;
    FleetResult result;
    FaultCellOutcomes outcomes;
};

/// Detection boundary of one {scenario × fault × processor} group, scanned
/// over the (strictly increasing) intensity axis. The scan is
/// orientation-agnostic: residual-exciting faults (stuck sensors) miss at
/// LOW intensity when anything misses at all, while starvation faults
/// (heavy corruption) invert — moderate intensity excites residuals and
/// is detected, but past a point the link starves, the monitor loses its
/// sample feed and the divergence goes silent. Both edges are real
/// boundaries of the monitor's coverage.
struct FaultBoundary {
    std::size_t scenario_index = 0;
    std::size_t fault_index = 0;
    std::size_t processor_index = 0;
    /// Lowest positive intensity with at least one detection; -1 if none.
    double lowest_detected_intensity = -1.0;
    /// Highest positive intensity with at least one missed divergence;
    /// -1 if none.
    double highest_missed_intensity = -1.0;
    /// A measured boundary: the group holds both a missed divergence at
    /// one intensity and a clean detection (no misses) at another — the
    /// monitor's blind region has a mapped edge on this axis.
    bool boundary_demonstrated = false;
    /// True when the miss region sits above the detected region (the
    /// starvation inversion); meaningful only when demonstrated.
    bool miss_region_above = false;
};

/// One probe of the adaptive boundary search: a bisected intensity with
/// the outcome tally of its seed ensemble.
struct FaultBoundaryProbe {
    double intensity = 0.0;
    std::size_t epochs = 0;  ///< scenario epochs run for this probe
    FaultCellOutcomes outcomes;
};

/// Bisection refinement of one demonstrated boundary. The search narrows
/// the FIRST classification flip along the intensity axis: `detect_edge`
/// is the refined clean-detection side, `miss_edge` the miss side (a probe
/// without misses — clean detection or no divergence at all — moves the
/// detect edge, a probe with misses moves the miss edge). The two straddle
/// the rung grid's bracket in whichever orientation the group showed.
struct FaultBoundaryRefinement {
    std::size_t scenario_index = 0;
    std::size_t fault_index = 0;
    std::size_t processor_index = 0;
    bool miss_region_above = false;  ///< orientation, from the rung grid
    double detect_edge = 0.0;
    double miss_edge = 0.0;
    bool converged = false;  ///< bracket reached the tolerance in budget
    std::vector<FaultBoundaryProbe> probes;  ///< in bisection order
};

/// Machine-readable campaign outcome. Every field is a deterministic
/// function of the config — no wall-clock, no thread count — so
/// `to_json()` is byte-identical however the batch was scheduled.
struct FaultCampaignReport {
    FaultCampaignConfig config;
    std::vector<FaultCampaignCell> cells;
    std::vector<FaultBoundary> boundaries;
    std::vector<FaultBoundaryRefinement> refinements;
    std::size_t detections = 0;
    std::size_t misses = 0;
    std::size_t false_alarms = 0;
    std::size_t true_negatives = 0;
    std::size_t residual_detections = 0;
    std::size_t supervisor_detections = 0;

    /// Render the full report (axes, per-cell outcomes and per-seed
    /// verdicts, boundaries, summary) via util::JsonWriter.
    [[nodiscard]] std::string to_json() const;
};

/// Campaign generator and reducer: expands the config into FleetJob
/// batches (reusing the Plan/Trace/Realize stack — all cells of a scenario
/// share one trace), runs them through a FleetRunner and reduces every
/// realization to a detection/miss/false-alarm verdict.
class FaultCampaign {
public:
    /// Validates the config (and every expanded job) up front.
    explicit FaultCampaign(FaultCampaignConfig cfg);

    /// The expanded batch, in deterministic grid order: scenario-major,
    /// then fault, intensity, processor.
    [[nodiscard]] const std::vector<FleetJob>& jobs() const { return jobs_; }
    [[nodiscard]] std::size_t cell_count() const { return jobs_.size(); }

    /// Execute the batch on the given runner and reduce the results. With
    /// a positive boundary_tolerance, follow-up probe batches refine every
    /// demonstrated boundary by bisection (one batch per round — all
    /// active groups probe concurrently, results consumed in group order).
    [[nodiscard]] FaultCampaignReport run(const FleetRunner& runner) const;

private:
    void refine_boundaries(FaultCampaignReport& report,
                           const FleetRunner& runner) const;
    [[nodiscard]] FleetJob probe_job(std::size_t scenario_index,
                                     std::size_t fault_index,
                                     std::size_t processor_index,
                                     double intensity) const;

    FaultCampaignConfig cfg_;
    std::vector<FleetJob> jobs_;
    std::vector<FaultCampaignCell> shape_;  ///< axis indices per job
};

}  // namespace ob::system
