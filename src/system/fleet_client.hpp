#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "system/fleet_protocol.hpp"
#include "util/socket.hpp"

namespace ob::system {

/// A kError frame surfaced client-side: the server rejected or failed the
/// request. The session (and connection) remain usable afterwards unless
/// the error was a framing/handshake fault.
class FleetServeError : public std::runtime_error {
public:
    FleetServeError(ErrorCode code, const std::string& message)
        : std::runtime_error(std::string(error_code_name(code)) + ": " +
                             message),
          code_(code) {}

    [[nodiscard]] ErrorCode code() const { return code_; }

private:
    ErrorCode code_;
};

/// Everything a streaming request produced, collected.
struct FleetRunOutcome {
    std::vector<JobResultMessage> results;  ///< stream order
    DoneMessage done;
};

/// Client side of the fleet_serve protocol (docs/PROTOCOL.md): connects,
/// performs the Hello handshake, then issues requests over the session.
/// Not thread-safe — one client per thread; open several clients for
/// concurrent load (that is what bench/fleet_serve.cpp does).
class FleetServeClient {
public:
    /// Connect to the daemon's socket and complete the version handshake.
    /// Throws util::SocketError (no daemon), util::WireError (framing),
    /// or FleetServeError (version refused).
    [[nodiscard]] static FleetServeClient connect(
        const std::string& socket_path);

    /// Server-assigned session id (nonzero after connect).
    [[nodiscard]] std::uint32_t session() const { return session_; }
    /// Negotiated protocol version.
    [[nodiscard]] std::uint16_t version() const { return version_; }

    /// Round-trip a ping; returns the echoed token (== `token`).
    [[nodiscard]] std::uint64_t ping(std::uint64_t token);

    /// Run a fleet request, invoking `on_result` (when set) for each
    /// streamed job frame as it arrives, and returning everything
    /// collected. Throws FleetServeError when the server answers kError.
    [[nodiscard]] FleetRunOutcome run_fleet(
        const FleetRequest& req,
        const std::function<void(const JobResultMessage&)>& on_result = {});

    /// Run the built-in tuning-study panel; same streaming contract.
    [[nodiscard]] FleetRunOutcome run_study(
        const StudyRequest& req,
        const std::function<void(const JobResultMessage&)>& on_result = {});

    /// End the session politely and close the connection.
    void goodbye();

    /// Ask the daemon to stop; returns once the kShutdownAck arrives.
    void shutdown_server();

private:
    explicit FleetServeClient(util::UnixSocket sock)
        : sock_(std::move(sock)) {}

    [[nodiscard]] FleetRunOutcome run_streaming(
        MessageType type, const std::vector<std::uint8_t>& payload,
        const std::function<void(const JobResultMessage&)>& on_result);
    /// Read the next frame; throws on EOF (the caller expected an answer).
    [[nodiscard]] Frame expect_frame();

    util::UnixSocket sock_;
    std::uint32_t session_ = 0;
    std::uint16_t version_ = 0;
};

}  // namespace ob::system
