#include "system/experiment.hpp"

#include <stdexcept>
#include <string>

#include "core/calibration.hpp"
#include "core/residual_monitor.hpp"

namespace ob::system {

using math::Vec2;
using math::Vec3;

void ExperimentConfig::validate() const {
    const auto fail = [](const char* what) {
        throw std::invalid_argument(std::string("ExperimentConfig: ") + what);
    };
    if (label.empty()) fail("label must not be empty");
    if (!scenario.profile) fail("scenario has no trajectory profile");
    if (!(scenario.profile->duration() > 0.0))
        fail("scenario duration must be positive");
    if (!(scenario.sample_rate_hz > 0.0))
        fail("scenario sample rate must be positive");
    if (calibrate && !(calibration_duration_s > 0.0))
        fail("calibration duration must be positive");
    if (!(filter.meas_noise_mps2 > 0.0))
        fail("filter measurement noise must be positive");
    if (filter.angle_process_noise < 0.0)
        fail("filter angle process noise must be non-negative");
    if (!(filter.init_angle_sigma > 0.0))
        fail("filter initial angle sigma must be positive");
    if (use_adaptive_tuner && !(tuner.floor_mps2 > 0.0))
        fail("tuner noise floor must be positive");
}

DecodedMeasurement decode_step(const sim::Scenario& sc,
                               const sim::Scenario::Step& step) {
    DecodedMeasurement out;
    for (std::size_t i = 0; i < 3; ++i) {
        out.f_body[i] = sc.dmu_scale().raw_to_accel(step.dmu.accel[i]);
        out.omega[i] = sc.dmu_scale().raw_to_rate(step.dmu.gyro[i]);
    }
    const auto [ax, ay] = comm::adxl_decode(step.adxl, sc.adxl_config());
    out.acc_xy = Vec2{ax, ay};
    return out;
}

ExperimentOutcome run_experiment(const ExperimentConfig& cfg) {
    cfg.validate();
    ExperimentOutcome out;

    // --- Calibration pass (paper §11.1: level platform, known alignment).
    if (cfg.calibrate) {
        auto cal_cfg = sim::ScenarioConfig::static_level(
            cfg.calibration_duration_s, math::EulerAngles{});
        // Same error magnitudes and the same instruments (sensor seed).
        cal_cfg.imu_errors = cfg.scenario.imu_errors;
        cal_cfg.acc_errors = cfg.scenario.acc_errors;
        cal_cfg.vibration = cfg.scenario.vibration;
        cal_cfg.adxl = cfg.scenario.adxl;
        sim::Scenario cal(cal_cfg, cfg.sensor_seed);
        core::CalibrationAccumulator acc;
        while (auto s = cal.next()) {
            const auto d = decode_step(cal, *s);
            acc.add(d.f_body, d.acc_xy);
        }
        out.calibrated_bias = acc.bias();
        out.calibration_noise = acc.noise_sigma();
    }

    // --- Main run.
    sim::Scenario sc(cfg.scenario, cfg.sensor_seed);
    core::BoresightEkf ekf(cfg.filter);
    core::AdaptiveNoiseTuner tuner(cfg.tuner);
    core::ResidualMonitor monitor;

    // Gyro-difference angular acceleration with a light low-pass, for the
    // lever-arm terms (only consulted when the filter has a lever arm).
    Vec3 prev_omega{};
    Vec3 omega_dot_filt{};
    bool have_prev = false;
    const double dt = 1.0 / cfg.scenario.sample_rate_hz;

    while (auto s = sc.next()) {
        const auto d = decode_step(sc, *s);
        if (have_prev) {
            const Vec3 raw_dot = (d.omega - prev_omega) * (1.0 / dt);
            omega_dot_filt += (raw_dot - omega_dot_filt) * 0.2;
        }
        prev_omega = d.omega;
        have_prev = true;
        const auto up = ekf.step_with_rates(d.f_body, d.omega, omega_dot_filt,
                                            d.acc_xy - out.calibrated_bias);
        monitor.add(up.residual, up.sigma3);
        ++out.steps;

        if (cfg.use_adaptive_tuner) {
            const double rec =
                tuner.observe(up.residual, up.sigma3, ekf.measurement_noise());
            if (rec > 0.0) ekf.set_measurement_noise(rec);
        }

        if (cfg.record_traces) {
            const double t = s->t;
            out.trace.residual_x.push(t, up.residual[0]);
            out.trace.residual_y.push(t, up.residual[1]);
            out.trace.sigma3_x.push(t, up.sigma3[0]);
            out.trace.sigma3_y.push(t, up.sigma3[1]);
            const auto est = ekf.misalignment();
            const auto s3 = ekf.misalignment_sigma3();
            out.trace.roll_deg.push(t, math::rad2deg(est.roll));
            out.trace.pitch_deg.push(t, math::rad2deg(est.pitch));
            out.trace.yaw_deg.push(t, math::rad2deg(est.yaw));
            out.trace.roll_s3_deg.push(t, math::rad2deg(s3[0]));
            out.trace.pitch_s3_deg.push(t, math::rad2deg(s3[1]));
            out.trace.yaw_s3_deg.push(t, math::rad2deg(s3[2]));
            out.trace.noise_sigma.push(t, ekf.measurement_noise());
        }
    }

    out.result.label = cfg.label;
    out.result.truth = sc.true_misalignment();
    out.result.estimate = ekf.misalignment();
    out.result.sigma3_rad = ekf.misalignment_sigma3();
    out.result.residual_rms = std::sqrt(
        0.5 * (monitor.stats_x().rms() * monitor.stats_x().rms() +
               monitor.stats_y().rms() * monitor.stats_y().rms()));
    out.result.exceedance_rate = monitor.exceedance_rate();
    out.result.meas_noise = ekf.measurement_noise();
    out.result.duration_s = sc.duration();
    return out;
}

}  // namespace ob::system
