#pragma once

#include <cstdint>
#include <memory>

#include "comm/codec.hpp"
#include "math/rotation.hpp"
#include "sabre/cpu.hpp"
#include "sabre/firmware.hpp"
#include "sabre/peripherals.hpp"

namespace ob::system {

/// The embedded half of the paper's architecture: the boresight fusion
/// filter running as Sabre machine code on the instruction-set simulator,
/// with all floating point through the softfloat FPU peripheral and the
/// results published to the memory-mapped control registers (exactly the
/// §10 arrangement).
///
/// The host pushes raw wire-format sensor samples into the smart ports and
/// pumps the CPU until the firmware has folded them into its estimate.
class SabreFusionSystem {
public:
    struct Config {
        comm::DmuScale dmu_scale{};
        comm::AdxlConfig adxl{};
        double q_variance = 4e-14;      ///< per-step angle process noise
        double r_sigma = 0.0075;        ///< measurement noise (m/s²)
        double p0_sigma = math::deg2rad(5.0);
        /// How the ISS executes firmware: cached predecoded dispatch
        /// (production) or the reference per-step interpreter (kept for
        /// differential testing of the two paths).
        sabre::DispatchMode dispatch = sabre::DispatchMode::kCached;
    };

    explicit SabreFusionSystem(const Config& cfg);
    SabreFusionSystem();  ///< default configuration

    /// Queue one synchronized sensor epoch for the firmware.
    void push(const comm::DmuSample& dmu, const comm::AdxlTiming& adxl);

    struct Estimate {
        math::EulerAngles angles{};
        math::Vec3 sigma3{};
        std::uint32_t updates = 0;
        math::Vec2 residual{};
        /// Innovation 3-sigma envelope per axis (m/s²) — the exceedance
        /// statistic the adaptive retune loop consumes.
        math::Vec2 innov_sigma3{};
    };

    /// Run the CPU until every queued sample has been consumed; throws
    /// SabreTrap-derived errors on firmware faults and std::runtime_error
    /// if the cycle budget expires first. Stop-at-or-before semantics: an
    /// instruction only issues when its worst-case cost fits the budget,
    /// so the CPU never consumes more than `max_cycles` cycles here.
    Estimate run_pending(std::uint64_t max_cycles = 100'000'000);

    /// Current estimate without running (reads the control registers).
    [[nodiscard]] Estimate estimate() const;

    /// Retune the firmware's measurement noise mid-run (1-sigma, m/s²):
    /// writes the variance into the control block's writable R register,
    /// which the firmware latches at the top of its next update — the
    /// runtime knob the §11 manual retune lacked.
    void set_measurement_noise(double sigma_mps2);
    [[nodiscard]] double measurement_noise() const { return r_sigma_; }

    [[nodiscard]] std::uint64_t cycles() const { return cpu_->cycles(); }
    [[nodiscard]] std::uint64_t instructions() const {
        return cpu_->instructions();
    }
    [[nodiscard]] std::uint64_t fpu_operations() const {
        return fpu_->operations();
    }
    /// Cycles consumed per filter update, averaged so far.
    [[nodiscard]] double cycles_per_update() const;

    [[nodiscard]] const sabre::ControlPeripheral& control() const {
        return *control_;
    }
    [[nodiscard]] sabre::SabreCpu& cpu() { return *cpu_; }

private:
    Config cfg_;
    double r_sigma_ = 0.0;  ///< current measurement noise (1-sigma)
    std::unique_ptr<sabre::SabreCpu> cpu_;
    std::shared_ptr<sabre::ControlPeripheral> control_;
    std::shared_ptr<sabre::FpuPeripheral> fpu_;
    std::shared_ptr<sabre::DmuPortPeripheral> dmu_port_;
    std::shared_ptr<sabre::AccPortPeripheral> acc_port_;
    std::uint32_t expected_updates_ = 0;
};

}  // namespace ob::system
