#include "system/fault_campaign.hpp"

#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/json.hpp"

namespace ob::system {

void FaultCampaignConfig::validate() const {
    const auto fail = [](const std::string& what) {
        throw std::invalid_argument("FaultCampaignConfig: " + what);
    };
    if (label.empty()) fail("label must not be empty");
    if (scenarios.empty()) fail("scenario axis must not be empty");
    for (const auto& name : scenarios) {
        if (!sim::ScenarioLibrary::instance().find(name)) {
            fail("unknown scenario '" + name + "'");
        }
    }
    if (faults.empty()) fail("fault axis must not be empty");
    std::set<FaultType> seen;
    for (const auto t : faults) {
        if (!seen.insert(t).second) {
            fail(std::string("duplicate fault type '") + fault_type_name(t) +
                 "'");
        }
    }
    if (intensities.empty()) fail("intensity axis must not be empty");
    for (std::size_t i = 0; i < intensities.size(); ++i) {
        if (intensities[i] < 0.0 || intensities[i] > 1.0) {
            fail("intensities must be in [0, 1]");
        }
        if (i > 0 && intensities[i] <= intensities[i - 1]) {
            fail("intensities must be strictly increasing");
        }
    }
    if (processors.empty()) fail("processor axis must not be empty");
    if (seeds_per_cell == 0) fail("seeds_per_cell must be at least 1");
    if (seeds_per_cell > kFleetMaxSeedsPerJob) {
        fail("seeds_per_cell exceeds the FNV-1a sub-seed limit");
    }
    if (duration_s < 0.0) fail("duration override must be non-negative");
    if (burst_frames == 0) fail("burst length must be at least one frame");
}

FaultOutcome classify_fault_outcome(const FleetSeedResult& s) {
    const bool diverged = s.trace.first_divergence_s >= 0.0;
    const bool flagged = s.final_status.residual_flagged;
    if (diverged) {
        return flagged ? FaultOutcome::kDetection : FaultOutcome::kMiss;
    }
    return flagged ? FaultOutcome::kFalseAlarm : FaultOutcome::kTrueNegative;
}

const char* fault_outcome_name(const FaultOutcome o) {
    switch (o) {
        case FaultOutcome::kDetection: return "detection";
        case FaultOutcome::kMiss: return "miss";
        case FaultOutcome::kFalseAlarm: return "false-alarm";
        case FaultOutcome::kTrueNegative: return "true-negative";
    }
    return "?";
}

FaultCampaign::FaultCampaign(FaultCampaignConfig cfg) : cfg_(std::move(cfg)) {
    cfg_.validate();
    // Scenario-major expansion, fault > intensity > processor innermost.
    // Order is part of the campaign's contract: report cells, job indices
    // and the boundary scan all key off it.
    jobs_.reserve(cfg_.scenarios.size() * cfg_.faults.size() *
                  cfg_.intensities.size() * cfg_.processors.size());
    for (std::size_t si = 0; si < cfg_.scenarios.size(); ++si) {
        for (std::size_t fi = 0; fi < cfg_.faults.size(); ++fi) {
            for (std::size_t ii = 0; ii < cfg_.intensities.size(); ++ii) {
                for (std::size_t pi = 0; pi < cfg_.processors.size(); ++pi) {
                    FleetJob job;
                    job.scenario = cfg_.scenarios[si];
                    job.processor = cfg_.processors[pi];
                    job.base_seed = cfg_.base_seed;
                    job.duration_s = cfg_.duration_s;
                    job.seeds_per_job = cfg_.seeds_per_cell;
                    // The fault axis is always present — a zero-intensity
                    // cell is an exact control (bitwise the un-faulted
                    // run), which is what lets the report separate the
                    // monitor's baseline false-alarm rate from its
                    // fault response.
                    job.fault = FleetFault{cfg_.faults[fi],
                                           cfg_.intensities[ii],
                                           cfg_.burst_frames};
                    job.validate();
                    FaultCampaignCell cell;
                    cell.scenario_index = si;
                    cell.fault_index = fi;
                    cell.intensity_index = ii;
                    cell.processor_index = pi;
                    shape_.push_back(cell);
                    jobs_.push_back(std::move(job));
                }
            }
        }
    }
}

namespace {

/// Reduce one cell's seed ensemble, in seed-index order, to its outcome
/// tally and mean detection latency.
[[nodiscard]] FaultCellOutcomes reduce_cell(const FleetResult& r) {
    FaultCellOutcomes o;
    double latency_sum = 0.0;
    for (const auto& s : r.seeds) {
        ++o.seeds;
        switch (classify_fault_outcome(s)) {
            case FaultOutcome::kDetection:
                ++o.detections;
                latency_sum += s.final_status.residual_flag_s -
                               s.trace.first_divergence_s;
                break;
            case FaultOutcome::kMiss: ++o.misses; break;
            case FaultOutcome::kFalseAlarm: ++o.false_alarms; break;
            case FaultOutcome::kTrueNegative: ++o.true_negatives; break;
        }
    }
    if (o.detections > 0) {
        o.mean_detection_latency_s =
            latency_sum / static_cast<double>(o.detections);
    }
    return o;
}

}  // namespace

FaultCampaignReport FaultCampaign::run(const FleetRunner& runner) const {
    FaultCampaignReport report;
    report.config = cfg_;
    auto results = runner.run(jobs_);
    report.cells = shape_;
    for (std::size_t i = 0; i < results.size(); ++i) {
        auto& cell = report.cells[i];
        cell.result = std::move(results[i]);
        cell.outcomes = reduce_cell(cell.result);
        report.detections += cell.outcomes.detections;
        report.misses += cell.outcomes.misses;
        report.false_alarms += cell.outcomes.false_alarms;
        report.true_negatives += cell.outcomes.true_negatives;
    }

    // Boundary scan per {scenario × fault × processor} group over the
    // (strictly increasing) intensity axis. Zero-intensity control cells
    // never count: a latched alarm there is baseline false-alarm behavior,
    // not a fault response, and an un-faulted divergence is a scenario
    // problem the intensity axis can't map.
    const std::size_t ni = cfg_.intensities.size();
    const std::size_t np = cfg_.processors.size();
    for (std::size_t si = 0; si < cfg_.scenarios.size(); ++si) {
        for (std::size_t fi = 0; fi < cfg_.faults.size(); ++fi) {
            for (std::size_t pi = 0; pi < np; ++pi) {
                FaultBoundary b;
                b.scenario_index = si;
                b.fault_index = fi;
                b.processor_index = pi;
                double lowest_miss = -1.0;
                double lowest_clean_detect = -1.0;
                double highest_clean_detect = -1.0;
                for (std::size_t ii = 0; ii < ni; ++ii) {
                    if (cfg_.intensities[ii] <= 0.0) continue;
                    const double intensity = cfg_.intensities[ii];
                    const std::size_t idx =
                        ((si * cfg_.faults.size() + fi) * ni + ii) * np + pi;
                    const auto& o = report.cells[idx].outcomes;
                    if (o.detections > 0 &&
                        b.lowest_detected_intensity < 0.0) {
                        b.lowest_detected_intensity = intensity;
                    }
                    if (o.misses > 0) {
                        b.highest_missed_intensity = intensity;
                        if (lowest_miss < 0.0) lowest_miss = intensity;
                    }
                    if (o.detections > 0 && o.misses == 0) {
                        if (lowest_clean_detect < 0.0) {
                            lowest_clean_detect = intensity;
                        }
                        highest_clean_detect = intensity;
                    }
                }
                // Demonstrated boundary: a miss-regime cell and a
                // clean-detection cell at different intensities in the
                // same group. The orientation records which side the
                // blind region sits on.
                if (lowest_miss >= 0.0 && highest_clean_detect >= 0.0) {
                    b.boundary_demonstrated = true;
                    b.miss_region_above =
                        lowest_miss > highest_clean_detect;
                }
                report.boundaries.push_back(b);
            }
        }
    }
    return report;
}

std::string FaultCampaignReport::to_json() const {
    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("fault_campaign");
    w.key("campaign").value(config.label);
    w.key("base_seed").value(config.base_seed);
    w.key("duration_s").value(config.duration_s);
    w.key("seeds_per_cell").value(config.seeds_per_cell);
    w.key("burst_frames").value(config.burst_frames);

    w.key("axes").begin_object();
    w.key("scenarios").begin_array();
    for (const auto& s : config.scenarios) w.value(s);
    w.end_array();
    w.key("faults").begin_array();
    for (const auto t : config.faults) w.value(fault_type_name(t));
    w.end_array();
    w.key("intensities").begin_array();
    for (const auto i : config.intensities) w.value(i);
    w.end_array();
    w.key("processors").begin_array();
    for (const auto p : config.processors) w.value(processor_name(p));
    w.end_array();
    w.end_object();

    w.key("cells").begin_array();
    for (const auto& c : cells) {
        const auto& r = c.result;
        const auto& o = c.outcomes;
        w.begin_object();
        w.key("scenario").value(r.scenario);
        w.key("fault").value(fault_type_name(config.faults[c.fault_index]));
        w.key("intensity").value(config.intensities[c.intensity_index]);
        w.key("processor").value(processor_name(r.processor));
        w.key("indices").begin_array();
        w.value(c.scenario_index);
        w.value(c.fault_index);
        w.value(c.intensity_index);
        w.value(c.processor_index);
        w.end_array();
        w.key("seeds").value(o.seeds);
        w.key("detections").value(o.detections);
        w.key("misses").value(o.misses);
        w.key("false_alarms").value(o.false_alarms);
        w.key("true_negatives").value(o.true_negatives);
        w.key("mean_detection_latency_s").value(o.mean_detection_latency_s);
        w.key("epochs").value(r.trace.epochs);
        w.key("realizations").begin_array();
        for (const auto& s : r.seeds) {
            w.begin_object();
            w.key("outcome").value(
                fault_outcome_name(classify_fault_outcome(s)));
            w.key("diverged").value(s.trace.first_divergence_s >= 0.0);
            w.key("first_divergence_s").value(s.trace.first_divergence_s);
            w.key("flagged").value(s.final_status.residual_flagged);
            w.key("flag_s").value(s.final_status.residual_flag_s);
            w.key("windowed_rate").value(s.final_status.residual_windowed_rate);
            w.key("exceedances").value(s.final_status.residual_exceedances);
            w.key("dmu_frames_lost").value(s.final_status.dmu_frames_lost);
            w.key("acc_packets_lost").value(s.final_status.acc_packets_lost);
            w.key("fault_window_s").begin_array();
            w.value(s.trace.fault_window_start_s);
            w.value(s.trace.fault_window_duration_s);
            w.end_array();
            w.key("worst_err_deg").begin_array();
            w.value(s.trace.worst_roll_err_deg);
            w.value(s.trace.worst_pitch_err_deg);
            w.value(s.trace.worst_yaw_err_deg);
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();

    w.key("boundaries").begin_array();
    for (const auto& b : boundaries) {
        w.begin_object();
        w.key("scenario").value(config.scenarios[b.scenario_index]);
        w.key("fault").value(fault_type_name(config.faults[b.fault_index]));
        w.key("processor").value(
            processor_name(config.processors[b.processor_index]));
        w.key("lowest_detected_intensity")
            .value(b.lowest_detected_intensity);
        w.key("highest_missed_intensity").value(b.highest_missed_intensity);
        w.key("boundary_demonstrated").value(b.boundary_demonstrated);
        w.key("miss_region_above").value(b.miss_region_above);
        w.end_object();
    }
    w.end_array();

    std::size_t demonstrated = 0;
    for (const auto& b : boundaries) {
        if (b.boundary_demonstrated) ++demonstrated;
    }
    w.key("summary").begin_object();
    w.key("cells").value(cells.size());
    w.key("realizations").value(cells.size() * config.seeds_per_cell);
    w.key("detections").value(detections);
    w.key("misses").value(misses);
    w.key("false_alarms").value(false_alarms);
    w.key("true_negatives").value(true_negatives);
    w.key("boundaries_demonstrated").value(demonstrated);
    w.end_object();
    w.end_object();
    return w.str();
}

}  // namespace ob::system
