#include "system/fault_campaign.hpp"

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/json.hpp"

namespace ob::system {

void FaultCampaignConfig::validate() const {
    const auto fail = [](const std::string& what) {
        throw std::invalid_argument("FaultCampaignConfig: " + what);
    };
    if (label.empty()) fail("label must not be empty");
    if (scenarios.empty()) fail("scenario axis must not be empty");
    for (const auto& name : scenarios) {
        if (!sim::ScenarioLibrary::instance().find(name)) {
            fail("unknown scenario '" + name + "'");
        }
    }
    if (faults.empty()) fail("fault axis must not be empty");
    std::set<FaultType> seen;
    for (const auto t : faults) {
        if (!seen.insert(t).second) {
            fail(std::string("duplicate fault type '") + fault_type_name(t) +
                 "'");
        }
    }
    if (intensities.empty()) fail("intensity axis must not be empty");
    for (std::size_t i = 0; i < intensities.size(); ++i) {
        if (intensities[i] < 0.0 || intensities[i] > 1.0) {
            fail("intensities must be in [0, 1]");
        }
        if (i > 0 && intensities[i] <= intensities[i - 1]) {
            fail("intensities must be strictly increasing");
        }
    }
    if (processors.empty()) fail("processor axis must not be empty");
    if (seeds_per_cell == 0) fail("seeds_per_cell must be at least 1");
    if (seeds_per_cell > kFleetMaxSeedsPerJob) {
        fail("seeds_per_cell exceeds the FNV-1a sub-seed limit");
    }
    if (duration_s < 0.0) fail("duration override must be non-negative");
    if (burst_frames == 0) fail("burst length must be at least one frame");
    if (boundary_tolerance < 0.0) {
        fail("boundary tolerance must be non-negative");
    }
    if (boundary_tolerance > 0.0 && boundary_max_probes == 0) {
        fail("boundary probe budget must be at least 1");
    }
}

FaultOutcome classify_fault_outcome(const FleetSeedResult& s) {
    const bool diverged = s.trace.first_divergence_s >= 0.0;
    const bool alarmed = s.final_status.residual_flagged ||
                         s.final_status.supervisor_alarmed;
    if (diverged) {
        return alarmed ? FaultOutcome::kDetection : FaultOutcome::kMiss;
    }
    return alarmed ? FaultOutcome::kFalseAlarm : FaultOutcome::kTrueNegative;
}

double fault_detection_time_s(const FleetSeedResult& s) {
    double t = -1.0;
    if (s.final_status.residual_flagged &&
        s.final_status.residual_flag_s >= 0.0) {
        t = s.final_status.residual_flag_s;
    }
    if (s.final_status.supervisor_alarmed &&
        s.final_status.supervisor_alarm_s >= 0.0 &&
        (t < 0.0 || s.final_status.supervisor_alarm_s < t)) {
        t = s.final_status.supervisor_alarm_s;
    }
    return t;
}

const char* fault_outcome_name(const FaultOutcome o) {
    switch (o) {
        case FaultOutcome::kDetection: return "detection";
        case FaultOutcome::kMiss: return "miss";
        case FaultOutcome::kFalseAlarm: return "false-alarm";
        case FaultOutcome::kTrueNegative: return "true-negative";
    }
    return "?";
}

FaultCampaign::FaultCampaign(FaultCampaignConfig cfg) : cfg_(std::move(cfg)) {
    cfg_.validate();
    // Scenario-major expansion, fault > intensity > processor innermost.
    // Order is part of the campaign's contract: report cells, job indices
    // and the boundary scan all key off it.
    jobs_.reserve(cfg_.scenarios.size() * cfg_.faults.size() *
                  cfg_.intensities.size() * cfg_.processors.size());
    for (std::size_t si = 0; si < cfg_.scenarios.size(); ++si) {
        for (std::size_t fi = 0; fi < cfg_.faults.size(); ++fi) {
            for (std::size_t ii = 0; ii < cfg_.intensities.size(); ++ii) {
                for (std::size_t pi = 0; pi < cfg_.processors.size(); ++pi) {
                    FleetJob job;
                    job.scenario = cfg_.scenarios[si];
                    job.processor = cfg_.processors[pi];
                    job.base_seed = cfg_.base_seed;
                    job.duration_s = cfg_.duration_s;
                    job.seeds_per_job = cfg_.seeds_per_cell;
                    // The fault axis is always present — a zero-intensity
                    // cell is an exact control (bitwise the un-faulted
                    // run), which is what lets the report separate the
                    // monitor's baseline false-alarm rate from its
                    // fault response.
                    job.fault = FleetFault{cfg_.faults[fi],
                                           cfg_.intensities[ii],
                                           cfg_.burst_frames};
                    job.validate();
                    FaultCampaignCell cell;
                    cell.scenario_index = si;
                    cell.fault_index = fi;
                    cell.intensity_index = ii;
                    cell.processor_index = pi;
                    shape_.push_back(cell);
                    jobs_.push_back(std::move(job));
                }
            }
        }
    }
}

namespace {

/// Reduce one cell's seed ensemble, in seed-index order, to its outcome
/// tally and mean detection latency.
[[nodiscard]] FaultCellOutcomes reduce_cell(const FleetResult& r) {
    FaultCellOutcomes o;
    double latency_sum = 0.0;
    for (const auto& s : r.seeds) {
        ++o.seeds;
        switch (classify_fault_outcome(s)) {
            case FaultOutcome::kDetection:
                ++o.detections;
                if (s.final_status.residual_flagged) ++o.residual_detections;
                if (s.final_status.supervisor_alarmed) {
                    ++o.supervisor_detections;
                }
                latency_sum += fault_detection_time_s(s) -
                               s.trace.first_divergence_s;
                break;
            case FaultOutcome::kMiss: ++o.misses; break;
            case FaultOutcome::kFalseAlarm: ++o.false_alarms; break;
            case FaultOutcome::kTrueNegative: ++o.true_negatives; break;
        }
    }
    if (o.detections > 0) {
        o.mean_detection_latency_s =
            latency_sum / static_cast<double>(o.detections);
    }
    return o;
}

}  // namespace

FaultCampaignReport FaultCampaign::run(const FleetRunner& runner) const {
    FaultCampaignReport report;
    report.config = cfg_;
    auto results = runner.run(jobs_);
    report.cells = shape_;
    for (std::size_t i = 0; i < results.size(); ++i) {
        auto& cell = report.cells[i];
        cell.result = std::move(results[i]);
        cell.outcomes = reduce_cell(cell.result);
        report.detections += cell.outcomes.detections;
        report.misses += cell.outcomes.misses;
        report.false_alarms += cell.outcomes.false_alarms;
        report.true_negatives += cell.outcomes.true_negatives;
        report.residual_detections += cell.outcomes.residual_detections;
        report.supervisor_detections += cell.outcomes.supervisor_detections;
    }

    // Boundary scan per {scenario × fault × processor} group over the
    // (strictly increasing) intensity axis. Zero-intensity control cells
    // never count: a latched alarm there is baseline false-alarm behavior,
    // not a fault response, and an un-faulted divergence is a scenario
    // problem the intensity axis can't map.
    const std::size_t ni = cfg_.intensities.size();
    const std::size_t np = cfg_.processors.size();
    for (std::size_t si = 0; si < cfg_.scenarios.size(); ++si) {
        for (std::size_t fi = 0; fi < cfg_.faults.size(); ++fi) {
            for (std::size_t pi = 0; pi < np; ++pi) {
                FaultBoundary b;
                b.scenario_index = si;
                b.fault_index = fi;
                b.processor_index = pi;
                double lowest_miss = -1.0;
                double lowest_clean_detect = -1.0;
                double highest_clean_detect = -1.0;
                for (std::size_t ii = 0; ii < ni; ++ii) {
                    if (cfg_.intensities[ii] <= 0.0) continue;
                    const double intensity = cfg_.intensities[ii];
                    const std::size_t idx =
                        ((si * cfg_.faults.size() + fi) * ni + ii) * np + pi;
                    const auto& o = report.cells[idx].outcomes;
                    if (o.detections > 0 &&
                        b.lowest_detected_intensity < 0.0) {
                        b.lowest_detected_intensity = intensity;
                    }
                    if (o.misses > 0) {
                        b.highest_missed_intensity = intensity;
                        if (lowest_miss < 0.0) lowest_miss = intensity;
                    }
                    if (o.detections > 0 && o.misses == 0) {
                        if (lowest_clean_detect < 0.0) {
                            lowest_clean_detect = intensity;
                        }
                        highest_clean_detect = intensity;
                    }
                }
                // Demonstrated boundary: a miss-regime cell and a
                // clean-detection cell at different intensities in the
                // same group. The orientation records which side the
                // blind region sits on.
                if (lowest_miss >= 0.0 && highest_clean_detect >= 0.0) {
                    b.boundary_demonstrated = true;
                    b.miss_region_above =
                        lowest_miss > highest_clean_detect;
                }
                report.boundaries.push_back(b);
            }
        }
    }

    if (cfg_.boundary_tolerance > 0.0) refine_boundaries(report, runner);
    return report;
}

FleetJob FaultCampaign::probe_job(const std::size_t scenario_index,
                                  const std::size_t fault_index,
                                  const std::size_t processor_index,
                                  const double intensity) const {
    FleetJob job;
    job.scenario = cfg_.scenarios[scenario_index];
    job.processor = cfg_.processors[processor_index];
    job.base_seed = cfg_.base_seed;
    job.duration_s = cfg_.duration_s;
    job.seeds_per_job = cfg_.seeds_per_cell;
    job.fault = FleetFault{cfg_.faults[fault_index], intensity,
                           cfg_.burst_frames};
    job.validate();
    return job;
}

void FaultCampaign::refine_boundaries(FaultCampaignReport& report,
                                      const FleetRunner& runner) const {
    // Classification of a rung/probe ensemble along the search axis: any
    // missed divergence puts the intensity on the miss side; everything
    // else (clean detection, or no divergence at all) on the detect side.
    // The refined edge is therefore "where silent misses begin", whichever
    // orientation the group showed on the rung grid.
    const auto missed = [](const FaultCellOutcomes& o) {
        return o.misses > 0;
    };

    struct Search {
        FaultBoundaryRefinement out;
        bool active = true;
    };
    std::vector<Search> searches;

    const std::size_t ni = cfg_.intensities.size();
    const std::size_t np = cfg_.processors.size();
    for (const auto& b : report.boundaries) {
        if (!b.boundary_demonstrated) continue;
        // Bracket: the first adjacent pair of classified rungs (in axis
        // order) whose miss-side classification flips.
        Search s;
        s.out.scenario_index = b.scenario_index;
        s.out.fault_index = b.fault_index;
        s.out.processor_index = b.processor_index;
        s.out.miss_region_above = b.miss_region_above;
        bool have_prev = false;
        bool prev_missed = false;
        double prev_intensity = 0.0;
        bool bracketed = false;
        for (std::size_t ii = 0; ii < ni && !bracketed; ++ii) {
            if (cfg_.intensities[ii] <= 0.0) continue;
            const std::size_t idx =
                ((b.scenario_index * cfg_.faults.size() + b.fault_index) *
                     ni +
                 ii) *
                    np +
                b.processor_index;
            const auto& o = report.cells[idx].outcomes;
            // Rungs with neither a miss nor a detection carry no boundary
            // evidence (the fault never diverged the estimate); skip them
            // so the bracket ends on informative rungs.
            if (o.misses == 0 && o.detections == 0) continue;
            const bool m = missed(o);
            if (have_prev && m != prev_missed) {
                s.out.miss_edge = m ? cfg_.intensities[ii] : prev_intensity;
                s.out.detect_edge =
                    m ? prev_intensity : cfg_.intensities[ii];
                bracketed = true;
            }
            have_prev = true;
            prev_missed = m;
            prev_intensity = cfg_.intensities[ii];
        }
        if (bracketed) searches.push_back(std::move(s));
    }

    // Bisect all active groups in lockstep rounds: one fleet batch per
    // round, consumed in group order — the refinement is a pure function
    // of deterministic probe outcomes, so it is as thread-count-
    // independent as the rung grid.
    const auto width = [](const Search& s) {
        return std::abs(s.out.miss_edge - s.out.detect_edge);
    };
    for (;;) {
        std::vector<std::size_t> active;
        std::vector<FleetJob> batch;
        for (std::size_t k = 0; k < searches.size(); ++k) {
            auto& s = searches[k];
            if (!s.active) continue;
            if (width(s) <= cfg_.boundary_tolerance) {
                s.out.converged = true;
                s.active = false;
                continue;
            }
            if (s.out.probes.size() >= cfg_.boundary_max_probes) {
                s.active = false;
                continue;
            }
            const double mid =
                0.5 * (s.out.detect_edge + s.out.miss_edge);
            active.push_back(k);
            batch.push_back(probe_job(s.out.scenario_index,
                                      s.out.fault_index,
                                      s.out.processor_index, mid));
        }
        if (batch.empty()) break;
        auto results = runner.run(batch);
        for (std::size_t j = 0; j < active.size(); ++j) {
            auto& s = searches[active[j]];
            FaultBoundaryProbe probe;
            probe.intensity = batch[j].fault->intensity;
            probe.outcomes = reduce_cell(results[j]);
            for (const auto& seed : results[j].seeds) {
                probe.epochs += seed.trace.epochs;
            }
            if (missed(probe.outcomes)) {
                s.out.miss_edge = probe.intensity;
            } else {
                s.out.detect_edge = probe.intensity;
            }
            s.out.probes.push_back(std::move(probe));
        }
    }

    report.refinements.reserve(searches.size());
    for (auto& s : searches) {
        report.refinements.push_back(std::move(s.out));
    }
}

std::string FaultCampaignReport::to_json() const {
    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("fault_campaign");
    w.key("campaign").value(config.label);
    w.key("base_seed").value(config.base_seed);
    w.key("duration_s").value(config.duration_s);
    w.key("seeds_per_cell").value(config.seeds_per_cell);
    w.key("burst_frames").value(config.burst_frames);

    w.key("axes").begin_object();
    w.key("scenarios").begin_array();
    for (const auto& s : config.scenarios) w.value(s);
    w.end_array();
    w.key("faults").begin_array();
    for (const auto t : config.faults) w.value(fault_type_name(t));
    w.end_array();
    w.key("intensities").begin_array();
    for (const auto i : config.intensities) w.value(i);
    w.end_array();
    w.key("processors").begin_array();
    for (const auto p : config.processors) w.value(processor_name(p));
    w.end_array();
    w.end_object();

    w.key("cells").begin_array();
    for (const auto& c : cells) {
        const auto& r = c.result;
        const auto& o = c.outcomes;
        w.begin_object();
        w.key("scenario").value(r.scenario);
        w.key("fault").value(fault_type_name(config.faults[c.fault_index]));
        w.key("intensity").value(config.intensities[c.intensity_index]);
        w.key("processor").value(processor_name(r.processor));
        w.key("indices").begin_array();
        w.value(c.scenario_index);
        w.value(c.fault_index);
        w.value(c.intensity_index);
        w.value(c.processor_index);
        w.end_array();
        w.key("seeds").value(o.seeds);
        w.key("detections").value(o.detections);
        w.key("misses").value(o.misses);
        w.key("false_alarms").value(o.false_alarms);
        w.key("true_negatives").value(o.true_negatives);
        w.key("residual_detections").value(o.residual_detections);
        w.key("supervisor_detections").value(o.supervisor_detections);
        w.key("mean_detection_latency_s").value(o.mean_detection_latency_s);
        w.key("epochs").value(r.trace.epochs);
        w.key("realizations").begin_array();
        for (const auto& s : r.seeds) {
            w.begin_object();
            w.key("outcome").value(
                fault_outcome_name(classify_fault_outcome(s)));
            w.key("diverged").value(s.trace.first_divergence_s >= 0.0);
            w.key("first_divergence_s").value(s.trace.first_divergence_s);
            w.key("flagged").value(s.final_status.residual_flagged);
            w.key("flag_s").value(s.final_status.residual_flag_s);
            w.key("windowed_rate").value(s.final_status.residual_windowed_rate);
            w.key("exceedances").value(s.final_status.residual_exceedances);
            w.key("health").value(
                health_state_name(s.final_status.worst_health));
            w.key("supervisor_alarmed").value(
                s.final_status.supervisor_alarmed);
            w.key("supervisor_alarm_s").value(
                s.final_status.supervisor_alarm_s);
            w.key("delivery_rates").begin_array();
            w.value(s.final_status.dmu_delivery_rate);
            w.value(s.final_status.acc_delivery_rate);
            w.end_array();
            w.key("coast_s").value(s.final_status.coast_s);
            w.key("recoveries").value(s.final_status.recoveries);
            w.key("reconvergence_s").value(s.final_status.reconvergence_s);
            w.key("acc_implausible").value(s.final_status.acc_implausible);
            w.key("dmu_frames_lost").value(s.final_status.dmu_frames_lost);
            w.key("acc_packets_lost").value(s.final_status.acc_packets_lost);
            w.key("fault_window_s").begin_array();
            w.value(s.trace.fault_window_start_s);
            w.value(s.trace.fault_window_duration_s);
            w.end_array();
            w.key("worst_err_deg").begin_array();
            w.value(s.trace.worst_roll_err_deg);
            w.value(s.trace.worst_pitch_err_deg);
            w.value(s.trace.worst_yaw_err_deg);
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();

    w.key("boundaries").begin_array();
    for (const auto& b : boundaries) {
        w.begin_object();
        w.key("scenario").value(config.scenarios[b.scenario_index]);
        w.key("fault").value(fault_type_name(config.faults[b.fault_index]));
        w.key("processor").value(
            processor_name(config.processors[b.processor_index]));
        w.key("lowest_detected_intensity")
            .value(b.lowest_detected_intensity);
        w.key("highest_missed_intensity").value(b.highest_missed_intensity);
        w.key("boundary_demonstrated").value(b.boundary_demonstrated);
        w.key("miss_region_above").value(b.miss_region_above);
        w.end_object();
    }
    w.end_array();

    w.key("boundary_search").begin_object();
    w.key("tolerance").value(config.boundary_tolerance);
    w.key("max_probes").value(config.boundary_max_probes);
    w.key("refinements").begin_array();
    for (const auto& r : refinements) {
        w.begin_object();
        w.key("scenario").value(config.scenarios[r.scenario_index]);
        w.key("fault").value(fault_type_name(config.faults[r.fault_index]));
        w.key("processor").value(
            processor_name(config.processors[r.processor_index]));
        w.key("miss_region_above").value(r.miss_region_above);
        w.key("detect_edge").value(r.detect_edge);
        w.key("miss_edge").value(r.miss_edge);
        w.key("converged").value(r.converged);
        w.key("probes").begin_array();
        for (const auto& p : r.probes) {
            w.begin_object();
            w.key("intensity").value(p.intensity);
            w.key("detections").value(p.outcomes.detections);
            w.key("misses").value(p.outcomes.misses);
            w.key("false_alarms").value(p.outcomes.false_alarms);
            w.key("true_negatives").value(p.outcomes.true_negatives);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();

    std::size_t demonstrated = 0;
    for (const auto& b : boundaries) {
        if (b.boundary_demonstrated) ++demonstrated;
    }
    std::size_t probe_count = 0;
    for (const auto& r : refinements) probe_count += r.probes.size();
    w.key("summary").begin_object();
    w.key("cells").value(cells.size());
    w.key("realizations").value(cells.size() * config.seeds_per_cell);
    w.key("detections").value(detections);
    w.key("misses").value(misses);
    w.key("false_alarms").value(false_alarms);
    w.key("true_negatives").value(true_negatives);
    w.key("residual_detections").value(residual_detections);
    w.key("supervisor_detections").value(supervisor_detections);
    w.key("boundaries_demonstrated").value(demonstrated);
    w.key("boundaries_refined").value(refinements.size());
    w.key("boundary_probes").value(probe_count);
    w.end_object();
    w.end_object();
    return w.str();
}

}  // namespace ob::system
