#include "system/fleet_serve.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "sim/scenario_library.hpp"

namespace ob::system {

namespace {

/// Apply the request's override knobs to one expanded job.
void apply_overrides(FleetJob& job, const FleetRequest& req) {
    if (req.base_seed != 0) job.base_seed = req.base_seed;
    job.seeds_per_job = req.seeds_per_job == 0 ? 1 : req.seeds_per_job;
    job.use_adaptive_tuner = req.use_adaptive_tuner;
    if (req.duration_s > 0.0) job.duration_s = req.duration_s;
    if (req.meas_noise_mps2 > 0.0) job.meas_noise_mps2 = req.meas_noise_mps2;
}

[[nodiscard]] std::vector<BoresightSystem::Processor> processors_of(
    std::uint8_t selector) {
    switch (selector) {
        case kProcessorNative:
            return {BoresightSystem::Processor::kNative};
        case kProcessorSabre:
            return {BoresightSystem::Processor::kSabre};
        case kProcessorBoth:
            return {BoresightSystem::Processor::kNative,
                    BoresightSystem::Processor::kSabre};
        default:
            throw std::invalid_argument("processor selector " +
                                        std::to_string(selector) +
                                        " out of range");
    }
}

void require_known_scenario(const std::string& name) {
    if (sim::ScenarioLibrary::instance().find(name) == nullptr) {
        throw std::out_of_range("unknown scenario '" + name + "'");
    }
}

}  // namespace

std::vector<FleetJob> expand_fleet_request(const FleetRequest& req) {
    std::vector<FleetJob> jobs;
    for (const auto processor : processors_of(req.processor)) {
        if (req.scenario == "*") {
            auto batch = full_library_jobs(
                processor, req.base_seed == 0 ? 2026 : req.base_seed);
            for (auto& job : batch) {
                apply_overrides(job, req);
                jobs.push_back(std::move(job));
            }
        } else {
            require_known_scenario(req.scenario);
            FleetJob job;
            job.scenario = req.scenario;
            job.processor = processor;
            apply_overrides(job, req);
            jobs.push_back(std::move(job));
        }
    }
    for (const auto& job : jobs) job.validate();
    return jobs;
}

StudyExpansion expand_study_request(const StudyRequest& req) {
    require_known_scenario(req.scenario);
    // The built-in §11 retune panel (examples/retune_study.cpp is the long
    // form): the paper's quiet static tuning, its hand retune, and the
    // adaptive tuner that must rediscover the retune from the static start.
    // Level-platform calibration before every cell, like the original
    // procedure.
    struct Variant {
        const char* label;
        bool adaptive;
        double meas_noise;
    };
    static constexpr Variant kPanel[] = {
        {"static-0.003", false, 0.003},
        {"retuned-0.015", false, 0.015},
        {"adaptive", true, 0.003},
    };

    StudyExpansion out;
    for (const auto processor : processors_of(req.processor)) {
        for (const auto& v : kPanel) {
            FleetJob job;
            job.scenario = req.scenario;
            job.processor = processor;
            job.base_seed = req.base_seed == 0 ? 2026 : req.base_seed;
            job.seeds_per_job =
                req.seeds_per_cell == 0 ? 1 : req.seeds_per_cell;
            job.use_adaptive_tuner = v.adaptive;
            job.meas_noise_mps2 = v.meas_noise;
            job.calibration = FleetCalibration{};
            job.validate();
            // The streamed label names the cell; processor is its own
            // field in the frame. Must fit kScenarioFieldWidth - 1.
            std::string label = req.scenario + "/" + v.label;
            if (label.size() >= kScenarioFieldWidth) {
                label.resize(kScenarioFieldWidth - 1);
            }
            out.jobs.push_back(std::move(job));
            out.labels.push_back(std::move(label));
        }
    }
    return out;
}

JobResultMessage make_job_result(std::uint32_t index, std::uint32_t count,
                                 const std::string& label,
                                 const FleetJob& job, const FleetResult& r) {
    JobResultMessage m;
    m.job_index = index;
    m.job_count = count;
    m.scenario = label;
    m.processor = job.processor == BoresightSystem::Processor::kSabre
                      ? kProcessorSabre
                      : kProcessorNative;
    m.within_envelope = r.within_envelope;
    m.seeds = static_cast<std::uint16_t>(job.seeds_per_job);
    m.seeds_within_envelope =
        static_cast<std::uint32_t>(r.seed_stats.within_envelope);
    m.estimate_rad[0] = r.result.estimate.roll;
    m.estimate_rad[1] = r.result.estimate.pitch;
    m.estimate_rad[2] = r.result.estimate.yaw;
    for (std::size_t i = 0; i < 3; ++i) m.sigma3_rad[i] = r.result.sigma3_rad[i];
    m.residual_rms = r.result.residual_rms;
    m.meas_noise = r.result.meas_noise;
    m.duration_s = r.result.duration_s;
    m.worst_err_deg[0] = r.trace.worst_roll_err_deg;
    m.worst_err_deg[1] = r.trace.worst_pitch_err_deg;
    m.worst_err_deg[2] = r.trace.worst_yaw_err_deg;
    m.tuner_adjustments = r.final_status.tuner_adjustments;
    return m;
}

FleetServer::FleetServer(Config cfg)
    : cfg_(std::move(cfg)), runner_(cfg_.runner) {
    if (cfg_.socket_path.empty()) {
        throw std::invalid_argument("FleetServer: empty socket path");
    }
}

FleetServer::~FleetServer() = default;

void FleetServer::serve() {
    auto listener = util::UnixListener::bind(cfg_.socket_path);
    listening_.store(true, std::memory_order_release);
    std::vector<std::thread> workers;
    while (!stopping()) {
        util::UnixSocket client = listener.accept(cfg_.accept_poll_ms);
        if (!client.valid()) continue;  // poll timeout: recheck stop flag
        workers.emplace_back(
            [this, sock = std::move(client)]() mutable {
                handle_connection(std::move(sock));
            });
    }
    listener.close();  // unlinks the socket path
    for (auto& w : workers) w.join();
    listening_.store(false, std::memory_order_release);
}

void FleetServer::send_error(util::UnixSocket& sock, std::uint32_t session,
                             ErrorCode code, const std::string& message) {
    ErrorMessage err;
    err.code = code;
    err.message = message;
    write_frame(sock, MessageType::kError, session, encode_error(err));
}

bool FleetServer::run_streaming(util::UnixSocket& sock, std::uint32_t session,
                                const std::vector<FleetJob>& jobs,
                                const std::vector<std::string>& labels) {
    const auto start = std::chrono::steady_clock::now();
    DoneMessage done;
    done.jobs = static_cast<std::uint32_t>(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (stopping()) {
            send_error(sock, session, ErrorCode::kShuttingDown,
                       "daemon stopping; request aborted after " +
                           std::to_string(i) + " job(s)");
            return false;
        }
        std::vector<FleetResult> result;
        try {
            result = runner_.run({jobs[i]});
        } catch (const std::exception& e) {
            send_error(sock, session, ErrorCode::kInternal, e.what());
            return true;  // session survives a failed request
        }
        const JobResultMessage frame = make_job_result(
            static_cast<std::uint32_t>(i),
            static_cast<std::uint32_t>(jobs.size()), labels[i], jobs[i],
            result.front());
        if (frame.within_envelope) ++done.within_envelope;
        write_frame(sock, MessageType::kJobResult, session,
                    encode_job_result(frame));
    }
    done.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    write_frame(sock, MessageType::kDone, session, encode_done(done));
    return true;
}

void FleetServer::handle_connection(util::UnixSocket sock) {
    std::uint32_t session = 0;
    try {
        Frame frame;
        while (read_frame(sock, frame)) {
            if (frame.header.version != kProtocolVersion) {
                send_error(sock, session, ErrorCode::kBadVersion,
                           "server speaks protocol version " +
                               std::to_string(kProtocolVersion) + ", not " +
                               std::to_string(frame.header.version));
                return;
            }
            if (session == 0) {
                // Session lifecycle: the first frame must be kHello.
                if (frame.type() != MessageType::kHello) {
                    send_error(sock, 0, ErrorCode::kBadSession,
                               "first frame must be Hello");
                    return;
                }
                auto r = frame.reader();
                const HelloRequest hello = decode_hello(r);
                if (hello.min_version > kProtocolVersion ||
                    hello.max_version < kProtocolVersion) {
                    send_error(sock, 0, ErrorCode::kBadVersion,
                               "no common protocol version");
                    return;
                }
                session = next_session_.fetch_add(
                    1, std::memory_order_relaxed);
                HelloOk ok;
                ok.version = kProtocolVersion;
                ok.session = session;
                write_frame(sock, MessageType::kHelloOk, session,
                            encode_hello_ok(ok));
                continue;
            }
            if (frame.header.session != session) {
                send_error(sock, session, ErrorCode::kBadSession,
                           "frame carries session " +
                               std::to_string(frame.header.session) +
                               ", this connection is session " +
                               std::to_string(session));
                continue;
            }
            switch (frame.type()) {
                case MessageType::kPing: {
                    auto r = frame.reader();
                    const PingMessage ping = decode_ping(r);
                    write_frame(sock, MessageType::kPong, session,
                                encode_ping(ping));
                    break;
                }
                case MessageType::kFleetRequest: {
                    std::vector<FleetJob> jobs;
                    std::vector<std::string> labels;
                    try {
                        auto r = frame.reader();
                        const FleetRequest req = decode_fleet_request(r);
                        jobs = expand_fleet_request(req);
                        labels.reserve(jobs.size());
                        for (const auto& j : jobs)
                            labels.push_back(j.scenario);
                    } catch (const std::out_of_range& e) {
                        send_error(sock, session,
                                   ErrorCode::kUnknownScenario, e.what());
                        break;
                    } catch (const std::invalid_argument& e) {
                        send_error(sock, session, ErrorCode::kBadRequest,
                                   e.what());
                        break;
                    }
                    if (!run_streaming(sock, session, jobs, labels)) return;
                    break;
                }
                case MessageType::kStudyRequest: {
                    StudyExpansion study;
                    try {
                        auto r = frame.reader();
                        study = expand_study_request(decode_study_request(r));
                    } catch (const std::out_of_range& e) {
                        send_error(sock, session,
                                   ErrorCode::kUnknownScenario, e.what());
                        break;
                    } catch (const std::invalid_argument& e) {
                        send_error(sock, session, ErrorCode::kBadRequest,
                                   e.what());
                        break;
                    }
                    if (!run_streaming(sock, session, study.jobs,
                                       study.labels))
                        return;
                    break;
                }
                case MessageType::kGoodbye:
                    return;  // client done; close the connection
                case MessageType::kShutdown:
                    write_frame(sock, MessageType::kShutdownAck, session);
                    request_stop();
                    return;
                default:
                    send_error(sock, session, ErrorCode::kBadFrame,
                               "unexpected message type " +
                                   std::to_string(frame.header.type));
                    break;
            }
        }
    } catch (const util::WireError& e) {
        // Malformed frame: tell the peer (best effort) and drop the
        // connection — after a framing error the stream position is gone.
        try {
            send_error(sock, session, ErrorCode::kBadFrame, e.what());
        } catch (const util::SocketError&) {
        }
    } catch (const util::SocketError&) {
        // Peer vanished mid-conversation; nothing to clean up.
    }
}

}  // namespace ob::system
