#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/adaptive_tuner.hpp"
#include "math/rotation.hpp"
#include "system/fleet.hpp"

namespace ob::system {

/// One point on the tuner-config axis of a tuning study: a named filter
/// tuning (initial measurement noise and, optionally, the §11 adaptive
/// retuning loop with explicit knobs). The paper's manual retune is two of
/// these — "static tuning, R = 0.003" and "retuned, R = 0.015" — and the
/// adaptive tuner is a third that should land on the second by itself.
struct TunerVariant {
    std::string label;  ///< stable identifier in the study report
    bool use_adaptive_tuner = false;
    core::AdaptiveTunerConfig tuner{};  ///< knobs when the tuner is on
    /// Initial measurement noise, 1-sigma m/s²; 0 => the scenario spec's
    /// recommended value.
    double meas_noise_mps2 = 0.0;
};

/// Declarative sweep specification: the study expands
/// {scenario × misalignment × tuner variant × processor} into one FleetJob
/// per cell. An empty misalignment grid means "each scenario's spec
/// default"; every job inherits the study's calibration spec and seed, so
/// the whole study is a pure value with the fleet's deterministic RNG
/// contract.
struct TuningStudyConfig {
    std::string label = "tuning-study";
    std::vector<std::string> scenarios;        ///< ScenarioLibrary names
    std::vector<math::EulerAngles> misalignments;  ///< empty => spec default
    std::vector<TunerVariant> variants;
    std::vector<BoresightSystem::Processor> processors = {
        BoresightSystem::Processor::kNative};
    /// §11.1 level-platform calibration applied to every job when set.
    std::optional<FleetCalibration> calibration{};
    double duration_s = 0.0;  ///< per-job duration override; 0 => spec
    std::uint64_t base_seed = 2026;
    /// Monte Carlo axis: instrument-seed realizations per grid cell. All
    /// realizations of a cell share one ScenarioTrace; the report reduces
    /// each ensemble to mean/σ/95% CI columns next to the primary (seed-0)
    /// values. 1 keeps the single-realization behavior bit for bit.
    std::uint64_t seeds_per_cell = 1;

    /// Throws std::invalid_argument naming the first bad axis: empty label,
    /// empty/unknown scenario list, empty variant list, duplicate or empty
    /// variant labels, bad variant tuning, empty processor list, negative
    /// duration, a zero/overflowing seed count — plus everything
    /// FleetJob::validate rejects per cell.
    void validate() const;
};

/// One completed grid cell: the axis indices that produced it plus the full
/// fleet result. `misalignment_index` stays 0 when the grid is empty (spec
/// defaults).
struct TuningStudyCell {
    std::size_t scenario_index = 0;
    std::size_t misalignment_index = 0;
    std::size_t variant_index = 0;
    std::size_t processor_index = 0;
    FleetResult result;
};

/// Machine-readable study outcome. Every field is a deterministic function
/// of the config — no wall-clock, no thread count — so `to_json()` is
/// byte-identical however the batch was scheduled.
struct TuningStudyReport {
    TuningStudyConfig config;
    std::vector<TuningStudyCell> cells;
    std::size_t within_envelope = 0;

    /// Render the full report (axes, per-cell reductions, summary) via
    /// util::JsonWriter.
    [[nodiscard]] std::string to_json() const;
};

/// Sweep generator and reducer: expands the config into FleetJob batches,
/// runs them through a FleetRunner, and reduces per-cell results
/// (converged 3-sigma, residual RMS, envelope verdict, tuner adjustment
/// count, calibration bias) into a TuningStudyReport.
class TuningStudy {
public:
    /// Validates the config (and every expanded job) up front.
    explicit TuningStudy(TuningStudyConfig cfg);

    /// The expanded batch, in deterministic grid order: scenario-major,
    /// then misalignment, variant, processor.
    [[nodiscard]] const std::vector<FleetJob>& jobs() const { return jobs_; }
    [[nodiscard]] std::size_t cell_count() const { return jobs_.size(); }

    /// Execute the batch on the given runner and reduce the results.
    [[nodiscard]] TuningStudyReport run(const FleetRunner& runner) const;

private:
    TuningStudyConfig cfg_;
    std::vector<FleetJob> jobs_;
    std::vector<TuningStudyCell> shape_;  ///< axis indices per job
};

}  // namespace ob::system
