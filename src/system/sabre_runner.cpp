#include "system/sabre_runner.hpp"

#include <bit>
#include <stdexcept>

namespace ob::system {

namespace {

[[nodiscard]] std::uint32_t fbits(double v) {
    return std::bit_cast<std::uint32_t>(static_cast<float>(v));
}

}  // namespace

SabreFusionSystem::SabreFusionSystem() : SabreFusionSystem(Config{}) {}

SabreFusionSystem::SabreFusionSystem(const Config& cfg)
    : cfg_(cfg), r_sigma_(cfg.r_sigma) {
    const sabre::FirmwareLayout layout;
    cpu_ = std::make_unique<sabre::SabreCpu>(
        sabre::boresight_firmware_image(layout), cfg.dispatch);

    control_ = std::make_shared<sabre::ControlPeripheral>();
    fpu_ = std::make_shared<sabre::FpuPeripheral>();
    dmu_port_ = std::make_shared<sabre::DmuPortPeripheral>();
    acc_port_ = std::make_shared<sabre::AccPortPeripheral>();
    auto& bus = cpu_->bus();
    bus.attach(sabre::periph::kLeds, std::make_shared<sabre::LedsPeripheral>());
    bus.attach(sabre::periph::kSwitches,
               std::make_shared<sabre::SwitchesPeripheral>());
    bus.attach(sabre::periph::kTouchscreen,
               std::make_shared<sabre::TouchscreenPeripheral>());
    bus.attach(sabre::periph::kGui, std::make_shared<sabre::GuiPeripheral>());
    bus.attach(sabre::periph::kControl, control_);
    bus.attach(sabre::periph::kFpu, fpu_);
    bus.attach(sabre::periph::kDmuPort, dmu_port_);
    bus.attach(sabre::periph::kAccPort, acc_port_);

    // Host-side initialization of the firmware's constants and priors —
    // the role the merged BlockRAM image played in the paper's flow.
    cpu_->store_data(layout.q, fbits(cfg_.q_variance));
    cpu_->store_data(layout.r, fbits(cfg_.r_sigma * cfg_.r_sigma));
    // Boot value of the writable R register: the firmware latches it into
    // its Kalman R cell every update, so the untouched register must hold
    // the same bits the data cell was initialized with.
    control_->write(4 * sabre::ControlPeripheral::kMeasNoiseVar,
                    fbits(cfg_.r_sigma * cfg_.r_sigma));
    cpu_->store_data(layout.accel_lsb, fbits(cfg_.dmu_scale.accel_lsb_mps2));
    cpu_->store_data(layout.duty_scale,
                     fbits(cfg_.adxl.g / cfg_.adxl.duty_per_g));
    cpu_->store_data(layout.half, fbits(0.5));
    cpu_->store_data(layout.fix_one, fbits(65536.0));
    cpu_->store_data(layout.three, fbits(3.0));
    for (int i = 0; i < 3; ++i) {
        cpu_->store_data(layout.x + 4u * static_cast<unsigned>(i), fbits(0.0));
        for (int j = 0; j < 3; ++j) {
            const double pij =
                i == j ? cfg_.p0_sigma * cfg_.p0_sigma : 0.0;
            cpu_->store_data(
                layout.p + 4u * static_cast<unsigned>(3 * i + j), fbits(pij));
        }
    }
}

void SabreFusionSystem::push(const comm::DmuSample& dmu,
                             const comm::AdxlTiming& adxl) {
    sabre::DmuPortPeripheral::Sample ds;
    for (std::size_t i = 0; i < 3; ++i) {
        ds.gyro[i] = dmu.gyro[i];
        ds.accel[i] = dmu.accel[i];
    }
    ds.seq = dmu.seq;
    dmu_port_->host_push(ds);

    sabre::AccPortPeripheral::Sample as;
    as.t1x = adxl.t1x;
    as.t1y = adxl.t1y;
    as.t2 = adxl.t2;
    as.seq = adxl.seq;
    acc_port_->host_push(as);
    ++expected_updates_;
}

SabreFusionSystem::Estimate SabreFusionSystem::estimate() const {
    Estimate out;
    using CR = sabre::ControlPeripheral;
    out.angles.roll = control_->angle(CR::kRoll);
    out.angles.pitch = control_->angle(CR::kPitch);
    out.angles.yaw = control_->angle(CR::kYaw);
    out.sigma3 = math::Vec3{control_->angle(CR::kRollSigma3),
                            control_->angle(CR::kPitchSigma3),
                            control_->angle(CR::kYawSigma3)};
    out.updates = control_->reg(CR::kUpdateCount);
    out.residual = math::Vec2{control_->angle(CR::kResidualX),
                              control_->angle(CR::kResidualY)};
    out.innov_sigma3 = math::Vec2{control_->angle(CR::kInnovSigma3X),
                                  control_->angle(CR::kInnovSigma3Y)};
    return out;
}

void SabreFusionSystem::set_measurement_noise(double sigma_mps2) {
    r_sigma_ = sigma_mps2;
    control_->write(4 * sabre::ControlPeripheral::kMeasNoiseVar,
                    fbits(sigma_mps2 * sigma_mps2));
}

SabreFusionSystem::Estimate SabreFusionSystem::run_pending(
    std::uint64_t max_cycles) {
    const std::uint64_t deadline = cpu_->cycles() + max_cycles;
    while (control_->reg(sabre::ControlPeripheral::kUpdateCount) <
           expected_updates_) {
        if (cpu_->halted())
            throw std::runtime_error(
                "SabreFusionSystem: core halted before folding all samples");
        // Stop-at-or-before the deadline: the next instruction issues only
        // if even its worst-case cost fits, so cycles() never overshoots
        // the budget (the old loop let the last instruction run past it).
        if (cpu_->cycles() + cpu_->next_step_worst_cycles() > deadline)
            throw std::runtime_error(
                "SabreFusionSystem: cycle budget exhausted");
        // kUpdateCount only changes when the firmware stores into the
        // control window, so re-polling after each such store observes
        // exactly the same stop instruction as polling every step — while
        // the core stays in its batched dispatch loop in between.
        (void)cpu_->run_until_bus_write(sabre::periph::kControl, deadline);
    }
    return estimate();
}

double SabreFusionSystem::cycles_per_update() const {
    const auto updates = control_->reg(sabre::ControlPeripheral::kUpdateCount);
    if (updates == 0) return 0.0;
    return static_cast<double>(cpu_->cycles()) / updates;
}

}  // namespace ob::system
