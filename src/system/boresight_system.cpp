#include "system/boresight_system.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace ob::system {

using math::Vec2;
using math::Vec3;

namespace {

void require(bool ok, const char* what) {
    if (!ok) {
        throw std::invalid_argument(std::string("BoresightSystem: ") + what);
    }
}

void require_probability(double p, const char* what) {
    require(p >= 0.0 && p <= 1.0, what);
}

/// Legacy fixed fault seeds of the two serial links (the pre-campaign
/// behavior every golden run is pinned to), and the salts separating the
/// two links' counter-keyed streams when a campaign supplies a base seed.
constexpr std::uint64_t kLegacyDmuLinkSeed = 11;
constexpr std::uint64_t kLegacyAccLinkSeed = 12;
constexpr std::uint64_t kDmuLinkSalt = 0xD1115EEDull;
constexpr std::uint64_t kAccLinkSalt = 0xACC5EEDull;

[[nodiscard]] std::uint64_t link_seed(std::uint64_t base, std::uint64_t salt,
                                      std::uint64_t legacy) {
    return base != 0 ? base ^ salt : legacy;
}

}  // namespace

void BoresightSystem::Config::validate() const {
    require(can_bitrate > 0.0, "CAN bitrate must be positive");
    require(uart_baud > 0.0, "UART baud rate must be positive");
    require(filter.meas_noise_mps2 > 0.0,
            "filter measurement noise must be positive");
    require(filter.angle_process_noise >= 0.0,
            "filter angle process noise must be non-negative");
    require(filter.init_angle_sigma > 0.0,
            "filter initial angle sigma must be positive");
    require(filter.init_bias_sigma > 0.0,
            "filter initial bias sigma must be positive");
    require(filter.bias_process_noise >= 0.0,
            "filter bias process noise must be non-negative");
    require(filter.nis_gate >= 0.0, "filter NIS gate must be non-negative");
    require(sabre.r_sigma > 0.0, "Sabre measurement noise must be positive");
    require(sabre.q_variance >= 0.0,
            "Sabre process noise variance must be non-negative");
    require(sabre.p0_sigma > 0.0, "Sabre initial sigma must be positive");
    tuner.validate();
    for (const auto* faults : {&dmu_link_faults, &acc_link_faults}) {
        require_probability(faults->drop_probability,
                            "link drop probability must be in [0, 1]");
        require_probability(faults->bit_flip_probability,
                            "link bit-flip probability must be in [0, 1]");
        require_probability(faults->framing_error_probability,
                            "link framing-error probability must be in [0, 1]");
    }
    require_probability(can_faults.burst_probability,
                        "CAN burst probability must be in [0, 1]");
    require(can_faults.burst_frames >= 1,
            "CAN burst length must be at least one frame");
    require(monitor_window >= 1, "monitor window must be at least 1");
    require(monitor_alarm_rate > 0.0 && monitor_alarm_rate <= 1.0,
            "monitor alarm rate must be in (0, 1]");
    require(monitor_min_samples >= 1,
            "monitor minimum sample count must be at least 1");
    supervisor.validate();
}

BoresightSystem::BoresightSystem(const Config& cfg)
    : cfg_((cfg.validate(), cfg)),
      can_(cfg.can_bitrate, cfg.can_faults),
      dmu_uart_(cfg.uart_baud, cfg.dmu_link_faults,
                link_seed(cfg.link_fault_seed, kDmuLinkSalt,
                          kLegacyDmuLinkSeed)),
      acc_uart_(cfg.uart_baud, cfg.acc_link_faults,
                link_seed(cfg.link_fault_seed, kAccLinkSalt,
                          kLegacyAccLinkSeed)),
      bridge_(dmu_uart_),
      tuner_(cfg.tuner),
      monitor_(cfg.monitor_window, cfg.monitor_alarm_rate,
               cfg.monitor_min_samples),
      supervisor_(cfg.supervisor),
      apply_acc_bias_(cfg.calibrated_bias[0] != 0.0 ||
                      cfg.calibrated_bias[1] != 0.0) {
    // Single-listener fast path: a raw trampoline instead of std::function.
    can_.set_direct_delivery(
        [](void* ctx, const comm::CanFrame& f, double t) {
            static_cast<comm::CanSerialBridge*>(ctx)->forward(f, t);
        },
        &bridge_);
    if (cfg_.processor == Processor::kNative) {
        native_ = std::make_unique<core::BoresightEkf>(cfg_.filter);
    } else {
        sabre_ = std::make_unique<SabreFusionSystem>(cfg_.sabre);
    }
}

void BoresightSystem::set_link_faults(const comm::UartFaults& dmu,
                                      const comm::UartFaults& acc) {
    dmu_uart_.set_faults(dmu);
    acc_uart_.set_faults(acc);
}

void BoresightSystem::feed(const sim::ScenarioTrace& trace, const double t,
                           const comm::DmuSample& dmu,
                           const comm::AdxlTiming& adxl) {
    adxl_ = trace.adxl();
    epoch_dmu_delivered_ = false;
    epoch_acc_delivered_ = false;

    // IMU -> two CAN frames onto the shared bus (encoded into scratch).
    comm::DmuCodec::encode_into(dmu, scratch_.gyro_frame,
                                scratch_.accel_frame);
    can_.send(scratch_.gyro_frame, t);
    can_.send(scratch_.accel_frame, t);

    // ACC -> duty-cycle packet straight onto its serial line.
    comm::adxl_serialize_into(adxl, scratch_.acc_packet);
    acc_uart_.send(scratch_.acc_packet, t);
    ++sent_epochs_;

    // Advance the transport slightly past this epoch and drain arrivals
    // straight into the decoders — no per-call byte vectors.
    const double horizon = t + 0.5 / trace.sample_rate_hz();
    can_.advance_to(horizon);
    dmu_uart_.drain_until(horizon, [this](const comm::UartByte& byte) {
        if (auto frame = deframer_.feed(byte)) {
            if (auto sample = dmu_codec_.feed(*frame, byte.t)) {
                pending_dmu_ = sample;
                epoch_dmu_delivered_ = true;
            }
        }
    });
    acc_uart_.drain_until(horizon, [this](const comm::UartByte& byte) {
        if (byte.framing_error) return;
        if (auto timing = acc_deser_.feed(byte.value, byte.t)) {
            // Fabric-side plausibility gate: a corrupted packet can pass
            // the additive checksum by accident; its timings cannot pass
            // the physical duty-cycle band.
            if (comm::adxl_plausible(*timing, adxl_)) {
                pending_acc_ = timing;
                epoch_acc_delivered_ = true;
            } else {
                ++implausible_acc_;
            }
        }
    });

    // Fuse whenever a synchronized pair is ready. (Pairs are matched by
    // arrival; sequence slips from lost frames simply drop an epoch.)
    bool fused = false;
    if (pending_dmu_ && pending_acc_) {
        process_pair(*pending_dmu_, *pending_acc_);
        pending_dmu_.reset();
        pending_acc_.reset();
        fused = true;
    }

    // Liveness watchdogs see every epoch, delivered or not — that is the
    // whole point: starvation regimes produce no residuals for the monitor,
    // but they still produce (empty) epochs here.
    HealthSupervisor::Event ev;
    ev.t = t;
    ev.dt_s = 1.0 / trace.sample_rate_hz();
    ev.dmu_delivered = epoch_dmu_delivered_;
    ev.acc_delivered = epoch_acc_delivered_;
    ev.fused = fused;
    const auto verdict = supervisor_.observe(ev);

    // Honest coast mode: while updates stall, the angle uncertainty grows
    // as a random walk of the configured intensity instead of freezing at
    // its last confident value. Natively the EKF covariance itself grows
    // (so post-outage gains are honest too); on the Sabre path the
    // covariance lives inside the firmware, so the growth accumulates
    // host-side and is folded into the reported 3σ.
    const double rate = cfg_.supervisor.coast_sigma_rate;
    if (verdict.coast_dt_s > 0.0 && rate > 0.0) {
        const double var = rate * rate * verdict.coast_dt_s;
        if (native_) {
            native_->grow_angle_covariance(var);
        } else {
            coast_var_ += var;
        }
    }

    if (verdict.recovered) {
        // Sustained-clean return to nominal: re-arm the residual monitor
        // so its exceedance window starts fresh on the recovered link
        // (the Status latch keeps any earlier alarm visible), and retire
        // the Sabre-side coast inflation — the estimate has demonstrably
        // re-converged. The native EKF needs nothing: its grown covariance
        // contracts through the resumed updates on its own.
        monitor_latched_ = monitor_latched_ || monitor_.flagged();
        monitor_.reset();
        coast_var_ = 0.0;
    }
}

void BoresightSystem::process_pair(const comm::DmuSample& dmu,
                                   const comm::AdxlTiming& acc) {
    ++updates_;
    if (sabre_) {
        if (apply_acc_bias_) {
            // The firmware decodes timings itself, so the §11.1 bias is
            // folded back into the duty-cycle domain at wire resolution —
            // exactly what a calibrated fabric front-end would present.
            const auto [ax, ay] = comm::adxl_decode(acc, adxl_);
            auto corrected = comm::adxl_encode(ax - cfg_.calibrated_bias[0],
                                               ay - cfg_.calibrated_bias[1],
                                               acc.seq, adxl_);
            corrected.t = acc.t;
            sabre_->push(dmu, corrected);
        } else {
            sabre_->push(dmu, acc);
        }
        const auto est = sabre_->run_pending();
        residual_stats_.add(est.residual[0]);
        residual_stats_.add(est.residual[1]);
        monitor_.add(est.residual, est.innov_sigma3);
        if (monitor_.flagged() && monitor_flag_t_ < 0.0) {
            monitor_flag_t_ = dmu.t;
        }
        if (cfg_.use_adaptive_tuner) {
            // The same §11 retune loop as the native path, driven by the
            // firmware-published innovation statistics; a recommendation
            // lands in the firmware's writable R register and takes effect
            // from its next update.
            const double rec = tuner_.observe(est.residual, est.innov_sigma3,
                                              sabre_->measurement_noise());
            if (rec > 0.0) sabre_->set_measurement_noise(rec);
        }
        return;
    }
    Vec3 f_body;
    for (std::size_t i = 0; i < 3; ++i)
        f_body[i] = dmu_scale_.raw_to_accel(dmu.accel[i]);
    const auto [ax, ay] = comm::adxl_decode(acc, adxl_);
    const Vec2 z = Vec2{ax, ay} - cfg_.calibrated_bias;
    const auto up = native_->step(f_body, z);
    residual_stats_.add(up.residual[0]);
    residual_stats_.add(up.residual[1]);
    monitor_.add(up.residual, up.sigma3);
    if (monitor_.flagged() && monitor_flag_t_ < 0.0) {
        monitor_flag_t_ = dmu.t;
    }
    if (cfg_.use_adaptive_tuner) {
        const double rec =
            tuner_.observe(up.residual, up.sigma3, native_->measurement_noise());
        if (rec > 0.0) native_->set_measurement_noise(rec);
    }
}

BoresightSystem::Status BoresightSystem::status() const {
    Status s;
    if (native_) {
        s.estimate = native_->misalignment();
        s.sigma3 = native_->misalignment_sigma3();
        s.measurement_noise = native_->measurement_noise();
    } else {
        const auto est = sabre_->estimate();
        s.estimate = est.angles;
        s.sigma3 = est.sigma3;
        if (coast_var_ > 0.0) {
            // Fold the host-side coast variance into the firmware's
            // reported 3σ (guarded so a never-coasted run keeps the
            // register bits untouched).
            for (std::size_t i = 0; i < 3; ++i) {
                const double sigma = s.sigma3[i] / 3.0;
                s.sigma3[i] = 3.0 * std::sqrt(sigma * sigma + coast_var_);
            }
        }
        s.measurement_noise = sabre_->measurement_noise();
    }
    s.updates = updates_;
    s.dmu_frames_lost = dmu_codec_.seq_mismatches() + deframer_.malformed() +
                        dmu_codec_.bad_checksum();
    s.acc_packets_lost = acc_deser_.bad_checksum() + implausible_acc_;
    s.worst_transport_latency = can_.max_latency();
    s.residual_rms = residual_stats_.rms();
    s.tuner_adjustments = tuner_.adjustments();
    s.residual_flagged = monitor_.flagged() || monitor_latched_;
    s.residual_flag_s = monitor_flag_t_;
    s.residual_windowed_rate = monitor_.windowed_rate();
    s.residual_exceedances = monitor_.exceedances();
    s.health = supervisor_.state();
    s.worst_health = supervisor_.worst_state();
    s.supervisor_alarmed = supervisor_.alarmed();
    s.supervisor_alarm_s = supervisor_.alarm_s();
    s.dmu_delivery_rate = supervisor_.dmu_delivery_rate();
    s.acc_delivery_rate = supervisor_.acc_delivery_rate();
    s.coast_s = supervisor_.coast_s();
    s.recoveries = supervisor_.recoveries();
    s.reconvergence_s = supervisor_.last_recovery_s();
    s.acc_implausible = implausible_acc_;
    return s;
}

}  // namespace ob::system
