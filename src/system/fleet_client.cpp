#include "system/fleet_client.hpp"

#include <utility>

namespace ob::system {

namespace {

[[noreturn]] void throw_error_frame(const Frame& frame) {
    auto r = frame.reader();
    const ErrorMessage err = decode_error(r);
    throw FleetServeError(err.code, err.message);
}

}  // namespace

FleetServeClient FleetServeClient::connect(const std::string& socket_path) {
    FleetServeClient client(util::UnixSocket::connect(socket_path));
    HelloRequest hello;
    write_frame(client.sock_, MessageType::kHello, 0, encode_hello(hello));
    const Frame frame = client.expect_frame();
    if (frame.type() == MessageType::kError) throw_error_frame(frame);
    if (frame.type() != MessageType::kHelloOk) {
        throw util::WireError("handshake: expected HelloOk, got type " +
                              std::to_string(frame.header.type));
    }
    auto r = frame.reader();
    const HelloOk ok = decode_hello_ok(r);
    if (ok.session == 0) {
        throw util::WireError("handshake: server granted session id 0");
    }
    client.session_ = ok.session;
    client.version_ = ok.version;
    return client;
}

Frame FleetServeClient::expect_frame() {
    Frame frame;
    if (!read_frame(sock_, frame)) {
        throw util::SocketError(
            "server closed the connection mid-conversation");
    }
    return frame;
}

std::uint64_t FleetServeClient::ping(std::uint64_t token) {
    PingMessage msg;
    msg.token = token;
    write_frame(sock_, MessageType::kPing, session_, encode_ping(msg));
    const Frame frame = expect_frame();
    if (frame.type() == MessageType::kError) throw_error_frame(frame);
    if (frame.type() != MessageType::kPong) {
        throw util::WireError("ping: expected Pong, got type " +
                              std::to_string(frame.header.type));
    }
    auto r = frame.reader();
    return decode_ping(r).token;
}

FleetRunOutcome FleetServeClient::run_streaming(
    MessageType type, const std::vector<std::uint8_t>& payload,
    const std::function<void(const JobResultMessage&)>& on_result) {
    write_frame(sock_, type, session_, payload);
    FleetRunOutcome out;
    for (;;) {
        const Frame frame = expect_frame();
        switch (frame.type()) {
            case MessageType::kJobResult: {
                auto r = frame.reader();
                JobResultMessage job = decode_job_result(r);
                if (on_result) on_result(job);
                out.results.push_back(std::move(job));
                break;
            }
            case MessageType::kDone: {
                auto r = frame.reader();
                out.done = decode_done(r);
                return out;
            }
            case MessageType::kError:
                throw_error_frame(frame);
            default:
                throw util::WireError(
                    "streaming: expected JobResult/Done/Error, got type " +
                    std::to_string(frame.header.type));
        }
    }
}

FleetRunOutcome FleetServeClient::run_fleet(
    const FleetRequest& req,
    const std::function<void(const JobResultMessage&)>& on_result) {
    return run_streaming(MessageType::kFleetRequest,
                         encode_fleet_request(req), on_result);
}

FleetRunOutcome FleetServeClient::run_study(
    const StudyRequest& req,
    const std::function<void(const JobResultMessage&)>& on_result) {
    return run_streaming(MessageType::kStudyRequest,
                         encode_study_request(req), on_result);
}

void FleetServeClient::goodbye() {
    if (!sock_.valid()) return;
    write_frame(sock_, MessageType::kGoodbye, session_);
    sock_.close();
}

void FleetServeClient::shutdown_server() {
    write_frame(sock_, MessageType::kShutdown, session_);
    const Frame frame = expect_frame();
    if (frame.type() == MessageType::kError) throw_error_frame(frame);
    if (frame.type() != MessageType::kShutdownAck) {
        throw util::WireError("shutdown: expected ShutdownAck, got type " +
                              std::to_string(frame.header.type));
    }
}

}  // namespace ob::system
