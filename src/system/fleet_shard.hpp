#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "system/fleet.hpp"
#include "util/wire.hpp"

namespace ob::system {

/// Process-level work partition over the deterministic (job × seed) plan
/// (docs/ARCHITECTURE.md § "Sharding and the serve layer"). A shard is a
/// contiguous plan-order slice realized by one process; its output is a
/// self-describing artifact carrying the full job list, the plan digest,
/// the slice bounds and the per-item seed results. `merge_shards`
/// recombines artifacts in plan order, and because a work item's result is
/// a function of (job, seed index) alone, the merged artifact is bitwise
/// the artifact of a single 1/1-shard run — asserted across shard counts
/// in tests/fleet_shard_test.cpp.

/// Artifact wire format version; bumped on any layout change. The format
/// itself is the canonical ByteWriter encoding described field by field in
/// docs/ARCHITECTURE.md.
inline constexpr std::uint32_t kFleetShardFormatVersion = 1;

/// 8-byte artifact magic, "OBSHARD1" in file order.
inline constexpr char kFleetShardMagic[8] = {'O', 'B', 'S', 'H',
                                             'A', 'R', 'D', '1'};

/// Contiguous plan-order slice [begin, end) owned by shard `index` of
/// `count`: the balanced partition (sizes differ by at most one, earlier
/// shards take the remainder). Shards beyond the item count come out
/// empty — a plan smaller than the shard count is valid, not an error.
/// Throws std::invalid_argument on count == 0 or index >= count.
struct ShardRange {
    std::size_t begin = 0;
    std::size_t end = 0;

    [[nodiscard]] std::size_t size() const { return end - begin; }
};
[[nodiscard]] ShardRange shard_range(std::size_t total_items,
                                     std::size_t index, std::size_t count);

/// One shard's partial results, or (after merge) the recombined whole.
struct FleetShardArtifact {
    std::uint64_t plan_digest = 0;  ///< make_fleet_plan(jobs).digest
    std::uint64_t total_items = 0;  ///< full plan size, all shards
    std::uint64_t item_begin = 0;   ///< plan-order slice [begin, end)
    std::uint64_t item_end = 0;
    std::vector<FleetJob> jobs;     ///< the full batch, self-describing
    /// Seed results for plan items [item_begin, item_end), in plan order.
    std::vector<FleetSeedResult> results;

    [[nodiscard]] bool covers_full_plan() const {
        return item_begin == 0 && item_end == total_items;
    }
};

/// Canonical byte codec for one realization's full output (every field of
/// the FleetSeedResult, doubles as IEEE-754 bit patterns). Exposed so
/// tests can pin "merged == single-process" at the byte level.
void encode_seed_result(util::ByteWriter& w, const FleetSeedResult& s);
[[nodiscard]] FleetSeedResult decode_seed_result(util::ByteReader& r);

/// Serialize / parse an artifact. decode validates the magic, the format
/// version, the slice bounds, the result count and — by re-deriving the
/// plan from the embedded jobs — the plan digest and total item count, so
/// a corrupt or hand-edited artifact cannot reach merge. Throws
/// util::WireError with the failing field.
[[nodiscard]] std::string encode_shard_artifact(const FleetShardArtifact& a);
[[nodiscard]] FleetShardArtifact decode_shard_artifact(std::string_view bytes);

/// File convenience wrappers (binary, whole-file).
void save_shard_artifact(const std::string& path,
                         const FleetShardArtifact& a);
[[nodiscard]] FleetShardArtifact load_shard_artifact(const std::string& path);

/// Realize shard `index` of `count` over the batch: run_items on the
/// shard's plan slice, packaged with the plan identity. `run_fleet_shard`
/// with count 1 is the single-process reference the merged artifacts must
/// match bitwise.
[[nodiscard]] FleetShardArtifact run_fleet_shard(
    const std::vector<FleetJob>& jobs, std::size_t index, std::size_t count,
    const FleetRunner& runner = FleetRunner{});

/// Recombine shard artifacts (any order) into the full-plan artifact.
/// Rejects, with a message naming the offending shards: an empty input,
/// artifacts whose plan digests / totals / job lists disagree, overlapping
/// slices, and gaps (the union must tile [0, total) exactly). Empty
/// slices are fine — they are what over-sharded small plans produce.
/// Throws std::invalid_argument.
[[nodiscard]] FleetShardArtifact merge_shards(
    const std::vector<FleetShardArtifact>& shards);

/// Reduce a full-plan artifact to the FleetRunner::run result vector
/// (reduce_fleet_job per job, plan order). Throws std::invalid_argument
/// when the artifact does not cover the full plan.
[[nodiscard]] std::vector<FleetResult> realize_shard_results(
    const FleetShardArtifact& a);

}  // namespace ob::system
