#pragma once

#include <cstdint>
#include <string>

#include "core/adaptive_tuner.hpp"
#include "core/alignment_report.hpp"
#include "core/boresight_ekf.hpp"
#include "math/matrix.hpp"
#include "sim/scenario.hpp"
#include "util/time_series.hpp"

namespace ob::system {

/// Everything needed to run one of the paper's §11 experiments end to end:
/// calibration pass, scenario, filter tuning and trace recording.
struct ExperimentConfig {
    std::string label = "experiment";
    sim::ScenarioConfig scenario;
    std::uint64_t sensor_seed = 1;  ///< identifies the physical instruments
    core::BoresightConfig filter;
    /// Run the paper's level-platform calibration before the experiment
    /// and subtract the measured bias during the run.
    bool calibrate = true;
    double calibration_duration_s = 60.0;
    /// Replace manual retuning with the adaptive noise tuner.
    bool use_adaptive_tuner = false;
    core::AdaptiveTunerConfig tuner;
    /// Record full residual/estimate traces (Figures 8 and 9).
    bool record_traces = false;

    /// Throws std::invalid_argument naming the first bad field (empty
    /// scenario, non-positive durations or rates, bad filter tuning).
    /// `run_experiment` calls this before touching any state.
    void validate() const;
};

/// Time histories recorded during a run (only when record_traces is set).
struct ExperimentTrace {
    util::TimeSeries residual_x;  ///< m/s²
    util::TimeSeries residual_y;
    util::TimeSeries sigma3_x;    ///< 3σ innovation envelope, m/s²
    util::TimeSeries sigma3_y;
    util::TimeSeries roll_deg;    ///< estimate histories, degrees
    util::TimeSeries pitch_deg;
    util::TimeSeries yaw_deg;
    util::TimeSeries roll_s3_deg;
    util::TimeSeries pitch_s3_deg;
    util::TimeSeries yaw_s3_deg;
    util::TimeSeries noise_sigma; ///< filter R 1-sigma over time (tuner)
};

struct ExperimentOutcome {
    core::AlignmentResult result;
    ExperimentTrace trace;
    math::Vec2 calibrated_bias{};     ///< bias subtracted during the run
    double calibration_noise = 0.0;   ///< per-sample noise seen at calibration
    std::size_t steps = 0;
};

/// Execute the full §11 procedure: calibrate on a level platform (same
/// instruments, i.e. same sensor seed), then run the scenario through the
/// fusion filter.
[[nodiscard]] ExperimentOutcome run_experiment(const ExperimentConfig& cfg);

/// Convenience: decode one scenario step into SI units the way the
/// deployed firmware would (DMU register scaling + ADXL duty-cycle law).
struct DecodedMeasurement {
    math::Vec3 f_body{};
    math::Vec3 omega{};  ///< gyro-measured body rate (rad/s)
    math::Vec2 acc_xy{};
};
[[nodiscard]] DecodedMeasurement decode_step(const sim::Scenario& sc,
                                             const sim::Scenario::Step& step);

}  // namespace ob::system
