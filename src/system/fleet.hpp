#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/alignment_report.hpp"
#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "system/boresight_system.hpp"
#include "util/wire.hpp"

namespace ob::system {

/// Largest per-axis misalignment override a fleet job accepts (radians).
/// The boresight EKF linearizes the mounting rotation as a small-angle DCM,
/// so beyond roughly this bound the linearization error dominates the
/// estimate and a sweep cell would be measuring the model, not the tuning.
inline constexpr double kFleetSmallAngleLimitRad = math::deg2rad(15.0);

/// Upper bound on FleetJob::seeds_per_job: the Monte Carlo sub-seed folds
/// the realization index into the sensor stream as a 32-bit FNV-1a value,
/// so indices must fit in 32 bits or distinct seeds would alias.
inline constexpr std::uint64_t kFleetMaxSeedsPerJob = 1ull << 32;

/// Sensor-stream seed of Monte Carlo realization `index` of a job.
/// Index 0 returns the seed unchanged — the single-seed (scenario,
/// base_seed) contract, and the golden corpus pinned to it, is preserved
/// bit for bit. Higher indices FNV-1a-fold the index into the stream with
/// a final avalanche so neighboring realizations are uncorrelated.
[[nodiscard]] std::uint64_t fleet_sub_seed(std::uint64_t sensor_seed,
                                           std::uint64_t index);

/// Salt separating a realization's fault-draw stream from its
/// instrument-noise stream: the fault seed is
/// fleet_sub_seed(sensor_stream ^ salt, index), so arming a fault draws
/// nothing from the instrument stream (samples stay bitwise identical)
/// and each Monte Carlo realization faults differently.
inline constexpr std::uint64_t kFleetFaultStreamSalt = 0xFA17517EC7EDull;

/// Fault taxonomy of the injection campaigns: which first-class hook a
/// FleetFault drives.
enum class FaultType {
    kUartDropout,     ///< per-byte loss on both serial links
    kUartCorruption,  ///< per-byte bit flips on both serial links
    kCanBurstLoss,    ///< bursty frame erasure on the DMU CAN bus
    kAccStuck,        ///< ACC duty-cycle outputs frozen at last value
    kImuFrozen,       ///< DMU accel/gyro registers frozen at last value
};

[[nodiscard]] const char* fault_type_name(FaultType t);

/// Fault axis of a fleet job. Intensity is a single [0, 1] severity knob
/// whose meaning follows the type: the per-byte probability for link
/// faults, the per-frame burst-start probability for CAN burst loss, and
/// the frozen fraction of the run for stuck-sensor faults (the window's
/// start is drawn from the fault stream, inside the post-settle stretch).
/// Intensity 0 bypasses the fault machinery entirely — the realization is
/// bitwise the un-faulted run, which is what makes zero-intensity campaign
/// cells exact controls.
struct FleetFault {
    FaultType type = FaultType::kUartDropout;
    double intensity = 0.0;
    std::size_t burst_frames = 8;  ///< burst length for kCanBurstLoss

    /// Throws std::invalid_argument on an intensity outside [0, 1] or a
    /// zero burst length.
    void validate() const;
};

/// The paper's §11.1 pre-run procedure as a fleet phase: before the
/// scenario starts, the job's instruments (same sensor-seed realization)
/// sit on a level platform for `duration_s` of static epochs, a
/// CalibrationAccumulator measures the combined ACC-vs-IMU bias, and that
/// bias is subtracted from every subsequent ACC reading inside the
/// BoresightSystem.
struct FleetCalibration {
    double duration_s = 30.0;  ///< level-platform dwell before the run

    /// Throws std::invalid_argument on a non-positive dwell.
    void validate() const;
};

/// One unit of fleet work: a library scenario driven end to end through the
/// full-transport BoresightSystem on the chosen fusion processor. A job is
/// a pure value — every RNG stream it uses derives from (scenario name,
/// base_seed), so the result is a function of the job alone and batches can
/// be executed in any order on any number of threads. The calibration pass
/// keeps that contract: its scenario derives from the same (name, seed)
/// sensor stream, so a calibrated job is still a pure value.
struct FleetJob {
    std::string scenario;  ///< ScenarioLibrary name
    BoresightSystem::Processor processor =
        BoresightSystem::Processor::kNative;
    std::uint64_t base_seed = 2026;  ///< folded with the scenario name
    double duration_s = 0.0;         ///< 0 => the spec's default duration
    /// Override the spec's injected truth (fleet sweeps over misalignment).
    std::optional<math::EulerAngles> misalignment{};
    /// Run the §11.1 level-platform calibration before the scenario.
    std::optional<FleetCalibration> calibration{};
    bool use_adaptive_tuner = false;
    /// Tuner knobs; requires use_adaptive_tuner (a silent override on a
    /// disabled tuner is always a config mistake). Absent => defaults.
    std::optional<core::AdaptiveTunerConfig> tuner{};
    /// Initial measurement noise override, 1-sigma m/s² (tuning sweeps);
    /// absent => the spec's recommended value. Applies to both processors.
    std::optional<double> meas_noise_mps2{};
    /// Monte Carlo axis: number of instrument-seed realizations of this
    /// job. All realizations share one ScenarioTrace (same road, same
    /// vibration timeline) and differ only in their sensor draws, derived
    /// via fleet_sub_seed. 1 (the default) is bitwise the pre-seed-axis
    /// behavior.
    std::uint64_t seeds_per_job = 1;
    /// Fault-injection axis: when set with a positive intensity, the
    /// realization runs with the fault armed, its draws on a dedicated
    /// per-realization stream (kFleetFaultStreamSalt) independent of the
    /// instrument-noise stream. Absent or zero-intensity is bitwise the
    /// un-faulted run.
    std::optional<FleetFault> fault{};

    /// Throws std::invalid_argument on an empty/unknown scenario, a
    /// negative duration override, a misalignment override outside the
    /// small-angle regime, bad calibration/tuner specs, a non-positive
    /// measurement-noise override, or a seed count of zero / beyond
    /// kFleetMaxSeedsPerJob.
    void validate() const;
};

/// Envelope verdict and error-trace summary for one completed job. All
/// fields are deterministic functions of the job — no wall-clock ever lands
/// here, so two runs of the same job compare bitwise equal.
struct FleetTraceSummary {
    std::size_t epochs = 0;  ///< scenario steps fed into the transport
    /// Worst estimate-vs-truth excursion per axis over the envelope's
    /// checked windows (post-settle; for bump scenarios both the pre-bump
    /// and re-settled post-bump windows).
    double worst_roll_err_deg = 0.0;
    double worst_pitch_err_deg = 0.0;
    double worst_yaw_err_deg = 0.0;
    std::size_t checked_points = 0;  ///< samples inside the windows
    /// First checked-window time the estimate left the envelope (the
    /// ground-truth divergence instant fault campaigns compare the
    /// ResidualMonitor's flag against); -1 when it never did.
    double first_divergence_s = -1.0;
    /// Start/length of the stuck-sensor window realized for this seed
    /// (zero length for other fault types and un-faulted runs).
    double fault_window_start_s = 0.0;
    double fault_window_duration_s = 0.0;
};

/// One Monte Carlo realization of a job — the Realize layer's unit of
/// output. Realization 0 is the historical single-seed run.
struct FleetSeedResult {
    std::uint64_t sensor_seed = 0;  ///< fleet_sub_seed(stream, index)
    core::AlignmentResult result;
    FleetTraceSummary trace;
    BoresightSystem::Status final_status{};
    bool within_envelope = false;
    // §11.1 calibration-phase outputs (all zero for uncalibrated jobs).
    math::Vec2 calibrated_bias{};
    double calibration_noise = 0.0;
    std::size_t calibration_samples = 0;
};

/// Mean and sample standard deviation (n-1; zero when n == 1) of one
/// metric across a job's seed ensemble, accumulated in seed-index order so
/// the values are bitwise scheduling-independent.
struct FleetMetricStats {
    double mean = 0.0;
    double stddev = 0.0;

    /// 95% normal confidence half-width of the mean (1.96·σ/√n); zero for
    /// ensembles of fewer than two realizations. Every CI a study report
    /// or example prints funnels through this one definition.
    [[nodiscard]] double ci95(std::size_t n) const;
};

/// Cross-seed ensemble summary of a job: the Monte Carlo evidence behind a
/// single-realization envelope verdict (Zhong et al., arXiv:2109.06404).
struct FleetSeedStats {
    std::size_t seeds = 0;
    std::size_t within_envelope = 0;  ///< realizations inside the envelope
    FleetMetricStats roll_err_deg;    ///< worst post-settle excursions
    FleetMetricStats pitch_err_deg;
    FleetMetricStats yaw_err_deg;
    FleetMetricStats residual_rms;
};

struct FleetResult {
    std::string scenario;
    BoresightSystem::Processor processor =
        BoresightSystem::Processor::kNative;
    // Primary fields mirror seed realization 0 — bitwise the pre-seed-axis
    // result, whatever seeds_per_job is.
    core::AlignmentResult result;  ///< Table 1 row shape for this run
    FleetTraceSummary trace;
    BoresightSystem::Status final_status{};
    /// Envelope applied to this run (spec envelope, Sabre-scaled when the
    /// job ran on the firmware processor).
    sim::ScenarioEnvelope envelope{};
    bool within_envelope = false;
    // §11.1 calibration-phase outputs (all zero for uncalibrated jobs).
    math::Vec2 calibrated_bias{};    ///< bias subtracted during the run
    double calibration_noise = 0.0;  ///< per-sample noise at calibration
    std::size_t calibration_samples = 0;
    /// All realizations in seed-index order (size == job.seeds_per_job;
    /// seeds[0] repeats the primary fields) plus their ensemble summary.
    std::vector<FleetSeedResult> seeds;
    FleetSeedStats seed_stats;
};

/// Execute one job serially. This is the reference semantics: FleetRunner
/// must produce, for every job, a result bitwise identical to this call.
[[nodiscard]] FleetResult run_fleet_job(const FleetJob& job);

/// Fold a job's seed ensemble (seed-index order, size == seeds_per_job)
/// into its FleetResult: primary fields mirror realization 0 bit for bit,
/// the ensemble summary accumulates in seed order. This is the Reduce step
/// FleetRunner and run_fleet_job share — fleet_merge applies it to seed
/// results recombined from shard artifacts, which is why a merged batch is
/// bitwise the single-process run.
[[nodiscard]] FleetResult reduce_fleet_job(const FleetJob& job,
                                           std::vector<FleetSeedResult> seeds);

/// Canonical byte encoding of a FleetJob (little-endian, every field,
/// optionals as presence flags). Two uses, which must never diverge: the
/// fleet plan digest hashes these bytes, and the shard artifact embeds
/// them so `fleet_merge` is self-describing (docs/ARCHITECTURE.md §
/// "Sharding"). decode_fleet_job(encode_fleet_job(j)) == j field for field.
void encode_fleet_job(util::ByteWriter& w, const FleetJob& job);
[[nodiscard]] FleetJob decode_fleet_job(util::ByteReader& r);

/// One realization work item of the deterministic (job × seed) plan.
struct FleetPlanItem {
    std::size_t job = 0;        ///< index into the batch's job vector
    std::uint64_t seed = 0;     ///< realization index within the job
};

/// The expanded plan of a batch: work items in plan order (job-major,
/// seed-minor — exactly the order FleetRunner realizes and reduces), plus
/// a digest over the canonical job encodings. The digest is the identity
/// two shard artifacts must share before their ranges may be merged: equal
/// digests mean equal jobs, equal plan, equal item indices.
struct FleetPlan {
    std::vector<FleetPlanItem> items;
    std::uint64_t digest = 0;
};

/// Expand and digest the plan for a batch. Validates every job first, so
/// a plan (and therefore a shard artifact) can only exist for a runnable
/// batch.
[[nodiscard]] FleetPlan make_fleet_plan(const std::vector<FleetJob>& jobs);

/// Batch executor over the Plan/Trace/Realize stack.
///
///   Plan:    expand jobs × seeds_per_job into realization work items and
///            group them by trace identity (scenario, duration, base_seed,
///            calibration dwell — misalignment is applied per realization,
///            so a misalignment sweep shares one trace);
///   Trace:   synthesize each unique ScenarioTrace exactly once, in
///            parallel (immutable, shared across every realization that
///            consumes it — all {processor × tuner × seed} variants of a
///            scenario);
///   Realize: a fixed pool of worker threads pulls realizations off a
///            shared index; traces are released as their last realization
///            drains.
///
/// Scheduling decides only WHICH thread runs a work unit, never what it
/// computes, so the results vector — indexed by job position, seeds in
/// index order inside each result — is bitwise identical whatever the
/// thread count, including 1.
class FleetRunner {
public:
    struct Config {
        std::size_t threads = 0;  ///< 0 => std::thread::hardware_concurrency
        /// Share one ScenarioTrace across all realizations with the same
        /// trace identity. Off = every realization synthesizes its own
        /// trace (the pre-Plan/Trace/Realize cost model; the fleet bench
        /// uses it to measure the amortization win). Results are bitwise
        /// identical either way.
        bool share_traces = true;
        /// Batch the Realize phase across the seed axis: contiguous runs
        /// of one native, un-faulted job's realizations step their shared
        /// trace together in SoA lanes (sim::EnsembleRealizer +
        /// system::EnsembleNominalSystem) instead of N sequential scalar
        /// loops. Requires share_traces (the batch IS the shared-trace
        /// fast path; with per-realization traces the pre-amortization
        /// cost model being measured would disappear). Sabre jobs, jobs
        /// with an active fault, and lanes that leave the nominal
        /// transport envelope fall back to the scalar path. Results are
        /// bitwise identical either way, lane for lane.
        bool batch_realizations = true;
    };

    FleetRunner();  ///< default Config (all hardware threads)
    explicit FleetRunner(Config cfg);

    /// Runs all jobs, returning results in job order. Validates every job
    /// before any work starts; a failure mid-batch (e.g. a Sabre cycle
    /// budget trap) is rethrown after all workers drain, lowest work-item
    /// index first, so the error surfaced is also deterministic.
    [[nodiscard]] std::vector<FleetResult> run(
        const std::vector<FleetJob>& jobs) const;

    /// Realize a contiguous plan-order slice [first, first + count) of
    /// make_fleet_plan(jobs).items, returning the seed results in plan
    /// order. This is the shard substrate: what a work item computes is a
    /// function of (job, seed index) alone, so a slice realized here is
    /// bitwise the same items realized by run() — whatever the partition,
    /// whatever the thread count. run() itself is run_items over the full
    /// range followed by reduce_fleet_job per job. Throws
    /// std::out_of_range when the slice overruns the plan.
    [[nodiscard]] std::vector<FleetSeedResult> run_items(
        const std::vector<FleetJob>& jobs, std::size_t first,
        std::size_t count) const;

    [[nodiscard]] std::size_t threads() const { return threads_; }
    [[nodiscard]] bool share_traces() const { return share_traces_; }
    [[nodiscard]] bool batch_realizations() const {
        return batch_realizations_;
    }

private:
    std::size_t threads_;
    bool share_traces_;
    bool batch_realizations_;
};

/// One job per library scenario on the given processor — the standard
/// regression batch.
[[nodiscard]] std::vector<FleetJob> full_library_jobs(
    BoresightSystem::Processor processor, std::uint64_t base_seed = 2026);

[[nodiscard]] const char* processor_name(BoresightSystem::Processor p);

}  // namespace ob::system
