#include "system/fleet_protocol.hpp"

#include <cstdio>
#include <string>

namespace ob::system {

namespace {

[[nodiscard]] std::vector<std::uint8_t> finish(util::ByteWriter& w,
                                               std::size_t expected,
                                               const char* what) {
    if (w.size() != expected) {
        throw util::WireError(std::string("encode ") + what + ": produced " +
                              std::to_string(w.size()) + " byte(s), layout " +
                              "says " + std::to_string(expected));
    }
    return w.data();
}

[[nodiscard]] std::uint8_t decode_processor(util::ByteReader& r,
                                            bool allow_both) {
    const std::uint8_t p = r.u8();
    const std::uint8_t limit =
        allow_both ? kProcessorBoth : kProcessorSabre;
    if (p > limit) {
        throw util::WireError("processor byte " + std::to_string(p) +
                              " out of range");
    }
    return p;
}

}  // namespace

const char* error_code_name(ErrorCode c) {
    switch (c) {
        case ErrorCode::kBadMagic: return "bad-magic";
        case ErrorCode::kBadVersion: return "bad-version";
        case ErrorCode::kBadFrame: return "bad-frame";
        case ErrorCode::kBadSession: return "bad-session";
        case ErrorCode::kBadRequest: return "bad-request";
        case ErrorCode::kUnknownScenario: return "unknown-scenario";
        case ErrorCode::kInternal: return "internal";
        case ErrorCode::kShuttingDown: return "shutting-down";
    }
    return "unknown";
}

std::vector<std::uint8_t> encode_hello(const HelloRequest& m) {
    util::ByteWriter w;
    w.u16(m.min_version);
    w.u16(m.max_version);
    w.u32(0);
    return finish(w, kHelloRequestSize, "HelloRequest");
}

HelloRequest decode_hello(util::ByteReader& r) {
    HelloRequest m;
    m.min_version = r.u16();
    m.max_version = r.u16();
    (void)r.u32();
    r.expect_end();
    if (m.min_version > m.max_version) {
        throw util::WireError("hello: min_version > max_version");
    }
    return m;
}

std::vector<std::uint8_t> encode_hello_ok(const HelloOk& m) {
    util::ByteWriter w;
    w.u16(m.version);
    w.u16(0);
    w.u32(m.session);
    return finish(w, kHelloOkSize, "HelloOk");
}

HelloOk decode_hello_ok(util::ByteReader& r) {
    HelloOk m;
    m.version = r.u16();
    (void)r.u16();
    m.session = r.u32();
    r.expect_end();
    return m;
}

std::vector<std::uint8_t> encode_ping(const PingMessage& m) {
    util::ByteWriter w;
    w.u64(m.token);
    return finish(w, kPingSize, "Ping");
}

PingMessage decode_ping(util::ByteReader& r) {
    PingMessage m;
    m.token = r.u64();
    r.expect_end();
    return m;
}

std::vector<std::uint8_t> encode_fleet_request(const FleetRequest& m) {
    util::ByteWriter w;
    w.fixed_str(m.scenario, kScenarioFieldWidth);
    w.u8(m.processor);
    w.boolean(m.use_adaptive_tuner);
    w.u16(m.seeds_per_job);
    w.u32(0);
    w.u64(m.base_seed);
    w.f64(m.duration_s);
    w.f64(m.meas_noise_mps2);
    return finish(w, kFleetRequestSize, "FleetRequest");
}

FleetRequest decode_fleet_request(util::ByteReader& r) {
    FleetRequest m;
    m.scenario = r.fixed_str(kScenarioFieldWidth);
    m.processor = decode_processor(r, /*allow_both=*/true);
    m.use_adaptive_tuner = r.boolean();
    m.seeds_per_job = r.u16();
    (void)r.u32();
    m.base_seed = r.u64();
    m.duration_s = r.f64();
    m.meas_noise_mps2 = r.f64();
    r.expect_end();
    return m;
}

std::vector<std::uint8_t> encode_study_request(const StudyRequest& m) {
    util::ByteWriter w;
    w.fixed_str(m.scenario, kScenarioFieldWidth);
    w.u8(m.processor);
    w.u8(0);
    w.u16(m.seeds_per_cell);
    w.u32(0);
    w.u64(m.base_seed);
    return finish(w, kStudyRequestSize, "StudyRequest");
}

StudyRequest decode_study_request(util::ByteReader& r) {
    StudyRequest m;
    m.scenario = r.fixed_str(kScenarioFieldWidth);
    m.processor = decode_processor(r, /*allow_both=*/true);
    (void)r.u8();
    m.seeds_per_cell = r.u16();
    (void)r.u32();
    m.base_seed = r.u64();
    r.expect_end();
    return m;
}

std::vector<std::uint8_t> encode_job_result(const JobResultMessage& m) {
    util::ByteWriter w;
    w.u32(m.job_index);
    w.u32(m.job_count);
    w.fixed_str(m.scenario, kScenarioFieldWidth);
    w.u8(m.processor);
    w.boolean(m.within_envelope);
    w.u16(m.seeds);
    w.u32(m.seeds_within_envelope);
    for (double v : m.estimate_rad) w.f64(v);
    for (double v : m.sigma3_rad) w.f64(v);
    w.f64(m.residual_rms);
    w.f64(m.meas_noise);
    w.f64(m.duration_s);
    for (double v : m.worst_err_deg) w.f64(v);
    w.u64(m.tuner_adjustments);
    return finish(w, kJobResultSize, "JobResult");
}

JobResultMessage decode_job_result(util::ByteReader& r) {
    JobResultMessage m;
    m.job_index = r.u32();
    m.job_count = r.u32();
    m.scenario = r.fixed_str(kScenarioFieldWidth);
    m.processor = decode_processor(r, /*allow_both=*/false);
    m.within_envelope = r.boolean();
    m.seeds = r.u16();
    m.seeds_within_envelope = r.u32();
    for (double& v : m.estimate_rad) v = r.f64();
    for (double& v : m.sigma3_rad) v = r.f64();
    m.residual_rms = r.f64();
    m.meas_noise = r.f64();
    m.duration_s = r.f64();
    for (double& v : m.worst_err_deg) v = r.f64();
    m.tuner_adjustments = r.u64();
    r.expect_end();
    return m;
}

std::vector<std::uint8_t> encode_done(const DoneMessage& m) {
    util::ByteWriter w;
    w.u32(m.jobs);
    w.u32(m.within_envelope);
    w.f64(m.wall_s);
    w.u64(0);
    return finish(w, kDoneSize, "Done");
}

DoneMessage decode_done(util::ByteReader& r) {
    DoneMessage m;
    m.jobs = r.u32();
    m.within_envelope = r.u32();
    m.wall_s = r.f64();
    (void)r.u64();
    r.expect_end();
    return m;
}

std::vector<std::uint8_t> encode_error(const ErrorMessage& m) {
    util::ByteWriter w;
    w.u16(static_cast<std::uint16_t>(m.code));
    w.u16(0);
    w.u32(0);
    std::string msg = m.message;
    if (msg.size() >= kErrorMessageWidth) {
        msg.resize(kErrorMessageWidth - 1);
    }
    w.fixed_str(msg, kErrorMessageWidth);
    return finish(w, kErrorSize, "Error");
}

ErrorMessage decode_error(util::ByteReader& r) {
    ErrorMessage m;
    const std::uint16_t code = r.u16();
    if (code < static_cast<std::uint16_t>(ErrorCode::kBadMagic) ||
        code > static_cast<std::uint16_t>(ErrorCode::kShuttingDown)) {
        throw util::WireError("error frame: code " + std::to_string(code) +
                              " out of range");
    }
    m.code = static_cast<ErrorCode>(code);
    (void)r.u16();
    (void)r.u32();
    m.message = r.fixed_str(kErrorMessageWidth);
    r.expect_end();
    return m;
}

void write_frame(util::UnixSocket& sock, MessageType type,
                 std::uint32_t session,
                 const std::vector<std::uint8_t>& payload) {
    util::ByteWriter w;
    w.u32(kProtocolMagic);
    w.u16(kProtocolVersion);
    w.u16(static_cast<std::uint16_t>(type));
    w.u32(session);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    // One send for header + payload: a frame is never visible half-written
    // to a peer reading with read_exact.
    w.bytes(payload.data(), payload.size());
    sock.write_all(w.data().data(), w.size());
}

bool read_frame(util::UnixSocket& sock, Frame& out) {
    std::uint8_t raw[kFrameHeaderSize];
    if (!sock.read_exact(raw, sizeof raw)) return false;
    util::ByteReader r(raw, sizeof raw);
    out.header.magic = r.u32();
    out.header.version = r.u16();
    out.header.type = r.u16();
    out.header.session = r.u32();
    out.header.payload_size = r.u32();
    if (out.header.magic != kProtocolMagic) {
        char hex[16];
        std::snprintf(hex, sizeof hex, "%08x", out.header.magic);
        throw util::WireError(std::string("frame: bad magic 0x") + hex);
    }
    if (out.header.payload_size > kMaxPayloadSize) {
        throw util::WireError("frame: payload length " +
                              std::to_string(out.header.payload_size) +
                              " exceeds the " +
                              std::to_string(kMaxPayloadSize) + "-byte cap");
    }
    out.payload.resize(out.header.payload_size);
    if (out.header.payload_size > 0 &&
        !sock.read_exact(out.payload.data(), out.payload.size())) {
        throw util::SocketError("peer closed between header and payload");
    }
    return true;
}

}  // namespace ob::system
