#include "system/health_supervisor.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ob::system {

const char* health_state_name(const HealthState s) {
    switch (s) {
        case HealthState::kNominal: return "nominal";
        case HealthState::kDegraded: return "degraded";
        case HealthState::kCoasting: return "coasting";
        case HealthState::kFailed: return "failed";
    }
    return "?";
}

void HealthSupervisorConfig::validate() const {
    const auto fail = [](const std::string& what) {
        throw std::invalid_argument("HealthSupervisorConfig: " + what);
    };
    if (delivery_window == 0) fail("delivery window must be at least 1");
    if (min_window_epochs == 0) {
        fail("minimum window fill must be at least 1");
    }
    if (min_window_epochs > delivery_window) {
        fail("minimum window fill must not exceed the delivery window");
    }
    if (!(degrade_delivery_rate > 0.0 && degrade_delivery_rate <= 1.0)) {
        fail("degrade delivery rate must be in (0, 1]");
    }
    if (degrade_staleness_epochs == 0) {
        fail("degrade staleness must be at least 1 epoch");
    }
    if (coast_staleness_epochs <= degrade_staleness_epochs) {
        fail("coast staleness must exceed degrade staleness");
    }
    if (fail_staleness_epochs <= coast_staleness_epochs) {
        fail("fail staleness must exceed coast staleness");
    }
    if (alarm_confirm_epochs == 0) {
        fail("alarm confirm dwell must be at least 1 epoch");
    }
    if (recovery_epochs == 0) {
        fail("recovery streak must be at least 1 epoch");
    }
    if (coast_sigma_rate < 0.0) {
        fail("coast sigma rate must be non-negative");
    }
}

void HealthSupervisor::Channel::push(const bool delivered, const double dt_s) {
    if (count == recent.size()) {
        delivered_in_window -= recent[head];
    } else {
        ++count;
    }
    recent[head] = delivered ? 1 : 0;
    delivered_in_window += recent[head];
    head = (head + 1) % recent.size();
    if (delivered) {
        staleness_epochs = 0;
        staleness_s = 0.0;
    } else {
        ++staleness_epochs;
        staleness_s += dt_s;
    }
}

double HealthSupervisor::Channel::rate() const {
    if (count == 0) return 1.0;
    return static_cast<double>(delivered_in_window) /
           static_cast<double>(count);
}

HealthSupervisor::HealthSupervisor(const HealthSupervisorConfig& cfg)
    : cfg_((cfg.validate(), cfg)),
      dmu_(cfg.delivery_window),
      acc_(cfg.delivery_window) {}

HealthState HealthSupervisor::target_state() const {
    const std::size_t stale =
        std::max(dmu_.staleness_epochs, acc_.staleness_epochs);
    if (stale >= cfg_.fail_staleness_epochs) return HealthState::kFailed;
    if (stale >= cfg_.coast_staleness_epochs) return HealthState::kCoasting;
    if (stale >= cfg_.degrade_staleness_epochs) return HealthState::kDegraded;
    const std::size_t seen = std::min(dmu_.count, acc_.count);
    if (seen >= cfg_.min_window_epochs &&
        std::min(dmu_.rate(), acc_.rate()) < cfg_.degrade_delivery_rate) {
        return HealthState::kDegraded;
    }
    return HealthState::kNominal;
}

HealthSupervisor::Verdict HealthSupervisor::observe(const Event& e) {
    ++epochs_;
    dmu_.push(e.dmu_delivered, e.dt_s);
    acc_.push(e.acc_delivered, e.dt_s);

    Verdict v;
    const HealthState target = target_state();
    const HealthState before = state_;

    // Escalation is immediate; de-escalation only through the sustained
    // clean streak below — a degraded target never "improves" a coasting
    // state on its own.
    if (target > state_) state_ = target;
    worst_ = std::max(worst_, state_);

    // A clean epoch: both channels delivered AND no degradation criterion
    // holds. (A delivered epoch inside a still-below-threshold window is
    // not clean: the system is still demonstrably lossy.)
    const bool clean = e.dmu_delivered && e.acc_delivered &&
                       target == HealthState::kNominal;
    if (state_ != HealthState::kNominal) {
        if (clean) {
            ++recovery_streak_;
            if (recovery_streak_ >= cfg_.recovery_epochs) {
                state_ = HealthState::kNominal;
                recovery_streak_ = 0;
                degraded_streak_ = 0;
                ++recoveries_;
                v.recovered = true;
                if (resume_t_ >= 0.0) {
                    last_recovery_s_ = e.t - resume_t_;
                    resume_t_ = -1.0;
                }
            }
        } else {
            recovery_streak_ = 0;
        }
    }

    // Latched alarm: coasting/failed immediately, degraded after the
    // confirm dwell (transient single-epoch dips never trip it).
    if (state_ == HealthState::kDegraded) {
        ++degraded_streak_;
    } else if (state_ == HealthState::kNominal) {
        degraded_streak_ = 0;
    }
    if (!alarmed_ && (state_ >= HealthState::kCoasting ||
                      degraded_streak_ >= cfg_.alarm_confirm_epochs)) {
        alarmed_ = true;
        alarm_t_ = e.t;
    }

    // Coast accounting. The entry epoch folds in the full staleness
    // accumulated while the state machine was still counting toward the
    // threshold, so covariance growth is continuous with the real time
    // spent blind rather than starting from zero at the trip point.
    const bool coasting_now = state_ >= HealthState::kCoasting;
    const bool was_coasting = before >= HealthState::kCoasting;
    if (coasting_now && !was_coasting) {
        v.entered_coast = true;
        in_coast_episode_ = true;
        v.coast_dt_s = std::max(dmu_.staleness_s, acc_.staleness_s);
    } else if (coasting_now && !e.fused) {
        v.coast_dt_s = e.dt_s;
    }
    coast_s_ += v.coast_dt_s;

    // Resume: the first fused update after a coast episode. Recovery
    // bookkeeping (re-convergence timing) starts here even though the
    // latched state stays coasting until the clean streak completes.
    if (in_coast_episode_ && e.fused) {
        in_coast_episode_ = false;
        v.resumed = true;
        resume_t_ = e.t;
    }

    v.state = state_;
    return v;
}

}  // namespace ob::system
