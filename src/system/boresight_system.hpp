#pragma once

#include <array>
#include <memory>
#include <optional>

#include "comm/bridge.hpp"
#include "comm/can.hpp"
#include "comm/codec.hpp"
#include "comm/uart.hpp"
#include "core/adaptive_tuner.hpp"
#include "core/boresight_ekf.hpp"
#include "math/rotation.hpp"
#include "sim/scenario.hpp"
#include "system/health_supervisor.hpp"
#include "system/sabre_runner.hpp"
#include "util/stats.hpp"

namespace ob::system {

/// The complete Figure 2 system with real transport:
///
///   IMU --CAN frames--> CanBus --bridge--> RS232 --deframe--> DmuCodec
///   ACC ----------------duty-cycle packets over RS232--------> Adxl
///                                 |
///                                 v
///            fusion processor (native EKF or Sabre firmware)
///                                 |
///                     roll/pitch/yaw + 3-sigma out
///
/// Unlike the transport-free `run_experiment` harness, every sensor sample
/// crosses the byte-level links with realistic latency, and the fusion
/// step runs only when both halves of an epoch have fully arrived —
/// exactly the situation the deployed prototype faced.
class BoresightSystem {
public:
    enum class Processor {
        kNative,  ///< double-precision EKF on the host (fabric reference)
        kSabre,   ///< generated firmware on the Sabre ISS + softfloat FPU
    };

    struct Config {
        Processor processor = Processor::kNative;
        core::BoresightConfig filter{};
        SabreFusionSystem::Config sabre{};
        double can_bitrate = 500000.0;
        double uart_baud = 115200.0;
        comm::UartFaults dmu_link_faults{};
        comm::UartFaults acc_link_faults{};
        comm::CanFaults can_faults{};  ///< burst loss on the DMU CAN bus
        /// Seed base for the serial links' counter-keyed fault streams.
        /// 0 keeps the legacy fixed per-link seeds, preserving every
        /// pre-campaign run bit for bit; fault campaigns derive a nonzero
        /// base per realization so fault draws vary across the seed axis.
        std::uint64_t link_fault_seed = 0;
        bool use_adaptive_tuner = false;
        core::AdaptiveTunerConfig tuner{};
        math::Vec2 calibrated_bias{};  ///< subtracted from ACC readings
        /// Residual-health monitor (always on; the campaign's detector):
        /// sliding window per axis, latched-alarm rate and the minimum
        /// axis-sample count before the alarm may trip.
        std::size_t monitor_window = 2000;
        double monitor_alarm_rate = core::ResidualMonitor::kDefaultAlarmRate;
        std::size_t monitor_min_samples = 200;
        /// Liveness watchdogs + latched health state machine + coast-mode
        /// covariance growth (always on; the residual monitor's complement
        /// for the starvation regimes where no residuals arrive at all).
        /// The defaults never trip on an un-faulted run, so arming the
        /// supervisor perturbs nothing.
        HealthSupervisorConfig supervisor{};

        /// Throws std::invalid_argument naming the first bad field. Called
        /// by the BoresightSystem constructor: a zero bitrate or a
        /// non-positive filter noise would otherwise only show up as NaN
        /// estimates thousands of epochs later.
        void validate() const;
    };

    explicit BoresightSystem(const Config& cfg);

    /// Feed one scenario epoch into the transport at its timestamp; runs
    /// the bus/links forward and the fusion for every completed pair. The
    /// trace supplies the wire-format constants (ADXL duty-cycle law,
    /// sample rate); the arguments carry one realization's sensor pair —
    /// the shape Scenario::next_wire produces.
    void feed(const sim::ScenarioTrace& trace, double t,
              const comm::DmuSample& dmu, const comm::AdxlTiming& adxl);

    /// Full-Step overloads (the truth fields ride along unused).
    void feed(const sim::ScenarioTrace& trace,
              const sim::Scenario::Step& step) {
        feed(trace, step.t, step.dmu, step.adxl);
    }
    void feed(const sim::Scenario& sc, const sim::Scenario::Step& step) {
        feed(sc.trace(), step.t, step.dmu, step.adxl);
    }

    struct Status {
        math::EulerAngles estimate{};
        math::Vec3 sigma3{};
        std::size_t updates = 0;
        std::size_t dmu_frames_lost = 0;
        std::size_t acc_packets_lost = 0;
        double worst_transport_latency = 0.0;  ///< seconds, CAN queueing
        double measurement_noise = 0.0;        ///< current filter R sigma
        double residual_rms = 0.0;  ///< innovation RMS over both axes (m/s²)
        std::size_t tuner_adjustments = 0;  ///< adaptive R changes applied
        // Residual-health monitor outputs (the fault-campaign detector).
        bool residual_flagged = false;  ///< latched 3-sigma-rate alarm
        double residual_flag_s = -1.0;  ///< receive time of the latch; -1 never
        double residual_windowed_rate = 0.0;  ///< exceedance rate, window
        std::size_t residual_exceedances = 0;  ///< lifetime axis exceedances
        // Health-supervisor outputs (the second, residual-free detector:
        // liveness watchdogs + latched state machine + coast accounting).
        HealthState health = HealthState::kNominal;  ///< current state
        HealthState worst_health = HealthState::kNominal;  ///< lifetime worst
        bool supervisor_alarmed = false;  ///< latched liveness alarm
        double supervisor_alarm_s = -1.0;  ///< latch receive time; -1 never
        double dmu_delivery_rate = 1.0;  ///< windowed per-link delivery rate
        double acc_delivery_rate = 1.0;
        double coast_s = 0.0;  ///< lifetime seconds spent coasting
        std::size_t recoveries = 0;  ///< completed post-episode recoveries
        /// Resume→recovered time of the most recent post-coast recovery
        /// (the re-convergence report); -1 until one completes.
        double reconvergence_s = -1.0;
        /// ACC packets that passed the checksum but failed the physical
        /// duty-cycle plausibility gate (counted since construction).
        std::size_t acc_implausible = 0;
    };
    [[nodiscard]] Status status() const;

    /// Direct access for advanced inspection.
    [[nodiscard]] const core::BoresightEkf* native_filter() const {
        return native_ ? native_.get() : nullptr;
    }
    [[nodiscard]] SabreFusionSystem* sabre_system() {
        return sabre_ ? sabre_.get() : nullptr;
    }
    [[nodiscard]] const HealthSupervisor& supervisor() const {
        return supervisor_;
    }

    /// Swap both serial links' fault models mid-run (outage/recovery
    /// drills). The links' fault draws are counter-keyed on byte index, so
    /// the swap is position-independent: the same epochs fault whether the
    /// model was set at construction or here.
    void set_link_faults(const comm::UartFaults& dmu,
                         const comm::UartFaults& acc);

private:
    void process_pair(const comm::DmuSample& dmu, const comm::AdxlTiming& acc);

    Config cfg_;
    const comm::DmuScale dmu_scale_{};
    comm::AdxlConfig adxl_{};

    // Transport chain.
    comm::CanBus can_;
    comm::UartLink dmu_uart_;
    comm::UartLink acc_uart_;
    comm::CanSerialBridge bridge_;
    comm::CanSerialDeframer deframer_;
    comm::DmuCodec dmu_codec_;
    comm::AdxlDeserializer acc_deser_;

    /// Per-epoch scratch: encoded frames/packets are built in place here so
    /// steady-state `feed` touches no heap.
    struct Scratch {
        comm::CanFrame gyro_frame;
        comm::CanFrame accel_frame;
        std::array<std::uint8_t, comm::kAdxlPacketSize> acc_packet{};
    };
    Scratch scratch_;
    std::size_t implausible_acc_ = 0;
    std::optional<comm::DmuSample> pending_dmu_;
    std::optional<comm::AdxlTiming> pending_acc_;
    std::uint8_t acc_seq_ = 0;
    std::size_t sent_epochs_ = 0;
    /// Per-epoch liveness flags the drain sinks raise for the supervisor:
    /// a decoded DMU sample / plausibility-clean ACC timing landed during
    /// this feed call.
    bool epoch_dmu_delivered_ = false;
    bool epoch_acc_delivered_ = false;

    // Fusion processors.
    std::unique_ptr<core::BoresightEkf> native_;
    std::unique_ptr<SabreFusionSystem> sabre_;
    core::AdaptiveNoiseTuner tuner_;
    core::ResidualMonitor monitor_;  ///< always-on health detector
    double monitor_flag_t_ = -1.0;   ///< receive time when the alarm latched
    /// The monitor re-arms (reset) when the supervisor declares recovery;
    /// this latch keeps Status::residual_flagged true for the system's
    /// life once the alarm has tripped, re-arm or not.
    bool monitor_latched_ = false;
    HealthSupervisor supervisor_;
    /// Host-side accumulated coast variance (rad²) folded into the
    /// reported 3σ on the Sabre path, where the covariance lives inside
    /// the firmware; cleared when the supervisor declares recovery. The
    /// native path grows the EKF covariance directly instead.
    double coast_var_ = 0.0;
    util::RunningStats residual_stats_;  ///< innovation samples, both axes
    std::size_t updates_ = 0;
    /// True when a nonzero calibrated bias must be folded into the raw ACC
    /// timings before the Sabre firmware sees them (the native EKF path
    /// subtracts the bias on the decoded measurement directly).
    bool apply_acc_bias_ = false;
};

}  // namespace ob::system
