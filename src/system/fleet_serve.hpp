#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "system/fleet.hpp"
#include "system/fleet_protocol.hpp"
#include "util/socket.hpp"

namespace ob::system {

/// Expand a FleetRequest into the FleetJob batch the server will run, in
/// response-stream order (processor-major for kProcessorBoth, library
/// order for scenario "*"). Exposed so a client-side test can run the
/// identical batch locally and compare the streamed doubles bitwise.
/// Throws std::invalid_argument on a bad request (unknown scenario, zero
/// seeds after defaulting, out-of-range knobs).
[[nodiscard]] std::vector<FleetJob> expand_fleet_request(
    const FleetRequest& req);

/// Expand a StudyRequest into the built-in §11 retune panel's jobs, one
/// per (variant × processor) cell, and the label streamed for cell `i`
/// ("<scenario>/<variant>"). Same contract as expand_fleet_request.
struct StudyExpansion {
    std::vector<FleetJob> jobs;
    std::vector<std::string> labels;  ///< one per job, <= 31 bytes each
};
[[nodiscard]] StudyExpansion expand_study_request(const StudyRequest& req);

/// Reduce one finished job to its wire frame. The doubles land as the
/// exact bit patterns of the FleetResult fields.
[[nodiscard]] JobResultMessage make_job_result(std::uint32_t index,
                                               std::uint32_t count,
                                               const std::string& label,
                                               const FleetJob& job,
                                               const FleetResult& r);

/// The fleet_serve daemon: accepts sessions on an AF_UNIX stream socket
/// and executes fleet / tuning-study requests on a FleetRunner, streaming
/// one kJobResult frame per job as it completes (docs/PROTOCOL.md has the
/// wire contract). One thread per connection; the runner is stateless, so
/// concurrent sessions simply share the machine. Results a client receives
/// are bitwise the results a local FleetRunner::run of the same expansion
/// would produce — the daemon adds transport, never arithmetic.
class FleetServer {
public:
    struct Config {
        std::string socket_path;  ///< AF_UNIX path to bind
        FleetRunner::Config runner{};
        /// Accept-poll period: the latency bound on noticing
        /// request_stop() while idle.
        int accept_poll_ms = 100;
    };

    explicit FleetServer(Config cfg);
    ~FleetServer();

    FleetServer(const FleetServer&) = delete;
    FleetServer& operator=(const FleetServer&) = delete;

    /// Bind the socket and serve until request_stop() (or a kShutdown
    /// frame) — then drain: join every connection thread before
    /// returning. Throws util::SocketError when the bind fails.
    void serve();

    /// Ask the serve loop to exit. Safe from any thread and from signal
    /// context-adjacent code (it only stores an atomic).
    void request_stop() { stop_.store(true, std::memory_order_relaxed); }

    [[nodiscard]] bool stopping() const {
        return stop_.load(std::memory_order_relaxed);
    }
    /// True once serve() has the socket bound and is accepting.
    [[nodiscard]] bool listening() const {
        return listening_.load(std::memory_order_acquire);
    }
    [[nodiscard]] const std::string& socket_path() const {
        return cfg_.socket_path;
    }
    /// Sessions granted so far (HelloOk frames sent).
    [[nodiscard]] std::uint64_t sessions_served() const {
        return next_session_.load(std::memory_order_relaxed) - 1;
    }

private:
    void handle_connection(util::UnixSocket sock);
    void send_error(util::UnixSocket& sock, std::uint32_t session,
                    ErrorCode code, const std::string& message);
    /// Run an expanded batch job by job, streaming a kJobResult per job
    /// and a kDone summary. Returns false when the connection should end.
    bool run_streaming(util::UnixSocket& sock, std::uint32_t session,
                       const std::vector<FleetJob>& jobs,
                       const std::vector<std::string>& labels);

    Config cfg_;
    FleetRunner runner_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> listening_{false};
    std::atomic<std::uint32_t> next_session_{1};
};

}  // namespace ob::system
