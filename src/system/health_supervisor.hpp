#pragma once

#include <cstddef>
#include <vector>

namespace ob::system {

/// Latched health taxonomy of the runtime defense layer, ordered by
/// severity so transitions can compare states directly.
///
///   kNominal  — both channels delivering at cadence, residuals healthy;
///   kDegraded — a channel's windowed delivery rate fell below threshold
///               or short staleness accumulated (data still flowing);
///   kCoasting — the measurement feed stalled outright: the estimate is
///               propagating without corrections and the reported 3-sigma
///               must grow with the stale time (honest coast mode);
///   kFailed   — the stall outlasted the fail threshold; the estimate is
///               untrustworthy until the link returns and re-converges.
///
/// Escalation is immediate; de-escalation goes straight back to kNominal
/// and only after a sustained streak of clean epochs (hysteresis) — a
/// system is "whatever bad it was" until proven healthy again.
enum class HealthState { kNominal = 0, kDegraded = 1, kCoasting = 2, kFailed = 3 };

[[nodiscard]] const char* health_state_name(HealthState s);

/// Knobs of the liveness watchdogs and the state machine. Thresholds are
/// counted in epochs (the expected sensor cadence is known per run from
/// the ScenarioTrace sample rate, so an epoch IS the unit of expected
/// delivery); times derive from the per-epoch dt the caller supplies.
struct HealthSupervisorConfig {
    /// Sliding window (epochs) of the per-channel delivery-rate tracker.
    std::size_t delivery_window = 256;
    /// Epochs observed before the windowed rate may judge degradation
    /// (a half-filled window right after start would read artificially).
    std::size_t min_window_epochs = 64;
    /// Windowed delivery rate below which a channel counts as degraded.
    double degrade_delivery_rate = 0.90;
    /// Consecutive undelivered epochs on a channel before kDegraded /
    /// kCoasting / kFailed. Strictly increasing by construction.
    std::size_t degrade_staleness_epochs = 8;
    std::size_t coast_staleness_epochs = 25;
    std::size_t fail_staleness_epochs = 400;
    /// kDegraded dwell (epochs) before the latched alarm trips; reaching
    /// kCoasting or kFailed latches it immediately.
    std::size_t alarm_confirm_epochs = 16;
    /// Consecutive clean epochs (both channels delivered, no degradation
    /// criterion met) before the state returns to kNominal.
    std::size_t recovery_epochs = 50;
    /// Coast-mode covariance growth: angle 1-sigma random-walk intensity
    /// (rad/sqrt(s)) applied to the filter while updates stall. 0 keeps
    /// the watchdogs without the growth.
    double coast_sigma_rate = 8.7e-4;  // ~0.05 deg/sqrt(s)

    /// Throws std::invalid_argument naming the first bad field.
    void validate() const;
};

/// Always-on runtime defense layer: per-channel liveness watchdogs over
/// the expected epoch cadence, a latched health state machine with
/// hysteresis and recovery, and the coast-mode hook that tells the owner
/// how much stale time to fold into the covariance.
///
/// The supervisor is a pure function of the epoch-event sequence — no
/// wall clock, no allocation after construction — so results that embed
/// its verdicts stay bitwise scheduling-independent, and `observe` can
/// sit on the zero-allocation fusion hot path.
class HealthSupervisor {
public:
    explicit HealthSupervisor(const HealthSupervisorConfig& cfg = {});

    /// One transport epoch as the watchdogs see it: the receive-side
    /// timestamp, the epoch period, whether each channel delivered a
    /// decoded sample this epoch, and whether a fusion update ran.
    struct Event {
        double t = 0.0;
        double dt_s = 0.0;
        bool dmu_delivered = false;
        bool acc_delivered = false;
        bool fused = false;
    };

    /// What the owner must act on this epoch.
    struct Verdict {
        HealthState state = HealthState::kNominal;
        /// Stale time (s) to fold into the covariance this epoch; positive
        /// only while coasting. The first coast epoch carries the full
        /// staleness accumulated before the threshold tripped, so the
        /// growth is continuous with the actual time spent blind.
        double coast_dt_s = 0.0;
        bool entered_coast = false;  ///< coast episode began this epoch
        /// First fused update after a coast episode — recovery bookkeeping
        /// (re-convergence timing) starts here.
        bool resumed = false;
        /// Sustained-clean return to kNominal: the owner should re-arm its
        /// residual monitor so the detection window starts fresh.
        bool recovered = false;
    };

    Verdict observe(const Event& e);

    [[nodiscard]] HealthState state() const { return state_; }
    /// Lifetime-worst state reached (for reports; never de-escalates).
    [[nodiscard]] HealthState worst_state() const { return worst_; }
    /// Latched alarm: kCoasting/kFailed reached, or kDegraded persisted
    /// for alarm_confirm_epochs. Stays true for the supervisor's life.
    [[nodiscard]] bool alarmed() const { return alarmed_; }
    /// Receive time when the alarm latched; -1 when it never did.
    [[nodiscard]] double alarm_s() const { return alarm_t_; }

    [[nodiscard]] double dmu_delivery_rate() const { return dmu_.rate(); }
    [[nodiscard]] double acc_delivery_rate() const { return acc_.rate(); }
    [[nodiscard]] double dmu_staleness_s() const { return dmu_.staleness_s; }
    [[nodiscard]] double acc_staleness_s() const { return acc_.staleness_s; }

    [[nodiscard]] std::size_t epochs() const { return epochs_; }
    /// Lifetime seconds spent coasting (covariance-growth time).
    [[nodiscard]] double coast_s() const { return coast_s_; }
    /// Completed recoveries (state returned to kNominal after an episode).
    [[nodiscard]] std::size_t recoveries() const { return recoveries_; }
    /// Re-convergence time of the most recent recovery: seconds from the
    /// first fused update after a coast episode to the sustained-clean
    /// return to kNominal; -1 until a post-coast recovery completes.
    [[nodiscard]] double last_recovery_s() const { return last_recovery_s_; }

    [[nodiscard]] const HealthSupervisorConfig& config() const { return cfg_; }

private:
    /// Per-link liveness: a preallocated delivery-bit ring (windowed rate)
    /// plus consecutive-staleness counters.
    struct Channel {
        explicit Channel(std::size_t window) : recent(window, 0) {}
        std::vector<unsigned char> recent;
        std::size_t head = 0;
        std::size_t count = 0;
        std::size_t delivered_in_window = 0;
        std::size_t staleness_epochs = 0;
        double staleness_s = 0.0;

        void push(bool delivered, double dt_s);
        /// Windowed delivery rate; 1.0 before any epoch is observed (no
        /// evidence of a problem is not a problem).
        [[nodiscard]] double rate() const;
    };

    [[nodiscard]] HealthState target_state() const;

    HealthSupervisorConfig cfg_;
    Channel dmu_;
    Channel acc_;
    HealthState state_ = HealthState::kNominal;
    HealthState worst_ = HealthState::kNominal;
    bool alarmed_ = false;
    double alarm_t_ = -1.0;
    std::size_t degraded_streak_ = 0;
    std::size_t recovery_streak_ = 0;
    bool in_coast_episode_ = false;  ///< cleared by the post-coast resume
    std::size_t epochs_ = 0;
    double coast_s_ = 0.0;
    std::size_t recoveries_ = 0;
    double resume_t_ = -1.0;  ///< receive time of the post-coast resume
    double last_recovery_s_ = -1.0;
};

}  // namespace ob::system
