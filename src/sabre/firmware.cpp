#include "sabre/firmware.hpp"

#include <sstream>

#include "sabre/peripherals.hpp"

namespace ob::sabre {

namespace {

/// Tiny assembly emitter: the "compiler backend" for the firmware. r1
/// permanently holds the peripheral base; r2/r3 are scratch.
class Emitter {
public:
    explicit Emitter(const FirmwareLayout& l) : l_(l) {}

    void raw(const std::string& line) { out_ << line << '\n'; }
    void ins(const std::string& text) { out_ << "  " << text << '\n'; }
    void label(const std::string& name) { out_ << name << ":\n"; }

    [[nodiscard]] std::string fresh_label(const std::string& stem) {
        return stem + "_" + std::to_string(counter_++);
    }

    /// dst_float = a_float OP b_float through the FPU peripheral.
    void fpu2(std::uint32_t dst, std::uint32_t a, std::uint32_t b,
              FpuPeripheral::Cmd cmd) {
        load_to_fpu_a(a);
        ins("lw r2, " + std::to_string(b) + "(zero)");
        ins("sw r2, " + off(periph::kFpu + 0x4) + "(r1)");
        exec_and_store(dst, cmd);
    }

    /// dst_float = OP(a_float) (sqrt/neg/abs/f2i/i2f).
    void fpu1(std::uint32_t dst, std::uint32_t a, FpuPeripheral::Cmd cmd) {
        load_to_fpu_a(a);
        exec_and_store(dst, cmd);
    }

    void fadd(std::uint32_t d, std::uint32_t a, std::uint32_t b) {
        fpu2(d, a, b, FpuPeripheral::kAdd);
    }
    void fsub(std::uint32_t d, std::uint32_t a, std::uint32_t b) {
        fpu2(d, a, b, FpuPeripheral::kSub);
    }
    void fmul(std::uint32_t d, std::uint32_t a, std::uint32_t b) {
        fpu2(d, a, b, FpuPeripheral::kMul);
    }
    void fdiv(std::uint32_t d, std::uint32_t a, std::uint32_t b) {
        fpu2(d, a, b, FpuPeripheral::kDiv);
    }

    /// dst_float = float(peripheral register at periph_offset), i.e. read
    /// a raw integer register and convert via I2F.
    void int_reg_to_float(std::uint32_t dst, std::uint32_t periph_offset) {
        ins("lw r2, " + off(periph_offset) + "(r1)");
        ins("sw r2, " + off(periph::kFpu + 0x0) + "(r1)");
        exec_and_store(dst, FpuPeripheral::kI2F);
    }

    /// Publish float at `src` as Q16.16 into control register `reg_index`.
    void float_to_control_q16(std::uint32_t src, std::uint32_t reg_index) {
        fmul(l_.tmp, src, l_.fix_one);
        load_to_fpu_a(l_.tmp);
        ins("addi r2, zero, " + std::to_string(FpuPeripheral::kF2I));
        ins("sw r2, " + off(periph::kFpu + 0x8) + "(r1)");
        ins("lw r2, " + off(periph::kFpu + 0xC) + "(r1)");
        ins("sw r2, " + off(periph::kControl + 4 * reg_index) + "(r1)");
    }

    [[nodiscard]] std::string source() const { return out_.str(); }

    [[nodiscard]] const FirmwareLayout& layout() const { return l_; }

private:
    [[nodiscard]] static std::string off(std::uint32_t v) {
        return std::to_string(v);
    }

    void load_to_fpu_a(std::uint32_t a) {
        ins("lw r2, " + std::to_string(a) + "(zero)");
        ins("sw r2, " + off(periph::kFpu + 0x0) + "(r1)");
    }

    void exec_and_store(std::uint32_t dst, FpuPeripheral::Cmd cmd) {
        ins("addi r2, zero, " + std::to_string(static_cast<int>(cmd)));
        ins("sw r2, " + off(periph::kFpu + 0x8) + "(r1)");
        ins("lw r2, " + off(periph::kFpu + 0xC) + "(r1)");
        ins("sw r2, " + std::to_string(dst) + "(zero)");
    }

    const FirmwareLayout& l_;
    std::ostringstream out_;
    int counter_ = 0;
};

}  // namespace

std::string boresight_firmware_source(const FirmwareLayout& l) {
    Emitter e(l);
    const auto fx = [&](int i) { return l.x + 4u * static_cast<unsigned>(i); };
    const auto fp = [&](int r, int c) {
        return l.p + 4u * static_cast<unsigned>(3 * r + c);
    };
    const auto ff = [&](int i) { return l.f + 4u * static_cast<unsigned>(i); };
    const auto fz = [&](int i) { return l.z + 4u * static_cast<unsigned>(i); };
    const auto fzp = [&](int i) { return l.zp + 4u * static_cast<unsigned>(i); };
    const auto fpht = [&](int r, int c) {
        return l.pht + 4u * static_cast<unsigned>(2 * r + c);
    };
    const auto fs = [&](int r, int c) {
        return l.s + 4u * static_cast<unsigned>(2 * r + c);
    };
    const auto fsinv = [&](int r, int c) {
        return l.sinv + 4u * static_cast<unsigned>(2 * r + c);
    };
    const auto fk = [&](int r, int c) {
        return l.k + 4u * static_cast<unsigned>(2 * r + c);
    };
    const auto fnu = [&](int i) { return l.nu + 4u * static_cast<unsigned>(i); };
    const auto fnewp = [&](int r, int c) {
        return l.newp + 4u * static_cast<unsigned>(3 * r + c);
    };
    const std::uint32_t t0 = l.tmp, t1 = l.tmp + 4, t2 = l.tmp + 8,
                        t3 = l.tmp + 12;
    const std::uint32_t nf2 = l.nf, nf0 = l.nf + 4;

    e.raw("; Sabre-32 boresight fusion firmware (generated)");
    e.raw("; r1 = peripheral base; r2/r3 scratch");
    e.ins("lui r1, 0x20000        ; 0x80000000 peripheral window");

    e.label("main_loop");
    // Wait for a DMU sample.
    e.label("wait_dmu");
    e.ins("lw r2, " + std::to_string(periph::kDmuPort) + "(r1)");
    e.ins("beq r2, zero, wait_dmu");
    // Wait for an ACC sample.
    e.label("wait_acc");
    e.ins("lw r2, " + std::to_string(periph::kAccPort) + "(r1)");
    e.ins("beq r2, zero, wait_acc");

    // Latch the host-writable measurement-noise register (float bits of
    // the R variance) into the Kalman R cell: the adaptive retune loop
    // takes effect from this update on. With the host never writing, the
    // register still holds the boot value, so the math is bit-identical
    // to the fixed-R firmware.
    e.ins("lw r2, " + std::to_string(periph::kControl +
                                     4 * ControlPeripheral::kMeasNoiseVar) +
          "(r1)");
    e.ins("sw r2, " + std::to_string(l.r) + "(zero)");

    // --- Decode DMU accelerometers to SI floats: F[i] = raw * accel_lsb.
    for (int i = 0; i < 3; ++i) {
        e.int_reg_to_float(t0, periph::kDmuPort + 16 + 4u * static_cast<unsigned>(i));
        e.fmul(ff(i), t0, l.accel_lsb);
    }
    e.ins("sw zero, " + std::to_string(periph::kDmuPort) + "(r1)  ; pop");

    // --- Decode ACC duty cycles: Z[i] = (t1/t2 - 0.5) * duty_scale.
    e.int_reg_to_float(t1, periph::kAccPort + 12);  // t2 (shared)
    for (int i = 0; i < 2; ++i) {
        e.int_reg_to_float(t0, periph::kAccPort + 4 + 4u * static_cast<unsigned>(i));
        e.fdiv(t2, t0, t1);
        e.fsub(t2, t2, l.half);
        e.fmul(fz(i), t2, l.duty_scale);
    }
    e.ins("sw zero, " + std::to_string(periph::kAccPort) + "(r1)  ; pop");

    // --- Kalman predict: P[ii] += Q.
    for (int i = 0; i < 3; ++i) e.fadd(fp(i, i), fp(i, i), l.q);

    // --- Negated force components used by H.
    e.fpu1(nf2, ff(2), FpuPeripheral::kNeg);
    e.fpu1(nf0, ff(0), FpuPeripheral::kNeg);

    // --- Predicted measurement (small-angle model):
    //   zp0 = f0 - f2*x1 + f1*x2
    //   zp1 = f1 + f2*x0 - f0*x2
    e.fmul(t0, ff(2), fx(1));
    e.fsub(t2, ff(0), t0);
    e.fmul(t0, ff(1), fx(2));
    e.fadd(fzp(0), t2, t0);
    e.fmul(t0, ff(2), fx(0));
    e.fadd(t2, ff(1), t0);
    e.fmul(t0, ff(0), fx(2));
    e.fsub(fzp(1), t2, t0);

    // --- PHT = P * H^T with H = [[0,-f2,f1],[f2,0,-f0]].
    for (int i = 0; i < 3; ++i) {
        e.fmul(t0, fp(i, 1), nf2);
        e.fmul(t1, fp(i, 2), ff(1));
        e.fadd(fpht(i, 0), t0, t1);
        e.fmul(t0, fp(i, 0), ff(2));
        e.fmul(t1, fp(i, 2), nf0);
        e.fadd(fpht(i, 1), t0, t1);
    }

    // --- S = H*PHT + R*I.
    e.fmul(t0, nf2, fpht(1, 0));
    e.fmul(t1, ff(1), fpht(2, 0));
    e.fadd(t2, t0, t1);
    e.fadd(fs(0, 0), t2, l.r);
    e.fmul(t0, nf2, fpht(1, 1));
    e.fmul(t1, ff(1), fpht(2, 1));
    e.fadd(fs(0, 1), t0, t1);
    e.fmul(t0, ff(2), fpht(0, 0));
    e.fmul(t1, nf0, fpht(2, 0));
    e.fadd(fs(1, 0), t0, t1);
    e.fmul(t0, ff(2), fpht(0, 1));
    e.fmul(t1, nf0, fpht(2, 1));
    e.fadd(t2, t0, t1);
    e.fadd(fs(1, 1), t2, l.r);

    // --- 2x2 inverse: det = s00*s11 - s01*s10.
    e.fmul(t0, fs(0, 0), fs(1, 1));
    e.fmul(t1, fs(0, 1), fs(1, 0));
    e.fsub(t3, t0, t1);  // det
    e.fdiv(fsinv(0, 0), fs(1, 1), t3);
    e.fdiv(fsinv(1, 1), fs(0, 0), t3);
    e.fdiv(t0, fs(0, 1), t3);
    e.fpu1(fsinv(0, 1), t0, FpuPeripheral::kNeg);
    e.fdiv(t0, fs(1, 0), t3);
    e.fpu1(fsinv(1, 0), t0, FpuPeripheral::kNeg);

    // --- K = PHT * SINV.
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 2; ++j) {
            e.fmul(t0, fpht(i, 0), fsinv(0, j));
            e.fmul(t1, fpht(i, 1), fsinv(1, j));
            e.fadd(fk(i, j), t0, t1);
        }
    }

    // --- Innovation nu = z - zp; publish residual to control registers.
    e.fsub(fnu(0), fz(0), fzp(0));
    e.fsub(fnu(1), fz(1), fzp(1));
    e.float_to_control_q16(fnu(0), ControlPeripheral::kResidualX);
    e.float_to_control_q16(fnu(1), ControlPeripheral::kResidualY);

    // --- Innovation 3-sigma envelope (3*sqrt(S_ii)) for the host-side
    // adaptive tuner: the exceedance statistic the §11 retune watches.
    e.fpu1(t0, fs(0, 0), FpuPeripheral::kSqrt);
    e.fmul(t0, t0, l.three);
    e.float_to_control_q16(t0, ControlPeripheral::kInnovSigma3X);
    e.fpu1(t0, fs(1, 1), FpuPeripheral::kSqrt);
    e.fmul(t0, t0, l.three);
    e.float_to_control_q16(t0, ControlPeripheral::kInnovSigma3Y);

    // --- State update x += K*nu.
    for (int i = 0; i < 3; ++i) {
        e.fmul(t0, fk(i, 0), fnu(0));
        e.fmul(t1, fk(i, 1), fnu(1));
        e.fadd(t2, t0, t1);
        e.fadd(fx(i), fx(i), t2);
    }

    // --- Covariance update P -= K * PHT^T (simple form; the fabric-side
    // double-precision reference uses Joseph form, see DESIGN.md).
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            e.fmul(t0, fk(i, 0), fpht(j, 0));
            e.fmul(t1, fk(i, 1), fpht(j, 1));
            e.fadd(t2, t0, t1);
            e.fsub(fnewp(i, j), fp(i, j), t2);
        }
    }
    // Symmetrize: P = (newP + newP^T)/2.
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            e.fadd(t0, fnewp(i, j), fnewp(j, i));
            e.fmul(fp(i, j), t0, l.half);
        }
    }

    // --- Publish estimates and 3-sigma to the control block (Q16.16).
    e.float_to_control_q16(fx(0), ControlPeripheral::kRoll);
    e.float_to_control_q16(fx(1), ControlPeripheral::kPitch);
    e.float_to_control_q16(fx(2), ControlPeripheral::kYaw);
    for (int i = 0; i < 3; ++i) {
        e.fpu1(t0, fp(i, i), FpuPeripheral::kSqrt);
        e.fmul(t0, t0, l.three);
        e.float_to_control_q16(
            t0, ControlPeripheral::kRollSigma3 + static_cast<std::uint32_t>(i));
    }

    // Status = 1, update counter += 1, heartbeat += 1.
    e.ins("addi r2, zero, 1");
    e.ins("sw r2, " + std::to_string(periph::kControl +
                                      4 * ControlPeripheral::kStatus) + "(r1)");
    e.ins("lw r2, " + std::to_string(periph::kControl +
                                      4 * ControlPeripheral::kUpdateCount) +
          "(r1)");
    e.ins("addi r2, r2, 1");
    e.ins("sw r2, " + std::to_string(periph::kControl +
                                      4 * ControlPeripheral::kUpdateCount) +
          "(r1)");
    e.ins("j main_loop");

    return e.source();
}

std::shared_ptr<const DecodedProgram> boresight_firmware_image(
    const FirmwareLayout& layout) {
    if (layout == FirmwareLayout{}) {
        // Function-local static: the one-shot assemble + predecode of the
        // production firmware is thread-safe and shared for process
        // lifetime (fleet workers construct CPUs concurrently).
        static const std::shared_ptr<const DecodedProgram> cached =
            std::make_shared<const DecodedProgram>(
                assemble(boresight_firmware_source()));
        return cached;
    }
    return std::make_shared<const DecodedProgram>(
        assemble(boresight_firmware_source(layout)));
}

}  // namespace ob::sabre
