#pragma once

#include <cstdint>
#include <string_view>

namespace ob::sabre {

// The Sabre-32 instruction set. The paper describes Sabre only as "a
// 32-bit RISC, designed in Handel-C ... Harvard architecture" with
// expandable program/data memories and memory-mapped peripherals; this is
// a concrete load/store ISA with those properties:
//
//   * 16 general registers, r0 hardwired to zero; r14 = link, r15 = stack
//   * fixed 32-bit instructions, Harvard program/data spaces
//   * program addresses are instruction indices (word-addressed)
//   * data addresses are byte addresses, word-aligned accesses only
//   * addresses with bit 31 set route to the peripheral bus
//
// Encoding (fields from the top): opcode[31:26], then
//   R-type:  rd[25:22] rs1[21:18] rs2[17:14]
//   I-type:  rd[25:22] rs1[21:18] imm18[17:0]   (ADDI..SW, LUI, JALR)
//   B-type:  rs1[25:22] rs2[21:18] imm18[17:0]  (branches, pc-relative)
//   J-type:  rd[25:22] imm22[21:0]              (JAL, pc-relative)

enum class Op : std::uint8_t {
    // R-type arithmetic/logic.
    kAdd = 0x00,
    kSub = 0x01,
    kAnd = 0x02,
    kOr = 0x03,
    kXor = 0x04,
    kSll = 0x05,
    kSrl = 0x06,
    kSra = 0x07,
    kMul = 0x08,
    kSlt = 0x09,
    kSltu = 0x0A,
    // I-type.
    kAddi = 0x10,
    kAndi = 0x11,
    kOri = 0x12,
    kXori = 0x13,
    kSlli = 0x14,
    kSrli = 0x15,
    kSrai = 0x16,
    kSlti = 0x17,
    kLui = 0x18,  ///< rd = imm18 << 14 (fills the upper bits)
    kLw = 0x19,   ///< rd = mem32[rs1 + imm]
    kSw = 0x1A,   ///< mem32[rs1 + imm] = rd
    // B-type (pc-relative, offset in instructions from pc+1).
    kBeq = 0x20,
    kBne = 0x21,
    kBlt = 0x22,
    kBge = 0x23,
    kBltu = 0x24,
    kBgeu = 0x25,
    // Jumps / system.
    kJal = 0x30,   ///< rd = pc+1; pc += 1 + imm22
    kJalr = 0x31,  ///< rd = pc+1; pc = rs1 + imm18 (absolute)
    kHalt = 0x3F,
};

[[nodiscard]] constexpr bool is_r_type(Op op) {
    return static_cast<std::uint8_t>(op) <= 0x0A;
}
[[nodiscard]] constexpr bool is_i_type(Op op) {
    const auto v = static_cast<std::uint8_t>(op);
    return (v >= 0x10 && v <= 0x1A) || op == Op::kJalr;
}
[[nodiscard]] constexpr bool is_b_type(Op op) {
    const auto v = static_cast<std::uint8_t>(op);
    return v >= 0x20 && v <= 0x25;
}
[[nodiscard]] constexpr bool is_j_type(Op op) { return op == Op::kJal; }

/// Decoded instruction. `imm` is already sign/zero-extended per the op's
/// convention (sign-extended except the logical immediates and LUI).
struct Instruction {
    Op op = Op::kHalt;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;

    friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// One predecoded program word: the exact `decode()` result plus the
/// dispatch index and cycle costs `step()` would otherwise recompute for
/// every instruction of every epoch. Built once at program load.
/// 16-byte aligned so the executor's fetch indexes the predecoded stream
/// with a single shift (a 12-byte stride costs an extra multiply on the
/// fetch's critical path) and every instruction sits in one cache line.
struct alignas(16) DecodedInst {
    Instruction ins{};         ///< fields extracted, imm sign-extended
    std::uint8_t opid = 0;     ///< raw 6-bit opcode: dispatch-table index
    std::uint8_t cost = 1;     ///< base_cycles(ins.op)
    std::uint8_t worst_cost = 1;  ///< cost + taken-branch penalty if branch
};

/// The opcode field is 6 bits, so dispatch tables have 64 slots.
inline constexpr std::size_t kOpcodeSlots = 64;

/// Encode to the 32-bit word; throws std::invalid_argument on field
/// overflow (register index > 15, immediate out of range).
[[nodiscard]] std::uint32_t encode(const Instruction& ins);

/// Decode a word; throws std::invalid_argument on an unknown opcode.
[[nodiscard]] Instruction decode(std::uint32_t word);

/// Decode one word into its cached-dispatch form (opcode id and cycle
/// costs precomputed); throws std::invalid_argument like `decode()`.
[[nodiscard]] DecodedInst predecode(std::uint32_t word);

/// Mnemonic for diagnostics/disassembly.
[[nodiscard]] std::string_view mnemonic(Op op);

/// Cycle cost model (documented in DESIGN.md; used by the ISS and the
/// performance bench).
[[nodiscard]] constexpr unsigned base_cycles(Op op) {
    switch (op) {
        case Op::kLw:
        case Op::kSw:
            return 2;
        case Op::kMul:
            return 3;
        case Op::kJal:
        case Op::kJalr:
            return 2;
        default:
            return 1;
    }
}
/// Extra cycle charged when a branch is taken.
inline constexpr unsigned kBranchTakenExtra = 1;

inline constexpr std::size_t kNumRegisters = 16;
inline constexpr std::uint8_t kLinkRegister = 14;
inline constexpr std::uint8_t kStackRegister = 15;

/// Program memory: 8 KByte of BlockRAM in the paper's Virtex-II build.
inline constexpr std::size_t kProgramWords = 2048;
/// Data memory: 64 KByte.
inline constexpr std::size_t kDataBytes = 64 * 1024;
/// Addresses with this bit set are peripheral-bus accesses.
inline constexpr std::uint32_t kPeripheralBit = 0x80000000u;

}  // namespace ob::sabre
