#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sabre/assembler.hpp"
#include "sabre/isa.hpp"
#include "sabre/peripherals.hpp"

namespace ob::sabre {

/// Runtime fault raised by the ISS (misaligned access, out-of-range
/// address, illegal instruction) — the model of a hardware bus error.
class SabreTrap : public std::runtime_error {
public:
    SabreTrap(std::uint32_t pc, const std::string& message)
        : std::runtime_error("pc=" + std::to_string(pc) + ": " + message),
          pc_(pc) {}
    [[nodiscard]] std::uint32_t pc() const { return pc_; }

private:
    std::uint32_t pc_;
};

/// Instruction-set simulator for the Sabre-32 core: Harvard memories
/// (8 KB program BlockRAM, 64 KB data), 16 registers with r0 = 0, and the
/// memory-mapped peripheral bus of Figure 6. Cycle accounting follows
/// `base_cycles` plus the taken-branch penalty.
class SabreCpu {
public:
    explicit SabreCpu(Program program);

    /// Execute one instruction; returns false once halted.
    bool step();

    /// Run until HALT or the cycle budget is exhausted; returns the number
    /// of instructions retired.
    std::size_t run(std::uint64_t max_cycles = 10'000'000);

    [[nodiscard]] bool halted() const { return halted_; }
    [[nodiscard]] std::uint32_t pc() const { return pc_; }
    [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
    [[nodiscard]] std::uint64_t instructions() const { return retired_; }

    [[nodiscard]] std::uint32_t reg(std::size_t i) const { return regs_.at(i); }
    void set_reg(std::size_t i, std::uint32_t v) {
        if (i > 0 && i < kNumRegisters) regs_[i] = v;
    }

    /// Data-memory access for host-side setup/inspection (word aligned).
    [[nodiscard]] std::uint32_t load_data(std::uint32_t addr) const;
    void store_data(std::uint32_t addr, std::uint32_t value);

    [[nodiscard]] SabreBus& bus() { return bus_; }

    /// Optional per-instruction trace hook (pc, decoded instruction).
    using TraceHook = std::function<void(std::uint32_t, const Instruction&)>;
    void set_trace(TraceHook hook) { trace_ = std::move(hook); }

private:
    [[nodiscard]] std::uint32_t mem_read(std::uint32_t addr);
    void mem_write(std::uint32_t addr, std::uint32_t value);

    std::vector<std::uint32_t> program_;
    std::array<std::uint8_t, kDataBytes> data_{};
    std::array<std::uint32_t, kNumRegisters> regs_{};
    SabreBus bus_;
    std::uint32_t pc_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t retired_ = 0;
    bool halted_ = false;
    TraceHook trace_;
};

}  // namespace ob::sabre
