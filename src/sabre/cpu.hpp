#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sabre/assembler.hpp"
#include "sabre/isa.hpp"
#include "sabre/peripherals.hpp"

namespace ob::sabre {

/// Runtime fault raised by the ISS (misaligned access, out-of-range
/// address, illegal instruction) — the model of a hardware bus error.
class SabreTrap : public std::runtime_error {
public:
    SabreTrap(std::uint32_t pc, const std::string& message)
        : std::runtime_error("pc=" + std::to_string(pc) + ": " + message),
          pc_(pc) {}
    [[nodiscard]] std::uint32_t pc() const { return pc_; }

private:
    std::uint32_t pc_;
};

/// Immutable predecoded program image: every word decoded once at load
/// into a `DecodedInst` (fields extracted, immediate sign-extended, opcode
/// id and cycle costs precomputed). Invalid words are rejected here, with
/// the offending word index, instead of surfacing as a naked decode error
/// mid-run. The image is shareable: the fleet constructs one SabreCpu per
/// scenario realization from the same firmware, and they all reference a
/// single predecode.
class DecodedProgram {
public:
    /// Throws std::invalid_argument on an oversized program or on any
    /// word that does not decode ("program word N: ...").
    explicit DecodedProgram(Program program);

    [[nodiscard]] const std::vector<std::uint32_t>& words() const {
        return words_;
    }
    [[nodiscard]] const std::vector<DecodedInst>& code() const {
        return code_;
    }
    [[nodiscard]] std::size_t size() const { return code_.size(); }

private:
    std::vector<std::uint32_t> words_;
    std::vector<DecodedInst> code_;
};

/// How step() executes instructions.
enum class DispatchMode : std::uint8_t {
    /// Dispatch on the predecoded opcode id through a function table —
    /// the production path (no per-step fetch/decode).
    kCached,
    /// Re-decode the program word every step and execute through the
    /// reference switch — kept as the differential-testing oracle.
    kInterpreter,
};

/// Instruction-set simulator for the Sabre-32 core: Harvard memories
/// (8 KB program BlockRAM, 64 KB data), 16 registers with r0 = 0, and the
/// memory-mapped peripheral bus of Figure 6. Cycle accounting follows
/// `base_cycles` plus the taken-branch penalty.
///
/// The program is predecoded at construction (see DecodedProgram); both
/// dispatch modes execute the same new-style fault semantics and produce
/// bit-identical architectural state.
class SabreCpu {
public:
    explicit SabreCpu(Program program,
                      DispatchMode mode = DispatchMode::kCached);
    /// Share an already-predecoded image (one firmware predecode serves
    /// every CPU in a fleet sweep).
    explicit SabreCpu(std::shared_ptr<const DecodedProgram> image,
                      DispatchMode mode = DispatchMode::kCached);

    /// Execute one instruction; returns false once halted.
    bool step();

    /// Run until HALT or until the next instruction could push `cycles()`
    /// past `max_cycles`: stop-at-or-before semantics — after return,
    /// `cycles() <= max_cycles` always holds (the pre-decode loop used to
    /// let the last instruction overshoot the deadline). Returns the
    /// number of instructions retired by this call.
    std::size_t run(std::uint64_t max_cycles = 10'000'000);

    /// Run like `run(max_cycles)` but also stop immediately after any
    /// store into the peripheral-bus window at `window_base` (window
    /// aligned, e.g. periph::kControl). Host polling loops use this to
    /// re-check a memory-mapped register only when the firmware could
    /// have changed it, keeping the core in its batched dispatch loop
    /// between control-block writes. The stop point is exact: a register
    /// in that window only changes on such a store, so polling here is
    /// bit-identical to polling after every instruction.
    std::size_t run_until_bus_write(std::uint32_t window_base,
                                    std::uint64_t max_cycles);

    /// Worst-case cycle cost of the instruction at the current pc (base
    /// cost plus the taken-branch penalty), or 0 when halted or when the
    /// pc is outside the program (stepping then traps without consuming
    /// cycles). Deadline loops use this to stop at-or-before a budget.
    [[nodiscard]] std::uint64_t next_step_worst_cycles() const {
        if (halted_ || pc_ >= image_->size()) return 0;
        return image_->code()[pc_].worst_cost;
    }

    [[nodiscard]] bool halted() const { return halted_; }
    [[nodiscard]] std::uint32_t pc() const { return pc_; }
    [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
    [[nodiscard]] std::uint64_t instructions() const { return retired_; }
    [[nodiscard]] DispatchMode dispatch_mode() const { return mode_; }

    [[nodiscard]] std::uint32_t reg(std::size_t i) const { return regs_.at(i); }
    void set_reg(std::size_t i, std::uint32_t v) {
        if (i > 0 && i < kNumRegisters) regs_[i] = v;
    }

    /// Data-memory access for host-side setup/inspection (word aligned).
    [[nodiscard]] std::uint32_t load_data(std::uint32_t addr) const;
    void store_data(std::uint32_t addr, std::uint32_t value);

    [[nodiscard]] SabreBus& bus() { return bus_; }

    /// Optional per-instruction trace hook (pc, decoded instruction).
    using TraceHook = std::function<void(std::uint32_t, const Instruction&)>;
    void set_trace(TraceHook hook) { trace_ = std::move(hook); }

private:
    friend struct SabreOps;  ///< the cached-dispatch handler table

    bool step_cached(const DecodedInst& di);
    bool step_interpreted(std::uint32_t word);

    /// Batched executor over the predecoded stream: the hot loop of the
    /// cached mode, with the per-step call overhead and the trace check
    /// hoisted out. Dispatches through the same SabreOps handlers as the
    /// function table, so semantics cannot diverge from step().
    std::size_t run_batched(std::uint64_t max_cycles, bool stop_on_watch);
    /// Per-step loop used for the interpreter oracle and when tracing.
    std::size_t run_stepwise(std::uint64_t max_cycles, bool stop_on_watch);

    /// Memory accessors take the executing pc by value (see SabreOps in
    /// cpu.cpp: pc lives in a register on the hot path) and quote it in
    /// trap messages.
    [[nodiscard]] std::uint32_t mem_read(std::uint32_t addr,
                                         std::uint32_t pc);
    void mem_write(std::uint32_t addr, std::uint32_t value, std::uint32_t pc);

    void set_rd(std::uint8_t rd, std::uint32_t v) {
        if (rd != 0) regs_[rd] = v;
    }
    /// Taken branch: next pc in the low word, the taken-branch cycle
    /// penalty in the high word (the packed-handler-return convention —
    /// see SabreOps::Fn in cpu.cpp). Handlers never touch cycles_
    /// themselves, so the executors can keep the cycle counter in a
    /// register.
    [[nodiscard]] static std::uint64_t take_branch(std::uint32_t pc,
                                                   std::int32_t imm) {
        return (static_cast<std::uint64_t>(kBranchTakenExtra) << 32) |
               (pc + 1 + static_cast<std::uint32_t>(imm));
    }
    /// Jump targets (kJal/kJalr) are bounds-checked at execute time in
    /// exact arithmetic: a wrapped rs1+imm can no longer land in-range
    /// silently, and an out-of-program target traps at the jump itself
    /// rather than on the next fetch.
    void check_jump_target(std::int64_t target, std::uint32_t pc) const {
        if (target < 0 || target >= static_cast<std::int64_t>(image_->size()))
            throw SabreTrap(pc, "jump target out of program");
    }

    /// Sentinel watch window that no masked peripheral address matches
    /// (bus offsets have bit 31 stripped, so their window base is always
    /// below 0x80000000).
    static constexpr std::uint32_t kNoWatchWindow = 0xFFFFFFFFu;

    std::shared_ptr<const DecodedProgram> image_;
    std::array<std::uint8_t, kDataBytes> data_{};
    std::array<std::uint32_t, kNumRegisters> regs_{};
    SabreBus bus_;
    std::uint32_t pc_ = 0;
    std::uint64_t cycles_ = 0;
    std::uint64_t retired_ = 0;
    bool halted_ = false;
    DispatchMode mode_ = DispatchMode::kCached;
    std::uint32_t watch_window_ = kNoWatchWindow;
    bool watch_hit_ = false;
    TraceHook trace_;
};

}  // namespace ob::sabre
