#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sabre/isa.hpp"
#include "softfloat/softfloat.hpp"
#include "util/ring_buffer.hpp"

namespace ob::sabre {

/// A device on the Sabre's memory-mapped peripheral bus. Offsets are byte
/// offsets within the device's window; accesses are always 32-bit.
class Peripheral {
public:
    virtual ~Peripheral() = default;
    [[nodiscard]] virtual std::uint32_t read(std::uint32_t offset) = 0;
    virtual void write(std::uint32_t offset, std::uint32_t value) = 0;
};

/// The bus fabric of Figure 6: fixed-size windows, Sabre as bus master.
/// Unmapped accesses throw (the hardware would bus-error).
///
/// Window decode is a flat table indexed by address/kWindowBytes, not a
/// map search: the firmware reaches the bus on every peripheral lw/sw
/// (four per FPU operation), so device lookup sits on the ISS hot path
/// alongside the predecoded dispatch table.
class FpuPeripheral;

class SabreBus {
public:
    static constexpr std::uint32_t kWindowBytes = 0x100;

    /// Attach a device at `base` (offset from the peripheral region start,
    /// must be window-aligned).
    void attach(std::uint32_t base, std::shared_ptr<Peripheral> dev);

    // Defined after FpuPeripheral below: the FPU window gets a
    // devirtualized fast lane (the firmware has no hardware FPU, so every
    // flop is four bus transactions — by far the hottest device).
    [[nodiscard]] std::uint32_t read(std::uint32_t address);
    void write(std::uint32_t address, std::uint32_t value);

    /// Fast-lane routing state for the CPU's batched executor: the bus
    /// topology is frozen after construction, so the executor may cache
    /// these across a whole run. Null/size-max until an FPU is attached.
    [[nodiscard]] FpuPeripheral* fpu() const { return fpu_; }
    [[nodiscard]] std::uint32_t fpu_window() const { return fpu_window_; }

private:
    [[nodiscard]] Peripheral& device_at(std::uint32_t address) {
        const std::uint32_t window = address / kWindowBytes;
        if (window >= windows_.size() || windows_[window] == nullptr)
            throw std::out_of_range("SabreBus: no device at address");
        return *windows_[window];
    }
    std::vector<Peripheral*> windows_;  ///< flat decode, parallel to owners_
    std::vector<std::shared_ptr<Peripheral>> owners_;
    FpuPeripheral* fpu_ = nullptr;  ///< non-null once an FPU is attached
    std::uint32_t fpu_window_ = 0xFFFFFFFFu;
};

// --- Concrete peripherals (the blocks of Figures 6/7) ------------------------

/// Conventional base offsets within the peripheral region.
namespace periph {
inline constexpr std::uint32_t kLeds = 0x000;
inline constexpr std::uint32_t kSwitches = 0x100;
inline constexpr std::uint32_t kTouchscreen = 0x200;
inline constexpr std::uint32_t kGui = 0x300;
inline constexpr std::uint32_t kUartDmu = 0x400;
inline constexpr std::uint32_t kUartAcc = 0x500;
inline constexpr std::uint32_t kControl = 0x600;
inline constexpr std::uint32_t kFpu = 0x700;
inline constexpr std::uint32_t kCounter = 0x800;
inline constexpr std::uint32_t kDmuPort = 0x900;
inline constexpr std::uint32_t kAccPort = 0xA00;
}  // namespace periph

/// SabreBusLEDsRun: write-to-set LED bank, readable back.
class LedsPeripheral final : public Peripheral {
public:
    std::uint32_t read(std::uint32_t) override { return state_; }
    void write(std::uint32_t, std::uint32_t value) override { state_ = value; }
    [[nodiscard]] std::uint32_t state() const { return state_; }

private:
    std::uint32_t state_ = 0;
};

/// SabreBusSwitchesRun: host-settable input switches.
class SwitchesPeripheral final : public Peripheral {
public:
    std::uint32_t read(std::uint32_t) override { return state_; }
    void write(std::uint32_t, std::uint32_t) override {}  // read-only
    void set(std::uint32_t v) { state_ = v; }

private:
    std::uint32_t state_ = 0;
};

/// SabreBusTouchScreenRun: x (offset 0), y (4), pressed (8).
class TouchscreenPeripheral final : public Peripheral {
public:
    std::uint32_t read(std::uint32_t offset) override;
    void write(std::uint32_t, std::uint32_t) override {}
    void touch(std::uint32_t x, std::uint32_t y, bool pressed);

private:
    std::uint32_t x_ = 0, y_ = 0, pressed_ = 0;
};

/// SabreGuiRun: minimal display-list device — the firmware writes line
/// segments (x0,y0,x1,y1,color then a command strobe) that the host/GUI
/// side can render. We record the display list for inspection.
class GuiPeripheral final : public Peripheral {
public:
    struct Line {
        std::int32_t x0, y0, x1, y1;
        std::uint32_t color;
    };
    std::uint32_t read(std::uint32_t offset) override;
    void write(std::uint32_t offset, std::uint32_t value) override;
    [[nodiscard]] const std::vector<Line>& lines() const { return lines_; }
    void clear() { lines_.clear(); }

private:
    std::array<std::uint32_t, 5> reg_{};
    std::vector<Line> lines_;
};

/// SabreRS232Run: byte FIFO UART endpoint. Offset 0: status (bit0 =
/// rx-available, bit1 = tx-ready); offset 4: rx pop; offset 8: tx push.
class UartPeripheral final : public Peripheral {
public:
    std::uint32_t read(std::uint32_t offset) override;
    void write(std::uint32_t offset, std::uint32_t value) override;

    /// Host side: push a byte into the Sabre's receive FIFO.
    void host_push(std::uint8_t byte) { rx_.push_back(byte); }
    /// Host side: drain bytes the firmware transmitted.
    [[nodiscard]] std::vector<std::uint8_t> host_drain();

private:
    ob::util::RingBuffer<std::uint8_t> rx_;
    std::vector<std::uint8_t> tx_;
};

/// SabreControlRun: the memory-mapped registers of §10 that carry
/// roll/pitch/yaw (Q16.16 fixed point) plus status flags straight to the
/// FPGA video block — extended with the host-writable measurement-noise
/// register and the innovation 3-sigma outputs the adaptive retune loop
/// consumes (§11: the R the filter assumes must rise once the vehicle
/// moves).
class ControlPeripheral final : public Peripheral {
public:
    static constexpr std::size_t kRegisters = 15;
    enum Reg : std::uint32_t {
        kRoll = 0,       // Q16.16 radians
        kPitch = 1,
        kYaw = 2,
        kRollSigma3 = 3,
        kPitchSigma3 = 4,
        kYawSigma3 = 5,
        kStatus = 6,     // bit0: estimate valid
        kUpdateCount = 7,
        kResidualX = 8,  // Q16.16 m/s^2
        kResidualY = 9,
        kHeartbeat = 10,
        kScratch = 11,
        /// Host-writable measurement-noise variance, raw IEEE binary32
        /// bits (Q16.16 would quantize R² ≈ 1e-5 to zero). The firmware
        /// latches it into its Kalman R cell at the top of every update,
        /// so a retune applies from the next epoch — the runtime register
        /// the paper's manual §11 retune lacked.
        kMeasNoiseVar = 12,
        kInnovSigma3X = 13,  // Q16.16 innovation 3-sigma, m/s^2
        kInnovSigma3Y = 14,
    };

    std::uint32_t read(std::uint32_t offset) override;
    void write(std::uint32_t offset, std::uint32_t value) override;

    [[nodiscard]] std::uint32_t reg(Reg r) const {
        return regs_[static_cast<std::size_t>(r)];
    }
    /// Angles as doubles (Q16.16 -> radians), the video block's view.
    [[nodiscard]] double angle(Reg r) const {
        return static_cast<double>(
                   static_cast<std::int32_t>(regs_[static_cast<std::size_t>(r)])) /
               65536.0;
    }

private:
    std::array<std::uint32_t, kRegisters> regs_{};
};

/// Smart floating-point peripheral. Sabre has no FPU; the paper emulated
/// IEEE arithmetic with the Softfloat library in software. Following the
/// paper's "peripherals are designed to be as smart as possible" principle
/// this build moves that emulation into a bus peripheral backed by our
/// softfloat library — same IEEE-754 semantics, one bus transaction per
/// operand/result instead of a software subroutine.
///
/// Protocol: write operands to A (0x0) and B (0x4), write the opcode to
/// CMD (0x8) which executes immediately; read RESULT (0xC) and FLAGS
/// (0x10). Flags accumulate until cleared by writing FLAGS.
class FpuPeripheral final : public Peripheral {
public:
    enum Cmd : std::uint32_t {
        kAdd = 0,
        kSub = 1,
        kMul = 2,
        kDiv = 3,
        kSqrt = 4,   // operand A only
        kI2F = 5,    // int32 A -> float
        kF2I = 6,    // float A -> int32 (round to nearest even)
        kCmpLt = 7,  // result = (A < B)
        kCmpLe = 8,
        kCmpEq = 9,
        kNeg = 10,
        kAbs = 11,
    };

    std::uint32_t read(std::uint32_t offset) override {
        switch (offset) {
            case 0x0: return a_;
            case 0x4: return b_;
            case 0xC: return result_;
            case 0x10: return ctx_.flags;
            default: return 0;
        }
    }
    void write(std::uint32_t offset, std::uint32_t value) override {
        switch (offset) {
            case 0x0: a_ = value; return;
            case 0x4: b_ = value; return;
            case 0x8: execute(value); return;
            case 0x10: ctx_.flags = value; return;
            default: return;
        }
    }

    [[nodiscard]] std::uint64_t operations() const { return ops_; }

private:
    /// Run one command against the latched operands. Defined inline at
    /// the end of this header: the boresight firmware issues ~185 FPU
    /// commands per epoch, and keeping the command switch inline on the
    /// bus fast lane leaves the softfloat call as the only out-of-line
    /// step per operation.
    void execute(std::uint32_t cmd);

    std::uint32_t a_ = 0;
    std::uint32_t b_ = 0;
    std::uint32_t result_ = 0;
    softfloat::Context ctx_;
    std::uint64_t ops_ = 0;
};

/// Free-running cycle counter (read-only), driven by the CPU.
class CounterPeripheral final : public Peripheral {
public:
    std::uint32_t read(std::uint32_t) override {
        return static_cast<std::uint32_t>(*cycles_);
    }
    void write(std::uint32_t, std::uint32_t) override {}
    explicit CounterPeripheral(const std::uint64_t* cycles) : cycles_(cycles) {}

private:
    const std::uint64_t* cycles_;
};

/// Smart DMU port: the fabric-side CAN/serial deframing (tested separately
/// in ob::comm) delivers whole samples; the firmware reads sign-extended
/// registers. Offset 0: status (1 = sample available); 4..24: gx,gy,gz,
/// ax,ay,az (int32); 28: seq; writing any value to 0 pops the sample.
class DmuPortPeripheral final : public Peripheral {
public:
    struct Sample {
        std::array<std::int32_t, 3> gyro{};
        std::array<std::int32_t, 3> accel{};
        std::uint32_t seq = 0;
    };

    std::uint32_t read(std::uint32_t offset) override;
    void write(std::uint32_t offset, std::uint32_t value) override;
    void host_push(const Sample& s) { fifo_.push_back(s); }
    [[nodiscard]] std::size_t pending() const { return fifo_.size(); }

private:
    ob::util::RingBuffer<Sample> fifo_;
};

/// Smart ACC port: duty-cycle timings, pre-deframed. Offset 0: status;
/// 4: t1x; 8: t1y; 12: t2; 16: seq; write 0 to pop.
class AccPortPeripheral final : public Peripheral {
public:
    struct Sample {
        std::uint32_t t1x = 0, t1y = 0, t2 = 1, seq = 0;
    };

    std::uint32_t read(std::uint32_t offset) override;
    void write(std::uint32_t offset, std::uint32_t value) override;
    void host_push(const Sample& s) { fifo_.push_back(s); }
    [[nodiscard]] std::size_t pending() const { return fifo_.size(); }

private:
    ob::util::RingBuffer<Sample> fifo_;
};

// SabreBus access: flat window decode, with the FPU window checked first
// and dispatched without the vtable — FpuPeripheral is final and fully
// visible here, so operand latches and result reads inline straight into
// the CPU's load/store handlers. Every other device takes the generic
// virtual path.
inline std::uint32_t SabreBus::read(std::uint32_t address) {
    const std::uint32_t window = address / kWindowBytes;
    if (window == fpu_window_)
        return fpu_->FpuPeripheral::read(address & (kWindowBytes - 1));
    return device_at(address).read(address & (kWindowBytes - 1));
}

inline void SabreBus::write(std::uint32_t address, std::uint32_t value) {
    const std::uint32_t window = address / kWindowBytes;
    if (window == fpu_window_) {
        fpu_->FpuPeripheral::write(address & (kWindowBytes - 1), value);
        return;
    }
    device_at(address).write(address & (kWindowBytes - 1), value);
}

inline void FpuPeripheral::execute(std::uint32_t value) {
    namespace sf = ob::softfloat;
    const sf::F32 a{a_};
    const sf::F32 b{b_};
    ++ops_;
    switch (static_cast<Cmd>(value)) {
        case kAdd: result_ = sf::add(a, b, ctx_).bits; break;
        case kSub: result_ = sf::sub(a, b, ctx_).bits; break;
        case kMul: result_ = sf::mul(a, b, ctx_).bits; break;
        case kDiv: result_ = sf::div(a, b, ctx_).bits; break;
        case kSqrt: result_ = sf::sqrt(a, ctx_).bits; break;
        case kI2F:
            result_ = sf::from_i32(static_cast<std::int32_t>(a_), ctx_).bits;
            break;
        case kF2I:
            result_ = static_cast<std::uint32_t>(sf::to_i32(a, ctx_));
            break;
        case kCmpLt: result_ = sf::lt(a, b, ctx_) ? 1 : 0; break;
        case kCmpLe: result_ = sf::le(a, b, ctx_) ? 1 : 0; break;
        case kCmpEq: result_ = sf::eq(a, b, ctx_) ? 1 : 0; break;
        case kNeg: result_ = sf::neg(a).bits; break;
        case kAbs: result_ = sf::abs(a).bits; break;
        default:
            --ops_;
            throw std::invalid_argument("FpuPeripheral: unknown command");
    }
}

}  // namespace ob::sabre
