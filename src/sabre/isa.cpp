#include "sabre/isa.hpp"

#include <stdexcept>
#include <string>

namespace ob::sabre {

namespace {

constexpr std::uint32_t kImm18Mask = 0x3FFFF;
constexpr std::uint32_t kImm22Mask = 0x3FFFFF;

void check_reg(std::uint8_t r, const char* what) {
    if (r >= kNumRegisters)
        throw std::invalid_argument(std::string("encode: bad register for ") +
                                    what);
}

/// True when the op's 18-bit immediate is interpreted unsigned
/// (logical immediates and LUI); everything else is sign-extended.
[[nodiscard]] constexpr bool imm18_unsigned(Op op) {
    return op == Op::kAndi || op == Op::kOri || op == Op::kXori ||
           op == Op::kLui || op == Op::kSlli || op == Op::kSrli ||
           op == Op::kSrai;
}

[[nodiscard]] std::int32_t sign_extend(std::uint32_t v, unsigned bits) {
    const std::uint32_t m = 1u << (bits - 1);
    return static_cast<std::int32_t>((v ^ m) - m);
}

}  // namespace

std::uint32_t encode(const Instruction& ins) {
    const auto opbits = static_cast<std::uint32_t>(ins.op) << 26;
    if (is_r_type(ins.op)) {
        check_reg(ins.rd, "rd");
        check_reg(ins.rs1, "rs1");
        check_reg(ins.rs2, "rs2");
        return opbits | (std::uint32_t{ins.rd} << 22) |
               (std::uint32_t{ins.rs1} << 18) | (std::uint32_t{ins.rs2} << 14);
    }
    if (is_i_type(ins.op)) {
        check_reg(ins.rd, "rd");
        check_reg(ins.rs1, "rs1");
        if (imm18_unsigned(ins.op)) {
            if (ins.imm < 0 || static_cast<std::uint32_t>(ins.imm) > kImm18Mask)
                throw std::invalid_argument("encode: unsigned imm18 overflow");
        } else if (ins.imm < -(1 << 17) || ins.imm >= (1 << 17)) {
            throw std::invalid_argument("encode: signed imm18 overflow");
        }
        return opbits | (std::uint32_t{ins.rd} << 22) |
               (std::uint32_t{ins.rs1} << 18) |
               (static_cast<std::uint32_t>(ins.imm) & kImm18Mask);
    }
    if (is_b_type(ins.op)) {
        check_reg(ins.rs1, "rs1");
        check_reg(ins.rs2, "rs2");
        if (ins.imm < -(1 << 17) || ins.imm >= (1 << 17))
            throw std::invalid_argument("encode: branch offset overflow");
        return opbits | (std::uint32_t{ins.rs1} << 22) |
               (std::uint32_t{ins.rs2} << 18) |
               (static_cast<std::uint32_t>(ins.imm) & kImm18Mask);
    }
    if (is_j_type(ins.op)) {
        check_reg(ins.rd, "rd");
        if (ins.imm < -(1 << 21) || ins.imm >= (1 << 21))
            throw std::invalid_argument("encode: jump offset overflow");
        return opbits | (std::uint32_t{ins.rd} << 22) |
               (static_cast<std::uint32_t>(ins.imm) & kImm22Mask);
    }
    if (ins.op == Op::kHalt) return opbits;
    throw std::invalid_argument("encode: unknown op");
}

Instruction decode(std::uint32_t word) {
    Instruction ins;
    const auto opv = static_cast<std::uint8_t>(word >> 26);
    ins.op = static_cast<Op>(opv);
    if (is_r_type(ins.op)) {
        ins.rd = static_cast<std::uint8_t>((word >> 22) & 0xF);
        ins.rs1 = static_cast<std::uint8_t>((word >> 18) & 0xF);
        ins.rs2 = static_cast<std::uint8_t>((word >> 14) & 0xF);
        return ins;
    }
    if (is_i_type(ins.op)) {
        ins.rd = static_cast<std::uint8_t>((word >> 22) & 0xF);
        ins.rs1 = static_cast<std::uint8_t>((word >> 18) & 0xF);
        const std::uint32_t raw = word & kImm18Mask;
        ins.imm = imm18_unsigned(ins.op) ? static_cast<std::int32_t>(raw)
                                         : sign_extend(raw, 18);
        return ins;
    }
    if (is_b_type(ins.op)) {
        ins.rs1 = static_cast<std::uint8_t>((word >> 22) & 0xF);
        ins.rs2 = static_cast<std::uint8_t>((word >> 18) & 0xF);
        ins.imm = sign_extend(word & kImm18Mask, 18);
        return ins;
    }
    if (is_j_type(ins.op)) {
        ins.rd = static_cast<std::uint8_t>((word >> 22) & 0xF);
        ins.imm = sign_extend(word & kImm22Mask, 22);
        return ins;
    }
    if (ins.op == Op::kHalt) return ins;
    throw std::invalid_argument("decode: unknown opcode " +
                                std::to_string(opv));
}

DecodedInst predecode(std::uint32_t word) {
    DecodedInst di;
    di.ins = decode(word);
    di.opid = static_cast<std::uint8_t>(di.ins.op);
    di.cost = static_cast<std::uint8_t>(base_cycles(di.ins.op));
    di.worst_cost = static_cast<std::uint8_t>(
        di.cost + (is_b_type(di.ins.op) ? kBranchTakenExtra : 0));
    return di;
}

std::string_view mnemonic(Op op) {
    switch (op) {
        case Op::kAdd: return "add";
        case Op::kSub: return "sub";
        case Op::kAnd: return "and";
        case Op::kOr: return "or";
        case Op::kXor: return "xor";
        case Op::kSll: return "sll";
        case Op::kSrl: return "srl";
        case Op::kSra: return "sra";
        case Op::kMul: return "mul";
        case Op::kSlt: return "slt";
        case Op::kSltu: return "sltu";
        case Op::kAddi: return "addi";
        case Op::kAndi: return "andi";
        case Op::kOri: return "ori";
        case Op::kXori: return "xori";
        case Op::kSlli: return "slli";
        case Op::kSrli: return "srli";
        case Op::kSrai: return "srai";
        case Op::kSlti: return "slti";
        case Op::kLui: return "lui";
        case Op::kLw: return "lw";
        case Op::kSw: return "sw";
        case Op::kBeq: return "beq";
        case Op::kBne: return "bne";
        case Op::kBlt: return "blt";
        case Op::kBge: return "bge";
        case Op::kBltu: return "bltu";
        case Op::kBgeu: return "bgeu";
        case Op::kJal: return "jal";
        case Op::kJalr: return "jalr";
        case Op::kHalt: return "halt";
    }
    return "?";
}

}  // namespace ob::sabre
