#include "sabre/peripherals.hpp"

#include <stdexcept>

namespace ob::sabre {

void SabreBus::attach(std::uint32_t base, std::shared_ptr<Peripheral> dev) {
    if (base % kWindowBytes != 0)
        throw std::invalid_argument("SabreBus: window-misaligned base");
    const std::uint32_t window = base / kWindowBytes;
    if (window >= windows_.size()) windows_.resize(window + 1, nullptr);
    if (windows_[window] != nullptr)
        throw std::invalid_argument("SabreBus: base already occupied");
    windows_[window] = dev.get();
    if (auto* fpu = dynamic_cast<FpuPeripheral*>(dev.get())) {
        fpu_ = fpu;
        fpu_window_ = window;
    }
    owners_.push_back(std::move(dev));
}

std::uint32_t TouchscreenPeripheral::read(std::uint32_t offset) {
    switch (offset) {
        case 0: return x_;
        case 4: return y_;
        case 8: return pressed_;
        default: return 0;
    }
}

void TouchscreenPeripheral::touch(std::uint32_t x, std::uint32_t y,
                                  bool pressed) {
    x_ = x;
    y_ = y;
    pressed_ = pressed ? 1 : 0;
}

std::uint32_t GuiPeripheral::read(std::uint32_t offset) {
    const std::uint32_t idx = offset / 4;
    return idx < reg_.size() ? reg_[idx] : 0;
}

void GuiPeripheral::write(std::uint32_t offset, std::uint32_t value) {
    const std::uint32_t idx = offset / 4;
    if (idx < reg_.size()) {
        reg_[idx] = value;
        return;
    }
    if (offset == 0x14) {  // command strobe: latch a line
        lines_.push_back(Line{static_cast<std::int32_t>(reg_[0]),
                              static_cast<std::int32_t>(reg_[1]),
                              static_cast<std::int32_t>(reg_[2]),
                              static_cast<std::int32_t>(reg_[3]), reg_[4]});
    }
}

std::uint32_t UartPeripheral::read(std::uint32_t offset) {
    switch (offset) {
        case 0:
            return (rx_.empty() ? 0u : 1u) | 2u;  // tx always ready
        case 4: {
            if (rx_.empty()) return 0;
            const std::uint8_t b = rx_.front();
            rx_.pop_front();
            return b;
        }
        default:
            return 0;
    }
}

void UartPeripheral::write(std::uint32_t offset, std::uint32_t value) {
    if (offset == 8) tx_.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

std::vector<std::uint8_t> UartPeripheral::host_drain() {
    std::vector<std::uint8_t> out;
    out.swap(tx_);
    return out;
}

std::uint32_t ControlPeripheral::read(std::uint32_t offset) {
    const std::uint32_t idx = offset / 4;
    return idx < kRegisters ? regs_[idx] : 0;
}

void ControlPeripheral::write(std::uint32_t offset, std::uint32_t value) {
    const std::uint32_t idx = offset / 4;
    if (idx < kRegisters) regs_[idx] = value;
}

std::uint32_t DmuPortPeripheral::read(std::uint32_t offset) {
    if (offset == 0) return fifo_.empty() ? 0 : 1;
    if (fifo_.empty()) return 0;
    const Sample& s = fifo_.front();
    switch (offset) {
        case 4: return static_cast<std::uint32_t>(s.gyro[0]);
        case 8: return static_cast<std::uint32_t>(s.gyro[1]);
        case 12: return static_cast<std::uint32_t>(s.gyro[2]);
        case 16: return static_cast<std::uint32_t>(s.accel[0]);
        case 20: return static_cast<std::uint32_t>(s.accel[1]);
        case 24: return static_cast<std::uint32_t>(s.accel[2]);
        case 28: return s.seq;
        default: return 0;
    }
}

void DmuPortPeripheral::write(std::uint32_t offset, std::uint32_t) {
    if (offset == 0 && !fifo_.empty()) fifo_.pop_front();
}

std::uint32_t AccPortPeripheral::read(std::uint32_t offset) {
    if (offset == 0) return fifo_.empty() ? 0 : 1;
    if (fifo_.empty()) return 0;
    const Sample& s = fifo_.front();
    switch (offset) {
        case 4: return s.t1x;
        case 8: return s.t1y;
        case 12: return s.t2;
        case 16: return s.seq;
        default: return 0;
    }
}

void AccPortPeripheral::write(std::uint32_t offset, std::uint32_t) {
    if (offset == 0 && !fifo_.empty()) fifo_.pop_front();
}

}  // namespace ob::sabre
