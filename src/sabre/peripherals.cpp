#include "sabre/peripherals.hpp"

#include <stdexcept>

namespace ob::sabre {

void SabreBus::attach(std::uint32_t base, std::shared_ptr<Peripheral> dev) {
    if (base % kWindowBytes != 0)
        throw std::invalid_argument("SabreBus: window-misaligned base");
    if (!devices_.emplace(base, std::move(dev)).second)
        throw std::invalid_argument("SabreBus: base already occupied");
}

Peripheral& SabreBus::device_at(std::uint32_t address, std::uint32_t& offset) {
    const std::uint32_t base = address & ~(kWindowBytes - 1);
    const auto it = devices_.find(base);
    if (it == devices_.end())
        throw std::out_of_range("SabreBus: no device at address");
    offset = address - base;
    return *it->second;
}

std::uint32_t SabreBus::read(std::uint32_t address) {
    std::uint32_t offset = 0;
    return device_at(address, offset).read(offset);
}

void SabreBus::write(std::uint32_t address, std::uint32_t value) {
    std::uint32_t offset = 0;
    device_at(address, offset).write(offset, value);
}

std::uint32_t TouchscreenPeripheral::read(std::uint32_t offset) {
    switch (offset) {
        case 0: return x_;
        case 4: return y_;
        case 8: return pressed_;
        default: return 0;
    }
}

void TouchscreenPeripheral::touch(std::uint32_t x, std::uint32_t y,
                                  bool pressed) {
    x_ = x;
    y_ = y;
    pressed_ = pressed ? 1 : 0;
}

std::uint32_t GuiPeripheral::read(std::uint32_t offset) {
    const std::uint32_t idx = offset / 4;
    return idx < reg_.size() ? reg_[idx] : 0;
}

void GuiPeripheral::write(std::uint32_t offset, std::uint32_t value) {
    const std::uint32_t idx = offset / 4;
    if (idx < reg_.size()) {
        reg_[idx] = value;
        return;
    }
    if (offset == 0x14) {  // command strobe: latch a line
        lines_.push_back(Line{static_cast<std::int32_t>(reg_[0]),
                              static_cast<std::int32_t>(reg_[1]),
                              static_cast<std::int32_t>(reg_[2]),
                              static_cast<std::int32_t>(reg_[3]), reg_[4]});
    }
}

std::uint32_t UartPeripheral::read(std::uint32_t offset) {
    switch (offset) {
        case 0:
            return (rx_.empty() ? 0u : 1u) | 2u;  // tx always ready
        case 4: {
            if (rx_.empty()) return 0;
            const std::uint8_t b = rx_.front();
            rx_.pop_front();
            return b;
        }
        default:
            return 0;
    }
}

void UartPeripheral::write(std::uint32_t offset, std::uint32_t value) {
    if (offset == 8) tx_.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

std::vector<std::uint8_t> UartPeripheral::host_drain() {
    std::vector<std::uint8_t> out;
    out.swap(tx_);
    return out;
}

std::uint32_t ControlPeripheral::read(std::uint32_t offset) {
    const std::uint32_t idx = offset / 4;
    return idx < kRegisters ? regs_[idx] : 0;
}

void ControlPeripheral::write(std::uint32_t offset, std::uint32_t value) {
    const std::uint32_t idx = offset / 4;
    if (idx < kRegisters) regs_[idx] = value;
}

std::uint32_t FpuPeripheral::read(std::uint32_t offset) {
    switch (offset) {
        case 0x0: return a_;
        case 0x4: return b_;
        case 0xC: return result_;
        case 0x10: return ctx_.flags;
        default: return 0;
    }
}

void FpuPeripheral::write(std::uint32_t offset, std::uint32_t value) {
    namespace sf = ob::softfloat;
    switch (offset) {
        case 0x0: a_ = value; return;
        case 0x4: b_ = value; return;
        case 0x10: ctx_.flags = value; return;
        case 0x8: break;  // command: fall through to execute
        default: return;
    }
    const sf::F32 a{a_};
    const sf::F32 b{b_};
    ++ops_;
    switch (static_cast<Cmd>(value)) {
        case kAdd: result_ = sf::add(a, b, ctx_).bits; break;
        case kSub: result_ = sf::sub(a, b, ctx_).bits; break;
        case kMul: result_ = sf::mul(a, b, ctx_).bits; break;
        case kDiv: result_ = sf::div(a, b, ctx_).bits; break;
        case kSqrt: result_ = sf::sqrt(a, ctx_).bits; break;
        case kI2F:
            result_ = sf::from_i32(static_cast<std::int32_t>(a_), ctx_).bits;
            break;
        case kF2I:
            result_ = static_cast<std::uint32_t>(sf::to_i32(a, ctx_));
            break;
        case kCmpLt: result_ = sf::lt(a, b, ctx_) ? 1 : 0; break;
        case kCmpLe: result_ = sf::le(a, b, ctx_) ? 1 : 0; break;
        case kCmpEq: result_ = sf::eq(a, b, ctx_) ? 1 : 0; break;
        case kNeg: result_ = sf::neg(a).bits; break;
        case kAbs: result_ = sf::abs(a).bits; break;
        default:
            --ops_;
            throw std::invalid_argument("FpuPeripheral: unknown command");
    }
}

std::uint32_t DmuPortPeripheral::read(std::uint32_t offset) {
    if (offset == 0) return fifo_.empty() ? 0 : 1;
    if (fifo_.empty()) return 0;
    const Sample& s = fifo_.front();
    switch (offset) {
        case 4: return static_cast<std::uint32_t>(s.gyro[0]);
        case 8: return static_cast<std::uint32_t>(s.gyro[1]);
        case 12: return static_cast<std::uint32_t>(s.gyro[2]);
        case 16: return static_cast<std::uint32_t>(s.accel[0]);
        case 20: return static_cast<std::uint32_t>(s.accel[1]);
        case 24: return static_cast<std::uint32_t>(s.accel[2]);
        case 28: return s.seq;
        default: return 0;
    }
}

void DmuPortPeripheral::write(std::uint32_t offset, std::uint32_t) {
    if (offset == 0 && !fifo_.empty()) fifo_.pop_front();
}

std::uint32_t AccPortPeripheral::read(std::uint32_t offset) {
    if (offset == 0) return fifo_.empty() ? 0 : 1;
    if (fifo_.empty()) return 0;
    const Sample& s = fifo_.front();
    switch (offset) {
        case 4: return s.t1x;
        case 8: return s.t1y;
        case 12: return s.t2;
        case 16: return s.seq;
        default: return 0;
    }
}

void AccPortPeripheral::write(std::uint32_t offset, std::uint32_t) {
    if (offset == 0 && !fifo_.empty()) fifo_.pop_front();
}

}  // namespace ob::sabre
