#include "sabre/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

namespace ob::sabre {

namespace {

struct Token {
    std::string text;
};

/// Strip comments, split a line into lowercase tokens on spaces/commas.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view line) {
    std::string clean;
    for (const char c : line) {
        if (c == ';' || c == '#') break;
        clean += c;
    }
    std::vector<std::string> out;
    std::string cur;
    for (const char c : clean) {
        if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
            if (!cur.empty()) out.push_back(cur);
            cur.clear();
        } else {
            cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
}

[[nodiscard]] std::optional<std::uint8_t> parse_register(const std::string& t) {
    if (t == "zero") return 0;
    if (t == "lr" || t == "ra") return kLinkRegister;
    if (t == "sp") return kStackRegister;
    if (t.size() >= 2 && t[0] == 'r') {
        int v = 0;
        for (std::size_t i = 1; i < t.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t[i]))) return std::nullopt;
            v = v * 10 + (t[i] - '0');
        }
        if (v < static_cast<int>(kNumRegisters)) return static_cast<std::uint8_t>(v);
    }
    return std::nullopt;
}

[[nodiscard]] std::optional<std::int64_t> parse_number(const std::string& t) {
    if (t.empty()) return std::nullopt;
    std::size_t i = 0;
    bool neg = false;
    if (t[0] == '-' || t[0] == '+') {
        neg = t[0] == '-';
        i = 1;
    }
    if (i >= t.size()) return std::nullopt;
    std::int64_t v = 0;
    if (t.size() > i + 2 && t[i] == '0' && t[i + 1] == 'x') {
        for (std::size_t k = i + 2; k < t.size(); ++k) {
            const char c = t[k];
            int d;
            if (c >= '0' && c <= '9') d = c - '0';
            else if (c >= 'a' && c <= 'f') d = 10 + c - 'a';
            else return std::nullopt;
            v = v * 16 + d;
        }
    } else {
        for (std::size_t k = i; k < t.size(); ++k) {
            if (!std::isdigit(static_cast<unsigned char>(t[k]))) return std::nullopt;
            v = v * 10 + (t[k] - '0');
        }
    }
    return neg ? -v : v;
}

struct PendingLine {
    std::size_t source_line;
    std::vector<std::string> tokens;
};

/// Ops that take "rd, rs1, rs2".
[[nodiscard]] std::optional<Op> r_type_op(const std::string& m) {
    if (m == "add") return Op::kAdd;
    if (m == "sub") return Op::kSub;
    if (m == "and") return Op::kAnd;
    if (m == "or") return Op::kOr;
    if (m == "xor") return Op::kXor;
    if (m == "sll") return Op::kSll;
    if (m == "srl") return Op::kSrl;
    if (m == "sra") return Op::kSra;
    if (m == "mul") return Op::kMul;
    if (m == "slt") return Op::kSlt;
    if (m == "sltu") return Op::kSltu;
    return std::nullopt;
}

/// Ops that take "rd, rs1, imm".
[[nodiscard]] std::optional<Op> i_type_op(const std::string& m) {
    if (m == "addi") return Op::kAddi;
    if (m == "andi") return Op::kAndi;
    if (m == "ori") return Op::kOri;
    if (m == "xori") return Op::kXori;
    if (m == "slli") return Op::kSlli;
    if (m == "srli") return Op::kSrli;
    if (m == "srai") return Op::kSrai;
    if (m == "slti") return Op::kSlti;
    if (m == "jalr") return Op::kJalr;
    return std::nullopt;
}

[[nodiscard]] std::optional<Op> branch_op(const std::string& m) {
    if (m == "beq") return Op::kBeq;
    if (m == "bne") return Op::kBne;
    if (m == "blt") return Op::kBlt;
    if (m == "bge") return Op::kBge;
    if (m == "bltu") return Op::kBltu;
    if (m == "bgeu") return Op::kBgeu;
    return std::nullopt;
}

class Assembler {
public:
    [[nodiscard]] Program run(std::string_view source) {
        first_pass(source);
        second_pass();
        return std::move(program_);
    }

private:
    Program program_;
    std::map<std::string, std::int64_t> equs_;
    std::vector<PendingLine> lines_;

    /// Number of words a tokenized instruction expands to.
    [[nodiscard]] std::size_t width_of(const PendingLine& pl) const {
        const std::string& m = pl.tokens[0];
        if (m == "li" || m == "la") {
            // May expand to 1 or 2; to keep label addresses stable we
            // always expand to 2 words.
            return 2;
        }
        return 1;
    }

    void first_pass(std::string_view source) {
        std::size_t line_no = 0;
        std::uint32_t pc = 0;
        std::istringstream in{std::string(source)};
        std::string raw;
        while (std::getline(in, raw)) {
            ++line_no;
            auto tokens = tokenize(raw);
            // Peel off any leading labels.
            while (!tokens.empty() && tokens[0].back() == ':') {
                const std::string label = tokens[0].substr(0, tokens[0].size() - 1);
                if (label.empty())
                    throw AssemblyError(line_no, "empty label");
                if (program_.symbols.count(label) != 0)
                    throw AssemblyError(line_no, "duplicate label '" + label + "'");
                program_.symbols[label] = pc;
                tokens.erase(tokens.begin());
            }
            if (tokens.empty()) continue;
            if (tokens[0] == ".equ") {
                if (tokens.size() != 3)
                    throw AssemblyError(line_no, ".equ NAME value");
                const auto v = parse_number(tokens[2]);
                if (!v) throw AssemblyError(line_no, "bad .equ value");
                equs_[tokens[1]] = *v;
                continue;
            }
            PendingLine pl{line_no, std::move(tokens)};
            pc += static_cast<std::uint32_t>(width_of(pl));
            lines_.push_back(std::move(pl));
        }
    }

    [[nodiscard]] std::int64_t resolve_value(const std::string& t,
                                             std::size_t line) const {
        if (const auto n = parse_number(t)) return *n;
        if (const auto it = equs_.find(t); it != equs_.end()) return it->second;
        if (const auto it = program_.symbols.find(t);
            it != program_.symbols.end())
            return it->second;
        throw AssemblyError(line, "cannot resolve '" + t + "'");
    }

    [[nodiscard]] std::uint8_t need_register(const PendingLine& pl,
                                             std::size_t idx) const {
        if (idx >= pl.tokens.size())
            throw AssemblyError(pl.source_line, "missing register operand");
        const auto r = parse_register(pl.tokens[idx]);
        if (!r)
            throw AssemblyError(pl.source_line,
                                "bad register '" + pl.tokens[idx] + "'");
        return *r;
    }

    [[nodiscard]] std::int64_t need_value(const PendingLine& pl,
                                          std::size_t idx) const {
        if (idx >= pl.tokens.size())
            throw AssemblyError(pl.source_line, "missing operand");
        return resolve_value(pl.tokens[idx], pl.source_line);
    }

    void emit(const Instruction& ins, std::size_t line) {
        try {
            program_.words.push_back(encode(ins));
        } catch (const std::invalid_argument& e) {
            throw AssemblyError(line, e.what());
        }
        if (program_.words.size() > kProgramWords)
            throw AssemblyError(line, "program exceeds 8KB program memory");
    }

    /// li expansion: always two words (lui+ori) so addresses from pass one
    /// hold; when the constant fits we emit addi + nop.
    void emit_li(std::uint8_t rd, std::int64_t value, std::size_t line) {
        const auto v32 = static_cast<std::uint32_t>(value & 0xFFFFFFFF);
        if (value >= -(1 << 17) && value < (1 << 17)) {
            emit({Op::kAddi, rd, 0, 0, static_cast<std::int32_t>(value)}, line);
            emit({Op::kAddi, 0, 0, 0, 0}, line);  // nop filler
            return;
        }
        emit({Op::kLui, rd, 0, 0, static_cast<std::int32_t>(v32 >> 14)}, line);
        emit({Op::kOri, rd, rd, 0, static_cast<std::int32_t>(v32 & 0x3FFF)},
             line);
    }

    void second_pass() {
        std::uint32_t pc = 0;
        for (const auto& pl : lines_) {
            const std::string& m = pl.tokens[0];
            const std::size_t width = width_of(pl);
            const auto next_pc = static_cast<std::int64_t>(pc + 1);

            if (const auto op = r_type_op(m)) {
                emit({*op, need_register(pl, 1), need_register(pl, 2),
                      need_register(pl, 3), 0},
                     pl.source_line);
            } else if (const auto iop = i_type_op(m)) {
                emit({*iop, need_register(pl, 1), need_register(pl, 2), 0,
                      static_cast<std::int32_t>(need_value(pl, 3))},
                     pl.source_line);
            } else if (const auto bop = branch_op(m)) {
                const std::int64_t target = need_value(pl, 3);
                // Labels are absolute instruction indices -> pc-relative.
                const bool is_label =
                    program_.symbols.count(pl.tokens[3]) != 0;
                const std::int64_t off = is_label ? target - next_pc : target;
                emit({*bop, 0, need_register(pl, 1), need_register(pl, 2),
                      static_cast<std::int32_t>(off)},
                     pl.source_line);
            } else if (m == "lw") {
                // lw rd, offset(rs1)  |  lw rd, rs1, offset
                if (pl.tokens.size() == 3) {
                    const auto [off, base] = parse_mem_operand(pl, 2);
                    emit({Op::kLw, need_register(pl, 1), base, 0, off},
                         pl.source_line);
                } else {
                    emit({Op::kLw, need_register(pl, 1), need_register(pl, 2),
                          0, static_cast<std::int32_t>(need_value(pl, 3))},
                         pl.source_line);
                }
            } else if (m == "sw") {
                if (pl.tokens.size() == 3) {
                    const auto [off, base] = parse_mem_operand(pl, 2);
                    emit({Op::kSw, need_register(pl, 1), base, 0, off},
                         pl.source_line);
                } else {
                    emit({Op::kSw, need_register(pl, 1), need_register(pl, 2),
                          0, static_cast<std::int32_t>(need_value(pl, 3))},
                         pl.source_line);
                }
            } else if (m == "lui") {
                emit({Op::kLui, need_register(pl, 1), 0, 0,
                      static_cast<std::int32_t>(need_value(pl, 2))},
                     pl.source_line);
            } else if (m == "jal") {
                // jal rd, target
                const std::int64_t target = need_value(pl, 2);
                const bool is_label = program_.symbols.count(pl.tokens[2]) != 0;
                const std::int64_t off = is_label ? target - next_pc : target;
                emit({Op::kJal, need_register(pl, 1), 0, 0,
                      static_cast<std::int32_t>(off)},
                     pl.source_line);
            } else if (m == "halt") {
                emit({Op::kHalt, 0, 0, 0, 0}, pl.source_line);
            } else if (m == "nop") {
                emit({Op::kAddi, 0, 0, 0, 0}, pl.source_line);
            } else if (m == "mov") {
                emit({Op::kAdd, need_register(pl, 1), need_register(pl, 2), 0,
                      0},
                     pl.source_line);
            } else if (m == "li" || m == "la") {
                emit_li(need_register(pl, 1), need_value(pl, 2), pl.source_line);
            } else if (m == "j") {
                const std::int64_t target = need_value(pl, 1);
                const bool is_label = program_.symbols.count(pl.tokens[1]) != 0;
                const std::int64_t off = is_label ? target - next_pc : target;
                emit({Op::kJal, 0, 0, 0, static_cast<std::int32_t>(off)},
                     pl.source_line);
            } else if (m == "call") {
                const std::int64_t target = need_value(pl, 1);
                const bool is_label = program_.symbols.count(pl.tokens[1]) != 0;
                const std::int64_t off = is_label ? target - next_pc : target;
                emit({Op::kJal, kLinkRegister, 0, 0,
                      static_cast<std::int32_t>(off)},
                     pl.source_line);
            } else if (m == "ret") {
                emit({Op::kJalr, 0, kLinkRegister, 0, 0}, pl.source_line);
            } else {
                throw AssemblyError(pl.source_line,
                                    "unknown mnemonic '" + m + "'");
            }
            pc += static_cast<std::uint32_t>(width);
        }
    }

    /// Parse "offset(rN)" memory operands.
    [[nodiscard]] std::pair<std::int32_t, std::uint8_t> parse_mem_operand(
        const PendingLine& pl, std::size_t idx) const {
        const std::string& t = pl.tokens[idx];
        const auto open = t.find('(');
        const auto close = t.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
            throw AssemblyError(pl.source_line, "expected offset(reg)");
        const std::string off_s = t.substr(0, open);
        const std::string reg_s = t.substr(open + 1, close - open - 1);
        const auto reg = parse_register(reg_s);
        if (!reg) throw AssemblyError(pl.source_line, "bad base register");
        const std::int64_t off =
            off_s.empty() ? 0 : resolve_value(off_s, pl.source_line);
        return {static_cast<std::int32_t>(off), *reg};
    }
};

}  // namespace

Program assemble(std::string_view source) { return Assembler{}.run(source); }

std::string disassemble(std::uint32_t word) {
    const Instruction ins = decode(word);
    std::ostringstream out;
    out << mnemonic(ins.op);
    if (is_r_type(ins.op)) {
        out << " r" << int{ins.rd} << ", r" << int{ins.rs1} << ", r"
            << int{ins.rs2};
    } else if (ins.op == Op::kLw || ins.op == Op::kSw) {
        out << " r" << int{ins.rd} << ", " << ins.imm << "(r" << int{ins.rs1}
            << ")";
    } else if (is_i_type(ins.op)) {
        out << " r" << int{ins.rd} << ", r" << int{ins.rs1} << ", " << ins.imm;
    } else if (is_b_type(ins.op)) {
        out << " r" << int{ins.rs1} << ", r" << int{ins.rs2} << ", " << ins.imm;
    } else if (is_j_type(ins.op)) {
        out << " r" << int{ins.rd} << ", " << ins.imm;
    }
    return out.str();
}

}  // namespace ob::sabre
