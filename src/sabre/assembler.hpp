#pragma once

#include <cstdint>
#include <stdexcept>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sabre/isa.hpp"

namespace ob::sabre {

/// Error with the offending source line attached.
class AssemblyError : public std::runtime_error {
public:
    AssemblyError(std::size_t line, const std::string& message)
        : std::runtime_error("line " + std::to_string(line) + ": " + message),
          line_(line) {}
    [[nodiscard]] std::size_t line() const { return line_; }

private:
    std::size_t line_;
};

/// Assembled program image.
struct Program {
    std::vector<std::uint32_t> words;  ///< program memory image
    std::map<std::string, std::uint32_t> symbols;  ///< label -> instr index
};

/// Two-pass assembler for Sabre-32 assembly.
///
/// Syntax:
///   * one instruction per line; `;` or `#` start a comment
///   * labels: `name:` (may share a line with an instruction)
///   * registers: r0..r15, plus aliases zero (r0), lr (r14), sp (r15)
///   * immediates: decimal or 0x hex, optionally negative
///   * `.equ NAME value` defines a constant usable as an immediate
///   * branch/jump targets may be labels (pc-relative encoding is
///     computed) or numeric immediates (raw offsets)
///
/// Pseudo-instructions:
///   nop                 -> addi r0, r0, 0
///   mov rd, rs          -> add rd, rs, r0
///   li  rd, imm32       -> addi (if it fits) or lui+ori pair
///   la  rd, label       -> li with the label's instruction index
///   j   label           -> jal r0, label
///   call label          -> jal lr, label
///   ret                 -> jalr r0, lr, 0
[[nodiscard]] Program assemble(std::string_view source);

/// Disassemble one instruction word (for traces and error messages).
[[nodiscard]] std::string disassemble(std::uint32_t word);

}  // namespace ob::sabre
