#include "sabre/cpu.hpp"

#include <cstring>
#include <string>

namespace ob::sabre {

DecodedProgram::DecodedProgram(Program program)
    : words_(std::move(program.words)) {
    if (words_.size() > kProgramWords)
        throw std::invalid_argument("SabreCpu: program exceeds 8KB");
    code_.reserve(words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) {
        try {
            code_.push_back(predecode(words_[i]));
        } catch (const std::invalid_argument& e) {
            throw std::invalid_argument("program word " + std::to_string(i) +
                                        ": " + e.what());
        }
    }
}

SabreCpu::SabreCpu(Program program, DispatchMode mode)
    : SabreCpu(std::make_shared<const DecodedProgram>(std::move(program)),
               mode) {}

SabreCpu::SabreCpu(std::shared_ptr<const DecodedProgram> image,
                   DispatchMode mode)
    : image_(std::move(image)), mode_(mode) {
    if (!image_) throw std::invalid_argument("SabreCpu: null program image");
}

std::uint32_t SabreCpu::load_data(std::uint32_t addr) const {
    if (addr % 4 != 0 || addr + 4 > kDataBytes)
        throw SabreTrap(pc_, "host load_data fault");
    std::uint32_t v;
    std::memcpy(&v, &data_[addr], 4);
    return v;
}

void SabreCpu::store_data(std::uint32_t addr, std::uint32_t value) {
    if (addr % 4 != 0 || addr + 4 > kDataBytes)
        throw SabreTrap(pc_, "host store_data fault");
    std::memcpy(&data_[addr], &value, 4);
}

// Loads/stores are ~87% of the boresight instruction stream; forcing the
// accessors into the batched loop keeps its locals (pc, counters) out of
// spill slots across what would otherwise be a call per memory op.
[[gnu::always_inline]] inline std::uint32_t SabreCpu::mem_read(
    std::uint32_t addr, std::uint32_t pc) {
    if ((addr & kPeripheralBit) != 0) return bus_.read(addr & ~kPeripheralBit);
    if (addr % 4 != 0) throw SabreTrap(pc, "misaligned load");
    if (addr + 4 > kDataBytes) throw SabreTrap(pc, "load out of range");
    std::uint32_t v;
    std::memcpy(&v, &data_[addr], 4);
    return v;
}

[[gnu::always_inline]] inline void SabreCpu::mem_write(std::uint32_t addr,
                                                       std::uint32_t value,
                                                       std::uint32_t pc) {
    if ((addr & kPeripheralBit) != 0) {
        const std::uint32_t off = addr & ~kPeripheralBit;
        bus_.write(off, value);
        // Flag a completed store into the watched window (if any) so
        // run_until_bus_write can hand control back to the host poll.
        watch_hit_ |=
            (off & ~(SabreBus::kWindowBytes - 1)) == watch_window_;
        return;
    }
    if (addr % 4 != 0) throw SabreTrap(pc, "misaligned store");
    if (addr + 4 > kDataBytes) throw SabreTrap(pc, "store out of range");
    std::memcpy(&data_[addr], &value, 4);
}

// ---------------------------------------------------------------------------
// Cached dispatch: one handler per opcode, indexed by the raw 6-bit opcode
// id cached in DecodedInst. Handlers run after cycles/retired accounting
// and are responsible for the register write and the pc update, in the
// same order the reference interpreter performs them (faults leave regs
// and pc untouched).
// ---------------------------------------------------------------------------

struct SabreOps {
    /// Handlers thread the execution state through registers: they take
    /// the current pc by value and return the next pc in the low word
    /// with any taken-branch cycle penalty in the high word, so the
    /// batched executor's fetch and cycle accounting never wait on a
    /// member store/reload round-trip through memory. A handler that
    /// throws returns nothing — the caller leaves pc_ at the faulting
    /// instruction, and traps quote the pc they were handed.
    using Fn = std::uint64_t (*)(SabreCpu&, const Instruction&,
                                 std::uint32_t);

    static std::uint64_t illegal(SabreCpu&, const Instruction&,
                                 std::uint32_t pc) {
        // Unreachable for any image DecodedProgram accepted; kept so a
        // stray table slot faults like every other CPU fault.
        throw SabreTrap(pc, "illegal instruction");
    }

    // R-type arithmetic/logic.
    static std::uint64_t add(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] + c.regs_[d.rs2]);
        return pc + 1;
    }
    static std::uint64_t sub(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] - c.regs_[d.rs2]);
        return pc + 1;
    }
    static std::uint64_t and_(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] & c.regs_[d.rs2]);
        return pc + 1;
    }
    static std::uint64_t or_(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] | c.regs_[d.rs2]);
        return pc + 1;
    }
    static std::uint64_t xor_(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] ^ c.regs_[d.rs2]);
        return pc + 1;
    }
    static std::uint64_t sll(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] << (c.regs_[d.rs2] & 31));
        return pc + 1;
    }
    static std::uint64_t srl(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] >> (c.regs_[d.rs2] & 31));
        return pc + 1;
    }
    static std::uint64_t sra(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd, static_cast<std::uint32_t>(
                           static_cast<std::int32_t>(c.regs_[d.rs1]) >>
                           (c.regs_[d.rs2] & 31)));
        return pc + 1;
    }
    static std::uint64_t mul(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd,
                 static_cast<std::uint32_t>(
                     static_cast<std::int64_t>(
                         static_cast<std::int32_t>(c.regs_[d.rs1])) *
                     static_cast<std::int32_t>(c.regs_[d.rs2])));
        return pc + 1;
    }
    static std::uint64_t slt(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd, static_cast<std::int32_t>(c.regs_[d.rs1]) <
                               static_cast<std::int32_t>(c.regs_[d.rs2])
                           ? 1
                           : 0);
        return pc + 1;
    }
    static std::uint64_t sltu(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] < c.regs_[d.rs2] ? 1 : 0);
        return pc + 1;
    }

    // I-type.
    static std::uint64_t addi(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] + static_cast<std::uint32_t>(d.imm));
        return pc + 1;
    }
    static std::uint64_t andi(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] & static_cast<std::uint32_t>(d.imm));
        return pc + 1;
    }
    static std::uint64_t ori(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] | static_cast<std::uint32_t>(d.imm));
        return pc + 1;
    }
    static std::uint64_t xori(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] ^ static_cast<std::uint32_t>(d.imm));
        return pc + 1;
    }
    static std::uint64_t slli(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] << (d.imm & 31));
        return pc + 1;
    }
    static std::uint64_t srli(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd, c.regs_[d.rs1] >> (d.imm & 31));
        return pc + 1;
    }
    static std::uint64_t srai(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd, static_cast<std::uint32_t>(
                           static_cast<std::int32_t>(c.regs_[d.rs1]) >>
                           (d.imm & 31)));
        return pc + 1;
    }
    static std::uint64_t slti(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        c.set_rd(d.rd,
                 static_cast<std::int32_t>(c.regs_[d.rs1]) < d.imm ? 1 : 0);
        return pc + 1;
    }
    static std::uint64_t lui(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        c.set_rd(d.rd, static_cast<std::uint32_t>(d.imm) << 14);
        return pc + 1;
    }
    static std::uint64_t lw(SabreCpu& c, const Instruction& d,
                            std::uint32_t pc) {
        c.set_rd(d.rd, c.mem_read(c.regs_[d.rs1] +
                                      static_cast<std::uint32_t>(d.imm),
                                  pc));
        return pc + 1;
    }
    static std::uint64_t sw(SabreCpu& c, const Instruction& d,
                            std::uint32_t pc) {
        c.mem_write(c.regs_[d.rs1] + static_cast<std::uint32_t>(d.imm),
                    c.regs_[d.rd], pc);
        return pc + 1;
    }

    // B-type: comparands live in rs1/rs2 fields.
    static std::uint64_t beq(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        if (c.regs_[d.rs1] == c.regs_[d.rs2]) return c.take_branch(pc, d.imm);
        return pc + 1;
    }
    static std::uint64_t bne(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        if (c.regs_[d.rs1] != c.regs_[d.rs2]) return c.take_branch(pc, d.imm);
        return pc + 1;
    }
    static std::uint64_t blt(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        if (static_cast<std::int32_t>(c.regs_[d.rs1]) <
            static_cast<std::int32_t>(c.regs_[d.rs2]))
            return c.take_branch(pc, d.imm);
        return pc + 1;
    }
    static std::uint64_t bge(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        if (static_cast<std::int32_t>(c.regs_[d.rs1]) >=
            static_cast<std::int32_t>(c.regs_[d.rs2]))
            return c.take_branch(pc, d.imm);
        return pc + 1;
    }
    static std::uint64_t bltu(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        if (c.regs_[d.rs1] < c.regs_[d.rs2]) return c.take_branch(pc, d.imm);
        return pc + 1;
    }
    static std::uint64_t bgeu(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        if (c.regs_[d.rs1] >= c.regs_[d.rs2]) return c.take_branch(pc, d.imm);
        return pc + 1;
    }

    // Jumps / system.
    static std::uint64_t jal(SabreCpu& c, const Instruction& d,
                             std::uint32_t pc) {
        const std::int64_t target = static_cast<std::int64_t>(pc) + 1 + d.imm;
        c.check_jump_target(target, pc);
        c.set_rd(d.rd, pc + 1);
        return static_cast<std::uint32_t>(target);
    }
    static std::uint64_t jalr(SabreCpu& c, const Instruction& d,
                              std::uint32_t pc) {
        const std::int64_t target =
            static_cast<std::int64_t>(c.regs_[d.rs1]) + d.imm;
        c.check_jump_target(target, pc);
        c.set_rd(d.rd, pc + 1);
        return static_cast<std::uint32_t>(target);
    }
    static std::uint64_t halt(SabreCpu& c, const Instruction&,
                              std::uint32_t pc) {
        c.halted_ = true;
        return pc + 1;
    }

    /// Loop-invariant bus-routing state the batched executor hoists into
    /// registers: the devirtualized FPU window and the watched window.
    /// Handler side effects cannot change these (the bus topology is
    /// frozen after construction and the watch window is pinned for the
    /// whole run), but the compiler cannot prove that across the opaque
    /// device calls, so the executor passes a by-value snapshot instead
    /// of re-reading the members on every access.
    struct BusFast {
        FpuPeripheral* fpu;
        std::uint32_t fpu_window;
        std::uint32_t watch_window;
    };

    /// Batched-executor fast path for lw: data memory and the FPU window
    /// complete inline; any other access returns false WITHOUT side
    /// effects so the caller can flush bus-observable state and re-run
    /// the access through the shared lw handler. Address decode and the
    /// data-memory body mirror mem_read exactly (the dispatch-mode
    /// differential fuzz holds them in lockstep).
    [[gnu::always_inline]] static inline bool lw_fast(SabreCpu& c,
                                                      const Instruction& d,
                                                      const BusFast& bf) {
        const std::uint32_t addr =
            c.regs_[d.rs1] + static_cast<std::uint32_t>(d.imm);
        if ((addr & kPeripheralBit) != 0) {
            const std::uint32_t off = addr & ~kPeripheralBit;
            if (off / SabreBus::kWindowBytes != bf.fpu_window) return false;
            c.set_rd(d.rd, bf.fpu->FpuPeripheral::read(
                               off & (SabreBus::kWindowBytes - 1)));
            return true;
        }
        if (addr % 4 != 0 || addr + 4 > kDataBytes) return false;  // traps
        std::uint32_t v;
        std::memcpy(&v, &c.data_[addr], 4);
        c.set_rd(d.rd, v);
        return true;
    }

    /// sw_fast outcome. The fast path reports whether the store hit the
    /// watch window instead of setting `watch_hit_` itself, so the
    /// executor's post-store stop check never has to re-read the member
    /// (which the inlined FPU stores would otherwise force it to reload —
    /// the compiler cannot prove a store through the FPU pointer does not
    /// alias it).
    enum SwFast : std::uint8_t {
        kSwFallback = 0,  ///< not handled; re-run through the shared sw
        kSwDone = 1,      ///< store completed, watch window untouched
        kSwWatchHit = 2,  ///< store completed into the watched window
    };

    /// Batched-executor fast path for sw; the FPU branch performs the
    /// same write-then-watch-check sequence as mem_write (a throwing FPU
    /// command propagates before the watch outcome is applied there too).
    [[gnu::always_inline]] static inline SwFast sw_fast(SabreCpu& c,
                                                        const Instruction& d,
                                                        const BusFast& bf) {
        const std::uint32_t addr =
            c.regs_[d.rs1] + static_cast<std::uint32_t>(d.imm);
        if ((addr & kPeripheralBit) != 0) {
            const std::uint32_t off = addr & ~kPeripheralBit;
            if (off / SabreBus::kWindowBytes != bf.fpu_window)
                return kSwFallback;
            bf.fpu->FpuPeripheral::write(off & (SabreBus::kWindowBytes - 1),
                                         c.regs_[d.rd]);
            return (off & ~(SabreBus::kWindowBytes - 1)) == bf.watch_window
                       ? kSwWatchHit
                       : kSwDone;
        }
        if (addr % 4 != 0 || addr + 4 > kDataBytes)
            return kSwFallback;  // traps on the slow path
        std::memcpy(&c.data_[addr], &c.regs_[d.rd], 4);
        return kSwDone;
    }
};

namespace {

[[nodiscard]] constexpr std::size_t slot(Op op) {
    return static_cast<std::size_t>(op);
}

[[nodiscard]] constexpr std::array<SabreOps::Fn, kOpcodeSlots>
make_dispatch_table() {
    std::array<SabreOps::Fn, kOpcodeSlots> t{};
    for (auto& fn : t) fn = &SabreOps::illegal;
    t[slot(Op::kAdd)] = &SabreOps::add;
    t[slot(Op::kSub)] = &SabreOps::sub;
    t[slot(Op::kAnd)] = &SabreOps::and_;
    t[slot(Op::kOr)] = &SabreOps::or_;
    t[slot(Op::kXor)] = &SabreOps::xor_;
    t[slot(Op::kSll)] = &SabreOps::sll;
    t[slot(Op::kSrl)] = &SabreOps::srl;
    t[slot(Op::kSra)] = &SabreOps::sra;
    t[slot(Op::kMul)] = &SabreOps::mul;
    t[slot(Op::kSlt)] = &SabreOps::slt;
    t[slot(Op::kSltu)] = &SabreOps::sltu;
    t[slot(Op::kAddi)] = &SabreOps::addi;
    t[slot(Op::kAndi)] = &SabreOps::andi;
    t[slot(Op::kOri)] = &SabreOps::ori;
    t[slot(Op::kXori)] = &SabreOps::xori;
    t[slot(Op::kSlli)] = &SabreOps::slli;
    t[slot(Op::kSrli)] = &SabreOps::srli;
    t[slot(Op::kSrai)] = &SabreOps::srai;
    t[slot(Op::kSlti)] = &SabreOps::slti;
    t[slot(Op::kLui)] = &SabreOps::lui;
    t[slot(Op::kLw)] = &SabreOps::lw;
    t[slot(Op::kSw)] = &SabreOps::sw;
    t[slot(Op::kBeq)] = &SabreOps::beq;
    t[slot(Op::kBne)] = &SabreOps::bne;
    t[slot(Op::kBlt)] = &SabreOps::blt;
    t[slot(Op::kBge)] = &SabreOps::bge;
    t[slot(Op::kBltu)] = &SabreOps::bltu;
    t[slot(Op::kBgeu)] = &SabreOps::bgeu;
    t[slot(Op::kJal)] = &SabreOps::jal;
    t[slot(Op::kJalr)] = &SabreOps::jalr;
    t[slot(Op::kHalt)] = &SabreOps::halt;
    return t;
}

constexpr std::array<SabreOps::Fn, kOpcodeSlots> kDispatch =
    make_dispatch_table();

}  // namespace

bool SabreCpu::step() {
    if (halted_) return false;
    if (pc_ >= image_->size()) throw SabreTrap(pc_, "pc out of program");
    if (mode_ == DispatchMode::kCached)
        return step_cached(image_->code()[pc_]);
    return step_interpreted(image_->words()[pc_]);
}

bool SabreCpu::step_cached(const DecodedInst& di) {
    if (trace_) trace_(pc_, di.ins);
    cycles_ += di.cost;
    ++retired_;
    const std::uint64_t r = kDispatch[di.opid](*this, di.ins, pc_);
    cycles_ += r >> 32;
    pc_ = static_cast<std::uint32_t>(r);
    return !halted_;
}

// Reference interpreter: fetch/decode every step, execute through one big
// switch. Kept as the differential-testing oracle for the cached path —
// architectural state (regs, data memory, cycles, retired, trace-hook
// sequence) must stay bit-identical between the two modes.
bool SabreCpu::step_interpreted(std::uint32_t word) {
    Instruction ins;
    try {
        ins = decode(word);
    } catch (const std::invalid_argument& e) {
        // Unreachable: predecode validated every word at load. A residual
        // decode fault still surfaces as a trap, never a naked
        // invalid_argument with no pc context.
        throw SabreTrap(pc_, e.what());
    }
    if (trace_) trace_(pc_, ins);

    cycles_ += base_cycles(ins.op);
    ++retired_;
    std::uint32_t next_pc = pc_ + 1;

    const std::uint32_t a = regs_[ins.rs1];
    const std::uint32_t b = regs_[ins.rs2];
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    std::uint32_t rd_value = 0;
    bool writes_rd = true;

    switch (ins.op) {
        case Op::kAdd: rd_value = a + b; break;
        case Op::kSub: rd_value = a - b; break;
        case Op::kAnd: rd_value = a & b; break;
        case Op::kOr: rd_value = a | b; break;
        case Op::kXor: rd_value = a ^ b; break;
        case Op::kSll: rd_value = a << (b & 31); break;
        case Op::kSrl: rd_value = a >> (b & 31); break;
        case Op::kSra:
            rd_value = static_cast<std::uint32_t>(sa >> (b & 31));
            break;
        case Op::kMul:
            rd_value = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(sa) * sb);
            break;
        case Op::kSlt: rd_value = sa < sb ? 1 : 0; break;
        case Op::kSltu: rd_value = a < b ? 1 : 0; break;

        case Op::kAddi:
            rd_value = a + static_cast<std::uint32_t>(ins.imm);
            break;
        case Op::kAndi:
            rd_value = a & static_cast<std::uint32_t>(ins.imm);
            break;
        case Op::kOri:
            rd_value = a | static_cast<std::uint32_t>(ins.imm);
            break;
        case Op::kXori:
            rd_value = a ^ static_cast<std::uint32_t>(ins.imm);
            break;
        case Op::kSlli: rd_value = a << (ins.imm & 31); break;
        case Op::kSrli: rd_value = a >> (ins.imm & 31); break;
        case Op::kSrai:
            rd_value = static_cast<std::uint32_t>(sa >> (ins.imm & 31));
            break;
        case Op::kSlti: rd_value = sa < ins.imm ? 1 : 0; break;
        case Op::kLui:
            rd_value = static_cast<std::uint32_t>(ins.imm) << 14;
            break;
        case Op::kLw:
            rd_value = mem_read(a + static_cast<std::uint32_t>(ins.imm), pc_);
            break;
        case Op::kSw:
            mem_write(a + static_cast<std::uint32_t>(ins.imm), regs_[ins.rd],
                      pc_);
            writes_rd = false;
            break;

        case Op::kBeq:
        case Op::kBne:
        case Op::kBlt:
        case Op::kBge:
        case Op::kBltu:
        case Op::kBgeu: {
            // B-type: comparands live in rs1/rs2 fields.
            const std::uint32_t x = regs_[ins.rs1];
            const std::uint32_t y = regs_[ins.rs2];
            const auto sx = static_cast<std::int32_t>(x);
            const auto sy = static_cast<std::int32_t>(y);
            bool taken = false;
            switch (ins.op) {
                case Op::kBeq: taken = x == y; break;
                case Op::kBne: taken = x != y; break;
                case Op::kBlt: taken = sx < sy; break;
                case Op::kBge: taken = sx >= sy; break;
                case Op::kBltu: taken = x < y; break;
                case Op::kBgeu: taken = x >= y; break;
                default: break;
            }
            if (taken) {
                next_pc = pc_ + 1 + static_cast<std::uint32_t>(ins.imm);
                cycles_ += kBranchTakenExtra;
            }
            writes_rd = false;
            break;
        }

        case Op::kJal: {
            const std::int64_t target =
                static_cast<std::int64_t>(pc_) + 1 + ins.imm;
            check_jump_target(target, pc_);
            rd_value = pc_ + 1;
            next_pc = static_cast<std::uint32_t>(target);
            break;
        }
        case Op::kJalr: {
            const std::int64_t target =
                static_cast<std::int64_t>(a) + ins.imm;
            check_jump_target(target, pc_);
            rd_value = pc_ + 1;
            next_pc = static_cast<std::uint32_t>(target);
            break;
        }

        case Op::kHalt:
            halted_ = true;
            writes_rd = false;
            break;
    }

    if (writes_rd && ins.rd != 0) regs_[ins.rd] = rd_value;
    regs_[0] = 0;
    pc_ = next_pc;
    return !halted_;
}

std::size_t SabreCpu::run_stepwise(std::uint64_t max_cycles,
                                   bool stop_on_watch) {
    std::size_t n = 0;
    while (!halted_ && !(stop_on_watch && watch_hit_)) {
        // Stop-at-or-before: issue an instruction only when even its
        // worst-case cost fits the budget. A pc outside the program falls
        // through to step(), which raises the usual fetch trap.
        if (pc_ < image_->size() &&
            cycles_ + image_->code()[pc_].worst_cost > max_cycles)
            break;
        step();
        ++n;
    }
    return n;
}

// The cached-mode hot loop: no per-step function call, no trace or mode
// re-check, and every opcode executes through the inlined SabreOps bodies
// (the threaded code and the function table share one handler per op, so
// the two paths cannot diverge). The pc and the cycle/retired counters
// live in locals the whole loop — handlers take the pc by value and
// return the packed next-pc/branch-penalty word — and are written back to
// the members on every exit, including a trap, so faults still leave pc_
// at the faulting instruction with its cycles charged. `cycles_` is
// additionally flushed before every memory op: a bus peripheral may
// observe the live counter (CounterPeripheral), and the instruction's own
// cost is charged before it executes, exactly as in run_stepwise. Budget
// and fault semantics are those of run_stepwise, instruction for
// instruction.
//
// On GNU-compatible compilers the dispatch is token-threaded (computed
// goto): each handler tail re-fetches and jumps through its own indirect
// branch, giving the branch predictor per-opcode context instead of one
// shared switch site. Elsewhere the per-step loop is used — slower, but
// bit-identical.
std::size_t SabreCpu::run_batched(std::uint64_t max_cycles,
                                  bool stop_on_watch) {
#if defined(__GNUC__) || defined(__clang__)
// Label addresses and computed goto are the point of this branch; the
// whole function already falls back to run_stepwise elsewhere.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
    const DecodedInst* code = image_->code().data();
    const auto limit = static_cast<std::uint32_t>(image_->size());
    std::uint32_t pc = pc_;
    std::uint64_t cyc = cycles_;
    std::uint64_t ret = retired_;
    const std::uint64_t ret0 = ret;
    // Label-address table indexed by the raw 6-bit opcode (same layout as
    // kDispatch); unassigned slots fall through to the table's illegal
    // handler.
    static const void* const kLabels[kOpcodeSlots] = {
        &&L_add,  &&L_sub,  &&L_and,  &&L_or,    // 0x00-0x03
        &&L_xor,  &&L_sll,  &&L_srl,  &&L_sra,   // 0x04-0x07
        &&L_mul,  &&L_slt,  &&L_sltu, &&L_other,  // 0x08-0x0B
        &&L_other, &&L_other, &&L_other, &&L_other,
        &&L_addi, &&L_andi, &&L_ori,  &&L_xori,  // 0x10-0x13
        &&L_slli, &&L_srli, &&L_srai, &&L_slti,  // 0x14-0x17
        &&L_lui,  &&L_lw,   &&L_sw,   &&L_other,  // 0x18-0x1B
        &&L_other, &&L_other, &&L_other, &&L_other,
        &&L_beq,  &&L_bne,  &&L_blt,  &&L_bge,   // 0x20-0x23
        &&L_bltu, &&L_bgeu, &&L_other, &&L_other,  // 0x24-0x27
        &&L_other, &&L_other, &&L_other, &&L_other,
        &&L_other, &&L_other, &&L_other, &&L_other,
        &&L_jal,  &&L_jalr, &&L_other, &&L_other,  // 0x30-0x33
        &&L_other, &&L_other, &&L_other, &&L_other,
        &&L_other, &&L_other, &&L_other, &&L_other,
        &&L_other, &&L_other, &&L_other, &&L_halt,  // 0x3C-0x3F
    };
    const DecodedInst* di;
    std::uint64_t r;
    // Snapshot of the frozen bus-routing state (see SabreOps::BusFast):
    // lets lw/sw keep the FPU window and watch window in registers instead
    // of re-reading members the compiler must assume any device call may
    // have changed. A null FPU is safe: the window sentinel 0xFFFFFFFF can
    // never match a masked offset's window.
    const SabreOps::BusFast bus_fast{bus_.fpu(), bus_.fpu_window(),
                                     watch_window_};

// Budget check, per-instruction accounting, fetch, and the threaded jump
// — replicated into every handler tail. The halt and watch-hit stop
// conditions are NOT re-checked here: inside the loop `halted_` can only
// transition at the halt tail and `watch_hit_` at a completed store, so
// those tails perform the exit check themselves (the entry fetch below
// handles a CPU that was already halted or watched when run_batched was
// called). The generic L_other tail re-checks both, as its table handlers
// are opaque to this reasoning.
#define OB_SABRE_FETCH()                              \
    do {                                              \
        if (pc >= limit) {                            \
            pc_ = pc;                                 \
            cycles_ = cyc;                            \
            retired_ = ret;                           \
            step(); /* raises the usual fetch trap */ \
        }                                             \
        di = code + pc;                               \
        if (cyc + di->worst_cost > max_cycles)        \
            goto L_done;                              \
        cyc += di->cost;                              \
        ++ret;                                        \
        goto* kLabels[di->opid];                      \
    } while (0)

// A handler tail: execute the shared SabreOps body, fold the packed
// branch penalty into the local cycle counter, advance, re-dispatch.
#define OB_SABRE_OP(label, handler)                \
    label:                                         \
    r = SabreOps::handler(*this, di->ins, pc);     \
    cyc += r >> 32;                                \
    pc = static_cast<std::uint32_t>(r);            \
    OB_SABRE_FETCH()

    try {
        if (halted_ || (stop_on_watch && watch_hit_)) goto L_done;
        OB_SABRE_FETCH();
        OB_SABRE_OP(L_add, add);
        OB_SABRE_OP(L_sub, sub);
        OB_SABRE_OP(L_and, and_);
        OB_SABRE_OP(L_or, or_);
        OB_SABRE_OP(L_xor, xor_);
        OB_SABRE_OP(L_sll, sll);
        OB_SABRE_OP(L_srl, srl);
        OB_SABRE_OP(L_sra, sra);
        OB_SABRE_OP(L_mul, mul);
        OB_SABRE_OP(L_slt, slt);
        OB_SABRE_OP(L_sltu, sltu);
        OB_SABRE_OP(L_addi, addi);
        OB_SABRE_OP(L_andi, andi);
        OB_SABRE_OP(L_ori, ori);
        OB_SABRE_OP(L_xori, xori);
        OB_SABRE_OP(L_slli, slli);
        OB_SABRE_OP(L_srli, srli);
        OB_SABRE_OP(L_srai, srai);
        OB_SABRE_OP(L_slti, slti);
        OB_SABRE_OP(L_lui, lui);
    // lw/sw try the register-resident fast path first (data memory and
    // the FPU window). The slow path flushes `cycles_` before touching the
    // bus — a non-FPU peripheral may observe the live counter
    // (CounterPeripheral) — and re-runs the access from scratch through
    // the shared handler, which also produces the trap on a bad address.
    L_lw:
        if (SabreOps::lw_fast(*this, di->ins, bus_fast)) {
            ++pc;
        } else {
            cycles_ = cyc;
            r = SabreOps::lw(*this, di->ins, pc);
            cyc += r >> 32;
            pc = static_cast<std::uint32_t>(r);
        }
        OB_SABRE_FETCH();
    L_sw:
        switch (SabreOps::sw_fast(*this, di->ins, bus_fast)) {
            case SabreOps::kSwDone:
                ++pc;
                break;
            case SabreOps::kSwWatchHit:
                ++pc;
                watch_hit_ = true;
                if (stop_on_watch) goto L_done;
                break;
            case SabreOps::kSwFallback:
                cycles_ = cyc;
                r = SabreOps::sw(*this, di->ins, pc);
                cyc += r >> 32;
                pc = static_cast<std::uint32_t>(r);
                // A store is the only instruction that can hit the watch
                // window; re-check only after this slow path (the fast
                // path reports the hit in its return value instead).
                if (stop_on_watch && watch_hit_) goto L_done;
                break;
        }
        OB_SABRE_FETCH();
        OB_SABRE_OP(L_beq, beq);
        OB_SABRE_OP(L_bne, bne);
        OB_SABRE_OP(L_blt, blt);
        OB_SABRE_OP(L_bge, bge);
        OB_SABRE_OP(L_bltu, bltu);
        OB_SABRE_OP(L_bgeu, bgeu);
        OB_SABRE_OP(L_jal, jal);
        OB_SABRE_OP(L_jalr, jalr);
    L_halt:
        r = SabreOps::halt(*this, di->ins, pc);
        pc = static_cast<std::uint32_t>(r);
        goto L_done;  // halt is the only instruction that sets halted_
    L_other:
        cycles_ = cyc;
        retired_ = ret;
        r = kDispatch[di->opid](*this, di->ins, pc);
        cyc += r >> 32;
        pc = static_cast<std::uint32_t>(r);
        if (halted_ || (stop_on_watch && watch_hit_)) goto L_done;
        OB_SABRE_FETCH();
    L_done:;
    } catch (...) {
        pc_ = pc;
        cycles_ = cyc;
        retired_ = ret;
        throw;
    }
#undef OB_SABRE_OP
#undef OB_SABRE_FETCH
    pc_ = pc;
    cycles_ = cyc;
    retired_ = ret;
    return static_cast<std::size_t>(ret - ret0);
#pragma GCC diagnostic pop
#else
    // No computed goto: the per-step loop shares all semantics.
    return run_stepwise(max_cycles, stop_on_watch);
#endif
}

std::size_t SabreCpu::run(std::uint64_t max_cycles) {
    if (mode_ == DispatchMode::kCached && !trace_)
        return run_batched(max_cycles, /*stop_on_watch=*/false);
    return run_stepwise(max_cycles, /*stop_on_watch=*/false);
}

std::size_t SabreCpu::run_until_bus_write(std::uint32_t window_base,
                                          std::uint64_t max_cycles) {
    watch_window_ = window_base & ~(SabreBus::kWindowBytes - 1);
    watch_hit_ = false;
    std::size_t n = 0;
    try {
        n = (mode_ == DispatchMode::kCached && !trace_)
                ? run_batched(max_cycles, /*stop_on_watch=*/true)
                : run_stepwise(max_cycles, /*stop_on_watch=*/true);
    } catch (...) {
        watch_window_ = kNoWatchWindow;
        throw;
    }
    watch_window_ = kNoWatchWindow;
    return n;
}

}  // namespace ob::sabre
