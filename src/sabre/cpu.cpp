#include "sabre/cpu.hpp"

#include <cstring>

namespace ob::sabre {

SabreCpu::SabreCpu(Program program) : program_(std::move(program.words)) {
    if (program_.size() > kProgramWords)
        throw std::invalid_argument("SabreCpu: program exceeds 8KB");
}

std::uint32_t SabreCpu::load_data(std::uint32_t addr) const {
    if (addr % 4 != 0 || addr + 4 > kDataBytes)
        throw SabreTrap(pc_, "host load_data fault");
    std::uint32_t v;
    std::memcpy(&v, &data_[addr], 4);
    return v;
}

void SabreCpu::store_data(std::uint32_t addr, std::uint32_t value) {
    if (addr % 4 != 0 || addr + 4 > kDataBytes)
        throw SabreTrap(pc_, "host store_data fault");
    std::memcpy(&data_[addr], &value, 4);
}

std::uint32_t SabreCpu::mem_read(std::uint32_t addr) {
    if ((addr & kPeripheralBit) != 0) return bus_.read(addr & ~kPeripheralBit);
    if (addr % 4 != 0) throw SabreTrap(pc_, "misaligned load");
    if (addr + 4 > kDataBytes) throw SabreTrap(pc_, "load out of range");
    std::uint32_t v;
    std::memcpy(&v, &data_[addr], 4);
    return v;
}

void SabreCpu::mem_write(std::uint32_t addr, std::uint32_t value) {
    if ((addr & kPeripheralBit) != 0) {
        bus_.write(addr & ~kPeripheralBit, value);
        return;
    }
    if (addr % 4 != 0) throw SabreTrap(pc_, "misaligned store");
    if (addr + 4 > kDataBytes) throw SabreTrap(pc_, "store out of range");
    std::memcpy(&data_[addr], &value, 4);
}

bool SabreCpu::step() {
    if (halted_) return false;
    if (pc_ >= program_.size()) throw SabreTrap(pc_, "pc out of program");
    const Instruction ins = decode(program_[pc_]);
    if (trace_) trace_(pc_, ins);

    cycles_ += base_cycles(ins.op);
    ++retired_;
    std::uint32_t next_pc = pc_ + 1;

    const std::uint32_t a = regs_[ins.rs1];
    const std::uint32_t b = regs_[ins.rs2];
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    std::uint32_t rd_value = 0;
    bool writes_rd = true;

    switch (ins.op) {
        case Op::kAdd: rd_value = a + b; break;
        case Op::kSub: rd_value = a - b; break;
        case Op::kAnd: rd_value = a & b; break;
        case Op::kOr: rd_value = a | b; break;
        case Op::kXor: rd_value = a ^ b; break;
        case Op::kSll: rd_value = a << (b & 31); break;
        case Op::kSrl: rd_value = a >> (b & 31); break;
        case Op::kSra:
            rd_value = static_cast<std::uint32_t>(sa >> (b & 31));
            break;
        case Op::kMul:
            rd_value = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(sa) * sb);
            break;
        case Op::kSlt: rd_value = sa < sb ? 1 : 0; break;
        case Op::kSltu: rd_value = a < b ? 1 : 0; break;

        case Op::kAddi:
            rd_value = a + static_cast<std::uint32_t>(ins.imm);
            break;
        case Op::kAndi:
            rd_value = a & static_cast<std::uint32_t>(ins.imm);
            break;
        case Op::kOri:
            rd_value = a | static_cast<std::uint32_t>(ins.imm);
            break;
        case Op::kXori:
            rd_value = a ^ static_cast<std::uint32_t>(ins.imm);
            break;
        case Op::kSlli: rd_value = a << (ins.imm & 31); break;
        case Op::kSrli: rd_value = a >> (ins.imm & 31); break;
        case Op::kSrai:
            rd_value = static_cast<std::uint32_t>(sa >> (ins.imm & 31));
            break;
        case Op::kSlti: rd_value = sa < ins.imm ? 1 : 0; break;
        case Op::kLui:
            rd_value = static_cast<std::uint32_t>(ins.imm) << 14;
            break;
        case Op::kLw:
            rd_value = mem_read(a + static_cast<std::uint32_t>(ins.imm));
            break;
        case Op::kSw:
            mem_write(a + static_cast<std::uint32_t>(ins.imm), regs_[ins.rd]);
            writes_rd = false;
            break;

        case Op::kBeq:
        case Op::kBne:
        case Op::kBlt:
        case Op::kBge:
        case Op::kBltu:
        case Op::kBgeu: {
            // B-type: comparands live in rs1/rs2 fields.
            const std::uint32_t x = regs_[ins.rs1];
            const std::uint32_t y = regs_[ins.rs2];
            const auto sx = static_cast<std::int32_t>(x);
            const auto sy = static_cast<std::int32_t>(y);
            bool taken = false;
            switch (ins.op) {
                case Op::kBeq: taken = x == y; break;
                case Op::kBne: taken = x != y; break;
                case Op::kBlt: taken = sx < sy; break;
                case Op::kBge: taken = sx >= sy; break;
                case Op::kBltu: taken = x < y; break;
                case Op::kBgeu: taken = x >= y; break;
                default: break;
            }
            if (taken) {
                next_pc = pc_ + 1 + static_cast<std::uint32_t>(ins.imm);
                cycles_ += kBranchTakenExtra;
            }
            writes_rd = false;
            break;
        }

        case Op::kJal:
            rd_value = pc_ + 1;
            next_pc = pc_ + 1 + static_cast<std::uint32_t>(ins.imm);
            break;
        case Op::kJalr:
            rd_value = pc_ + 1;
            next_pc = a + static_cast<std::uint32_t>(ins.imm);
            break;

        case Op::kHalt:
            halted_ = true;
            writes_rd = false;
            break;
    }

    if (writes_rd && ins.rd != 0) regs_[ins.rd] = rd_value;
    regs_[0] = 0;
    pc_ = next_pc;
    return !halted_;
}

std::size_t SabreCpu::run(std::uint64_t max_cycles) {
    std::size_t n = 0;
    while (!halted_ && cycles_ < max_cycles) {
        step();
        ++n;
    }
    return n;
}

}  // namespace ob::sabre
