#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sabre/cpu.hpp"

namespace ob::sabre {

/// Data-memory layout shared between the generated firmware and the host
/// that initializes it. All cells are 32-bit (floats unless noted).
struct FirmwareLayout {
    // Filter state.
    std::uint32_t x = 0x000;  ///< 3 floats: roll, pitch, yaw estimate (rad)
    std::uint32_t p = 0x010;  ///< 9 floats: covariance, row-major
    // Tuning and constants (host-initialized).
    std::uint32_t q = 0x040;           ///< angle process noise variance
    std::uint32_t r = 0x044;           ///< measurement noise variance
    std::uint32_t accel_lsb = 0x048;   ///< DMU accel scale (m/s^2 per LSB)
    std::uint32_t duty_scale = 0x04C;  ///< g / duty_per_g (m/s^2 per duty)
    std::uint32_t half = 0x050;        ///< 0.5f
    std::uint32_t fix_one = 0x054;     ///< 65536.0f (Q16.16 scale)
    std::uint32_t three = 0x058;       ///< 3.0f
    // Working storage.
    std::uint32_t f = 0x060;    ///< 3 floats: body specific force
    std::uint32_t z = 0x070;    ///< 2 floats: ACC measurement
    std::uint32_t zp = 0x078;   ///< 2 floats: predicted measurement
    std::uint32_t nf = 0x080;   ///< 2 floats: -f2, -f0
    std::uint32_t pht = 0x090;  ///< 6 floats: P*H^T
    std::uint32_t s = 0x0B0;    ///< 4 floats: innovation covariance
    std::uint32_t sinv = 0x0C0; ///< 4 floats
    std::uint32_t k = 0x0D0;    ///< 6 floats: gain
    std::uint32_t nu = 0x0E8;   ///< 2 floats: innovation
    std::uint32_t tmp = 0x0F0;  ///< scratch floats
    std::uint32_t newp = 0x110; ///< 9 floats: updated covariance

    friend bool operator==(const FirmwareLayout&,
                           const FirmwareLayout&) = default;
};

/// Generate the Sabre-32 assembly source of the boresight fusion firmware.
///
/// This generator plays the role of the paper's C-to-Sabre compilation
/// flow (§10: "The Sabre program code was written in C and compiled to the
/// Sabre Instruction Set Architecture"): the filter is described once in
/// C++ emit-calls and lowered to the ISA. The generated program:
///
///   * polls the smart DMU/ACC ports for a synchronized sample pair,
///   * converts raw register values to SI floats via the FPU peripheral,
///   * runs one small-angle 3-state Kalman update per sample pair
///     (z = f_xy + (skew(f)rho)_xy, H = rows of skew(f), simple-form
///     covariance update),
///   * publishes roll/pitch/yaw and their 3-sigma as Q16.16 to the
///     control registers the video block reads, bumps the update counter,
///   * loops forever.
///
/// All floating-point arithmetic goes through the memory-mapped softfloat
/// FPU peripheral, so results are bit-faithful IEEE binary32.
[[nodiscard]] std::string boresight_firmware_source(
    const FirmwareLayout& layout = {});

/// Assembled and predecoded boresight firmware. The default-layout image
/// is built exactly once per process and shared — a fleet sweep constructs
/// one SabreCpu per scenario realization, and they all dispatch from the
/// same DecodedInst array instead of re-assembling and re-decoding the
/// firmware per run. A non-default layout assembles a fresh image.
[[nodiscard]] std::shared_ptr<const DecodedProgram> boresight_firmware_image(
    const FirmwareLayout& layout = {});

}  // namespace ob::sabre
