// fleet_client: CLI for the fleet_serve daemon (docs/PROTOCOL.md). Opens a
// session, issues one request, prints streamed per-job results as they
// arrive, and exits nonzero when any job lands outside its envelope — so a
// shell script can use it as a remote regression check.
//
//   fleet_client --socket /tmp/fleet.sock --scenario city-drive
//   fleet_client --socket /tmp/fleet.sock --study city-drive --seeds 3
//   fleet_client --socket /tmp/fleet.sock --ping
//   fleet_client --socket /tmp/fleet.sock --shutdown

#include <cstdio>
#include <exception>
#include <string>

#include "system/fleet_client.hpp"

using namespace ob;

namespace {

void print_result(const system::JobResultMessage& m) {
    std::printf("[%u/%u] %-28s %-7s seeds %u/%u | residual %9.4f | "
                "R %7.4f | %s\n",
                m.job_index + 1, m.job_count, m.scenario.c_str(),
                m.processor == system::kProcessorSabre ? "sabre" : "native",
                m.seeds_within_envelope, m.seeds, m.residual_rms,
                m.meas_noise, m.within_envelope ? "ok" : "outside");
    std::fflush(stdout);
}

[[nodiscard]] std::uint8_t parse_processor(const std::string& s) {
    if (s == "native") return system::kProcessorNative;
    if (s == "sabre") return system::kProcessorSabre;
    if (s == "both") return system::kProcessorBoth;
    throw std::invalid_argument("--processor must be native|sabre|both, got '" +
                                s + "'");
}

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path = "/tmp/fleet_serve.sock";
    enum class Mode { kFleet, kStudy, kPing, kShutdown } mode = Mode::kFleet;
    system::FleetRequest fleet_req;
    system::StudyRequest study_req;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw std::invalid_argument(arg + " needs a value");
                }
                return argv[++i];
            };
            if (arg == "--socket") {
                socket_path = next();
            } else if (arg == "--scenario") {
                fleet_req.scenario = next();
            } else if (arg == "--study") {
                mode = Mode::kStudy;
                study_req.scenario = next();
            } else if (arg == "--ping") {
                mode = Mode::kPing;
            } else if (arg == "--shutdown") {
                mode = Mode::kShutdown;
            } else if (arg == "--processor") {
                const std::uint8_t p = parse_processor(next());
                fleet_req.processor = p;
                study_req.processor = p;
            } else if (arg == "--seeds") {
                const auto n =
                    static_cast<std::uint16_t>(std::stoul(next()));
                fleet_req.seeds_per_job = n;
                study_req.seeds_per_cell = n;
            } else if (arg == "--base-seed") {
                fleet_req.base_seed = study_req.base_seed =
                    std::stoull(next());
            } else if (arg == "--duration") {
                fleet_req.duration_s = std::stod(next());
            } else if (arg == "--adaptive") {
                fleet_req.use_adaptive_tuner = true;
            } else if (arg == "--help" || arg == "-h") {
                std::printf(
                    "usage: %s [--socket PATH] [request]\n"
                    "  --scenario NAME|'*'  fleet request (default '*')\n"
                    "  --study NAME         run the built-in retune panel\n"
                    "  --ping               liveness round trip\n"
                    "  --shutdown           stop the daemon\n"
                    "  --processor P        native | sabre | both\n"
                    "  --seeds N  --base-seed N  --duration S  --adaptive\n",
                    argv[0]);
                return 0;
            } else {
                throw std::invalid_argument("unknown argument '" + arg + "'");
            }
        }

        auto client = system::FleetServeClient::connect(socket_path);
        std::printf("session %u (protocol v%u) on %s\n", client.session(),
                    static_cast<unsigned>(client.version()),
                    socket_path.c_str());

        switch (mode) {
            case Mode::kPing: {
                const std::uint64_t token = 0x0B5EA11B1u;
                if (client.ping(token) != token) {
                    std::fprintf(stderr, "fleet_client: pong token mismatch\n");
                    return 1;
                }
                std::printf("pong\n");
                client.goodbye();
                return 0;
            }
            case Mode::kShutdown:
                client.shutdown_server();
                std::printf("server acknowledged shutdown\n");
                return 0;
            case Mode::kFleet:
            case Mode::kStudy: {
                const auto outcome =
                    mode == Mode::kFleet
                        ? client.run_fleet(fleet_req, print_result)
                        : client.run_study(study_req, print_result);
                client.goodbye();
                std::printf(
                    "%u job(s), %u within envelope, server wall %.2f s\n",
                    outcome.done.jobs, outcome.done.within_envelope,
                    outcome.done.wall_s);
                return outcome.done.within_envelope == outcome.done.jobs ? 0
                                                                         : 1;
            }
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fleet_client: %s\n", e.what());
        return 1;
    }
}
