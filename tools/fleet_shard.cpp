// fleet_shard: realize one shard of a deterministic fleet batch and write
// the partial results as a self-describing artifact (docs/ARCHITECTURE.md
// § "Sharding and the serve layer"). The plan is the (job × seed) expansion
// in job-major order; --shard k/N takes the balanced contiguous slice k of
// N. fleet_merge recombines the artifacts; the merged batch is bitwise the
// single-process run.
//
//   fleet_shard --shard 0/4 --out shard0.bin --scenario '*' --seeds 2

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "system/fleet_serve.hpp"
#include "system/fleet_shard.hpp"

using namespace ob;

namespace {

void usage(const char* argv0) {
    std::printf(
        "usage: %s --shard K/N --out FILE [options]\n"
        "  --shard K/N          realize slice K of N (K in [0, N))\n"
        "  --out FILE           artifact path to write\n"
        "  --scenario NAME      library scenario, or '*' for all (default *)\n"
        "  --processor P        native | sabre | both (default native)\n"
        "  --seeds N            Monte Carlo realizations per job (default 1)\n"
        "  --base-seed N        fleet base seed (default 2026)\n"
        "  --duration S         per-job duration override in seconds\n"
        "  --adaptive           enable the adaptive tuner\n"
        "  --threads N          worker threads (default: all hardware)\n",
        argv0);
}

[[nodiscard]] std::uint8_t parse_processor(const std::string& s) {
    if (s == "native") return system::kProcessorNative;
    if (s == "sabre") return system::kProcessorSabre;
    if (s == "both") return system::kProcessorBoth;
    throw std::invalid_argument("--processor must be native|sabre|both, got '" +
                                s + "'");
}

}  // namespace

int main(int argc, char** argv) {
    std::string out_path;
    std::size_t shard_index = 0, shard_count = 0;
    system::FleetRequest req;
    system::FleetRunner::Config runner_cfg;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw std::invalid_argument(arg + " needs a value");
                }
                return argv[++i];
            };
            if (arg == "--shard") {
                const std::string v = next();
                const auto slash = v.find('/');
                if (slash == std::string::npos) {
                    throw std::invalid_argument(
                        "--shard wants K/N, got '" + v + "'");
                }
                shard_index = std::stoul(v.substr(0, slash));
                shard_count = std::stoul(v.substr(slash + 1));
            } else if (arg == "--out") {
                out_path = next();
            } else if (arg == "--scenario") {
                req.scenario = next();
            } else if (arg == "--processor") {
                req.processor = parse_processor(next());
            } else if (arg == "--seeds") {
                req.seeds_per_job =
                    static_cast<std::uint16_t>(std::stoul(next()));
            } else if (arg == "--base-seed") {
                req.base_seed = std::stoull(next());
            } else if (arg == "--duration") {
                req.duration_s = std::stod(next());
            } else if (arg == "--adaptive") {
                req.use_adaptive_tuner = true;
            } else if (arg == "--threads") {
                runner_cfg.threads = std::stoul(next());
            } else if (arg == "--help" || arg == "-h") {
                usage(argv[0]);
                return 0;
            } else {
                throw std::invalid_argument("unknown argument '" + arg + "'");
            }
        }
        if (out_path.empty() || shard_count == 0) {
            usage(argv[0]);
            return 2;
        }

        const auto jobs = system::expand_fleet_request(req);
        const system::FleetRunner runner(runner_cfg);
        const auto artifact =
            system::run_fleet_shard(jobs, shard_index, shard_count, runner);
        system::save_shard_artifact(out_path, artifact);
        std::printf(
            "shard %zu/%zu: plan %llu item(s) over %zu job(s), slice "
            "[%llu, %llu) -> %s (digest %016llx)\n",
            shard_index, shard_count,
            static_cast<unsigned long long>(artifact.total_items),
            artifact.jobs.size(),
            static_cast<unsigned long long>(artifact.item_begin),
            static_cast<unsigned long long>(artifact.item_end),
            out_path.c_str(),
            static_cast<unsigned long long>(artifact.plan_digest));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fleet_shard: %s\n", e.what());
        return 1;
    }
}
