// fleet_merge: recombine fleet_shard artifacts into the full-plan artifact
// and report the realized batch. Refuses (exit 1, message naming the
// offender) artifacts from different plans, overlapping slices, or an
// incomplete tiling — and the merged output is bitwise the artifact a
// single 1/1-shard run would have written.
//
//   fleet_merge --out merged.bin shard0.bin shard1.bin shard2.bin

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "system/fleet_shard.hpp"

using namespace ob;

int main(int argc, char** argv) {
    std::string out_path;
    std::vector<std::string> inputs;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "fleet_merge: --out needs a value\n");
                return 2;
            }
            out_path = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--out FILE] [--quiet] SHARD...\n"
                "Merge fleet_shard artifacts (any order) into the full-plan\n"
                "artifact, realize it and print the per-job verdicts.\n",
                argv[0]);
            return 0;
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) {
        std::fprintf(stderr, "usage: %s [--out FILE] SHARD...\n", argv[0]);
        return 2;
    }

    try {
        std::vector<system::FleetShardArtifact> shards;
        shards.reserve(inputs.size());
        for (const auto& path : inputs) {
            shards.push_back(system::load_shard_artifact(path));
        }
        const auto merged = system::merge_shards(shards);
        if (!out_path.empty()) {
            system::save_shard_artifact(out_path, merged);
        }

        const auto results = system::realize_shard_results(merged);
        std::size_t failures = 0;
        for (const auto& r : results) {
            if (!r.within_envelope) ++failures;
            if (!quiet) {
                std::printf("%-20s %-7s seeds %zu/%zu | residual %9.4f | %s\n",
                            r.scenario.c_str(),
                            system::processor_name(r.processor),
                            r.seed_stats.within_envelope, r.seed_stats.seeds,
                            r.result.residual_rms,
                            r.within_envelope ? "ok" : "outside");
            }
        }
        std::printf(
            "merged %zu shard(s): %llu item(s), %zu job(s), %zu outside "
            "envelope%s%s\n",
            shards.size(), static_cast<unsigned long long>(merged.total_items),
            results.size(), failures, out_path.empty() ? "" : " -> ",
            out_path.c_str());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fleet_merge: %s\n", e.what());
        return 1;
    }
}
