// fleet_serve: the fleet-as-a-service daemon. Binds an AF_UNIX stream
// socket and executes fleet / tuning-study requests for any number of
// concurrent clients, streaming per-job results as they complete. The wire
// contract is docs/PROTOCOL.md; tools/fleet_client.cpp is the matching CLI.
//
//   fleet_serve --socket /tmp/fleet.sock

#include <csignal>
#include <cstdio>
#include <exception>
#include <string>

#include "system/fleet_serve.hpp"

using namespace ob;

namespace {

system::FleetServer* g_server = nullptr;

void on_signal(int) {
    // Async-signal-safe: request_stop only stores an atomic flag; the
    // accept loop notices within its poll period.
    if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
    system::FleetServer::Config cfg;
    cfg.socket_path = "/tmp/fleet_serve.sock";

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc) {
                    throw std::invalid_argument(arg + " needs a value");
                }
                return argv[++i];
            };
            if (arg == "--socket") {
                cfg.socket_path = next();
            } else if (arg == "--threads") {
                cfg.runner.threads = std::stoul(next());
            } else if (arg == "--poll-ms") {
                cfg.accept_poll_ms = std::stoi(next());
            } else if (arg == "--help" || arg == "-h") {
                std::printf(
                    "usage: %s [--socket PATH] [--threads N] [--poll-ms N]\n"
                    "Serve fleet requests on an AF_UNIX socket "
                    "(protocol v%u, docs/PROTOCOL.md).\n",
                    argv[0],
                    static_cast<unsigned>(system::kProtocolVersion));
                return 0;
            } else {
                throw std::invalid_argument("unknown argument '" + arg + "'");
            }
        }

        system::FleetServer server(cfg);
        g_server = &server;
        std::signal(SIGINT, on_signal);
        std::signal(SIGTERM, on_signal);

        std::printf("fleet_serve: protocol v%u on %s\n",
                    static_cast<unsigned>(system::kProtocolVersion),
                    cfg.socket_path.c_str());
        std::fflush(stdout);
        server.serve();
        std::printf("fleet_serve: stopped after %llu session(s)\n",
                    static_cast<unsigned long long>(
                        server.sessions_served()));
        g_server = nullptr;
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fleet_serve: %s\n", e.what());
        return 1;
    }
}
