#include <gtest/gtest.h>

#include "fleet_test_util.hpp"
#include "system/fleet.hpp"

// Fleet-level regression suite: every scenario in the library runs end to
// end through the full-transport BoresightSystem on BOTH fusion processors
// (double-precision native EKF and float32 Sabre firmware), and the whole
// post-settle estimate trajectory must stay inside the spec's envelope.
// This is the substrate future perf/sharding PRs are validated against:
// any change that perturbs convergence on any scenario fails here by name.

namespace {

using namespace ob;
using testutil::FleetCase;

class FleetRegression : public ::testing::TestWithParam<FleetCase> {};

TEST_P(FleetRegression, StaysInsideEnvelope) {
    system::FleetJob job;
    job.scenario = GetParam().scenario;
    job.processor = GetParam().processor;
    const auto r = system::run_fleet_job(job);

    testutil::expect_inside_envelope(r);

    // Transport health: the default links are loss-free, and nearly every
    // epoch must have paired up into a fusion update.
    EXPECT_EQ(r.final_status.dmu_frames_lost, 0u);
    EXPECT_EQ(r.final_status.acc_packets_lost, 0u);
    EXPECT_GT(r.final_status.updates, (9 * r.trace.epochs) / 10);

    // Confidence must be meaningful: strictly positive 3-sigma that the
    // observable axes have actually tightened from the 5-degree prior.
    for (std::size_t axis = 0; axis < 2; ++axis) {
        EXPECT_GT(r.result.sigma3_rad[axis], 0.0);
        EXPECT_LT(math::rad2deg(r.result.sigma3_rad[axis]), 5.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Library, FleetRegression,
                         ::testing::ValuesIn(testutil::all_library_cases()),
                         testutil::fleet_case_name);

}  // namespace
