#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "softfloat/softfloat.hpp"
#include "util/rng.hpp"

// Conformance tests: the softfloat library must be bit-exact against the
// host's IEEE-754 hardware for every operation and rounding mode. The host
// reference runs inside noinline functions on volatile operands so the
// compiler cannot fold or hoist the FP ops out of the fesetround window.

namespace {

namespace sf = ob::softfloat;
using ob::util::Rng;

[[gnu::noinline]] float host_add(float a, float b) {
    volatile float x = a, y = b;
    return x + y;
}
[[gnu::noinline]] float host_sub(float a, float b) {
    volatile float x = a, y = b;
    return x - y;
}
[[gnu::noinline]] float host_mul(float a, float b) {
    volatile float x = a, y = b;
    return x * y;
}
[[gnu::noinline]] float host_div(float a, float b) {
    volatile float x = a, y = b;
    return x / y;
}
[[gnu::noinline]] float host_sqrt(float a) {
    volatile float x = a;
    return std::sqrt(x);
}
[[gnu::noinline]] float host_from_i32(std::int32_t v) {
    volatile std::int32_t x = v;
    return static_cast<float>(x);
}

int host_mode(sf::Round r) {
    switch (r) {
        case sf::Round::kNearestEven: return FE_TONEAREST;
        case sf::Round::kTowardZero: return FE_TOWARDZERO;
        case sf::Round::kDown: return FE_DOWNWARD;
        case sf::Round::kUp: return FE_UPWARD;
    }
    return FE_TONEAREST;
}

/// Host flags we compare against (underflow excluded: x86 detects tininess
/// after rounding, this library before rounding — both are IEEE-conformant
/// choices; underflow behaviour gets its own directed tests).
constexpr unsigned kComparedFlags =
    sf::kInvalid | sf::kDivByZero | sf::kOverflow | sf::kInexact;

unsigned host_flags_to_sf() {
    unsigned f = 0;
    if (std::fetestexcept(FE_INVALID)) f |= sf::kInvalid;
    if (std::fetestexcept(FE_DIVBYZERO)) f |= sf::kDivByZero;
    if (std::fetestexcept(FE_OVERFLOW)) f |= sf::kOverflow;
    if (std::fetestexcept(FE_INEXACT)) f |= sf::kInexact;
    return f;
}

struct HostRef {
    std::uint32_t bits;
    unsigned flags;
};

template <typename HostOp>
HostRef host_eval(sf::Round mode, HostOp&& op) {
    std::feclearexcept(FE_ALL_EXCEPT);
    std::fesetround(host_mode(mode));
    const float r = op();
    const unsigned flags = host_flags_to_sf();
    std::fesetround(FE_TONEAREST);
    std::uint32_t bits;
    std::memcpy(&bits, &r, sizeof bits);
    return {bits, flags};
}

enum class Op { kAdd, kSub, kMul, kDiv };

sf::F32 sf_eval(Op op, sf::F32 a, sf::F32 b, sf::Context& ctx) {
    switch (op) {
        case Op::kAdd: return sf::add(a, b, ctx);
        case Op::kSub: return sf::sub(a, b, ctx);
        case Op::kMul: return sf::mul(a, b, ctx);
        case Op::kDiv: return sf::div(a, b, ctx);
    }
    return sf::F32{};
}

float host_eval_op(Op op, float a, float b) {
    switch (op) {
        case Op::kAdd: return host_add(a, b);
        case Op::kSub: return host_sub(a, b);
        case Op::kMul: return host_mul(a, b);
        case Op::kDiv: return host_div(a, b);
    }
    return 0.0f;
}

/// Random operand generator biased toward hard cases: plain random bits
/// cover NaN/inf/subnormals; "close exponent" pairs exercise alignment and
/// catastrophic cancellation paths.
std::pair<sf::F32, sf::F32> random_pair(Rng& rng) {
    sf::F32 a{rng.bits32()};
    sf::F32 b{rng.bits32()};
    if (rng.chance(0.5)) {
        // Force b's exponent within +-2 of a's (clamped to finite range).
        const std::int32_t ea = static_cast<std::int32_t>(a.exponent());
        std::int32_t eb = ea + static_cast<std::int32_t>(rng.uniform_int(-2, 2));
        eb = std::max(0, std::min(0xFE, eb));
        b.bits = (b.bits & 0x807FFFFFu) |
                 (static_cast<std::uint32_t>(eb) << 23);
    }
    return {a, b};
}

void check_binary_op(Op op, sf::Round mode, std::uint64_t seed, int iterations) {
    Rng rng(seed);
    int checked = 0;
    for (int i = 0; i < iterations; ++i) {
        const auto [a, b] = random_pair(rng);
        sf::Context ctx;
        ctx.rounding = mode;
        const sf::F32 mine = sf_eval(op, a, b, ctx);
        const HostRef ref = host_eval(
            mode, [&] { return host_eval_op(op, sf::to_host(a), sf::to_host(b)); });

        const sf::F32 host_result{ref.bits};
        if (mine.is_nan() || host_result.is_nan()) {
            ASSERT_EQ(mine.is_nan(), host_result.is_nan())
                << "op=" << static_cast<int>(op) << " a=0x" << std::hex << a.bits
                << " b=0x" << b.bits << " mine=0x" << mine.bits << " host=0x"
                << ref.bits;
        } else {
            ASSERT_EQ(mine.bits, ref.bits)
                << "op=" << static_cast<int>(op) << " mode="
                << static_cast<int>(mode) << std::hex << " a=0x" << a.bits
                << " b=0x" << b.bits << " mine=0x" << mine.bits << " host=0x"
                << ref.bits;
        }
        if (!a.is_nan() && !b.is_nan()) {
            // NaN inputs raise invalid only for signaling NaNs, where host
            // quieting behaviour differs in the payload, not the flag; for
            // non-NaN inputs the flag sets must agree exactly.
            ASSERT_EQ(ctx.flags & kComparedFlags, ref.flags & kComparedFlags)
                << "flags mismatch op=" << static_cast<int>(op) << std::hex
                << " a=0x" << a.bits << " b=0x" << b.bits << " mine flags="
                << (ctx.flags & kComparedFlags) << " host=" << ref.flags;
        }
        ++checked;
    }
    ASSERT_GT(checked, 0);
}

struct FuzzCase {
    Op op;
    sf::Round mode;
    int iterations;
};

class SoftFloatFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(SoftFloatFuzz, MatchesHostBitExactly) {
    const auto& p = GetParam();
    check_binary_op(p.op, p.mode,
                    0xC0FFEEull + static_cast<std::uint64_t>(p.op) * 17 +
                        static_cast<std::uint64_t>(p.mode) * 101,
                    p.iterations);
}

std::string fuzz_name(const ::testing::TestParamInfo<FuzzCase>& info) {
    const char* ops[] = {"Add", "Sub", "Mul", "Div"};
    const char* modes[] = {"Nearest", "TowardZero", "Down", "Up"};
    return std::string(ops[static_cast<int>(info.param.op)]) +
           modes[static_cast<int>(info.param.mode)];
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAllModes, SoftFloatFuzz,
    ::testing::Values(
        FuzzCase{Op::kAdd, sf::Round::kNearestEven, 100000},
        FuzzCase{Op::kSub, sf::Round::kNearestEven, 100000},
        FuzzCase{Op::kMul, sf::Round::kNearestEven, 100000},
        FuzzCase{Op::kDiv, sf::Round::kNearestEven, 100000},
        FuzzCase{Op::kAdd, sf::Round::kTowardZero, 20000},
        FuzzCase{Op::kSub, sf::Round::kTowardZero, 20000},
        FuzzCase{Op::kMul, sf::Round::kTowardZero, 20000},
        FuzzCase{Op::kDiv, sf::Round::kTowardZero, 20000},
        FuzzCase{Op::kAdd, sf::Round::kDown, 20000},
        FuzzCase{Op::kSub, sf::Round::kDown, 20000},
        FuzzCase{Op::kMul, sf::Round::kDown, 20000},
        FuzzCase{Op::kDiv, sf::Round::kDown, 20000},
        FuzzCase{Op::kAdd, sf::Round::kUp, 20000},
        FuzzCase{Op::kSub, sf::Round::kUp, 20000},
        FuzzCase{Op::kMul, sf::Round::kUp, 20000},
        FuzzCase{Op::kDiv, sf::Round::kUp, 20000}),
    fuzz_name);

TEST(SoftFloatSqrt, MatchesHostAcrossModes) {
    for (const sf::Round mode :
         {sf::Round::kNearestEven, sf::Round::kTowardZero, sf::Round::kDown,
          sf::Round::kUp}) {
        Rng rng(0xB0BA + static_cast<std::uint64_t>(mode));
        for (int i = 0; i < 50000; ++i) {
            sf::F32 a{rng.bits32()};
            sf::Context ctx;
            ctx.rounding = mode;
            const sf::F32 mine = sf::sqrt(a, ctx);
            const HostRef ref =
                host_eval(mode, [&] { return host_sqrt(sf::to_host(a)); });
            const sf::F32 host_result{ref.bits};
            if (mine.is_nan() || host_result.is_nan()) {
                ASSERT_EQ(mine.is_nan(), host_result.is_nan())
                    << std::hex << "a=0x" << a.bits;
            } else {
                ASSERT_EQ(mine.bits, ref.bits)
                    << std::hex << "a=0x" << a.bits << " mine=0x" << mine.bits
                    << " host=0x" << ref.bits << " mode="
                    << static_cast<int>(mode);
            }
            if (!a.is_nan()) {
                ASSERT_EQ(ctx.flags & kComparedFlags, ref.flags & kComparedFlags)
                    << std::hex << "a=0x" << a.bits;
            }
        }
    }
}

TEST(SoftFloatDirected, SpecialValueArithmetic) {
    sf::Context ctx;
    const sf::F32 inf = sf::F32::inf(false);
    const sf::F32 ninf = sf::F32::inf(true);
    const sf::F32 one = sf::F32::one();
    const sf::F32 zero = sf::F32::zero(false);
    const sf::F32 nzero = sf::F32::zero(true);

    EXPECT_TRUE(sf::add(inf, one, ctx).is_inf());
    EXPECT_TRUE(sf::add(inf, ninf, ctx).is_nan());
    EXPECT_TRUE(ctx.any(sf::kInvalid));

    ctx.clear();
    EXPECT_TRUE(sf::mul(inf, zero, ctx).is_nan());
    EXPECT_TRUE(ctx.any(sf::kInvalid));

    ctx.clear();
    EXPECT_TRUE(sf::div(one, zero, ctx).is_inf());
    EXPECT_TRUE(ctx.any(sf::kDivByZero));

    ctx.clear();
    EXPECT_TRUE(sf::div(zero, zero, ctx).is_nan());
    EXPECT_TRUE(ctx.any(sf::kInvalid));

    ctx.clear();
    const sf::F32 r = sf::div(one, ninf, ctx);
    EXPECT_TRUE(r.is_zero());
    EXPECT_TRUE(r.sign());
    EXPECT_EQ(ctx.flags, 0u);

    ctx.clear();
    EXPECT_TRUE(sf::sqrt(sf::neg(one), ctx).is_nan());
    EXPECT_TRUE(ctx.any(sf::kInvalid));

    // sqrt(-0) == -0 per IEEE.
    ctx.clear();
    const sf::F32 s = sf::sqrt(nzero, ctx);
    EXPECT_TRUE(s.is_zero());
    EXPECT_TRUE(s.sign());
    EXPECT_EQ(ctx.flags, 0u);
}

TEST(SoftFloatDirected, SignedZeroRules) {
    sf::Context ctx;
    // (+0) + (-0) = +0 in round-to-nearest; -0 in round-down.
    EXPECT_EQ(sf::add(sf::F32::zero(false), sf::F32::zero(true), ctx).bits, 0u);
    ctx.rounding = sf::Round::kDown;
    // x - x = -0 when rounding down.
    const sf::F32 x = sf::from_host(1.5f);
    EXPECT_EQ(sf::sub(x, x, ctx).bits, 0x80000000u);
}

TEST(SoftFloatDirected, OverflowToInfinityAndMaxFinite) {
    const sf::F32 maxf{0x7F7FFFFFu};
    sf::Context ctx;
    EXPECT_TRUE(sf::mul(maxf, maxf, ctx).is_inf());
    EXPECT_TRUE(ctx.any(sf::kOverflow));
    EXPECT_TRUE(ctx.any(sf::kInexact));

    // Round-toward-zero saturates at the maximum finite value instead.
    ctx.clear();
    ctx.rounding = sf::Round::kTowardZero;
    EXPECT_EQ(sf::mul(maxf, maxf, ctx).bits, maxf.bits);
    EXPECT_TRUE(ctx.any(sf::kOverflow));
}

TEST(SoftFloatDirected, UnderflowRaisesOnTinyInexact) {
    // smallest normal * 0.5 -> subnormal, inexact-free (exact halving).
    const sf::F32 min_normal{0x00800000u};
    const sf::F32 half = sf::from_host(0.5f);
    sf::Context ctx;
    const sf::F32 r = sf::mul(min_normal, half, ctx);
    EXPECT_TRUE(r.is_subnormal());
    EXPECT_FALSE(ctx.any(sf::kUnderflow)) << "exact subnormal must not underflow";

    // smallest subnormal / 3 -> rounds, tiny and inexact -> underflow.
    ctx.clear();
    const sf::F32 min_sub{0x00000001u};
    const sf::F32 three = sf::from_host(3.0f);
    (void)sf::div(min_sub, three, ctx);
    EXPECT_TRUE(ctx.any(sf::kUnderflow));
    EXPECT_TRUE(ctx.any(sf::kInexact));
}

TEST(SoftFloatDirected, NearestTiesToEven) {
    // 1 + 2^-24 is exactly halfway between 1 and the next float; ties to
    // even must round down to 1.0.
    sf::Context ctx;
    const sf::F32 tiny{0x33800000u};  // 2^-24
    EXPECT_EQ(sf::add(sf::F32::one(), tiny, ctx).bits, sf::F32::one().bits);
    // 1 + 3*2^-24 is halfway between ulp1 and ulp2; ties to even -> ulp2.
    ctx.clear();
    const sf::F32 ulp1{0x3F800001u};
    const sf::F32 r = sf::add(ulp1, tiny, ctx);
    EXPECT_EQ(r.bits, 0x3F800002u);
}

TEST(SoftFloatDirected, SignalingNanRaisesInvalid) {
    sf::Context ctx;
    const sf::F32 snan{0x7F800001u};  // signaling NaN
    const sf::F32 r = sf::add(snan, sf::F32::one(), ctx);
    EXPECT_TRUE(r.is_nan());
    EXPECT_FALSE(r.is_signaling_nan());
    EXPECT_TRUE(ctx.any(sf::kInvalid));

    ctx.clear();
    const sf::F32 qnan = sf::F32::quiet_nan();
    (void)sf::add(qnan, sf::F32::one(), ctx);
    EXPECT_FALSE(ctx.any(sf::kInvalid)) << "quiet NaN must propagate silently";
}

TEST(SoftFloatCompare, OrderingAndNanSemantics) {
    sf::Context ctx;
    const sf::F32 one = sf::F32::one();
    const sf::F32 two = sf::from_host(2.0f);
    const sf::F32 none = sf::neg(one);
    EXPECT_TRUE(sf::lt(one, two, ctx));
    EXPECT_FALSE(sf::lt(two, one, ctx));
    EXPECT_TRUE(sf::lt(none, one, ctx));
    EXPECT_TRUE(sf::le(one, one, ctx));
    EXPECT_TRUE(sf::eq(one, one, ctx));
    EXPECT_FALSE(sf::eq(one, two, ctx));
    // +0 == -0
    EXPECT_TRUE(sf::eq(sf::F32::zero(false), sf::F32::zero(true), ctx));
    EXPECT_FALSE(sf::lt(sf::F32::zero(true), sf::F32::zero(false), ctx));
    EXPECT_EQ(ctx.flags, 0u);

    // NaN is unordered; eq is quiet, lt/le are signaling.
    const sf::F32 nan = sf::F32::quiet_nan();
    EXPECT_FALSE(sf::eq(nan, nan, ctx));
    EXPECT_EQ(ctx.flags, 0u);
    EXPECT_FALSE(sf::lt(nan, one, ctx));
    EXPECT_TRUE(ctx.any(sf::kInvalid));
}

TEST(SoftFloatCompare, FuzzAgainstHost) {
    Rng rng(0xFEED);
    sf::Context ctx;
    for (int i = 0; i < 100000; ++i) {
        const sf::F32 a{rng.bits32()};
        const sf::F32 b{rng.bits32()};
        const float fa = sf::to_host(a);
        const float fb = sf::to_host(b);
        EXPECT_EQ(sf::eq(a, b, ctx), fa == fb);
        EXPECT_EQ(sf::lt(a, b, ctx), fa < fb);
        EXPECT_EQ(sf::le(a, b, ctx), fa <= fb);
    }
}

TEST(SoftFloatConvert, FromI32MatchesHost) {
    Rng rng(0xABCD);
    for (const sf::Round mode :
         {sf::Round::kNearestEven, sf::Round::kTowardZero, sf::Round::kDown,
          sf::Round::kUp}) {
        for (int i = 0; i < 20000; ++i) {
            const auto v = static_cast<std::int32_t>(rng.bits32());
            sf::Context ctx;
            ctx.rounding = mode;
            const sf::F32 mine = sf::from_i32(v, ctx);
            const HostRef ref = host_eval(mode, [&] { return host_from_i32(v); });
            ASSERT_EQ(mine.bits, ref.bits)
                << "v=" << v << " mode=" << static_cast<int>(mode);
        }
    }
    // Exact boundary values.
    sf::Context ctx;
    EXPECT_EQ(sf::to_host(sf::from_i32(0, ctx)), 0.0f);
    EXPECT_EQ(sf::to_host(sf::from_i32(1, ctx)), 1.0f);
    EXPECT_EQ(sf::to_host(sf::from_i32(-1, ctx)), -1.0f);
    EXPECT_EQ(sf::to_host(sf::from_i32(INT32_MIN, ctx)), -2147483648.0f);
    EXPECT_EQ(sf::to_host(sf::from_i32(INT32_MAX, ctx)), 2147483648.0f);
}

TEST(SoftFloatConvert, ToI32RoundTripAndSaturation) {
    sf::Context ctx;
    EXPECT_EQ(sf::to_i32(sf::from_host(1.5f), ctx), 2);        // ties to even
    EXPECT_EQ(sf::to_i32(sf::from_host(2.5f), ctx), 2);        // ties to even
    EXPECT_EQ(sf::to_i32(sf::from_host(-1.5f), ctx), -2);
    EXPECT_EQ(sf::to_i32_trunc(sf::from_host(1.9f), ctx), 1);
    EXPECT_EQ(sf::to_i32_trunc(sf::from_host(-1.9f), ctx), -1);

    ctx.clear();
    EXPECT_EQ(sf::to_i32(sf::from_host(-2147483648.0f), ctx), INT32_MIN);
    EXPECT_EQ(ctx.flags, 0u) << "-2^31 converts exactly";

    ctx.clear();
    EXPECT_EQ(sf::to_i32(sf::from_host(2147483648.0f), ctx), INT32_MAX);
    EXPECT_TRUE(ctx.any(sf::kInvalid));

    ctx.clear();
    EXPECT_EQ(sf::to_i32(sf::F32::inf(true), ctx), INT32_MIN);
    EXPECT_TRUE(ctx.any(sf::kInvalid));

    ctx.clear();
    EXPECT_EQ(sf::to_i32(sf::F32::quiet_nan(), ctx), INT32_MAX);
    EXPECT_TRUE(ctx.any(sf::kInvalid));

    // Round-trip: every exactly-representable int32 survives.
    Rng rng(0x1234);
    for (int i = 0; i < 20000; ++i) {
        const auto v =
            static_cast<std::int32_t>(rng.uniform_int(-(1 << 24), 1 << 24));
        ctx.clear();
        EXPECT_EQ(sf::to_i32(sf::from_i32(v, ctx), ctx), v);
        EXPECT_FALSE(ctx.any(sf::kInexact));
    }
}

TEST(SoftFloatRoundToInt, SubUnitDirectedRounding) {
    // IEEE 754 §5.9: roundToIntegral preserves the sign of the operand,
    // including for zero results. (The host libm gets this wrong; see the
    // fuzz test below.)
    sf::Context ctx;
    const sf::F32 pos = sf::from_host(0.25f);
    const sf::F32 neg = sf::from_host(-0.25f);

    ctx.rounding = sf::Round::kDown;
    EXPECT_EQ(sf::round_to_int(pos, ctx).bits, 0x00000000u);   // +0
    EXPECT_EQ(sf::round_to_int(neg, ctx).bits, 0xBF800000u);   // -1

    ctx.rounding = sf::Round::kUp;
    EXPECT_EQ(sf::round_to_int(pos, ctx).bits, 0x3F800000u);   // +1
    EXPECT_EQ(sf::round_to_int(neg, ctx).bits, 0x80000000u);   // -0

    ctx.rounding = sf::Round::kTowardZero;
    EXPECT_EQ(sf::round_to_int(pos, ctx).bits, 0x00000000u);   // +0
    EXPECT_EQ(sf::round_to_int(neg, ctx).bits, 0x80000000u);   // -0

    ctx.rounding = sf::Round::kNearestEven;
    EXPECT_EQ(sf::round_to_int(sf::from_host(0.5f), ctx).bits, 0x00000000u);
    EXPECT_EQ(sf::round_to_int(sf::from_host(1.5f), ctx).bits, 0x40000000u);  // 2
    EXPECT_EQ(sf::round_to_int(sf::from_host(-0.5f), ctx).bits, 0x80000000u);
    EXPECT_EQ(sf::round_to_int(sf::from_host(0.75f), ctx).bits, 0x3F800000u);
}

TEST(SoftFloatRoundToInt, MatchesHostFloorCeilTruncRint) {
    // Oracle note: this host's libm rint/rintf ignore the dynamic rounding
    // mode (observed rintf(-22652.17) == -22652 under FE_DOWNWARD), so the
    // directed-mode references are built from the mode-independent
    // floor/ceil/trunc instead, and rintf (default mode) covers nearest.
    Rng rng(0x5555);
    for (const sf::Round mode :
         {sf::Round::kNearestEven, sf::Round::kTowardZero, sf::Round::kDown,
          sf::Round::kUp}) {
        for (int i = 0; i < 20000; ++i) {
            sf::F32 a{rng.bits32()};
            sf::Context ctx;
            ctx.rounding = mode;
            const sf::F32 mine = sf::round_to_int(a, ctx);
            volatile float x = sf::to_host(a);
            float host_val = 0.0f;
            switch (mode) {
                case sf::Round::kNearestEven: host_val = std::rint(x); break;
                case sf::Round::kTowardZero: host_val = std::trunc(x); break;
                case sf::Round::kDown: host_val = std::floor(x); break;
                case sf::Round::kUp: host_val = std::ceil(x); break;
            }
            const sf::F32 host_result = sf::from_host(host_val);
            if (mine.is_nan() || host_result.is_nan()) {
                ASSERT_EQ(mine.is_nan(), host_result.is_nan());
            } else {
                ASSERT_EQ(mine.bits, host_result.bits)
                    << std::hex << "a=0x" << a.bits << " mode="
                    << static_cast<int>(mode);
            }
        }
    }
}

TEST(SoftFloatProperties, AlgebraicIdentities) {
    Rng rng(0x777);
    sf::Context ctx;
    for (int i = 0; i < 20000; ++i) {
        const sf::F32 a{rng.bits32()};
        const sf::F32 b{rng.bits32()};
        if (a.is_nan() || b.is_nan()) continue;
        // Commutativity.
        EXPECT_EQ(sf::add(a, b, ctx).bits, sf::add(b, a, ctx).bits);
        EXPECT_EQ(sf::mul(a, b, ctx).bits, sf::mul(b, a, ctx).bits);
        // Identity elements (excluding signed-zero subtleties).
        if (!a.is_zero()) {
            EXPECT_EQ(sf::mul(a, sf::F32::one(), ctx).bits, a.bits);
            EXPECT_EQ(sf::add(a, sf::F32::zero(false), ctx).bits, a.bits);
        }
        // Negation symmetry: -(a+b) == (-a)+(-b).
        const sf::F32 s = sf::add(a, b, ctx);
        const sf::F32 ns = sf::add(sf::neg(a), sf::neg(b), ctx);
        if (!s.is_nan()) {
            EXPECT_EQ(sf::neg(s).bits, ns.bits);
        }
    }
}

TEST(SoftFloatProperties, DirectedRoundingBrackets) {
    // For any finite inputs, round-down result <= round-up result, and the
    // nearest result is one of the two.
    Rng rng(0x888);
    for (int i = 0; i < 20000; ++i) {
        const sf::F32 a{rng.bits32()};
        const sf::F32 b{rng.bits32()};
        if (a.is_nan() || b.is_nan()) continue;
        sf::Context down, up, near;
        down.rounding = sf::Round::kDown;
        up.rounding = sf::Round::kUp;
        const sf::F32 rd = sf::mul(a, b, down);
        const sf::F32 ru = sf::mul(a, b, up);
        const sf::F32 rn = sf::mul(a, b, near);
        if (rd.is_nan() || ru.is_nan()) continue;
        sf::Context cmp;
        EXPECT_TRUE(sf::le(rd, ru, cmp))
            << std::hex << "a=0x" << a.bits << " b=0x" << b.bits;
        EXPECT_TRUE(rn.bits == rd.bits || rn.bits == ru.bits);
    }
}

}  // namespace
