// HealthSupervisor contract tests: config validation, the staleness and
// windowed-rate watchdogs, latched state-machine transitions with
// hysteresis, coast-time accounting, recovery bookkeeping — and the
// system-level wiring: starvation detection under total dropout, honest
// coast-mode sigma growth on both processors, re-convergence after an
// outage/recovery drill, and the Status exports the fault campaign reads.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "math/rotation.hpp"
#include "sim/scenario.hpp"
#include "system/boresight_system.hpp"
#include "system/health_supervisor.hpp"

namespace {

using namespace ob;
using math::EulerAngles;
using system::HealthState;
using system::HealthSupervisor;
using system::HealthSupervisorConfig;

/// Small thresholds so transition arithmetic stays readable: degrade after
/// 2 stale epochs, coast after 4, fail after 8; alarm confirm 3; recovery
/// after 4 clean epochs; rate watchdog over an 8-epoch window armed after
/// 4 epochs.
HealthSupervisorConfig small_config() {
    HealthSupervisorConfig cfg;
    cfg.delivery_window = 8;
    cfg.min_window_epochs = 4;
    cfg.degrade_delivery_rate = 0.75;
    cfg.degrade_staleness_epochs = 2;
    cfg.coast_staleness_epochs = 4;
    cfg.fail_staleness_epochs = 8;
    cfg.alarm_confirm_epochs = 3;
    cfg.recovery_epochs = 4;
    return cfg;
}

constexpr double kDt = 0.01;

HealthSupervisor::Event event(double t, bool delivered, bool fused) {
    return {t, kDt, delivered, delivered, fused};
}

/// Drive `n` epochs, all delivered+fused or all starved, returning the
/// last verdict. Time continues from `t0`.
HealthSupervisor::Verdict drive(HealthSupervisor& sup, double& t0,
                                std::size_t n, bool delivered) {
    HealthSupervisor::Verdict v;
    for (std::size_t i = 0; i < n; ++i) {
        t0 += kDt;
        v = sup.observe(event(t0, delivered, delivered));
    }
    return v;
}

// --- config validation --------------------------------------------------------

TEST(HealthSupervisorConfig, RejectsBadKnobs) {
    const auto expect_throw = [](auto&& mutate) {
        auto cfg = small_config();
        mutate(cfg);
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    };
    expect_throw([](auto& c) { c.delivery_window = 0; });
    expect_throw([](auto& c) { c.min_window_epochs = 0; });
    expect_throw([](auto& c) { c.min_window_epochs = c.delivery_window + 1; });
    expect_throw([](auto& c) { c.degrade_delivery_rate = 0.0; });
    expect_throw([](auto& c) { c.degrade_delivery_rate = 1.1; });
    expect_throw([](auto& c) { c.degrade_staleness_epochs = 0; });
    // The staleness ladder must be strictly increasing.
    expect_throw([](auto& c) {
        c.coast_staleness_epochs = c.degrade_staleness_epochs;
    });
    expect_throw([](auto& c) {
        c.fail_staleness_epochs = c.coast_staleness_epochs;
    });
    expect_throw([](auto& c) { c.alarm_confirm_epochs = 0; });
    expect_throw([](auto& c) { c.recovery_epochs = 0; });
    expect_throw([](auto& c) { c.coast_sigma_rate = -1e-6; });
    EXPECT_NO_THROW(small_config().validate());
    EXPECT_NO_THROW(HealthSupervisorConfig{}.validate());
    // The constructor runs validation too.
    auto bad = small_config();
    bad.delivery_window = 0;
    EXPECT_THROW(HealthSupervisor sup(bad), std::invalid_argument);
}

// --- staleness ladder and latching --------------------------------------------

TEST(HealthSupervisor, EscalatesThroughTheStalenessLadder) {
    HealthSupervisor sup(small_config());
    double t = 0.0;
    drive(sup, t, 8, true);
    EXPECT_EQ(sup.state(), HealthState::kNominal);

    // 1 stale epoch: below every threshold.
    drive(sup, t, 1, false);
    EXPECT_EQ(sup.state(), HealthState::kNominal);
    // 2nd stale epoch: degrade threshold.
    drive(sup, t, 1, false);
    EXPECT_EQ(sup.state(), HealthState::kDegraded);
    // 4th stale epoch: coast threshold.
    drive(sup, t, 2, false);
    EXPECT_EQ(sup.state(), HealthState::kCoasting);
    // 8th stale epoch: fail threshold.
    drive(sup, t, 4, false);
    EXPECT_EQ(sup.state(), HealthState::kFailed);
    EXPECT_EQ(sup.worst_state(), HealthState::kFailed);
}

TEST(HealthSupervisor, StateIsLatchedUntilTheCleanStreakCompletes) {
    HealthSupervisor sup(small_config());
    double t = 0.0;
    drive(sup, t, 8, true);
    drive(sup, t, 4, false);  // -> coasting
    ASSERT_EQ(sup.state(), HealthState::kCoasting);

    // Delivered epochs whose window is still lossy are NOT clean: the
    // state must hold (no silent de-escalation through a degraded target).
    // Window after 3 delivered epochs: {0,0,0,0,1,1,1} of 8 -> rate 0.5.
    drive(sup, t, 3, true);
    EXPECT_EQ(sup.state(), HealthState::kCoasting);

    // Once the window clears the rate threshold, 4 consecutive clean
    // epochs take the state straight back to nominal — not via degraded.
    HealthSupervisor::Verdict v;
    std::size_t clean_needed = 0;
    while (sup.state() != HealthState::kNominal) {
        v = drive(sup, t, 1, true);
        ASSERT_LT(++clean_needed, 64u) << "recovery must complete";
        if (sup.state() != HealthState::kNominal) {
            EXPECT_EQ(sup.state(), HealthState::kCoasting);
        }
    }
    EXPECT_TRUE(v.recovered);
    EXPECT_EQ(sup.recoveries(), 1u);
    // Lifetime-worst never de-escalates.
    EXPECT_EQ(sup.worst_state(), HealthState::kCoasting);
}

TEST(HealthSupervisor, BrokenCleanStreakRestartsTheHysteresisCount) {
    auto cfg = small_config();
    // Disarm the rate watchdog so "delivered" epochs right after the stale
    // burst count as clean and the test isolates the streak counter.
    cfg.min_window_epochs = cfg.delivery_window;
    cfg.degrade_delivery_rate = 1e-9;
    HealthSupervisor sup(cfg);
    double t = 0.0;
    drive(sup, t, 2, false);  // -> degraded
    ASSERT_EQ(sup.state(), HealthState::kDegraded);

    // 3 clean epochs (one short of recovery), then a stale epoch: the
    // streak must restart from zero.
    drive(sup, t, 3, true);
    EXPECT_EQ(sup.state(), HealthState::kDegraded);
    drive(sup, t, 1, false);
    EXPECT_EQ(sup.state(), HealthState::kDegraded);
    auto v = drive(sup, t, 3, true);
    EXPECT_FALSE(v.recovered);
    EXPECT_EQ(sup.state(), HealthState::kDegraded);
    v = drive(sup, t, 1, true);
    EXPECT_TRUE(v.recovered);
    EXPECT_EQ(sup.state(), HealthState::kNominal);
}

// --- alarm latch ---------------------------------------------------------------

TEST(HealthSupervisor, DegradedAlarmsOnlyAfterTheConfirmDwell) {
    auto cfg = small_config();
    // Degrade on the first stale epoch, and push coast far out so the
    // state dwells in kDegraded long enough to exercise the confirm count.
    cfg.degrade_staleness_epochs = 1;
    cfg.coast_staleness_epochs = 16;
    cfg.fail_staleness_epochs = 17;
    cfg.min_window_epochs = cfg.delivery_window;
    cfg.degrade_delivery_rate = 1e-9;
    HealthSupervisor sup(cfg);
    double t = 0.0;

    // Two degraded epochs: one short of the confirm dwell of 3.
    drive(sup, t, 2, false);
    ASSERT_EQ(sup.state(), HealthState::kDegraded);
    EXPECT_FALSE(sup.alarmed());
    drive(sup, t, 1, false);  // 3rd consecutive degraded epoch: dwell met
    EXPECT_TRUE(sup.alarmed());
    EXPECT_DOUBLE_EQ(sup.alarm_s(), t);

    // The alarm stays latched for life, through a full recovery.
    drive(sup, t, 16, true);
    EXPECT_EQ(sup.state(), HealthState::kNominal);
    EXPECT_TRUE(sup.alarmed());
}

TEST(HealthSupervisor, CoastingLatchesTheAlarmImmediately) {
    auto cfg = small_config();
    cfg.degrade_staleness_epochs = 3;  // reach coast on the 4th epoch,
    cfg.alarm_confirm_epochs = 100;    // long before any degrade dwell
    HealthSupervisor sup(cfg);
    double t = 0.0;
    drive(sup, t, 3, false);
    EXPECT_FALSE(sup.alarmed());
    drive(sup, t, 1, false);
    ASSERT_EQ(sup.state(), HealthState::kCoasting);
    EXPECT_TRUE(sup.alarmed());
}

// --- windowed delivery-rate watchdog -------------------------------------------

TEST(HealthSupervisor, WindowedRateDegradesWithoutConsecutiveStaleness) {
    auto cfg = small_config();
    cfg.degrade_staleness_epochs = 3;  // alternation never reaches 3
    cfg.coast_staleness_epochs = 4;
    cfg.fail_staleness_epochs = 8;
    HealthSupervisor sup(cfg);
    double t = 0.0;
    // Alternate delivered/starved: staleness never exceeds 1 epoch, but
    // the windowed rate settles at 0.5 < 0.75. Before min_window_epochs=4
    // the rate may not judge.
    drive(sup, t, 1, false);
    drive(sup, t, 1, true);
    drive(sup, t, 1, false);
    EXPECT_EQ(sup.state(), HealthState::kNominal) << "window not armed yet";
    drive(sup, t, 1, true);  // 4th epoch: armed, rate 0.5
    EXPECT_EQ(sup.state(), HealthState::kDegraded);
    EXPECT_NEAR(sup.dmu_delivery_rate(), 0.5, 1e-12);
    EXPECT_NEAR(sup.acc_delivery_rate(), 0.5, 1e-12);
}

TEST(HealthSupervisor, RateIsPerChannelAndOneBadChannelSuffices) {
    HealthSupervisor sup(small_config());
    double t = 0.0;
    // ACC delivers every epoch; DMU only every other epoch.
    for (std::size_t i = 0; i < 8; ++i) {
        t += kDt;
        sup.observe({t, kDt, i % 2 == 0, true, i % 2 == 0});
    }
    EXPECT_EQ(sup.state(), HealthState::kDegraded);
    EXPECT_NEAR(sup.dmu_delivery_rate(), 0.5, 1e-12);
    EXPECT_NEAR(sup.acc_delivery_rate(), 1.0, 1e-12);
}

// --- coast accounting ----------------------------------------------------------

TEST(HealthSupervisor, CoastEntryCarriesTheAccumulatedStaleness) {
    HealthSupervisor sup(small_config());
    double t = 0.0;
    drive(sup, t, 8, true);

    // Epochs 1..3 stale: below the coast threshold, no coast time.
    auto v = drive(sup, t, 3, false);
    EXPECT_DOUBLE_EQ(v.coast_dt_s, 0.0);
    EXPECT_DOUBLE_EQ(sup.coast_s(), 0.0);

    // 4th stale epoch trips coast: the entry verdict carries the FULL 4
    // epochs of staleness, so covariance growth is continuous with the
    // real time spent blind.
    v = drive(sup, t, 1, false);
    EXPECT_TRUE(v.entered_coast);
    EXPECT_NEAR(v.coast_dt_s, 4 * kDt, 1e-12);

    // Each further blind epoch adds exactly one dt.
    v = drive(sup, t, 1, false);
    EXPECT_FALSE(v.entered_coast);
    EXPECT_NEAR(v.coast_dt_s, kDt, 1e-12);
    EXPECT_NEAR(sup.coast_s(), 5 * kDt, 1e-12);
}

TEST(HealthSupervisor, RecoveryReportsTheReconvergenceTime) {
    HealthSupervisor sup(small_config());
    double t = 0.0;
    drive(sup, t, 8, true);
    EXPECT_DOUBLE_EQ(sup.last_recovery_s(), -1.0);

    drive(sup, t, 4, false);  // -> coasting
    ASSERT_EQ(sup.state(), HealthState::kCoasting);

    // First fused epoch after the episode: the resume marker.
    auto v = drive(sup, t, 1, true);
    EXPECT_TRUE(v.resumed);
    const double resume_t = t;

    // Recovery completes once the window clears and the clean streak
    // finishes; the report spans resume -> recovered.
    std::size_t guard = 0;
    while (sup.state() != HealthState::kNominal) {
        v = drive(sup, t, 1, true);
        ASSERT_LT(++guard, 64u);
    }
    EXPECT_TRUE(v.recovered);
    EXPECT_NEAR(sup.last_recovery_s(), t - resume_t, 1e-12);
    EXPECT_GT(sup.last_recovery_s(), 0.0);
}

// --- system wiring: starvation, coast sigma, recovery, exports -----------------

using SysConfig = system::BoresightSystem::Config;
using Processor = system::BoresightSystem::Processor;

sim::Scenario quiet_scenario(double duration_s, std::uint64_t seed) {
    auto scfg = sim::ScenarioConfig::static_level(
        duration_s, EulerAngles::from_deg(1.0, -0.8, 0.0));
    scfg.acc_errors.bias_sigma = 0.0;
    scfg.imu_errors.accel_bias_sigma = 0.0;
    return sim::Scenario(scfg, seed);
}

/// Total DMU dropout from t=0: no epoch ever pairs, the residual monitor
/// never sees a sample — exactly PR-6's silent-miss regime. The
/// supervisor must alarm and reach kFailed (10 s at 100 Hz = 1000 stale
/// epochs > the 400-epoch fail threshold) while the residual detector
/// stays quiet.
TEST(BoresightSystemSupervision, DetectsTotalStarvationTheMonitorCannot) {
    auto sc = quiet_scenario(10.0, 11);
    SysConfig cfg;
    cfg.dmu_link_faults.drop_probability = 1.0;
    system::BoresightSystem sys(cfg);
    while (auto s = sc.next()) sys.feed(sc, *s);

    const auto st = sys.status();
    EXPECT_EQ(st.updates, 0u);
    EXPECT_FALSE(st.residual_flagged) << "starved monitor has no samples";
    EXPECT_TRUE(st.supervisor_alarmed);
    EXPECT_GT(st.supervisor_alarm_s, 0.0);
    EXPECT_EQ(st.worst_health, system::HealthState::kFailed);
    EXPECT_EQ(st.health, system::HealthState::kFailed);
    EXPECT_NEAR(st.dmu_delivery_rate, 0.0, 1e-12);
    EXPECT_GT(st.acc_delivery_rate, 0.9);
    EXPECT_GT(st.coast_s, 9.0) << "nearly the whole run was blind";
}

/// Honest coast mode: once the supervisor coasts, the reported 3-sigma
/// must grow monotonically with stale time instead of freezing at its
/// last confident value — on both processor paths.
class CoastSigmaGrowth : public ::testing::TestWithParam<Processor> {};

TEST_P(CoastSigmaGrowth, ReportedSigmaGrowsMonotonicallyWhileBlind) {
    auto sc = quiet_scenario(8.0, 12);
    SysConfig cfg;
    cfg.processor = GetParam();
    cfg.acc_link_faults.drop_probability = 1.0;
    system::BoresightSystem sys(cfg);

    std::vector<double> sigma;
    while (auto s = sc.next()) {
        sys.feed(sc, *s);
        sigma.push_back(sys.status().sigma3[0]);
    }
    ASSERT_GT(sigma.size(), 400u);
    for (std::size_t i = 1; i < sigma.size(); ++i) {
        ASSERT_GE(sigma[i], sigma[i - 1]) << "sigma shrank at epoch " << i;
    }
    // Strict growth once coasting (default threshold: 25 stale epochs).
    EXPECT_GT(sigma[400], sigma[100]);
    EXPECT_GT(sigma.back(), sigma[400]);
    const auto st = sys.status();
    EXPECT_GE(st.worst_health, system::HealthState::kCoasting);
    EXPECT_GT(st.coast_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothProcessors, CoastSigmaGrowth,
                         ::testing::Values(Processor::kNative,
                                           Processor::kSabre),
                         [](const auto& param_info) {
                             return param_info.param == Processor::kNative
                                        ? "native"
                                        : "sabre";
                         });

/// Outage/recovery drill via the mid-run fault swap: clean convergence,
/// a 5 s total outage on both links, then a clean tail. The supervisor
/// must coast through the outage (sigma grows), then declare recovery —
/// re-armed residual monitor, re-converged estimate, shrunk sigma — and
/// report the re-convergence time.
TEST(BoresightSystemSupervision, RecoversAndReportsReconvergence) {
    auto sc = quiet_scenario(60.0, 13);
    SysConfig cfg;
    cfg.filter.meas_noise_mps2 = 0.0075;
    system::BoresightSystem sys(cfg);

    const comm::UartFaults outage{.drop_probability = 1.0};
    double sigma_pre = 0.0, sigma_blind = 0.0;
    while (auto s = sc.next()) {
        if (s->t >= 20.0 && s->t < 25.0) {
            sys.set_link_faults(outage, outage);
        } else {
            sys.set_link_faults({}, {});
        }
        sys.feed(sc, *s);
        if (s->t < 20.0) sigma_pre = sys.status().sigma3[0];
        if (s->t < 25.0) sigma_blind = sys.status().sigma3[0];
    }

    const auto st = sys.status();
    EXPECT_GT(sigma_blind, 2.0 * sigma_pre)
        << "coast mode must have inflated sigma during the outage";
    EXPECT_EQ(st.health, system::HealthState::kNominal);
    EXPECT_GE(st.worst_health, system::HealthState::kCoasting);
    EXPECT_TRUE(st.supervisor_alarmed);
    EXPECT_GE(st.recoveries, 1u);
    EXPECT_GT(st.reconvergence_s, 0.0);
    EXPECT_LT(st.reconvergence_s, 20.0);
    // The estimate and its uncertainty both re-converged after the outage,
    // and the re-armed residual monitor stayed quiet on the clean tail.
    EXPECT_FALSE(st.residual_flagged);
    EXPECT_LT(st.sigma3[0], 2.0 * sigma_pre);
    EXPECT_NEAR(math::rad2deg(st.estimate.roll), 1.0, 0.3);
    EXPECT_NEAR(math::rad2deg(st.estimate.pitch), -0.8, 0.3);
}

/// The plausibility-gate counter must surface in Status: heavy ACC
/// corruption produces packets that pass the additive checksum by
/// accident and are rejected only by the physical duty-cycle band.
TEST(BoresightSystemSupervision, ExportsImplausibleAccCount) {
    auto sc = quiet_scenario(60.0, 14);
    SysConfig cfg;
    cfg.acc_link_faults.bit_flip_probability = 0.4;
    system::BoresightSystem sys(cfg);
    while (auto s = sc.next()) sys.feed(sc, *s);

    const auto st = sys.status();
    EXPECT_GT(st.acc_implausible, 0u)
        << "checksum-passing corrupt packets must hit the plausibility "
           "gate";
    EXPECT_LT(st.acc_delivery_rate, 0.9);
}

/// The supervisor defaults must be invisible on a healthy run: state
/// nominal throughout, no alarm, no coast time, delivery rates at 1 —
/// the bitwise-compatibility contract the golden corpus rides on.
TEST(BoresightSystemSupervision, QuietOnAHealthyRun) {
    auto sc = quiet_scenario(30.0, 15);
    system::BoresightSystem sys(SysConfig{});
    while (auto s = sc.next()) sys.feed(sc, *s);

    const auto st = sys.status();
    EXPECT_EQ(st.health, system::HealthState::kNominal);
    EXPECT_EQ(st.worst_health, system::HealthState::kNominal);
    EXPECT_FALSE(st.supervisor_alarmed);
    EXPECT_DOUBLE_EQ(st.coast_s, 0.0);
    EXPECT_EQ(st.recoveries, 0u);
    EXPECT_DOUBLE_EQ(st.reconvergence_s, -1.0);
    EXPECT_GT(st.dmu_delivery_rate, 0.99);
    EXPECT_GT(st.acc_delivery_rate, 0.99);
}

}  // namespace
